(* The time-range substrate: spans, canonical span sets, event series.
   Includes qcheck properties for the set-algebra laws the analyzer
   relies on. *)

open Tdat_timerange

let span = Alcotest.testable Span.pp Span.equal
let span_set = Alcotest.testable Span_set.pp Span_set.equal

(* --- Span ------------------------------------------------------------ *)

let test_span_basics () =
  let s = Span.v 10 20 in
  Alcotest.(check int) "length" 10 (Span.length s);
  Alcotest.(check bool) "contains start" true (Span.contains s 10);
  Alcotest.(check bool) "excludes stop" false (Span.contains s 20);
  Alcotest.check span "shift" (Span.v 15 25) (Span.shift 5 s);
  Alcotest.(check int) "point length" 1 (Span.length (Span.point 7));
  Alcotest.check_raises "empty span rejected"
    (Invalid_argument "Span.v: stop (5) must be greater than start (5)")
    (fun () -> ignore (Span.v 5 5))

let test_span_relations () =
  let a = Span.v 0 10 and b = Span.v 5 15 and c = Span.v 10 20 in
  Alcotest.(check bool) "overlaps" true (Span.overlaps a b);
  Alcotest.(check bool) "adjacent do not overlap" false (Span.overlaps a c);
  Alcotest.(check bool) "adjacent touch" true (Span.touches a c);
  Alcotest.(check (option span)) "inter" (Some (Span.v 5 10)) (Span.inter a b);
  Alcotest.(check (option span)) "disjoint inter" None
    (Span.inter a (Span.v 30 40));
  Alcotest.check span "hull" (Span.v 0 20) (Span.hull a c)

(* --- Span_set ---------------------------------------------------------- *)

let set spans = Span_set.of_spans spans

let test_set_coalescing () =
  let s = set [ Span.v 0 10; Span.v 5 15; Span.v 15 20; Span.v 30 40 ] in
  Alcotest.(check int) "coalesced cardinal" 2 (Span_set.cardinal s);
  Alcotest.(check int) "size" 30 (Span_set.size s);
  Alcotest.check span_set "order independent" s
    (set [ Span.v 30 40; Span.v 15 20; Span.v 5 15; Span.v 0 10 ])

let test_set_queries () =
  let s = set [ Span.v 0 10; Span.v 20 30 ] in
  Alcotest.(check bool) "mem inside" true (Span_set.mem 5 s);
  Alcotest.(check bool) "mem in gap" false (Span_set.mem 15 s);
  Alcotest.(check bool) "mem at stop" false (Span_set.mem 10 s);
  Alcotest.(check (option span)) "span_at" (Some (Span.v 20 30))
    (Span_set.span_at 25 s);
  Alcotest.(check (option span)) "hull" (Some (Span.v 0 30)) (Span_set.hull s)

let test_set_algebra () =
  let a = set [ Span.v 0 10; Span.v 20 30 ] in
  let b = set [ Span.v 5 25 ] in
  Alcotest.check span_set "union" (set [ Span.v 0 30 ]) (Span_set.union a b);
  Alcotest.check span_set "inter"
    (set [ Span.v 5 10; Span.v 20 25 ])
    (Span_set.inter a b);
  Alcotest.check span_set "diff"
    (set [ Span.v 0 5; Span.v 25 30 ])
    (Span_set.diff a b);
  Alcotest.check span_set "complement"
    (set [ Span.v 10 20 ])
    (Span_set.complement ~within:(Span.v 0 30) a)

let test_set_clip_filter () =
  let s = set [ Span.v 0 10; Span.v 20 30; Span.v 40 41 ] in
  Alcotest.check span_set "clip"
    (set [ Span.v 5 10; Span.v 20 25 ])
    (Span_set.clip (Span.v 5 25) s);
  Alcotest.check span_set "longer_than"
    (set [ Span.v 0 10; Span.v 20 30 ])
    (Span_set.longer_than 5 s)

(* Property tests: the algebra laws factor attribution depends on. *)

let gen_span_list =
  QCheck.Gen.(
    list_size (int_bound 30)
      (map2
         (fun start len -> Span.v start (start + 1 + len))
         (int_bound 1000) (int_bound 50)))

let arb_set =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Span_set.pp s)
    QCheck.Gen.(map Span_set.of_spans gen_span_list)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 arb f)

let qcheck_suite =
  [
    prop "union size >= max input size" (QCheck.pair arb_set arb_set)
      (fun (a, b) ->
        Span_set.size (Span_set.union a b)
        >= max (Span_set.size a) (Span_set.size b));
    prop "inter size <= min input size" (QCheck.pair arb_set arb_set)
      (fun (a, b) ->
        Span_set.size (Span_set.inter a b)
        <= min (Span_set.size a) (Span_set.size b));
    prop "inclusion-exclusion" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        Span_set.size (Span_set.union a b) + Span_set.size (Span_set.inter a b)
        = Span_set.size a + Span_set.size b);
    prop "diff disjoint from subtrahend" (QCheck.pair arb_set arb_set)
      (fun (a, b) -> Span_set.is_empty (Span_set.inter (Span_set.diff a b) b));
    prop "diff + inter partitions a" (QCheck.pair arb_set arb_set)
      (fun (a, b) ->
        Span_set.size (Span_set.diff a b) + Span_set.size (Span_set.inter a b)
        = Span_set.size a);
    prop "complement complements" arb_set (fun a ->
        let within = Span.v (-10) 1200 in
        let c = Span_set.complement ~within a in
        Span_set.size c + Span_set.size (Span_set.clip within a)
        = Span.length within);
    prop "union idempotent" arb_set (fun a ->
        Span_set.equal a (Span_set.union a a));
    prop "canonical: no touching spans" arb_set (fun a ->
        let rec ok = function
          | x :: (y :: _ as rest) -> (not (Span.touches x y)) && ok rest
          | _ -> true
        in
        ok (Span_set.to_list a));
    prop "mem agrees with to_list" (QCheck.pair arb_set QCheck.small_nat)
      (fun (a, t) ->
        Span_set.mem t a
        = List.exists (fun sp -> Span.contains sp t) (Span_set.to_list a));
  ]

(* --- Series ------------------------------------------------------------ *)

let test_series_basics () =
  let s =
    Series.of_list [ (Span.v 10 20, "b"); (Span.v 0 5, "a"); (Span.v 15 30, "c") ]
  in
  Alcotest.(check int) "cardinal" 3 (Series.cardinal s);
  Alcotest.(check int) "size collapses overlap" 25 (Series.size s);
  Alcotest.(check (list string)) "sorted payloads" [ "a"; "b"; "c" ]
    (List.map snd (Series.to_list s));
  Alcotest.(check int) "durations" 3 (List.length (Series.durations s))

let test_series_clip_and_query () =
  let s = Series.of_list [ (Span.v 0 10, 1); (Span.v 20 30, 2) ] in
  let clipped = Series.clip (Span.v 5 25) s in
  Alcotest.(check int) "clip keeps overlapping" 2 (Series.cardinal clipped);
  Alcotest.(check int) "clip trims" 10 (Series.size clipped);
  Alcotest.(check int) "events_in" 1
    (List.length (Series.events_in (Span.v 0 4) s))

let test_series_builder () =
  let b = Series.builder () in
  Series.add b (Span.v 10 20) "x";
  Series.add b (Span.v 0 5) "y";
  let s = Series.build b in
  Alcotest.(check (list string)) "builder sorts" [ "y"; "x" ]
    (List.map snd (Series.to_list s))

let test_time_units () =
  Alcotest.(check int) "of_ms" 1_500 (Time_us.of_ms 1.5);
  Alcotest.(check int) "of_s" 2_000_000 (Time_us.of_s 2.0);
  Alcotest.(check (float 1e-9)) "to_s roundtrip" 0.25
    (Time_us.to_s (Time_us.of_s 0.25))

let suite =
  [
    Alcotest.test_case "span basics" `Quick test_span_basics;
    Alcotest.test_case "span relations" `Quick test_span_relations;
    Alcotest.test_case "set coalescing" `Quick test_set_coalescing;
    Alcotest.test_case "set queries" `Quick test_set_queries;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "set clip/filter" `Quick test_set_clip_filter;
    Alcotest.test_case "series basics" `Quick test_series_basics;
    Alcotest.test_case "series clip" `Quick test_series_clip_and_query;
    Alcotest.test_case "series builder" `Quick test_series_builder;
    Alcotest.test_case "time units" `Quick test_time_units;
  ]
  @ qcheck_suite

(* Additional laws used implicitly throughout the analyzer. *)
let qcheck_suite2 =
  [
    prop "clip is monotone in the window" (QCheck.pair arb_set QCheck.small_nat)
      (fun (a, w) ->
        let small = Span.v 0 (100 + w) in
        let large = Span.v 0 (1200 + w) in
        Span_set.size (Span_set.clip small a)
        <= Span_set.size (Span_set.clip large a));
    prop "clip bounded by window length" arb_set (fun a ->
        let w = Span.v 100 600 in
        Span_set.size (Span_set.clip w a) <= Span.length w);
    prop "longer_than only removes" (QCheck.pair arb_set QCheck.small_nat)
      (fun (a, d) ->
        Span_set.size (Span_set.longer_than d a) <= Span_set.size a);
    prop "union associative" (QCheck.triple arb_set arb_set arb_set)
      (fun (a, b, c) ->
        Span_set.equal
          (Span_set.union a (Span_set.union b c))
          (Span_set.union (Span_set.union a b) c));
    prop "inter distributes over union" (QCheck.triple arb_set arb_set arb_set)
      (fun (a, b, c) ->
        Span_set.equal
          (Span_set.inter a (Span_set.union b c))
          (Span_set.union (Span_set.inter a b) (Span_set.inter a c)));
    prop "series merge size sub-additive"
      (QCheck.pair (QCheck.make gen_span_list) (QCheck.make gen_span_list))
      (fun (xs, ys) ->
        let s1 = Series.of_list (List.map (fun sp -> (sp, ())) xs) in
        let s2 = Series.of_list (List.map (fun sp -> (sp, ())) ys) in
        let m = Series.merge s1 s2 in
        Series.size m <= Series.size s1 + Series.size s2
        && Series.cardinal m = Series.cardinal s1 + Series.cardinal s2);
  ]

(* Model-based checks for the array kernels: each set operation is
   compared against an obviously-correct list-based reference built from
   of_spans (which only relies on sort + coalesce). *)

let ref_union a b = Span_set.of_spans (Span_set.to_list a @ Span_set.to_list b)

let ref_inter a b =
  Span_set.of_spans
    (List.concat_map
       (fun x ->
         List.filter_map (fun y -> Span.inter x y) (Span_set.to_list b))
       (Span_set.to_list a))

(* Subtract every span of [bs] from [sp], returning the surviving pieces. *)
let rec cut sp bs =
  match bs with
  | [] -> [ sp ]
  | b :: rest -> (
      match Span.inter sp b with
      | None -> cut sp rest
      | Some _ ->
          let left =
            if Span.start sp < Span.start b then
              [ Span.v (Span.start sp) (Span.start b) ]
            else []
          in
          let right =
            if Span.stop sp > Span.stop b then
              [ Span.v (Span.stop b) (Span.stop sp) ]
            else []
          in
          List.concat_map (fun piece -> cut piece rest) (left @ right))

let ref_diff a b =
  Span_set.of_spans
    (List.concat_map (fun sp -> cut sp (Span_set.to_list b)) (Span_set.to_list a))

let canonical s =
  let rec ok = function
    | x :: (y :: _ as rest) ->
        Span.start x < Span.stop x
        && Span.stop x < Span.start y (* disjoint AND non-adjacent *)
        && ok rest
    | [ x ] -> Span.start x < Span.stop x
    | [] -> true
  in
  ok (Span_set.to_list s)

let arb_span =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Span.pp s)
    QCheck.Gen.(
      map2
        (fun start len -> Span.v start (start + 1 + len))
        (int_bound 1000) (int_bound 80))

let kernel_model_suite =
  [
    prop "union matches reference model" (QCheck.pair arb_set arb_set)
      (fun (a, b) -> Span_set.equal (Span_set.union a b) (ref_union a b));
    prop "inter matches reference model" (QCheck.pair arb_set arb_set)
      (fun (a, b) -> Span_set.equal (Span_set.inter a b) (ref_inter a b));
    prop "diff matches reference model" (QCheck.pair arb_set arb_set)
      (fun (a, b) -> Span_set.equal (Span_set.diff a b) (ref_diff a b));
    prop "add sp = union of singleton" (QCheck.pair arb_span arb_set)
      (fun (sp, s) ->
        Span_set.equal (Span_set.add sp s)
          (Span_set.union (Span_set.of_span sp) s));
    prop "clip = inter with singleton window" (QCheck.pair arb_span arb_set)
      (fun (w, s) ->
        Span_set.equal (Span_set.clip w s)
          (Span_set.inter (Span_set.of_span w) s));
    prop "complement membership flips inside the window"
      (QCheck.pair arb_set QCheck.small_nat) (fun (a, t) ->
        let within = Span.v (-10) 1200 in
        let c = Span_set.complement ~within a in
        (not (Span.contains within t)) || Span_set.mem t c <> Span_set.mem t a);
    prop "filter keeps exactly the matching spans" arb_set (fun a ->
        let pred sp = Span.length sp > 20 in
        Span_set.equal (Span_set.filter pred a)
          (Span_set.of_spans (List.filter pred (Span_set.to_list a))));
    prop "kernel outputs are canonical"
      (QCheck.triple arb_span arb_set arb_set) (fun (sp, a, b) ->
        canonical (Span_set.union a b)
        && canonical (Span_set.inter a b)
        && canonical (Span_set.diff a b)
        && canonical (Span_set.add sp a)
        && canonical (Span_set.clip sp a)
        && canonical (Span_set.complement ~within:(Span.v (-10) 1200) a));
  ]

let suite = suite @ qcheck_suite2 @ kernel_model_suite
