(* The differential-analysis harness, end to end: the diff kernel's
   path addressing and tolerance rules, real control/candidate variants
   agreeing field-for-field over a simgen fleet, the perturb self-test
   producing a replayable mismatch corpus that names the exact diverging
   field, report byte-identity across --jobs, error-doc projection of a
   one-sided decode failure, and the A008 report self-consistency
   audit. *)

module Json = Tdat_serve.Json
module Diff = Tdat_experiment.Diff
module Variant = Tdat_experiment.Variant
module Engine = Tdat_experiment.Engine
module Corpus = Tdat_experiment.Corpus
module Report = Tdat_experiment.Report

let bin_exe name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name (Filename.concat "bin" name))

let simgen_exe = bin_exe "simgen.exe"
let tdat_exe = bin_exe "tdat_cli.exe"
let run_quiet cmd = Sys.command (cmd ^ " >/dev/null 2>&1")

let tmpdir () =
  let f = Filename.temp_file "tdat_experiment" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let simgen ?seed:(s = 7) ?(prefixes = 80) ?(routers = 2) ?emit_mrt pcap =
  let mrt =
    match emit_mrt with
    | Some dir -> Printf.sprintf " --emit-mrt %s" (Filename.quote dir)
    | None -> ""
  in
  let cmd =
    Printf.sprintf "%s %s%s --routers %d --prefixes %d --seed %d"
      (Filename.quote simgen_exe) (Filename.quote pcap) mrt routers prefixes s
  in
  Alcotest.(check int) "simgen exit" 0 (run_quiet cmd)

(* A fleet of two captures and two archives under one directory. *)
let emit_fleet dir =
  let p1 = Filename.concat dir "f1.pcap" in
  let p2 = Filename.concat dir "f2.pcap" in
  let mdir = Filename.concat dir "archives" in
  simgen ~seed:11 ~prefixes:90 ~emit_mrt:mdir p1;
  simgen ~seed:23 ~prefixes:60 ~routers:3 p2;
  let mrts =
    Sys.readdir mdir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mrt")
    |> List.sort String.compare
    |> List.map (Filename.concat mdir)
  in
  ([ p1; p2 ], mrts)

let variant name =
  match Variant.find name with
  | Some v -> v
  | None -> Alcotest.failf "variant %s not registered" name

(* --- diff kernel ---------------------------------------------------------- *)

let sample_doc x =
  Json.Obj
    [
      ( "connections",
        Json.Arr
          [
            Json.Obj [ ("flow", Json.Str "a"); ("shifts", Json.Num 2.) ];
            Json.Obj
              [
                ("flow", Json.Str "b");
                ( "factors",
                  Json.Obj [ ("ratios", Json.Obj [ ("x", Json.Num x) ]) ] );
              ];
          ] );
      ("stats", Json.Null);
    ]

let test_diff_identity () =
  let doc = sample_doc 1. in
  let entries, fields = Diff.run ~control:doc ~candidate:doc () in
  Alcotest.(check int) "no mismatches on identity" 0 (List.length entries);
  Alcotest.(check int) "five leaf fields compared" 5 fields

let test_diff_path_addressing () =
  let entries, fields =
    Diff.run ~control:(sample_doc 1.) ~candidate:(sample_doc 2.) ()
  in
  Alcotest.(check int) "field count unchanged" 5 fields;
  match entries with
  | [ e ] ->
      Alcotest.(check string)
        "exact dotted/indexed path" "report.connections[1].factors.ratios.x"
        e.Diff.path;
      Alcotest.(check bool) "value kind" true
        (Diff.equal_kind e.Diff.kind Diff.Value_mismatch);
      Alcotest.(check string) "control rendering" "1" e.Diff.control;
      Alcotest.(check string) "candidate rendering" "2" e.Diff.candidate
  | es -> Alcotest.failf "expected exactly one entry, got %d" (List.length es)

let test_diff_kinds () =
  (* Type clash, one-sided members (both directions), array length. *)
  let control =
    Json.Obj
      [ ("a", Json.Num 1.); ("only_control", Json.Bool true);
        ("arr", Json.Arr [ Json.Num 1.; Json.Num 2. ]) ]
  in
  let candidate =
    Json.Obj
      [ ("a", Json.Str "1"); ("only_candidate", Json.Bool true);
        ("arr", Json.Arr [ Json.Num 1. ]) ]
  in
  let entries, _ = Diff.run ~control ~candidate () in
  let kind_at path =
    match List.find_opt (fun e -> String.equal e.Diff.path path) entries with
    | Some e -> Diff.kind_name e.Diff.kind
    | None -> Alcotest.failf "no entry at %s" path
  in
  Alcotest.(check int) "four divergences" 4 (List.length entries);
  Alcotest.(check string) "type clash" "type" (kind_at "report.a");
  Alcotest.(check string) "absent on candidate side" "missing-in-candidate"
    (kind_at "report.only_control");
  Alcotest.(check string) "absent on control side" "missing-in-control"
    (kind_at "report.only_candidate");
  Alcotest.(check string) "array tail" "missing-in-candidate"
    (kind_at "report.arr[1]")

let test_diff_key_order_insensitive () =
  let control = Json.Obj [ ("a", Json.Num 1.); ("b", Json.Num 2.) ] in
  let candidate = Json.Obj [ ("b", Json.Num 2.); ("a", Json.Num 1.) ] in
  let entries, fields = Diff.run ~control ~candidate () in
  Alcotest.(check int) "reordered members agree" 0 (List.length entries);
  Alcotest.(check int) "both members compared" 2 fields

let test_diff_tolerance () =
  let near a b = (Json.Num a, Json.Num b) in
  let mismatches ?tolerance (control, candidate) =
    fst (Diff.run ?tolerance ~control ~candidate ()) |> List.length
  in
  Alcotest.(check int) "bit-exact by default" 1 (mismatches (near 100. 100.05));
  Alcotest.(check int) "relative tolerance admits"
    0
    (mismatches ~tolerance:1e-3 (near 100. 100.05));
  Alcotest.(check int) "tolerance still rejects beyond the band" 1
    (mismatches ~tolerance:1e-3 (near 100. 100.2));
  Alcotest.(check int) "NaN agrees with NaN" 0
    (mismatches (near Float.nan Float.nan));
  Alcotest.(check int) "near-zero tolerance is absolute" 0
    (mismatches ~tolerance:1e-3 (near 0. 1e-4))

(* --- real variants over a fleet ------------------------------------------- *)

let test_fleet_equivalence () =
  let dir = tmpdir () in
  let pcaps, mrts = emit_fleet dir in
  let check_variant name files =
    let report = Engine.run ~jobs:2 (variant name) ~files in
    Alcotest.(check int)
      (name ^ ": compared every corpus file")
      (List.length files)
      (List.length report.Engine.files);
    Alcotest.(check bool) (name ^ ": compared real fields") true
      (report.Engine.total_fields > 0);
    Alcotest.(check int) (name ^ ": zero mismatches") 0
      report.Engine.total_mismatches;
    Alcotest.(check int) (name ^ ": A008 clean") 0
      (List.length report.Engine.audit)
  in
  (* Four real pairs: three over the captures, one over the archives. *)
  check_variant "pcap-ingest" pcaps;
  check_variant "partition" pcaps;
  check_variant "transfer-end" pcaps;
  check_variant "mrt-ingest" mrts

let test_report_identical_across_jobs () =
  let dir = tmpdir () in
  let pcaps, _ = emit_fleet dir in
  let v = variant "reasm-scratch" in
  let r1 = Engine.run ~jobs:1 v ~files:pcaps in
  let r4 = Engine.run ~jobs:4 v ~files:pcaps in
  Alcotest.(check string) "JSON report byte-identical across jobs"
    (Report.to_json r1) (Report.to_json r4);
  Alcotest.(check string) "text report byte-identical across jobs"
    (Report.to_text r1) (Report.to_text r4)

let test_error_doc_projection () =
  (* Truncate a valid capture mid-record: strict ingestion raises,
     salvage succeeds — the disagreement must surface as ordinary
     mismatches, with the control side's failure at report.error. *)
  let dir = tmpdir () in
  let pcap = Filename.concat dir "cap.pcap" in
  simgen ~seed:31 pcap;
  let data = In_channel.with_open_bin pcap In_channel.input_all in
  let cut = Filename.concat dir "cut.pcap" in
  Out_channel.with_open_bin cut (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data - 7)));
  let report = Engine.run ~jobs:1 (variant "strict-pcap") ~files:[ cut ] in
  Alcotest.(check bool) "divergence detected" true
    (report.Engine.total_mismatches > 0);
  match report.Engine.files with
  | [ f ] ->
      Alcotest.(check bool) "flagged as a side error" true f.Engine.errors;
      Alcotest.(check bool) "control failure lands at report.error" true
        (List.exists
           (fun e -> String.equal e.Diff.path "report.error")
           f.Engine.mismatches)
  | _ -> Alcotest.fail "expected one file result"

(* --- perturb self-test, corpus and replay ---------------------------------- *)

let test_perturb_corpus_replay () =
  let dir = tmpdir () in
  let pcap = Filename.concat dir "cap.pcap" in
  simgen ~seed:42 pcap;
  let report = Engine.run ~jobs:1 (variant "perturb") ~files:[ pcap ] in
  Alcotest.(check int) "exactly one nudged field" 1
    report.Engine.total_mismatches;
  let entry =
    match Engine.mismatching report with
    | [ { Engine.mismatches = [ e ]; _ } ] -> e
    | _ -> Alcotest.fail "expected one mismatching file with one entry"
  in
  Alcotest.(check bool) "mismatch names the perturbed ratio" true
    (String.starts_with ~prefix:"report.connections[0].factors.ratios."
       entry.Diff.path);
  (* Capture, then replay from the copied corpus alone. *)
  let corp = Filename.concat dir "corpus" in
  Alcotest.(check int) "one corpus entry" 1 (Corpus.write ~dir:corp report);
  Alcotest.(check bool) "input copied" true
    (Sys.file_exists (Filename.concat corp "000_cap.pcap"));
  Alcotest.(check bool) "drill-down written" true
    (Sys.file_exists (Filename.concat corp "000_cap.pcap.diff.json"));
  (match Corpus.read_index ~dir:corp with
  | Error e -> Alcotest.fail e
  | Ok idx ->
      Alcotest.(check string) "index records the variant" "perturb"
        idx.Corpus.variant;
      Alcotest.(check int) "index manifest" 1 (List.length idx.Corpus.entries));
  match Corpus.replay ~jobs:1 ~dir:corp () with
  | Error e -> Alcotest.fail e
  | Ok replayed -> (
      Alcotest.(check int) "replay reproduces the divergence" 1
        replayed.Engine.total_mismatches;
      match Engine.mismatching replayed with
      | [ { Engine.mismatches = [ e ]; _ } ] ->
          Alcotest.(check string) "replay names the same field"
            entry.Diff.path e.Diff.path
      | _ -> Alcotest.fail "replay: expected one mismatching file")

let test_zero_mismatch_corpus_is_empty_manifest () =
  let dir = tmpdir () in
  let pcap = Filename.concat dir "cap.pcap" in
  simgen ~seed:5 ~prefixes:40 pcap;
  let report = Engine.run ~jobs:1 (variant "strict-pcap") ~files:[ pcap ] in
  let corp = Filename.concat dir "corpus" in
  Alcotest.(check int) "no entries captured" 0 (Corpus.write ~dir:corp report);
  match Corpus.read_index ~dir:corp with
  | Error e -> Alcotest.fail e
  | Ok idx ->
      Alcotest.(check int) "manifest is empty" 0 (List.length idx.Corpus.entries)

(* --- A008 ------------------------------------------------------------------ *)

let a008_findings ~files ~total_fields ~total_mismatches =
  Tdat_audit.Checks.experiment_consistent ~subject:"test" ~files ~total_fields
    ~total_mismatches ()

let test_a008 () =
  let ok =
    a008_findings
      ~files:[ ("a.pcap", 10, 1); ("b.pcap", 5, 0) ]
      ~total_fields:15 ~total_mismatches:1
  in
  Alcotest.(check int) "consistent report passes" 0 (List.length ok);
  let bad_totals =
    a008_findings
      ~files:[ ("a.pcap", 10, 1) ]
      ~total_fields:11 ~total_mismatches:1
  in
  Alcotest.(check bool) "total drift flagged" true (bad_totals <> []);
  let unsorted =
    a008_findings
      ~files:[ ("b.pcap", 5, 0); ("a.pcap", 10, 1) ]
      ~total_fields:15 ~total_mismatches:1
  in
  Alcotest.(check bool) "unsorted manifest flagged" true (unsorted <> []);
  let excess =
    a008_findings ~files:[ ("a.pcap", 3, 4) ] ~total_fields:3
      ~total_mismatches:4
  in
  Alcotest.(check bool) "mismatches beyond fields flagged" true (excess <> [])

(* --- CLI ------------------------------------------------------------------- *)

let test_cli_experiment () =
  let dir = tmpdir () in
  let pcap = Filename.concat dir "cap.pcap" in
  simgen ~seed:13 pcap;
  let corp = Filename.concat dir "corpus" in
  Alcotest.(check int) "equivalent variant exits 0" 0
    (run_quiet
       (Printf.sprintf "%s experiment run %s --variant transfer-end --jobs 2"
          (Filename.quote tdat_exe) (Filename.quote pcap)));
  Alcotest.(check int) "perturb self-test exits 1" 1
    (run_quiet
       (Printf.sprintf
          "%s experiment run %s --variant perturb --corpus %s"
          (Filename.quote tdat_exe) (Filename.quote pcap)
          (Filename.quote corp)));
  Alcotest.(check bool) "CLI wrote the per-variant corpus" true
    (Sys.file_exists
       (Filename.concat corp (Filename.concat "perturb" "index.json")));
  Alcotest.(check int) "replay reproduces (exit 1)" 1
    (run_quiet
       (Printf.sprintf "%s experiment replay %s"
          (Filename.quote tdat_exe)
          (Filename.quote (Filename.concat corp "perturb"))));
  (* The documented CLI determinism: stdout of --json is byte-identical
     across --jobs values. *)
  let out jobs =
    let f = Filename.concat dir (Printf.sprintf "out%d.json" jobs) in
    Alcotest.(check int) "json run exit" 0
      (Sys.command
         (Printf.sprintf
            "%s experiment run %s --variant transfer-end --json --jobs %d \
             > %s 2>/dev/null"
            (Filename.quote tdat_exe) (Filename.quote pcap) jobs
            (Filename.quote f)));
    In_channel.with_open_bin f In_channel.input_all
  in
  Alcotest.(check string) "CLI JSON identical for --jobs 1 and 4" (out 1)
    (out 4)

let suite =
  [
    Alcotest.test_case "diff: identity compares clean" `Quick
      test_diff_identity;
    Alcotest.test_case "diff: exact path addressing" `Quick
      test_diff_path_addressing;
    Alcotest.test_case "diff: kind taxonomy" `Quick test_diff_kinds;
    Alcotest.test_case "diff: member order irrelevant" `Quick
      test_diff_key_order_insensitive;
    Alcotest.test_case "diff: tolerance semantics" `Quick test_diff_tolerance;
    Alcotest.test_case "fleet: real pairs are equivalent" `Quick
      test_fleet_equivalence;
    Alcotest.test_case "report byte-identical across jobs" `Quick
      test_report_identical_across_jobs;
    Alcotest.test_case "one-sided decode failure diffs at report.error"
      `Quick test_error_doc_projection;
    Alcotest.test_case "perturb: corpus capture and replay" `Quick
      test_perturb_corpus_replay;
    Alcotest.test_case "clean run writes an empty manifest" `Quick
      test_zero_mismatch_corpus_is_empty_manifest;
    Alcotest.test_case "A008 report self-consistency" `Quick test_a008;
    Alcotest.test_case "CLI: run, corpus, replay, --jobs identity" `Quick
      test_cli_experiment;
  ]
