(* tdat-lint: drive the built linter executable over the fixture files.
   The bad fixture seeds one violation per per-file rule and must make
   the linter exit non-zero with every code reported — the negative
   test behind the [@lint] alias's guarantee.  The domain_* fixtures do
   the same for the whole-repo passes: a worker-reachable module-level
   ref must fail with L007, allowlisting it must pass, and a stale
   allowlist must come back as L010.  Also covered: L008 cross-module
   mutation, the --hot-driven L009 allocation lint, lib/ detection by
   path component (not string prefix), deterministic finding order
   across --jobs, --rules selection, and the JSON/SARIF emitters. *)

let lint_exe = Filename.concat ".." (Filename.concat "bin" "tdat_lint.exe")

(* Returns (exit code, stdout lines).  stderr (the summary line) is
   dropped so it doesn't pollute the alcotest output. *)
let run_lint args =
  let cmd =
    String.concat " " (List.map Filename.quote (lint_exe :: args))
    ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let rec read acc =
    match In_channel.input_line ic with
    | Some l -> read (l :: acc)
    | None -> List.rev acc
  in
  let lines = read [] in
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255
  in
  (code, lines)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let has_code lines code =
  let tag = Printf.sprintf "[%s]" code in
  List.exists (fun line -> contains_substring line tag) lines

let fixture name = Filename.concat "fixtures" name

let codes = [ "L001"; "L002"; "L003"; "L004"; "L005"; "L006"; "L011" ]

(* --- the original per-file rules ------------------------------------------ *)

let test_bad_fixture_fails () =
  let exit_code, lines = run_lint [ "--treat-as-lib"; fixture "lint_bad.ml" ] in
  Alcotest.(check int) "non-zero exit on seeded violations" 1 exit_code;
  List.iter
    (fun code ->
      (* Finding format: file:line:col: [Lnnn] message *)
      Alcotest.(check bool)
        (Printf.sprintf "code %s reported" code)
        true (has_code lines code))
    codes

let test_bad_fixture_findings_located () =
  let _, lines = run_lint [ "--treat-as-lib"; fixture "lint_bad.ml" ] in
  Alcotest.(check bool) "at least five findings" true (List.length lines >= 5);
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "finding names the fixture: %s" line)
        true
        (String.starts_with ~prefix:"fixtures" line))
    lines

let test_clean_fixture_passes () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "lint_clean.ml" ]
  in
  Alcotest.(check int) "zero exit on clean file" 0 exit_code;
  Alcotest.(check (list string)) "no findings" [] lines

(* --- lib/ detection by path component (not string prefix) ----------------- *)

(* Regression for the old [String.sub path 0 4 = "lib/"] check: a file
   under a lib/ directory reached through an absolute path must still
   get the library-only rules (L005 here), with no --treat-as-lib. *)
let test_lib_detection_absolute_path () =
  let dir = Filename.temp_file "tdat_lint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let libdir = Filename.concat dir "lib" in
  Unix.mkdir libdir 0o755;
  let file = Filename.concat libdir "sample.ml" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      (try Unix.rmdir libdir with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc "let boom () = failwith \"nope\"\n");
      Alcotest.(check bool) "temp path is absolute" true
        (not (Filename.is_relative file));
      let exit_code, lines = run_lint [ file ] in
      Alcotest.(check int) "absolute lib/ path fails" 1 exit_code;
      Alcotest.(check bool) "L005 reported" true (has_code lines "L005"))

let test_non_lib_path_skips_lib_rules () =
  (* The same failwith outside any lib/ directory is not a finding. *)
  let dir = Filename.temp_file "tdat_lint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let file = Filename.concat dir "sample.ml" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc "let boom () = failwith \"nope\"\n");
      let exit_code, lines = run_lint [ file ] in
      Alcotest.(check int) "non-lib path passes" 0 exit_code;
      Alcotest.(check (list string)) "no findings" [] lines)

(* --- deterministic ordering ----------------------------------------------- *)

let test_same_line_findings_sorted_by_col () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "sortorder.ml" ]
  in
  Alcotest.(check int) "two seeded violations fail" 1 exit_code;
  Alcotest.(check int) "two findings" 2 (List.length lines);
  let col line =
    (* file:line:col: ... *)
    match String.split_on_char ':' line with
    | _file :: _line :: col :: _ -> int_of_string col
    | _ -> Alcotest.fail ("unparseable finding line: " ^ line)
  in
  match lines with
  | [ a; b ] ->
      Alcotest.(check bool) "columns strictly increasing" true (col a < col b)
  | _ -> Alcotest.fail "expected exactly two findings"

let test_output_identical_across_jobs () =
  let run jobs =
    run_lint [ "--treat-as-lib"; "--jobs"; string_of_int jobs; "fixtures" ]
  in
  let c1, l1 = run 1 in
  let c3, l3 = run 3 in
  Alcotest.(check int) "same exit code" c1 c3;
  Alcotest.(check (list string)) "byte-identical findings" l1 l3;
  Alcotest.(check bool) "the directory scan does find things" true
    (List.length l1 > 0)

(* --- L007 / suppression / L010 -------------------------------------------- *)

let test_l007_worker_reachable_ref () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "domain_bad.ml" ]
  in
  Alcotest.(check int) "seeded L007 fails" 1 exit_code;
  Alcotest.(check bool) "L007 reported" true (has_code lines "L007");
  Alcotest.(check bool) "finding names the entry point" true
    (List.exists (fun l -> contains_substring l "Pool.map") lines)

let test_l007_suppression_honored () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "domain_allow.ml" ]
  in
  Alcotest.(check int) "allowlisted fixture passes" 0 exit_code;
  Alcotest.(check (list string)) "no findings at all" [] lines

let test_l010_stale_suppression_reported () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "domain_stale.ml" ]
  in
  Alcotest.(check int) "stale allowlist fails" 1 exit_code;
  Alcotest.(check bool) "L010 reported" true (has_code lines "L010");
  Alcotest.(check bool) "no L007 (the ref is gone)" false
    (has_code lines "L007")

(* --- L008 ------------------------------------------------------------------ *)

let test_l008_cross_module_mutation () =
  let exit_code, lines =
    run_lint
      [ "--treat-as-lib"; fixture "l8_owner.ml"; fixture "l8_user.ml" ]
  in
  Alcotest.(check int) "cross-module mutation fails" 1 exit_code;
  Alcotest.(check bool) "L008 reported" true (has_code lines "L008");
  Alcotest.(check bool) "finding is in the user, not the owner" true
    (List.for_all
       (fun l ->
         (not (contains_substring l "[L008]"))
         || String.starts_with ~prefix:(fixture "l8_user.ml") l)
       lines)

(* --- L009 via --hot --------------------------------------------------------- *)

let test_l009_hot_path () =
  let exit_code, lines =
    run_lint
      [ "--treat-as-lib"; "--hot"; "Hot_alloc.join"; fixture "hot_alloc.ml" ]
  in
  Alcotest.(check int) "hot String.concat fails" 1 exit_code;
  Alcotest.(check int) "exactly one finding" 1 (List.length lines);
  Alcotest.(check bool) "L009 names the hot binding" true
    (List.exists (fun l -> contains_substring l "Hot_alloc.join") lines)

let test_l009_silent_outside_hot_set () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "hot_alloc.ml" ]
  in
  Alcotest.(check int) "same file clean without --hot" 0 exit_code;
  Alcotest.(check (list string)) "no findings" [] lines

(* --- L011 metric/span names ------------------------------------------------- *)

(* Both seeded shapes in the bad fixture must fire: the malformed
   literal ("Serve.Requests") and the dynamic [~name] pass-through. *)
let test_l011_both_shapes_reported () =
  let _, lines = run_lint [ "--treat-as-lib"; fixture "lint_bad.ml" ] in
  let l011 = List.filter (fun l -> contains_substring l "[L011]") lines in
  Alcotest.(check int) "two L011 findings" 2 (List.length l011);
  Alcotest.(check bool) "names the bad literal" true
    (List.exists (fun l -> contains_substring l "Serve.Requests") l011);
  Alcotest.(check bool) "flags the dynamic name" true
    (List.exists (fun l -> contains_substring l "dynamically") l011)

let test_l011_allow_fence_passes () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; fixture "obs_name_allow.ml" ]
  in
  Alcotest.(check int) "fenced dynamic name passes" 0 exit_code;
  Alcotest.(check (list string)) "no findings" [] lines

(* --- --rules selection ------------------------------------------------------ *)

let test_rules_disable () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; "--rules=-L001"; fixture "lint_bad.ml" ]
  in
  Alcotest.(check int) "other rules still fail" 1 exit_code;
  Alcotest.(check bool) "L001 gone" false (has_code lines "L001");
  Alcotest.(check bool) "L002 still reported" true (has_code lines "L002")

let test_rules_unknown_id_is_usage_error () =
  let exit_code, _ =
    run_lint [ "--rules=L999"; fixture "lint_clean.ml" ]
  in
  Alcotest.(check int) "unknown rule id exits 2" 2 exit_code

(* --- JSON / SARIF emitters -------------------------------------------------- *)

(* A deliberately tiny JSON syntax checker — no semantics, just the
   grammar — enough to catch unescaped quotes, trailing commas and
   unbalanced brackets in the emitters. *)
exception Bad_json

let json_valid s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then s.[!i] else raise Bad_json in
  let next () =
    let c = peek () in
    incr i;
    c
  in
  let rec ws () =
    if
      !i < n
      && match s.[!i] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    then (
      incr i;
      ws ())
  in
  let expect c = if next () <> c then raise Bad_json in
  let lit l = String.iter expect l in
  let str () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> (
          match next () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
              for _ = 1 to 4 do
                match next () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> raise Bad_json
              done;
              go ()
          | _ -> raise Bad_json)
      | c when Char.code c < 0x20 -> raise Bad_json
      | _ -> go ()
    in
    go ()
  in
  let digits () =
    let d = ref 0 in
    while !i < n && match s.[!i] with '0' .. '9' -> true | _ -> false do
      incr i;
      incr d
    done;
    if !d = 0 then raise Bad_json
  in
  let number () =
    if peek () = '-' then incr i;
    digits ();
    if !i < n && s.[!i] = '.' then (
      incr i;
      digits ());
    if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then (
      incr i;
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
      digits ())
  in
  let rec value () =
    ws ();
    match peek () with
    | '{' ->
        incr i;
        ws ();
        if peek () = '}' then incr i
        else
          let rec member () =
            ws ();
            str ();
            ws ();
            expect ':';
            value ();
            ws ();
            match next () with
            | ',' -> member ()
            | '}' -> ()
            | _ -> raise Bad_json
          in
          member ()
    | '[' ->
        incr i;
        ws ();
        if peek () = ']' then incr i
        else
          let rec element () =
            value ();
            ws ();
            match next () with
            | ',' -> element ()
            | ']' -> ()
            | _ -> raise Bad_json
          in
          element ()
    | '"' -> str ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | _ -> number ()
  in
  match
    value ();
    ws ();
    !i = n
  with
  | ok -> ok
  | exception Bad_json -> false

let test_sarif_shape () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; "--format"; "sarif"; fixture "lint_bad.ml" ]
  in
  Alcotest.(check int) "findings still set the exit code" 1 exit_code;
  let doc = String.concat "\n" lines in
  Alcotest.(check bool) "SARIF output is valid JSON" true (json_valid doc);
  Alcotest.(check bool) "declares SARIF 2.1.0" true
    (contains_substring doc "\"version\":\"2.1.0\"");
  Alcotest.(check bool) "runs[0].results populated" true
    (contains_substring doc "\"results\":[{\"ruleId\":");
  Alcotest.(check bool) "rule metadata present" true
    (contains_substring doc "\"id\":\"L007\"");
  Alcotest.(check bool) "regions carry locations" true
    (contains_substring doc "\"startLine\":")

let test_json_shape () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; "--format"; "json"; fixture "lint_bad.ml" ]
  in
  Alcotest.(check int) "findings still set the exit code" 1 exit_code;
  let doc = String.concat "\n" lines in
  Alcotest.(check bool) "JSON output is valid JSON" true (json_valid doc);
  Alcotest.(check bool) "findings array populated" true
    (contains_substring doc "\"findings\":[{\"file\":")

(* --- the lint library's own invariants (unit level) ------------------------ *)

let test_finding_compare_total_order () =
  let f ~file ~line ~col ~code =
    Tdat_lint.Finding.v ~file ~line ~col ~code
      ~severity:Tdat_lint.Finding.Error "m"
  in
  let shuffled =
    [
      f ~file:"b.ml" ~line:1 ~col:0 ~code:"L001";
      f ~file:"a.ml" ~line:2 ~col:5 ~code:"L003";
      f ~file:"a.ml" ~line:2 ~col:5 ~code:"L001";
      f ~file:"a.ml" ~line:2 ~col:1 ~code:"L009";
      f ~file:"a.ml" ~line:1 ~col:9 ~code:"L002";
    ]
  in
  let sorted = Tdat_lint.Finding.sort shuffled in
  let key (x : Tdat_lint.Finding.t) =
    Printf.sprintf "%s:%d:%d:%s" x.file x.line x.col x.code
  in
  Alcotest.(check (list string))
    "file, then line, then col, then code"
    [
      "a.ml:1:9:L002";
      "a.ml:2:1:L009";
      "a.ml:2:5:L001";
      "a.ml:2:5:L003";
      "b.ml:1:0:L001";
    ]
    (List.map key sorted)

let test_in_lib_path_forms () =
  let yes = [ "lib/pkt/trace.ml"; "./lib/x.ml"; "/repo/lib/core/a.ml";
              "_build/default/lib/obs/log.ml" ] in
  let no = [ "bin/tdat_cli.ml"; "library/x.ml"; "foo/liberty/x.ml";
             "test/fixtures/lint_bad.ml" ] in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " is lib") true (Tdat_lint.Ident.in_lib p))
    yes;
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " is not lib") false (Tdat_lint.Ident.in_lib p))
    no

let suite =
  [
    Alcotest.test_case "bad fixture reports every code" `Quick
      test_bad_fixture_fails;
    Alcotest.test_case "findings carry locations" `Quick
      test_bad_fixture_findings_located;
    Alcotest.test_case "clean fixture passes" `Quick test_clean_fixture_passes;
    Alcotest.test_case "lib/ detected through absolute paths" `Quick
      test_lib_detection_absolute_path;
    Alcotest.test_case "non-lib paths skip library-only rules" `Quick
      test_non_lib_path_skips_lib_rules;
    Alcotest.test_case "same-line findings sorted by column" `Quick
      test_same_line_findings_sorted_by_col;
    Alcotest.test_case "output identical across --jobs" `Quick
      test_output_identical_across_jobs;
    Alcotest.test_case "L007: worker-reachable module ref" `Quick
      test_l007_worker_reachable_ref;
    Alcotest.test_case "L007: allowlist suppression honored" `Quick
      test_l007_suppression_honored;
    Alcotest.test_case "L010: stale suppression reported" `Quick
      test_l010_stale_suppression_reported;
    Alcotest.test_case "L008: cross-module mutation" `Quick
      test_l008_cross_module_mutation;
    Alcotest.test_case "L009: --hot makes the binding hot" `Quick
      test_l009_hot_path;
    Alcotest.test_case "L009: silent outside the hot set" `Quick
      test_l009_silent_outside_hot_set;
    Alcotest.test_case "L011: malformed and dynamic names" `Quick
      test_l011_both_shapes_reported;
    Alcotest.test_case "L011: allow fence honored" `Quick
      test_l011_allow_fence_passes;
    Alcotest.test_case "--rules disables a rule" `Quick test_rules_disable;
    Alcotest.test_case "--rules rejects unknown ids" `Quick
      test_rules_unknown_id_is_usage_error;
    Alcotest.test_case "SARIF output shape" `Quick test_sarif_shape;
    Alcotest.test_case "JSON output shape" `Quick test_json_shape;
    Alcotest.test_case "Finding.compare is a total order" `Quick
      test_finding_compare_total_order;
    Alcotest.test_case "in_lib matches path components" `Quick
      test_in_lib_path_forms;
  ]
