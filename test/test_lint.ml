(* tdat-lint: drive the built linter executable over the fixture files.
   The bad fixture seeds one violation per rule and must make the linter
   exit non-zero with every code reported — this is the negative test
   behind the [@lint] alias's guarantee.  The clean fixture is the same
   code written the compliant way and must pass. *)

let lint_exe = Filename.concat ".." (Filename.concat "bin" "tdat_lint.exe")

(* Returns (exit code, stdout lines).  stderr (the summary line) is
   dropped so it doesn't pollute the alcotest output. *)
let run_lint args =
  let cmd =
    String.concat " " (List.map Filename.quote (lint_exe :: args))
    ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let rec read acc =
    match In_channel.input_line ic with
    | Some l -> read (l :: acc)
    | None -> List.rev acc
  in
  let lines = read [] in
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255
  in
  (code, lines)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let codes = [ "L001"; "L002"; "L003"; "L004"; "L005"; "L006" ]

let test_bad_fixture_fails () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; Filename.concat "fixtures" "lint_bad.ml" ]
  in
  Alcotest.(check int) "non-zero exit on seeded violations" 1 exit_code;
  List.iter
    (fun code ->
      (* Finding format: file:line:col: [Lnnn] message *)
      let tag = Printf.sprintf "[%s]" code in
      Alcotest.(check bool)
        (Printf.sprintf "code %s reported" code)
        true
        (List.exists (fun line -> contains_substring line tag) lines))
    codes

let test_bad_fixture_findings_located () =
  let _, lines =
    run_lint [ "--treat-as-lib"; Filename.concat "fixtures" "lint_bad.ml" ]
  in
  Alcotest.(check bool) "at least five findings" true (List.length lines >= 5);
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "finding names the fixture: %s" line)
        true
        (String.starts_with ~prefix:"fixtures" line))
    lines

let test_clean_fixture_passes () =
  let exit_code, lines =
    run_lint [ "--treat-as-lib"; Filename.concat "fixtures" "lint_clean.ml" ]
  in
  Alcotest.(check int) "zero exit on clean file" 0 exit_code;
  Alcotest.(check (list string)) "no findings" [] lines

let suite =
  [
    Alcotest.test_case "bad fixture reports every code" `Quick
      test_bad_fixture_fails;
    Alcotest.test_case "findings carry locations" `Quick
      test_bad_fixture_findings_located;
    Alcotest.test_case "clean fixture passes" `Quick test_clean_fixture_passes;
  ]
