(* The Domain worker pool behind fleet analysis: deterministic result
   ordering, exception capture/re-raise, the jobs=1 degenerate case, and
   pool reuse across batches. *)

open Tdat_parallel

(* Uneven, index-dependent busy work so completion order differs from
   input order whenever the pool really runs concurrently. *)
let lopsided i =
  let acc = ref 0 in
  for k = 0 to (i mod 7) * 2_000 do
    acc := !acc + k
  done;
  (i * i) + (!acc * 0)

let test_map_matches_sequential () =
  let xs = List.init 500 Fun.id in
  let expected = List.map lopsided xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d equals List.map" jobs)
            expected (Pool.map pool lopsided xs)))
    [ 1; 2; 4; 8 ]

let test_map_preserves_order_not_completion_order () =
  (* Map to (index, value) pairs: ordering must follow input indices. *)
  let xs = List.init 100 (fun i -> 99 - i) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let out = Pool.map pool (fun x -> (x, lopsided x)) xs in
      Alcotest.(check (list int)) "first components in input order" xs
        (List.map fst out))

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "exception re-raised in caller" (Boom 17)
        (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i = 17 then raise (Boom 17) else lopsided i)
               (List.init 64 Fun.id)));
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "pool usable after failure" [ 2; 4; 6 ]
        (Pool.map pool (fun i -> 2 * i) [ 1; 2; 3 ]))

let test_exception_propagates_sequentially () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.check_raises "jobs=1 re-raises too" (Boom 3) (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i = 3 then raise (Boom 3) else i)
               [ 1; 2; 3; 4 ])))

let test_degenerate_and_edges () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs=1 reported" 1 (Pool.jobs pool);
      Alcotest.(check (list int)) "jobs=1 maps" [ 1; 4; 9 ]
        (Pool.map pool (fun x -> x * x) [ 1; 2; 3 ]));
  Pool.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int)) "empty input" []
        (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list string)) "singleton input" [ "a" ]
        (Pool.map pool String.lowercase_ascii [ "A" ]);
      Alcotest.(check (list int)) "more jobs than items" [ 0; 1; 2 ]
        (Pool.map pool Fun.id [ 0; 1; 2 ]))

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init (20 * round) Fun.id in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map lopsided xs)
          (Pool.map pool lopsided xs)
      done)

let test_invalid_jobs_and_shutdown () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs (0) must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "works before shutdown" [ 1 ]
    (Pool.map pool Fun.id [ 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1; 2 ]))

let test_default_jobs_sane () =
  let d = Pool.default_jobs () in
  Alcotest.(check bool) "default >= 1" true (d >= 1);
  Pool.with_pool (fun pool ->
      Alcotest.(check int) "pool takes the default" d (Pool.jobs pool))

(* --- Scratch: reentrancy fallback and geometric growth ------------------ *)

let with_metrics f =
  let reg = Tdat_obs.Metrics.default in
  let was = Tdat_obs.Metrics.enabled reg in
  Tdat_obs.Metrics.set_enabled reg true;
  Fun.protect
    ~finally:(fun () -> Tdat_obs.Metrics.set_enabled reg was)
    f

let fallbacks () =
  match
    Tdat_obs.Metrics.find_counter Tdat_obs.Metrics.default
      "scratch.fallbacks"
  with
  | Some c -> Tdat_obs.Metrics.Counter.value c
  | None -> Alcotest.fail "scratch.fallbacks counter not registered"

let test_scratch_reentrant_fallback () =
  with_metrics @@ fun () ->
  let before = fallbacks () in
  Scratch.with_bytes ~slot:0 64 (fun outer ->
      let outer_buf = outer.Scratch.buf in
      Scratch.with_bytes ~slot:0 64 (fun inner ->
          (* The nested checkout of a busy slot must get its own
             transient buffer, never alias the outer one. *)
          Alcotest.(check bool)
            "fallback buffer is distinct" false
            (inner.Scratch.buf == outer_buf);
          Bytes.fill inner.Scratch.buf 0 64 'x');
      Alcotest.(check bool)
        "outer buffer untouched by fallback" false
        (Bytes.sub_string outer_buf 0 64 = String.make 64 'x'));
  Alcotest.(check bool)
    "reentrant checkout was counted" true
    (fallbacks () > before);
  (* Same accounting for the int-array flavor. *)
  let before = fallbacks () in
  Scratch.with_ints ~slot:0 8 (fun _outer ->
      Scratch.with_ints ~slot:0 8 (fun inner -> inner.(0) <- 1));
  Alcotest.(check bool)
    "with_ints fallback counted" true
    (fallbacks () > before)

let test_scratch_geometric_growth () =
  (* Growing a kept buffer byte-by-byte must reallocate O(log n)
     times, not once per request. *)
  Scratch.with_bytes ~slot:2 16 (fun cell ->
      let copies = ref 0 in
      let last = ref (Bytes.length cell.Scratch.buf) in
      for n = 1 to 100_000 do
        let b = Scratch.ensure_keep cell n in
        if Bytes.length b <> !last then begin
          incr copies;
          Alcotest.(check bool)
            "each growth at least doubles" true
            (Bytes.length b >= 2 * !last);
          last := Bytes.length b
        end
      done;
      Alcotest.(check bool)
        (Printf.sprintf "O(log n) reallocations (saw %d)" !copies)
        true (!copies <= 20));
  (* Contents survive the growth. *)
  Scratch.with_bytes ~slot:2 4 (fun cell ->
      Bytes.blit_string "abcd" 0 cell.Scratch.buf 0 4;
      let grown = Scratch.ensure_keep cell 1_000 in
      Alcotest.(check string)
        "prefix preserved" "abcd"
        (Bytes.sub_string grown 0 4))

(* --- Service: the bounded admission queue ------------------------------- *)

let test_service_runs_everything () =
  let s = Service.create ~jobs:2 ~capacity:64 () in
  let count = Atomic.make 0 in
  for _ = 1 to 50 do
    match Service.submit s (fun () -> Atomic.incr count) with
    | Service.Accepted -> ()
    | Service.Rejected_full | Service.Rejected_draining ->
        Alcotest.fail "submission rejected below capacity"
  done;
  Service.drain s;
  Alcotest.(check int) "every accepted job ran" 50 (Atomic.get count)

let test_service_backpressure_and_drain () =
  let s = Service.create ~jobs:1 ~capacity:1 () in
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let released = ref false in
  let started = Atomic.make false in
  let ran = Atomic.make 0 in
  let blocking () =
    Atomic.set started true;
    Mutex.lock gate_m;
    while not !released do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m;
    Atomic.incr ran
  in
  (match Service.submit s blocking with
  | Service.Accepted -> ()
  | _ -> Alcotest.fail "job 1 not accepted");
  (* Wait until job 1 occupies the worker, so the queue is empty. *)
  let rec spin n =
    if not (Atomic.get started) then
      if n = 0 then Alcotest.fail "job 1 never started"
      else begin
        Unix.sleepf 0.005;
        spin (n - 1)
      end
  in
  spin 1_000;
  (match Service.submit s (fun () -> Atomic.incr ran) with
  | Service.Accepted -> ()
  | _ -> Alcotest.fail "job 2 should fill the queue");
  Alcotest.(check int) "queue full" 1 (Service.depth s);
  (match Service.submit s (fun () -> Atomic.incr ran) with
  | Service.Rejected_full -> ()
  | Service.Accepted | Service.Rejected_draining ->
      Alcotest.fail "job 3 must be rejected while the queue is full");
  (* Release the worker and drain: both accepted jobs must finish. *)
  Mutex.lock gate_m;
  released := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  Service.drain s;
  Alcotest.(check int) "accepted jobs all ran" 2 (Atomic.get ran);
  match Service.submit s (fun () -> ()) with
  | Service.Rejected_draining -> ()
  | Service.Accepted | Service.Rejected_full ->
      Alcotest.fail "post-drain submission must be rejected"

let test_service_job_exception_contained () =
  let s = Service.create ~jobs:2 ~capacity:8 () in
  let ran = Atomic.make 0 in
  (match Service.submit s (fun () -> failwith "job blew up") with
  | Service.Accepted -> ()
  | _ -> Alcotest.fail "not accepted");
  (match Service.submit s (fun () -> Atomic.incr ran) with
  | Service.Accepted -> ()
  | _ -> Alcotest.fail "not accepted");
  Service.drain s;
  Alcotest.(check int) "exception did not poison the batch" 1
    (Atomic.get ran)

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "input order preserved" `Quick
      test_map_preserves_order_not_completion_order;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "exception propagation (jobs=1)" `Quick
      test_exception_propagates_sequentially;
    Alcotest.test_case "degenerate and edge inputs" `Quick
      test_degenerate_and_edges;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "invalid jobs / shutdown" `Quick
      test_invalid_jobs_and_shutdown;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_sane;
    Alcotest.test_case "scratch reentrant fallback counted" `Quick
      test_scratch_reentrant_fallback;
    Alcotest.test_case "scratch geometric growth" `Quick
      test_scratch_geometric_growth;
    Alcotest.test_case "service runs all accepted jobs" `Quick
      test_service_runs_everything;
    Alcotest.test_case "service backpressure and drain" `Quick
      test_service_backpressure_and_drain;
    Alcotest.test_case "service contains job exceptions" `Quick
      test_service_job_exception_contained;
  ]
