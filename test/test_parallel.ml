(* The Domain worker pool behind fleet analysis: deterministic result
   ordering, exception capture/re-raise, the jobs=1 degenerate case, and
   pool reuse across batches. *)

open Tdat_parallel

(* Uneven, index-dependent busy work so completion order differs from
   input order whenever the pool really runs concurrently. *)
let lopsided i =
  let acc = ref 0 in
  for k = 0 to (i mod 7) * 2_000 do
    acc := !acc + k
  done;
  (i * i) + (!acc * 0)

let test_map_matches_sequential () =
  let xs = List.init 500 Fun.id in
  let expected = List.map lopsided xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d equals List.map" jobs)
            expected (Pool.map pool lopsided xs)))
    [ 1; 2; 4; 8 ]

let test_map_preserves_order_not_completion_order () =
  (* Map to (index, value) pairs: ordering must follow input indices. *)
  let xs = List.init 100 (fun i -> 99 - i) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let out = Pool.map pool (fun x -> (x, lopsided x)) xs in
      Alcotest.(check (list int)) "first components in input order" xs
        (List.map fst out))

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "exception re-raised in caller" (Boom 17)
        (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i = 17 then raise (Boom 17) else lopsided i)
               (List.init 64 Fun.id)));
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "pool usable after failure" [ 2; 4; 6 ]
        (Pool.map pool (fun i -> 2 * i) [ 1; 2; 3 ]))

let test_exception_propagates_sequentially () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.check_raises "jobs=1 re-raises too" (Boom 3) (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i = 3 then raise (Boom 3) else i)
               [ 1; 2; 3; 4 ])))

let test_degenerate_and_edges () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs=1 reported" 1 (Pool.jobs pool);
      Alcotest.(check (list int)) "jobs=1 maps" [ 1; 4; 9 ]
        (Pool.map pool (fun x -> x * x) [ 1; 2; 3 ]));
  Pool.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int)) "empty input" []
        (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list string)) "singleton input" [ "a" ]
        (Pool.map pool String.lowercase_ascii [ "A" ]);
      Alcotest.(check (list int)) "more jobs than items" [ 0; 1; 2 ]
        (Pool.map pool Fun.id [ 0; 1; 2 ]))

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init (20 * round) Fun.id in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map lopsided xs)
          (Pool.map pool lopsided xs)
      done)

let test_invalid_jobs_and_shutdown () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs (0) must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "works before shutdown" [ 1 ]
    (Pool.map pool Fun.id [ 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1; 2 ]))

let test_default_jobs_sane () =
  let d = Pool.default_jobs () in
  Alcotest.(check bool) "default >= 1" true (d >= 1);
  Pool.with_pool (fun pool ->
      Alcotest.(check int) "pool takes the default" d (Pool.jobs pool))

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "input order preserved" `Quick
      test_map_preserves_order_not_completion_order;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "exception propagation (jobs=1)" `Quick
      test_exception_propagates_sequentially;
    Alcotest.test_case "degenerate and edge inputs" `Quick
      test_degenerate_and_edges;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "invalid jobs / shutdown" `Quick
      test_invalid_jobs_and_shutdown;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_sane;
  ]
