let () =
  Alcotest.run "tdat"
    [
      ("timerange", Test_timerange.suite);
      ("stats", Test_stats.suite);
      ("pkt", Test_pkt.suite);
      ("ingest", Test_ingest.suite);
      ("bgp", Test_bgp.suite);
      ("netsim", Test_netsim.suite);
      ("tcpsim", Test_tcpsim.suite);
      ("bgpsim", Test_bgpsim.suite);
      ("analyzer", Test_analyzer.suite);
      ("parallel", Test_parallel.suite);
      ("detectors", Test_detectors.suite);
      ("fleet", Test_fleet.suite);
      ("properties", Test_properties.suite);
      ("equiv", Test_equiv.suite);
      ("audit", Test_audit.suite);
      ("lint", Test_lint.suite);
      ("study", Test_study.suite);
      ("serve", Test_serve.suite);
      ("experiment", Test_experiment.suite);
      ("obs", Test_obs.suite);
      ("misc", Test_misc.suite);
    ]
