(* Packet model and pcap codec. *)

open Tdat_pkt
module Seg = Tcp_segment

let ep1 = Endpoint.of_quad 192 168 1 1 12345
let ep2 = Endpoint.of_quad 10 0 0 2 179

let seg ?(ts = 0) ?(seq = 0) ?(ack = 0) ?len ?(window = 65535) ?flags
    ?mss_opt ?payload ~src ~dst () =
  Seg.v ~ts ~src ~dst ~seq ~ack ?len ~window ?flags ?mss_opt ?payload ()

let test_endpoint () =
  Alcotest.(check string) "render" "192.168.1.1:12345" (Endpoint.to_string ep1);
  Alcotest.(check bool) "equal" true (Endpoint.equal ep1 ep1);
  Alcotest.(check bool) "distinct" false (Endpoint.equal ep1 ep2);
  Alcotest.check_raises "bad octet"
    (Invalid_argument "Endpoint.of_quad: a octet 256") (fun () ->
      ignore (Endpoint.of_quad 256 0 0 1 80));
  (* High first octet exercises the unsigned-compare path. *)
  let high = Endpoint.of_quad 200 0 0 1 80 in
  let low = Endpoint.of_quad 10 0 0 1 80 in
  Alcotest.(check bool) "unsigned order" true (Endpoint.compare low high < 0)

let test_segment () =
  let s = seg ~src:ep1 ~dst:ep2 ~payload:"hello" () in
  Alcotest.(check int) "len from payload" 5 s.Seg.len;
  Alcotest.(check int) "seq_end" 5 (Seg.seq_end s);
  Alcotest.(check bool) "is_data" true (Seg.is_data s);
  Alcotest.(check bool) "not pure ack" false (Seg.is_pure_ack s);
  let a = seg ~src:ep2 ~dst:ep1 ~flags:Seg.ack_flags () in
  Alcotest.(check bool) "pure ack" true (Seg.is_pure_ack a);
  Alcotest.check_raises "len mismatch"
    (Invalid_argument "Tcp_segment.v: len disagrees with payload") (fun () ->
      ignore (seg ~src:ep1 ~dst:ep2 ~len:3 ~payload:"hello" ()))

let test_flow () =
  let flow = Flow.v ~sender:ep1 ~receiver:ep2 in
  let d = seg ~src:ep1 ~dst:ep2 ~payload:"x" () in
  let a = seg ~src:ep2 ~dst:ep1 () in
  let other = seg ~src:ep2 ~dst:(Endpoint.of_quad 1 2 3 4 5) () in
  Alcotest.(check bool) "to receiver" true
    (Flow.direction_of flow d = Some Flow.To_receiver);
  Alcotest.(check bool) "to sender" true
    (Flow.direction_of flow a = Some Flow.To_sender);
  Alcotest.(check bool) "foreign" true (Flow.direction_of flow other = None);
  let rev = Flow.v ~sender:ep2 ~receiver:ep1 in
  Alcotest.(check bool) "key orientation-independent" true
    (Flow.key flow = Flow.key rev)

let test_trace () =
  let segs =
    [
      seg ~ts:30 ~src:ep2 ~dst:ep1 ();
      seg ~ts:10 ~src:ep1 ~dst:ep2 ~payload:"aa" ();
      seg ~ts:20 ~src:ep1 ~dst:ep2 ~payload:"bbb" ();
    ]
  in
  let t = Trace.of_segments segs in
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check int) "bytes" 5 (Trace.total_bytes t);
  (match Trace.segments t with
  | first :: _ -> Alcotest.(check int) "sorted" 10 first.Seg.ts
  | [] -> Alcotest.fail "empty");
  Alcotest.(check int) "one connection" 1 (List.length (Trace.connections t));
  let flow = Trace.infer_sender t (List.hd (Trace.connections t)) in
  Alcotest.(check bool) "sender by volume" true
    (Endpoint.equal flow.Flow.sender ep1)

let test_trace_split () =
  let ep3 = Endpoint.of_quad 10 9 9 9 5000 in
  let t =
    Trace.of_segments
      [
        seg ~ts:1 ~src:ep1 ~dst:ep2 ~payload:"x" ();
        seg ~ts:2 ~src:ep3 ~dst:ep2 ~payload:"y" ();
        seg ~ts:3 ~src:ep2 ~dst:ep1 ();
      ]
  in
  Alcotest.(check int) "two connections" 2 (List.length (Trace.connections t));
  let sub = Trace.split_connection t ~sender:ep1 ~receiver:ep2 in
  Alcotest.(check int) "split keeps both directions" 2 (Trace.length sub)

let test_trace_partition () =
  (* partition_connections must agree with connections + split_connection
     — same keys, same first-appearance order, same sub-traces — while
     scanning the trace only once. *)
  let ep3 = Endpoint.of_quad 10 9 9 9 5000 in
  let ep4 = Endpoint.of_quad 172 16 0 7 33000 in
  let t =
    Trace.of_segments
      [
        seg ~ts:1 ~src:ep1 ~dst:ep2 ~payload:"aa" ();
        seg ~ts:2 ~src:ep3 ~dst:ep2 ~payload:"b" ();
        seg ~ts:3 ~src:ep2 ~dst:ep1 ();
        seg ~ts:4 ~src:ep4 ~dst:ep2 ~payload:"cccc" ();
        seg ~ts:5 ~src:ep2 ~dst:ep3 ();
        seg ~ts:6 ~src:ep1 ~dst:ep2 ~payload:"dd" ();
      ]
  in
  let parts = Trace.partition_connections t in
  Alcotest.(check int) "one bucket per connection" 3 (List.length parts);
  Alcotest.(check bool) "keys in first-appearance order" true
    (List.for_all2
       (fun (a, b) (a', b') -> Endpoint.equal a a' && Endpoint.equal b b')
       (Trace.connections t) (List.map fst parts));
  List.iter
    (fun ((a, b), sub) ->
      let reference = Trace.split_connection t ~sender:a ~receiver:b in
      Alcotest.(check int)
        (Format.asprintf "bucket %a<->%a size" Endpoint.pp a Endpoint.pp b)
        (Trace.length reference) (Trace.length sub);
      Alcotest.(check bool) "same segments" true
        (List.for_all2
           (fun (x : Seg.t) (y : Seg.t) -> x = y)
           (Trace.segments reference) (Trace.segments sub));
      Alcotest.(check bool) "voids inherited" true
        (Tdat_timerange.Span_set.equal (Trace.voids sub) (Trace.voids t)))
    parts;
  Alcotest.(check int) "empty trace partitions to nothing" 0
    (List.length (Trace.partition_connections (Trace.of_segments [])))

let test_pcap_roundtrip () =
  let segs =
    [
      seg ~ts:1_500_000 ~src:ep1 ~dst:ep2 ~seq:0 ~flags:(Seg.flags ~syn:true ())
        ~mss_opt:1400 ();
      seg ~ts:1_501_000 ~src:ep2 ~dst:ep1
        ~flags:(Seg.flags ~syn:true ~ack:true ())
        ~mss_opt:1200 ~window:16384 ();
      seg ~ts:1_502_000 ~src:ep1 ~dst:ep2 ~seq:0 ~payload:"table transfer"
        ~flags:Seg.data_flags ();
      seg ~ts:1_503_000 ~src:ep2 ~dst:ep1 ~ack:14 ~window:16370
        ~flags:Seg.ack_flags ();
    ]
  in
  let t = Trace.of_segments segs in
  let decoded = Pcap.decode (Pcap.encode t) in
  Alcotest.(check int) "packet count" 4 (Trace.length decoded);
  let d = List.nth (Trace.segments decoded) 2 in
  Alcotest.(check string) "payload survives" "table transfer" d.Seg.payload;
  Alcotest.(check int) "timestamp survives" 1_502_000 d.Seg.ts;
  let sa = List.nth (Trace.segments decoded) 1 in
  Alcotest.(check (option int)) "mss option survives" (Some 1200) sa.Seg.mss_opt;
  Alcotest.(check int) "window survives" 16384 sa.Seg.window;
  Alcotest.(check bool) "flags survive" true
    (sa.Seg.flags.Seg.syn && sa.Seg.flags.Seg.ack)

let test_pcap_rejects_garbage () =
  Alcotest.check_raises "bad magic" (Pcap.Decode_error "Pcap.decode: bad magic")
    (fun () -> ignore (Pcap.decode (String.make 32 'z')));
  Alcotest.check_raises "truncated"
    (Pcap.Decode_error "Pcap.decode: truncated header") (fun () ->
      ignore (Pcap.decode "abc"))

let test_pcap_file_io () =
  let t =
    Trace.of_segments [ seg ~ts:5 ~src:ep1 ~dst:ep2 ~payload:"disk" () ]
  in
  let path = Filename.temp_file "tdat_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pcap.to_file path t;
      let back = Pcap.of_file path in
      Alcotest.(check int) "read back" 1 (Trace.length back))

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:100 arb f)

let arb_segment =
  let gen =
    QCheck.Gen.(
      let* ts = int_bound 10_000_000 in
      let* seq = int_bound 1_000_000 in
      let* ack = int_bound 1_000_000 in
      let* window = int_bound 65535 in
      let* len = int_bound 1400 in
      let* flip = bool in
      let payload = String.make len 'p' in
      let src, dst = if flip then (ep1, ep2) else (ep2, ep1) in
      return
        (Seg.v ~ts ~src ~dst ~seq ~ack ~window ~flags:Seg.data_flags ~payload
           ()))
  in
  QCheck.make ~print:(fun s -> Format.asprintf "%a" Seg.pp s) gen

let qcheck_suite =
  [
    prop "pcap roundtrip preserves segments"
      (QCheck.list_of_size (QCheck.Gen.int_range 0 20) arb_segment)
      (fun segs ->
        let t = Trace.of_segments segs in
        let back = Pcap.decode (Pcap.encode t) in
        List.for_all2
          (fun (a : Seg.t) (b : Seg.t) ->
            a.Seg.ts = b.Seg.ts && a.Seg.seq = b.Seg.seq
            && a.Seg.ack = b.Seg.ack && a.Seg.len = b.Seg.len
            && a.Seg.window = b.Seg.window
            && a.Seg.payload = b.Seg.payload
            && Endpoint.equal a.Seg.src b.Seg.src)
          (Trace.segments t) (Trace.segments back));
  ]

let suite =
  [
    Alcotest.test_case "endpoint" `Quick test_endpoint;
    Alcotest.test_case "segment" `Quick test_segment;
    Alcotest.test_case "flow" `Quick test_flow;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "trace split" `Quick test_trace_split;
    Alcotest.test_case "trace partition" `Quick test_trace_partition;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap garbage" `Quick test_pcap_rejects_garbage;
    Alcotest.test_case "pcap file io" `Quick test_pcap_file_io;
  ]
  @ qcheck_suite
