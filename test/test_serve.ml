(* The serve daemon, end to end over real sockets: JSON codec, protocol
   parsing (malformed input comes back as typed errors, never a dead
   connection), cache hit/miss correctness under file replacement,
   queue-full backpressure (429), tailing a still-growing capture, and
   graceful drain — in-process via the shutdown verb and out-of-process
   via SIGTERM on a spawned `tdat serve`. *)

module Json = Tdat_serve.Json
module Protocol = Tdat_serve.Protocol
module Server = Tdat_serve.Server
module Client = Tdat_serve.Client
module Scenario = Tdat_bgpsim.Scenario
module Obs = Tdat_obs.Metrics
module Tracer = Tdat_obs.Tracer

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let bin_exe name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name (Filename.concat "bin" name))

let tdat_exe = bin_exe "tdat_cli.exe"

let tmpdir () =
  let f = Filename.temp_file "tdat_serve" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

(* --- JSON codec -------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2.5,-3,\"x\"]";
      "{\"a\":1,\"b\":[{\"c\":null}],\"s\":\"hi\"}";
      "\"quote \\\" backslash \\\\ newline \\n tab \\t\"";
      "{}";
      "[]";
    ]
  in
  List.iter
    (fun src ->
      match Json.parse src with
      | Error msg -> Alcotest.failf "parse %s: %s" src msg
      | Ok j -> (
          (* Emit, reparse: must be a fixpoint. *)
          let emitted = Json.to_string j in
          match Json.parse emitted with
          | Error msg -> Alcotest.failf "reparse %s: %s" emitted msg
          | Ok j2 ->
              Alcotest.(check string)
                ("fixpoint of " ^ src) emitted (Json.to_string j2)))
    cases

let test_json_escapes () =
  (* Control characters and non-ASCII survive a round trip. *)
  let s = "a\nb\tc\r\x01d\xe2\x82\xac" in
  let emitted = Json.to_string (Json.Str s) in
  (match Json.parse emitted with
  | Ok (Json.Str s2) -> Alcotest.(check string) "escape roundtrip" s s2
  | Ok _ | Error _ -> Alcotest.fail "escape roundtrip reparse");
  (* Surrogate pair decodes to UTF-8. *)
  match Json.parse "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "surrogate pair"

let test_json_malformed () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed %S" src
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "nul";
      "\"unterminated";
      "1 2" (* trailing garbage *);
      "{\"a\" 1}";
      "\"bad escape \\q\"";
      "01" (* leading zero *);
    ]

let test_json_numbers () =
  (match Json.parse "42" with
  | Ok (Json.Num n) ->
      Alcotest.(check (float 0.)) "int" 42. n;
      Alcotest.(check string) "int emits bare" "42" (Json.to_string (Json.Num n))
  | Ok _ | Error _ -> Alcotest.fail "42");
  match Json.parse "-1.5e2" with
  | Ok (Json.Num n) -> Alcotest.(check (float 1e-9)) "sci" (-150.) n
  | Ok _ | Error _ -> Alcotest.fail "-1.5e2"

(* --- protocol parsing --------------------------------------------------- *)

let request_error line =
  match (Protocol.parse_line line).Protocol.request with
  | Error e -> e
  | Ok _ -> Alcotest.failf "accepted %S" line

let test_protocol_malformed () =
  let e = request_error "{nope" in
  Alcotest.(check string) "bad json code" "bad_json" e.Protocol.code;
  Alcotest.(check int) "bad json status" 400 e.Protocol.status;
  let e = request_error "[1,2]" in
  Alcotest.(check string) "non-object" "bad_request" e.Protocol.code;
  let e = request_error "{\"cmd\":\"frobnicate\"}" in
  Alcotest.(check string) "unknown cmd" "bad_request" e.Protocol.code;
  let e = request_error "{\"cmd\":\"analyze\"}" in
  Alcotest.(check string) "missing path" "bad_request" e.Protocol.code;
  let e = request_error "{\"cmd\":\"study\",\"paths\":[]}" in
  Alcotest.(check string) "empty paths" "bad_request" e.Protocol.code;
  let e =
    request_error "{\"cmd\":\"analyze\",\"path\":\"x\",\"follow_idle_s\":-1}"
  in
  Alcotest.(check string) "negative follow" "bad_request" e.Protocol.code

let test_protocol_requests () =
  (match Protocol.parse_line "{\"id\":7,\"cmd\":\"ping\"}" with
  | { Protocol.id = Json.Num 7.; request = Ok Protocol.Ping } -> ()
  | _ -> Alcotest.fail "ping with id");
  (match
     (Protocol.parse_line
        "{\"cmd\":\"analyze\",\"path\":\"t.pcap\",\"series\":true,\
         \"follow_idle_s\":0.5}")
       .Protocol.request
   with
  | Ok
      (Protocol.Analyze
        {
          path = "t.pcap";
          series = true;
          sender_side = false;
          follow = Some { Protocol.idle_s = 0.5; limit_s = 60. };
        }) ->
      ()
  | _ -> Alcotest.fail "analyze fields");
  match
    (Protocol.parse_line
       "{\"cmd\":\"study\",\"paths\":[\"a\",\"b\"],\"gap_s\":120,\
        \"min_prefixes\":5}")
      .Protocol.request
  with
  | Ok (Protocol.Study { paths = [ "a"; "b" ]; gap_s = 120.; min_prefixes = 5; _ })
    ->
      ()
  | _ -> Alcotest.fail "study fields"

(* --- server helpers ----------------------------------------------------- *)

let start_server ?(jobs = 2) ?(queue = 8) () =
  Server.start
    {
      Server.default_config with
      address = `Tcp ("127.0.0.1", 0);
      jobs;
      queue_capacity = queue;
      cache_capacity = 4;
    }

let stop_server server =
  Server.stop server;
  Server.wait server

let rpc client fields =
  match Client.rpc client (Json.Obj fields) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "rpc: %s" msg

let is_ok resp =
  match Json.member "ok" resp with Some (Json.Bool b) -> b | _ -> false

let error_code resp =
  match Json.member "error" resp with
  | Some e -> (
      match Json.member "code" e with Some (Json.Str c) -> Some c | _ -> None)
  | None -> None

let result_member resp name =
  match Json.member "result" resp with
  | Some r -> Json.member name r
  | None -> None

let result_output resp =
  match result_member resp "output" with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail "response has no output"

let result_cache_hit resp =
  match result_member resp "cache_hit" with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail "response has no cache_hit"

(* Receive until the response carrying [id] arrives, stashing the
   others — pipelined requests complete in whatever order the pool
   finishes them. *)
let recv_for client stash id =
  let key j =
    match Json.member "id" j with Some v -> Json.to_string v | None -> "null"
  in
  let rec go () =
    match Hashtbl.find_opt stash id with
    | Some r ->
        Hashtbl.remove stash id;
        r
    | None -> (
        match Client.recv_line client with
        | None -> Alcotest.failf "eof waiting for response %s" id
        | Some line -> (
            match Json.parse line with
            | Ok j ->
                Hashtbl.replace stash (key j) j;
                go ()
            | Error msg -> Alcotest.failf "bad response line: %s" msg))
  in
  go ()

let write_capture ~seed ~prefixes path =
  let result =
    Scenario.run ~seed [ Scenario.router ~table_prefixes:prefixes 1 ]
  in
  Tdat_pkt.Pcap.to_file path result.Scenario.site_trace

(* What `tdat analyze <path>` prints: the CLI calls this renderer. *)
let batch_output path =
  let r = Tdat_pkt.Pcap.read_file path in
  Tdat_serve.Render.analysis
    (Tdat.Analyzer.analyze_all ~jobs:1 r.Tdat_pkt.Pcap.trace)

(* --- server: protocol round-trip ---------------------------------------- *)

let test_server_roundtrip () =
  let server = start_server () in
  let client = Client.connect (Server.address server) in
  (* ping *)
  let resp = rpc client [ ("cmd", Json.Str "ping"); ("id", Json.Num 1.) ] in
  Alcotest.(check bool) "ping ok" true (is_ok resp);
  (* malformed JSON: typed error, connection survives *)
  Client.send_line client "{this is not json";
  (match Client.recv_line client with
  | Some line -> (
      match Json.parse line with
      | Ok resp ->
          Alcotest.(check bool) "malformed not ok" false (is_ok resp);
          Alcotest.(check (option string))
            "malformed code" (Some "bad_json") (error_code resp)
      | Error msg -> Alcotest.failf "unparsable error response: %s" msg)
  | None -> Alcotest.fail "connection died on malformed input");
  (* unknown verb: still typed, still alive *)
  let resp = rpc client [ ("cmd", Json.Str "frobnicate") ] in
  Alcotest.(check (option string))
    "unknown cmd" (Some "bad_request") (error_code resp);
  (* missing file: 404-style *)
  let resp =
    rpc client
      [ ("cmd", Json.Str "analyze"); ("path", Json.Str "/nonexistent.pcap") ]
  in
  Alcotest.(check (option string))
    "missing file" (Some "not_found") (error_code resp);
  (* the connection survived all of the above *)
  let resp = rpc client [ ("cmd", Json.Str "stats") ] in
  Alcotest.(check bool) "stats ok" true (is_ok resp);
  Client.close client;
  stop_server server

(* --- server: analysis correctness and the cache -------------------------- *)

let test_server_analyze_and_cache () =
  let dir = tmpdir () in
  let path = Filename.concat dir "cap.pcap" in
  write_capture ~seed:31 ~prefixes:800 path;
  let expected_a = batch_output path in
  let server = start_server () in
  let client = Client.connect (Server.address server) in
  let analyze () =
    rpc client [ ("cmd", Json.Str "analyze"); ("path", Json.Str path) ]
  in
  (* Cold: miss, and byte-identical to the batch CLI's stdout. *)
  let resp = analyze () in
  Alcotest.(check bool) "analyze ok" true (is_ok resp);
  Alcotest.(check bool) "first is a miss" false (result_cache_hit resp);
  Alcotest.(check string) "output matches batch" expected_a
    (result_output resp);
  (* Warm: hit, same bytes. *)
  let resp = analyze () in
  Alcotest.(check bool) "second is a hit" true (result_cache_hit resp);
  Alcotest.(check string) "hit output identical" expected_a
    (result_output resp);
  (* Replace the file (different size): the (mtime, size) key must
     invalidate, and the answer must be the new file's. *)
  write_capture ~seed:32 ~prefixes:1400 path;
  let expected_b = batch_output path in
  Alcotest.(check bool)
    "distinct captures render distinct output" false
    (String.equal expected_a expected_b);
  let resp = analyze () in
  Alcotest.(check bool) "replacement is a miss" false (result_cache_hit resp);
  Alcotest.(check string) "replacement output" expected_b
    (result_output resp);
  Client.close client;
  stop_server server;
  Sys.remove path;
  Unix.rmdir dir

(* --- server: cache eviction accounting ------------------------------------ *)

let cache_pcap_field resp name =
  match result_member resp "cache" with
  | Some cache -> (
      match Option.bind (Json.member "pcap" cache) (Json.member name) with
      | Some (Json.Num n) -> int_of_float n
      | _ -> Alcotest.failf "stats has no cache.pcap.%s" name)
  | None -> Alcotest.fail "stats has no cache"

let test_server_cache_evictions () =
  (* Capacity is 4 (start_server): five distinct cold captures must
     displace exactly one entry, and re-analyzing the displaced one
     displaces another — capacity pressure, distinct from the
     mtime/size invalidation covered above (which counts as a miss, not
     an eviction). *)
  let dir = tmpdir () in
  let paths =
    List.init 5 (fun i -> Filename.concat dir (Printf.sprintf "c%d.pcap" i))
  in
  List.iteri
    (fun i p -> write_capture ~seed:(40 + i) ~prefixes:(200 + (10 * i)) p)
    paths;
  let server = start_server () in
  let client = Client.connect (Server.address server) in
  let analyze p =
    let resp = rpc client [ ("cmd", Json.Str "analyze"); ("path", Json.Str p) ] in
    Alcotest.(check bool) "analyze ok" true (is_ok resp)
  in
  List.iter analyze paths;
  let resp = rpc client [ ("cmd", Json.Str "stats") ] in
  Alcotest.(check int) "five cold analyses all miss" 5
    (cache_pcap_field resp "misses");
  Alcotest.(check int) "no hits yet" 0 (cache_pcap_field resp "hits");
  Alcotest.(check int) "entries capped at capacity" 4
    (cache_pcap_field resp "entries");
  Alcotest.(check int) "exactly one capacity eviction" 1
    (cache_pcap_field resp "evictions");
  analyze (List.hd paths);
  let resp = rpc client [ ("cmd", Json.Str "stats") ] in
  Alcotest.(check int) "the evicted path misses again" 6
    (cache_pcap_field resp "misses");
  Alcotest.(check int) "and displaces another entry" 2
    (cache_pcap_field resp "evictions");
  Client.close client;
  stop_server server;
  List.iter Sys.remove paths;
  Unix.rmdir dir

(* --- server: queue-full backpressure ------------------------------------- *)

let stats_field client name =
  let resp = rpc client [ ("cmd", Json.Str "stats") ] in
  match result_member resp name with
  | Some (Json.Num n) -> int_of_float n
  | _ -> Alcotest.failf "stats has no %s" name

let await client name value =
  let rec go n =
    if n = 0 then Alcotest.failf "timeout waiting for %s=%d" name value
    else if stats_field client name = value then ()
    else begin
      Unix.sleepf 0.01;
      go (n - 1)
    end
  in
  go 500

let test_server_backpressure () =
  (* One worker, queue of one: job 1 occupies the worker, job 2 fills
     the queue, job 3 must be rejected with the 429-style busy error. *)
  let server = start_server ~jobs:1 ~queue:1 () in
  let addr = Server.address server in
  let work = Client.connect addr in
  let ctl = Client.connect addr in
  let stash = Hashtbl.create 8 in
  let sleep_req id =
    Client.send_line work
      (Json.to_string
         (Json.Obj
            [ ("cmd", Json.Str "sleep"); ("ms", Json.Num 300.);
              ("id", Json.Num id) ]))
  in
  sleep_req 1.;
  await ctl "in_flight" 1;
  sleep_req 2.;
  await ctl "queue_depth" 1;
  sleep_req 3.;
  let r3 = recv_for work stash "3" in
  Alcotest.(check bool) "job 3 rejected" false (is_ok r3);
  Alcotest.(check (option string)) "job 3 busy" (Some "busy") (error_code r3);
  let r1 = recv_for work stash "1" in
  Alcotest.(check bool) "job 1 completed" true (is_ok r1);
  let r2 = recv_for work stash "2" in
  Alcotest.(check bool) "job 2 completed" true (is_ok r2);
  Client.close work;
  Client.close ctl;
  stop_server server

(* --- server: tailing a still-growing capture ------------------------------ *)

let test_server_follow_tail () =
  let dir = tmpdir () in
  let full = Filename.concat dir "full.pcap" in
  let tail = Filename.concat dir "tail.pcap" in
  write_capture ~seed:33 ~prefixes:800 full;
  let data =
    In_channel.with_open_bin full (fun ic -> In_channel.input_all ic)
  in
  let expected = batch_output full in
  (* Start with the first half — cut mid-record on purpose — and
     append the rest while the server is already reading. *)
  let cut = String.length data / 2 in
  Out_channel.with_open_bin tail (fun oc ->
      Out_channel.output_string oc (String.sub data 0 cut));
  let server = start_server () in
  let client = Client.connect (Server.address server) in
  let writer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.15;
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o600 tail
        in
        output_string oc (String.sub data cut (String.length data - cut));
        close_out oc)
  in
  let resp =
    rpc client
      [
        ("cmd", Json.Str "analyze");
        ("path", Json.Str tail);
        ("follow_idle_s", Json.Num 0.5);
        ("follow_limit_s", Json.Num 30.);
      ]
  in
  Domain.join writer;
  Alcotest.(check bool) "tail analyze ok" true (is_ok resp);
  Alcotest.(check string) "tailed output equals full-file output" expected
    (result_output resp);
  Client.close client;
  stop_server server;
  Sys.remove full;
  Sys.remove tail;
  Unix.rmdir dir

(* --- server: graceful drain ---------------------------------------------- *)

let test_server_shutdown_drain () =
  (* A job accepted before the shutdown verb must complete and its
     response must be flushed before the server closes the socket. *)
  let server = start_server ~jobs:1 () in
  let client = Client.connect (Server.address server) in
  let stash = Hashtbl.create 8 in
  Client.send_line client
    (Json.to_string
       (Json.Obj
          [ ("cmd", Json.Str "sleep"); ("ms", Json.Num 300.);
            ("id", Json.Num 1.) ]));
  Client.send_line client
    (Json.to_string
       (Json.Obj [ ("cmd", Json.Str "shutdown"); ("id", Json.Num 2.) ]));
  let r2 = recv_for client stash "2" in
  Alcotest.(check bool) "shutdown acknowledged" true (is_ok r2);
  let r1 = recv_for client stash "1" in
  Alcotest.(check bool) "in-flight job completed during drain" true
    (is_ok r1);
  (* After the drain the server closes the connection. *)
  Alcotest.(check bool) "connection closed after drain" true
    (Client.recv_line client = None);
  Client.close client;
  Server.wait server

let test_server_sigterm_drain () =
  (* The same guarantee out of process: spawn `tdat serve`, give it a
     job, SIGTERM it mid-flight, and require the response, an orderly
     EOF, and exit status 0. *)
  let dir = tmpdir () in
  let sock = Filename.concat dir "tdat.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process tdat_exe
      [| "tdat"; "serve"; "--socket"; sock; "--jobs"; "1" |]
      devnull devnull devnull
  in
  Unix.close devnull;
  (* Wait for the daemon to come up. *)
  let rec connect n =
    match Client.connect (`Unix sock) with
    | client -> client
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        if n = 0 then Alcotest.fail "serve daemon never came up"
        else begin
          Unix.sleepf 0.02;
          connect (n - 1)
        end
  in
  let client = connect 250 in
  let stash = Hashtbl.create 8 in
  Client.send_line client
    (Json.to_string
       (Json.Obj
          [ ("cmd", Json.Str "sleep"); ("ms", Json.Num 400.);
            ("id", Json.Num 1.) ]));
  Unix.sleepf 0.1;
  Unix.kill pid Sys.sigterm;
  let r1 = recv_for client stash "1" in
  Alcotest.(check bool) "job survived SIGTERM" true (is_ok r1);
  Alcotest.(check bool) "orderly EOF after drain" true
    (Client.recv_line client = None);
  Client.close client;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "serve exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
      Alcotest.failf "serve killed by signal %d" n);
  if Sys.file_exists sock then Sys.remove sock;
  Unix.rmdir dir

(* --- server: study over the cache ---------------------------------------- *)

let test_server_study () =
  let dir = tmpdir () in
  let path = Filename.concat dir "updates.mrt" in
  let result =
    Scenario.run ~seed:34 [ Scenario.router ~table_prefixes:600 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  Tdat_bgp.Mrt.to_file path o.Scenario.mrt;
  (* The reference: the batch aggregator over the same file. *)
  let expected =
    Tdat_study.Report.to_json
      (Tdat_study.Aggregate.run ~jobs:1 [ path ])
  in
  let server = start_server () in
  let client = Client.connect (Server.address server) in
  let study () =
    rpc client
      [ ("cmd", Json.Str "study"); ("paths", Json.Arr [ Json.Str path ]) ]
  in
  let resp = study () in
  Alcotest.(check bool) "study ok" true (is_ok resp);
  (match (result_member resp "report", Json.parse expected) with
  | Some got, Ok want ->
      Alcotest.(check string)
        "study report equals batch aggregate" (Json.to_string want)
        (Json.to_string got)
  | _ -> Alcotest.fail "study response shape");
  (match result_member resp "cache_misses" with
  | Some (Json.Num 1.) -> ()
  | _ -> Alcotest.fail "first study misses");
  let resp = study () in
  (match result_member resp "cache_hits" with
  | Some (Json.Num 1.) -> ()
  | _ -> Alcotest.fail "second study hits");
  Client.close client;
  stop_server server;
  Sys.remove path;
  Unix.rmdir dir

(* --- protocol: request envelope (trace / timings) ------------------------- *)

let test_protocol_envelope () =
  let p =
    Protocol.parse_line "{\"cmd\":\"ping\",\"trace\":\"tr-1\",\"timings\":true}"
  in
  Alcotest.(check (option string)) "trace parsed" (Some "tr-1") p.Protocol.trace;
  Alcotest.(check bool) "timings parsed" true p.Protocol.timings;
  let p = Protocol.parse_line "{\"cmd\":\"ping\"}" in
  Alcotest.(check (option string)) "trace absent" None p.Protocol.trace;
  Alcotest.(check bool) "timings default off" false p.Protocol.timings;
  let e = request_error "{\"cmd\":\"ping\",\"trace\":\"\"}" in
  Alcotest.(check string) "empty trace rejected" "bad_request" e.Protocol.code;
  let e =
    request_error
      (Printf.sprintf "{\"cmd\":\"ping\",\"trace\":%S}" (String.make 129 'x'))
  in
  Alcotest.(check string) "oversized trace rejected" "bad_request"
    e.Protocol.code;
  match
    (Protocol.parse_line "{\"cmd\":\"metrics\",\"stable_only\":true}")
      .Protocol.request
  with
  | Ok (Protocol.Metrics { stable_only = true }) -> ()
  | _ -> Alcotest.fail "metrics verb parses"

(* --- server: trace propagation end to end --------------------------------- *)

let test_server_trace_propagation () =
  let dir = tmpdir () in
  let path = Filename.concat dir "cap.pcap" in
  write_capture ~seed:35 ~prefixes:400 path;
  Tracer.clear ();
  Tracer.set_enabled true;
  let server = start_server ~jobs:1 () in
  let client = Client.connect (Server.address server) in
  let resp =
    rpc client
      [
        ("cmd", Json.Str "analyze");
        ("path", Json.Str path);
        ("trace", Json.Str "tr-e2e");
        ("timings", Json.Bool true);
      ]
  in
  Alcotest.(check bool) "analyze ok" true (is_ok resp);
  (match Json.member "trace" resp with
  | Some (Json.Str "tr-e2e") -> ()
  | _ -> Alcotest.fail "client trace id echoed");
  (match result_member resp "timings" with
  | Some t ->
      List.iter
        (fun k ->
          match Json.member k t with
          | Some (Json.Num v) ->
              Alcotest.(check bool) (k ^ " non-negative") true (v >= 0.)
          | _ -> Alcotest.failf "timings missing %s" k)
        [ "queue_wait_us"; "decode_us"; "analyze_us"; "render_us"; "total_us" ]
  | None -> Alcotest.fail "timings echoed when requested");
  (* No client trace: the server generates one; timings stay opt-in. *)
  let resp2 =
    rpc client [ ("cmd", Json.Str "analyze"); ("path", Json.Str path) ]
  in
  (match Json.member "trace" resp2 with
  | Some (Json.Str t) ->
      Alcotest.(check bool) "generated trace id" true
        (String.starts_with ~prefix:"req-" t)
  | _ -> Alcotest.fail "generated trace echoed");
  Alcotest.(check bool) "timings only on request" true
    (result_member resp2 "timings" = None);
  Client.close client;
  stop_server server;
  Tracer.set_enabled false;
  (* The acceptance bar: one request's queue-wait/decode/analyze/render
     spans form a single connected tree under its trace id. *)
  let events =
    List.filter
      (fun (e : Tracer.event) ->
        match e.Tracer.trace with Some t -> String.equal t "tr-e2e" | None -> false)
      (Tracer.events ())
  in
  let have name ph =
    List.exists
      (fun (e : Tracer.event) ->
        String.equal e.Tracer.name name && e.Tracer.ph = ph)
      events
  in
  Alcotest.(check bool) "queue-wait X span connected" true
    (have "service.queue_wait" Tracer.X);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " begins under the trace") true
        (have n Tracer.B);
      Alcotest.(check bool) (n ^ " ends under the trace") true (have n Tracer.E))
    [ "serve.request"; "serve.decode"; "serve.analyze"; "serve.render" ];
  Alcotest.(check bool) "trace stays balanced" true (Tracer.balanced ());
  Tracer.clear ();
  Sys.remove path;
  Unix.rmdir dir

(* --- server: the metrics verb --------------------------------------------- *)

let metrics_body resp =
  match result_member resp "body" with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail "metrics response has no body"

(* Grammar-level parseability: every line is blank, a comment, or
   [name{labels} value] with a float-parseable value. *)
let prometheus_parseable text =
  String.split_on_char '\n' text
  |> List.for_all (fun line ->
         String.equal line ""
         || String.starts_with ~prefix:"# " line
         ||
         match String.rindex_opt line ' ' with
         | None -> false
         | Some i -> (
             let value =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             match float_of_string_opt value with
             | Some _ -> true
             | None -> String.equal value "+Inf" || String.equal value "NaN"))

let test_server_metrics_verb () =
  let dir = tmpdir () in
  let path = Filename.concat dir "cap.pcap" in
  write_capture ~seed:36 ~prefixes:400 path;
  (* The same workload against a jobs=1 and a jobs=2 daemon: the stable
     exposition must come back byte-identical. *)
  let exposition jobs =
    Obs.reset Obs.default;
    Obs.set_enabled Obs.default true;
    let server = start_server ~jobs () in
    let client = Client.connect (Server.address server) in
    let resp =
      rpc client [ ("cmd", Json.Str "analyze"); ("path", Json.Str path) ]
    in
    Alcotest.(check bool) "analyze ok" true (is_ok resp);
    let full = rpc client [ ("cmd", Json.Str "metrics") ] in
    Alcotest.(check bool) "metrics ok" true (is_ok full);
    (match result_member full "content_type" with
    | Some (Json.Str "text/plain; version=0.0.4") -> ()
    | _ -> Alcotest.fail "prometheus content type");
    let stable =
      rpc client
        [ ("cmd", Json.Str "metrics"); ("stable_only", Json.Bool true) ]
    in
    Client.close client;
    stop_server server;
    Obs.set_enabled Obs.default false;
    (metrics_body full, metrics_body stable)
  in
  let full1, stable1 = exposition 1 in
  let _, stable2 = exposition 2 in
  Alcotest.(check bool) "full exposition parseable" true
    (prometheus_parseable full1);
  Alcotest.(check bool) "stable exposition parseable" true
    (prometheus_parseable stable1);
  Alcotest.(check bool) "registry series exposed" true
    (contains full1 "tdat_pcap_records_total");
  Alcotest.(check bool) "rolling-window series exposed" true
    (contains full1 "tdat_serve_window_p95_us{endpoint=\"analyze\"}");
  Alcotest.(check bool) "queue-depth gauge exposed" true
    (contains full1 "tdat_serve_queue_depth");
  Alcotest.(check bool) "scratch fallbacks exposed" true
    (contains full1 "tdat_serve_scratch_fallbacks");
  Alcotest.(check bool) "stable form drops wall-clock series" false
    (contains stable1 "tdat_serve_queue_depth");
  Alcotest.(check string) "stable series byte-identical across jobs" stable1
    stable2;
  Sys.remove path;
  Unix.rmdir dir

(* --- server: rolling windows, exemplars, tdat top -------------------------- *)

let test_server_rolling_and_top () =
  let server = start_server ~jobs:1 () in
  let addr = Server.address server in
  let client = Client.connect addr in
  for _ = 1 to 3 do
    let resp =
      rpc client [ ("cmd", Json.Str "sleep"); ("ms", Json.Num 30.) ]
    in
    Alcotest.(check bool) "sleep ok" true (is_ok resp)
  done;
  let stats = rpc client [ ("cmd", Json.Str "stats") ] in
  let window ep =
    match result_member stats "windows" with
    | Some w -> (
        match Json.member ep w with
        | Some x -> x
        | None -> Alcotest.failf "stats has no %s window" ep)
    | None -> Alcotest.fail "stats has no windows"
  in
  let wfield w name =
    match Json.member name w with
    | Some (Json.Num n) -> n
    | _ -> Alcotest.failf "window missing %s" name
  in
  let slow = window "sleep" and idle = window "analyze" in
  Alcotest.(check (float 0.)) "idle window empty" 0. (wfield idle "count");
  Alcotest.(check (float 0.)) "idle p95 zero" 0. (wfield idle "p95_us");
  Alcotest.(check (float 0.)) "slow window counts the sleeps" 3.
    (wfield slow "count");
  Alcotest.(check bool) "forced-slow p95 above the idle window's" true
    (wfield slow "p95_us" > wfield idle "p95_us");
  Alcotest.(check bool) "p95 reflects the 30ms sleeps" true
    (wfield slow "p95_us" >= 30_000.);
  (* The exemplar buffer captured the slow requests, replayable. *)
  (match result_member stats "exemplars" with
  | Some (Json.Arr (e :: _)) ->
      (match Json.member "endpoint" e with
      | Some (Json.Str "sleep") -> ()
      | _ -> Alcotest.fail "worst exemplar is a sleep");
      (match Json.member "trace" e with
      | Some (Json.Str t) ->
          Alcotest.(check bool) "exemplar has a trace id" true
            (String.length t > 0)
      | _ -> Alcotest.fail "exemplar trace");
      (match Json.member "request" e with
      | Some (Json.Str r) ->
          Alcotest.(check bool) "exemplar request replayable" true
            (contains r "\"sleep\"")
      | _ -> Alcotest.fail "exemplar request")
  | _ -> Alcotest.fail "no exemplars");
  (match result_member stats "requests" with
  | Some (Json.Num n) ->
      Alcotest.(check bool) "request total counted" true (n >= 3.)
  | _ -> Alcotest.fail "stats.requests");
  (match result_member stats "scratch_fallbacks" with
  | Some (Json.Num _) -> ()
  | _ -> Alcotest.fail "stats.scratch_fallbacks");
  (* One dashboard frame from the real subcommand against the daemon. *)
  let port =
    match addr with
    | `Tcp (_, p) -> p
    | `Unix _ -> Alcotest.fail "tcp address expected"
  in
  let cmd =
    Printf.sprintf "%s top --once --host 127.0.0.1 --port %d 2>/dev/null"
      (Filename.quote tdat_exe) port
  in
  let ic = Unix.open_process_in cmd in
  let out = In_channel.input_all ic in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "tdat top exited %d" n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.fail "tdat top killed");
  Alcotest.(check bool) "top renders the header" true
    (contains out "tdat serve");
  Alcotest.(check bool) "top renders the window table" true
    (contains out "endpoint");
  Alcotest.(check bool) "top renders the worst requests" true
    (contains out "worst requests");
  Alcotest.(check bool) "top shows the sleep exemplar" true
    (contains out "sleep");
  Client.close client;
  stop_server server

(* --- server: SIGTERM drain flushes the trace file -------------------------- *)

let test_sigterm_flushes_trace () =
  (* Satellite regression: the tracer buffers — including the worker
     domains' — must be merged and written after the drain completes,
     so the trace file contains the in-flight request AND the drain
     span itself. *)
  let dir = tmpdir () in
  let sock = Filename.concat dir "tdat.sock" in
  let trace_path = Filename.concat dir "trace.json" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process tdat_exe
      [|
        "tdat"; "serve"; "--socket"; sock; "--jobs"; "1"; "--trace"; trace_path;
      |]
      devnull devnull devnull
  in
  Unix.close devnull;
  let rec connect n =
    match Client.connect (`Unix sock) with
    | client -> client
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        if n = 0 then Alcotest.fail "serve daemon never came up"
        else begin
          Unix.sleepf 0.02;
          connect (n - 1)
        end
  in
  let client = connect 250 in
  let stash = Hashtbl.create 8 in
  Client.send_line client
    (Json.to_string
       (Json.Obj
          [
            ("cmd", Json.Str "sleep"); ("ms", Json.Num 300.);
            ("id", Json.Num 1.); ("trace", Json.Str "tr-drain");
          ]));
  Unix.sleepf 0.1;
  Unix.kill pid Sys.sigterm;
  let r1 = recv_for client stash "1" in
  Alcotest.(check bool) "job survived SIGTERM" true (is_ok r1);
  Alcotest.(check bool) "orderly EOF after drain" true
    (Client.recv_line client = None);
  Client.close client;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "serve exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
      Alcotest.failf "serve killed by signal %d" n);
  let trace_json =
    In_channel.with_open_bin trace_path In_channel.input_all
  in
  Alcotest.(check bool) "trace file is a traceEvents object" true
    (String.starts_with ~prefix:"{\"traceEvents\":[" trace_json);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s span flushed" n)
        true
        (contains trace_json (Printf.sprintf "%S" n)))
    [ "serve.request"; "serve.sleep"; "service.queue_wait"; "serve.drain" ];
  Alcotest.(check bool) "request trace id flushed" true
    (contains trace_json "tr-drain");
  Sys.remove trace_path;
  if Sys.file_exists sock then Sys.remove sock;
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json malformed" `Quick test_json_malformed;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "protocol malformed" `Quick test_protocol_malformed;
    Alcotest.test_case "protocol requests" `Quick test_protocol_requests;
    Alcotest.test_case "server round-trip" `Quick test_server_roundtrip;
    Alcotest.test_case "analyze + cache" `Quick test_server_analyze_and_cache;
    Alcotest.test_case "cache eviction accounting" `Quick
      test_server_cache_evictions;
    Alcotest.test_case "queue-full backpressure" `Quick
      test_server_backpressure;
    Alcotest.test_case "tail a growing capture" `Quick
      test_server_follow_tail;
    Alcotest.test_case "shutdown drain" `Quick test_server_shutdown_drain;
    Alcotest.test_case "SIGTERM drain (subprocess)" `Quick
      test_server_sigterm_drain;
    Alcotest.test_case "study via cache" `Quick test_server_study;
    Alcotest.test_case "protocol envelope (trace/timings)" `Quick
      test_protocol_envelope;
    Alcotest.test_case "trace propagation end to end" `Quick
      test_server_trace_propagation;
    Alcotest.test_case "metrics verb (prometheus)" `Quick
      test_server_metrics_verb;
    Alcotest.test_case "rolling windows, exemplars, tdat top" `Quick
      test_server_rolling_and_top;
    Alcotest.test_case "SIGTERM drain flushes the trace" `Quick
      test_sigterm_flushes_trace;
  ]
