(* Frozen copies of the pre-slice, string-based decoders, kept verbatim
   (minus metrics instrumentation) as the reference implementation for
   the decode-equivalence property tests.  The library decoders were
   rewritten to parse through [Tdat_pkt.Slice] without intermediate
   copies; these references pin the old behavior — records produced,
   diagnostics emitted, salvage stats — so the rewrite is checked
   byte-for-byte against what shipped before, including on malformed
   input.  Do not "improve" this file: its value is that it does not
   change. *)

open Tdat_bgp
module Seg = Tdat_pkt.Tcp_segment
module Endpoint = Tdat_pkt.Endpoint
module Trace = Tdat_pkt.Trace
module P = Tdat_pkt.Pcap

(* --- legacy BGP message decode chain ---------------------------------- *)

let prefix_decode s off =
  if off >= String.length s then
    Bgp_error.fail ~context:"Prefix.decode" "truncated";
  let plen = Char.code s.[off] in
  if plen > 32 then
    Bgp_error.fail ~context:"Prefix.decode" "invalid prefix length";
  let nbytes = (plen + 7) / 8 in
  if off + 1 + nbytes > String.length s then
    Bgp_error.fail ~context:"Prefix.decode" "truncated address";
  let u = ref 0 in
  for i = 0 to nbytes - 1 do
    u := !u lor (Char.code s.[off + 1 + i] lsl (24 - (8 * i)))
  done;
  (Prefix.v (Int32.of_int !u) plen, off + 1 + nbytes)

let as_path_decode s =
  let len = String.length s in
  let read_u16 off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1] in
  let rec segments off acc =
    if off = len then List.rev acc
    else if off + 2 > len then
      Bgp_error.fail ~context:"As_path.decode" "truncated header"
    else begin
      let ty = Char.code s.[off] in
      let n = Char.code s.[off + 1] in
      if off + 2 + (2 * n) > len then
        Bgp_error.fail ~context:"As_path.decode" "truncated";
      let asns = List.init n (fun i -> read_u16 (off + 2 + (2 * i))) in
      let seg =
        match ty with
        | 1 -> As_path.Set asns
        | 2 -> As_path.Seq asns
        | ty -> Bgp_error.fail ~context:"As_path.decode" "segment type %d" ty
      in
      segments (off + 2 + (2 * n)) (seg :: acc)
    end
  in
  segments 0 []

let attr_decode_all s =
  let len = String.length s in
  let read_u16 off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1] in
  let read_u32 off =
    Int32.logor
      (Int32.shift_left (Int32.of_int (Char.code s.[off])) 24)
      (Int32.of_int
         ((Char.code s.[off + 1] lsl 16)
         lor (Char.code s.[off + 2] lsl 8)
         lor Char.code s.[off + 3]))
  in
  let rec go off acc =
    if off = len then List.rev acc
    else if off + 3 > len then
      Bgp_error.fail ~context:"Attr.decode_all" "truncated header"
    else begin
      let flags = Char.code s.[off] in
      let code = Char.code s.[off + 1] in
      let extended = flags land 0x10 <> 0 in
      let vlen, voff =
        if extended then begin
          if off + 4 > len then
            Bgp_error.fail ~context:"Attr.decode_all" "truncated length";
          (read_u16 (off + 2), off + 4)
        end
        else (Char.code s.[off + 2], off + 3)
      in
      if voff + vlen > len then
        Bgp_error.fail ~context:"Attr.decode_all" "truncated value";
      let value = String.sub s voff vlen in
      let attr =
        match code with
        | 1 when vlen = 1 ->
            Attr.Origin
              (match Char.code value.[0] with
              | 0 -> Attr.Igp
              | 1 -> Attr.Egp
              | _ -> Attr.Incomplete)
        | 2 -> Attr.As_path (as_path_decode value)
        | 3 when vlen = 4 -> Attr.Next_hop (read_u32 voff)
        | 4 when vlen = 4 -> Attr.Med (read_u32 voff)
        | 5 when vlen = 4 -> Attr.Local_pref (read_u32 voff)
        | _ -> Attr.Unknown { code; flags; data = value }
      in
      go (voff + vlen) (attr :: acc)
    end
  in
  go 0 []

let msg_peek_length s off =
  if off + Msg.header_size > String.length s then None
  else begin
    for i = 0 to 15 do
      if s.[off + i] <> '\xff' then
        Bgp_error.fail ~context:"Msg.peek_length" "bad marker"
    done;
    let len = (Char.code s.[off + 16] lsl 8) lor Char.code s.[off + 17] in
    if len < Msg.header_size || len > Msg.max_size then
      Bgp_error.fail ~context:"Msg.peek_length" "invalid length %d" len;
    Some len
  end

let msg_decode_prefixes s =
  let n = String.length s in
  let rec go off acc =
    if off = n then List.rev acc
    else begin
      let p, off' = prefix_decode s off in
      go off' (p :: acc)
    end
  in
  go 0 []

let msg_decode s off =
  match msg_peek_length s off with
  | None -> None
  | Some total ->
      if off + total > String.length s then None
      else begin
        let ty = Char.code s.[off + 18] in
        let body =
          String.sub s (off + Msg.header_size) (total - Msg.header_size)
        in
        let blen = String.length body in
        let read_u16 o =
          (Char.code body.[o] lsl 8) lor Char.code body.[o + 1]
        in
        let msg =
          match ty with
          | 1 ->
              if blen < 10 then
                Bgp_error.fail ~context:"Msg.decode" "short OPEN";
              let bgp_id =
                Int32.logor
                  (Int32.shift_left (Int32.of_int (Char.code body.[5])) 24)
                  (Int32.of_int
                     ((Char.code body.[6] lsl 16)
                     lor (Char.code body.[7] lsl 8)
                     lor Char.code body.[8]))
              in
              Msg.Open
                {
                  version = Char.code body.[0];
                  my_as = read_u16 1;
                  hold_time = read_u16 3;
                  bgp_id;
                }
          | 2 ->
              if blen < 4 then
                Bgp_error.fail ~context:"Msg.decode" "short UPDATE";
              let wlen = read_u16 0 in
              if 2 + wlen + 2 > blen then
                Bgp_error.fail ~context:"Msg.decode" "bad withdrawn length";
              let withdrawn = msg_decode_prefixes (String.sub body 2 wlen) in
              let alen = read_u16 (2 + wlen) in
              if 4 + wlen + alen > blen then
                Bgp_error.fail ~context:"Msg.decode" "bad attribute length";
              let attrs = attr_decode_all (String.sub body (4 + wlen) alen) in
              let nlri_off = 4 + wlen + alen in
              let nlri =
                msg_decode_prefixes
                  (String.sub body nlri_off (blen - nlri_off))
              in
              Msg.Update { withdrawn; attrs; nlri }
          | 3 ->
              if blen < 2 then
                Bgp_error.fail ~context:"Msg.decode" "short NOTIFICATION";
              Msg.Notification
                {
                  code = Char.code body.[0];
                  subcode = Char.code body.[1];
                  data = String.sub body 2 (blen - 2);
                }
          | 4 ->
              if blen <> 0 then
                Bgp_error.fail ~context:"Msg.decode" "KEEPALIVE with body";
              Msg.Keepalive
          | ty -> Bgp_error.fail ~context:"Msg.decode" "unknown type %d" ty
        in
        Some (msg, off + total)
      end

(* --- legacy pcap decode ------------------------------------------------ *)

let ethernet_header_len = 14
let ipv4_header_len = 20
let max_record_len = 0x0400_0000
let magic_us = 0xA1B2C3D4l
let magic_ns = 0xA1B23C4Dl

type endianness = Le | Be

let get_u8 b off = Char.code (Bytes.get b off)

let get_u16 e b off =
  match e with
  | Le -> get_u8 b off lor (get_u8 b (off + 1) lsl 8)
  | Be -> (get_u8 b off lsl 8) lor get_u8 b (off + 1)

let get_u32 e b off =
  match e with
  | Le ->
      get_u8 b off
      lor (get_u8 b (off + 1) lsl 8)
      lor (get_u8 b (off + 2) lsl 16)
      lor (get_u8 b (off + 3) lsl 24)
  | Be ->
      (get_u8 b off lsl 24)
      lor (get_u8 b (off + 1) lsl 16)
      lor (get_u8 b (off + 2) lsl 8)
      lor get_u8 b (off + 3)

let diag severity ?record ~code fmt =
  Format.kasprintf
    (fun message -> { P.Diag.code; severity; record; message })
    fmt

let diag_error ?record = diag P.Diag.Error ?record
let diag_warning ?record = diag P.Diag.Warning ?record
let diag_info ?record = diag P.Diag.Info ?record

exception Skip_record
exception Stop_reading

let pcap_decode_frame ~emit ~clipped ~ri ~ts frame incl =
  let skip d =
    emit d;
    raise_notrace Skip_record
  in
  try
    if incl < ethernet_header_len then
      skip
        (diag_info ~record:ri ~code:"P009" "runt frame (%d captured bytes)"
           incl);
    let ethertype = get_u16 Be frame 12 in
    let l2, ethertype =
      if ethertype = 0x8100 then begin
        if incl < ethernet_header_len + 4 then
          skip (diag_info ~record:ri ~code:"P009" "runt 802.1Q frame");
        emit (diag_info ~record:ri ~code:"P010" "802.1Q VLAN-tagged frame");
        (ethernet_header_len + 4, get_u16 Be frame 16)
      end
      else (ethernet_header_len, ethertype)
    in
    if ethertype <> 0x0800 then
      skip
        (diag_info ~record:ri ~code:"P009" "non-IPv4 frame (ethertype 0x%04x)"
           ethertype);
    if l2 + ipv4_header_len > incl then
      skip
        (diag_warning ~record:ri ~code:"P006"
           "capture ends inside the IPv4 header");
    let vihl = get_u8 frame l2 in
    if vihl lsr 4 <> 4 then
      skip (diag_warning ~record:ri ~code:"P006" "IP version %d" (vihl lsr 4));
    let ihl = (vihl land 0x0F) * 4 in
    if ihl < ipv4_header_len then
      skip (diag_warning ~record:ri ~code:"P006" "bad IHL %d" ihl);
    let proto = get_u8 frame (l2 + 9) in
    if proto <> 6 then raise_notrace Skip_record;
    let ip_total = get_u16 Be frame (l2 + 2) in
    let tcp = l2 + ihl in
    if tcp + 20 > incl then
      skip
        (diag_warning ~record:ri ~code:"P007"
           "capture ends inside the TCP header");
    let doff = (get_u8 frame (tcp + 12) lsr 4) * 4 in
    if doff < 20 then
      skip (diag_warning ~record:ri ~code:"P007" "bad TCP data offset %d" doff);
    if ihl + doff > ip_total then
      skip
        (diag_warning ~record:ri ~code:"P007"
           "TCP data offset overruns the IP datagram (IHL %d + offset %d > \
            total %d)"
           ihl doff ip_total);
    let len = ip_total - ihl - doff in
    let payload_off = tcp + doff in
    let captured = max 0 (min len (incl - payload_off)) in
    if captured < len then incr clipped;
    let payload =
      if captured = 0 then "" else Bytes.sub_string frame payload_off captured
    in
    let mss_opt = ref None in
    let hdr_end = tcp + doff in
    let limit = min hdr_end incl in
    let rec scan o =
      if o < limit then
        match get_u8 frame o with
        | 0 -> ()
        | 1 -> scan (o + 1)
        | kind ->
            if o + 2 > limit then begin
              if limit >= hdr_end then
                emit
                  (diag_warning ~record:ri ~code:"P008"
                     "TCP option %d overruns the header" kind)
            end
            else begin
              let olen = get_u8 frame (o + 1) in
              if olen < 2 then
                emit
                  (diag_warning ~record:ri ~code:"P008"
                     "TCP option %d has bad length %d" kind olen)
              else if o + olen > hdr_end then
                emit
                  (diag_warning ~record:ri ~code:"P008"
                     "TCP option %d (length %d) overruns the header" kind olen)
              else if o + olen > limit then ()
              else begin
                if kind = 2 && olen = 4 then
                  mss_opt := Some (get_u16 Be frame (o + 2));
                scan (o + olen)
              end
            end
    in
    scan (tcp + 20);
    let src_ip = Int32.of_int (get_u32 Be frame (l2 + 12)) in
    let dst_ip = Int32.of_int (get_u32 Be frame (l2 + 16)) in
    let src_port = get_u16 Be frame tcp in
    let dst_port = get_u16 Be frame (tcp + 2) in
    let seq = get_u32 Be frame (tcp + 4) in
    let ack = get_u32 Be frame (tcp + 8) in
    let fl = get_u8 frame (tcp + 13) in
    let window = get_u16 Be frame (tcp + 14) in
    let flags =
      Seg.flags ~fin:(fl land 0x01 <> 0) ~syn:(fl land 0x02 <> 0)
        ~rst:(fl land 0x04 <> 0) ~psh:(fl land 0x08 <> 0)
        ~ack:(fl land 0x10 <> 0) ()
    in
    Some
      (Seg.v ~ts
         ~src:(Endpoint.v src_ip src_port)
         ~dst:(Endpoint.v dst_ip dst_port)
         ~seq ~ack ~len ~window ~flags ?mss_opt:!mss_opt ~payload ())
  with Skip_record -> None

let pcap_fold_read ?(strict = false) ?(on_diag = fun (_ : P.Diag.t) -> ())
    ~read ~init f =
  let records = ref 0
  and decoded = ref 0
  and skipped = ref 0
  and clipped = ref 0 in
  let emit (d : P.Diag.t) =
    on_diag d;
    if strict && (match d.P.Diag.severity with
                 | P.Diag.Error | P.Diag.Warning -> true
                 | P.Diag.Info -> false)
    then raise (P.Decode_error ("Pcap.decode: " ^ d.P.Diag.message))
  in
  let fatal d =
    emit d;
    raise_notrace Stop_reading
  in
  let read_upto buf len =
    let rec go off =
      if off >= len then off
      else
        let n = read buf off (len - off) in
        if n = 0 then off else go (off + n)
    in
    go 0
  in
  let acc = ref init in
  (try
     let ghdr = Bytes.create 24 in
     if read_upto ghdr 24 < 24 then
       fatal (diag_error ~code:"P002" "truncated header");
     let raw_le = get_u32 Le ghdr 0 in
     let endian, ns =
       if Int32.equal (Int32.of_int raw_le) magic_us then (Le, false)
       else if Int32.equal (Int32.of_int raw_le) magic_ns then (Le, true)
       else begin
         let raw_be = get_u32 Be ghdr 0 in
         if Int32.equal (Int32.of_int raw_be) magic_us then (Be, false)
         else if Int32.equal (Int32.of_int raw_be) magic_ns then (Be, true)
         else fatal (diag_error ~code:"P001" "bad magic")
       end
     in
     let link_type = get_u32 endian ghdr 20 in
     if link_type <> 1 then
       fatal (diag_error ~code:"P003" "unsupported link type");
     let rhdr = Bytes.create 16 in
     let frame = ref (Bytes.create 65536) in
     let stop = ref false in
     while not !stop do
       let n = read_upto rhdr 16 in
       if n = 0 then stop := true
       else if n < 16 then begin
         emit
           (diag_warning ~record:!records ~code:"P004"
              "truncated record header (%d trailing bytes)" n);
         stop := true
       end
       else begin
         let incl = get_u32 endian rhdr 8 in
         if incl > max_record_len then begin
           emit
             (diag_warning ~record:!records ~code:"P005"
                "implausible record length %d" incl);
           stop := true
         end
         else begin
           if incl > Bytes.length !frame then begin
             let cap = ref (Bytes.length !frame) in
             while incl > !cap do
               cap := !cap * 2
             done;
             frame := Bytes.create !cap
           end;
           let got = read_upto !frame incl in
           if got < incl then begin
             emit
               (diag_warning ~record:!records ~code:"P005" "truncated packet");
             stop := true
           end
           else begin
             let ts_sec = get_u32 endian rhdr 0 in
             let ts_sub = get_u32 endian rhdr 4 in
             let ts_us = if ns then ts_sub / 1000 else ts_sub in
             let ts = (ts_sec * 1_000_000) + ts_us in
             let ri = !records in
             incr records;
             match pcap_decode_frame ~emit ~clipped ~ri ~ts !frame incl with
             | Some seg ->
                 incr decoded;
                 acc := f !acc seg
             | None -> incr skipped
           end
         end
       end
     done
   with Stop_reading -> ());
  ( !acc,
    {
      P.records = !records;
      decoded = !decoded;
      skipped = !skipped;
      clipped = !clipped;
    } )

let reader_of_string data =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (String.length data - !pos) in
    Bytes.blit_string data !pos buf off n;
    pos := !pos + n;
    n

let pcap_decode_result ?(strict = false) data =
  let diags = ref [] in
  let segs, stats =
    pcap_fold_read ~strict
      ~on_diag:(fun d -> diags := d :: !diags)
      ~read:(reader_of_string data) ~init:[]
      (fun acc s -> s :: acc)
  in
  let diags = List.rev !diags in
  let diags =
    if stats.P.clipped > 0 then
      diags
      @ [
          diag_info ~code:"P011"
            "%d of %d records snaplen-clipped (captured payload shorter than \
             the declared TCP length)"
            stats.P.clipped stats.P.records;
        ]
    else diags
  in
  { P.trace = Trace.of_segments (List.rev segs); diags; stats }

(* --- legacy MRT decode ------------------------------------------------- *)

module M = Mrt

let mrt_max_record_len = 1 lsl 24
let bgp4mp = 16
let bgp4mp_et = 17
let subtype_state_change = 0
let subtype_message = 1

let u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let i32 s off = Int32.of_int (u32 s off)

let bu16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let bu32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let mrt_skipped_note ~idx ~ty ~subtype =
  `Diag
    {
      M.Diag.code = "M005";
      severity = M.Diag.Info;
      record = Some idx;
      message =
        Printf.sprintf "skipped record (type %d, subtype %d)" ty subtype;
    }

let mrt_parse_body ~idx ~sec ~ty ~subtype body =
  let len = String.length body in
  let warn code message =
    `Diag { M.Diag.code; severity = M.Diag.Warning; record = Some idx; message }
  in
  if ty <> bgp4mp && ty <> bgp4mp_et then mrt_skipped_note ~idx ~ty ~subtype
  else if subtype <> subtype_message && subtype <> subtype_state_change then
    mrt_skipped_note ~idx ~ty ~subtype
  else if ty = bgp4mp_et && len < 4 then warn "M003" "short BGP4MP body"
  else begin
    let usec, p = if ty = bgp4mp_et then (u32 body 0, 4) else (0, 0) in
    let ts = (sec * 1_000_000) + usec in
    if subtype = subtype_message then begin
      if p + 16 > len then warn "M003" "short BGP4MP body"
      else begin
        let peer_as = u16 body p in
        let local_as = u16 body (p + 2) in
        let peer_ip = i32 body (p + 8) in
        let local_ip = i32 body (p + 12) in
        match msg_decode body (p + 16) with
        | Some (msg, _) ->
            `Entry
              (M.Message { ts; peer_as; local_as; peer_ip; local_ip; msg })
        | None -> warn "M004" "bad embedded BGP message"
        | exception Bgp_error.Decode_error _ ->
            warn "M004" "bad embedded BGP message"
      end
    end
    else begin
      if p + 20 > len then warn "M003" "short BGP4MP body"
      else begin
        let old_code = u16 body (p + 16) in
        let new_code = u16 body (p + 18) in
        match (M.fsm_state_of_code old_code, M.fsm_state_of_code new_code) with
        | Some old_state, Some new_state ->
            `Entry
              (M.State
                 {
                   sc_ts = ts;
                   sc_peer_as = u16 body p;
                   sc_local_as = u16 body (p + 2);
                   sc_peer_ip = i32 body (p + 8);
                   sc_local_ip = i32 body (p + 12);
                   old_state;
                   new_state;
                 })
        | _ -> warn "M006" "bad state-change body"
      end
    end
  end

let mrt_fold_fill ?(strict = false) ?(on_diag = fun _ -> ()) fill ~init f =
  let emit d =
    on_diag d;
    if strict then
      match d.M.Diag.severity with
      | M.Diag.Error | M.Diag.Warning ->
          Bgp_error.fail ~context:"Mrt.decode" "%s" d.M.Diag.message
      | M.Diag.Info -> ()
  in
  let hdr = Bytes.create 12 in
  let body = ref (Bytes.create 4096) in
  let records = ref 0 in
  let bgp_messages = ref 0 in
  let state_changes = ref 0 in
  let skipped = ref 0 in
  let rec go acc =
    let got = fill hdr 12 in
    if got = 0 then acc
    else if got < 12 then begin
      emit
        {
          M.Diag.code = "M001";
          severity = M.Diag.Warning;
          record = Some !records;
          message = "truncated header";
        };
      acc
    end
    else begin
      let sec = bu32 hdr 0 in
      let ty = bu16 hdr 4 in
      let subtype = bu16 hdr 6 in
      let rec_len = bu32 hdr 8 in
      if rec_len > mrt_max_record_len then begin
        emit
          {
            M.Diag.code = "M007";
            severity = M.Diag.Warning;
            record = Some !records;
            message = "oversized record";
          };
        acc
      end
      else begin
        if Bytes.length !body < rec_len then body := Bytes.create rec_len;
        let got = fill !body rec_len in
        if got < rec_len then begin
          emit
            {
              M.Diag.code = "M002";
              severity = M.Diag.Warning;
              record = Some !records;
              message = "truncated record";
            };
          acc
        end
        else begin
          let idx = !records in
          incr records;
          let body_s = Bytes.sub_string !body 0 rec_len in
          match mrt_parse_body ~idx ~sec ~ty ~subtype body_s with
          | `Entry e ->
              (match e with
              | M.Message _ -> incr bgp_messages
              | M.State _ -> incr state_changes);
              go (f acc e)
          | `Diag d ->
              incr skipped;
              emit d;
              go acc
        end
      end
    end
  in
  let acc = go init in
  ( acc,
    {
      M.records = !records;
      bgp_messages = !bgp_messages;
      state_changes = !state_changes;
      skipped = !skipped;
    } )

let mrt_decode_result ?(strict = false) s =
  let pos = ref 0 in
  let len = String.length s in
  let fill buf n =
    let take = Stdlib.min n (len - !pos) in
    Bytes.blit_string s !pos buf 0 take;
    pos := !pos + take;
    take
  in
  let diags = ref [] in
  let entries, stats =
    mrt_fold_fill ~strict
      ~on_diag:(fun d -> diags := d :: !diags)
      fill ~init:[]
      (fun acc e -> e :: acc)
  in
  { M.entries = List.rev entries; diags = List.rev !diags; stats }
