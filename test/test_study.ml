(* Measurement-study subsystem tests: MRT entry codec (including
   BGP4MP_STATE_CHANGE), the malformed-archive salvage corpus (M0xx
   diagnostics), the table-transfer detector's rules, the longitudinal
   aggregator's jobs-determinism, and end-to-end ground-truth recall
   against `simgen --emit-mrt` fleets. *)

open Tdat_bgp
module Study = Tdat_study

(* The subprocess tests must work both from the test stanza's runtest
   (cwd [_build/default/test]) and from the root-level [@study-smoke]
   alias (cwd [_build/default]), so locate sibling executables relative
   to this test binary rather than the cwd. *)
let bin_exe name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat Filename.parent_dir_name (Filename.concat "bin" name))

let simgen_exe = bin_exe "simgen.exe"
let tdat_exe = bin_exe "tdat_cli.exe"

let tmpdir () =
  let f = Filename.temp_file "tdat_study" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let read_all path = In_channel.with_open_bin path In_channel.input_all

(* --- entry builders ------------------------------------------------------- *)

let peer_ip = 0x0A000001l
let local_ip = 0x0A000002l

let prefixes_chunk base n =
  List.init n (fun i ->
      Prefix.of_quad 10
        ((base + i) / 256 mod 256)
        ((base + i) mod 256)
        0 24)

let update_msg base n = Msg.update ~nlri:(prefixes_chunk base n) ()

let message ?(peer_as = 64500) ?(ip = peer_ip) ts msg =
  Mrt.Message
    { Mrt.ts; peer_as; local_as = 65000; peer_ip = ip; local_ip; msg }

let state ?(peer_as = 64500) ?(ip = peer_ip) ts old_state new_state =
  Mrt.State
    {
      Mrt.sc_ts = ts;
      sc_peer_as = peer_as;
      sc_local_as = 65000;
      sc_peer_ip = ip;
      sc_local_ip = local_ip;
      old_state;
      new_state;
    }

let sample_entries =
  [
    state 1_000_000 Mrt.Open_confirm Mrt.Established;
    message 1_100_000
      (Msg.Open
         { Msg.version = 4; my_as = 64500; hold_time = 180; bgp_id = 0x0A000001l });
    message 2_000_000 (update_msg 0 40);
    message 2_500_000 Msg.Keepalive;
    state 3_000_000 Mrt.Established Mrt.Idle;
  ]

(* --- MRT entry codec ------------------------------------------------------ *)

let test_entry_roundtrip () =
  let r = Mrt.decode_result (Mrt.encode_entries sample_entries) in
  Alcotest.(check bool) "entries" true (r.Mrt.entries = sample_entries);
  Alcotest.(check bool) "no diags" true (r.Mrt.diags = []);
  Alcotest.(check int) "records" 5 r.Mrt.stats.Mrt.records;
  Alcotest.(check int) "messages" 3 r.Mrt.stats.Mrt.bgp_messages;
  Alcotest.(check int) "state changes" 2 r.Mrt.stats.Mrt.state_changes;
  Alcotest.(check int) "skipped" 0 r.Mrt.stats.Mrt.skipped

let test_legacy_decode_skips_state_changes () =
  let records = Mrt.decode (Mrt.encode_entries sample_entries) in
  Alcotest.(check int) "messages only" 3 (List.length records);
  Alcotest.(check bool) "same as messages" true
    (records = Mrt.messages sample_entries)

(* --- malformed-archive salvage corpus ------------------------------------- *)

let codes (r : Mrt.result) =
  List.map (fun (d : Mrt.Diag.t) -> d.Mrt.Diag.code) r.Mrt.diags

let has_code c r = List.exists (fun x -> String.equal x c) (codes r)

let strict_message data =
  match Mrt.decode data with
  | _ -> None
  | exception Bgp_error.Decode_error { context; message } ->
      Some (context, message)

let put_u16be b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let put_u32be b v =
  put_u16be b ((v lsr 16) land 0xFFFF);
  put_u16be b (v land 0xFFFF)

(* A raw MRT record with an arbitrary type/subtype/body. *)
let raw_record ?(sec = 1) ?(ty = 17) ~subtype body =
  let b = Buffer.create 64 in
  put_u32be b sec;
  put_u16be b ty;
  put_u16be b subtype;
  put_u32be b (String.length body);
  Buffer.add_string b body;
  Buffer.contents b

let good_record ts = Mrt.encode_entries [ message ts Msg.Keepalive ]

let test_truncated_header () =
  let data = good_record 1_000_000 ^ String.sub (good_record 2_000_000) 0 7 in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged" 1 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M001" true (has_code "M001" r);
  Alcotest.(check (option (pair string string))) "strict raises legacy message"
    (Some ("Mrt.decode", "truncated header"))
    (strict_message data)

let test_truncated_record () =
  let second = good_record 2_000_000 in
  let data =
    good_record 1_000_000 ^ String.sub second 0 (String.length second - 3)
  in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged" 1 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M002" true (has_code "M002" r);
  Alcotest.(check (option (pair string string))) "strict raises legacy message"
    (Some ("Mrt.decode", "truncated record"))
    (strict_message data)

let test_bad_embedded_message () =
  (* A well-framed BGP4MP_ET message record whose embedded message is
     garbage: salvage skips it and keeps the surrounding records. *)
  let body = Buffer.create 64 in
  put_u32be body 0 (* usec *);
  put_u16be body 64500;
  put_u16be body 65000;
  put_u16be body 0;
  put_u16be body 1;
  put_u32be body 0x0A000001;
  put_u32be body 0x0A000002;
  Buffer.add_string body (String.make 19 '\xAA');
  let bad = raw_record ~subtype:1 (Buffer.contents body) in
  let data = good_record 1_000_000 ^ bad ^ good_record 2_000_000 in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged around" 2 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M004" true (has_code "M004" r);
  Alcotest.(check int) "skipped" 1 r.Mrt.stats.Mrt.skipped;
  Alcotest.(check (option (pair string string))) "strict raises legacy message"
    (Some ("Mrt.decode", "bad embedded BGP message"))
    (strict_message data)

let test_short_body () =
  let bad = raw_record ~subtype:1 (String.make 10 '\x00') in
  let data = good_record 1_000_000 ^ bad ^ good_record 2_000_000 in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged around" 2 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M003" true (has_code "M003" r);
  Alcotest.(check (option (pair string string))) "strict raises legacy message"
    (Some ("Mrt.decode", "short BGP4MP body"))
    (strict_message data)

let test_unsupported_type_skipped () =
  (* TABLE_DUMP (type 12) must be skipped losslessly — info diagnostic
     only, and the legacy strict decoder must not raise (it never did). *)
  let dump = raw_record ~ty:12 ~subtype:1 (String.make 24 '\x00') in
  let data = good_record 1_000_000 ^ dump ^ good_record 2_000_000 in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged around" 2 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M005" true (has_code "M005" r);
  Alcotest.(check bool) "info only" true
    (List.for_all
       (fun (d : Mrt.Diag.t) ->
         match d.Mrt.Diag.severity with
         | Mrt.Diag.Info -> true
         | Mrt.Diag.Error | Mrt.Diag.Warning -> false)
       r.Mrt.diags);
  Alcotest.(check int) "strict still decodes" 2
    (List.length (Mrt.decode data))

let test_bad_state_change () =
  let body = Buffer.create 64 in
  put_u32be body 0;
  put_u16be body 64500;
  put_u16be body 65000;
  put_u16be body 0;
  put_u16be body 1;
  put_u32be body 0x0A000001;
  put_u32be body 0x0A000002;
  put_u16be body 6;
  put_u16be body 9 (* not an FSM state *);
  let bad = raw_record ~subtype:0 (Buffer.contents body) in
  let data = good_record 1_000_000 ^ bad ^ good_record 2_000_000 in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged around" 2 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M006" true (has_code "M006" r)

let test_oversized_record () =
  let b = Buffer.create 16 in
  put_u32be b 1;
  put_u16be b 17;
  put_u16be b 1;
  put_u32be b 20_000_000 (* > 16 MiB cap *);
  let data = good_record 1_000_000 ^ Buffer.contents b in
  let r = Mrt.decode_result data in
  Alcotest.(check int) "salvaged prior" 1 (List.length r.Mrt.entries);
  Alcotest.(check bool) "M007" true (has_code "M007" r)

let test_fold_file_matches_decode_result () =
  let dir = tmpdir () in
  let path = Filename.concat dir "a.mrt" in
  Mrt.to_file_entries path sample_entries;
  let entries, stats =
    Mrt.fold_file path ~init:[] (fun acc e -> e :: acc)
  in
  Alcotest.(check bool) "same entries" true
    (List.rev entries = sample_entries);
  Alcotest.(check int) "records" 5 stats.Mrt.records;
  Alcotest.(check bool) "of_file messages" true
    (Mrt.of_file path = Mrt.messages sample_entries)

let test_fold_fd_pipe_fed () =
  (* A pipe delivers the archive in dribs and drabs — short reads land
     mid-header and mid-record, and the writer pacing makes some reads
     return nothing yet.  [fold_fd] must reassemble every record. *)
  let archive =
    Mrt.encode_entries
      (List.concat_map
         (fun k ->
           [
             state (k * 1_000_000) Mrt.Open_confirm Mrt.Established;
             message ((k * 1_000_000) + 10_000) (update_msg (k * 50) 50);
             message ((k * 1_000_000) + 20_000) Msg.Keepalive;
           ])
         (List.init 40 Fun.id))
  in
  let r, w = Unix.pipe ~cloexec:false () in
  let writer =
    Domain.spawn (fun () ->
        let len = String.length archive in
        let pos = ref 0 in
        while !pos < len do
          let n = min 97 (len - !pos) in
          let wrote =
            Tdat_pkt.Ingest_io.retry_eintr (fun () ->
                Unix.write_substring w archive !pos n)
          in
          pos := !pos + wrote;
          if !pos mod (97 * 13) < 97 then Unix.sleepf 0.001
        done;
        Unix.close w)
  in
  let entries, stats = Mrt.fold_fd r ~init:[] (fun acc e -> e :: acc) in
  Domain.join writer;
  Unix.close r;
  Alcotest.(check int) "all records seen" 120 stats.Mrt.records;
  Alcotest.(check bool) "byte-identical re-encode" true
    (String.equal (Mrt.encode_entries (List.rev entries)) archive)

(* --- qcheck: entry codec under random archives ---------------------------- *)

let gen_prefix =
  QCheck.Gen.(
    let* a = int_range 1 223 in
    let* b = int_bound 255 in
    let* c = int_bound 255 in
    let* d = int_bound 255 in
    let* len = int_bound 32 in
    return (Prefix.of_quad a b c d len))

let gen_msg =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          let* nlri = list_size (int_range 0 30) gen_prefix in
          let* withdrawn = list_size (int_range 0 5) gen_prefix in
          let* hops = int_range 1 6 in
          let* asns = list_repeat hops (int_range 1 65535) in
          return
            (Msg.update ~withdrawn
               ~attrs:
                 [
                   Attr.Origin Attr.Igp;
                   Attr.As_path (As_path.of_asns asns);
                   Attr.Next_hop 0x0A000001l;
                 ]
               ~nlri ()) );
        (1, return Msg.Keepalive);
        ( 1,
          let* hold_time = int_bound 400 in
          return
            (Msg.Open
               {
                 Msg.version = 4;
                 my_as = 64500;
                 hold_time;
                 bgp_id = 0x0A000001l;
               }) );
        ( 1,
          let* code = int_range 1 6 in
          let* subcode = int_bound 10 in
          return (Msg.Notification { Msg.code; subcode; data = "cease" }) );
      ])

let gen_fsm_state =
  QCheck.Gen.oneofl
    [ Mrt.Idle; Mrt.Connect; Mrt.Active; Mrt.Open_sent; Mrt.Open_confirm;
      Mrt.Established ]

let gen_entries =
  QCheck.Gen.(
    let* n = int_range 0 30 in
    let* raw =
      list_repeat n
        (let* dt = int_range 1 5_000_000 in
         let* peer_as = int_range 1 65535 in
         let* is_state = int_bound 4 in
         if is_state = 0 then
           let* old_state = gen_fsm_state in
           let* new_state = gen_fsm_state in
           return (`State (dt, peer_as, old_state, new_state))
         else
           let* msg = gen_msg in
           return (`Msg (dt, peer_as, msg)))
    in
    let _, entries =
      List.fold_left
        (fun (ts, acc) item ->
          match item with
          | `State (dt, peer_as, old_state, new_state) ->
              (ts + dt, state ~peer_as (ts + dt) old_state new_state :: acc)
          | `Msg (dt, peer_as, msg) ->
              (ts + dt, message ~peer_as (ts + dt) msg :: acc))
        (0, []) raw
    in
    return (List.rev entries))

let arb_entries =
  QCheck.make
    ~print:(fun es -> Printf.sprintf "%d entries" (List.length es))
    gen_entries

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mrt entry codec roundtrip (random archives)"
       ~count:150 arb_entries (fun entries ->
         let r = Mrt.decode_result (Mrt.encode_entries entries) in
         r.Mrt.entries = entries
         && r.Mrt.diags = []
         && r.Mrt.stats.Mrt.records = List.length entries))

(* --- detector rules ------------------------------------------------------- *)

let detect ?config entries = Study.Detect.over_entries ?config entries

let test_detect_anchored () =
  (* STATE_CHANGE to Established, then the archived OPEN, then updates:
     the transfer start is the state change (first anchor wins). *)
  let entries =
    [
      state 1_000_000 Mrt.Open_confirm Mrt.Established;
      message 1_050_000
        (Msg.Open
           { Msg.version = 4; my_as = 64500; hold_time = 180;
             bgp_id = 0x0A000001l });
      message 2_000_000 (update_msg 0 40);
      message 3_000_000 (update_msg 40 40);
      message 4_000_000 Msg.Keepalive;
    ]
  in
  match detect entries with
  | [ t ] ->
      Alcotest.(check int) "start = establishment" 1_000_000
        t.Study.Transfer.start_ts;
      Alcotest.(check int) "end = last update" 3_000_000
        t.Study.Transfer.end_ts;
      Alcotest.(check int) "prefixes" 80 t.Study.Transfer.prefixes;
      Alcotest.(check int) "messages" 2 t.Study.Transfer.messages;
      Alcotest.(check bool) "anchored" true t.Study.Transfer.anchored
  | ts -> Alcotest.failf "expected 1 transfer, got %d" (List.length ts)

let test_detect_gap_split () =
  let gap = Study.Detect.default_config.Study.Detect.quiet_gap in
  let t0 = 1_000_000 in
  let t1 = t0 + gap + 10_000_000 in
  let entries =
    [
      message t0 (update_msg 0 40);
      message (t0 + 2_000_000) (update_msg 40 40);
      message t1 (update_msg 0 40);
      message (t1 + 1_000_000) (update_msg 40 40);
    ]
  in
  match detect entries with
  | [ a; b ] ->
      Alcotest.(check bool) "unanchored" false a.Study.Transfer.anchored;
      Alcotest.(check int) "first start" t0 a.Study.Transfer.start_ts;
      Alcotest.(check int) "first end" (t0 + 2_000_000)
        a.Study.Transfer.end_ts;
      Alcotest.(check int) "second start" t1 b.Study.Transfer.start_ts;
      Alcotest.(check int) "second end" (t1 + 1_000_000)
        b.Study.Transfer.end_ts
  | ts -> Alcotest.failf "expected 2 transfers, got %d" (List.length ts)

let test_detect_gap_exact_boundary () =
  (* The paper counts "gaps of 200 s or more" as transfer boundaries, so
     the comparison is inclusive: silence of exactly [quiet_gap] splits,
     one microsecond less does not. *)
  let gap = Study.Detect.default_config.Study.Detect.quiet_gap in
  let t0 = 1_000_000 in
  let entries_at dt =
    [ message t0 (update_msg 0 40); message (t0 + dt) (update_msg 40 40) ]
  in
  (match detect (entries_at gap) with
  | [ a; b ] ->
      Alcotest.(check int) "first transfer is the first burst" 40
        a.Study.Transfer.prefixes;
      Alcotest.(check int) "second starts at the late update" (t0 + gap)
        b.Study.Transfer.start_ts
  | ts ->
      Alcotest.failf "silence = quiet_gap must split: got %d transfer(s)"
        (List.length ts));
  match detect (entries_at (gap - 1)) with
  | [ only ] ->
      Alcotest.(check int) "one transfer spans both bursts" 80
        only.Study.Transfer.prefixes;
      Alcotest.(check int) "ends at the late update" (t0 + gap - 1)
        only.Study.Transfer.end_ts
  | ts ->
      Alcotest.failf "silence < quiet_gap must not split: got %d transfer(s)"
        (List.length ts)

let test_detect_reset_closes () =
  let entries =
    [
      state 1_000_000 Mrt.Open_confirm Mrt.Established;
      message 2_000_000 (update_msg 0 40);
      state 3_000_000 Mrt.Established Mrt.Idle;
      (* session re-established; a second, separate transfer *)
      state 10_000_000 Mrt.Open_confirm Mrt.Established;
      message 11_000_000 (update_msg 0 40);
      message 12_000_000 (update_msg 40 40);
    ]
  in
  match detect entries with
  | [ a; b ] ->
      Alcotest.(check int) "first ends at last update" 2_000_000
        a.Study.Transfer.end_ts;
      Alcotest.(check int) "second anchored at re-establishment" 10_000_000
        b.Study.Transfer.start_ts;
      Alcotest.(check bool) "both anchored" true
        (a.Study.Transfer.anchored && b.Study.Transfer.anchored)
  | ts -> Alcotest.failf "expected 2 transfers, got %d" (List.length ts)

let test_detect_churn_filtered () =
  (* A burst below min_prefixes is steady-state churn, not a transfer. *)
  let entries =
    [ message 1_000_000 (update_msg 0 5); message 2_000_000 (update_msg 5 5) ]
  in
  Alcotest.(check int) "churn dropped" 0 (List.length (detect entries));
  let config = { Study.Detect.default_config with Study.Detect.min_prefixes = 8 } in
  Alcotest.(check int) "threshold is configurable" 1
    (List.length (detect ~config entries))

let test_detect_notification_closes () =
  let entries =
    [
      message 1_000_000 (update_msg 0 40);
      message 2_000_000
        (Msg.Notification { Msg.code = 6; subcode = 0; data = "" });
      message 3_000_000 (update_msg 0 40);
    ]
  in
  match detect entries with
  | [ a; b ] ->
      Alcotest.(check int) "first closed by NOTIFICATION" 1_000_000
        a.Study.Transfer.end_ts;
      Alcotest.(check int) "second restarts" 3_000_000
        b.Study.Transfer.start_ts
  | ts -> Alcotest.failf "expected 2 transfers, got %d" (List.length ts)

let test_detect_multi_peer () =
  (* Interleaved peers must be tracked independently. *)
  let entries =
    [
      state ~peer_as:1 ~ip:0x0A000001l 1_000_000 Mrt.Open_confirm
        Mrt.Established;
      state ~peer_as:2 ~ip:0x0A000009l 1_500_000 Mrt.Open_confirm
        Mrt.Established;
      message ~peer_as:1 ~ip:0x0A000001l 2_000_000 (update_msg 0 40);
      message ~peer_as:2 ~ip:0x0A000009l 2_500_000 (update_msg 0 40);
      message ~peer_as:1 ~ip:0x0A000001l 3_000_000 (update_msg 40 40);
      message ~peer_as:2 ~ip:0x0A000009l 5_500_000 (update_msg 40 40);
    ]
  in
  match detect entries with
  | [ a; b ] ->
      Alcotest.(check int) "peer 1 first (by start)" 1 a.Study.Transfer.peer_as;
      Alcotest.(check int) "peer 1 end" 3_000_000 a.Study.Transfer.end_ts;
      Alcotest.(check int) "peer 2 end" 5_500_000 b.Study.Transfer.end_ts
  | ts -> Alcotest.failf "expected 2 transfers, got %d" (List.length ts)

(* --- aggregation, reports, determinism ------------------------------------ *)

let write_archive dir name entries =
  let path = Filename.concat dir name in
  Mrt.to_file_entries path entries;
  path

let fleet_archives dir =
  (* Three peers; the third is 30x slower than the others, so the
     mean + 3*stddev cut classifies exactly it as slow. *)
  let fast ip base_ts =
    [
      state ~ip base_ts Mrt.Open_confirm Mrt.Established;
      message ~ip (base_ts + 1_000_000) (update_msg 0 40);
      message ~ip (base_ts + 2_000_000) (update_msg 40 40);
    ]
  in
  let slow_entries =
    [
      state ~ip:0x0A000009l 1_000_000 Mrt.Open_confirm Mrt.Established;
      message ~ip:0x0A000009l 2_000_000 (update_msg 0 40);
      message ~ip:0x0A000009l 61_000_000 (update_msg 40 40);
    ]
  in
  [
    write_archive dir "a.mrt" (fast 0x0A000001l 1_000_000);
    write_archive dir "b.mrt" (fast 0x0A000002l 5_000_000);
    write_archive dir "c.mrt" slow_entries;
  ]

let test_aggregate_slow_classification () =
  let dir = tmpdir () in
  let files = fleet_archives dir in
  let report = Study.Aggregate.run ~jobs:1 ~slow_threshold_s:30. files in
  Alcotest.(check int) "transfers" 3
    (List.length report.Study.Aggregate.transfers);
  (match report.Study.Aggregate.slow with
  | [ t ] ->
      Alcotest.(check int32) "slow peer" 0x0A000009l t.Study.Transfer.peer_ip
  | ts -> Alcotest.failf "expected 1 slow transfer, got %d" (List.length ts));
  Alcotest.(check bool) "fixed threshold" false
    report.Study.Aggregate.threshold_auto;
  (* Auto threshold: the paper's mean + 3*stddev cut. *)
  let auto = Study.Aggregate.run ~jobs:1 files in
  let durations =
    List.map Study.Transfer.duration_s auto.Study.Aggregate.transfers
  in
  Alcotest.(check (float 1e-9)) "auto = mean + 3*stddev"
    (Tdat_stats.Descriptive.slow_threshold durations)
    auto.Study.Aggregate.slow_threshold_s

let test_report_jobs_deterministic () =
  let dir = tmpdir () in
  let files = fleet_archives dir in
  let r1 = Study.Aggregate.run ~jobs:1 files in
  let r3 = Study.Aggregate.run ~jobs:3 files in
  Alcotest.(check string) "text identical"
    (Study.Report.to_text r1) (Study.Report.to_text r3);
  Alcotest.(check string) "json identical"
    (Study.Report.to_json r1) (Study.Report.to_json r3)

let test_peer_summaries () =
  let dir = tmpdir () in
  let files = fleet_archives dir in
  let report = Study.Aggregate.run ~jobs:1 files in
  Alcotest.(check int) "three peers" 3
    (List.length report.Study.Aggregate.peers);
  List.iter
    (fun (p : Study.Aggregate.peer_summary) ->
      Alcotest.(check int) "one transfer each" 1 p.Study.Aggregate.transfers;
      Alcotest.(check int) "80 prefixes each" 80
        p.Study.Aggregate.prefixes_total;
      Alcotest.(check int) "anchored" 1 p.Study.Aggregate.anchored)
    report.Study.Aggregate.peers

(* --- ground truth --------------------------------------------------------- *)

let test_truth_roundtrip_and_recall () =
  let dir = tmpdir () in
  let path = Filename.concat dir "truth.tsv" in
  let truth =
    [
      {
        Study.Truth.source = "a.mrt";
        peer_as = 64500;
        peer_ip;
        start_ts = 1_000_000;
        end_ts = 3_000_000;
        prefixes = 80;
        messages = 2;
      };
    ]
  in
  Study.Truth.to_file path truth;
  let back = Study.Truth.of_file path in
  Alcotest.(check bool) "roundtrip" true (back = truth);
  let detected =
    detect
      [
        state 1_000_000 Mrt.Open_confirm Mrt.Established;
        message 2_000_000 (update_msg 0 40);
        message 3_000_000 (update_msg 40 40);
      ]
  in
  Alcotest.(check (float 1e-9)) "exact recall" 1.0
    (Study.Truth.recall ~truth detected);
  let off_by_one =
    List.map
      (fun t -> { t with Study.Truth.start_ts = t.Study.Truth.start_ts + 1 })
      truth
  in
  Alcotest.(check (float 1e-9)) "exact mode misses" 0.0
    (Study.Truth.recall ~truth:off_by_one detected);
  Alcotest.(check (float 1e-9)) "tolerance recovers" 1.0
    (Study.Truth.recall ~tol:1_000 ~truth:off_by_one detected)

(* --- end to end against simgen --emit-mrt --------------------------------- *)

let run_quiet cmd = Sys.command (cmd ^ " >/dev/null 2>&1")

let emit_fleet dir ~routers ~prefixes ~seed =
  let archives = Filename.concat dir "archives" in
  let cmd =
    Printf.sprintf "%s %s --emit-mrt %s --routers %d --prefixes %d --seed %d"
      (Filename.quote simgen_exe)
      (Filename.quote (Filename.concat dir "out.pcap"))
      (Filename.quote archives) routers prefixes seed
  in
  Alcotest.(check int) "simgen exit" 0 (run_quiet cmd);
  let files =
    Sys.readdir archives |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mrt")
    |> List.sort String.compare
    |> List.map (Filename.concat archives)
  in
  (files, Study.Truth.of_file (Filename.concat archives "ground_truth.tsv"))

let test_ground_truth_recall () =
  let dir = tmpdir () in
  let files, truth = emit_fleet dir ~routers:4 ~prefixes:250 ~seed:11 in
  Alcotest.(check int) "one archive per router" 4 (List.length files);
  Alcotest.(check int) "truth covers the fleet" 4 (List.length truth);
  let report = Study.Aggregate.run ~jobs:1 files in
  Alcotest.(check int) "every transfer detected" 4
    (List.length report.Study.Aggregate.transfers);
  let recall =
    Study.Truth.recall ~truth report.Study.Aggregate.transfers
  in
  if recall < 0.95 then
    Alcotest.failf "ground-truth recall %.2f below the 95%% acceptance bar"
      recall;
  (* Boundaries are exact on clean archives, so expect full recall. *)
  Alcotest.(check (float 1e-9)) "exact boundaries" 1.0 recall;
  (* Prefix and message accounting must match the simulator's records. *)
  List.iter
    (fun (t : Study.Truth.t) ->
      match
        List.find_opt
          (fun d -> Study.Truth.matches t d)
          report.Study.Aggregate.transfers
      with
      | None -> Alcotest.failf "no match for %s" t.Study.Truth.source
      | Some d ->
          Alcotest.(check int) "prefixes" t.Study.Truth.prefixes
            d.Study.Transfer.prefixes;
          Alcotest.(check int) "messages" t.Study.Truth.messages
            d.Study.Transfer.messages)
    truth

let test_cli_jobs_byte_identical () =
  let dir = tmpdir () in
  let files, _ = emit_fleet dir ~routers:3 ~prefixes:200 ~seed:23 in
  let quoted = String.concat " " (List.map Filename.quote files) in
  let out jobs json =
    let path =
      Filename.concat dir (Printf.sprintf "out_%d_%b.txt" jobs json)
    in
    let cmd =
      Printf.sprintf "%s study %s --jobs %d%s > %s 2>/dev/null"
        (Filename.quote tdat_exe) quoted jobs
        (if json then " --json" else "")
        (Filename.quote path)
    in
    Alcotest.(check int) "tdat study exit" 0 (Sys.command cmd);
    read_all path
  in
  let t1 = out 1 false and t4 = out 4 false in
  Alcotest.(check bool) "text output non-empty" true (String.length t1 > 0);
  Alcotest.(check string) "text byte-identical across --jobs" t1 t4;
  let j1 = out 1 true and j4 = out 4 true in
  Alcotest.(check string) "json byte-identical across --jobs" j1 j4

let test_cli_strict_salvage () =
  (* A truncated archive: default mode salvages and reports, --strict
     exits 2. *)
  let dir = tmpdir () in
  let files, _ = emit_fleet dir ~routers:1 ~prefixes:200 ~seed:31 in
  let path = List.hd files in
  let data = read_all path in
  let clipped = Filename.concat dir "clipped.mrt" in
  Out_channel.with_open_bin clipped (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data - 5)));
  let run extra =
    Sys.command
      (Printf.sprintf "%s study %s%s >/dev/null 2>&1"
         (Filename.quote tdat_exe) (Filename.quote clipped) extra)
  in
  Alcotest.(check int) "salvage mode succeeds" 0 (run "");
  Alcotest.(check int) "strict mode is a user error" 2 (run " --strict");
  let report = Study.Aggregate.run ~jobs:1 [ clipped ] in
  match report.Study.Aggregate.files with
  | [ f ] ->
      Alcotest.(check bool) "M002 reported" true
        (List.exists
           (fun (d : Mrt.Diag.t) -> String.equal d.Mrt.Diag.code "M002")
           f.Study.Archive.diags)
  | fs -> Alcotest.failf "expected 1 file report, got %d" (List.length fs)

let suite =
  [
    Alcotest.test_case "mrt entry roundtrip" `Quick test_entry_roundtrip;
    Alcotest.test_case "legacy decode skips state changes" `Quick
      test_legacy_decode_skips_state_changes;
    Alcotest.test_case "truncated header salvage" `Quick test_truncated_header;
    Alcotest.test_case "truncated record salvage" `Quick test_truncated_record;
    Alcotest.test_case "bad embedded message salvage" `Quick
      test_bad_embedded_message;
    Alcotest.test_case "short body salvage" `Quick test_short_body;
    Alcotest.test_case "unsupported type skipped" `Quick
      test_unsupported_type_skipped;
    Alcotest.test_case "bad state change salvage" `Quick test_bad_state_change;
    Alcotest.test_case "oversized record stops salvage" `Quick
      test_oversized_record;
    Alcotest.test_case "fold_file streaming" `Quick
      test_fold_file_matches_decode_result;
    Alcotest.test_case "fold_fd pipe-fed stream" `Quick test_fold_fd_pipe_fed;
    qcheck_roundtrip;
    Alcotest.test_case "detector: anchored start" `Quick test_detect_anchored;
    Alcotest.test_case "detector: quiet-gap split" `Quick
      test_detect_gap_split;
    Alcotest.test_case "detector: quiet-gap inclusive boundary" `Quick
      test_detect_gap_exact_boundary;
    Alcotest.test_case "detector: reset closes" `Quick
      test_detect_reset_closes;
    Alcotest.test_case "detector: churn filtered" `Quick
      test_detect_churn_filtered;
    Alcotest.test_case "detector: notification closes" `Quick
      test_detect_notification_closes;
    Alcotest.test_case "detector: multi-peer" `Quick test_detect_multi_peer;
    Alcotest.test_case "aggregate: slow classification" `Quick
      test_aggregate_slow_classification;
    Alcotest.test_case "aggregate: jobs-deterministic reports" `Quick
      test_report_jobs_deterministic;
    Alcotest.test_case "aggregate: per-peer summaries" `Quick
      test_peer_summaries;
    Alcotest.test_case "ground truth roundtrip + recall" `Quick
      test_truth_roundtrip_and_recall;
    Alcotest.test_case "e2e: simgen --emit-mrt ground-truth recall" `Quick
      test_ground_truth_recall;
    Alcotest.test_case "e2e: tdat study --jobs byte-identical" `Quick
      test_cli_jobs_byte_identical;
    Alcotest.test_case "e2e: salvage vs --strict" `Quick
      test_cli_strict_salvage;
  ]
