(* Decode-equivalence properties: the slice-based decoders must be
   byte-for-byte indistinguishable from the frozen pre-slice references
   in [Legacy_ref] — same records, same diagnostics, same salvage stats
   — over random valid captures AND randomly corrupted ones (truncated,
   bit-flipped, garbage-extended).  Plus the streaming transfer-end scan
   vs the extract-then-scan pipeline, and the [Scratch] arena's
   cross-domain isolation. *)

open Tdat_bgp
module Seg = Tdat_pkt.Tcp_segment
module Endpoint = Tdat_pkt.Endpoint
module Trace = Tdat_pkt.Trace
module Flow = Tdat_pkt.Flow
module Pcap = Tdat_pkt.Pcap
module Scratch = Tdat_parallel.Scratch

let prop ?(count = 100) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* --- corpus: valid captures, randomly corrupted ------------------------ *)

(* Truncate, flip a few bytes, and/or append garbage.  Valid input stays
   reachable (all three mutations can be no-ops) so the corpus covers
   the clean path and the salvage paths in one distribution. *)
let gen_mutated data =
  QCheck.Gen.(
    let n = String.length data in
    let* cut = frequency [ (3, return n); (2, int_bound n) ] in
    let* flips =
      if cut = 0 then return []
      else
        list_size (int_range 0 8) (pair (int_bound (cut - 1)) (int_bound 255))
    in
    let* tail =
      frequency
        [ (3, return ""); (1, string_size ~gen:char (int_bound 40)) ]
    in
    let b = Bytes.of_string (String.sub data 0 cut) in
    List.iter (fun (i, v) -> Bytes.set b i (Char.chr v)) flips;
    return (Bytes.to_string b ^ tail))

let ep1 = Endpoint.of_quad 10 0 0 1 20000
let ep2 = Endpoint.of_quad 10 0 0 2 179

let gen_segment =
  QCheck.Gen.(
    let* ts = int_bound 10_000_000 in
    let* seq = int_bound 1_000_000 in
    let* ack = int_bound 1_000_000 in
    let* window = int_bound 65535 in
    let* len = int_bound 600 in
    let* mss = opt (int_range 500 1500) in
    let* flip = bool in
    let payload = String.make len 'p' in
    let src, dst = if flip then (ep1, ep2) else (ep2, ep1) in
    return
      (Seg.v ~ts ~src ~dst ~seq ~ack ~window ~flags:Seg.data_flags ?mss_opt:mss
         ~payload ()))

let gen_pcap_bytes =
  QCheck.Gen.(
    let* segs = list_size (int_range 0 20) gen_segment in
    let data = Pcap.encode (Trace.of_segments segs) in
    gen_mutated data)

let arb_pcap_bytes =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "capture of %d bytes" (String.length s))
    gen_pcap_bytes

(* --- corpus: MRT archives ---------------------------------------------- *)

let gen_prefix =
  QCheck.Gen.(
    let* a = int_range 1 223 in
    let* b = int_bound 255 in
    let* c = int_bound 255 in
    let* d = int_bound 255 in
    let* len = int_bound 32 in
    return (Prefix.of_quad a b c d len))

let gen_msg =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          let* nlri = list_size (int_range 0 20) gen_prefix in
          let* withdrawn = list_size (int_range 0 5) gen_prefix in
          let* hops = int_range 1 6 in
          let* asns = list_repeat hops (int_range 1 65535) in
          let* med = int_bound 1000 in
          return
            (Msg.update ~withdrawn
               ~attrs:
                 [
                   Attr.Origin Attr.Igp;
                   Attr.As_path (As_path.of_asns asns);
                   Attr.Next_hop 0x0A000001l;
                   Attr.Med (Int32.of_int med);
                 ]
               ~nlri ()) );
        ( 1,
          let* my_as = int_range 1 65535 in
          let* hold_time = int_bound 400 in
          return
            (Msg.Open { version = 4; my_as; hold_time; bgp_id = 0x0A000001l })
        );
        (1, return Msg.Keepalive);
        ( 1,
          let* code = int_range 1 6 in
          let* subcode = int_bound 10 in
          let* data = string_size ~gen:char (int_bound 16) in
          return (Msg.Notification { code; subcode; data }) );
      ])

let gen_fsm_state =
  QCheck.Gen.oneofl
    Mrt.[ Idle; Connect; Active; Open_sent; Open_confirm; Established ]

let gen_entry =
  QCheck.Gen.(
    let* ts = int_bound 10_000_000 in
    let* peer_as = int_range 1 65535 in
    frequency
      [
        ( 5,
          let* msg = gen_msg in
          return
            (Mrt.Message
               {
                 Mrt.ts;
                 peer_as;
                 local_as = 64512;
                 peer_ip = 0x0A000002l;
                 local_ip = 0x0A000001l;
                 msg;
               }) );
        ( 1,
          let* old_state = gen_fsm_state in
          let* new_state = gen_fsm_state in
          return
            (Mrt.State
               {
                 Mrt.sc_ts = ts;
                 sc_peer_as = peer_as;
                 sc_local_as = 64512;
                 sc_peer_ip = 0x0A000002l;
                 sc_local_ip = 0x0A000001l;
                 old_state;
                 new_state;
               }) );
      ])

let gen_mrt_bytes =
  QCheck.Gen.(
    let* entries = list_size (int_range 0 15) gen_entry in
    let data = Mrt.encode_entries entries in
    gen_mutated data)

let arb_mrt_bytes =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "archive of %d bytes" (String.length s))
    gen_mrt_bytes

(* --- equivalence properties -------------------------------------------- *)

let outcome f = try Ok (f ()) with e -> Error (Printexc.to_string e)

let decode_props =
  [
    prop ~count:300 "pcap slice decode == legacy decode (salvage mode)"
      arb_pcap_bytes
      (fun data ->
        let a = Pcap.decode_result data in
        let b = Legacy_ref.pcap_decode_result data in
        Trace.segments a.Pcap.trace = Trace.segments b.Pcap.trace
        && a.Pcap.diags = b.Pcap.diags
        && a.Pcap.stats = b.Pcap.stats);
    prop ~count:300 "pcap slice decode == legacy decode (strict mode)"
      arb_pcap_bytes
      (fun data ->
        let a = outcome (fun () -> Pcap.decode_result ~strict:true data) in
        let b =
          outcome (fun () -> Legacy_ref.pcap_decode_result ~strict:true data)
        in
        match (a, b) with
        | Ok a, Ok b ->
            Trace.segments a.Pcap.trace = Trace.segments b.Pcap.trace
            && a.Pcap.diags = b.Pcap.diags
            && a.Pcap.stats = b.Pcap.stats
        | Error ea, Error eb -> ea = eb
        | _ -> false);
    prop ~count:300 "mrt slice decode == legacy decode (salvage mode)"
      arb_mrt_bytes
      (fun data ->
        let a = Mrt.decode_result data in
        let b = Legacy_ref.mrt_decode_result data in
        a.Mrt.entries = b.Mrt.entries
        && a.Mrt.diags = b.Mrt.diags
        && a.Mrt.stats = b.Mrt.stats);
    prop ~count:300 "mrt slice decode == legacy decode (strict mode)"
      arb_mrt_bytes
      (fun data ->
        let a = outcome (fun () -> Mrt.decode_result ~strict:true data) in
        let b =
          outcome (fun () -> Legacy_ref.mrt_decode_result ~strict:true data)
        in
        match (a, b) with
        | Ok a, Ok b -> a.Mrt.entries = b.Mrt.entries
        | Error ea, Error eb -> ea = eb
        | _ -> false);
  ]

(* --- streaming transfer-end == extract-then-scan ------------------------ *)

let flow = Flow.v ~sender:ep2 ~receiver:ep1

(* A BGP byte stream (some duplicate announcements so churn detection
   can fire, optional trailing garbage so the malformed-stop path is
   exercised) cut into in-order TCP segments with random sizes and
   inter-arrival gaps. *)
let gen_transfer_trace =
  QCheck.Gen.(
    let* n_msgs = int_range 0 30 in
    let* msgs =
      list_repeat n_msgs
        (frequency
           [
             ( 6,
               let* nlri = list_size (int_range 0 6) gen_prefix in
               return (Msg.update ~nlri ()) );
             (1, return Msg.Keepalive);
           ])
    in
    (* Duplicate a random prefix block of the stream to look like churn. *)
    let* dup = bool in
    let msgs = if dup then msgs @ msgs else msgs in
    let stream = String.concat "" (List.map Msg.encode msgs) in
    let* garbage =
      frequency [ (4, return ""); (1, string_size ~gen:char (int_bound 30)) ]
    in
    let stream = stream ^ garbage in
    let* seg_size = int_range 1 200 in
    let* gap = oneofl [ 1_000; 50_000; 1_000_000; 6_000_000 ] in
    let rec cut off acc =
      if off >= String.length stream then List.rev acc
      else begin
        let len = min seg_size (String.length stream - off) in
        let seg =
          Seg.v
            ~ts:(1_000_000 + (List.length acc * gap))
            ~src:ep2 ~dst:ep1 ~seq:off ~ack:0 ~flags:Seg.data_flags
            ~payload:(String.sub stream off len)
            ()
        in
        cut (off + len) (seg :: acc)
      end
    in
    return (Trace.of_segments (cut 0 [])))

let arb_transfer_trace =
  QCheck.make
    ~print:(fun t -> Printf.sprintf "trace of %d segments" (Trace.length t))
    gen_transfer_trace

let tight_config =
  { Mct.dup_fraction = 0.5; min_seen = 4; quiet_gap = 5_000_000 }

let transfer_props =
  let check config t =
    let start = 0 in
    let legacy =
      Mct.transfer_end ?config ~start
        (Mct.of_timed_msgs (Msg_reader.extract_from_trace t ~flow))
    in
    let streaming =
      Mct.transfer_end_of_reasm ?config ~start
        (Msg_reader.reassemble_from_trace t ~flow)
    in
    legacy = streaming
  in
  [
    prop ~count:200 "streaming transfer end == extract-then-scan (default)"
      arb_transfer_trace (check None);
    prop ~count:200 "streaming transfer end == extract-then-scan (tight)"
      arb_transfer_trace
      (check (Some tight_config));
  ]

(* Regression for the pset-hash precedence fix: consecutive /24
   prefixes pack to values a constant stride apart ([1 lsl 14]), and a
   multiplicative hash that keeps the LOW product bits degrades to one
   long collision cluster on exactly this input — the canonical shape of
   a full-table transfer.  Feed the streaming scan hundreds of
   sequential /24s and require both the exact distinct-prefix count and
   agreement with the extract-then-scan pipeline; a clustering
   regression would also blow the generous wall-clock bound below long
   before it failed a count. *)
let sequential_slash24_trace n =
  let buf = Buffer.create (n * 64) in
  for i = 0 to n - 1 do
    let nlri = [ Prefix.of_quad 10 (i / 256 mod 256) (i mod 256) 0 24 ] in
    Buffer.add_string buf (Msg.encode (Msg.update ~nlri ()))
  done;
  let stream = Buffer.contents buf in
  let seg_size = 1448 in
  let rec cut off acc =
    if off >= String.length stream then List.rev acc
    else
      let len = min seg_size (String.length stream - off) in
      let seg =
        Seg.v
          ~ts:(1_000_000 + (List.length acc * 1_000))
          ~src:ep2 ~dst:ep1 ~seq:off ~ack:0 ~flags:Seg.data_flags
          ~payload:(String.sub stream off len)
          ()
      in
      cut (off + len) (seg :: acc)
  in
  Trace.of_segments (cut 0 [])

let test_sequential_slash24_clustering () =
  let n = 600 in
  let t = sequential_slash24_trace n in
  let start = 0 in
  let streaming =
    Mct.transfer_end_of_reasm ~start (Msg_reader.reassemble_from_trace t ~flow)
  in
  let legacy =
    Mct.transfer_end ~start
      (Mct.of_timed_msgs (Msg_reader.extract_from_trace t ~flow))
  in
  Alcotest.(check bool) "streaming == extract-then-scan" true
    (streaming = legacy);
  match streaming with
  | None -> Alcotest.fail "no transfer end on a pure update stream"
  | Some r ->
      Alcotest.(check int) "every sequential /24 counted once" n
        r.Mct.prefixes;
      Alcotest.(check int) "every update attributed" n r.Mct.updates

let test_sequential_slash24_linear_time () =
  let n = 30_000 in
  let t = sequential_slash24_trace n in
  let t0 = Unix.gettimeofday () in
  let streaming =
    Mct.transfer_end_of_reasm ~start:0 (Msg_reader.reassemble_from_trace t ~flow)
  in
  let dt = Unix.gettimeofday () -. t0 in
  (match streaming with
  | None -> Alcotest.fail "no transfer end on a pure update stream"
  | Some r ->
      Alcotest.(check int) "distinct prefixes at scale" n r.Mct.prefixes);
  (* O(n) with the high-bit hash finishes in milliseconds; the low-bit
     clustering regression this locks against took minutes at this n. *)
  Alcotest.(check bool)
    (Printf.sprintf "30k sequential /24s scanned in %.2fs (bound 10s)" dt)
    true (dt < 10.)

(* --- Scratch arena ------------------------------------------------------ *)

let scratch_slot = 31 (* far from any slot the library owns *)

let test_scratch_reuse () =
  let first = ref Bytes.empty in
  Scratch.with_bytes ~slot:scratch_slot 100 (fun c ->
      Bytes.fill c.Scratch.buf 0 100 'a';
      first := c.Scratch.buf);
  Scratch.with_bytes ~slot:scratch_slot 50 (fun c ->
      Alcotest.(check bool)
        "same backing buffer on checkout" true
        (c.Scratch.buf == !first))

let test_scratch_reentrancy () =
  Scratch.with_bytes ~slot:scratch_slot 64 (fun outer ->
      Scratch.with_bytes ~slot:scratch_slot 64 (fun inner ->
          Alcotest.(check bool)
            "nested checkout gets a distinct buffer" true
            (inner.Scratch.buf != outer.Scratch.buf)))

let test_scratch_isolation () =
  (* Each domain must see private storage: the worker writing into its
     slot cannot alias the caller's buffer for the same slot. *)
  Scratch.with_bytes ~slot:scratch_slot 128 (fun mine ->
      Bytes.fill mine.Scratch.buf 0 128 'M';
      let theirs =
        Domain.join
          (Domain.spawn (fun () ->
               Scratch.with_bytes ~slot:scratch_slot 128 (fun c ->
                   Bytes.fill c.Scratch.buf 0 128 'W';
                   c.Scratch.buf)))
      in
      Alcotest.(check bool)
        "distinct backing buffers across domains" true
        (theirs != mine.Scratch.buf);
      Alcotest.(check char)
        "caller's bytes untouched" 'M'
        (Bytes.get mine.Scratch.buf 0))

let test_scratch_ints_isolation () =
  Scratch.with_ints ~slot:scratch_slot 64 (fun mine ->
      Array.fill mine 0 64 7;
      let theirs =
        Domain.join
          (Domain.spawn (fun () ->
               Scratch.with_ints ~slot:scratch_slot 64 (fun a ->
                   Array.fill a 0 64 9;
                   a)))
      in
      Alcotest.(check bool)
        "distinct int arrays across domains" true (theirs != mine);
      Alcotest.(check int) "caller's ints untouched" 7 mine.(0))

(* --- perf gate negative control ----------------------------------------- *)

let bench_exe = Filename.concat ".." (Filename.concat "bench" "main.exe")

(* The allocation gate is only trustworthy if it can actually fail: run
   it against a deliberately impossible baseline and require a non-zero
   exit.  (The positive direction — the real baseline passing — is
   covered by `dune runtest` itself via the @perf-gate alias.) *)
let test_perf_gate_rejects_tight_baseline () =
  let tight = Filename.temp_file "tdat_gate" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tight)
    (fun () ->
      let oc = open_out tight in
      output_string oc
        "{ \"analyze_minor_words_per_packet_max\": 1,\n\
        \  \"decode_minor_words_per_packet_max\": 1 }\n";
      close_out oc;
      let cmd =
        Printf.sprintf "%s perf_gate --baseline %s > /dev/null 2>&1"
          (Filename.quote bench_exe) (Filename.quote tight)
      in
      let rc = Sys.command cmd in
      Alcotest.(check bool) "tightened baseline fails the gate" true (rc <> 0))

let scratch_suite =
  [
    Alcotest.test_case "MCT: sequential /24s count distinctly" `Quick
      test_sequential_slash24_clustering;
    Alcotest.test_case "MCT: 30k sequential /24s scan in linear time" `Slow
      test_sequential_slash24_linear_time;
    Alcotest.test_case "scratch: buffer reused across checkouts" `Quick
      test_scratch_reuse;
    Alcotest.test_case "scratch: reentrant checkout degrades safely" `Quick
      test_scratch_reentrancy;
    Alcotest.test_case "scratch: cross-domain isolation (bytes)" `Quick
      test_scratch_isolation;
    Alcotest.test_case "scratch: cross-domain isolation (ints)" `Quick
      test_scratch_ints_isolation;
    Alcotest.test_case "perf gate rejects a tightened baseline" `Quick
      test_perf_gate_rejects_tight_baseline;
  ]

let suite = decode_props @ transfer_props @ scratch_suite
