(* Tdat_audit: the runtime invariant validators.  Three layers of tests:
   randomized properties showing the span-set algebra always produces
   canonical sets (A001 never fires on library output), targeted
   corruption tests showing each validator detects a deliberately broken
   input, and end-to-end runs showing [Analyzer.analyze ~audit:true] is
   silent on the simulator scenarios the integration tests use. *)

open Tdat
open Tdat_bgpsim
open Tdat_timerange
module Checks = Tdat_audit.Checks
module Diag = Tdat_audit.Diag
module Seg = Tdat_pkt.Tcp_segment

let prop ?(count = 100) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let has_code code diags =
  List.exists (fun (d : Diag.t) -> String.equal d.Diag.code code) diags

let check_clean what diags =
  if diags <> [] then
    Alcotest.failf "%s: unexpected audit findings:@\n%s" what
      (Format.asprintf "%a" Diag.pp_report diags)

(* --- A001 canonicality: randomized properties over the algebra ---------- *)

let arb_spans =
  let open QCheck.Gen in
  let gen_span =
    let* a = int_bound 5_000 in
    let* len = int_range 1 400 in
    return (Span.v a (a + len))
  in
  QCheck.make
    ~print:(fun l -> Format.asprintf "%a" Span_set.pp (Span_set.of_spans l))
    (list_size (int_bound 30) gen_span)

let canonical set = Checks.canonical_set set = []

let prop_of_spans_canonical =
  prop "of_spans is canonical" arb_spans (fun l ->
      canonical (Span_set.of_spans l))

let prop_union_canonical =
  prop "union is canonical" (QCheck.pair arb_spans arb_spans)
    (fun (a, b) ->
      canonical (Span_set.union (Span_set.of_spans a) (Span_set.of_spans b)))

let prop_inter_canonical =
  prop "inter is canonical" (QCheck.pair arb_spans arb_spans)
    (fun (a, b) ->
      canonical (Span_set.inter (Span_set.of_spans a) (Span_set.of_spans b)))

let prop_diff_canonical =
  prop "diff is canonical" (QCheck.pair arb_spans arb_spans)
    (fun (a, b) ->
      canonical (Span_set.diff (Span_set.of_spans a) (Span_set.of_spans b)))

let prop_complement_canonical =
  prop "complement is canonical" arb_spans (fun l ->
      canonical
        (Span_set.complement ~within:(Span.v 0 6_000) (Span_set.of_spans l)))

(* --- A001 corruption: raw lists that are not canonical ------------------ *)

let test_a001_detects_corruption () =
  let overlap = [ Span.v 0 100; Span.v 50 150 ] in
  let adjacent = [ Span.v 0 100; Span.v 100 200 ] in
  let unsorted = [ Span.v 500 600; Span.v 0 100 ] in
  Alcotest.(check bool) "overlap flagged" true
    (has_code "A001" (Checks.canonical_spans overlap));
  Alcotest.(check bool) "adjacency flagged" true
    (has_code "A001" (Checks.canonical_spans adjacent));
  Alcotest.(check bool) "disorder flagged" true
    (has_code "A001" (Checks.canonical_spans unsorted));
  check_clean "canonical list"
    (Checks.canonical_spans [ Span.v 0 100; Span.v 200 300 ])

(* --- A002/A003: trace sanity on hand-built segments --------------------- *)

let src = Tdat_pkt.Endpoint.of_quad 10 1 0 1 20001
let dst = Tdat_pkt.Endpoint.of_quad 10 0 0 2 179

let seg ?(src = src) ?(dst = dst) ~ts ~seq ~ack ?(len = 0) ?(window = 65535) ()
    =
  Seg.v ~ts ~src ~dst ~seq ~ack ~len ~window
    ~payload:(String.make (max len 0) 'd')
    ~flags:Seg.ack_flags ()

let test_a002_detects_disorder () =
  let ordered =
    [ seg ~ts:10 ~seq:0 ~ack:0 (); seg ~ts:20 ~seq:0 ~ack:100 () ]
  in
  let disordered = List.rev ordered in
  check_clean "ordered trace" (Checks.monotone_segments ordered);
  let diags = Checks.monotone_segments disordered in
  Alcotest.(check bool) "disorder flagged" true (has_code "A002" diags);
  Alcotest.(check bool) "as an error" true (Diag.errors diags <> [])

let test_a003_detects_negative_fields () =
  let diags = Checks.seq_ack_sane [ seg ~ts:10 ~seq:(-4) ~ack:0 () ] in
  Alcotest.(check bool) "negative seq flagged" true (has_code "A003" diags);
  Alcotest.(check bool) "as an error" true (Diag.errors diags <> [])

let test_a003_detects_ack_regression () =
  let diags =
    Checks.seq_ack_sane
      [ seg ~ts:10 ~seq:0 ~ack:1000 (); seg ~ts:20 ~seq:0 ~ack:400 () ]
  in
  Alcotest.(check bool) "regression flagged" true (has_code "A003" diags);
  Alcotest.(check bool) "as a warning, not an error" true
    (diags <> [] && Diag.errors diags = []);
  (* The reverse direction keeps its own cursor: interleaved directions
     with individually monotone acks are clean. *)
  check_clean "two monotone directions"
    (Checks.seq_ack_sane
       [
         seg ~ts:10 ~seq:0 ~ack:1000 ();
         seg ~ts:15 ~src:dst ~dst:src ~seq:0 ~ack:50 ();
         seg ~ts:20 ~seq:0 ~ack:2000 ();
         seg ~ts:25 ~src:dst ~dst:src ~seq:0 ~ack:90 ();
       ])

(* --- A004: ACK-shift conservation --------------------------------------- *)

let acks =
  [|
    seg ~ts:10 ~seq:0 ~ack:100 ();
    seg ~ts:20 ~seq:0 ~ack:200 ();
    seg ~ts:30 ~seq:0 ~ack:300 ();
  |]

let test_a004_accepts_forward_shift () =
  check_clean "identity shift"
    (Checks.ack_shift_conserved ~before:acks ~after:acks ());
  let forward =
    Array.map (fun (s : Seg.t) -> { s with Seg.ts = s.Seg.ts + 5 }) acks
  in
  check_clean "uniform forward shift"
    (Checks.ack_shift_conserved ~before:acks ~after:forward ())

let test_a004_detects_dropped_segment () =
  let after = [| acks.(0); acks.(2) |] in
  Alcotest.(check bool) "drop flagged" true
    (has_code "A004" (Checks.ack_shift_conserved ~before:acks ~after ()))

let test_a004_detects_backward_shift () =
  let after = Array.copy acks in
  after.(1) <- { acks.(1) with Seg.ts = acks.(1).Seg.ts - 15 };
  Alcotest.(check bool) "backward move flagged" true
    (has_code "A004" (Checks.ack_shift_conserved ~before:acks ~after ()))

let test_a004_detects_rewritten_segment () =
  let after = Array.copy acks in
  after.(1) <- { acks.(1) with Seg.window = 1234 };
  Alcotest.(check bool) "rewrite flagged" true
    (has_code "A004" (Checks.ack_shift_conserved ~before:acks ~after ()))

(* --- A005: factor accounting -------------------------------------------- *)

let test_a005_detects_bad_ratios () =
  Alcotest.(check bool) "ratio above one flagged" true
    (has_code "A005" (Checks.ratios_in_range [ ("cwnd", 1.5) ]));
  Alcotest.(check bool) "negative ratio flagged" true
    (has_code "A005" (Checks.ratios_in_range [ ("cwnd", -0.2) ]));
  Alcotest.(check bool) "nan flagged" true
    (has_code "A005" (Checks.ratios_in_range [ ("cwnd", Float.nan) ]));
  check_clean "boundary ratios"
    (Checks.ratios_in_range [ ("a", 0.0); ("b", 1.0); ("c", 0.37) ])

let test_a005_detects_oversized_series () =
  Alcotest.(check bool) "size beyond period flagged" true
    (has_code "A005" (Checks.sizes_bounded ~period:100 [ ("s", 150) ]));
  Alcotest.(check bool) "negative size flagged" true
    (has_code "A005" (Checks.sizes_bounded ~period:100 [ ("s", -1) ]));
  check_clean "bounded sizes"
    (Checks.sizes_bounded ~period:100 [ ("a", 0); ("b", 100) ])

(* --- Analyzer.analyze ~audit:true on the simulator scenarios ------------ *)

let audit_outcome ?(mrt = true) (o : Scenario.outcome) =
  let a =
    if mrt then
      Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow
        ~mrt:o.Scenario.mrt ~audit:true
    else Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~audit:true
  in
  a.Analyzer.audit

let scenario_clean name diags () = check_clean name diags

let test_scenario_timer_clean () =
  let result =
    Scenario.run ~seed:21
      [ Scenario.router ~table_prefixes:6000 ~timer_interval:200_000 ~quota:20 1 ]
  in
  scenario_clean "timer scenario"
    (audit_outcome (List.hd result.Scenario.outcomes))
    ()

let test_scenario_window_clean () =
  let rv_tcp = { Tdat_tcpsim.Tcp_types.default with max_adv_window = 16384 } in
  let result =
    Scenario.run ~seed:22 ~collector_tcp:rv_tcp
      [ Scenario.router ~table_prefixes:8000
          ~upstream:(Tdat_tcpsim.Connection.path ~delay:40_000 ()) 1 ]
  in
  scenario_clean "window-limited scenario"
    (audit_outcome (List.hd result.Scenario.outcomes))
    ()

let test_scenario_loss_clean () =
  let rng = Tdat_rng.Rng.create 99 in
  let result =
    Scenario.run ~seed:24
      [
        Scenario.router ~table_prefixes:8000
          ~upstream:
            (Tdat_tcpsim.Connection.path ~delay:5_000
               ~data_loss:
                 (Tdat_netsim.Loss.gilbert rng ~p_enter:0.05 ~p_exit:0.3
                    ~p_loss_bad:0.9)
               ())
          1;
      ]
  in
  scenario_clean "network-loss scenario"
    (audit_outcome (List.hd result.Scenario.outcomes))
    ()

let test_scenario_local_loss_clean () =
  let result =
    Scenario.run ~seed:25
      ~collector_local:
        (Tdat_tcpsim.Connection.path ~delay:50 ~bandwidth_bps:20_000_000
           ~buffer_pkts:6 ())
      [ Scenario.router ~table_prefixes:8000 1 ]
  in
  scenario_clean "receiver-local loss scenario"
    (audit_outcome (List.hd result.Scenario.outcomes))
    ()

let test_scenario_vendor_clean () =
  (* Vendor collector: no MRT archive, transfer reconstructed from the
     trace alone — the audit must hold on that path too. *)
  let result =
    Scenario.run ~seed:27 ~collector_kind:Collector.Vendor
      [ Scenario.router ~table_prefixes:3000 1 ]
  in
  scenario_clean "vendor scenario"
    (audit_outcome ~mrt:false (List.hd result.Scenario.outcomes))
    ()

let test_a007_accepts_identical_snapshots () =
  let snap = "{\"counters\":{\"x\":3},\"histograms\":{}}" in
  let diags =
    Tdat_audit.Checks.stable_snapshots_equal ~reference:snap ~candidate:snap ()
  in
  Alcotest.(check int) "identical snapshots are clean" 0 (List.length diags)

let test_a007_detects_divergence () =
  let diags =
    Tdat_audit.Checks.stable_snapshots_equal ~subject:"test-run"
      ~reference:"{\"a\":1}" ~candidate:"{\"a\":2}" ()
  in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "code" "A007" d.Tdat_audit.Diag.code;
      Alcotest.(check bool) "is error" true (Tdat_audit.Diag.is_error d)
  | _ -> Alcotest.fail "expected exactly one A007 diagnostic"

let suite =
  [
    prop_of_spans_canonical;
    prop_union_canonical;
    prop_inter_canonical;
    prop_diff_canonical;
    prop_complement_canonical;
    Alcotest.test_case "A001 corrupted span lists" `Quick
      test_a001_detects_corruption;
    Alcotest.test_case "A002 disordered trace" `Quick test_a002_detects_disorder;
    Alcotest.test_case "A003 negative fields" `Quick
      test_a003_detects_negative_fields;
    Alcotest.test_case "A003 ack regression" `Quick
      test_a003_detects_ack_regression;
    Alcotest.test_case "A004 forward shift accepted" `Quick
      test_a004_accepts_forward_shift;
    Alcotest.test_case "A004 dropped segment" `Quick
      test_a004_detects_dropped_segment;
    Alcotest.test_case "A004 backward shift" `Quick
      test_a004_detects_backward_shift;
    Alcotest.test_case "A004 rewritten segment" `Quick
      test_a004_detects_rewritten_segment;
    Alcotest.test_case "A005 bad ratios" `Quick test_a005_detects_bad_ratios;
    Alcotest.test_case "A005 oversized series" `Quick
      test_a005_detects_oversized_series;
    Alcotest.test_case "A007 identical snapshots" `Quick
      test_a007_accepts_identical_snapshots;
    Alcotest.test_case "A007 divergent snapshots" `Quick
      test_a007_detects_divergence;
    Alcotest.test_case "audit clean: timer scenario" `Slow
      test_scenario_timer_clean;
    Alcotest.test_case "audit clean: window scenario" `Slow
      test_scenario_window_clean;
    Alcotest.test_case "audit clean: network-loss scenario" `Slow
      test_scenario_loss_clean;
    Alcotest.test_case "audit clean: local-loss scenario" `Slow
      test_scenario_local_loss_clean;
    Alcotest.test_case "audit clean: vendor scenario" `Slow
      test_scenario_vendor_clean;
  ]
