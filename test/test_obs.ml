(* Tdat_obs: metrics registry semantics (monotone counters, histogram
   bucket boundaries, disabled-registry no-ops), snapshot determinism
   across --jobs on a fixed fleet, span nesting and Chrome-trace
   well-formedness, logger level filtering, the A006 stage-timing
   audit, and the CLI [with_obs] wrapper end to end. *)

module Obs = Tdat_obs.Metrics
module Tracer = Tdat_obs.Tracer
module Span = Tdat_obs.Span
module Log = Tdat_obs.Log

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let count_occurrences haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i n =
    if i + nn > nh then n
    else if String.sub haystack i nn = needle then go (i + nn) (n + 1)
    else go (i + 1) n
  in
  go 0 0

(* --- counters ---------------------------------------------------------- *)

let test_counter_monotone () =
  let reg = Obs.create () in
  Obs.set_enabled reg true;
  let c = Obs.Counter.make ~registry:reg "t.counter" in
  Alcotest.(check int) "fresh counter is zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add accumulate" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Counter.add: negative amount -1") (fun () ->
      Obs.Counter.add c (-1));
  Alcotest.(check int) "value unchanged after rejection" 42
    (Obs.Counter.value c)

let test_disabled_is_noop () =
  let reg = Obs.create () in
  let c = Obs.Counter.make ~registry:reg "t.disabled.counter" in
  let g = Obs.Gauge.make ~registry:reg "t.disabled.gauge" in
  let h = Obs.Histogram.make ~registry:reg "t.disabled.hist" in
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Gauge.set g 5.;
  Obs.Gauge.set_max g 9.;
  Obs.Histogram.observe h 3.;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Obs.Gauge.value g);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Histogram.count h)

let test_make_idempotent () =
  let reg = Obs.create () in
  Obs.set_enabled reg true;
  let a = Obs.Counter.make ~registry:reg "t.same" in
  let b = Obs.Counter.make ~registry:reg "t.same" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "both handles hit one instrument" 2
    (Obs.Counter.value a);
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Obs.Gauge.make ~registry:reg "t.same");
       false
     with Invalid_argument _ -> true)

(* --- histograms -------------------------------------------------------- *)

let test_histogram_buckets () =
  let reg = Obs.create () in
  Obs.set_enabled reg true;
  let h =
    Obs.Histogram.make ~registry:reg ~buckets:[| 1.; 2.; 5. |] "t.hist"
  in
  List.iter (Obs.Histogram.observe h) [ 1.0; 1.5; 5.0; 7.0 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 14.5 (Obs.Histogram.sum h);
  let buckets = Obs.Histogram.bucket_counts h in
  Alcotest.(check int) "bucket array length" 4 (Array.length buckets);
  (* Bounds are inclusive upper limits: 1.0 lands in [<=1], 1.5 in
     [<=2], 5.0 in [<=5], and 7.0 overflows. *)
  Alcotest.(check (list (pair (float 0.) int)))
    "bucket boundaries (inclusive) and overflow"
    [ (1., 1); (2., 1); (5., 1); (infinity, 1) ]
    (Array.to_list buckets);
  Alcotest.(check bool) "non-increasing bounds rejected" true
    (try
       ignore
         (Obs.Histogram.make ~registry:reg ~buckets:[| 2.; 1. |] "t.hist2");
       false
     with Invalid_argument _ -> true)

(* --- snapshot determinism across jobs ---------------------------------- *)

let fleet_trace () =
  let session id =
    let upstream = Tdat_tcpsim.Connection.path ~delay:2_000 () in
    let router =
      Tdat_bgpsim.Scenario.router ~table_prefixes:120 ~quota:8 ~upstream id
    in
    let result = Tdat_bgpsim.Scenario.run ~seed:(40 + id) [ router ] in
    List.hd result.Tdat_bgpsim.Scenario.outcomes
  in
  let outcomes = List.init 3 (fun i -> session (i + 1)) in
  Tdat_pkt.Trace.of_segments
    (List.concat_map
       (fun o -> Tdat_pkt.Trace.segments o.Tdat_bgpsim.Scenario.trace)
       outcomes)

let test_snapshot_deterministic_across_jobs () =
  (* The fleet is generated before metrics are enabled, so the snapshot
     sees only the analysis pipeline's instruments. *)
  let trace = fleet_trace () in
  let snapshot jobs =
    Obs.reset Obs.default;
    Obs.set_enabled Obs.default true;
    ignore (Tdat.Analyzer.analyze_all ~jobs trace);
    let s = Obs.snapshot_json ~stable_only:true Obs.default in
    Obs.set_enabled Obs.default false;
    s
  in
  let s1 = snapshot 1 in
  let s2 = snapshot 2 in
  let s4 = snapshot 4 in
  Alcotest.(check string) "stable snapshot jobs=1 vs jobs=2" s1 s2;
  Alcotest.(check string) "stable snapshot jobs=1 vs jobs=4" s1 s4;
  Alcotest.(check bool) "snapshot mentions the analyzer" true
    (contains s1 "analyzer.analyses")

let test_a007_backstop_on_live_snapshots () =
  (* End-to-end hookup of audit rule A007: the same stable snapshots the
     previous test compares by hand, fed through the audit validator. *)
  let trace = fleet_trace () in
  let snapshot jobs =
    Obs.reset Obs.default;
    Obs.set_enabled Obs.default true;
    ignore (Tdat.Analyzer.analyze_all ~jobs trace);
    let s = Obs.snapshot_json ~stable_only:true Obs.default in
    Obs.set_enabled Obs.default false;
    s
  in
  let reference = snapshot 1 in
  let candidate = snapshot 4 in
  let diags =
    Tdat_audit.Checks.stable_snapshots_equal ~subject:"fleet analysis"
      ~reference ~candidate ()
  in
  Alcotest.(check int) "A007 holds on live snapshots" 0 (List.length diags)

(* --- tracer ------------------------------------------------------------ *)

let count_phase events ph =
  List.length (List.filter (fun (e : Tracer.event) -> e.Tracer.ph = ph) events)

let test_span_nesting_balance () =
  Tracer.clear ();
  Tracer.set_enabled true;
  let r =
    Span.with_ ~name:"outer" (fun () ->
        Span.with_ ~name:"inner" (fun () -> 7)
        + Span.with_ ~name:"inner" (fun () -> 35))
  in
  Tracer.set_enabled false;
  Alcotest.(check int) "traced result" 42 r;
  let events = Tracer.events () in
  Alcotest.(check int) "three spans -> six events" 6 (List.length events);
  Alcotest.(check int) "begin count" 3 (count_phase events Tracer.B);
  Alcotest.(check int) "end count" 3 (count_phase events Tracer.E);
  Alcotest.(check bool) "balanced" true (Tracer.balanced ());
  Tracer.clear ()

let test_span_balanced_on_raise () =
  Tracer.clear ();
  Tracer.set_enabled true;
  (try
     Span.with_ ~name:"bang" (fun () -> raise Exit)
   with Exit -> ());
  Tracer.set_enabled false;
  Alcotest.(check bool) "span closed by the raise" true (Tracer.balanced ());
  Alcotest.(check int) "one begin, one end" 2 (List.length (Tracer.events ()));
  Tracer.clear ()

let test_trace_json_shape () =
  Tracer.clear ();
  Tracer.set_enabled true;
  Span.with_ ~name:"stage-a" (fun () ->
      Span.with_ ~name:"stage-b" ignore);
  Tracer.set_enabled false;
  let json = Tracer.to_json () in
  Tracer.clear ();
  Alcotest.(check bool) "opens a traceEvents array" true
    (String.starts_with ~prefix:"{\"traceEvents\":[" json);
  Alcotest.(check int) "two begin events" 2
    (count_occurrences json "\"ph\":\"B\"");
  Alcotest.(check int) "two end events" 2
    (count_occurrences json "\"ph\":\"E\"");
  Alcotest.(check int) "every event carries a tid" 4
    (count_occurrences json "\"tid\":")

(* --- trace context and X (complete) events ------------------------------ *)

let test_trace_context_stamps_events () =
  Tracer.clear ();
  Tracer.set_enabled true;
  Alcotest.(check (option string)) "no ambient context" None
    (Tracer.current_context ());
  Tracer.with_context (Some "req-1") (fun () ->
      Alcotest.(check (option string))
        "context visible inside" (Some "req-1")
        (Tracer.current_context ());
      Span.with_ ~name:"ctx-span" ignore);
  Span.with_ ~name:"bare-span" ignore;
  Tracer.set_enabled false;
  Alcotest.(check (option string)) "context restored" None
    (Tracer.current_context ());
  let events = Tracer.events () in
  let stamped =
    List.filter (fun (e : Tracer.event) -> e.Tracer.trace <> None) events
  in
  Alcotest.(check int) "only the contexted span is stamped" 2
    (List.length stamped);
  List.iter
    (fun (e : Tracer.event) ->
      Alcotest.(check string) "stamped span name" "ctx-span" e.Tracer.name;
      Alcotest.(check (option string)) "trace id" (Some "req-1") e.Tracer.trace)
    stamped;
  let json = Tracer.to_json () in
  Tracer.clear ();
  Alcotest.(check int) "args.trace rendered once per stamped event" 2
    (count_occurrences json "\"args\":{\"trace\":\"req-1\"}")

let test_complete_span_is_selfcontained () =
  Tracer.clear ();
  Tracer.set_enabled true;
  let now = Tdat_obs.Clock.now_us () in
  Span.with_ ~name:"outer" (fun () ->
      (* A retroactive span beginning before "outer" began: as a B/E
         pair this would break nesting; as an X event it must not. *)
      Tracer.complete_span ~name:"queue-wait" ~begin_us:(now -. 500.)
        ~dur_us:120.;
      Tracer.complete_span ~name:"clamped" ~begin_us:now ~dur_us:(-5.));
  Tracer.set_enabled false;
  let events = Tracer.events () in
  Alcotest.(check bool) "balanced (X ignored)" true (Tracer.balanced ());
  let xs =
    List.filter (fun (e : Tracer.event) -> e.Tracer.ph = Tracer.X) events
  in
  Alcotest.(check int) "two X events" 2 (List.length xs);
  let wait =
    List.find
      (fun (e : Tracer.event) -> String.equal e.Tracer.name "queue-wait")
      xs
  in
  Alcotest.(check (float 1e-9)) "X carries its duration" 120. wait.Tracer.dur;
  let clamped =
    List.find
      (fun (e : Tracer.event) -> String.equal e.Tracer.name "clamped")
      xs
  in
  Alcotest.(check (float 0.)) "negative duration clamps" 0. clamped.Tracer.dur;
  let json = Tracer.to_json () in
  Tracer.clear ();
  Alcotest.(check int) "ph X rendered" 2 (count_occurrences json "\"ph\":\"X\"");
  Alcotest.(check bool) "dur rendered" true (contains json "\"dur\":120.000")

(* --- rolling time-windowed histogram ------------------------------------ *)

module Window = Tdat_obs.Window
module Manual = Tdat_obs.Clock.Manual

let window ?buckets clock ~slots ~slot_s =
  Window.create ?buckets ~now:(Manual.now_s clock) ~slots ~slot_s ()

let test_window_percentile_math () =
  let clock = Manual.create () in
  let w = window clock ~slots:4 ~slot_s:1. ~buckets:[| 10.; 100.; 1000. |] in
  Alcotest.(check (float 0.)) "window span" 4. (Window.window_s w);
  Alcotest.(check (float 0.)) "empty p95 is 0" 0. (Window.percentile w 0.95);
  List.iter (Window.observe w) [ 5.; 50.; 500.; 5000. ];
  Alcotest.(check int) "count" 4 (Window.count w);
  Alcotest.(check (float 1e-9)) "sum" 5555. (Window.sum w);
  Alcotest.(check (float 1e-9)) "rate = count / window" 1. (Window.rate w);
  Alcotest.(check (float 0.)) "p0 hits the first bucket" 10.
    (Window.percentile w 0.);
  Alcotest.(check (float 0.)) "p50 = second bound" 100.
    (Window.percentile w 0.5);
  Alcotest.(check (float 0.)) "overflow reports last finite bound" 1000.
    (Window.percentile w 0.99);
  Alcotest.check_raises "p out of range rejected"
    (Invalid_argument "Window.percentile: p outside [0,1]") (fun () ->
      ignore (Window.percentile w 1.5))

let test_window_rotation_boundaries () =
  let clock = Manual.create () in
  let w = window clock ~slots:3 ~slot_s:1. ~buckets:[| 100.; 1000. |] in
  Window.observe w 10.;
  Manual.set clock 1.2;
  Window.observe w 20.;
  Manual.set clock 2.5;
  Window.observe w 30.;
  Alcotest.(check int) "all three inside the window" 3 (Window.count w);
  (* Epoch 3 begins: epoch 0 falls out of the 3-slot window exactly at
     the boundary. *)
  Manual.set clock 3.0;
  Alcotest.(check int) "oldest slot expired at the boundary" 2
    (Window.count w);
  (* The new epoch reuses epoch 0's ring slot; its stale contents must
     not resurface. *)
  Window.observe w 40.;
  Alcotest.(check int) "reused slot starts empty" 3 (Window.count w);
  (* Jump far ahead: everything expires without any intervening
     observation (reads never mutate, the staleness is filtered). *)
  Manual.set clock 60.;
  Alcotest.(check int) "idle window drains to empty" 0 (Window.count w);
  Alcotest.(check (float 0.)) "empty after drain" 0.
    (Window.percentile w 0.95);
  Window.observe w 50.;
  Window.clear w;
  Alcotest.(check int) "clear forgets" 0 (Window.count w)

let test_window_rejects_bad_config () =
  let reject name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "zero slots" (fun () -> Window.create ~slots:0 ~slot_s:1. ());
  reject "non-positive slot_s" (fun () ->
      Window.create ~slots:4 ~slot_s:0. ());
  reject "non-increasing bounds" (fun () ->
      Window.create ~buckets:[| 2.; 1. |] ~slots:4 ~slot_s:1. ())

(* --- slow-request exemplars ---------------------------------------------- *)

module Exemplar = Tdat_obs.Exemplar

let entry ?(trace = "t") ?(stages = []) ~dur () =
  {
    Exemplar.endpoint = "analyze";
    trace;
    duration_us = dur;
    at_s = 0.;
    stages;
    request = "{\"cmd\":\"analyze\"}";
  }

let durations t =
  List.map (fun e -> e.Exemplar.duration_us) (Exemplar.worst t)

let test_exemplar_keeps_k_worst () =
  let t = Exemplar.create ~capacity:3 in
  List.iter
    (fun d -> Exemplar.note t (entry ~dur:d ()))
    [ 100.; 700.; 50.; 300.; 10.; 500. ];
  Alcotest.(check int) "capped at capacity" 3 (Exemplar.count t);
  Alcotest.(check (list (float 0.))) "worst first" [ 700.; 500.; 300. ]
    (durations t);
  Exemplar.note t (entry ~dur:5. ());
  Alcotest.(check (list (float 0.))) "fast request rejected"
    [ 700.; 500.; 300. ] (durations t);
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Exemplar.create: capacity must be positive") (fun () ->
      ignore (Exemplar.create ~capacity:0))

let test_exemplar_ties_favor_newer () =
  let t = Exemplar.create ~capacity:2 in
  Exemplar.note t (entry ~trace:"old" ~dur:100. ());
  Exemplar.note t (entry ~trace:"new" ~dur:100. ());
  (match Exemplar.worst t with
  | [ a; b ] ->
      Alcotest.(check string) "newer of equals ranks first" "new"
        a.Exemplar.trace;
      Alcotest.(check string) "older of equals second" "old" b.Exemplar.trace
  | _ -> Alcotest.fail "expected two entries");
  Exemplar.clear t;
  Alcotest.(check int) "clear forgets" 0 (Exemplar.count t)

(* --- Prometheus exposition ----------------------------------------------- *)

module Prom = Tdat_obs.Prometheus

let test_prometheus_mangle () =
  Alcotest.(check string) "dots to underscores" "tdat_serve_request_us"
    (Prom.mangle "serve.request_us");
  Alcotest.(check string) "dashes to underscores" "tdat_pool_chunk"
    (Prom.mangle "pool-chunk")

let test_prometheus_exposition_shape () =
  let reg = Obs.create () in
  Obs.set_enabled reg true;
  let c = Obs.Counter.make ~registry:reg "tp.hits" in
  let g = Obs.Gauge.make ~registry:reg ~stable:false "tp.depth" in
  let h =
    Obs.Histogram.make ~registry:reg ~buckets:[| 1.; 2. |] "tp.lat"
  in
  Obs.Counter.add c 3;
  Obs.Gauge.set g 7.;
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.5; 9. ];
  let text = Prom.of_registry reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" needle) true
        (contains text needle))
    [
      "# TYPE tdat_tp_hits counter";
      "tdat_tp_hits_total 3";
      "# TYPE tdat_tp_depth gauge";
      "tdat_tp_depth 7.0";
      "# TYPE tdat_tp_lat histogram";
      "tdat_tp_lat_bucket{le=\"1.0\"} 1";
      "tdat_tp_lat_bucket{le=\"2.0\"} 2";
      "tdat_tp_lat_bucket{le=\"+Inf\"} 3";
      "tdat_tp_lat_sum 11.0";
      "tdat_tp_lat_count 3";
    ];
  let stable = Prom.of_registry ~stable_only:true reg in
  Alcotest.(check bool) "stable form keeps the counter" true
    (contains stable "tdat_tp_hits_total");
  Alcotest.(check bool) "stable form drops the volatile gauge" false
    (contains stable "tdat_tp_depth")

let test_prometheus_stable_identical_across_jobs () =
  (* The serve acceptance bar, reduced to its core: the stable section
     of the exposition is byte-identical whatever the worker count. *)
  let trace = fleet_trace () in
  let exposition jobs =
    Obs.reset Obs.default;
    Obs.set_enabled Obs.default true;
    ignore (Tdat.Analyzer.analyze_all ~jobs trace);
    let s = Prom.of_registry ~stable_only:true Obs.default in
    Obs.set_enabled Obs.default false;
    s
  in
  let e1 = exposition 1 in
  let e2 = exposition 2 in
  Alcotest.(check string) "stable exposition jobs=1 vs jobs=2" e1 e2;
  Alcotest.(check bool) "exposition mentions the analyzer" true
    (contains e1 "tdat_analyzer_analyses_total")

(* --- logger ------------------------------------------------------------ *)

let with_log_buffer f =
  let buf = Buffer.create 256 in
  Log.set_destination (`Buffer buf);
  let saved = Log.current_level () in
  Fun.protect
    ~finally:(fun () ->
      Log.set_level saved;
      Log.set_destination `Stderr)
    (fun () -> f buf)

let test_log_level_filtering () =
  with_log_buffer (fun buf ->
      Log.set_level (Some Log.Info);
      Log.debug (fun m -> m "dropped");
      Log.info (fun m -> m ~kv:[ ("n", "3") ] "kept %d" 1);
      Log.warn (fun m -> m "kept too");
      let out = Buffer.contents buf in
      Alcotest.(check bool) "debug filtered" false (contains out "dropped");
      Alcotest.(check bool) "info kept with kv" true
        (contains out "[info] kept 1 n=3");
      Alcotest.(check bool) "warn kept" true (contains out "[warn] kept too");
      Log.set_level None;
      Log.err (fun m -> m "silenced");
      Alcotest.(check bool) "quiet silences errors" false
        (contains (Buffer.contents buf) "silenced"))

let test_log_closure_laziness () =
  with_log_buffer (fun _ ->
      Log.set_level (Some Log.Warn);
      let ran = ref false in
      Log.debug (fun m ->
          ran := true;
          m "never");
      Alcotest.(check bool) "disabled closure never runs" false !ran)

(* --- A006 stage-timing audit ------------------------------------------- *)

let test_stage_timing_audit () =
  let open Tdat_audit in
  Alcotest.(check int) "empty timings pass vacuously" 0
    (List.length (Checks.stage_timings ~total_s:0. []));
  Alcotest.(check int) "consistent timings pass" 0
    (List.length
       (Checks.stage_timings ~total_s:1.0 [ ("a", 0.4); ("b", 0.5) ]));
  let overrun =
    Checks.stage_timings ~total_s:0.5 [ ("a", 0.4); ("b", 0.5) ]
  in
  Alcotest.(check bool) "overrun reported as A006" true
    (List.exists (fun d -> String.equal d.Diag.code "A006") overrun);
  let negative = Checks.stage_timings ~total_s:1.0 [ ("a", -0.1) ] in
  Alcotest.(check bool) "negative duration reported" true
    (List.exists (fun d -> String.equal d.Diag.code "A006") negative)

let test_analyze_records_timings () =
  let trace = fleet_trace () in
  match Tdat.Analyzer.analyze_all ~audit:true ~jobs:1 trace with
  | [] -> Alcotest.fail "fleet produced no connections"
  | (_, a) :: _ ->
      Alcotest.(check int) "every stage timed" 9
        (List.length a.Tdat.Analyzer.timings);
      Alcotest.(check bool) "total spans the stages" true
        (a.Tdat.Analyzer.total_s
        >= List.fold_left (fun s (_, d) -> s +. d) 0. a.Tdat.Analyzer.timings
           -. 1e-4);
      Alcotest.(check bool) "audit clean (A006 included)" true
        (a.Tdat.Analyzer.audit = []);
      Alcotest.(check bool) "timing table renders" true
        (contains (Tdat.Report.stage_timing_table a) "conn-profile")

(* --- CLI wrapper end to end --------------------------------------------- *)

let test_with_obs_writes_files () =
  let tmp suffix =
    Filename.temp_file "tdat_obs_test" suffix
  in
  let metrics_path = tmp ".metrics.json" in
  let trace_path = tmp ".trace.json" in
  let obs =
    {
      Tdat_obs_cli.metrics = Some metrics_path;
      trace = Some trace_path;
      log_level = None;
    }
  in
  let trace = fleet_trace () in
  let n =
    Tdat_obs_cli.with_obs obs (fun () ->
        List.length (Tdat.Analyzer.analyze_all ~jobs:2 trace))
  in
  Alcotest.(check bool) "analysis ran" true (n > 0);
  let read path = In_channel.with_open_bin path In_channel.input_all in
  let metrics = read metrics_path in
  let trace_json = read trace_path in
  Sys.remove metrics_path;
  Sys.remove trace_path;
  Alcotest.(check bool) "collectors left disabled" false
    (Obs.enabled Obs.default || Tracer.enabled ());
  Alcotest.(check bool) "metrics snapshot has both sections" true
    (contains metrics "\"stable\"" && contains metrics "\"volatile\"");
  Alcotest.(check bool) "trace covers the analyzer stages" true
    (List.for_all
       (fun stage -> contains trace_json (Printf.sprintf "%S" stage))
       [ "partition"; "analyze"; "conn-profile"; "series-gen"; "factors" ]);
  Alcotest.(check bool) "trace is a traceEvents object" true
    (String.starts_with ~prefix:"{\"traceEvents\":[" trace_json)

(* --- Canon: shortest round-trip float rendering --------------------------- *)

let test_canon_roundtrip_exact () =
  (* Every rendering must parse back to the identical bit pattern. *)
  let cases =
    [
      0.; -0.; 1.; -1.; 0.1; 0.2; 0.30000000000000004; 1e-3; 1.5e300;
      4.9406564584124654e-324 (* min subnormal *);
      1.7976931348623157e308 (* max finite *);
      3.141592653589793; 1e15; 1e15 +. 1.; 0.9794756157315281;
      6553.6; 2.2250738585072014e-308;
    ]
  in
  List.iter
    (fun v ->
      let s = Tdat_obs.Canon.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips %h" s v)
        true
        (Int64.equal
           (Int64.bits_of_float (float_of_string s))
           (Int64.bits_of_float v)))
    cases

let test_canon_shortest () =
  (* The canonical rendering prefers the shortest of %.15g/%.16g/%.17g
     that survives the round trip: familiar decimals stay short. *)
  List.iter
    (fun (v, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "canonical form of %h" v)
        expected
        (Tdat_obs.Canon.to_string v))
    [ (0.1, "0.1"); (0.5, "0.5"); (1., "1"); (1e300, "1e+300");
      (0.30000000000000004, "0.30000000000000004") ]

let canon_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"canon round-trips arbitrary finite floats"
       ~count:2000
       QCheck.(map (fun (a, b) -> a *. (2. ** float_of_int b))
                 (pair (float_range (-1.) 1.) (int_range (-300) 300)))
       (fun v ->
         let s = Tdat_obs.Canon.to_string v in
         Int64.equal
           (Int64.bits_of_float (float_of_string s))
           (Int64.bits_of_float v)))

let suite =
  [
    Alcotest.test_case "counters are monotone" `Quick test_counter_monotone;
    Alcotest.test_case "canon floats round-trip exactly" `Quick
      test_canon_roundtrip_exact;
    Alcotest.test_case "canon floats render shortest" `Quick
      test_canon_shortest;
    canon_roundtrip_prop;
    Alcotest.test_case "disabled registry is a no-op" `Quick
      test_disabled_is_noop;
    Alcotest.test_case "registration is idempotent by name" `Quick
      test_make_idempotent;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "stable snapshot identical across jobs" `Quick
      test_snapshot_deterministic_across_jobs;
    Alcotest.test_case "A007 backstop on live snapshots" `Quick
      test_a007_backstop_on_live_snapshots;
    Alcotest.test_case "spans nest and balance" `Quick
      test_span_nesting_balance;
    Alcotest.test_case "spans balance across raises" `Quick
      test_span_balanced_on_raise;
    Alcotest.test_case "chrome trace JSON shape" `Quick test_trace_json_shape;
    Alcotest.test_case "trace context stamps events" `Quick
      test_trace_context_stamps_events;
    Alcotest.test_case "X events are self-contained" `Quick
      test_complete_span_is_selfcontained;
    Alcotest.test_case "window percentile math" `Quick
      test_window_percentile_math;
    Alcotest.test_case "window rotation boundaries" `Quick
      test_window_rotation_boundaries;
    Alcotest.test_case "window rejects bad config" `Quick
      test_window_rejects_bad_config;
    Alcotest.test_case "exemplars keep the K worst" `Quick
      test_exemplar_keeps_k_worst;
    Alcotest.test_case "exemplar ties favor the newer" `Quick
      test_exemplar_ties_favor_newer;
    Alcotest.test_case "prometheus name mangling" `Quick
      test_prometheus_mangle;
    Alcotest.test_case "prometheus exposition shape" `Quick
      test_prometheus_exposition_shape;
    Alcotest.test_case "prometheus stable form identical across jobs" `Quick
      test_prometheus_stable_identical_across_jobs;
    Alcotest.test_case "log level filtering" `Quick test_log_level_filtering;
    Alcotest.test_case "disabled log closures never run" `Quick
      test_log_closure_laziness;
    Alcotest.test_case "A006 stage-timing audit" `Quick
      test_stage_timing_audit;
    Alcotest.test_case "instrumented analyze records timings" `Quick
      test_analyze_records_timings;
    Alcotest.test_case "with_obs writes metrics and trace files" `Quick
      test_with_obs_writes_files;
  ]
