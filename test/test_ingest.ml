(* Malformed-capture corpus for the streaming, fault-tolerant pcap
   reader: salvage counts, P0xx diagnostic codes, snaplen-correct length
   accounting, and strict-mode behavior.  Offsets below follow the
   encoder's fixed layout: 24-byte global header, 16-byte record headers,
   frames of 14 (Ethernet) + 20 (IPv4) + 20/24 (TCP) + payload bytes. *)

open Tdat_pkt
module Seg = Tcp_segment
module Reasm = Tdat_bgp.Stream_reassembly
module Scenario = Tdat_bgpsim.Scenario

let ep1 = Endpoint.of_quad 192 168 1 1 12345
let ep2 = Endpoint.of_quad 10 0 0 2 179

let seg ?(ts = 0) ?(seq = 0) ?(ack = 0) ?len ?(window = 65535) ?flags
    ?mss_opt ?payload ~src ~dst () =
  Seg.v ~ts ~src ~dst ~seq ~ack ?len ~window ?flags ?mss_opt ?payload ()

(* --- byte-twiddling helpers ------------------------------------------- *)

let u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let put_u32le b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let patch data off byte =
  String.mapi (fun i c -> if i = off then Char.chr byte else c) data

(* Re-capture an encoded pcap with a smaller snaplen, exactly like
   re-running tcpdump with [-s snaplen]: every record keeps at most
   [snaplen] frame bytes, [orig_len] stays. *)
let clip_capture snaplen data =
  let b = Buffer.create (String.length data) in
  Buffer.add_string b (String.sub data 0 24);
  let pos = ref 24 in
  let len = String.length data in
  while !pos + 16 <= len do
    let incl = u32le data (!pos + 8) in
    let keep = min incl snaplen in
    Buffer.add_string b (String.sub data !pos 8);
    put_u32le b keep;
    Buffer.add_string b (String.sub data (!pos + 12) 4);
    Buffer.add_string b (String.sub data (!pos + 16) keep);
    pos := !pos + 16 + incl
  done;
  Buffer.contents b

let codes (r : Pcap.result) =
  List.map (fun (d : Pcap.Diag.t) -> d.Pcap.Diag.code) r.Pcap.diags

let has_code code (r : Pcap.result) =
  List.exists (fun c -> String.equal c code) (codes r)

let severities (r : Pcap.result) =
  List.map
    (fun (d : Pcap.Diag.t) -> Pcap.Diag.severity_name d.Pcap.Diag.severity)
    r.Pcap.diags

let same_wire (a : Seg.t) (b : Seg.t) =
  a.Seg.ts = b.Seg.ts && a.Seg.seq = b.Seg.seq && a.Seg.ack = b.Seg.ack
  && a.Seg.len = b.Seg.len && a.Seg.window = b.Seg.window
  && a.Seg.flags = b.Seg.flags && a.Seg.mss_opt = b.Seg.mss_opt
  && Endpoint.equal a.Seg.src b.Seg.src
  && Endpoint.equal a.Seg.dst b.Seg.dst

let three_data_segs () =
  [
    seg ~ts:1_000 ~seq:0 ~payload:"aaaa" ~flags:Seg.data_flags ~src:ep1
      ~dst:ep2 ();
    seg ~ts:2_000 ~seq:4 ~payload:"bbbb" ~flags:Seg.data_flags ~src:ep1
      ~dst:ep2 ();
    seg ~ts:3_000 ~seq:8 ~payload:"cccc" ~flags:Seg.data_flags ~src:ep1
      ~dst:ep2 ();
  ]

(* --- salvage on truncation -------------------------------------------- *)

let test_truncated_final_record () =
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  (* tcpdump killed mid-write: the last record body is cut short. *)
  let cut = String.sub data 0 (String.length data - 10) in
  let r = Pcap.decode_result cut in
  Alcotest.(check int) "prior packets salvaged" 2 (Trace.length r.Pcap.trace);
  Alcotest.(check int) "records" 2 r.Pcap.stats.Pcap.records;
  Alcotest.(check int) "decoded" 2 r.Pcap.stats.Pcap.decoded;
  Alcotest.(check (list string)) "one truncation warning" [ "P005" ] (codes r);
  Alcotest.(check (list string)) "warning severity" [ "warning" ] (severities r);
  Alcotest.check_raises "strict still fails"
    (Pcap.Decode_error "Pcap.decode: truncated packet") (fun () ->
      ignore (Pcap.decode cut))

let test_trailing_record_header () =
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  let r = Pcap.decode_result (data ^ String.make 7 'x') in
  Alcotest.(check int) "all packets salvaged" 3 (Trace.length r.Pcap.trace);
  Alcotest.(check (list string)) "trailing header warning" [ "P004" ] (codes r)

let test_fatal_errors () =
  let r = Pcap.decode_result (String.make 32 'z') in
  Alcotest.(check (list string)) "bad magic" [ "P001" ] (codes r);
  Alcotest.(check bool) "error severity" true
    (List.for_all Pcap.Diag.is_error r.Pcap.diags);
  Alcotest.(check int) "nothing decoded" 0 (Trace.length r.Pcap.trace);
  let r = Pcap.decode_result "abc" in
  Alcotest.(check (list string)) "truncated header" [ "P002" ] (codes r);
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  let r = Pcap.decode_result (patch data 20 101) in
  Alcotest.(check (list string)) "unsupported link type" [ "P003" ] (codes r);
  Alcotest.check_raises "strict link type"
    (Pcap.Decode_error "Pcap.decode: unsupported link type") (fun () ->
      ignore (Pcap.decode (patch data 20 101)))

(* --- malformed headers skip the record, salvage the rest --------------- *)

(* First record's frame starts at 40: IPv4 version/IHL byte at 54, TCP
   header at 74, its data-offset byte at 86, options (when present) at
   94. *)

let test_bad_ip_header () =
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  let r = Pcap.decode_result (patch data 54 0x44) in
  Alcotest.(check (list string)) "bad IHL" [ "P006" ] (codes r);
  Alcotest.(check int) "record skipped" 1 r.Pcap.stats.Pcap.skipped;
  Alcotest.(check int) "rest salvaged" 2 (Trace.length r.Pcap.trace);
  let r = Pcap.decode_result (patch data 54 0x65) in
  Alcotest.(check (list string)) "bad version" [ "P006" ] (codes r);
  Alcotest.(check int) "rest salvaged" 2 (Trace.length r.Pcap.trace)

let test_bad_tcp_header () =
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  let r = Pcap.decode_result (patch data 86 0x40) in
  Alcotest.(check (list string)) "bad data offset" [ "P007" ] (codes r);
  Alcotest.(check int) "rest salvaged" 2 (Trace.length r.Pcap.trace);
  (* doff = 60 overruns the declared IP total length. *)
  let r = Pcap.decode_result (patch data 86 0xF0) in
  Alcotest.(check (list string)) "doff overruns datagram" [ "P007" ] (codes r);
  Alcotest.(check int) "rest salvaged" 2 (Trace.length r.Pcap.trace)

let test_options_overrun () =
  let syn =
    seg ~ts:500 ~mss_opt:1400 ~flags:(Seg.flags ~syn:true ()) ~src:ep1
      ~dst:ep2 ()
  in
  let data = Pcap.encode (Trace.of_segments [ syn ]) in
  (* Option kind 5 claiming 10 bytes inside a 4-byte options area. *)
  let r = Pcap.decode_result (patch (patch data 94 5) 95 10) in
  Alcotest.(check (list string)) "overrun reported" [ "P008" ] (codes r);
  Alcotest.(check int) "segment still decoded" 1 (Trace.length r.Pcap.trace);
  (match Trace.segments r.Pcap.trace with
  | [ s ] -> Alcotest.(check (option int)) "no MSS salvaged" None s.Seg.mss_opt
  | _ -> Alcotest.fail "expected one segment");
  (* Bad option length (< 2). *)
  let r = Pcap.decode_result (patch (patch data 94 5) 95 1) in
  Alcotest.(check (list string)) "bad option length" [ "P008" ] (codes r);
  (* Options clipped by the snaplen are not malformed: no diagnostic,
     no crash (the old scanner read out of bounds here). *)
  let r = Pcap.decode_result (clip_capture 56 data) in
  Alcotest.(check (list string)) "clipped options are fine" [] (codes r);
  Alcotest.(check int) "segment decoded" 1 (Trace.length r.Pcap.trace)

let test_non_ip_and_vlan_frames () =
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  (* First frame's ethertype (offset 52) becomes ARP. *)
  let r = Pcap.decode_result (patch data 53 0x06) in
  Alcotest.(check (list string)) "non-IPv4 note" [ "P009" ] (codes r);
  Alcotest.(check bool) "not an error" true
    (not (List.exists Pcap.Diag.is_error r.Pcap.diags));
  Alcotest.(check int) "rest salvaged" 2 (Trace.length r.Pcap.trace);
  (* An 802.1Q-tagged copy of a single-segment capture decodes through
     the tag. *)
  let one = seg ~ts:700 ~seq:3 ~payload:"vlan!" ~src:ep1 ~dst:ep2 () in
  let data = Pcap.encode (Trace.of_segments [ one ]) in
  let incl = u32le data 32 in
  let b = Buffer.create 128 in
  Buffer.add_string b (String.sub data 0 32);
  put_u32le b (incl + 4);
  put_u32le b (incl + 4);
  Buffer.add_string b (String.sub data 40 12);
  Buffer.add_string b "\x81\x00\x00\x01";
  Buffer.add_string b (String.sub data 52 (incl - 12));
  let r = Pcap.decode_result (Buffer.contents b) in
  Alcotest.(check (list string)) "VLAN note" [ "P010" ] (codes r);
  (match Trace.segments r.Pcap.trace with
  | [ s ] -> Alcotest.(check bool) "segment intact" true (same_wire one s)
  | _ -> Alcotest.fail "expected one segment")

(* --- snaplen-correct decoding ----------------------------------------- *)

let test_snaplen_clipped_capture () =
  let segs =
    [
      seg ~ts:1_000 ~seq:0 ~payload:"hello world" ~flags:Seg.data_flags
        ~src:ep1 ~dst:ep2 ();
      seg ~ts:2_000 ~ack:11 ~src:ep2 ~dst:ep1 ();
      seg ~ts:3_000 ~seq:11 ~payload:"abcdefgh" ~flags:Seg.data_flags ~src:ep1
        ~dst:ep2 ();
    ]
  in
  let data = Pcap.encode (Trace.of_segments segs) in
  let full = Pcap.decode_result data in
  (* tcpdump -s 54: Ethernet + IPv4 + base TCP headers only. *)
  let clipped = Pcap.decode_result (clip_capture 54 data) in
  Alcotest.(check int) "same packet count" (Trace.length full.Pcap.trace)
    (Trace.length clipped.Pcap.trace);
  Alcotest.(check int) "two data records clipped" 2
    clipped.Pcap.stats.Pcap.clipped;
  Alcotest.(check (list string)) "clipping summarized" [ "P011" ]
    (codes clipped);
  List.iter2
    (fun (f : Seg.t) (c : Seg.t) ->
      Alcotest.(check bool) "seq/len accounting identical" true (same_wire f c);
      Alcotest.(check string) "payload truncated to capture" "" c.Seg.payload;
      Alcotest.(check bool) "payload is a prefix" true
        (String.length c.Seg.payload <= String.length f.Seg.payload))
    (Trace.segments full.Pcap.trace)
    (Trace.segments clipped.Pcap.trace);
  Alcotest.(check int) "total_bytes from declared lengths"
    (Trace.total_bytes full.Pcap.trace)
    (Trace.total_bytes clipped.Pcap.trace);
  (* Clipping is not a decode problem: strict mode accepts it too. *)
  Alcotest.(check int) "strict decode works" 3
    (Trace.length (Pcap.decode (clip_capture 54 data)));
  (* Reassembly zero-fills the missing tails and keeps offsets exact. *)
  let data_segs tr =
    List.filter
      (fun (s : Seg.t) -> Seg.is_data s && Endpoint.equal s.Seg.src ep1)
      (Trace.segments tr)
  in
  let rf = Reasm.of_segments (data_segs full.Pcap.trace) in
  let rc = Reasm.of_segments (data_segs clipped.Pcap.trace) in
  Alcotest.(check int) "contiguous length preserved"
    (Reasm.contiguous_length rf) (Reasm.contiguous_length rc);
  Alcotest.(check int) "duplicate bytes preserved" (Reasm.duplicate_bytes rf)
    (Reasm.duplicate_bytes rc);
  Alcotest.(check string) "zero-filled stream"
    (String.make (Reasm.contiguous_length rc) '\000')
    (Reasm.contiguous rc)

(* --- streaming file reads --------------------------------------------- *)

let test_streaming_multi_chunk_file () =
  (* Larger than any single I/O chunk, read record by record. *)
  let payload = String.make 1024 'd' in
  let segs =
    List.init 300 (fun i ->
        seg ~ts:(1_000 * i) ~seq:(1024 * i) ~payload ~flags:Seg.data_flags
          ~src:ep1 ~dst:ep2 ())
  in
  let trace = Trace.of_segments segs in
  let path = Filename.temp_file "tdat_ingest" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pcap.to_file path trace;
      let r = Pcap.read_file path in
      Alcotest.(check int) "records" 300 r.Pcap.stats.Pcap.records;
      Alcotest.(check int) "decoded" 300 r.Pcap.stats.Pcap.decoded;
      Alcotest.(check (list string)) "no diagnostics" [] (codes r);
      Alcotest.(check bool) "byte-exact re-encode" true
        (String.equal (Pcap.encode r.Pcap.trace) (Pcap.encode trace));
      (* The fold interface never materializes the trace at all. *)
      let n, stats = Pcap.fold_file path ~init:0 (fun n _ -> n + 1) in
      Alcotest.(check int) "fold count" 300 n;
      Alcotest.(check int) "fold stats" 300 stats.Pcap.decoded;
      (* A truncated copy still yields every prior record. *)
      let data = Pcap.encode trace in
      let cut_path = Filename.temp_file "tdat_ingest_cut" ".pcap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove cut_path)
        (fun () ->
          let oc = open_out_bin cut_path in
          output_string oc (String.sub data 0 (String.length data - 100));
          close_out oc;
          let r = Pcap.read_file cut_path in
          Alcotest.(check int) "salvaged prefix" 299
            r.Pcap.stats.Pcap.decoded;
          Alcotest.(check (list string)) "truncation warning" [ "P005" ]
            (codes r)))

(* --- timestamp encoding ----------------------------------------------- *)

let test_timestamp_encoding () =
  (* Post-2038 seconds (>= 2^31) round-trip through the unsigned field. *)
  let ts = (2_200_000_000 * 1_000_000) + 123 in
  let t = Trace.of_segments [ seg ~ts ~payload:"x" ~src:ep1 ~dst:ep2 () ] in
  (match Trace.segments (Pcap.decode (Pcap.encode t)) with
  | [ s ] -> Alcotest.(check int) "post-2038 ts round-trips" ts s.Seg.ts
  | _ -> Alcotest.fail "expected one segment");
  let rejects ts =
    let t = Trace.of_segments [ seg ~ts ~src:ep1 ~dst:ep2 () ] in
    match Pcap.encode t with
    | (_ : string) -> false
    | exception Pcap.Encode_error _ -> true
  in
  Alcotest.(check bool) "seconds >= 2^32 rejected" true
    (rejects (4_294_967_296 * 1_000_000));
  Alcotest.(check bool) "negative ts rejected" true (rejects (-1))

(* --- audit lifting ----------------------------------------------------- *)

let test_audit_ingest_lifting () =
  let data = Pcap.encode (Trace.of_segments (three_data_segs ())) in
  let r = Pcap.decode_result (String.sub data 0 (String.length data - 10)) in
  match Tdat_audit.Ingest.of_result r with
  | [ d ] ->
      Alcotest.(check string) "code preserved" "P005" d.Tdat_audit.Diag.code;
      Alcotest.(check bool) "warning severity" true
        (Tdat_audit.Diag.equal_severity d.Tdat_audit.Diag.severity
           Tdat_audit.Diag.Warning);
      Alcotest.(check string) "record index in subject" "pcap record 2"
        d.Tdat_audit.Diag.subject
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length ds))

(* --- simulator scenario: headers-only capture is analysis-equivalent --- *)

let test_clipped_scenario_equivalence () =
  (* A lossy local path forces retransmissions (same setup as the
     analyzer's receiver-local loss test). *)
  let result =
    Scenario.run ~seed:25
      ~collector_local:
        (Tdat_tcpsim.Connection.path ~delay:50 ~bandwidth_bps:20_000_000
           ~buffer_pkts:6 ())
      [ Scenario.router ~table_prefixes:8000 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  let full_bytes = Pcap.encode o.Scenario.trace in
  Alcotest.(check bool) "decode/encode byte-exact on simulator output" true
    (String.equal (Pcap.encode (Pcap.decode full_bytes)) full_bytes);
  (* tcpdump -s 58 keeps Ethernet + IPv4 + TCP incl. the MSS option. *)
  let full = Pcap.decode_result full_bytes in
  let clipped = Pcap.decode_result (clip_capture 58 full_bytes) in
  Alcotest.(check bool) "payload was actually clipped" true
    (clipped.Pcap.stats.Pcap.clipped > 0);
  let fc = Trace.partition_connections full.Pcap.trace in
  let cc = Trace.partition_connections clipped.Pcap.trace in
  Alcotest.(check int) "same connections" (List.length fc) (List.length cc);
  List.iter2
    (fun ((fa, fb), fsub) ((ca, cb), csub) ->
      Alcotest.(check bool) "same connection key" true
        (Endpoint.equal fa ca && Endpoint.equal fb cb);
      Alcotest.(check int) "same packet count" (Trace.length fsub)
        (Trace.length csub);
      Alcotest.(check bool) "same seq/len wire profile" true
        (List.for_all2 same_wire (Trace.segments fsub) (Trace.segments csub));
      (* Same inferred sender, same retransmission profile. *)
      let flow_f = Trace.infer_sender fsub (fa, fb) in
      let flow_c = Trace.infer_sender csub (ca, cb) in
      Alcotest.(check bool) "same inferred sender" true
        (Endpoint.equal flow_f.Flow.sender flow_c.Flow.sender);
      let reasm flow sub =
        Reasm.of_segments
          (List.filter
             (fun (s : Seg.t) ->
               Seg.is_data s && Endpoint.equal s.Seg.src flow.Flow.sender)
             (Trace.segments sub))
      in
      let rf = reasm flow_f fsub and rc = reasm flow_c csub in
      Alcotest.(check int) "same delivered bytes" (Reasm.contiguous_length rf)
        (Reasm.contiguous_length rc);
      Alcotest.(check int) "same retransmitted bytes"
        (Reasm.duplicate_bytes rf) (Reasm.duplicate_bytes rc);
      Alcotest.(check int) "same open gaps" (Reasm.total_gaps rf)
        (Reasm.total_gaps rc))
    fc cc;
  Alcotest.(check bool) "scenario had losses" true (result.Scenario.local_drops > 0)

(* --- properties -------------------------------------------------------- *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:100 arb f)

(* --- stream-source robustness (Ingest_io) ------------------------------ *)

let scenario_capture ~seed ~prefixes =
  let result =
    Scenario.run ~seed [ Scenario.router ~table_prefixes:prefixes 1 ]
  in
  Pcap.encode result.Scenario.site_trace

let fold_segments fold = fold ~init:[] (fun acc s -> s :: acc)

let check_same_capture label data (got, (gstats : Pcap.stats)) =
  let expected, (estats : Pcap.stats) =
    fold_segments (fun ~init f -> Pcap.fold_string data ~init f)
  in
  Alcotest.(check string)
    (label ^ ": identical segments")
    (Pcap.encode (Trace.of_segments (List.rev expected)))
    (Pcap.encode (Trace.of_segments (List.rev got)));
  Alcotest.(check (list int))
    (label ^ ": identical stats")
    [ estats.Pcap.records; estats.Pcap.decoded; estats.Pcap.skipped ]
    [ gstats.Pcap.records; gstats.Pcap.decoded; gstats.Pcap.skipped ]

let test_pipe_fed_stream () =
  (* A pipe delivers short reads at arbitrary boundaries: the fold must
     reassemble every record exactly as the in-memory decoder does. *)
  let data = scenario_capture ~seed:61 ~prefixes:900 in
  let r, w = Unix.pipe ~cloexec:true () in
  let writer =
    Domain.spawn (fun () ->
        let b = Bytes.of_string data in
        let len = Bytes.length b in
        let pos = ref 0 in
        (* Deliberately awkward chunk sizes, unaligned with the pcap
           24/16-byte headers, so records always straddle reads. *)
        while !pos < len do
          let n = min 97 (len - !pos) in
          let written = Unix.write w b !pos n in
          pos := !pos + written
        done;
        Unix.close w)
  in
  let got = fold_segments (fun ~init f -> Pcap.fold_fd r ~init f) in
  Domain.join writer;
  Unix.close r;
  check_same_capture "pipe-fed" data got

let test_eintr_retry () =
  (* A source that raises EINTR on every third call and otherwise
     trickles 61-byte short reads: the wrapped reader must deliver the
     whole capture without truncation or a spurious EOF. *)
  let data = scenario_capture ~seed:62 ~prefixes:400 in
  let interrupted () =
    let pos = ref 0 and calls = ref 0 in
    fun buf off len ->
      incr calls;
      if !calls mod 3 = 0 then
        raise (Unix.Unix_error (Unix.EINTR, "read", ""));
      let n = min len (min 61 (String.length data - !pos)) in
      Bytes.blit_string data !pos buf off n;
      pos := !pos + n;
      n
  in
  let got =
    fold_segments (fun ~init f ->
        Pcap.fold_read ~read:(Ingest_io.of_read (interrupted ())) ~init f)
  in
  check_same_capture "EINTR-riddled" data got;
  (* The channel flavor of the same interruption ([Sys_error]). *)
  let sys_interrupted () =
    let pos = ref 0 and calls = ref 0 in
    fun buf off len ->
      incr calls;
      if !calls mod 3 = 0 then raise (Sys_error "Interrupted system call");
      let n = min len (min 61 (String.length data - !pos)) in
      Bytes.blit_string data !pos buf off n;
      pos := !pos + n;
      n
  in
  let got =
    fold_segments (fun ~init f ->
        Pcap.fold_read ~read:(Ingest_io.of_read (sys_interrupted ())) ~init f)
  in
  check_same_capture "Sys_error EINTR" data got

let test_follow_tailed_file () =
  (* Tail a file that is still being written: cut mid-record, append
     the rest while the fold is already polling, and require the full
     capture.  [follow_idle] ends the tail 0.3 s after growth stops. *)
  let data = scenario_capture ~seed:63 ~prefixes:400 in
  let path = Filename.temp_file "tdat_tail" ".pcap" in
  let cut = String.length data / 2 in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub data 0 cut));
  let writer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.1;
        let oc = open_out_gen [ Open_append; Open_binary ] 0o600 path in
        output_string oc (String.sub data cut (String.length data - cut));
        close_out oc)
  in
  let follow = Ingest_io.follow_idle ~limit_s:30. ~idle_s:0.3 () in
  let got =
    fold_segments (fun ~init f -> Pcap.fold_file ~follow path ~init f)
  in
  Domain.join writer;
  check_same_capture "tailed" data got;
  Sys.remove path

let arb_trace = QCheck.list_of_size (QCheck.Gen.int_range 0 20) Test_pkt.arb_segment

let qcheck_suite =
  [
    prop "decode . encode is byte-exact" arb_trace (fun segs ->
        let data = Pcap.encode (Trace.of_segments segs) in
        String.equal (Pcap.encode (Pcap.decode data)) data);
    prop "snaplen clipping preserves seq/len accounting"
      (QCheck.pair arb_trace (QCheck.int_range 54 400))
      (fun (segs, snaplen) ->
        let data = Pcap.encode (Trace.of_segments segs) in
        let full = Pcap.decode_result data in
        let clipped = Pcap.decode_result (clip_capture snaplen data) in
        clipped.Pcap.diags
        |> List.for_all (fun d -> not (Pcap.Diag.is_error d))
        && List.for_all2
             (fun (f : Seg.t) (c : Seg.t) ->
               f.Seg.ts = c.Seg.ts && f.Seg.seq = c.Seg.seq
               && f.Seg.len = c.Seg.len
               && f.Seg.ack = c.Seg.ack
               && String.length c.Seg.payload <= f.Seg.len)
             (Trace.segments full.Pcap.trace)
             (Trace.segments clipped.Pcap.trace));
  ]

let suite =
  [
    Alcotest.test_case "truncated final record" `Quick
      test_truncated_final_record;
    Alcotest.test_case "trailing record header" `Quick
      test_trailing_record_header;
    Alcotest.test_case "fatal errors" `Quick test_fatal_errors;
    Alcotest.test_case "bad ip header" `Quick test_bad_ip_header;
    Alcotest.test_case "bad tcp header" `Quick test_bad_tcp_header;
    Alcotest.test_case "options overrun" `Quick test_options_overrun;
    Alcotest.test_case "non-ip and vlan frames" `Quick
      test_non_ip_and_vlan_frames;
    Alcotest.test_case "snaplen-clipped capture" `Quick
      test_snaplen_clipped_capture;
    Alcotest.test_case "streaming multi-chunk file" `Quick
      test_streaming_multi_chunk_file;
    Alcotest.test_case "timestamp encoding" `Quick test_timestamp_encoding;
    Alcotest.test_case "audit ingest lifting" `Quick test_audit_ingest_lifting;
    Alcotest.test_case "clipped scenario equivalence" `Slow
      test_clipped_scenario_equivalence;
    Alcotest.test_case "pipe-fed stream" `Quick test_pipe_fed_stream;
    Alcotest.test_case "EINTR retry" `Quick test_eintr_retry;
    Alcotest.test_case "tailed growing file" `Quick test_follow_tailed_file;
  ]
  @ qcheck_suite
