(* BGP protocol substrate: codecs, table generation, packing, stream
   reassembly, MRT, and the MCT table-transfer end detector. *)

open Tdat_bgp
module Seg = Tdat_pkt.Tcp_segment

let ep1 = Tdat_pkt.Endpoint.of_quad 10 0 0 1 20000
let ep2 = Tdat_pkt.Endpoint.of_quad 10 0 0 2 179

(* --- Prefix ----------------------------------------------------------- *)

let test_prefix_basics () =
  let p = Prefix.of_quad 192 168 255 255 16 in
  Alcotest.(check string) "masked render" "192.168.0.0/16" (Prefix.to_string p);
  Alcotest.(check int) "encoded size" 3 (Prefix.encoded_size p);
  let default = Prefix.of_quad 1 2 3 4 0 in
  Alcotest.(check string) "default route" "0.0.0.0/0" (Prefix.to_string default);
  Alcotest.check_raises "bad length" (Invalid_argument "Prefix.v: bad length 33")
    (fun () -> ignore (Prefix.v 0l 33))

let test_prefix_codec () =
  let cases =
    [ Prefix.of_quad 10 0 0 0 8; Prefix.of_quad 203 0 113 0 24;
      Prefix.of_quad 198 51 100 128 25; Prefix.of_quad 0 0 0 0 0 ]
  in
  List.iter
    (fun p ->
      let buf = Buffer.create 8 in
      Prefix.encode buf p;
      let decoded, off = Prefix.decode (Buffer.contents buf) 0 in
      Alcotest.(check bool)
        (Prefix.to_string p ^ " roundtrips")
        true (Prefix.equal p decoded);
      Alcotest.(check int) "consumed all" (Buffer.length buf) off)
    cases

(* --- AS path / attributes ---------------------------------------------- *)

let test_as_path_codec () =
  let path = [ As_path.Seq [ 64500; 64501 ]; As_path.Set [ 64502; 64503 ] ] in
  let buf = Buffer.create 16 in
  As_path.encode buf path;
  let decoded = As_path.decode (Buffer.contents buf) in
  Alcotest.(check bool) "roundtrip" true (As_path.equal path decoded);
  Alcotest.(check int) "hop count (set = 1)" 3 (As_path.hop_count path)

let test_attr_codec () =
  let attrs =
    [
      Attr.Origin Attr.Igp;
      Attr.As_path (As_path.of_asns [ 1; 2; 3 ]);
      Attr.Next_hop 0x0A000001l;
      Attr.Med 42l;
      Attr.Local_pref 100l;
    ]
  in
  let buf = Buffer.create 64 in
  List.iter (Attr.encode buf) attrs;
  let decoded = Attr.decode_all (Buffer.contents buf) in
  Alcotest.(check int) "count" 5 (List.length decoded);
  Alcotest.(check bool) "same signature" true
    (Attr.signature attrs = Attr.signature decoded)

let test_attr_signature_order_independent () =
  let a = [ Attr.Origin Attr.Igp; Attr.Next_hop 1l ] in
  let b = [ Attr.Next_hop 1l; Attr.Origin Attr.Igp ] in
  Alcotest.(check bool) "order independent" true
    (Attr.signature a = Attr.signature b)

(* --- Messages ----------------------------------------------------------- *)

let sample_update =
  Msg.update
    ~attrs:[ Attr.Origin Attr.Igp; Attr.As_path (As_path.of_asns [ 7; 8 ]);
             Attr.Next_hop 0x0A000001l ]
    ~nlri:[ Prefix.of_quad 203 0 113 0 24; Prefix.of_quad 198 51 100 0 24 ]
    ()

let test_msg_roundtrip () =
  let msgs =
    [
      Msg.Open { Msg.version = 4; my_as = 64500; hold_time = 180; bgp_id = 7l };
      sample_update;
      Msg.Keepalive;
      Msg.Notification { Msg.code = 6; subcode = 2; data = "bye" };
    ]
  in
  List.iter
    (fun m ->
      let bytes = Msg.encode m in
      Alcotest.(check int) "declared length matches"
        (String.length bytes) (Msg.encoded_size m);
      match Msg.decode bytes 0 with
      | Some (decoded, fin) ->
          Alcotest.(check int) "consumed all" (String.length bytes) fin;
          Alcotest.(check bool) "roundtrip" true (decoded = m)
      | None -> Alcotest.fail "decode returned None")
    msgs

let test_msg_partial () =
  let bytes = Msg.encode sample_update in
  let partial = String.sub bytes 0 (String.length bytes - 1) in
  Alcotest.(check bool) "partial is None" true (Msg.decode partial 0 = None);
  Alcotest.(check bool) "short header is None" true
    (Msg.peek_length (String.sub bytes 0 10) 0 = None)

let test_msg_bad_marker () =
  let bytes = Bytes.of_string (Msg.encode Msg.Keepalive) in
  Bytes.set bytes 3 '\000';
  Alcotest.check_raises "marker check"
    (Bgp_error.Decode_error
       { context = "Msg.peek_length"; message = "bad marker" })
    (fun () -> ignore (Msg.decode (Bytes.to_string bytes) 0))

(* --- Table generation and packing --------------------------------------- *)

let gen_table n =
  Table.generate ~rng:(Tdat_rng.Rng.create 77) ~n_prefixes:n ()

let test_table_generation () =
  let t = gen_table 500 in
  Alcotest.(check int) "count" 500 (List.length t);
  let distinct = List.sort_uniq Prefix.compare (Table.prefixes t) in
  Alcotest.(check int) "all distinct" 500 (List.length distinct)

let test_pack_unpack () =
  let t = gen_table 400 in
  let msgs = Update_gen.pack t in
  Alcotest.(check bool) "packs into fewer messages" true
    (List.length msgs < 400);
  List.iter
    (fun m ->
      Alcotest.(check bool) "within max size" true
        (Msg.encoded_size m <= Msg.max_size))
    msgs;
  let back = Update_gen.unpack msgs in
  let norm tbl =
    List.sort compare
      (List.map
         (fun (r : Table.route) -> (r.Table.prefix, Attr.signature r.Table.attrs))
         tbl)
  in
  Alcotest.(check bool) "unpack recovers routes" true (norm t = norm back)

let test_pack_respects_size_limit () =
  (* A single attribute group with many prefixes must split. *)
  let attrs = [ Attr.Origin Attr.Igp; Attr.Next_hop 9l ] in
  let t =
    List.init 2000 (fun i ->
        { Table.prefix = Prefix.of_quad (1 + (i / 65536)) (i / 256 mod 256) (i mod 256) 0 24;
          attrs })
  in
  let msgs = Update_gen.pack t in
  Alcotest.(check bool) "split into several" true (List.length msgs > 1);
  Alcotest.(check int) "no prefix lost" 2000
    (List.fold_left (fun acc m -> acc + Msg.nlri_count m) 0 msgs)

(* --- Stream reassembly --------------------------------------------------- *)

let data_seg ~ts ~seq payload =
  Seg.v ~ts ~src:ep1 ~dst:ep2 ~seq ~ack:0 ~flags:Seg.data_flags ~payload ()

let test_reassembly_in_order () =
  let r =
    Stream_reassembly.of_segments
      [ data_seg ~ts:1 ~seq:0 "hello "; data_seg ~ts:2 ~seq:6 "world" ]
  in
  Alcotest.(check string) "stream" "hello world" (Stream_reassembly.contiguous r);
  Alcotest.(check int) "delivery of byte 0" 1
    (Stream_reassembly.delivery_time r 0);
  Alcotest.(check int) "delivery of byte 8" 2
    (Stream_reassembly.delivery_time r 8)

let test_reassembly_out_of_order () =
  let r =
    Stream_reassembly.of_segments
      [ data_seg ~ts:1 ~seq:6 "world"; data_seg ~ts:5 ~seq:0 "hello " ]
  in
  Alcotest.(check string) "stream" "hello world" (Stream_reassembly.contiguous r);
  (* Byte 8 became deliverable only when the hole was filled at t=5. *)
  Alcotest.(check int) "hole-gated delivery" 5
    (Stream_reassembly.delivery_time r 8)

let test_reassembly_retransmission () =
  let r =
    Stream_reassembly.of_segments
      [
        data_seg ~ts:1 ~seq:0 "abc";
        data_seg ~ts:2 ~seq:0 "abc" (* dup *);
        data_seg ~ts:3 ~seq:3 "def";
      ]
  in
  Alcotest.(check string) "no duplication" "abcdef"
    (Stream_reassembly.contiguous r);
  Alcotest.(check int) "duplicate bytes counted" 3
    (Stream_reassembly.duplicate_bytes r)

let test_reassembly_overlap_and_gaps () =
  let r =
    Stream_reassembly.of_segments
      [
        data_seg ~ts:1 ~seq:0 "abcd";
        data_seg ~ts:2 ~seq:2 "cdef" (* overlap *);
        data_seg ~ts:3 ~seq:10 "xx" (* gap at [6,10) *);
      ]
  in
  Alcotest.(check string) "overlap merged" "abcdef"
    (Stream_reassembly.contiguous r);
  Alcotest.(check int) "one open gap" 1 (Stream_reassembly.total_gaps r)

(* --- Msg_reader ----------------------------------------------------------- *)

let test_msg_reader_extracts_with_timestamps () =
  let m1 = Msg.encode sample_update in
  let m2 = Msg.encode Msg.Keepalive in
  let stream = m1 ^ m2 in
  let half = String.length m1 / 2 in
  let segs =
    [
      data_seg ~ts:10 ~seq:0 (String.sub stream 0 half);
      data_seg ~ts:20 ~seq:half
        (String.sub stream half (String.length stream - half));
    ]
  in
  let msgs = Msg_reader.extract (Stream_reassembly.of_segments segs) in
  Alcotest.(check int) "two messages" 2 (List.length msgs);
  let first = List.hd msgs in
  Alcotest.(check int) "first completed by second segment" 20
    first.Msg_reader.ts;
  Alcotest.(check int) "offset" 0 first.Msg_reader.offset

let test_msg_reader_from_trace () =
  let stream = Msg.encode sample_update in
  let trace =
    Tdat_pkt.Trace.of_segments
      [
        data_seg ~ts:5 ~seq:100 stream;
        (* ack in other direction must be ignored *)
        Seg.v ~ts:6 ~src:ep2 ~dst:ep1 ~seq:0 ~ack:100 ~flags:Seg.ack_flags ();
      ]
  in
  let flow = Tdat_pkt.Flow.v ~sender:ep1 ~receiver:ep2 in
  let msgs = Msg_reader.extract_from_trace trace ~flow in
  Alcotest.(check int) "one update" 1 (List.length msgs);
  Alcotest.(check int) "nlri count" 2
    (Msg.nlri_count (List.hd msgs).Msg_reader.msg)

(* --- MRT ------------------------------------------------------------------ *)

let test_mrt_roundtrip () =
  let records =
    [
      { Mrt.ts = 1_234_567_890_123_456; peer_as = 64500; local_as = 65000;
        peer_ip = 0x0A000001l; local_ip = 0x0A000002l; msg = sample_update };
      { Mrt.ts = 1_234_567_891_000_000; peer_as = 64500; local_as = 65000;
        peer_ip = 0x0A000001l; local_ip = 0x0A000002l; msg = Msg.Keepalive };
    ]
  in
  let back = Mrt.decode (Mrt.encode records) in
  Alcotest.(check int) "count" 2 (List.length back);
  List.iter2
    (fun (a : Mrt.record) (b : Mrt.record) ->
      Alcotest.(check int) "microsecond ts" a.Mrt.ts b.Mrt.ts;
      Alcotest.(check int) "peer as" a.Mrt.peer_as b.Mrt.peer_as;
      Alcotest.(check bool) "msg" true (a.Mrt.msg = b.Mrt.msg))
    records back

(* --- MCT -------------------------------------------------------------------- *)

let prefixes_chunk lo n =
  List.init n (fun i ->
      Prefix.of_quad (1 + ((lo + i) / 65536)) ((lo + i) / 256 mod 256)
        ((lo + i) mod 256) 0 24)

let test_mct_simple () =
  (* 10 updates of 50 fresh prefixes each, then churn re-announcing. *)
  let updates =
    List.init 10 (fun i ->
        ((i * 1_000_000) + 1_000_000, prefixes_chunk (i * 50) 50))
    @ [ (11_500_000, prefixes_chunk 0 50) (* churn: all dups *) ]
  in
  match Mct.transfer_end ~start:0 updates with
  | None -> Alcotest.fail "no transfer found"
  | Some r ->
      Alcotest.(check int) "ends before churn" 10_000_000 r.Mct.end_ts;
      Alcotest.(check int) "all prefixes" 500 r.Mct.prefixes;
      Alcotest.(check int) "updates" 10 r.Mct.updates

let test_mct_quiet_gap () =
  let updates =
    [ (1_000_000, prefixes_chunk 0 100); (2_000_000, prefixes_chunk 100 100);
      (60_000_000, prefixes_chunk 200 100) (* after a long silence *) ]
  in
  let config = { Mct.default_config with Mct.quiet_gap = 30_000_000 } in
  match Mct.transfer_end ~config ~start:0 updates with
  | None -> Alcotest.fail "no transfer found"
  | Some r -> Alcotest.(check int) "quiet gap ends transfer" 2_000_000 r.Mct.end_ts

let test_mct_respects_start () =
  let updates =
    [ (500, prefixes_chunk 0 100); (1_000_000, prefixes_chunk 100 100) ]
  in
  match Mct.transfer_end ~start:600 updates with
  | None -> Alcotest.fail "no transfer found"
  | Some r ->
      Alcotest.(check int) "skips pre-start updates" 100 r.Mct.prefixes

let test_mct_empty () =
  Alcotest.(check bool) "no updates" true (Mct.transfer_end ~start:0 [] = None)

let suite =
  [
    Alcotest.test_case "prefix basics" `Quick test_prefix_basics;
    Alcotest.test_case "prefix codec" `Quick test_prefix_codec;
    Alcotest.test_case "as_path codec" `Quick test_as_path_codec;
    Alcotest.test_case "attr codec" `Quick test_attr_codec;
    Alcotest.test_case "attr signature" `Quick test_attr_signature_order_independent;
    Alcotest.test_case "msg roundtrip" `Quick test_msg_roundtrip;
    Alcotest.test_case "msg partial" `Quick test_msg_partial;
    Alcotest.test_case "msg bad marker" `Quick test_msg_bad_marker;
    Alcotest.test_case "table generation" `Quick test_table_generation;
    Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
    Alcotest.test_case "pack size limit" `Quick test_pack_respects_size_limit;
    Alcotest.test_case "reassembly in order" `Quick test_reassembly_in_order;
    Alcotest.test_case "reassembly out of order" `Quick
      test_reassembly_out_of_order;
    Alcotest.test_case "reassembly retransmission" `Quick
      test_reassembly_retransmission;
    Alcotest.test_case "reassembly overlap" `Quick
      test_reassembly_overlap_and_gaps;
    Alcotest.test_case "msg reader timestamps" `Quick
      test_msg_reader_extracts_with_timestamps;
    Alcotest.test_case "msg reader from trace" `Quick test_msg_reader_from_trace;
    Alcotest.test_case "mrt roundtrip" `Quick test_mrt_roundtrip;
    Alcotest.test_case "mct simple" `Quick test_mct_simple;
    Alcotest.test_case "mct quiet gap" `Quick test_mct_quiet_gap;
    Alcotest.test_case "mct respects start" `Quick test_mct_respects_start;
    Alcotest.test_case "mct empty" `Quick test_mct_empty;
  ]
