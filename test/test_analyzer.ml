(* The T-DAT analyzer: labeling, ACK shifting, series generation, factor
   attribution, and the problem detectors — unit tests on hand-built
   traces plus ground-truth integration tests on simulated transfers. *)

open Tdat
open Tdat_bgpsim
module Seg = Tdat_pkt.Tcp_segment
module D = Series_defs

let sender_ep = Tdat_pkt.Endpoint.of_quad 10 1 0 1 20001
let receiver_ep = Tdat_pkt.Endpoint.of_quad 10 0 0 2 179
let flow = Tdat_pkt.Flow.v ~sender:sender_ep ~receiver:receiver_ep

let data ~ts ~seq len =
  Seg.v ~ts ~src:sender_ep ~dst:receiver_ep ~seq ~ack:0 ~len
    ~payload:(String.make len 'd') ~flags:Seg.data_flags ()

let ack ~ts ~ack:a ?(window = 65535) () =
  Seg.v ~ts ~src:receiver_ep ~dst:sender_ep ~seq:0 ~ack:a ~window
    ~flags:Seg.ack_flags ()

(* --- Conn_profile labeling ------------------------------------------------ *)

let profile_of segs =
  Conn_profile.of_trace (Tdat_pkt.Trace.of_segments segs) ~flow

let labels p =
  Array.to_list p.Conn_profile.data
  |> List.map (fun d -> d.Conn_profile.label)

let test_label_in_order () =
  let p =
    profile_of [ data ~ts:10 ~seq:0 100; data ~ts:20 ~seq:100 100 ]
  in
  Alcotest.(check int) "no retransmissions" 0 (Conn_profile.retransmissions p);
  Alcotest.(check bool) "all in order" true
    (List.for_all (( = ) Conn_profile.In_order) (labels p))

let test_label_redelivery () =
  (* Same bytes twice: downstream-loss recovery. *)
  let p =
    profile_of
      [ data ~ts:10 ~seq:0 100; data ~ts:500_000 ~seq:0 100;
        data ~ts:500_010 ~seq:100 100 ]
  in
  Alcotest.(check int) "one retransmission" 1 (Conn_profile.retransmissions p);
  Alcotest.(check int) "one downstream episode" 1
    (List.length p.Conn_profile.downstream_episodes);
  Alcotest.(check int) "no upstream episode" 0
    (List.length p.Conn_profile.upstream_episodes);
  let ep = List.hd p.Conn_profile.downstream_episodes in
  (* Episode spans original copy to the redelivery. *)
  Alcotest.(check int) "episode start" 10
    (Tdat_timerange.Span.start ep.Conn_profile.span)

let test_label_upstream_fill () =
  (* A hole (packet lost before the sniffer) filled late: upstream loss. *)
  let p =
    profile_of
      [ data ~ts:10 ~seq:0 100; data ~ts:20 ~seq:200 100;
        (* hole [100,200) created at t=20, filled at t=400000 *)
        data ~ts:400_000 ~seq:100 100 ]
  in
  Alcotest.(check int) "upstream episode" 1
    (List.length p.Conn_profile.upstream_episodes);
  Alcotest.(check bool) "labelled fill-retransmission" true
    (List.exists (( = ) Conn_profile.Fill_retransmission) (labels p))

let test_label_reordering () =
  (* Hole filled within a fraction of the RTT: reordering, not loss. *)
  let segs =
    [
      Seg.v ~ts:0 ~src:sender_ep ~dst:receiver_ep ~seq:0 ~ack:0
        ~flags:(Seg.flags ~syn:true ()) ~mss_opt:1400 ();
      Seg.v ~ts:100 ~src:receiver_ep ~dst:sender_ep ~seq:0 ~ack:0
        ~flags:(Seg.flags ~syn:true ~ack:true ()) ();
      Seg.v ~ts:100_000 ~src:sender_ep ~dst:receiver_ep ~seq:0 ~ack:0
        ~flags:Seg.ack_flags () (* handshake ack: rtt = 100ms *);
      data ~ts:200_000 ~seq:0 100;
      data ~ts:200_010 ~seq:200 100;
      data ~ts:200_020 ~seq:100 100 (* fills within 10 µs *);
    ]
  in
  let p = profile_of segs in
  Alcotest.(check bool) "reordering detected" true
    (List.exists (( = ) Conn_profile.Fill_reorder) (labels p));
  Alcotest.(check int) "not counted as loss" 0
    (List.length p.Conn_profile.upstream_episodes);
  Alcotest.(check int) "rtt from handshake" 100_000 p.Conn_profile.rtt

let test_profile_mss_and_window () =
  let segs =
    [
      Seg.v ~ts:0 ~src:sender_ep ~dst:receiver_ep ~seq:0 ~ack:0
        ~flags:(Seg.flags ~syn:true ()) ~mss_opt:1234 ();
      ack ~ts:50 ~ack:0 ~window:9999 ();
      ack ~ts:60 ~ack:0 ~window:12000 ();
    ]
  in
  let p = profile_of segs in
  Alcotest.(check int) "mss from syn" 1234 p.Conn_profile.mss;
  Alcotest.(check int) "max adv window" 12000 p.Conn_profile.max_adv_window

(* --- Ack shifting ------------------------------------------------------------ *)

let test_ack_shift_moves_forward () =
  (* Receiver-side sniffer: the SYN/SYN+ACK/ACK handshake measures an
     upstream round trip of 5 ms; an ACK at t=100 releases data observed
     at t=5100, so its d2 estimate is 5000 and the flight shifts by it. *)
  let segs =
    [
      Seg.v ~ts:0 ~src:sender_ep ~dst:receiver_ep ~seq:0 ~ack:0
        ~flags:(Seg.flags ~syn:true ()) ~mss_opt:1000 ();
      Seg.v ~ts:20 ~src:receiver_ep ~dst:sender_ep ~seq:0 ~ack:0
        ~flags:(Seg.flags ~syn:true ~ack:true ()) ();
      Seg.v ~ts:5_020 ~src:sender_ep ~dst:receiver_ep ~seq:0 ~ack:0
        ~flags:Seg.ack_flags () (* handshake ack: rtt ≈ 5 ms *);
      data ~ts:5_030 ~seq:0 1000;
      ack ~ts:5_100 ~ack:1000 ~window:2000 ();
      data ~ts:10_100 ~seq:1000 1000;
      ack ~ts:10_200 ~ack:2000 ~window:2000 ();
      data ~ts:15_200 ~seq:2000 1000;
    ]
  in
  let p = profile_of segs in
  let shifted, infos = Ack_shift.shift p in
  Alcotest.(check bool) "shift happened" true
    (List.exists (fun i -> i.Ack_shift.applied > 0) infos);
  (* Data ACK flights shift by their estimated d2 (5000). *)
  let shifted_ts =
    Array.to_list shifted.Conn_profile.acks
    |> List.filter_map (fun (a : Seg.t) ->
           if a.Seg.ack = 1000 then Some a.Seg.ts else None)
  in
  Alcotest.(check (list int)) "first data ack lands at its effect"
    [ 10_100 ] shifted_ts

let test_ack_shift_noop_at_sender () =
  (* Sender-side trace: data follows the ack immediately; d2 ≈ 0. *)
  let segs =
    [
      data ~ts:10 ~seq:0 1000;
      ack ~ts:5_000 ~ack:1000 ~window:2000 ();
      data ~ts:5_001 ~seq:1000 1000;
    ]
  in
  let p = profile_of segs in
  let shifted, _ = Ack_shift.shift p in
  Alcotest.(check bool) "near no-op" true
    (shifted.Conn_profile.acks.(0).Seg.ts - 5_000 <= 1)

(* --- Series generation on hand-built traces ----------------------------------- *)

let test_series_app_limited_gap () =
  (* Data, cleared quickly, then 300 ms of silence, then more data: the
     silence must be attributed to the sending application. *)
  let segs =
    [
      data ~ts:0 ~seq:0 1000;
      ack ~ts:1_000 ~ack:1000 ();
      data ~ts:300_000 ~seq:1000 1000;
      ack ~ts:301_000 ~ack:2000 ();
      data ~ts:600_000 ~seq:2000 1000;
      ack ~ts:601_000 ~ack:3000 ();
    ]
  in
  let p = profile_of segs in
  let gen = Series_gen.generate p in
  Alcotest.(check bool) "app limited dominates" true
    (Series_gen.ratio gen D.Send_app_limited > 0.9)

let test_series_zero_window_stall () =
  (* Receiver closes the window for 200 ms: attributed to flow control. *)
  let segs =
    [
      data ~ts:0 ~seq:0 1000;
      ack ~ts:1_000 ~ack:1000 ~window:0 ();
      ack ~ts:200_000 ~ack:1000 ~window:5000 ();
      data ~ts:201_000 ~seq:1000 1000;
      ack ~ts:202_000 ~ack:2000 ~window:5000 ();
    ]
  in
  let p = profile_of segs in
  let gen = Series_gen.generate p in
  Alcotest.(check bool) "zero-window bound" true
    (Series_gen.ratio gen D.Zero_adv_bnd_out > 0.5);
  Alcotest.(check bool) "recv app limited" true
    (Series_gen.ratio gen D.Recv_app_limited > 0.5)

let test_series_count () =
  let p = profile_of [ data ~ts:0 ~seq:0 100; ack ~ts:1_000 ~ack:100 () ] in
  let gen = Series_gen.generate p in
  (* Every one of the 34 series is materialized (possibly empty). *)
  List.iter
    (fun name -> ignore (Series_gen.spans gen name))
    D.all;
  Alcotest.(check int) "34 series" 34 (List.length D.all)

(* --- Integration: simulated scenarios vs ground truth ------------------------- *)

let analyze_outcome (o : Scenario.outcome) =
  Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow ~mrt:o.Scenario.mrt

let group_ratio (a : Analyzer.t) g =
  List.assoc g a.Analyzer.factors.Factors.group_ratios

let factor_ratio (a : Analyzer.t) f =
  List.assoc f a.Analyzer.factors.Factors.ratios

let test_timer_sender_attribution () =
  let result =
    Scenario.run ~seed:21
      [ Scenario.router ~table_prefixes:6000 ~timer_interval:200_000 ~quota:20 1 ]
  in
  let a = analyze_outcome (List.hd result.Scenario.outcomes) in
  Alcotest.(check bool) "sender group dominant" true
    (group_ratio a Factors.Sender > 0.9);
  Alcotest.(check bool) "specifically the app" true
    (factor_ratio a Factors.Bgp_sender_app > 0.9);
  match a.Analyzer.problems.Analyzer.timer with
  | None -> Alcotest.fail "timer not detected"
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "timer %d near 200ms" t.Detect_timer.timer)
        true
        (t.Detect_timer.timer > 180_000 && t.Detect_timer.timer < 220_000)

let test_window_limited_attribution () =
  let rv_tcp = { Tdat_tcpsim.Tcp_types.default with max_adv_window = 16384 } in
  let result =
    Scenario.run ~seed:22 ~collector_tcp:rv_tcp
      [ Scenario.router ~table_prefixes:8000
          ~upstream:(Tdat_tcpsim.Connection.path ~delay:40_000 ()) 1 ]
  in
  let a = analyze_outcome (List.hd result.Scenario.outcomes) in
  Alcotest.(check bool) "receiver group dominant" true
    (group_ratio a Factors.Receiver > 0.5);
  Alcotest.(check bool) "adv window factor" true
    (factor_ratio a Factors.Tcp_adv_window > 0.5);
  Alcotest.(check bool) "no timer false positive" true
    (a.Analyzer.problems.Analyzer.timer = None)

let test_slow_receiver_app_attribution () =
  let result =
    Scenario.run ~seed:23 ~collector_proc_time:3_000
      [ Scenario.router ~table_prefixes:8000 1 ]
  in
  let a = analyze_outcome (List.hd result.Scenario.outcomes) in
  Alcotest.(check bool) "receiver app dominant" true
    (factor_ratio a Factors.Bgp_receiver_app > 0.8)

let test_network_loss_attribution () =
  let rng = Tdat_rng.Rng.create 99 in
  let result =
    Scenario.run ~seed:24
      [
        Scenario.router ~table_prefixes:8000
          ~upstream:
            (Tdat_tcpsim.Connection.path ~delay:5_000
               ~data_loss:
                 (Tdat_netsim.Loss.gilbert rng ~p_enter:0.05 ~p_exit:0.3
                    ~p_loss_bad:0.9)
               ())
          1;
      ]
  in
  let a = analyze_outcome (List.hd result.Scenario.outcomes) in
  Alcotest.(check bool) "network loss visible" true
    (factor_ratio a Factors.Network_loss > 0.05);
  Alcotest.(check bool) "loss episodes recorded" true
    (a.Analyzer.profile.Conn_profile.upstream_episodes <> [])

let test_local_loss_attribution () =
  let result =
    Scenario.run ~seed:25
      ~collector_local:
        (Tdat_tcpsim.Connection.path ~delay:50 ~bandwidth_bps:20_000_000
           ~buffer_pkts:6 ())
      [ Scenario.router ~table_prefixes:8000 1 ]
  in
  let a = analyze_outcome (List.hd result.Scenario.outcomes) in
  Alcotest.(check bool) "receiver-local loss dominant" true
    (factor_ratio a Factors.Recv_local_loss > 0.5);
  Alcotest.(check bool) "ground truth agrees" true (result.Scenario.local_drops > 0)

let test_transfer_duration_close_to_ground_truth () =
  let result =
    Scenario.run ~seed:26
      [ Scenario.router ~table_prefixes:4000 ~timer_interval:100_000 ~quota:40 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  let a = analyze_outcome o in
  match a.Analyzer.transfer with
  | None -> Alcotest.fail "transfer not identified"
  | Some tr ->
      Alcotest.(check int) "all prefixes collected" 4000
        tr.Transfer_id.prefixes;
      Alcotest.(check bool) "duration positive" true
        (Transfer_id.duration tr > 0)

let test_vendor_trace_reconstruction () =
  (* No MRT archive: the transfer must be identified via pcap2bgp-style
     reconstruction from the packet trace itself. *)
  let result =
    Scenario.run ~seed:27 ~collector_kind:Collector.Vendor
      [ Scenario.router ~table_prefixes:3000 1 ]
  in
  let o = List.hd result.Scenario.outcomes in
  let a = Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow in
  match a.Analyzer.transfer with
  | None -> Alcotest.fail "transfer not identified from raw trace"
  | Some tr ->
      Alcotest.(check bool) "reconstructed" true
        (tr.Transfer_id.source = Transfer_id.Reconstructed);
      Alcotest.(check int) "all prefixes recovered" 3000
        tr.Transfer_id.prefixes

let test_peer_group_detection () =
  let r =
    Scenario.router ~table_prefixes:2000 ~timer_interval:200_000 ~quota:5
      ~group_window:32 1
  in
  let pg =
    Scenario.run_peer_group ~seed:13 ~vendor_fail_at:500_000
      ~deadline:1_800_000_000 r
  in
  let q = pg.Scenario.quagga_outcome and v = pg.Scenario.vendor_outcome in
  let aq = Analyzer.analyze q.Scenario.trace ~flow:q.Scenario.flow ~mrt:q.Scenario.mrt in
  let av = Analyzer.analyze v.Scenario.trace ~flow:v.Scenario.flow in
  (* The blocked quagga member shows a long keepalive-only idle period. *)
  Alcotest.(check bool) "suspect found" true
    (aq.Analyzer.problems.Analyzer.peer_group_suspects <> []);
  (* Cross-connection confirmation against the failed vendor session. *)
  let confirmed =
    Detect_peer_group.confirm aq.Analyzer.series ~other:av.Analyzer.series
  in
  Alcotest.(check bool) "confirmed against other member" true (confirmed <> []);
  Alcotest.(check bool) "blocked ~hold time" true
    (Detect_peer_group.blocked_delay confirmed > 100_000_000)

let test_consecutive_loss_detection () =
  (* A 300 ms congestion burst dropping every other packet mid-transfer:
     the survivors expose the holes, so the episode is visible and counts
     well past the 8-packet threshold. *)
  let rng = Tdat_rng.Rng.create 5 in
  let burst =
    Tdat_timerange.Span_set.of_span
      (Tdat_timerange.Span.v 300_000 400_000)
  in
  let windowed = Tdat_netsim.Loss.bernoulli_during rng burst 0.5 in
  let result =
    Scenario.run ~seed:28
      [
        Scenario.router ~table_prefixes:60_000
          ~upstream:
            (Tdat_tcpsim.Connection.path ~delay:20_000 ~data_loss:windowed ())
          1;
      ]
  in
  let a = analyze_outcome (List.hd result.Scenario.outcomes) in
  let cl = a.Analyzer.problems.Analyzer.consecutive_losses in
  Alcotest.(check bool) "episodes detected" true
    (cl.Detect_loss.episodes <> [])

let test_analyze_all_jobs_deterministic () =
  (* A mixed fleet merged into one capture: analyze_all must return
     byte-identical results whatever the worker count, including the
     audit diagnostics. *)
  let routers =
    List.init 6 (fun i ->
        let id = i + 1 in
        let timer_interval =
          match id mod 3 with 0 -> None | 1 -> Some 200_000 | _ -> Some 100_000
        in
        let quota = match id mod 2 with 0 -> 6 | _ -> 15 in
        Scenario.router ~table_prefixes:(1_000 + (300 * id)) ?timer_interval
          ~quota id)
  in
  let result = Scenario.run ~seed:41 routers in
  let trace =
    Tdat_pkt.Trace.of_segments
      (List.concat_map
         (fun o -> Tdat_pkt.Trace.segments o.Scenario.trace)
         result.Scenario.outcomes)
  in
  let digest results =
    List.map
      (fun (flow, a) ->
        Format.asprintf "%a|%s|%a" Tdat_pkt.Flow.pp flow (Report.to_string a)
          Tdat_audit.Diag.pp_report a.Analyzer.audit)
      results
  in
  let seq = digest (Analyzer.analyze_all ~audit:true ~jobs:1 trace) in
  Alcotest.(check int) "one analysis per session" 6 (List.length seq);
  List.iter
    (fun jobs ->
      let par = digest (Analyzer.analyze_all ~audit:true ~jobs trace) in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
        seq par)
    [ 2; 4 ]

let test_concurrent_transfers_shift_bottleneck () =
  (* Fig. 15's mechanism: more concurrent transfers push the receiving BGP
     process ratio up relative to few-transfer runs. *)
  let run n seed =
    let routers =
      List.init n (fun i -> Scenario.router ~table_prefixes:3000 (i + 1))
    in
    let result = Scenario.run ~seed ~collector_proc_time:800 routers in
    let ratios =
      List.map
        (fun o -> factor_ratio (analyze_outcome o) Factors.Bgp_receiver_app)
        result.Scenario.outcomes
    in
    Tdat_stats.Descriptive.mean ratios
  in
  let low = run 1 31 and high = run 10 32 in
  Alcotest.(check bool)
    (Printf.sprintf "receiver-app grows with concurrency (%.2f -> %.2f)" low
       high)
    true (high > low)

let suite =
  [
    Alcotest.test_case "label in order" `Quick test_label_in_order;
    Alcotest.test_case "label redelivery" `Quick test_label_redelivery;
    Alcotest.test_case "label upstream fill" `Quick test_label_upstream_fill;
    Alcotest.test_case "label reordering" `Quick test_label_reordering;
    Alcotest.test_case "profile mss/window" `Quick test_profile_mss_and_window;
    Alcotest.test_case "ack shift forward" `Quick test_ack_shift_moves_forward;
    Alcotest.test_case "ack shift noop at sender" `Quick
      test_ack_shift_noop_at_sender;
    Alcotest.test_case "series: app gap" `Quick test_series_app_limited_gap;
    Alcotest.test_case "series: zero window" `Quick
      test_series_zero_window_stall;
    Alcotest.test_case "series: all 34" `Quick test_series_count;
    Alcotest.test_case "attribution: timer sender" `Quick
      test_timer_sender_attribution;
    Alcotest.test_case "attribution: adv window" `Quick
      test_window_limited_attribution;
    Alcotest.test_case "attribution: receiver app" `Quick
      test_slow_receiver_app_attribution;
    Alcotest.test_case "attribution: network loss" `Quick
      test_network_loss_attribution;
    Alcotest.test_case "attribution: local loss" `Quick
      test_local_loss_attribution;
    Alcotest.test_case "transfer id ground truth" `Quick
      test_transfer_duration_close_to_ground_truth;
    Alcotest.test_case "vendor reconstruction" `Quick
      test_vendor_trace_reconstruction;
    Alcotest.test_case "peer group detection" `Slow test_peer_group_detection;
    Alcotest.test_case "consecutive loss detection" `Quick
      test_consecutive_loss_detection;
    Alcotest.test_case "analyze_all jobs-deterministic" `Slow
      test_analyze_all_jobs_deterministic;
    Alcotest.test_case "concurrency shifts bottleneck" `Slow
      test_concurrent_transfers_shift_bottleneck;
  ]
