(* L008 fixture, user half: reaches into l8_owner.ml's table and
   mutates it directly instead of going through [L8_owner.register].
   Linted together with the owner this must fail with L008 here. *)

let sneak () = Hashtbl.replace L8_owner.table "sneaky" 1

let polite () = L8_owner.register "polite" 2
