(* Unused-suppression fixture: the ref from domain_allow.ml was fixed
   (now an immutable int) but the allowlist attribute was left behind.
   The linter must report L010 at the stale attribute. *)

let total = 0 [@@tdat.lint.allow "L007"]

let bump xs = List.fold_left (fun acc x -> acc + x) total xs

let run_all pool xs = Pool.map pool bump xs
