(* Suppression fixture: the same worker-reachable ref as
   domain_bad.ml, but allowlisted with [@@tdat.lint.allow "L007"] —
   the linter must exit 0 and report nothing (the suppression is
   used, so no L010 either). *)

let total = ref 0 [@@tdat.lint.allow "L007"]

let bump xs = List.iter (fun x -> total := !total + x) xs

let run_all pool xs = Pool.map pool bump xs
