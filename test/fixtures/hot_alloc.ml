(* L009 fixture: [join] is made hot with --hot Hot_alloc.join; its
   String.concat must then be reported, while the identical idiom in
   [cold] (outside the hot set) stays silent.  Without --hot the file
   is clean. *)

let join xs = String.concat "," xs

let cold xs = String.concat ";" xs
