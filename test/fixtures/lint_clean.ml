(* Positive fixture for tdat-lint: equivalent code written the compliant
   way.  test_lint.ml asserts the linter reports nothing here even with
   --treat-as-lib. *)

let sort_ids ids = List.sort Int.compare ids

let order = Int.compare

let is_start t = Time_us.equal t Time_us.zero

let is_half r = Float.abs (r -. 0.5) < 1e-9

let short_name f =
  match f with
  | Factors.Bgp_sender_app -> "app"
  | Factors.Tcp_cwnd -> "cwnd"
  | Factors.Send_local_loss | Factors.Bgp_receiver_app
  | Factors.Tcp_adv_window | Factors.Recv_local_loss | Factors.Bandwidth
  | Factors.Network_loss ->
      "other"

exception Empty_input

let parse s = if String.equal s "" then raise Empty_input else s

let complain path =
  Tdat_obs.Log.warn (fun m -> m ~kv:[ ("file", path) ] "bad file")
