(* L008 fixture, owner half: a module-level table with an exported
   mutation API.  Mutating it from another module (l8_user.ml) must
   trigger L008; [register] below, owning-module mutation, must not. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 16

let register k v = Hashtbl.replace table k v
