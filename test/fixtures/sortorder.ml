(* Ordering fixture: two L001 violations on one line — findings must
   come out sorted by column (the file/line sort's tie-break). *)

let pair a b = (compare a b, compare b a)
