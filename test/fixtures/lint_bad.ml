(* Negative fixture for tdat-lint: deliberately violates every rule.
   This file is data, never compiled — test_lint.ml runs the linter over
   it (with --treat-as-lib) and asserts each code fires and the exit
   status is non-zero. *)

let sort_ids ids = List.sort compare ids (* L001: polymorphic compare *)

let order = Stdlib.compare (* L001: qualified polymorphic compare *)

let is_start t = t = Time_us.zero (* L002: = on an abstract timestamp *)

let is_reconstructed s =
  s <> Transfer_id.Archive (* L002: <> on an abstract constructor *)

let is_half r = r = 0.5 (* L003: float-literal equality *)

let short_name f =
  match f with
  | Factors.Bgp_sender_app -> "app"
  | Factors.Tcp_cwnd -> "cwnd"
  | _ -> "other" (* L004: catch-all over the factor taxonomy *)

let parse s = if s = "" then failwith "empty input" else s (* L005 *)

let complain path = Printf.eprintf "bad file %s\n" path (* L006: stderr *)

let complain_more () = prerr_endline "still bad" (* L006: stderr *)

let m_bad = Obs.Counter.make "Serve.Requests" (* L011: not snake-case *)

let span_of name = Tdat_obs.Span.with_ ~name ignore (* L011: dynamic name *)
