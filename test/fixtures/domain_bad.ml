(* L007 fixture: module-level mutable state reachable from a Domain
   pool worker.  [total] is a plain ref, [bump] mutates it, and
   [run_all] hands [bump] to [Pool.map] — linted with --treat-as-lib
   this must fail with exactly one L007 at the [total] binding. *)

let total = ref 0

let bump xs = List.iter (fun x -> total := !total + x) xs

let run_all pool xs = Pool.map pool bump xs
