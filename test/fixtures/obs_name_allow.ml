(* Positive fixture for L011's fence: a deliberately dynamic span name
   behind [@tdat.lint.allow "L011"] — the forwarding-wrapper shape used
   by lib/core/analyzer.ml's stage timer, where every actual name at
   the call sites is a literal.  Must lint clean. *)

let stage name f = (Tdat_obs.Span.timed ~name f [@tdat.lint.allow "L011"])

let run () = stage "conn-profile" (fun () -> 42)
