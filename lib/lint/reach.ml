(* The whole-repo passes.

   L007: breadth-first reachability from pool-worker entry points over
   the merged call graph; any module-level mutable binding a reachable
   node references is shared state a worker can touch without
   synchronisation.

   L008: any mutation site whose target resolves to a mutable binding
   owned by a *different* module bypasses the owner's API.

   Both passes resolve [Local n] against the node's own module first and
   its file's top module second; [Qualified (m, n)] goes through the
   repo-wide module key, merging same-named modules conservatively (two
   [Report] submodules share one key — over-approximation, never a
   missed edge). *)

type graph = {
  g_mutables : (string * string, Module_index.mutable_binding) Hashtbl.t;
  g_nodes : (string * string, Module_index.node) Hashtbl.t;
}

let build (indexes : Module_index.t list) =
  let g =
    {
      g_mutables = Hashtbl.create 64;
      g_nodes = Hashtbl.create 256;
    }
  in
  List.iter
    (fun (ix : Module_index.t) ->
      List.iter
        (fun (m : Module_index.mutable_binding) ->
          Hashtbl.add g.g_mutables (m.m_module, m.m_name) m)
        ix.i_mutables;
      List.iter
        (fun (n : Module_index.node) ->
          Hashtbl.add g.g_nodes (n.n_module, n.n_name) n)
        ix.i_nodes)
    indexes;
  g

(* All keys a target can resolve to, most-specific first. *)
let candidate_keys ~own_module ~file_module = function
  | Module_index.Local n ->
      if String.equal own_module file_module then [ (own_module, n) ]
      else [ (own_module, n); (file_module, n) ]
  | Module_index.Qualified (m, n) -> [ (m, n) ]

let find_all tbl keys =
  List.concat_map (fun k -> Hashtbl.find_all tbl k) keys

(* --- L007 ----------------------------------------------------------------- *)

let l007_message (m : Module_index.mutable_binding) entry =
  Printf.sprintf
    "module-level mutable state %s.%s (%s) is reachable from Domain-pool \
     workers via %s; use Atomic or Domain.DLS, or guard it with a Mutex and \
     allowlist the binding with [@@tdat.lint.allow \"L007\"]"
    m.m_module m.m_name m.m_kind entry

let reachable_mutables (g : graph) (entries : Module_index.entry list) =
  (* (file, line, module, name) identifies a binding across Hashtbl
     duplicates; first entry label to reach it wins (entries are in
     deterministic file order). *)
  let hit : (string * int * string * string, string) Hashtbl.t =
    Hashtbl.create 16
  in
  let visited : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let touch ~own_module ~file_module ~entry target =
    let keys = candidate_keys ~own_module ~file_module target in
    List.iter
      (fun (m : Module_index.mutable_binding) ->
        let id = (m.m_file, m.m_line, m.m_module, m.m_name) in
        if not (Hashtbl.mem hit id) then Hashtbl.replace hit id entry)
      (find_all g.g_mutables keys);
    List.iter
      (fun key ->
        if Hashtbl.mem g.g_nodes key && not (Hashtbl.mem visited key) then (
          Hashtbl.replace visited key ();
          Queue.add (key, entry) queue))
      keys
  in
  List.iter
    (fun (e : Module_index.entry) ->
      List.iter
        (touch ~own_module:e.e_module ~file_module:e.e_file_module
           ~entry:e.e_label)
        e.e_targets)
    entries;
  while not (Queue.is_empty queue) do
    let key, entry = Queue.take queue in
    List.iter
      (fun (n : Module_index.node) ->
        List.iter
          (touch ~own_module:n.n_module ~file_module:n.n_file_module ~entry)
          n.n_refs)
      (Hashtbl.find_all g.g_nodes key)
  done;
  hit

let l007 (g : graph) (indexes : Module_index.t list) =
  let entries = List.concat_map (fun ix -> ix.Module_index.i_entries) indexes in
  let hit = reachable_mutables g entries in
  List.concat_map
    (fun (ix : Module_index.t) ->
      List.filter_map
        (fun (m : Module_index.mutable_binding) ->
          if not m.m_in_lib then None
          else
            match
              Hashtbl.find_opt hit (m.m_file, m.m_line, m.m_module, m.m_name)
            with
            | Some entry ->
                Some
                  (Finding.v ~file:m.m_file ~line:m.m_line ~col:m.m_col
                     ~code:"L007"
                     ~severity:(Registry.severity_of "L007")
                     (l007_message m entry))
            | None -> None)
        ix.i_mutables)
    indexes

(* --- L008 ----------------------------------------------------------------- *)

let l008_message (m : Module_index.mutable_binding) =
  Printf.sprintf
    "mutation of %s.%s, module-level mutable state owned by %s; route the \
     change through an operation exported by the owning module"
    m.m_module m.m_name m.m_file

let l008 (g : graph) (indexes : Module_index.t list) =
  List.concat_map
    (fun (ix : Module_index.t) ->
      List.concat_map
        (fun (n : Module_index.node) ->
          List.filter_map
            (fun (target, (line, col)) ->
              match target with
              | Module_index.Local _ -> None
              | Module_index.Qualified (m, x) ->
                  if
                    String.equal m n.n_module
                    || String.equal m n.n_file_module
                  then None
                  else
                    let owners = Hashtbl.find_all g.g_mutables (m, x) in
                    let owners =
                      List.filter
                        (fun (o : Module_index.mutable_binding) -> o.m_in_lib)
                        owners
                    in
                    (match owners with
                    | [] -> None
                    | owner :: _ ->
                        Some
                          (Finding.v ~file:n.n_file ~line ~col ~code:"L008"
                             ~severity:(Registry.severity_of "L008")
                             (l008_message owner))))
            n.n_mutations)
        ix.i_nodes)
    indexes

let check ~enabled (indexes : Module_index.t list) =
  let want_l007 = enabled "L007" and want_l008 = enabled "L008" in
  if not (want_l007 || want_l008) then []
  else
    let g = build indexes in
    let f7 = if want_l007 then l007 g indexes else [] in
    let f8 = if want_l008 then l008 g indexes else [] in
    f7 @ f8
