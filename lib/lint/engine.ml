(* The lint driver: walk the roots, parse and scan every [.ml] file on
   the Domain pool, run the whole-repo passes over the merged index,
   apply suppressions, and return deterministically sorted findings.

   Self-measurement goes through [Tdat_obs]: stable counters for file /
   finding totals (identical across [--jobs] values) and spans around
   the scan and reach stages for [--trace]. *)

module Obs = Tdat_obs
module Pool = Tdat_parallel.Pool

type config = {
  roots : string list;
  treat_as_lib : bool;
  jobs : int option;
  selection : Registry.selection;
  extra_hot : (string * Rules_file.hot_scope) list;
}

let default_config =
  {
    roots = [ "lib"; "bin"; "bench"; "examples" ];
    treat_as_lib = false;
    jobs = None;
    selection = Registry.default_selection;
    extra_hot = [];
  }

type outcome = { findings : Finding.t list; files_scanned : int }

let files_scanned_c = Obs.Metrics.Counter.make "lint.files_scanned"
let findings_c = Obs.Metrics.Counter.make "lint.findings"
let parse_errors_c = Obs.Metrics.Counter.make "lint.parse_errors"

(* --- file discovery ------------------------------------------------------- *)

let rec ml_files_under path =
  if not (Sys.file_exists path) then []
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun n ->
           String.length n > 0 && n.[0] <> '.' && not (String.equal n "_build"))
    |> List.sort String.compare
    |> List.concat_map (fun n -> ml_files_under (Filename.concat path n))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* --- parsing -------------------------------------------------------------- *)

(* compiler-libs keeps lexer state in module-level mutable tables —
   precisely the shape L007 exists to catch — so parsing is serialized
   across the pool even though everything downstream of the parsetree
   is embarrassingly parallel. *)
let parse_mutex = Mutex.create ()

let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Mutex.protect parse_mutex (fun () -> Parse.implementation lexbuf)

let read_parse file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read file: %s" msg)
  | src -> (
      match parse_string ~file src with
      | str -> Ok str
      | exception exn ->
          Error (Printf.sprintf "parse error: %s" (Printexc.to_string exn)))

(* --- per-file scan -------------------------------------------------------- *)

type scan = {
  sc_findings : Finding.t list;
  sc_supps : Suppress.t list;
  sc_index : Module_index.t option;
}

let scan_file ~enabled ~treat_as_lib ~hot_paths file =
  Obs.Metrics.Counter.incr files_scanned_c;
  match read_parse file with
  | Error msg ->
      Obs.Metrics.Counter.incr parse_errors_c;
      {
        sc_findings =
          [
            Finding.v ~file ~line:1 ~col:0 ~code:"L000"
              ~severity:(Registry.severity_of "L000") msg;
          ];
        sc_supps = [];
        sc_index = None;
      }
  | Ok str ->
      let in_lib = treat_as_lib || Ident.in_lib file in
      let module_name = Ident.module_of_path file in
      {
        sc_findings =
          Rules_file.check ~enabled ~in_lib ~hot_paths ~module_name str;
        sc_supps = Suppress.collect ~file str;
        sc_index = Some (Module_index.of_structure ~file ~in_lib str);
      }

(* --- driver --------------------------------------------------------------- *)

let run cfg =
  let enabled = Registry.enabled cfg.selection in
  (* extras first so [--hot] can shadow a default entry for the same
     module *)
  let hot_paths = cfg.extra_hot @ Rules_file.default_hot_paths in
  let files =
    List.concat_map ml_files_under cfg.roots |> List.sort_uniq String.compare
  in
  let scans =
    Obs.Span.with_ ~name:"lint-scan" (fun () ->
        Pool.with_pool ?jobs:cfg.jobs (fun pool ->
            Pool.map pool
              (scan_file ~enabled ~treat_as_lib:cfg.treat_as_lib ~hot_paths)
              files))
  in
  let per_file = List.concat_map (fun s -> s.sc_findings) scans in
  let indexes = List.filter_map (fun s -> s.sc_index) scans in
  let repo =
    Obs.Span.with_ ~name:"lint-reach" (fun () -> Reach.check ~enabled indexes)
  in
  let supps = List.concat_map (fun s -> s.sc_supps) scans in
  let kept = Suppress.apply supps (per_file @ repo) in
  (* A suppression of a whole-repo rule only counts as unused when the
     scan could actually have produced that rule's findings — i.e. some
     pool entry point was in scope.  Otherwise a partial scan
     (tdat-lint lib/obs) would flag every L007 allowlist as stale. *)
  let have_entries =
    List.exists (fun ix -> ix.Module_index.i_entries <> []) indexes
  in
  let countable code =
    enabled code
    && (have_entries
       ||
       match Registry.find code with
       | Some { Registry.pass = Registry.Whole_repo; _ } -> false
       | Some _ | None -> true)
  in
  let unused =
    if enabled "L010" then
      Suppress.unused_findings ~rule_was_enabled:countable supps
    else []
  in
  let findings = Finding.sort (kept @ unused) in
  Obs.Metrics.Counter.add findings_c (List.length findings);
  { findings; files_scanned = List.length files }
