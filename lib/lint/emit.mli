(** Report emitters: classic one-line text, machine-readable JSON, and
    SARIF 2.1.0 (rule metadata from {!Registry.all}, one result per
    finding, 1-based regions). *)

val text : Finding.t list -> string

val json : files_scanned:int -> Finding.t list -> string

val sarif : Finding.t list -> string
