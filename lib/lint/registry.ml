type pass = Per_file | Whole_repo

type rule = {
  id : string;
  severity : Finding.severity;
  pass : pass;
  lib_only : bool;
  default_enabled : bool;
  summary : string;
  doc : string;
}

let rule ?(severity = Finding.Error) ?(pass = Per_file) ?(lib_only = false)
    ?(default_enabled = true) id ~summary doc =
  { id; severity; pass; lib_only; default_enabled; summary; doc }

let all =
  [
    rule "L000" ~summary:"file does not parse"
      "The linter could not parse the file; nothing else was checked.";
    rule "L001" ~summary:"polymorphic compare"
      "Bare or Stdlib-qualified polymorphic compare; use the value's own \
       ordering (Int.compare, Time_us.compare, Span.compare, ...).";
    rule "L002" ~summary:"polymorphic equality on a fenced abstract value"
      "= / <> where an operand mentions a fenced module (Time_us, Span, \
       Factors, ...); use the module's equal.";
    rule "L003" ~summary:"float-literal equality"
      "= / <> against a float literal; compare with a tolerance or use \
       Float.equal deliberately.";
    rule "L004" ~summary:"catch-all over the factor taxonomy"
      "A catch-all branch in a match over Factors.factor / Factors.group; \
       the 8-factor taxonomy must stay exhaustive.";
    rule "L005" ~lib_only:true ~summary:"bare failwith in library code"
      "Libraries raise typed exceptions (Bgp_error.Decode_error, ...) so \
       callers can match without string-matching Failure.";
    rule "L006" ~lib_only:true ~summary:"direct stderr printing in library code"
      "Diagnostics route through Tdat_obs.Log so --log-level filters them \
       uniformly.";
    rule "L007" ~pass:Whole_repo ~lib_only:true
      ~summary:"worker-reachable module-level mutable state"
      "A module-level ref / Hashtbl / Buffer / Queue / array / mutable \
       record in lib/ is reachable from Domain-pool worker closures and is \
       not Atomic, Domain.DLS or Mutex-guarded; sharing it across domains \
       breaks the byte-identical-across---jobs guarantee.";
    rule "L008" ~pass:Whole_repo
      ~summary:"cross-module mutation of module-level mutable state"
      "Module-level mutable state is mutated outside the module that owns \
       it; route the change through the owner's API so its locking \
       discipline cannot be bypassed.";
    rule "L009" ~severity:Finding.Warning
      ~summary:"allocation-heavy idiom in a hot path"
      "A known minor-heap-heavy idiom (list append, List.map/concat, \
       String.concat, Printf.sprintf, Fun.flip) inside a configured hot \
       path (pcap/MRT decode, Span_set kernels, \
       Trace.partition_connections); use preallocated arrays, Buffer or \
       fold loops.";
    rule "L010" ~severity:Finding.Warning ~summary:"unused lint suppression"
      "A [@tdat.lint.allow ...] attribute suppressed nothing; delete it so \
       stale allowlists cannot hide future regressions.";
    rule "L011" ~summary:"non-literal or malformed metric/span name"
      "A metric or span name (Counter/Gauge/Histogram.make, Span.with_ / \
       Span.timed, Tracer.begin_span/end_span/complete_span) must be a \
       literal lowercase snake-case string — [a-z0-9] words joined by \
       '.', '_' or '-' — so names are greppable, collision-free and \
       stable in the Prometheus exposition; no dynamic concatenation.";
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let severity_of id =
  match find id with Some r -> r.severity | None -> Finding.Error

(* --- rule selection ------------------------------------------------------ *)

module Selection = Set.Make (String)

type selection = Selection.t

let default_selection =
  List.fold_left
    (fun acc r -> if r.default_enabled then Selection.add r.id acc else acc)
    Selection.empty all

let enabled sel id = Selection.mem id sel

(* [+L00x] enables, [-L00y] disables, starting from the default set;
   clauses are comma- or whitespace-separated and apply left to right. *)
let apply_spec spec =
  let clauses =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ' ')
    |> List.map String.trim
    |> List.filter (fun s -> not (String.equal s ""))
  in
  let apply acc clause =
    Result.bind acc (fun sel ->
        let op, id =
          if String.length clause >= 1 && clause.[0] = '+' then
            (`Add, String.sub clause 1 (String.length clause - 1))
          else if String.length clause >= 1 && clause.[0] = '-' then
            (`Remove, String.sub clause 1 (String.length clause - 1))
          else (`Add, clause)
        in
        match find id with
        | None ->
            Result.Error
              (Printf.sprintf
                 "unknown rule %S in --rules (expected L000..L011 clauses \
                  like +L007,-L003)"
                 clause)
        | Some _ -> (
            match op with
            | `Add -> Ok (Selection.add id sel)
            | `Remove -> Ok (Selection.remove id sel)))
  in
  List.fold_left apply (Ok default_selection) clauses
