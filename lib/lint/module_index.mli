(** Per-file summaries feeding the whole-repo passes (L007/L008).

    The index is purely syntactic: one call-graph node per top-level
    binding whose out-edges are every identifier its body mentions, a
    table of module-level mutable bindings ([ref], [Hashtbl.create],
    array literals, mutable-field records, ...) and the Domain-pool
    worker entry points ([Pool.map]/[with_pool]/[run],
    [Analyzer.analyze_all], [Aggregate.run]).  It over-approximates by
    construction; the A007 runtime audit backstops it. *)

type target =
  | Local of string  (** unqualified ident — resolved within the file *)
  | Qualified of string * string  (** [M.x] — innermost module, name *)

type mutable_binding = {
  m_module : string;
  m_name : string;
  m_file : string;
  m_line : int;
  m_col : int;
  m_kind : string;  (** e.g. ["ref"], ["Hashtbl.create"], ["array literal"] *)
  m_in_lib : bool;
}

type node = {
  n_module : string;
  n_name : string;
  n_file : string;
  n_file_module : string;
  n_refs : target list;
  n_mutations : (target * (int * int)) list;  (** target, (line, col) *)
}

type entry = {
  e_label : string;  (** e.g. ["Pool.map"] — named in L007 messages *)
  e_module : string;
  e_file_module : string;
  e_targets : target list;  (** idents the call's arguments mention *)
}

type t = {
  i_file : string;
  i_module : string;
  i_in_lib : bool;
  i_mutables : mutable_binding list;
  i_nodes : node list;
  i_entries : entry list;
}

val of_structure : file:string -> in_lib:bool -> Parsetree.structure -> t
