(** Longident and path helpers shared by the rule passes. *)

val last_module : Longident.t -> string option
(** The innermost qualifying module of a dotted path:
    [Tdat_pkt.Trace.length] and [Trace.length] both give ["Trace"]. *)

val name : Longident.t -> string option
(** The final component: [Trace.length] gives ["length"]. *)

val module_of_path : string -> string
(** The OCaml module a source path compiles to:
    ["lib/pkt/trace.ml"] gives ["Trace"]. *)

val dir_components : string -> string list
(** Directory components of a path, via [Filename] (never string-prefix
    compares). *)

val in_lib : string -> bool
(** Whether the path has a ["lib"] directory component — the
    library-only-rule fence.  Works for relative, [./]-prefixed,
    absolute and [_build]-expanded paths alike. *)
