(* Report emitters.  JSON is hand-rolled (no external dependency) with
   full string escaping; the SARIF output targets the 2.1.0 schema with
   the minimal shape CI viewers need: tool.driver.rules metadata from
   the registry plus one result per finding. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_sep b first = if !first then first := false else Buffer.add_string b ","

(* --- text ----------------------------------------------------------------- *)

let text findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_line f);
      Buffer.add_char b '\n')
    findings;
  Buffer.contents b

(* --- json ----------------------------------------------------------------- *)

let json ~files_scanned findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"tool\":\"tdat-lint\",\"files_scanned\":";
  Buffer.add_string b (string_of_int files_scanned);
  Buffer.add_string b ",\"findings\":[";
  let first = ref true in
  List.iter
    (fun (f : Finding.t) ->
      add_sep b first;
      Buffer.add_string b "{\"file\":";
      buf_add_json_string b f.file;
      Buffer.add_string b ",\"line\":";
      Buffer.add_string b (string_of_int f.line);
      Buffer.add_string b ",\"col\":";
      Buffer.add_string b (string_of_int f.col);
      Buffer.add_string b ",\"code\":";
      buf_add_json_string b f.code;
      Buffer.add_string b ",\"severity\":";
      buf_add_json_string b (Finding.severity_name f.severity);
      Buffer.add_string b ",\"message\":";
      buf_add_json_string b f.message;
      Buffer.add_string b "}")
    findings;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* --- sarif ---------------------------------------------------------------- *)

let sarif_level = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let sarif_uri file =
  String.map (fun c -> if c = '\\' then '/' else c) file

let sarif findings =
  let rules = Registry.all in
  let rule_index id =
    let rec go i = function
      | [] -> -1
      | (r : Registry.rule) :: rest ->
          if String.equal r.id id then i else go (i + 1) rest
    in
    go 0 rules
  in
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
     \"name\":\"tdat-lint\",\"informationUri\":\
     \"https://example.invalid/tdat\",\"rules\":[";
  let first = ref true in
  List.iter
    (fun (r : Registry.rule) ->
      add_sep b first;
      Buffer.add_string b "{\"id\":";
      buf_add_json_string b r.id;
      Buffer.add_string b ",\"shortDescription\":{\"text\":";
      buf_add_json_string b r.summary;
      Buffer.add_string b "},\"fullDescription\":{\"text\":";
      buf_add_json_string b r.doc;
      Buffer.add_string b "},\"defaultConfiguration\":{\"level\":";
      buf_add_json_string b (sarif_level r.severity);
      Buffer.add_string b "}}")
    rules;
  Buffer.add_string b "]}},\"results\":[";
  let first = ref true in
  List.iter
    (fun (f : Finding.t) ->
      add_sep b first;
      Buffer.add_string b "{\"ruleId\":";
      buf_add_json_string b f.code;
      let idx = rule_index f.code in
      if idx >= 0 then (
        Buffer.add_string b ",\"ruleIndex\":";
        Buffer.add_string b (string_of_int idx));
      Buffer.add_string b ",\"level\":";
      buf_add_json_string b (sarif_level f.severity);
      Buffer.add_string b ",\"message\":{\"text\":";
      buf_add_json_string b f.message;
      Buffer.add_string b
        "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\
         \"uri\":";
      buf_add_json_string b (sarif_uri f.file);
      Buffer.add_string b "},\"region\":{\"startLine\":";
      Buffer.add_string b (string_of_int (max 1 f.line));
      Buffer.add_string b ",\"startColumn\":";
      (* findings carry 0-based columns; SARIF regions are 1-based *)
      Buffer.add_string b (string_of_int (f.col + 1));
      Buffer.add_string b "}}}]}")
    findings;
  Buffer.add_string b "]}]}\n";
  Buffer.contents b
