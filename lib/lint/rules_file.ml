(* The per-file, purely syntactic rules: L001-L006 (ported from the
   original single-file linter) plus the L009 allocation lint.  Each
   pass works on one parsetree in isolation and returns its findings —
   no module-level state, so the engine can farm files to pool workers
   (the linter must satisfy its own L007). *)

(* The measurement-study layer (lib/study) adds [Transfer] (detected
   table transfers, ordered by [Transfer.compare]) and [Mrt] (archive
   records and FSM states, [Mrt.equal_fsm_state]) to the fence; the
   differential harness (lib/experiment) adds [Diff] (mismatch kinds
   and entries, [Diff.equal_kind] / [Diff.compare_entry]). *)
let fenced_modules =
  [
    "Time_us"; "Span"; "Span_set"; "Series"; "Transfer_id"; "Flow";
    "Endpoint"; "Prefix"; "As_path"; "Attr"; "Factors"; "Series_defs";
    "Transfer"; "Mrt"; "Diff";
  ]

(* Factor-taxonomy constructors counted as evidence that a [match]
   scrutinizes [Factors.factor].  The [*_local_loss] / [Network_loss]
   names are shared with [Series_defs.t], where a catch-all over the 34
   series is legitimate, so only the unambiguous five count when
   unqualified; any constructor qualified with [Factors] counts. *)
let factor_constructors_unambiguous =
  [ "Bgp_sender_app"; "Tcp_cwnd"; "Bgp_receiver_app"; "Tcp_adv_window";
    "Bandwidth" ]

let qualified_with_fenced lid =
  match Ident.last_module lid with
  | Some m -> List.mem m fenced_modules
  | None -> false

(* --- L001: polymorphic compare ------------------------------------------- *)

let is_poly_compare local_compare lid =
  match lid with
  | Longident.Lident "compare" -> not local_compare
  | Longident.Ldot (Longident.Lident "Stdlib", "compare") -> true
  | _ -> false

(* --- L006: direct stderr printing in library code ------------------------- *)

let is_stderr_print lid =
  match lid with
  | Longident.Lident ("prerr_endline" | "prerr_string" | "prerr_newline")
  | Longident.Ldot
      ( Longident.Lident "Stdlib",
        ("prerr_endline" | "prerr_string" | "prerr_newline") ) ->
      true
  | _ -> (
      match (Ident.last_module lid, Ident.name lid) with
      | Some ("Printf" | "Format"), Some "eprintf" -> true
      | _ -> false)

(* --- L002: polymorphic equality on fenced abstract values ----------------- *)

(* An operand counts as "abstract" when it is, or directly wraps, a value
   or constructor qualified with a fenced module: [Time_us.zero],
   [Factors.Tcp_cwnd], [Some Factors.Sender]. *)
let rec fenced_operand (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> qualified_with_fenced txt
  | Pexp_construct ({ txt; _ }, arg) ->
      qualified_with_fenced txt
      || (match arg with Some a -> fenced_operand a | None -> false)
  | _ -> false

let rec fenced_operand_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } when qualified_with_fenced txt ->
      Option.value (Ident.last_module txt) ~default:"the module"
  | Pexp_construct ({ txt; _ }, arg) -> (
      if qualified_with_fenced txt then
        Option.value (Ident.last_module txt) ~default:"the module"
      else
        match arg with
        | Some a -> fenced_operand_name a
        | None -> "the module")
  | _ -> "the module"

(* --- L003: float-literal equality ----------------------------------------- *)

let is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* --- L004: catch-all over the factor taxonomy ----------------------------- *)

let rec pattern_constructors (p : Parsetree.pattern) acc =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      let acc =
        match Ident.name txt with
        | Some n ->
            let qualified_factors =
              match Ident.last_module txt with
              | Some "Factors" -> true
              | _ -> false
            in
            if qualified_factors || List.mem n factor_constructors_unambiguous
            then n :: acc
            else acc
        | None -> acc
      in
      (match arg with Some (_, a) -> pattern_constructors a acc | None -> acc)
  | Ppat_or (a, b) -> pattern_constructors a (pattern_constructors b acc)
  | Ppat_alias (a, _) -> pattern_constructors a acc
  | Ppat_tuple ps ->
      List.fold_left (fun acc p -> pattern_constructors p acc) acc ps
  | Ppat_constraint (a, _) -> pattern_constructors a acc
  | _ -> acc

let rec is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (a, _) | Ppat_constraint (a, _) -> is_catch_all a
  | _ -> false

(* --- L011: metric/span names ---------------------------------------------- *)

(* The observability APIs whose name argument becomes a grep target, a
   registry key and (mangled) a Prometheus series name.  [`Positional]
   means the name is the last unlabelled argument (Counter.make
   ~registry:r "x"); [`Labelled] means it arrives as [~name]. *)
let obs_name_target lid =
  match (Ident.last_module lid, Ident.name lid) with
  | Some ("Counter" | "Gauge" | "Histogram"), Some "make" -> Some `Positional
  | Some "Span", Some ("with_" | "timed") -> Some `Labelled
  | Some "Tracer", Some ("begin_span" | "end_span") -> Some `Positional
  | Some "Tracer", Some "complete_span" -> Some `Labelled
  | _ -> None

(* ^[a-z][a-z0-9]*([._-][a-z0-9]+)*$ — lowercase alnum words joined by
   single '.', '_' or '-' separators. *)
let valid_obs_name s =
  let n = String.length s in
  let is_lower c = c >= 'a' && c <= 'z' in
  let is_alnum c = is_lower c || (c >= '0' && c <= '9') in
  let is_sep c = c = '.' || c = '_' || c = '-' in
  if n = 0 || not (is_lower s.[0]) then false
  else begin
    let ok = ref true in
    for i = 1 to n - 1 do
      let c = s.[i] in
      if is_alnum c then ()
      else if is_sep c then begin
        if i = n - 1 || not (is_alnum s.[i - 1]) || not (is_alnum s.[i + 1])
        then ok := false
      end
      else ok := false
    done;
    !ok
  end

let obs_name_arg kind args =
  match kind with
  | `Labelled ->
      List.find_map
        (fun (label, a) ->
          match label with
          | Asttypes.Labelled "name" -> Some a
          | _ -> None)
        args
  | `Positional ->
      List.fold_left
        (fun acc (label, a) ->
          match label with Asttypes.Nolabel -> Some a | _ -> acc)
        None args

(* --- L009: allocation-heavy idioms in hot paths --------------------------- *)

type hot_scope = All | Funcs of string list

(* The allocation-light refactor's protected set (ROADMAP "make
   parallelism actually win"): streaming pcap/MRT decode, the Span_set
   kernels, and the single-pass connection partitioner.  Encode paths
   and once-per-file result assembly are deliberately outside the set. *)
let default_hot_paths =
  [
    ( "Pcap",
      Funcs [ "decode_frame"; "fold_read"; "fold_string"; "fold_channel";
              "fold_fd"; "fold_file" ] );
    ( "Mrt",
      Funcs [ "parse_body"; "fold_fill"; "fill_of_read"; "fold_string";
              "fold_channel"; "fold_fd"; "fold_file" ] );
    ("Span_set", All);
    ("Trace", Funcs [ "conn_key"; "partition_connections"; "split_connection" ]);
    ("Slice", All);
    ( "Series_gen",
      Funcs [ "series_of_spans"; "flight_series"; "episode_series";
              "generate" ] );
    ("Pool", Funcs [ "map"; "exec_chunk"; "drain" ]);
    (* The serve daemon's per-byte request loop: framing, socket
       shuffling and outbox routing run once per select wake-up. *)
    ( "Server",
      Funcs [ "conn_lines"; "handle_readable"; "flush_conn"; "drain_outbox";
              "reap" ] );
    ("Ingest_io", Funcs [ "of_read"; "retry_eintr" ]);
    (* The experiment diff kernel walks every field of every report of
       every corpus file; paths stay cons-lists until a divergence is
       actually recorded. *)
    ( "Diff",
      Funcs [ "value"; "run"; "record"; "render_path"; "nums_agree"; "leaf" ] );
  ]

(* (last qualifying module, ident) pairs whose minor-heap appetite is the
   reason jobs>1 loses to GC sync (BENCH_SPEED.json). *)
let heavy_ident lid =
  match (Ident.last_module lid, Ident.name lid) with
  | None, Some "@" -> Some "list append (@)"
  | Some "List", Some (("append" | "map" | "mapi" | "concat" | "concat_map"
                       | "flatten") as f) ->
      Some ("List." ^ f)
  | Some "String", Some "concat" -> Some "String.concat"
  | Some "Printf", Some "sprintf" -> Some "Printf.sprintf"
  | Some "Format", Some ("asprintf" | "kasprintf") -> Some "Format.asprintf"
  | Some "Fun", Some "flip" -> Some "Fun.flip"
  | _ -> None

let hot_scope_of hot_paths module_name =
  List.assoc_opt module_name hot_paths

let binding_is_hot scope name =
  match scope with
  | None -> false
  | Some All -> true
  | Some (Funcs fs) -> List.exists (String.equal name) fs

(* --- file scan ------------------------------------------------------------ *)

let toplevel_value_names (str : Parsetree.structure) =
  let names = ref [] in
  let rec pat_names (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> names := txt :: !names
    | Ppat_alias (a, { txt; _ }) ->
        names := txt :: !names;
        pat_names a
    | Ppat_tuple ps -> List.iter pat_names ps
    | Ppat_constraint (a, _) -> pat_names a
    | _ -> ()
  in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) -> pat_names vb.pvb_pat)
            vbs
      | _ -> ())
    str;
  !names

let check ~enabled ~in_lib ~hot_paths ~module_name (str : Parsetree.structure) =
  let findings = ref [] in
  let report ~loc ~code message =
    if enabled code then
      findings :=
        Finding.of_loc loc ~code ~severity:(Registry.severity_of code) message
        :: !findings
  in
  let check_factor_match cases =
    let evidence =
      List.concat_map
        (fun (c : Parsetree.case) -> pattern_constructors c.pc_lhs [])
        cases
    in
    if evidence <> [] then
      List.iter
        (fun (c : Parsetree.case) ->
          if is_catch_all c.pc_lhs then
            report ~loc:c.pc_lhs.ppat_loc ~code:"L004"
              (Printf.sprintf
                 "catch-all branch in a match over the delay-factor taxonomy \
                  (saw %s); enumerate every Factors constructor so new \
                  factors cannot be silently mis-attributed"
                 (String.concat ", " (List.sort_uniq String.compare evidence))))
        cases
  in
  let local_compare = List.mem "compare" (toplevel_value_names str) in
  let super = Ast_iterator.default_iterator in
  let check_obs_name (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        match obs_name_target txt with
        | None -> ()
        | Some kind -> (
            match obs_name_arg kind args with
            | None -> ()
            | Some
                {
                  Parsetree.pexp_desc = Pexp_constant (Pconst_string (s, _, _));
                  pexp_loc;
                  _;
                } ->
                if not (valid_obs_name s) then
                  report ~loc:pexp_loc ~code:"L011"
                    (Printf.sprintf
                       "metric/span name %S is not lowercase snake-case \
                        (^[a-z][a-z0-9]*([._-][a-z0-9]+)*$); fix the name so \
                        it greps and mangles cleanly"
                       s)
            | Some a ->
                report ~loc:a.Parsetree.pexp_loc ~code:"L011"
                  "metric/span name built dynamically; pass a literal \
                   lowercase snake-case string so every series/span name \
                   is greppable and the Prometheus exposition stays stable"))
    | _ -> ()
  in
  let expr iter (e : Parsetree.expression) =
    check_obs_name e;
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } when is_poly_compare local_compare txt ->
        report ~loc ~code:"L001"
          "polymorphic compare; use the value's own ordering \
           (Int.compare, Time_us.compare, Span.compare, ...)"
    | Pexp_ident { txt = Longident.Lident "failwith"; loc } when in_lib ->
        report ~loc ~code:"L005"
          "bare failwith in library code; raise a typed exception \
           (e.g. Bgp_error.Decode_error) so callers can match on it"
    | Pexp_ident
        { txt = Longident.Ldot (Longident.Lident "Stdlib", "failwith"); loc }
      when in_lib ->
        report ~loc ~code:"L005"
          "bare failwith in library code; raise a typed exception \
           (e.g. Bgp_error.Decode_error) so callers can match on it"
    | Pexp_ident { txt; loc } when in_lib && is_stderr_print txt ->
        report ~loc ~code:"L006"
          "direct stderr printing in library code; route diagnostics \
           through Tdat_obs.Log (warn/info/debug) so --log-level \
           filters them uniformly"
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ };
            pexp_loc = oploc;
            _ },
          [ (_, lhs); (_, rhs) ] ) ->
        if is_float_literal lhs || is_float_literal rhs then
          report ~loc:oploc ~code:"L003"
            (Printf.sprintf
               "float (%s) against a literal; compare with a tolerance or \
                use Float.equal deliberately"
               op)
        else if fenced_operand lhs || fenced_operand rhs then
          let m =
            if fenced_operand lhs then fenced_operand_name lhs
            else fenced_operand_name rhs
          in
          report ~loc:oploc ~code:"L002"
            (Printf.sprintf
               "polymorphic (%s) on an abstract %s value; use %s.equal (or \
                a dedicated equal_* function)"
               op m m)
    | Pexp_match (_, cases) -> check_factor_match cases
    | Pexp_function cases -> check_factor_match cases
    | _ -> ());
    super.expr iter e
  in
  let iter = { super with expr } in
  iter.structure iter str;
  (* L009: scan the bodies of hot top-level bindings (and everything
     nested in them) for allocation-heavy idioms.  Submodule blocks are
     matched against the hot-path table under their own name. *)
  let scan_hot ~owner (e : Parsetree.expression) =
    let hexpr hiter (e : Parsetree.expression) =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
          match heavy_ident txt with
          | Some what ->
              report ~loc ~code:"L009"
                (Printf.sprintf
                   "allocation-heavy %s in hot path %s; build into a \
                    pre-sized array or Buffer (or hoist the cold branch \
                    into a helper outside the hot set)"
                   what owner)
          | None -> ())
      | _ -> ());
      super.expr hiter e
    in
    let hiter = { super with expr = hexpr } in
    hiter.expr hiter e
  in
  let rec hot_items modname (items : Parsetree.structure) =
    let scope = hot_scope_of hot_paths modname in
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } when binding_is_hot scope name ->
                    scan_hot ~owner:(modname ^ "." ^ name) vb.pvb_expr
                | _ -> ())
              vbs
        | Pstr_module
            { pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure sub_items; _ };
              _ } ->
            hot_items sub sub_items
        | _ -> ())
      items
  in
  if enabled "L009" then hot_items module_name str;
  List.rev !findings
