let rec last_module = function
  | Longident.Lident _ -> None
  | Longident.Ldot (Longident.Lident m, _) -> Some m
  | Longident.Ldot (p, _) -> (
      match p with
      | Longident.Ldot (_, m) -> Some m
      | _ -> last_module p)
  | Longident.Lapply (_, p) -> last_module p

let name = function
  | Longident.Lident n | Longident.Ldot (_, n) -> Some n
  | Longident.Lapply _ -> None

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Path components of the directory part, [Filename]-normalized, so
   "lib/core/x.ml", "./lib/core/x.ml", "/repo/lib/core/x.ml" and
   "_build/default/lib/core/x.ml" all expose a "lib" component.  The
   old prefix-string compare (String.sub path 0 4 = "lib/") silently
   skipped library-only rules for absolute and dune-exec-relative
   paths. *)
let dir_components path =
  let rec go acc dir =
    let parent = Filename.dirname dir in
    if String.equal parent dir then acc
    else go (Filename.basename dir :: acc) parent
  in
  go [] (Filename.dirname path)

let in_lib path =
  List.exists (String.equal "lib") (dir_components path)
