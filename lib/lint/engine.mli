(** The lint driver.

    Walks the configured roots for [.ml] files, scans them on a
    [Tdat_parallel.Pool] (parsing serialized under a mutex —
    compiler-libs keeps lexer state in module-level mutable tables,
    exactly what L007 is for), runs the whole-repo passes over the
    merged index, applies [[@tdat.lint.allow]] suppressions and returns
    the findings in the deterministic {!Finding.compare} order, so
    output is byte-identical for every [jobs] value. *)

type config = {
  roots : string list;  (** Files or directories; missing ones skipped. *)
  treat_as_lib : bool;
      (** Force library-only rules on every file (fixtures/tests). *)
  jobs : int option;  (** Pool width; [None] = recommended domain count. *)
  selection : Registry.selection;
  extra_hot : (string * Rules_file.hot_scope) list;
      (** Prepended to {!Rules_file.default_hot_paths}, so a test can
          make its fixture module hot for L009. *)
}

val default_config : config
(** Roots [lib bin bench examples], auto jobs, all default rules. *)

type outcome = { findings : Finding.t list; files_scanned : int }

val run : config -> outcome

val ml_files_under : string -> string list
(** The engine's deterministic file walk (sorted, skipping [_build] and
    dot-entries), exposed for tests. *)
