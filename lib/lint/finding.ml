type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type t = {
  file : string;
  line : int;
  col : int;
  code : string;
  severity : severity;
  message : string;
}

let v ~file ~line ~col ~code ~severity message =
  { file; line; col; code; severity; message }

let of_position (p : Lexing.position) ~code ~severity message =
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    code;
    severity;
    message;
  }

let of_loc (loc : Location.t) ~code ~severity message =
  of_position loc.Location.loc_start ~code ~severity message

(* Full tie-break chain — file, line, col, code, message — so two
   findings on one line render in a stable order whatever the rule
   passes produced them in (JSON/SARIF output is diffed in CI). *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.code b.code with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let sort findings = List.sort compare findings

let to_line f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.code f.message
