(** Whole-repo passes over the merged module index.

    L007 — conservative reachability from Domain-pool entry points to
    module-level mutable bindings (worker-shared unsynchronised state).
    L008 — cross-module mutation of such bindings, bypassing the owning
    module's API. *)

val check :
  enabled:(string -> bool) -> Module_index.t list -> Finding.t list
(** Run the enabled whole-repo rules.  Returns nothing when neither
    L007 nor L008 is enabled, so per-file-only runs skip graph
    construction entirely. *)
