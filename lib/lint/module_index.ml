(* Per-file extraction for the whole-repo passes: module-level mutable
   bindings, a conservative call-graph approximation (one node per
   top-level binding, edges = every ident the binding's body mentions),
   mutation sites, and Domain-pool worker entry points.  Everything is
   purely syntactic — an untyped over-approximation the runtime audit
   (A007) backstops. *)

type target = Local of string | Qualified of string * string

type mutable_binding = {
  m_module : string;
  m_name : string;
  m_file : string;
  m_line : int;
  m_col : int;
  m_kind : string;
  m_in_lib : bool;
}

type node = {
  n_module : string;
  n_name : string;
  n_file : string;
  n_file_module : string;
  n_refs : target list;
  n_mutations : (target * (int * int)) list;
}

type entry = {
  e_label : string;
  e_module : string;
  e_file_module : string;
  e_targets : target list;
}

type t = {
  i_file : string;
  i_module : string;
  i_in_lib : bool;
  i_mutables : mutable_binding list;
  i_nodes : node list;
  i_entries : entry list;
}

(* --- classification tables ------------------------------------------------ *)

(* RHS constructors that make a top-level binding shared mutable state.
   [Atomic.make], [Mutex.create], [Condition.create], [Semaphore.*] and
   [Domain.DLS.new_key] are the sanctioned guards and are deliberately
   not indexed. *)
let mutable_maker lm n =
  match (lm, n) with
  | (None | Some "Stdlib"), "ref" -> Some "ref"
  | Some (("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Dynarray") as m),
    "create" ->
      Some (m ^ ".create")
  | Some "Array",
    (("make" | "create" | "init" | "make_matrix" | "of_list" | "copy"
     | "append" | "concat" | "sub") as f) ->
      Some ("Array." ^ f)
  | Some "Bytes", (("create" | "make" | "of_string" | "init") as f) ->
      Some ("Bytes." ^ f)
  | _ -> None

let guarded_maker lm n =
  match (lm, n) with
  | Some "Atomic", "make" -> true
  | Some "Mutex", "create" -> true
  | Some "Condition", "create" -> true
  | Some "Semaphore", _ -> true
  | Some "DLS", "new_key" -> true
  | _ -> false

(* Functions whose application mutates their first argument in place. *)
let mutator lm n =
  match (lm, n) with
  | (None | Some "Stdlib"), (":=" | "incr" | "decr") -> true
  | Some "Hashtbl",
    ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace")
    ->
      true
  | Some "Buffer",
    ("add_char" | "add_string" | "add_bytes" | "add_substring"
    | "add_subbytes" | "add_channel" | "add_buffer" | "clear" | "reset"
    | "truncate") ->
      true
  | Some "Queue", ("add" | "push" | "pop" | "take" | "clear" | "transfer") ->
      true
  | Some "Stack", ("push" | "pop" | "clear") -> true
  | Some "Array",
    ("set" | "fill" | "blit" | "sort" | "stable_sort" | "fast_sort"
    | "unsafe_set") ->
      true
  | Some "Bytes", ("set" | "fill" | "blit" | "blit_string" | "unsafe_set") ->
      true
  | _ -> false

(* Worker entry points: closures handed to these run on pool domains.
   The approximation seeds reachability with every ident mentioned in
   the call's arguments. *)
let entry_point lm n =
  match (lm, n) with
  | Some "Pool", ("map" | "with_pool" | "run") -> true
  | Some "Analyzer", "analyze_all" -> true
  | Some "Aggregate", "run" -> true
  | _ -> false

(* --- expression helpers --------------------------------------------------- *)

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel e
  | _ -> e

let target_of_expr (e : Parsetree.expression) =
  match (peel e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some (Local n)
  | Pexp_ident { txt; _ } -> (
      match (Ident.last_module txt, Ident.name txt) with
      | Some m, Some n -> Some (Qualified (m, n))
      | _ -> None)
  | _ -> None

let target_of_lid txt =
  match txt with
  | Longident.Lident n -> Some (Local n)
  | _ -> (
      match (Ident.last_module txt, Ident.name txt) with
      | Some m, Some n -> Some (Qualified (m, n))
      | _ -> None)

(* Every ident referenced anywhere inside [e]. *)
let collect_refs (e : Parsetree.expression) =
  let refs = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match target_of_lid txt with
        | Some t -> refs := t :: !refs
        | None -> ())
    | _ -> ());
    super.expr iter e
  in
  let iter = { super with expr } in
  iter.expr iter e;
  List.rev !refs

(* Mutation sites inside [e]: [x := v] / [incr x] / [x.f <- v] /
   [Hashtbl.replace x ...] and friends, recorded with their location. *)
let collect_mutations (e : Parsetree.expression) =
  let muts = ref [] in
  let record t (loc : Location.t) =
    let p = loc.Location.loc_start in
    muts := (t, (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)) :: !muts
  in
  let super = Ast_iterator.default_iterator in
  let expr iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg0) :: _) -> (
        match (Ident.last_module txt, Ident.name txt) with
        | lm, Some n when mutator lm n -> (
            match target_of_expr arg0 with
            | Some t -> record t e.pexp_loc
            | None -> ())
        | _ -> ())
    | Pexp_setfield (lhs, _, _) -> (
        match target_of_expr lhs with
        | Some t -> record t e.pexp_loc
        | None -> ())
    | _ -> ());
    super.expr iter e
  in
  let iter = { super with expr } in
  iter.expr iter e;
  List.rev !muts

(* Entry-point applications inside [e], each with the idents its
   arguments mention. *)
let collect_entries ~modname ~file_module (e : Parsetree.expression) =
  let entries = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        match (Ident.last_module txt, Ident.name txt) with
        | (Some lm as lmo), Some n when entry_point lmo n ->
            entries :=
              {
                e_label = lm ^ "." ^ n;
                e_module = modname;
                e_file_module = file_module;
                e_targets =
                  List.concat_map (fun (_, a) -> collect_refs a) args;
              }
              :: !entries
        | _ -> ())
    | _ -> ());
    super.expr iter e
  in
  let iter = { super with expr } in
  iter.expr iter e;
  List.rev !entries

(* --- structure walk ------------------------------------------------------- *)

(* Field labels declared [mutable] anywhere in the file: a top-level
   record literal using one is itself module-level mutable state. *)
let mutable_field_labels (str : Parsetree.structure) =
  let labels = ref [] in
  let super = Ast_iterator.default_iterator in
  let type_declaration iter (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Ptype_record fields ->
        List.iter
          (fun (f : Parsetree.label_declaration) ->
            match f.pld_mutable with
            | Mutable -> labels := f.pld_name.txt :: !labels
            | Immutable -> ())
          fields
    | _ -> ());
    super.type_declaration iter td
  in
  let iter = { super with type_declaration } in
  iter.structure iter str;
  !labels

let classify_mutable ~mutable_labels (e : Parsetree.expression) =
  let e = peel e in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      let lm = Ident.last_module txt and n = Ident.name txt in
      match n with
      | Some n when guarded_maker lm n -> None
      | Some n -> mutable_maker lm n
      | None -> None)
  | Pexp_array [] -> None (* a zero-length array is immutable in practice *)
  | Pexp_array _ -> Some "array literal"
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : Longident.t Location.loc), _) ->
             match Ident.name txt with
             | Some n -> List.mem n mutable_labels
             | None -> false)
           fields ->
      Some "mutable-field record"
  | _ -> None

let of_structure ~file ~in_lib (str : Parsetree.structure) =
  let file_module = Ident.module_of_path file in
  let mutable_labels = mutable_field_labels str in
  let mutables = ref [] in
  let nodes = ref [] in
  let entries = ref [] in
  let anon = ref 0 in
  let rec walk modname (items : Parsetree.structure) =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                let name =
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } -> txt
                  | _ ->
                      incr anon;
                      Printf.sprintf "(toplevel-%d)" !anon
                in
                (match classify_mutable ~mutable_labels vb.pvb_expr with
                | Some kind ->
                    let p = vb.pvb_loc.Location.loc_start in
                    mutables :=
                      {
                        m_module = modname;
                        m_name = name;
                        m_file = file;
                        m_line = p.Lexing.pos_lnum;
                        m_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
                        m_kind = kind;
                        m_in_lib = in_lib;
                      }
                      :: !mutables
                | None -> ());
                let refs = collect_refs vb.pvb_expr in
                nodes :=
                  {
                    n_module = modname;
                    n_name = name;
                    n_file = file;
                    n_file_module = file_module;
                    n_refs = refs;
                    n_mutations = collect_mutations vb.pvb_expr;
                  }
                  :: !nodes;
                let es = collect_entries ~modname ~file_module vb.pvb_expr in
                (* A binding that hands work to the pool is itself a
                   worker root: the closure typically captures locals
                   defined earlier in the same body, which the call's
                   argument subtree alone cannot see.  Conservatively
                   seed reachability with everything the binding
                   mentions. *)
                let es =
                  match es with
                  | [] -> es
                  | { e_label; _ } :: _ ->
                      {
                        e_label;
                        e_module = modname;
                        e_file_module = file_module;
                        e_targets = refs;
                      }
                      :: es
                in
                entries := List.rev_append es !entries)
              vbs
        | Pstr_eval (e, _) ->
            let es = collect_entries ~modname ~file_module e in
            let es =
              match es with
              | [] -> es
              | { e_label; _ } :: _ ->
                  {
                    e_label;
                    e_module = modname;
                    e_file_module = file_module;
                    e_targets = collect_refs e;
                  }
                  :: es
            in
            entries := List.rev_append es !entries
        | Pstr_module
            { pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure sub_items; _ };
              _ } ->
            walk sub sub_items
        | _ -> ())
      items
  in
  walk file_module str;
  {
    i_file = file;
    i_module = file_module;
    i_in_lib = in_lib;
    i_mutables = List.rev !mutables;
    i_nodes = List.rev !nodes;
    i_entries = List.rev !entries;
  }
