(** The per-file syntactic rules: L001-L006 and the L009 allocation
    lint.

    Each check works on one parsetree in isolation and returns its
    findings — the pass keeps no module-level state, so the engine can
    run it on pool workers (the linter satisfies its own L007). *)

type hot_scope =
  | All  (** Every top-level binding of the module is a hot path. *)
  | Funcs of string list  (** Only the named top-level bindings. *)

val default_hot_paths : (string * hot_scope) list
(** The protected set the allocation-light ROADMAP item names: pcap and
    MRT streaming decode, the Span_set kernels,
    [Trace.partition_connections], plus the experiment harness's [Diff]
    walk (it visits every field of every report of every corpus file). *)

val fenced_modules : string list
(** Modules whose abstract values fence L002. *)

val check :
  enabled:(string -> bool) ->
  in_lib:bool ->
  hot_paths:(string * hot_scope) list ->
  module_name:string ->
  Parsetree.structure ->
  Finding.t list
(** Run every enabled per-file rule.  [in_lib] gates the library-only
    rules (L005, L006); [module_name] (the file's compiled module name)
    keys the [hot_paths] table for L009. *)
