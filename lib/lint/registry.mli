(** The typed rule registry.

    Every lint rule is declared here once — id, severity, per-file vs
    whole-repo pass, library-only flag, default-enabled flag and
    documentation — so emitters (SARIF rule metadata), the [--rules]
    selector and DESIGN.md's rule table all derive from one source. *)

type pass =
  | Per_file  (** Decided from one parsetree in isolation. *)
  | Whole_repo
      (** Needs the cross-module index (call graph, mutable-state
          ownership). *)

type rule = {
  id : string;
  severity : Finding.severity;
  pass : pass;
  lib_only : bool;
      (** Only enforced on files under a [lib] directory (or with
          [--treat-as-lib]). *)
  default_enabled : bool;
  summary : string;  (** One line, used as the SARIF short description. *)
  doc : string;  (** Full rationale. *)
}

val all : rule list
(** Every rule, in id order: L000 (parse failure) through L010 (unused
    suppression). *)

val find : string -> rule option
val severity_of : string -> Finding.severity

type selection
(** An enabled-rule set. *)

val default_selection : selection
(** All rules with [default_enabled = true] (currently: every rule). *)

val enabled : selection -> string -> bool

val apply_spec : string -> (selection, string) result
(** [apply_spec "+L007,-L003"] starts from {!default_selection} and
    applies [+id] / [-id] clauses left to right.  A bare [id] counts as
    [+id].  Unknown ids are an error. *)
