(** Lint findings: one typed diagnostic per rule violation.

    A finding pins a rule code to a 0-based column / 1-based line in a
    source file.  Ordering is fully deterministic ({!compare}
    tie-breaks file, line, column, code, then message), so emitted
    reports are byte-stable across runs and [--jobs] values. *)

type severity = Error | Warning

val severity_name : severity -> string

type t = {
  file : string;
  line : int;
  col : int;
  code : string;
  severity : severity;
  message : string;
}

val v :
  file:string ->
  line:int ->
  col:int ->
  code:string ->
  severity:severity ->
  string ->
  t

val of_position :
  Lexing.position -> code:string -> severity:severity -> string -> t

val of_loc : Location.t -> code:string -> severity:severity -> string -> t
(** Finding at the start of a compiler-libs location. *)

val compare : t -> t -> int
(** Total order: file, line, col, code, message. *)

val sort : t list -> t list

val to_line : t -> string
(** The classic one-line text form: [file:line:col: [code] message]. *)
