(** Attribute-based finding suppression.

    [[@tdat.lint.allow "L007"]] on an expression, [[@@tdat.lint.allow
    "L007 L009"]] on a let-binding or module, and a floating
    [[@@@tdat.lint.allow "L00x"]] at file scope all allowlist the named
    rules for the source lines the attributed node spans (the whole file
    for the floating form; no payload allows every rule).  Suppressions
    that match nothing are themselves reported as L010, so a fixed
    violation cannot leave a stale allowlist behind. *)

val attr_name : string
(** ["tdat.lint.allow"]. *)

type codes = All | Codes of string list

type t = {
  file : string;
  codes : codes;
  line_start : int;
  line_end : int;
  at_line : int;
  at_col : int;
  mutable used : bool;
}

val collect : file:string -> Parsetree.structure -> t list
(** Every [tdat.lint.allow] attribute in the file, with its scope. *)

val apply : t list -> Finding.t list -> Finding.t list
(** Drop findings covered by a suppression, marking those suppressions
    used.  L010 findings pass through untouched. *)

val unused_findings :
  rule_was_enabled:(string -> bool) -> t list -> Finding.t list
(** L010 findings for suppressions still unused after {!apply}.  A
    suppression naming only rules that were disabled this run is skipped
    (we cannot know whether it would have fired). *)
