let attr_name = "tdat.lint.allow"

type codes = All | Codes of string list

type t = {
  file : string;
  codes : codes;
  line_start : int;
  line_end : int;
  at_line : int;  (** Where the attribute itself sits (unused reporting). *)
  at_col : int;
  mutable used : bool;
}

let covers s ~code ~file ~line =
  String.equal s.file file
  && line >= s.line_start
  && line <= s.line_end
  && (match s.codes with
     | All -> true
     | Codes cs -> List.exists (String.equal code) cs)

(* Codes are given as string-literal payload(s): ["L007"], ["L007 L009"],
   ["L007,L009"].  No payload means "allow everything here". *)
let codes_of_payload (p : Parsetree.payload) =
  let split s =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun c -> not (String.equal c ""))
  in
  let rec strings_of_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> split s
    | Pexp_tuple es -> List.concat_map strings_of_expr es
    | Pexp_apply (f, args) ->
        strings_of_expr f @ List.concat_map (fun (_, a) -> strings_of_expr a) args
    | _ -> []
  in
  match p with
  | PStr items ->
      let cs =
        List.concat_map
          (fun (it : Parsetree.structure_item) ->
            match it.pstr_desc with
            | Pstr_eval (e, _) -> strings_of_expr e
            | _ -> [])
          items
      in
      if cs = [] then All else Codes cs
  | _ -> All

let of_attribute ~file ~line_start ~line_end (a : Parsetree.attribute) =
  if String.equal a.attr_name.txt attr_name then
    let p = a.attr_loc.Location.loc_start in
    Some
      {
        file;
        codes = codes_of_payload a.attr_payload;
        line_start;
        line_end;
        at_line = p.Lexing.pos_lnum;
        at_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        used = false;
      }
  else None

let range (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_end.Lexing.pos_lnum)

let collect ~file (str : Parsetree.structure) =
  let acc = ref [] in
  let add ~line_start ~line_end attrs =
    List.iter
      (fun a ->
        match of_attribute ~file ~line_start ~line_end a with
        | Some s -> acc := s :: !acc
        | None -> ())
      attrs
  in
  let super = Ast_iterator.default_iterator in
  let expr iter (e : Parsetree.expression) =
    let line_start, line_end = range e.pexp_loc in
    add ~line_start ~line_end e.pexp_attributes;
    super.expr iter e
  in
  let structure_item iter (it : Parsetree.structure_item) =
    (match it.pstr_desc with
    | Pstr_attribute a ->
        (* Floating [@@@tdat.lint.allow ...]: whole-file scope. *)
        add ~line_start:0 ~line_end:max_int [ a ]
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let line_start, line_end = range vb.pvb_loc in
            add ~line_start ~line_end vb.pvb_attributes)
          vbs
    | Pstr_module mb ->
        let line_start, line_end = range mb.pmb_loc in
        add ~line_start ~line_end mb.pmb_attributes
    | _ -> ());
    super.structure_item iter it
  in
  let iter = { super with expr; structure_item } in
  iter.structure iter str;
  List.rev !acc

let apply suppressions findings =
  List.filter
    (fun (f : Finding.t) ->
      (* L010 findings are never self-suppressed by the suppression they
         report on. *)
      String.equal f.Finding.code "L010"
      || not
           (List.exists
              (fun s ->
                let hit =
                  covers s ~code:f.Finding.code ~file:f.Finding.file
                    ~line:f.Finding.line
                in
                if hit then s.used <- true;
                hit)
              suppressions))
    findings

let unused_findings ~rule_was_enabled suppressions =
  List.filter_map
    (fun s ->
      if s.used then None
      else
        let relevant =
          match s.codes with
          | All -> true
          | Codes cs -> List.exists rule_was_enabled cs
        in
        if not relevant then None
        else
          let codes_txt =
            match s.codes with
            | All -> "all codes"
            | Codes cs -> String.concat ", " cs
          in
          Some
            (Finding.v ~file:s.file ~line:s.at_line ~col:s.at_col ~code:"L010"
               ~severity:(Registry.severity_of "L010")
               (Printf.sprintf
                  "unused lint suppression (%s): no finding matched; delete \
                   the [@%s ...] attribute"
                  codes_txt attr_name)))
    suppressions
