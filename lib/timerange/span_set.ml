(* Canonical form: an array of disjoint, non-adjacent spans in increasing
   order.  The array representation makes point queries O(log n) and the
   linear merges below cache-friendly, which matters when a trace yields
   hundreds of thousands of events.

   Every kernel writes directly into a pre-sized result array — no list
   intermediates, no List.rev — because the set algebra runs once per
   series per connection and dominates the per-core cost of fleet
   analysis. *)

type t = Span.t array

let empty = [||]
let is_empty s = Array.length s = 0

(* Coalesce an array sorted by start, writing the canonical form into a
   fresh array.  Returns the input itself when nothing coalesces. *)
let coalesce_sorted_arr src =
  let n = Array.length src in
  if n = 0 then empty
  else begin
    let out = Array.make n src.(0) in
    let k = ref 0 in
    let cur_start = ref (Span.start src.(0)) in
    let cur_stop = ref (Span.stop src.(0)) in
    for i = 1 to n - 1 do
      let s = src.(i) in
      let s_start = Span.start s and s_stop = Span.stop s in
      if s_start <= !cur_stop then begin
        if s_stop > !cur_stop then cur_stop := s_stop
      end
      else begin
        out.(!k) <- Span.v !cur_start !cur_stop;
        incr k;
        cur_start := s_start;
        cur_stop := s_stop
      end
    done;
    out.(!k) <- Span.v !cur_start !cur_stop;
    incr k;
    if !k = n then src else Array.sub out 0 !k
  end

let of_spans spans =
  let a = Array.of_list spans in
  Array.sort Span.compare a;
  coalesce_sorted_arr a

(* Array-input variant for hot callers ({!Series.to_span_set}): takes
   ownership of [spans] (sorts it in place), so pass a fresh array. *)
let of_span_array spans =
  Array.sort Span.compare spans;
  coalesce_sorted_arr spans

let of_span s = [| s |]
let to_list s = Array.to_list s
let cardinal = Array.length
let size s = Array.fold_left (fun acc sp -> acc + Span.length sp) 0 s

let find_covering t s =
  (* Index of the span containing instant [t], or -1. *)
  let lo = ref 0 and hi = ref (Array.length s - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let sp = s.(mid) in
    if t < Span.start sp then hi := mid - 1
    else if t >= Span.stop sp then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  !found

let mem t s = find_covering t s >= 0

let span_at t s =
  let i = find_covering t s in
  if i >= 0 then Some s.(i) else None

(* O(log n) locate + O(n) splice: find the (possibly empty) run of spans
   touching [sp], replace it by the single merged span.  Both binary
   searches exploit canonical form: starts and stops are strictly
   increasing. *)
let add sp s =
  let n = Array.length s in
  if n = 0 then [| sp |]
  else begin
    let sp_start = Span.start sp and sp_stop = Span.stop sp in
    (* First index whose stop reaches sp (stop >= sp_start). *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Span.stop s.(mid) < sp_start then lo := mid + 1 else hi := mid
    done;
    let first = !lo in
    (* First index starting after sp (start > sp_stop); the touching run
       is [first, after). *)
    let lo = ref first and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Span.start s.(mid) <= sp_stop then lo := mid + 1 else hi := mid
    done;
    let after = !lo in
    if first >= after then begin
      (* Nothing touches: insert at [first]. *)
      let out = Array.make (n + 1) sp in
      Array.blit s 0 out 0 first;
      Array.blit s first out (first + 1) (n - first);
      out
    end
    else begin
      let run_start = Span.start s.(first) in
      let run_stop = Span.stop s.(after - 1) in
      let merged_start = min sp_start run_start in
      let merged_stop = max sp_stop run_stop in
      if after - first = 1 && merged_start = run_start && merged_stop = run_stop
      then s (* already covered *)
      else begin
        let out = Array.make (n - (after - first) + 1) sp in
        Array.blit s 0 out 0 first;
        out.(first) <- Span.v merged_start merged_stop;
        Array.blit s after out (first + 1) (n - after);
        out
      end
    end
  end

(* Two-pointer merge over the already-sorted inputs, coalescing on the
   fly into an array of the maximal possible size. *)
let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let n = Array.length a and m = Array.length b in
    let out = Array.make (n + m) a.(0) in
    let k = ref 0 in
    let i = ref 0 and j = ref 0 in
    let next () =
      if !j >= m || (!i < n && Span.compare a.(!i) b.(!j) <= 0) then begin
        let s = a.(!i) in
        incr i;
        s
      end
      else begin
        let s = b.(!j) in
        incr j;
        s
      end
    in
    let s0 = next () in
    let cur_start = ref (Span.start s0) in
    let cur_stop = ref (Span.stop s0) in
    while !i < n || !j < m do
      let s = next () in
      let s_start = Span.start s and s_stop = Span.stop s in
      if s_start <= !cur_stop then begin
        if s_stop > !cur_stop then cur_stop := s_stop
      end
      else begin
        out.(!k) <- Span.v !cur_start !cur_stop;
        incr k;
        cur_start := s_start;
        cur_stop := s_stop
      end
    done;
    out.(!k) <- Span.v !cur_start !cur_stop;
    incr k;
    if !k = n + m then out else Array.sub out 0 !k
  end

(* Intersections of canonical sets are canonical (pieces inherit the
   inputs' gaps), so the two-pointer sweep writes the final result
   directly.  Each step advances one pointer, so n + m slots suffice. *)
let inter a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then empty
  else begin
    let out = Array.make (n + m) a.(0) in
    let k = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < n && !j < m do
      let sa = a.(!i) and sb = b.(!j) in
      let sa_start = Span.start sa and sa_stop = Span.stop sa in
      let sb_start = Span.start sb and sb_stop = Span.stop sb in
      let lo = max sa_start sb_start in
      let hi = min sa_stop sb_stop in
      if lo < hi then begin
        out.(!k) <- Span.v lo hi;
        incr k
      end;
      if sa_stop <= sb_stop then incr i else incr j
    done;
    if !k = 0 then empty else Array.sub out 0 !k
  end

(* Gap sweep: at most cardinal + 1 gaps fit inside [within]. *)
let complement ~within s =
  let n = Array.length s in
  let w_start = Span.start within and w_stop = Span.stop within in
  let out = Array.make (n + 1) within in
  let k = ref 0 in
  let cursor = ref w_start in
  for i = 0 to n - 1 do
    let sp = s.(i) in
    let lo = max (Span.start sp) w_start in
    let hi = min (Span.stop sp) w_stop in
    if lo < hi then begin
      if lo > !cursor then begin
        out.(!k) <- Span.v !cursor lo;
        incr k
      end;
      if hi > !cursor then cursor := hi
    end
  done;
  if !cursor < w_stop then begin
    out.(!k) <- Span.v !cursor w_stop;
    incr k
  end;
  if !k = n + 1 then out else Array.sub out 0 !k

let diff a b =
  match a with
  | [||] -> empty
  | _ ->
      let whole = Span.hull a.(0) a.(Array.length a - 1) in
      inter a (complement ~within:whole b)

let clip window s =
  let n = Array.length s in
  if n = 0 then empty
  else begin
    let w_start = Span.start window and w_stop = Span.stop window in
    let out = Array.make n s.(0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let sp = s.(i) in
      let lo = max (Span.start sp) w_start in
      let hi = min (Span.stop sp) w_stop in
      if lo < hi then begin
        out.(!k) <- Span.v lo hi;
        incr k
      end
    done;
    if !k = n then out else Array.sub out 0 !k
  end

let hull s =
  if is_empty s then None else Some (Span.hull s.(0) s.(Array.length s - 1))

let filter f s =
  let n = Array.length s in
  if n = 0 then s
  else begin
    let out = Array.make n s.(0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if f s.(i) then begin
        out.(!k) <- s.(i);
        incr k
      end
    done;
    if !k = n then s else Array.sub out 0 !k
  end

let longer_than d s = filter (fun sp -> Span.length sp > d) s
let fold f s acc = Array.fold_left (fun acc sp -> f sp acc) acc s
let iter f s = Array.iter f s

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Span.equal a b

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Span.pp)
    (to_list s)
