type t = int

let zero = 0
let of_s s = int_of_float (Float.round (s *. 1_000_000.))
let of_ms ms = int_of_float (Float.round (ms *. 1_000.))
let of_us us = us
let to_s t = float_of_int t /. 1_000_000.
let to_ms t = float_of_int t /. 1_000.
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal

let pp ppf t =
  let a = abs t in
  if a < 1_000 then Format.fprintf ppf "%dus" t
  else if a < 1_000_000 then Format.fprintf ppf "%.3gms" (to_ms t)
  else Format.fprintf ppf "%.4gs" (to_s t)

let to_string t = Format.asprintf "%a" pp t
