(** Time values in integer microseconds.

    Every timestamp and duration in this repository is an [int] number of
    microseconds.  On a 64-bit platform this covers about 292 millennia, so
    overflow is not a practical concern for packet traces.  The paper
    ("Implementation", Section V-C) converts tcpdump's second-based
    timestamps to microseconds and stores them as big integers; native
    [int] plays that role here. *)

type t = int

val zero : t

val of_s : float -> t
(** [of_s s] converts seconds (possibly fractional) to microseconds,
    rounding to the nearest microsecond. *)

val of_ms : float -> t
(** [of_ms ms] converts milliseconds to microseconds. *)

val of_us : int -> t
(** Identity; documents intent at call sites. *)

val to_s : t -> float
(** [to_s t] converts back to (fractional) seconds. *)

val to_ms : t -> float
(** [to_ms t] converts to (fractional) milliseconds. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints a human-readable duration, picking µs/ms/s units. *)

val to_string : t -> string
