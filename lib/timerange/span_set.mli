(** An ordered set of time durations (Section III-A of the paper).

    A span set is a canonical sequence of disjoint, non-adjacent spans in
    increasing order.  It supports the set algebra the paper builds series
    operations on — union, intersection, difference, complement — plus the
    measure the delay factors are defined by: {!size}, the sum of all span
    lengths ("set size / cardinality" in the paper's terms).

    All operations are purely functional; a set is immutable once built. *)

type t

val empty : t
val is_empty : t -> bool

val of_spans : Span.t list -> t
(** Builds the canonical form: sorts, then coalesces overlapping or
    adjacent spans.  Input may be in any order. *)

val of_span_array : Span.t array -> t
(** As {!of_spans} from an array, without list intermediates.  Takes
    ownership of the array (sorts it in place): pass a fresh one. *)

val of_span : Span.t -> t
val add : Span.t -> t -> t

val to_list : t -> Span.t list
(** Spans in increasing order, pairwise disjoint and non-adjacent. *)

val cardinal : t -> int
(** Number of maximal spans. *)

val size : t -> Time_us.t
(** Total covered time: the paper's "series size", numerator of every
    delay ratio. *)

val mem : Time_us.t -> t -> bool
(** Point membership (binary search). *)

val span_at : Time_us.t -> t -> Span.t option
(** The covering span of an instant, if any. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement : within:Span.t -> t -> t
(** [complement ~within s] is the part of [within] not covered by [s]. *)

val clip : Span.t -> t -> t
(** Restriction to a window. *)

val hull : t -> Span.t option
(** Smallest span covering the whole set, if non-empty. *)

val filter : (Span.t -> bool) -> t -> t
(** Keeps maximal spans satisfying the predicate.  The result is already
    canonical because dropping spans cannot create adjacency. *)

val longer_than : Time_us.t -> t -> t
(** Spans with [length > d]: used by detectors hunting for long gaps. *)

val fold : (Span.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Span.t -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
