type 'a t = (Span.t * 'a) array

let empty = [||]
let is_empty s = Array.length s = 0

let compare_event (sa, _) (sb, _) = Span.compare sa sb

let of_list events =
  let a = Array.of_list events in
  Array.stable_sort compare_event a;
  a

let to_list = Array.to_list
let cardinal = Array.length
let to_span_set s = Span_set.of_span_array (Array.map fst s)
let size s = Span_set.size (to_span_set s)
let map f s = Array.map (fun (sp, x) -> (sp, f x)) s

let map_spans f s =
  let a = Array.map (fun (sp, x) -> (f sp, x)) s in
  Array.stable_sort compare_event a;
  a

(* Count-then-fill (DESIGN.md, "Allocation discipline"): one counting
   pass, one pre-sized result array, no list intermediates.  Events are
   never mutated after construction, so the no-op cases share the input
   array. *)
let filter f s =
  let n = Array.length s in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let sp, x = s.(i) in
    if f sp x then incr count
  done;
  if !count = 0 then empty
  else if !count = n then s
  else begin
    let out = Array.make !count s.(0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let sp, x = s.(i) in
      if f sp x then begin
        out.(!k) <- s.(i);
        incr k
      end
    done;
    out
  end

let fold f s acc = Array.fold_left (fun acc (sp, x) -> f sp x acc) acc s
let iter f s = Array.iter (fun (sp, x) -> f sp x) s

let merge a b =
  let out = Array.append a b in
  Array.stable_sort compare_event out;
  out

let clip window s =
  let n = Array.length s in
  let count = ref 0 in
  for i = 0 to n - 1 do
    (* [overlaps] agrees with [inter] being [Some] and allocates
       nothing, so the counting pass is free. *)
    if Span.overlaps window (fst s.(i)) then incr count
  done;
  if !count = 0 then empty
  else begin
    let out = Array.make !count s.(0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let sp, x = s.(i) in
      match Span.inter window sp with
      | Some sp' ->
          out.(!k) <- (if Span.equal sp' sp then s.(i) else (sp', x));
          incr k
      | None -> ()
    done;
    out
  end

let durations s = List.map (fun (sp, _) -> Span.length sp) (to_list s)

let events_in window s =
  List.filter (fun (sp, _) -> Span.overlaps window sp) (to_list s)

(* Growable-array builder: an event costs its tuple plus amortized one
   slot, instead of a list cell per event plus a full copy in [build]. *)
type 'a builder = { mutable arr : (Span.t * 'a) array; mutable len : int }

let builder () = { arr = [||]; len = 0 }

let add b sp x =
  let cap = Array.length b.arr in
  if b.len = cap then begin
    let bigger = Array.make (if cap = 0 then 16 else 2 * cap) (sp, x) in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- (sp, x);
  b.len <- b.len + 1

let build b =
  let a = Array.sub b.arr 0 b.len in
  Array.stable_sort compare_event a;
  a

let pp pp_data ppf s =
  let pp_event ppf (sp, x) =
    Format.fprintf ppf "%a:%a" Span.pp sp pp_data x
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    (to_list s)
