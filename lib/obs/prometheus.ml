(* Prometheus text-format (version 0.0.4) exposition of a [Metrics]
   registry, plus low-level helpers for ad-hoc series (the serve
   daemon's rolling-window gauges).

   Formatting discipline matches [Metrics.snapshot_json]: floats print
   in canonical shortest round-trip form ([Canon], integer-valued ones
   as [x.0]), instruments are emitted in name order, and the stable
   section of a quiesced registry is therefore byte-identical across
   [--jobs]. *)

let prefix = "tdat_"

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
   lowercase names mangle by mapping every other character to '_'. *)
let mangle name =
  let buf = Buffer.create (String.length name + String.length prefix) in
  Buffer.add_string buf prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let add_float buf v =
  if Float.is_nan v then Buffer.add_string buf "NaN"
  else if v = Float.infinity then Buffer.add_string buf "+Inf"
  else if v = Float.neg_infinity then Buffer.add_string buf "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" v)
  else Buffer.add_string buf (Canon.to_string v)

(* Label values escape backslash, double quote and newline. *)
let add_label_value buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          add_label_value buf v)
        labels;
      Buffer.add_char buf '}'

let add_header buf ~name ~kind =
  Buffer.add_string buf "# TYPE ";
  Buffer.add_string buf (mangle name);
  Buffer.add_char buf ' ';
  Buffer.add_string buf kind;
  Buffer.add_char buf '\n'

let add_sample buf ~name ?(suffix = "") ?(labels = []) value =
  Buffer.add_string buf (mangle name);
  Buffer.add_string buf suffix;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let add_gauge buf ~name ?(labels = []) v =
  let vbuf = Buffer.create 24 in
  add_float vbuf v;
  add_sample buf ~name ~labels (Buffer.contents vbuf)

let add_view buf ~name (v : Metrics.view) =
  match v with
  | Metrics.Counter_v n ->
      add_header buf ~name ~kind:"counter";
      add_sample buf ~name ~suffix:"_total" (string_of_int n)
  | Metrics.Gauge_v g ->
      add_header buf ~name ~kind:"gauge";
      add_gauge buf ~name g
  | Metrics.Histogram_v { v_count; v_sum; v_buckets } ->
      add_header buf ~name ~kind:"histogram";
      let cumulative = ref 0 in
      Array.iter
        (fun (bound, c) ->
          cumulative := !cumulative + c;
          let le = Buffer.create 24 in
          add_float le bound;
          add_sample buf ~name ~suffix:"_bucket"
            ~labels:[ ("le", Buffer.contents le) ]
            (string_of_int !cumulative))
        v_buckets;
      let sum = Buffer.create 24 in
      add_float sum v_sum;
      add_sample buf ~name ~suffix:"_sum" (Buffer.contents sum);
      add_sample buf ~name ~suffix:"_count" (string_of_int v_count)

let of_registry ?(stable_only = false) r =
  let buf = Buffer.create 2048 in
  let () =
    Metrics.fold_entries ~stable_only r ~init:() ~f:(fun () ~name ~stable v ->
        ignore stable;
        add_view buf ~name v)
  in
  Buffer.contents buf
