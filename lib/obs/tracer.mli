(** Span-based stage tracer emitting Chrome [trace_event] JSON.

    Spans ({!Span.with_}) record begin/end ("B"/"E") events with
    microsecond wall-clock timestamps into per-domain buffers, so
    tracing from pool workers never contends.  {!write} merges the
    buffers, sorts by timestamp, and writes a file loadable directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Disabled (the default), a span is one atomic load and a branch
    around the traced function. *)

type ph = B | E

type event = {
  name : string;
  ph : ph;
  ts : float;  (** Microseconds since the epoch. *)
  tid : int;  (** The recording domain's id. *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events (tests, or between runs). *)

val begin_span : string -> unit
val end_span : string -> unit
(** Raw event emission — prefer {!Span.with_}, which guarantees
    balance. *)

val events : unit -> event list
(** All recorded events merged across domains, sorted by timestamp
    (events of one domain keep their emission order). *)

val balanced : unit -> bool
(** True when, per domain, the events form properly nested
    begin/end pairs with matching names. *)

val to_json : unit -> string
(** The Chrome trace: [{"traceEvents": [...]}]. *)

val write : string -> unit
(** {!to_json} to a file. *)
