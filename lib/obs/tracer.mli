(** Span-based stage tracer emitting Chrome [trace_event] JSON.

    Spans ({!Span.with_}) record begin/end ("B"/"E") events with
    microsecond wall-clock timestamps into per-domain buffers, so
    tracing from pool workers never contends.  {!write} merges the
    buffers, sorts by timestamp, and writes a file loadable directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    {b Trace context.}  A domain-local trace id ({!with_context})
    stamps every event emitted while it is set, rendered as
    [args.trace] in the Chrome output.  The serve daemon sets it to the
    request's trace id before running a job, so one request's
    queue-wait/decode/analyze/render spans form a single connected tree
    even when many requests interleave on the same worker domain.

    Disabled (the default), a span is one atomic load and a branch
    around the traced function. *)

type ph = B | E | X  (** Begin / End / Complete (self-contained). *)

type event = {
  name : string;
  ph : ph;
  ts : float;  (** Microseconds since the epoch. *)
  dur : float;  (** Duration in microseconds; [X] events only, else 0. *)
  tid : int;  (** The recording domain's id. *)
  trace : string option;  (** The trace context at emission time. *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events (tests, or between runs). *)

val begin_span : string -> unit
val end_span : string -> unit
(** Raw event emission — prefer {!Span.with_}, which guarantees
    balance. *)

val complete_span : name:string -> begin_us:float -> dur_us:float -> unit
(** One Chrome "X" (complete) event.  For retroactive spans — e.g.
    queue wait, whose extent is only known once the job starts — where
    a B event with a past timestamp would break the nesting of events
    already recorded on this domain.  Negative durations clamp to 0. *)

val with_context : string option -> (unit -> 'a) -> 'a
(** Run the function with the domain-local trace context set (saved and
    restored around the call, exception-safe). *)

val current_context : unit -> string option

val events : unit -> event list
(** All recorded events merged across domains, sorted by timestamp
    (events of one domain keep their emission order). *)

val balanced : unit -> bool
(** True when, per domain, the B/E events form properly nested pairs
    with matching names ([X] events are self-contained and ignored). *)

val to_json : unit -> string
(** The Chrome trace: [{"traceEvents": [...]}]. *)

val write : string -> unit
(** {!to_json} to a file. *)
