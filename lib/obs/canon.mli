(** Canonical (shortest round-trip) decimal rendering of floats.

    Three emitters in this repository print floats into byte-compared
    output — the serve-protocol JSON codec, the metrics snapshot, and
    the differential-analysis experiment reports — and all three need
    the same property: the printed form must read back as the exact
    same IEEE 754 value, without dragging [0.30000000000000004]-style
    noise into diffs and byte-identity checks when
    [0.30000000000000003] was never a distinct observable value.  The
    canonical form is the shortest of [%.15g] / [%.16g] / [%.17g] that
    round-trips, which is unique per value and stable across platforms
    using correctly-rounded [strtod]. *)

val to_string : float -> string
(** Shortest decimal string [s] with [float_of_string s] equal to the
    argument bit for bit (so [-0.] prints ["-0"], distinct from ["0"]).
    Finite values only: callers must handle NaN and infinities first
    (JSON, for instance, has no literal for either). *)
