(** Structured stage spans over {!Tracer}. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a [name] span: a "B" event before,
    an "E" event after — also on exception, so recorded spans are
    always balanced.  When the tracer is disabled this is [f ()] after
    one atomic load. *)

val timed : name:string -> (unit -> 'a) -> 'a * float
(** Like {!with_} but unconditionally measures: returns [f]'s result
    and its wall-clock duration in seconds.  The span events are still
    emitted only when the tracer is enabled. *)
