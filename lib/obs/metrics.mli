(** Metrics registry: counters, gauges, and fixed-bucket histograms.

    Instruments are registered by name (idempotently — the second
    [make] with the same name returns the first instrument) in a
    registry, usually {!default}.  A registry starts {e disabled}:
    every update on a disabled registry is one atomic load and a branch
    — no time reading, no allocation — so the instrumentation of hot
    paths (pcap records, simulator events, pool chunks) compiles to
    near-zero cost until [--metrics] turns it on.

    {b Determinism.}  Each instrument is either {e stable} (the default)
    or {e volatile} ([~stable:false]).  Stable instruments may only be
    fed input-derived values (record counts, byte sizes, packet counts):
    their updates are commutative atomic operations, so a snapshot's
    stable section is byte-identical whatever [--jobs] value produced
    it.  Wall-clock-derived values (durations, rates, utilizations) and
    configuration-dependent ones (worker counts) must go to volatile
    instruments.  [snapshot_json ~stable_only:true] is the form the
    tests compare across jobs values. *)

type registry

val create : unit -> registry
(** A fresh, disabled registry (tests). *)

val default : registry
(** The process-wide registry every library instrument registers in. *)

val set_enabled : registry -> bool -> unit
val enabled : registry -> bool

val reset : registry -> unit
(** Zero every instrument (counts, sums, gauge values).  Registration
    is kept. *)

module Counter : sig
  type t

  val make : ?registry:registry -> ?stable:bool -> string -> t
  (** Idempotent by name.
      @raise Invalid_argument when the name is already registered as a
      different instrument kind. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative amount — counters are
      monotone. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?registry:registry -> ?stable:bool -> string -> t
  val set : t -> float -> unit
  val set_max : t -> float -> unit
  (** High-water update: keeps the maximum of the current and given
      values. *)

  val value : t -> float
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Powers of ten: 1, 10, ... 1e6. *)

  val time_us_buckets : float array
  (** A 1-2-5 ladder from 10 us to 10 s, for duration histograms. *)

  val size_buckets : float array
  (** A 1-2-5 ladder from 64 to 16 Mi, for byte/packet-count
      histograms. *)

  val make :
    ?registry:registry -> ?stable:bool -> ?buckets:float array -> string -> t
  (** [buckets] are the inclusive upper bounds, strictly increasing; an
      implicit overflow bucket catches everything above the last bound.
      @raise Invalid_argument on empty or non-increasing bounds, or on a
      name collision with different buckets or kind. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val bucket_counts : t -> (float * int) array
  (** [(upper_bound, count)] per bucket, the overflow bucket last with
      bound [infinity]. *)
end

val find_counter : registry -> string -> Counter.t option
val find_gauge : registry -> string -> Gauge.t option
val find_histogram : registry -> string -> Histogram.t option

(** A read-only view of one instrument, for exposition encoders
    ({!Prometheus}, dashboards) built outside this module. *)
type view =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      v_count : int;
      v_sum : float;
      v_buckets : (float * int) array;
          (** [(upper_bound, count)] per bucket, overflow last with
              bound [infinity]. *)
    }

val fold_entries :
  ?stable_only:bool ->
  registry ->
  init:'a ->
  f:('a -> name:string -> stable:bool -> view -> 'a) ->
  'a
(** Fold over the registry's instruments in name order.  With
    [stable_only], volatile instruments are skipped.  Values are read
    without quiescing writers — exact only when nothing is updating. *)

val snapshot_json : ?stable_only:bool -> registry -> string
(** The registry as a deterministic JSON object: metrics sorted by
    name, fixed number formatting, a ["stable"] section and (unless
    [stable_only]) a ["volatile"] one. *)
