(** Wall-clock readings for the observability layer.

    Centralized here so no instrumented library needs its own [unix]
    dependency, and so every metric, span and timing table reads the
    same clock. *)

val now_us : unit -> float
(** Microseconds since the epoch, as a float (sub-microsecond precision
    is preserved when the platform provides it). *)

val now_s : unit -> float
(** Seconds since the epoch. *)

(** A hand-cranked monotone clock for tests.  {!Window.create} and
    friends accept a [now] closure; passing {!Manual.now_s} makes
    window-rotation boundaries exact and deterministic instead of
    sleep-dependent. *)
module Manual : sig
  type t

  val create : ?start_s:float -> unit -> t
  (** A manual clock reading [start_s] (default [0.]). *)

  val advance : t -> float -> unit
  (** Move the clock forward by the given number of seconds.
      @raise Invalid_argument on a negative step. *)

  val set : t -> float -> unit
  (** Jump to an absolute reading.
      @raise Invalid_argument when it would move the clock backward. *)

  val now_s : t -> unit -> float
  (** A [now] closure reading this clock, in seconds. *)

  val now_us : t -> unit -> float
  (** A [now] closure reading this clock, in microseconds. *)
end
