(** Wall-clock readings for the observability layer.

    Centralized here so no instrumented library needs its own [unix]
    dependency, and so every metric, span and timing table reads the
    same clock. *)

val now_us : unit -> float
(** Microseconds since the epoch, as a float (sub-microsecond precision
    is preserved when the platform provides it). *)

val now_s : unit -> float
(** Seconds since the epoch. *)
