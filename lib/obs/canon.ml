(* Shortest round-trip float rendering (DESIGN.md, "Differential
   analysis").

   [%.17g] always round-trips but over-prints (0.1 becomes
   0.10000000000000001); [%.15g] under-prints for about half of the
   value space.  Trying 15, then 16, then 17 significant digits and
   keeping the first form that reads back bit-identically yields the
   shortest correctly-rounding decimal — the same scheme Ryu-less
   printers (Python < 3.1, older JSON emitters) used, and enough for
   byte-compared reports: equal floats always print equally, distinct
   floats never collide. *)

let bits = Int64.bits_of_float

let to_string v =
  (* Bit comparison, not [=]: [-0.] must survive as ["-0"], and a NaN
     fed here despite the contract still terminates (via %.17g). *)
  let b = bits v in
  let s15 = Printf.sprintf "%.15g" v in
  if Int64.equal (bits (float_of_string s15)) b then s15
  else
    let s16 = Printf.sprintf "%.16g" v in
    if Int64.equal (bits (float_of_string s16)) b then s16
    else Printf.sprintf "%.17g" v
