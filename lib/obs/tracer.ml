type ph = B | E | X

type event = {
  name : string;
  ph : ph;
  ts : float;
  dur : float;  (* X events only; 0. for B/E *)
  tid : int;
  trace : string option;
}

let on = Atomic.make false
let set_enabled v = Atomic.set on v
let enabled () = Atomic.get on

(* Every domain records into its own buffer (a reversed event list
   reached through a DLS key), so emission is contention-free; the
   buffers register themselves in [buffers] on first use and survive
   their domain's termination. *)
(* Worker-reachable by design: this is the per-domain buffer registry.
   Registration (the only mutation) happens under [bmutex]; recording
   itself goes to the domain-local ref, never through this list.  The
   L007 allowlist asserts exactly that discipline. *)
let buffers : event list ref list ref =
  ref [] [@@tdat.lint.allow "L007"]

let bmutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let r = ref [] in
      Mutex.lock bmutex;
      buffers := r :: !buffers;
      Mutex.unlock bmutex;
      r)

(* The current request's trace id, domain-local so a pool worker
   executing a traced job stamps every span it emits — this is what
   connects queue-wait, decode, analyze and render into one tree per
   request. *)
let ctx_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_context () = !(Domain.DLS.get ctx_key)

let with_context trace f =
  let r = Domain.DLS.get ctx_key in
  let saved = !r in
  r := trace;
  Fun.protect ~finally:(fun () -> r := saved) f

let push e =
  let buf = Domain.DLS.get key in
  buf := e :: !buf

let emit ph name =
  push
    {
      name;
      ph;
      ts = Clock.now_us ();
      dur = 0.;
      tid = (Domain.self () :> int);
      trace = current_context ();
    }

let begin_span name = if Atomic.get on then emit B name
let end_span name = if Atomic.get on then emit E name

(* Retroactive spans (queue wait, measured only once the job starts)
   emit as Chrome "X" complete events: a begin timestamp in the past
   would break the B/E nesting of events already recorded on this
   domain, while an X event carries its own duration and nests
   freely. *)
let complete_span ~name ~begin_us ~dur_us =
  if Atomic.get on then
    push
      {
        name;
        ph = X;
        ts = begin_us;
        dur = (if dur_us < 0. then 0. else dur_us);
        tid = (Domain.self () :> int);
        trace = current_context ();
      }

let clear () =
  Mutex.lock bmutex;
  List.iter (fun r -> r := []) !buffers;
  Mutex.unlock bmutex

let events () =
  Mutex.lock bmutex;
  let all = List.concat_map (fun r -> List.rev !r) !buffers in
  Mutex.unlock bmutex;
  (* Stable: same-timestamp events of one domain keep emission order. *)
  List.stable_sort (fun a b -> Float.compare a.ts b.ts) all

let balanced () =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun e ->
      let stack = Option.value (Hashtbl.find_opt stacks e.tid) ~default:[] in
      match e.ph with
      | B -> Hashtbl.replace stacks e.tid (e.name :: stack)
      | E -> (
          match stack with
          | top :: rest when String.equal top e.name ->
              Hashtbl.replace stacks e.tid rest
          | _ -> ok := false)
      | X -> ())
    (events ());
  Hashtbl.iter (fun _ stack -> if stack <> [] then ok := false) stacks;
  !ok

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json () =
  let evs = events () in
  let buf = Buffer.create (256 + (96 * List.length evs)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n{\"name\":";
      add_escaped buf e.name;
      Buffer.add_string buf ",\"cat\":\"tdat\",\"ph\":";
      Buffer.add_string buf
        (match e.ph with B -> "\"B\"" | E -> "\"E\"" | X -> "\"X\"");
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f" e.ts);
      (match e.ph with
      | X -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" e.dur)
      | B | E -> ());
      (match e.trace with
      | Some t ->
          Buffer.add_string buf ",\"args\":{\"trace\":";
          add_escaped buf t;
          Buffer.add_char buf '}'
      | None -> ());
      Buffer.add_string buf (Printf.sprintf ",\"pid\":0,\"tid\":%d}" e.tid))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ()))
