let now_s () = Unix.gettimeofday ()
let now_us () = Unix.gettimeofday () *. 1e6

(* A hand-cranked monotone clock for tests: rolling windows and rate
   math take [now] as a closure, so injecting one of these makes
   rotation boundaries exact instead of sleep-dependent. *)
module Manual = struct
  type t = { mutable t_s : float }

  let create ?(start_s = 0.) () = { t_s = start_s }

  let advance t dt_s =
    if dt_s < 0. then invalid_arg "Clock.Manual.advance: negative step";
    t.t_s <- t.t_s +. dt_s

  let set t s =
    if s < t.t_s then invalid_arg "Clock.Manual.set: clock must be monotone";
    t.t_s <- s

  let now_s t () = t.t_s
  let now_us t () = t.t_s *. 1e6
end
