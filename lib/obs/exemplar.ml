(* Slow-request exemplar buffer: the K worst requests observed so far,
   each carrying its trace id, per-stage timings and the raw request
   JSON line — so a slow request in a long-running daemon is
   explainable (and replayable, like the experiment mismatch corpus)
   after the fact.

   The list stays sorted worst-first and is capped at [capacity], so
   [note] is O(K) under one mutex — negligible at request rate. *)

type entry = {
  endpoint : string;
  trace : string;
  duration_us : float;
  at_s : float;
  stages : (string * float) list;  (* stage name -> microseconds *)
  request : string;  (* raw request JSON line, replayable *)
}

type t = { capacity : int; m : Mutex.t; mutable entries : entry list }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Exemplar.create: capacity must be positive";
  { capacity; m = Mutex.create (); entries = [] }

let capacity t = t.capacity

(* Worst-first, ties broken by recency (newer first) so repeated
   equal-duration requests rotate through the buffer. *)
let insert capacity entries e =
  let rec go n = function
    | [] -> if n < capacity then [ e ] else []
    | x :: rest ->
        if n >= capacity then []
        else if e.duration_us >= x.duration_us then
          e :: take (capacity - n - 1) (x :: rest)
        else x :: go (n + 1) rest
  and take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  go 0 entries

let note t e =
  Mutex.lock t.m;
  t.entries <- insert t.capacity t.entries e;
  Mutex.unlock t.m

let worst t =
  Mutex.lock t.m;
  let es = t.entries in
  Mutex.unlock t.m;
  es

let count t = List.length (worst t)

let clear t =
  Mutex.lock t.m;
  t.entries <- [];
  Mutex.unlock t.m
