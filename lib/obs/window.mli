(** Rolling time-windowed histogram.

    A ring of [slots] fixed-bucket histograms, each covering [slot_s]
    seconds of wall time, rotated lazily on a coarse clock: an
    observation lands in the slot for the current epoch
    ([now / slot_s]), clearing the slot first if its epoch has fallen
    out of the window.  Reads merge only the slots still inside the
    window, so {!percentile} answers "over the last
    [slots * slot_s] seconds" — a time-varying view, not a lifetime
    aggregate.

    All operations are mutex-guarded; observations arrive at request
    rate, so contention is negligible.  Values produced here are
    wall-clock-derived and therefore {e volatile} in the
    stable/volatile discipline of {!Metrics}: never compare them
    across [--jobs]. *)

type t

val create :
  ?now:(unit -> float) ->
  ?buckets:float array ->
  slots:int ->
  slot_s:float ->
  unit ->
  t
(** [create ~slots ~slot_s ()] covers a rolling window of
    [slots * slot_s] seconds.  [now] (default {!Clock.now_s}) is the
    clock, injectable for tests ({!Clock.Manual}); it must be monotone.
    [buckets] are inclusive upper bounds, strictly increasing (default
    {!Metrics.Histogram.time_us_buckets}); an implicit overflow bucket
    catches everything above the last bound.
    @raise Invalid_argument on non-positive [slots] / [slot_s] or bad
    bounds. *)

val observe : t -> float -> unit
(** Record a value in the slot for the current epoch. *)

val count : t -> int
(** Observations currently inside the window. *)

val sum : t -> float
(** Sum of the observations currently inside the window. *)

val rate : t -> float
(** [count / window_s]: mean arrivals per second over the window. *)

val window_s : t -> float
(** The window span in seconds ([slots * slot_s]). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [[0, 1]]: the upper bound of the
    bucket holding the p-quantile observation in the window, [0.] when
    the window is empty.  Observations above the last bound report the
    last finite bound (a deliberate under-estimate).
    @raise Invalid_argument when [p] is outside [[0, 1]]. *)

val clear : t -> unit
(** Forget every observation (tests). *)
