(** Slow-request exemplar buffer.

    Keeps the K worst requests seen so far, worst first, each with its
    trace id, per-stage timings and the raw request JSON line — the
    serve analogue of the experiment mismatch corpus: a slow request in
    a long-running daemon stays explainable (and replayable) after the
    fact.

    Entries carry wall-clock durations, so everything here is
    {e volatile} in the {!Metrics} stable/volatile discipline. *)

type entry = {
  endpoint : string;  (** Protocol verb ("analyze", "study", ...). *)
  trace : string;  (** The request's trace id. *)
  duration_us : float;  (** Queue-wait + execution, microseconds. *)
  at_s : float;  (** Completion time, seconds since the epoch. *)
  stages : (string * float) list;
      (** Per-stage breakdown, [(stage, microseconds)]. *)
  request : string;  (** Raw request JSON line, replayable as-is. *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument on a non-positive capacity. *)

val capacity : t -> int

val note : t -> entry -> unit
(** Offer an entry; it is kept only while it ranks among the K worst.
    Equal durations favor the newer entry. *)

val worst : t -> entry list
(** Current entries, worst first (at most [capacity]). *)

val count : t -> int

val clear : t -> unit
(** Forget every entry (tests, or between benchmark phases). *)
