(** Prometheus text-format (0.0.4) exposition.

    Encodes a {!Metrics} registry — and, via the buffer helpers, ad-hoc
    series such as the serve daemon's rolling-window gauges — as
    Prometheus exposition text.  Formatting is deterministic: metrics
    in name order, floats in canonical shortest round-trip form
    ({!Canon}, integer-valued ones as [x.0]), so the stable section of
    a quiesced registry is byte-identical across [--jobs]. *)

val mangle : string -> string
(** A dotted lowercase instrument name as a Prometheus metric name:
    prefixed with [tdat_], every character outside
    [[a-zA-Z0-9_:]] mapped to ['_'] (so ["serve.request_us"] becomes
    ["tdat_serve_request_us"]). *)

val of_registry : ?stable_only:bool -> Metrics.registry -> string
(** The registry in exposition text: a [# TYPE] line per instrument,
    counters with a [_total] suffix, histograms as cumulative
    [_bucket{le="..."}] samples (last [le="+Inf"]) plus [_sum] and
    [_count].  With [stable_only], volatile instruments are skipped —
    the form compared across [--jobs]. *)

(** {2 Buffer helpers for ad-hoc series} *)

val add_header : Buffer.t -> name:string -> kind:string -> unit
(** [# TYPE <mangled name> <kind>]. *)

val add_gauge :
  Buffer.t -> name:string -> ?labels:(string * string) list -> float -> unit
(** One gauge sample line, optionally labeled
    ([name{k="v",...} value]).  Label values are escaped per the
    exposition format. *)
