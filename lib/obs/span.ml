(* This module IS the forwarding shim between a caller's literal
   [~name] and the tracer — the one place a dynamic name argument is
   the point (L011 checks the callers instead). *)
[@@@tdat.lint.allow "L011"]

let with_ ~name f =
  if not (Tracer.enabled ()) then f ()
  else begin
    Tracer.begin_span name;
    Fun.protect ~finally:(fun () -> Tracer.end_span name) f
  end

let timed ~name f =
  Tracer.begin_span name;
  let t0 = Clock.now_us () in
  Fun.protect
    ~finally:(fun () -> Tracer.end_span name)
    (fun () ->
      let r = f () in
      (r, (Clock.now_us () -. t0) /. 1e6))
