type level = Error | Warn | Info | Debug

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Ok (Some Error)
  | "warn" | "warning" -> Ok (Some Warn)
  | "info" -> Ok (Some Info)
  | "debug" -> Ok (Some Debug)
  | "quiet" | "off" | "none" -> Ok None
  | other ->
      Result.Error
        (Printf.sprintf
           "unknown log level %S (expected quiet, error, warn, info or debug)"
           other)

let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

(* -1 = silent.  An atomic int so [would_log] is one load + compare from
   any domain. *)
let current = Atomic.make (rank Warn)

let set_level = function
  | None -> Atomic.set current (-1)
  | Some l -> Atomic.set current (rank l)

let current_level () =
  match Atomic.get current with
  | 0 -> Some Error
  | 1 -> Some Warn
  | 2 -> Some Info
  | 3 -> Some Debug
  | _ -> None

let would_log l = rank l <= Atomic.get current

type dest = [ `Stderr | `File of string | `Buffer of Buffer.t | `Null ]

type sink =
  | To_channel of out_channel  (* not owned: stderr *)
  | To_file of out_channel     (* owned: closed on [close] *)
  | To_buffer of Buffer.t
  | To_null

(* Worker-reachable by design: pool workers log.  Every read and write
   of [sink] happens under [mutex] below, which is what the L007
   allowlist asserts. *)
let sink = ref (To_channel Stdlib.stderr) [@@tdat.lint.allow "L007"]

(* One mutex serializes emission from concurrent domains (pool workers
   log too); it also guards [sink] swaps. *)
let mutex = Mutex.create ()

let close_current_file () =
  match !sink with
  | To_file oc ->
      close_out_noerr oc;
      sink := To_channel Stdlib.stderr
  | To_channel _ | To_buffer _ | To_null -> ()

let set_destination (d : dest) =
  Mutex.lock mutex;
  close_current_file ();
  (sink :=
     match d with
     | `Stderr -> To_channel Stdlib.stderr
     | `Null -> To_null
     | `Buffer b -> To_buffer b
     | `File path ->
         To_file (open_out_gen [ Open_append; Open_creat; Open_text ] 0o644 path));
  Mutex.unlock mutex

let close () =
  Mutex.lock mutex;
  close_current_file ();
  Mutex.unlock mutex

(* key=value with the value quoted only when it would not survive
   whitespace splitting. *)
let append_kv buf (k, v) =
  Buffer.add_char buf ' ';
  Buffer.add_string buf k;
  Buffer.add_char buf '=';
  let needs_quote =
    v = "" || String.exists (fun c -> c = ' ' || c = '"' || c = '\n') v
  in
  if needs_quote then begin
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.add_char buf '"'
  end
  else Buffer.add_string buf v

let emit level kv msg =
  let buf = Buffer.create (64 + String.length msg) in
  Buffer.add_string buf "tdat: [";
  Buffer.add_string buf (level_name level);
  Buffer.add_string buf "] ";
  Buffer.add_string buf msg;
  List.iter (append_kv buf) kv;
  Buffer.add_char buf '\n';
  let line = Buffer.contents buf in
  Mutex.lock mutex;
  (match !sink with
  | To_channel oc | To_file oc ->
      output_string oc line;
      flush oc
  | To_buffer b -> Buffer.add_string b line
  | To_null -> ());
  Mutex.unlock mutex

type ('a, 'b) msgf =
  (?kv:(string * string) list ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a) ->
  'b

let kmsg level msgf =
  if would_log level then
    msgf (fun ?(kv = []) fmt ->
        Format.kasprintf (fun msg -> emit level kv msg) fmt)

let err msgf = kmsg Error msgf
let warn msgf = kmsg Warn msgf
let info msgf = kmsg Info msgf
let debug msgf = kmsg Debug msgf
