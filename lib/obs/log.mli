(** Leveled, structured logging for the T-DAT libraries.

    Library code must route diagnostics through this module instead of
    writing to stderr directly (tdat-lint rule L006 enforces it): the
    CLI's [--log-level] then filters uniformly, and every line carries
    machine-splittable [key=value] pairs.

    The API is continuation-based (in the style of the [logs] library):
    the message closure only runs when the level is enabled, so a
    disabled call costs one atomic load and a branch — no formatting,
    no string allocation.

    {[
      Tdat_obs.Log.warn (fun m ->
          m ~kv:[ ("file", path); ("record", string_of_int i) ]
            "truncated record");
    ]} *)

type level = Error | Warn | Info | Debug

val level_name : level -> string
(** ["error"], ["warn"], ["info"], ["debug"]. *)

val level_of_string : string -> (level option, string) result
(** Parses ["error"], ["warn"]/["warning"], ["info"], ["debug"] and
    ["quiet"]/["off"] (-> [None]).  [Error] carries a usage message. *)

val set_level : level option -> unit
(** [None] silences everything.  The default is [Some Warn]. *)

val current_level : unit -> level option

val would_log : level -> bool
(** True when a message at [level] would be emitted — the guard to use
    around expensive context gathering in hot paths. *)

type dest = [ `Stderr | `File of string | `Buffer of Buffer.t | `Null ]

val set_destination : dest -> unit
(** Default [`Stderr].  [`File path] appends to [path] (created if
    missing); a previously opened file destination is closed first.
    [`Buffer b] is for tests. *)

val close : unit -> unit
(** Flush and close a [`File] destination (no-op otherwise) and revert
    to [`Stderr]. *)

type ('a, 'b) msgf =
  (?kv:(string * string) list ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a) ->
  'b

val err : ('a, unit) msgf -> unit
val warn : ('a, unit) msgf -> unit
val info : ('a, unit) msgf -> unit
val debug : ('a, unit) msgf -> unit
