(* Instruments share their registry's [on] flag, so every update starts
   with one atomic load and a branch — the entire cost of disabled
   instrumentation.  All mutation is via [Atomic] operations that
   commute (fetch-and-add, max-CAS), so totals are scheduling-
   independent and stable snapshots are deterministic across [--jobs]. *)

type counter = { c_on : bool Atomic.t; c_v : int Atomic.t }
type gauge = { g_on : bool Atomic.t; g_v : float Atomic.t }

type histogram = {
  h_on : bool Atomic.t;
  bounds : float array;  (* inclusive upper bounds, strictly increasing *)
  counts : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type instr = C of counter | G of gauge | H of histogram

type entry = { name : string; stable : bool; instr : instr }

type registry = {
  mutable entries : entry list;  (* registration order; sorted on snapshot *)
  rmutex : Mutex.t;
  on : bool Atomic.t;
}

let create () =
  { entries = []; rmutex = Mutex.create (); on = Atomic.make false }

let default = create ()

let set_enabled r v = Atomic.set r.on v
let enabled r = Atomic.get r.on

(* Boxed-float atomic add/max: CAS on the physical box. *)
let rec float_add a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then float_add a x

let rec float_max a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then float_max a x

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

(* Registration is idempotent by name; a name may not change kind,
   stability, or bucket layout. *)
let register r name stable mk =
  Mutex.lock r.rmutex;
  let res =
    match List.find_opt (fun e -> String.equal e.name name) r.entries with
    | Some e -> `Existing e
    | None ->
        let e = { name; stable; instr = mk () } in
        r.entries <- e :: r.entries;
        `Fresh e
  in
  Mutex.unlock r.rmutex;
  res

let mismatch name wanted (e : entry) =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered as a %s, not a %s" name
       (kind_name e.instr) wanted)

module Counter = struct
  type t = counter

  let make ?(registry = default) ?(stable = true) name =
    match
      register registry name stable (fun () ->
          C { c_on = registry.on; c_v = Atomic.make 0 })
    with
    | `Fresh { instr = C c; _ } | `Existing { instr = C c; _ } -> c
    | `Fresh e | `Existing e -> mismatch name "counter" e

  let add c n =
    if n < 0 then
      invalid_arg (Printf.sprintf "Counter.add: negative amount %d" n);
    if Atomic.get c.c_on then ignore (Atomic.fetch_and_add c.c_v n)

  let incr c = if Atomic.get c.c_on then ignore (Atomic.fetch_and_add c.c_v 1)
  let value c = Atomic.get c.c_v
end

module Gauge = struct
  type t = gauge

  let make ?(registry = default) ?(stable = true) name =
    match
      register registry name stable (fun () ->
          G { g_on = registry.on; g_v = Atomic.make 0. })
    with
    | `Fresh { instr = G g; _ } | `Existing { instr = G g; _ } -> g
    | `Fresh e | `Existing e -> mismatch name "gauge" e

  let set g v = if Atomic.get g.g_on then Atomic.set g.g_v v
  let set_max g v = if Atomic.get g.g_on then float_max g.g_v v
  let value g = Atomic.get g.g_v
end

module Histogram = struct
  type t = histogram

  (* A read-only bound table: exposed as [float array] for
     [?buckets], never written (make copies it into the histogram's
     own layout).  Worker-reachable but write-free, hence the L007
     allowlist. *)
  let default_buckets =
    [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6 |] [@@tdat.lint.allow "L007"]

  (* A strictly increasing 1-2-5 ladder from [lo] to at most [hi]. *)
  let ladder lo hi =
    let rec go acc v =
      if v > hi then List.rev acc
      else
        let acc = v :: acc in
        let acc = if 2. *. v <= hi then (2. *. v) :: acc else acc in
        let acc = if 5. *. v <= hi then (5. *. v) :: acc else acc in
        go acc (10. *. v)
    in
    Array.of_list (go [] lo)

  let time_us_buckets = ladder 10. 1e7
  let size_buckets = ladder 64. 16_777_216.

  let make ?(registry = default) ?(stable = true)
      ?(buckets = default_buckets) name =
    if Array.length buckets = 0 then
      invalid_arg "Histogram.make: empty bucket bounds";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Histogram.make: bucket bounds must be strictly increasing")
      buckets;
    match
      register registry name stable (fun () ->
          H
            {
              h_on = registry.on;
              bounds = Array.copy buckets;
              counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              h_sum = Atomic.make 0.;
              h_count = Atomic.make 0;
            })
    with
    | `Fresh { instr = H h; _ } -> h
    | `Existing { instr = H h; _ } ->
        if
          Array.length h.bounds <> Array.length buckets
          || not (Array.for_all2 (fun a b -> Float.equal a b) h.bounds buckets)
        then
          invalid_arg
            (Printf.sprintf
               "Metrics: histogram %s re-registered with different buckets"
               name);
        h
    | `Fresh e | `Existing e -> mismatch name "histogram" e

  let bucket_index bounds v =
    (* First bound >= v; linear scan — bucket ladders are short. *)
    let n = Array.length bounds in
    let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe h v =
    if Atomic.get h.h_on then begin
      ignore (Atomic.fetch_and_add h.counts.(bucket_index h.bounds v) 1);
      float_add h.h_sum v;
      ignore (Atomic.fetch_and_add h.h_count 1)
    end

  let count h = Atomic.get h.h_count
  let sum h = Atomic.get h.h_sum

  let bucket_counts h =
    Array.init
      (Array.length h.counts)
      (fun i ->
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        (bound, Atomic.get h.counts.(i)))
end

let find r name =
  Mutex.lock r.rmutex;
  let e = List.find_opt (fun e -> String.equal e.name name) r.entries in
  Mutex.unlock r.rmutex;
  e

let find_counter r name =
  match find r name with Some { instr = C c; _ } -> Some c | _ -> None

let find_gauge r name =
  match find r name with Some { instr = G g; _ } -> Some g | _ -> None

let find_histogram r name =
  match find r name with Some { instr = H h; _ } -> Some h | _ -> None

(* --- iteration --------------------------------------------------------- *)

(* A read-only view of one instrument, for exposition encoders
   (Prometheus, dashboards) that live outside this module.  Counts and
   sums are read instrument-by-instrument without quiescing writers, so
   a view of a live registry is approximate; stable sections compared
   across [--jobs] are read quiesced by construction. *)
type view =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      v_count : int;
      v_sum : float;
      v_buckets : (float * int) array;
    }

let fold_entries ?(stable_only = false) r ~init ~f =
  Mutex.lock r.rmutex;
  let entries =
    List.sort (fun a b -> String.compare a.name b.name) r.entries
  in
  Mutex.unlock r.rmutex;
  List.fold_left
    (fun acc e ->
      if stable_only && not e.stable then acc
      else
        let v =
          match e.instr with
          | C c -> Counter_v (Atomic.get c.c_v)
          | G g -> Gauge_v (Atomic.get g.g_v)
          | H h ->
              Histogram_v
                {
                  v_count = Atomic.get h.h_count;
                  v_sum = Atomic.get h.h_sum;
                  v_buckets = Histogram.bucket_counts h;
                }
        in
        f acc ~name:e.name ~stable:e.stable v)
    init entries

let reset r =
  Mutex.lock r.rmutex;
  List.iter
    (fun e ->
      match e.instr with
      | C c -> Atomic.set c.c_v 0
      | G g -> Atomic.set g.g_v 0.
      | H h ->
          Array.iter (fun a -> Atomic.set a 0) h.counts;
          Atomic.set h.h_sum 0.;
          Atomic.set h.h_count 0)
    r.entries;
  Mutex.unlock r.rmutex

(* --- snapshot ---------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Gauge values, histogram sums and bucket bounds print in the
   canonical shortest round-trip form ([Canon]): the old [%.6f]
   truncation could render two distinct sums identically (masking an
   A007 divergence) and two equal-valued snapshots are still
   byte-identical.  The [.0] suffix keeps whole-valued floats visibly
   floats in the snapshot. *)
let add_float buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" v)
  else if Float.is_nan v || Float.abs v = Float.infinity then
    Buffer.add_string buf (Printf.sprintf "\"%h\"" v)
  else Buffer.add_string buf (Canon.to_string v)

let add_instr buf instr =
  match instr with
  | C c -> Buffer.add_string buf (Printf.sprintf
        "{ \"type\": \"counter\", \"value\": %d }" (Atomic.get c.c_v))
  | G g ->
      Buffer.add_string buf "{ \"type\": \"gauge\", \"value\": ";
      add_float buf (Atomic.get g.g_v);
      Buffer.add_string buf " }"
  | H h ->
      Buffer.add_string buf
        (Printf.sprintf "{ \"type\": \"histogram\", \"count\": %d, \"sum\": "
           (Atomic.get h.h_count));
      add_float buf (Atomic.get h.h_sum);
      Buffer.add_string buf ", \"buckets\": [";
      Array.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf "{ \"le\": ";
          if i < Array.length h.bounds then add_float buf h.bounds.(i)
          else Buffer.add_string buf "\"inf\"";
          Buffer.add_string buf (Printf.sprintf ", \"count\": %d }" (Atomic.get a)))
        h.counts;
      Buffer.add_string buf "] }"

let add_section buf label entries =
  Buffer.add_string buf "  ";
  add_escaped buf label;
  Buffer.add_string buf ": {";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      add_escaped buf e.name;
      Buffer.add_string buf ": ";
      add_instr buf e.instr)
    entries;
  Buffer.add_string buf "\n  }"

let snapshot_json ?(stable_only = false) r =
  Mutex.lock r.rmutex;
  let entries =
    List.sort (fun a b -> String.compare a.name b.name) r.entries
  in
  Mutex.unlock r.rmutex;
  let stable, volatile = List.partition (fun e -> e.stable) entries in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  add_section buf "stable" stable;
  if not stable_only then begin
    Buffer.add_string buf ",\n";
    add_section buf "volatile" volatile
  end;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
