(* Rolling time-windowed histogram: a ring of fixed-bucket histograms
   rotated on a coarse clock.  Each slot covers [slot_s] seconds of
   wall time; an observation lands in the slot for the current epoch
   ([now / slot_s]), lazily clearing slots whose epoch has fallen out
   of the window.  Reads merge the slots still inside the window, so
   percentiles answer "over the last [slots * slot_s] seconds", not
   "since the process started" — the lifetime aggregates the
   Lübben/Fidler benchmark critique warns against.

   A single mutex guards the ring.  Observations arrive at request
   rate (not packet rate), so contention is irrelevant; what matters
   is that rotation and merge see a consistent ring. *)

type slot = {
  mutable epoch : int;  (* -1 = never used *)
  counts : int array;  (* length bounds + 1; last = overflow *)
  mutable s_count : int;
  mutable s_sum : float;
}

type t = {
  bounds : float array;
  slots : slot array;
  slot_s : float;
  now : unit -> float;
  m : Mutex.t;
}

let create ?now ?buckets ~slots ~slot_s () =
  if slots <= 0 then invalid_arg "Window.create: slots must be positive";
  if slot_s <= 0. then invalid_arg "Window.create: slot_s must be positive";
  let bounds =
    match buckets with
    | Some b ->
        if Array.length b = 0 then
          invalid_arg "Window.create: empty bucket bounds";
        Array.iteri
          (fun i x ->
            if i > 0 && x <= b.(i - 1) then
              invalid_arg "Window.create: bucket bounds must be strictly increasing")
          b;
        Array.copy b
    | None -> Metrics.Histogram.time_us_buckets
  in
  let now = match now with Some f -> f | None -> Clock.now_s in
  {
    bounds;
    slots =
      Array.init slots (fun _ ->
          {
            epoch = -1;
            counts = Array.make (Array.length bounds + 1) 0;
            s_count = 0;
            s_sum = 0.;
          });
    slot_s;
    now;
    m = Mutex.create ();
  }

let window_s t = float_of_int (Array.length t.slots) *. t.slot_s

let bucket_index bounds v =
  (* First bound >= v; linear scan — bucket ladders are short. *)
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let epoch_of t = int_of_float (Float.floor (t.now () /. t.slot_s))

let slot_for t epoch =
  let s = t.slots.(epoch mod Array.length t.slots) in
  if s.epoch <> epoch then begin
    Array.fill s.counts 0 (Array.length s.counts) 0;
    s.s_count <- 0;
    s.s_sum <- 0.;
    s.epoch <- epoch
  end;
  s

let observe t v =
  Mutex.lock t.m;
  let s = slot_for t (epoch_of t) in
  let i = bucket_index t.bounds v in
  s.counts.(i) <- s.counts.(i) + 1;
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum +. v;
  Mutex.unlock t.m

let clear t =
  Mutex.lock t.m;
  Array.iter
    (fun s ->
      s.epoch <- -1;
      Array.fill s.counts 0 (Array.length s.counts) 0;
      s.s_count <- 0;
      s.s_sum <- 0.)
    t.slots;
  Mutex.unlock t.m

(* Merge the slots whose epoch is still inside the window ending at the
   current epoch.  Slots with stale epochs are read-skipped rather than
   cleared, so reads never mutate. *)
let merged t =
  Mutex.lock t.m;
  let cur = epoch_of t in
  let n = Array.length t.slots in
  let counts = Array.make (Array.length t.bounds + 1) 0 in
  let count = ref 0 and sum = ref 0. in
  Array.iter
    (fun s ->
      if s.epoch >= 0 && s.epoch > cur - n && s.epoch <= cur then begin
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts;
        count := !count + s.s_count;
        sum := !sum +. s.s_sum
      end)
    t.slots;
  Mutex.unlock t.m;
  (counts, !count, !sum)

let count t =
  let _, c, _ = merged t in
  c

let sum t =
  let _, _, s = merged t in
  s

let rate t = float_of_int (count t) /. window_s t

(* Percentile estimate from the merged bucket counts: the upper bound
   of the bucket containing the p-quantile observation.  The overflow
   bucket reports the last finite bound (a deliberate under-estimate:
   bounded, plottable, and still "at least this slow").  Empty window
   -> 0. *)
let percentile t p =
  if p < 0. || p > 1. then invalid_arg "Window.percentile: p outside [0,1]";
  let counts, total, _ = merged t in
  if total = 0 then 0.
  else begin
    let target =
      let r = int_of_float (Float.ceil (p *. float_of_int total)) in
      if r < 1 then 1 else if r > total then total else r
    in
    let nb = Array.length t.bounds in
    let rec go i seen =
      if i >= Array.length counts then t.bounds.(nb - 1)
      else
        let seen = seen + counts.(i) in
        if seen >= target then
          if i < nb then t.bounds.(i) else t.bounds.(nb - 1)
        else go (i + 1) seen
    in
    go 0 0
  end
