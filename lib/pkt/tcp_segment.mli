(** A sniffed TCP segment — the unit of every trace in this repository.

    Sequence and acknowledgment numbers are {e absolute stream offsets}
    starting at 0 at the SYN (an initial sequence number of 0), kept as
    native [int]s.  The pcap codec wraps them to 32 bits on the wire;
    table transfers are a few MB so they never wrap in practice. *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
}

val flags :
  ?syn:bool -> ?ack:bool -> ?fin:bool -> ?rst:bool -> ?psh:bool -> unit ->
  flags

val data_flags : flags
(** [ack + psh], the usual flags on a data segment. *)

val ack_flags : flags
(** Pure acknowledgment. *)

type t = {
  ts : Tdat_timerange.Time_us.t;  (** Sniffer timestamp. *)
  src : Endpoint.t;
  dst : Endpoint.t;
  seq : int;       (** First payload byte's stream offset. *)
  ack : int;       (** Next expected stream offset (valid when [flags.ack]). *)
  len : int;       (** Payload length in bytes. *)
  window : int;    (** Advertised receive window, bytes. *)
  flags : flags;
  mss_opt : int option;  (** MSS option, present on SYN segments. *)
  payload : string;
      (** Captured payload bytes; [""] when not materialized.  May be
          shorter than [len] when the capture snaplen clipped the
          segment — [len] always reflects the declared (on-the-wire)
          payload length. *)
}

val v :
  ts:Tdat_timerange.Time_us.t ->
  src:Endpoint.t ->
  dst:Endpoint.t ->
  seq:int ->
  ack:int ->
  ?len:int ->
  ?window:int ->
  ?flags:flags ->
  ?mss_opt:int ->
  ?payload:string ->
  unit ->
  t
(** [len] defaults to [String.length payload]; when both are given the
    payload may be shorter than [len] (snaplen-truncated capture) but
    never longer. *)

val seq_end : t -> int
(** [seq + len], the stream offset one past the last payload byte (SYN and
    FIN each also consume one sequence number on real wires; we exclude
    them from stream offsets for analysis simplicity). *)

val is_data : t -> bool
(** [len > 0]. *)

val is_pure_ack : t -> bool
(** An ACK that carries no payload and no SYN/FIN/RST. *)

val compare_ts : t -> t -> int
val pp : Format.formatter -> t -> unit
