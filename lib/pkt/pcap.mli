(** Streaming, fault-tolerant libpcap file codec.

    Writes traces as classic pcap files (microsecond timestamps, Ethernet
    link type) with fabricated Ethernet/IPv4/TCP headers, and reads them
    back — enough for [pcap2bgp] and the CLI to interoperate with
    tcpdump-style tooling on both synthetic and real traces.  Checksums
    are written as zero and ignored on read.

    Reading is {e streaming}: records are decoded one at a time from a
    reused buffer, so a multi-gigabyte capture is processed in memory
    proportional to its largest record.  It is also {e snaplen-correct}:
    a segment's [len] always comes from the declared IPv4/TCP header
    lengths ([ip_total - ihl - doff]), while its [payload] keeps only the
    bytes the sniffer captured — possibly fewer, when the capture used a
    small snaplen (tcpdump [-s]).  Sequence/outstanding/retransmission
    accounting downstream therefore stays exact on headers-only captures.

    Malformed input degrades gracefully: each problem produces a typed
    {!Diag.t} ([P0xx] codes, see DESIGN.md "Ingestion robustness") and the
    reader salvages every decodable record — a capture whose final record
    was cut off by killing tcpdump mid-write still yields all prior
    packets.  [?strict:true] (and the legacy {!decode} / {!of_file})
    instead fail on the first error- or warning-severity diagnostic.

    Sequence numbers are wrapped to 32 bits on write; reads return the raw
    32-bit values (traces produced by this repository never wrap). *)

exception Decode_error of string
(** Raised on malformed pcap input by {!decode} / {!of_file}, and by the
    other readers when [~strict:true]. *)

exception Encode_error of string
(** Raised by {!encode} / {!to_file} on segments that cannot be
    represented in a pcap file (negative timestamps, seconds beyond the
    unsigned 32-bit epoch, payload overflowing the IPv4 total length). *)

(** Typed per-record ingestion diagnostics — the same code/severity/
    message shape as [Tdat_audit.Diag], kept dependency-free here (the
    audit library layers on this one; [Tdat_audit.Ingest] lifts these
    into the audit report). *)
module Diag : sig
  type severity = Error | Warning | Info

  type t = {
    code : string;  (** Stable ingestion code, e.g. ["P005"]. *)
    severity : severity;
        (** [Error]: the file is not usable at all (bad magic, truncated
            global header, unsupported link type).  [Warning]: a record
            was malformed or truncated; salvage continues around it.
            [Info]: lossless notes (skipped non-IPv4 frames, VLAN tags,
            snaplen-clipping summary). *)
    record : int option;  (** 0-based index of the offending record. *)
    message : string;
  }

  val severity_name : severity -> string
  val is_error : t -> bool
  val pp : Format.formatter -> t -> unit
end

type stats = {
  records : int;  (** Complete records read. *)
  decoded : int;  (** TCP segments produced. *)
  skipped : int;  (** Records that produced no segment (non-TCP, malformed). *)
  clipped : int;
      (** Segments whose captured payload was shorter than the declared
          TCP length (snaplen truncation). *)
}

type result = { trace : Trace.t; diags : Diag.t list; stats : stats }

val encode : Trace.t -> string
(** Serializes a trace to pcap file bytes.
    @raise Encode_error on unrepresentable segments. *)

val decode : string -> Trace.t
(** Strict parse of pcap file bytes (both little- and big-endian files,
    µs or ns resolution; ns timestamps are truncated to µs).
    @raise Decode_error on malformed input.  Non-TCP packets are
    skipped. *)

val decode_result : ?strict:bool -> string -> result
(** Like {!decode} but fault-tolerant by default: salvages every
    decodable record and reports problems as diagnostics.  [~strict:true]
    raises {!Decode_error} on the first error/warning diagnostic. *)

val fold_string :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  string ->
  init:'a ->
  ('a -> Tcp_segment.t -> 'a) ->
  'a * stats
(** [fold_string data ~init f] decodes [data] one record at a time,
    folding [f] over the TCP segments in capture order.  Diagnostics are
    streamed to [on_diag] instead of being accumulated. *)

val fold_read :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  read:Ingest_io.read ->
  init:'a ->
  ('a -> Tcp_segment.t -> 'a) ->
  'a * stats
(** The generic streaming fold every other reader is built on: pull
    records through an arbitrary {!Ingest_io.read} (a custom transport,
    an instrumented source in tests).  The fold only ends the capture
    when [read] returns [0]. *)

val fold_channel :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  ?follow:Ingest_io.follow ->
  in_channel ->
  init:'a ->
  ('a -> Tcp_segment.t -> 'a) ->
  'a * stats
(** Streaming fold over a (buffered, binary) channel in bounded memory:
    the channel is read record by record into a reused frame buffer that
    never exceeds the largest record.  Reads are [EINTR]-safe and short
    reads are looped, so pipes and sockets never truncate a record; with
    [~follow] (see {!Ingest_io.follow_idle}) EOF polls the source
    instead of ending the capture — the tailing mode for a still-growing
    file. *)

val fold_fd :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  ?follow:Ingest_io.follow ->
  Unix.file_descr ->
  init:'a ->
  ('a -> Tcp_segment.t -> 'a) ->
  'a * stats
(** {!fold_channel} over a raw descriptor ([Unix.read]) — the right
    entry point for pipes, sockets and tailed files. *)

val fold_file :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  ?follow:Ingest_io.follow ->
  string ->
  init:'a ->
  ('a -> Tcp_segment.t -> 'a) ->
  'a * stats
(** {!fold_channel} on a freshly opened file, closed on return. *)

val to_file : string -> Trace.t -> unit
(** @raise Encode_error on unrepresentable segments. *)

val of_file : string -> Trace.t
(** Strict streaming read (legacy interface).
    @raise Decode_error on malformed input. *)

val read_file : ?strict:bool -> string -> result
(** Streaming read collecting the salvaged trace, all diagnostics (plus a
    final [P011] snaplen-clipping summary when applicable) and counters.
    Fault-tolerant unless [~strict:true]. *)
