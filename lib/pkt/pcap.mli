(** Minimal libpcap file codec.

    Writes traces as classic pcap files (microsecond timestamps, Ethernet
    link type) with fabricated Ethernet/IPv4/TCP headers, and reads them
    back — enough for [pcap2bgp] and the CLI to interoperate with
    tcpdump-style tooling on the synthetic traces.  Checksums are written
    as zero and ignored on read.

    Sequence numbers are wrapped to 32 bits on write; reads return the raw
    32-bit values (traces produced by this repository never wrap). *)

exception Decode_error of string
(** Raised by {!decode} / {!of_file} on malformed pcap input. *)

val encode : Trace.t -> string
(** Serializes a trace to pcap file bytes. *)

val decode : string -> Trace.t
(** Parses pcap file bytes (both little- and big-endian files, µs or ns
    resolution; ns timestamps are truncated to µs).
    @raise Decode_error on malformed input.  Non-TCP packets are
    skipped. *)

val to_file : string -> Trace.t -> unit
val of_file : string -> Trace.t
