(** An in-memory packet trace: time-ordered TCP segments plus the void
    periods during which the sniffer is known to have dropped packets
    (Section II-A: "tcpdump can sometimes drop packets and leaves void
    periods in the trace.  We exclude those periods"). *)

type t

val of_segments :
  ?voids:Tdat_timerange.Span_set.t -> Tcp_segment.t list -> t
(** Sorts by timestamp. *)

val segments : t -> Tcp_segment.t list
val voids : t -> Tdat_timerange.Span_set.t
val length : t -> int

val get : t -> int -> Tcp_segment.t
(** [get t i]: the [i]-th segment in time order.  With {!length}, the
    copy-free alternative to {!segments} on hot paths. *)

val iter : (Tcp_segment.t -> unit) -> t -> unit
(** Visit every segment in time order without materializing a list. *)

val total_bytes : t -> int
(** Sum of payload lengths. *)

val window : t -> Tdat_timerange.Span.t option
(** Span from first to last timestamp (inclusive end +1 µs). *)

val connections : t -> (Endpoint.t * Endpoint.t) list
(** Distinct unordered endpoint pairs, in first-appearance order. *)

val partition_connections : t -> ((Endpoint.t * Endpoint.t) * t) list
(** Bucket every segment into its connection in a single pass over the
    trace: one sub-trace (both directions, time order and voids
    inherited) per distinct unordered endpoint pair, in first-appearance
    order — the same keys, order and sub-traces that {!connections}
    followed by {!split_connection} would produce, at O(packets) instead
    of O(connections × packets). *)

val split_connection : t -> sender:Endpoint.t -> receiver:Endpoint.t -> t
(** Sub-trace of one connection (both directions); voids inherited.
    One O(packets) scan per call; prefer {!partition_connections} when
    extracting more than one connection. *)

val filter : (Tcp_segment.t -> bool) -> t -> t
val merge : t -> t -> t
val append : t -> Tcp_segment.t list -> t

val infer_sender : t -> (Endpoint.t * Endpoint.t) -> Flow.t
(** For a connection key, orient the flow: the endpoint that contributed
    the most payload bytes is the Sender.  Collectors never announce
    routes, so the orientation is unambiguous in BGP monitoring traces. *)
