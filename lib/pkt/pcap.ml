let magic_us = 0xA1B2C3D4l
let magic_ns = 0xA1B23C4Dl

let ethernet_header_len = 14
let ipv4_header_len = 20

(* Records claiming more captured bytes than this are treated as corrupt
   framing: no sane snaplen reaches 64 MB, and trusting a garbage length
   would make the reader allocate (and mis-skip) gigabytes. *)
let max_record_len = 0x0400_0000

exception Decode_error of string
exception Encode_error of string

(* --- diagnostics ----------------------------------------------------- *)

module Diag = struct
  type severity = Error | Warning | Info

  type t = {
    code : string;
    severity : severity;
    record : int option;
    message : string;
  }

  let make severity ?record ~code fmt =
    Format.kasprintf (fun message -> { code; severity; record; message }) fmt

  let error ?record ~code fmt = make Error ?record ~code fmt
  let warning ?record ~code fmt = make Warning ?record ~code fmt
  let info ?record ~code fmt = make Info ?record ~code fmt

  let severity_name = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "info"

  let is_error d = match d.severity with Error -> true | Warning | Info -> false

  (* Errors and warnings abort a strict decode; infos never do. *)
  let is_problem d =
    match d.severity with Error | Warning -> true | Info -> false

  let pp ppf d =
    match d.record with
    | Some i ->
        Format.fprintf ppf "%s %s [record %d] %s" d.code
          (severity_name d.severity) i d.message
    | None ->
        Format.fprintf ppf "%s %s %s" d.code (severity_name d.severity)
          d.message
end

(* --- observability ----------------------------------------------------

   Reader throughput instruments (DESIGN.md, "Observability").  Record,
   segment, skip and byte counters are stable — pure functions of the
   input capture — while the records-per-second gauge is wall-clock and
   therefore volatile.  With metrics disabled each point costs one
   atomic load. *)

module Obs = Tdat_obs.Metrics

let m_records = Obs.Counter.make "pcap.records"
let m_segments = Obs.Counter.make "pcap.segments"
let m_skipped = Obs.Counter.make "pcap.skipped"
let m_bytes = Obs.Counter.make "pcap.bytes"

let h_record_bytes =
  Obs.Histogram.make ~buckets:Obs.Histogram.size_buckets "pcap.record_bytes"

let g_records_per_s = Obs.Gauge.make ~stable:false "pcap.records_per_s"

(* --- encoding --------------------------------------------------------- *)

let encode_packet buf (s : Tcp_segment.t) =
  if s.ts < 0 then
    raise (Encode_error (Printf.sprintf "Pcap.encode: negative timestamp %d" s.ts));
  let ts_sec = s.ts / 1_000_000 in
  if ts_sec > 0xFFFF_FFFF then
    raise
      (Encode_error
         (Printf.sprintf
            "Pcap.encode: timestamp %d overflows pcap's unsigned 32-bit \
             seconds"
            s.ts));
  let tcp_options_len = if s.mss_opt <> None then 4 else 0 in
  let tcp_header_len = 20 + tcp_options_len in
  let ip_total = ipv4_header_len + tcp_header_len + s.len in
  if ip_total > 0xFFFF then
    raise
      (Encode_error
         (Printf.sprintf
            "Pcap.encode: segment length %d overflows the IPv4 total length"
            s.len));
  let frame_len = ethernet_header_len + ip_total in
  (* pcap record header (little endian).  [Int32.of_int] keeps the low 32
     bits, so seconds in [2^31, 2^32) — post-2038 timestamps — retain
     their unsigned on-disk encoding. *)
  let hdr = Bytes.create 16 in
  Bytes.set_int32_le hdr 0 (Int32.of_int ts_sec);
  Bytes.set_int32_le hdr 4 (Int32.of_int (s.ts mod 1_000_000));
  Bytes.set_int32_le hdr 8 (Int32.of_int frame_len);
  Bytes.set_int32_le hdr 12 (Int32.of_int frame_len);
  Buffer.add_bytes buf hdr;
  let frame = Bytes.make frame_len '\000' in
  (* Ethernet: zero MACs, ethertype IPv4. *)
  Bytes.set_uint16_be frame 12 0x0800;
  (* IPv4 header *)
  let ip = ethernet_header_len in
  Bytes.set_uint8 frame ip 0x45;
  Bytes.set_uint16_be frame (ip + 2) ip_total;
  Bytes.set_uint8 frame (ip + 8) 64 (* TTL *);
  Bytes.set_uint8 frame (ip + 9) 6 (* protocol TCP *);
  Bytes.set_int32_be frame (ip + 12) s.src.Endpoint.ip;
  Bytes.set_int32_be frame (ip + 16) s.dst.Endpoint.ip;
  (* TCP header *)
  let tcp = ip + ipv4_header_len in
  Bytes.set_uint16_be frame tcp s.src.Endpoint.port;
  Bytes.set_uint16_be frame (tcp + 2) s.dst.Endpoint.port;
  Bytes.set_int32_be frame (tcp + 4) (Int32.of_int (s.seq land 0xFFFFFFFF));
  Bytes.set_int32_be frame (tcp + 8) (Int32.of_int (s.ack land 0xFFFFFFFF));
  let data_offset = tcp_header_len / 4 in
  Bytes.set_uint8 frame (tcp + 12) (data_offset lsl 4);
  let flag_bits =
    (if s.flags.Tcp_segment.fin then 0x01 else 0)
    lor (if s.flags.syn then 0x02 else 0)
    lor (if s.flags.rst then 0x04 else 0)
    lor (if s.flags.psh then 0x08 else 0)
    lor if s.flags.ack then 0x10 else 0
  in
  Bytes.set_uint8 frame (tcp + 13) flag_bits;
  Bytes.set_uint16_be frame (tcp + 14) (min s.window 0xFFFF);
  (match s.mss_opt with
  | Some mss ->
      Bytes.set_uint8 frame (tcp + 20) 2;
      Bytes.set_uint8 frame (tcp + 21) 4;
      Bytes.set_uint16_be frame (tcp + 22) mss
  | None -> ());
  (* Payload.  A payload shorter than [len] (not materialized, or clipped
     by the capture snaplen) is zero-filled to the declared length so
     stream offsets stay exact. *)
  let pl = min (String.length s.payload) s.len in
  if pl > 0 then Bytes.blit_string s.payload 0 frame (tcp + tcp_header_len) pl;
  Buffer.add_bytes buf frame

let encode trace =
  let buf = Buffer.create 4096 in
  let ghdr = Bytes.create 24 in
  Bytes.set_int32_le ghdr 0 magic_us;
  Bytes.set_uint16_le ghdr 4 2;
  Bytes.set_uint16_le ghdr 6 4;
  Bytes.set_int32_le ghdr 8 0l;
  Bytes.set_int32_le ghdr 12 0l;
  Bytes.set_int32_le ghdr 16 65535l;
  Bytes.set_int32_le ghdr 20 1l (* LINKTYPE_ETHERNET *);
  Buffer.add_bytes buf ghdr;
  List.iter (encode_packet buf) (Trace.segments trace);
  Buffer.contents buf

(* --- decoding --------------------------------------------------------- *)

type endianness = Le | Be

let get_u32 e s off =
  match e with Le -> Slice.u32le s off | Be -> Slice.u32be s off

type stats = { records : int; decoded : int; skipped : int; clipped : int }

type result = { trace : Trace.t; diags : Diag.t list; stats : stats }

(* Internal: abandon the current record (after emitting its diagnostic). *)
exception Skip_record

(* Internal: salvage mode stops reading; everything decoded so far is
   kept. *)
exception Stop_reading

(* Decode one captured frame (a [Slice.t] over the captured bytes of the
   reused record buffer) into a TCP segment.  The frame is parsed
   snaplen-correctly: the segment's [len] comes from the declared IP/TCP
   header lengths, the payload keeps only the captured bytes (possibly
   fewer than [len]).  Everything is read in place through the slice;
   the only allocations are the outputs kept past this record (the
   segment, its payload, any diagnostics). *)
let decode_frame ~emit ~clipped ~ri ~ts frame =
  let incl = Slice.length frame in
  let skip d =
    emit d;
    raise_notrace Skip_record
  in
  try
    if incl < ethernet_header_len then
      skip (Diag.info ~record:ri ~code:"P009" "runt frame (%d captured bytes)" incl);
    let ethertype = Slice.u16be frame 12 in
    let l2, ethertype =
      if ethertype = 0x8100 then begin
        if incl < ethernet_header_len + 4 then
          skip (Diag.info ~record:ri ~code:"P009" "runt 802.1Q frame");
        emit (Diag.info ~record:ri ~code:"P010" "802.1Q VLAN-tagged frame");
        (ethernet_header_len + 4, Slice.u16be frame 16)
      end
      else (ethernet_header_len, ethertype)
    in
    if ethertype <> 0x0800 then
      skip
        (Diag.info ~record:ri ~code:"P009" "non-IPv4 frame (ethertype 0x%04x)"
           ethertype);
    if l2 + ipv4_header_len > incl then
      skip
        (Diag.warning ~record:ri ~code:"P006"
           "capture ends inside the IPv4 header");
    let vihl = Slice.u8 frame l2 in
    if vihl lsr 4 <> 4 then
      skip (Diag.warning ~record:ri ~code:"P006" "IP version %d" (vihl lsr 4));
    let ihl = (vihl land 0x0F) * 4 in
    if ihl < ipv4_header_len then
      skip (Diag.warning ~record:ri ~code:"P006" "bad IHL %d" ihl);
    let proto = Slice.u8 frame (l2 + 9) in
    if proto <> 6 then raise_notrace Skip_record (* non-TCP traffic *);
    let ip_total = Slice.u16be frame (l2 + 2) in
    let tcp = l2 + ihl in
    if tcp + 20 > incl then
      skip
        (Diag.warning ~record:ri ~code:"P007"
           "capture ends inside the TCP header");
    let doff = (Slice.u8 frame (tcp + 12) lsr 4) * 4 in
    if doff < 20 then
      skip (Diag.warning ~record:ri ~code:"P007" "bad TCP data offset %d" doff);
    if ihl + doff > ip_total then
      skip
        (Diag.warning ~record:ri ~code:"P007"
           "TCP data offset overruns the IP datagram (IHL %d + offset %d > \
            total %d)"
           ihl doff ip_total);
    (* Snaplen-correct length: trust the declared header lengths, keep
       whatever payload bytes the sniffer captured. *)
    let len = ip_total - ihl - doff in
    let payload_off = tcp + doff in
    let captured = max 0 (min len (incl - payload_off)) in
    if captured < len then incr clipped;
    let payload =
      if captured = 0 then ""
      else Slice.sub_string frame ~off:payload_off ~len:captured
    in
    (* Option scan, bounded by both the declared header end and the
       captured bytes: clipped options end the scan silently, options
       that overrun their own header are malformed (P008).  The scan
       threads the found MSS as a plain int (-1 = absent) so a clean
       frame costs no ref cell and no [Some] box. *)
    let hdr_end = tcp + doff in
    let limit = min hdr_end incl in
    let rec scan o mss =
      if o >= limit then mss
      else
        match Slice.u8 frame o with
        | 0 -> mss (* end of options *)
        | 1 -> scan (o + 1) mss (* no-op padding *)
        | kind ->
            if o + 2 > limit then begin
              if limit >= hdr_end then
                emit
                  (Diag.warning ~record:ri ~code:"P008"
                     "TCP option %d overruns the header" kind);
              mss
            end
            else begin
              let olen = Slice.u8 frame (o + 1) in
              if olen < 2 then begin
                emit
                  (Diag.warning ~record:ri ~code:"P008"
                     "TCP option %d has bad length %d" kind olen);
                mss
              end
              else if o + olen > hdr_end then begin
                emit
                  (Diag.warning ~record:ri ~code:"P008"
                     "TCP option %d (length %d) overruns the header" kind olen);
                mss
              end
              else if o + olen > limit then mss (* snaplen-clipped options *)
              else
                scan (o + olen)
                  (if kind = 2 && olen = 4 then Slice.u16be frame (o + 2)
                   else mss)
            end
    in
    let mss = scan (tcp + 20) (-1) in
    let mss_opt = if mss < 0 then None else Some mss in
    let src_ip = Slice.i32be frame (l2 + 12) in
    let dst_ip = Slice.i32be frame (l2 + 16) in
    let src_port = Slice.u16be frame tcp in
    let dst_port = Slice.u16be frame (tcp + 2) in
    let seq = Slice.u32be frame (tcp + 4) in
    let ack = Slice.u32be frame (tcp + 8) in
    let fl = Slice.u8 frame (tcp + 13) in
    let window = Slice.u16be frame (tcp + 14) in
    let flags =
      Tcp_segment.flags ~fin:(fl land 0x01 <> 0) ~syn:(fl land 0x02 <> 0)
        ~rst:(fl land 0x04 <> 0) ~psh:(fl land 0x08 <> 0)
        ~ack:(fl land 0x10 <> 0) ()
    in
    Some
      (Tcp_segment.v ~ts
         ~src:(Endpoint.v src_ip src_port)
         ~dst:(Endpoint.v dst_ip dst_port)
         ~seq ~ack ~len ~window ~flags ?mss_opt ~payload ())
  with Skip_record -> None

(* The streaming core: pull records one at a time from [read] (a
   [Stdlib.input]-style function) into a reused, bounded frame buffer, so
   arbitrarily large captures decode in memory proportional to the
   largest record, not the file. *)
let fold_read ?(strict = false) ?(on_diag = fun (_ : Diag.t) -> ()) ~read ~init
    f =
  let records = ref 0
  and decoded = ref 0
  and skipped = ref 0
  and clipped = ref 0 in
  let emit (d : Diag.t) =
    on_diag d;
    if strict && Diag.is_problem d then
      raise (Decode_error ("Pcap.decode: " ^ d.Diag.message))
  in
  let fatal d =
    emit d;
    raise_notrace Stop_reading
  in
  let read_upto buf len =
    let rec go off =
      if off >= len then off
      else
        let n = read buf off (len - off) in
        if n = 0 then off else go (off + n)
    in
    go 0
  in
  let acc = ref init in
  let t_read = if Obs.enabled Obs.default then Tdat_obs.Clock.now_s () else 0. in
  Tdat_obs.Span.with_ ~name:"pcap-read" @@ fun () ->
  (* The record buffer is a per-domain arena slot: folds on the same
     domain (each pool worker streams many captures) reuse one
     high-water-mark buffer instead of allocating 64 KiB per file. *)
  Tdat_parallel.Scratch.(with_bytes ~slot:slot_pcap_frame 65536) @@ fun fcell ->
  (try
     let ghdr = Bytes.create 24 in
     let ghdr_s = Slice.of_bytes ghdr in
     if read_upto ghdr 24 < 24 then
       fatal (Diag.error ~code:"P002" "truncated header");
     let raw_le = get_u32 Le ghdr_s 0 in
     let endian, ns =
       if Int32.equal (Int32.of_int raw_le) magic_us then (Le, false)
       else if Int32.equal (Int32.of_int raw_le) magic_ns then (Le, true)
       else begin
         let raw_be = get_u32 Be ghdr_s 0 in
         if Int32.equal (Int32.of_int raw_be) magic_us then (Be, false)
         else if Int32.equal (Int32.of_int raw_be) magic_ns then (Be, true)
         else fatal (Diag.error ~code:"P001" "bad magic")
       end
     in
     let link_type = get_u32 endian ghdr_s 20 in
     if link_type <> 1 then
       fatal (Diag.error ~code:"P003" "unsupported link type");
     let rhdr = Bytes.create 16 in
     let rhdr_s = Slice.of_bytes rhdr in
     let stop = ref false in
     while not !stop do
       let n = read_upto rhdr 16 in
       if n = 0 then stop := true
       else if n < 16 then begin
         emit
           (Diag.warning ~record:!records ~code:"P004"
              "truncated record header (%d trailing bytes)" n);
         stop := true
       end
       else begin
         let incl = get_u32 endian rhdr_s 8 in
         if incl > max_record_len then begin
           emit
             (Diag.warning ~record:!records ~code:"P005"
                "implausible record length %d" incl);
           stop := true
         end
         else begin
           let frame = Tdat_parallel.Scratch.ensure fcell incl in
           let got = read_upto frame incl in
           if got < incl then begin
             emit
               (Diag.warning ~record:!records ~code:"P005" "truncated packet");
             stop := true
           end
           else begin
             let ts_sec = get_u32 endian rhdr_s 0 in
             let ts_sub = get_u32 endian rhdr_s 4 in
             let ts_us = if ns then ts_sub / 1000 else ts_sub in
             let ts = (ts_sec * 1_000_000) + ts_us in
             let ri = !records in
             incr records;
             Obs.Counter.incr m_records;
             (* +16: the per-record pcap header travels with the frame. *)
             Obs.Counter.add m_bytes (incl + 16);
             Obs.Histogram.observe h_record_bytes (float_of_int incl);
             match
               decode_frame ~emit ~clipped ~ri ~ts
                 (Slice.of_bytes ~len:incl frame)
             with
             | Some seg ->
                 incr decoded;
                 Obs.Counter.incr m_segments;
                 acc := f !acc seg
             | None ->
                 incr skipped;
                 Obs.Counter.incr m_skipped
           end
         end
       end
     done
   with Stop_reading -> ());
  if Obs.enabled Obs.default then begin
    let dt = Tdat_obs.Clock.now_s () -. t_read in
    if dt > 0. then Obs.Gauge.set g_records_per_s (float_of_int !records /. dt)
  end;
  ( !acc,
    {
      records = !records;
      decoded = !decoded;
      skipped = !skipped;
      clipped = !clipped;
    } )

let reader_of_string data =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (String.length data - !pos) in
    Bytes.blit_string data !pos buf off n;
    pos := !pos + n;
    n

let fold_string ?strict ?on_diag data ~init f =
  fold_read ?strict ?on_diag ~read:(reader_of_string data) ~init f

(* Channel and fd folds share the [Ingest_io] readers: EINTR retried,
   short reads looped by [read_upto], and — with [~follow] — EOF turned
   into polling so a still-growing capture can be tailed. *)
let fold_channel ?strict ?on_diag ?follow ic ~init f =
  fold_read ?strict ?on_diag ~read:(Ingest_io.of_channel ?follow ic) ~init f

let fold_fd ?strict ?on_diag ?follow fd ~init f =
  fold_read ?strict ?on_diag ~read:(Ingest_io.of_fd ?follow fd) ~init f

let fold_file ?strict ?on_diag ?follow path ~init f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> fold_channel ?strict ?on_diag ?follow ic ~init f)

let result_of_fold fold =
  let diags = ref [] in
  let segs, stats =
    fold ~on_diag:(fun d -> diags := d :: !diags) ~init:[] (fun acc s ->
        s :: acc)
  in
  let diags = List.rev !diags in
  let diags =
    if stats.clipped > 0 then
      diags
      @ [
          Diag.info ~code:"P011"
            "%d of %d records snaplen-clipped (captured payload shorter than \
             the declared TCP length)"
            stats.clipped stats.records;
        ]
    else diags
  in
  { trace = Trace.of_segments (List.rev segs); diags; stats }

let decode_result ?(strict = false) data =
  result_of_fold (fun ~on_diag ~init f ->
      fold_string ~strict ~on_diag data ~init f)

let decode data = (decode_result ~strict:true data).trace

let read_file ?(strict = false) path =
  result_of_fold (fun ~on_diag ~init f ->
      fold_file ~strict ~on_diag path ~init f)

let of_file path = (read_file ~strict:true path).trace

let to_file path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode trace))
