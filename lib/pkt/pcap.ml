let magic_us = 0xA1B2C3D4l
let magic_ns = 0xA1B23C4Dl

let ethernet_header_len = 14
let ipv4_header_len = 20

(* --- encoding ------------------------------------------------------- *)

let encode_packet buf (s : Tcp_segment.t) =
  let tcp_options_len = if s.mss_opt <> None then 4 else 0 in
  let tcp_header_len = 20 + tcp_options_len in
  let ip_total = ipv4_header_len + tcp_header_len + s.len in
  let frame_len = ethernet_header_len + ip_total in
  (* pcap record header (little endian) *)
  let hdr = Bytes.create 16 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (s.ts / 1_000_000));
  Bytes.set_int32_le hdr 4 (Int32.of_int (s.ts mod 1_000_000));
  Bytes.set_int32_le hdr 8 (Int32.of_int frame_len);
  Bytes.set_int32_le hdr 12 (Int32.of_int frame_len);
  Buffer.add_bytes buf hdr;
  let frame = Bytes.make frame_len '\000' in
  (* Ethernet: zero MACs, ethertype IPv4. *)
  Bytes.set_uint16_be frame 12 0x0800;
  (* IPv4 header *)
  let ip = ethernet_header_len in
  Bytes.set_uint8 frame ip 0x45;
  Bytes.set_uint16_be frame (ip + 2) ip_total;
  Bytes.set_uint8 frame (ip + 8) 64 (* TTL *);
  Bytes.set_uint8 frame (ip + 9) 6 (* protocol TCP *);
  Bytes.set_int32_be frame (ip + 12) s.src.Endpoint.ip;
  Bytes.set_int32_be frame (ip + 16) s.dst.Endpoint.ip;
  (* TCP header *)
  let tcp = ip + ipv4_header_len in
  Bytes.set_uint16_be frame tcp s.src.Endpoint.port;
  Bytes.set_uint16_be frame (tcp + 2) s.dst.Endpoint.port;
  Bytes.set_int32_be frame (tcp + 4) (Int32.of_int (s.seq land 0xFFFFFFFF));
  Bytes.set_int32_be frame (tcp + 8) (Int32.of_int (s.ack land 0xFFFFFFFF));
  let data_offset = tcp_header_len / 4 in
  Bytes.set_uint8 frame (tcp + 12) (data_offset lsl 4);
  let flag_bits =
    (if s.flags.Tcp_segment.fin then 0x01 else 0)
    lor (if s.flags.syn then 0x02 else 0)
    lor (if s.flags.rst then 0x04 else 0)
    lor (if s.flags.psh then 0x08 else 0)
    lor if s.flags.ack then 0x10 else 0
  in
  Bytes.set_uint8 frame (tcp + 13) flag_bits;
  Bytes.set_uint16_be frame (tcp + 14) (min s.window 0xFFFF);
  (match s.mss_opt with
  | Some mss ->
      Bytes.set_uint8 frame (tcp + 20) 2;
      Bytes.set_uint8 frame (tcp + 21) 4;
      Bytes.set_uint16_be frame (tcp + 22) mss
  | None -> ());
  (* Payload. If the segment's payload was not materialized, synthesize
     zero bytes of the declared length so stream offsets stay exact. *)
  if s.payload <> "" then
    Bytes.blit_string s.payload 0 frame (tcp + tcp_header_len) s.len;
  Buffer.add_bytes buf frame

let encode trace =
  let buf = Buffer.create 4096 in
  let ghdr = Bytes.create 24 in
  Bytes.set_int32_le ghdr 0 magic_us;
  Bytes.set_uint16_le ghdr 4 2;
  Bytes.set_uint16_le ghdr 6 4;
  Bytes.set_int32_le ghdr 8 0l;
  Bytes.set_int32_le ghdr 12 0l;
  Bytes.set_int32_le ghdr 16 65535l;
  Bytes.set_int32_le ghdr 20 1l (* LINKTYPE_ETHERNET *);
  Buffer.add_bytes buf ghdr;
  List.iter (encode_packet buf) (Trace.segments trace);
  Buffer.contents buf

(* --- decoding ------------------------------------------------------- *)

type endianness = Le | Be

let read_u16 e s off =
  match e with
  | Le -> Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)
  | Be -> (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let read_u32 e s off =
  match e with
  | Le ->
      Char.code s.[off]
      lor (Char.code s.[off + 1] lsl 8)
      lor (Char.code s.[off + 2] lsl 16)
      lor (Char.code s.[off + 3] lsl 24)
  | Be ->
      (Char.code s.[off] lsl 24)
      lor (Char.code s.[off + 1] lsl 16)
      lor (Char.code s.[off + 2] lsl 8)
      lor Char.code s.[off + 3]

exception Decode_error of string

let fail msg = raise (Decode_error ("Pcap.decode: " ^ msg))

let decode data =
  if String.length data < 24 then fail "truncated header";
  let raw_magic = read_u32 Le data 0 in
  let endian, ns =
    if Int32.of_int raw_magic = magic_us then (Le, false)
    else if Int32.of_int raw_magic = magic_ns then (Le, true)
    else begin
      let be_magic = read_u32 Be data 0 in
      if Int32.of_int be_magic = magic_us then (Be, false)
      else if Int32.of_int be_magic = magic_ns then (Be, true)
      else fail "bad magic"
    end
  in
  let link_type = read_u32 endian data 20 in
  if link_type <> 1 then fail "unsupported link type";
  let len = String.length data in
  let segs = ref [] in
  let pos = ref 24 in
  while !pos + 16 <= len do
    let ts_sec = read_u32 endian data !pos in
    let ts_sub = read_u32 endian data (!pos + 4) in
    let incl = read_u32 endian data (!pos + 8) in
    let frame_off = !pos + 16 in
    if frame_off + incl > len then fail "truncated packet";
    let ts_us = if ns then ts_sub / 1000 else ts_sub in
    let ts = (ts_sec * 1_000_000) + ts_us in
    (* Parse Ethernet / IPv4 / TCP; skip anything else. *)
    (if incl >= ethernet_header_len + ipv4_header_len + 20 then begin
       let ethertype = read_u16 Be data (frame_off + 12) in
       if ethertype = 0x0800 then begin
         let ip = frame_off + ethernet_header_len in
         let ihl = (Char.code data.[ip] land 0x0F) * 4 in
         let proto = Char.code data.[ip + 9] in
         let ip_total = read_u16 Be data (ip + 2) in
         if proto = 6 then begin
           let src_ip = Int32.of_int (read_u32 Be data (ip + 12)) in
           let dst_ip = Int32.of_int (read_u32 Be data (ip + 16)) in
           let tcp = ip + ihl in
           let src_port = read_u16 Be data tcp in
           let dst_port = read_u16 Be data (tcp + 2) in
           let seq = read_u32 Be data (tcp + 4) in
           let ack = read_u32 Be data (tcp + 8) in
           let doff = (Char.code data.[tcp + 12] lsr 4) * 4 in
           let fl = Char.code data.[tcp + 13] in
           let window = read_u16 Be data (tcp + 14) in
           let payload_off = tcp + doff in
           let payload_len = ip_total - ihl - doff in
           let payload_len =
             max 0 (min payload_len (frame_off + incl - payload_off))
           in
           let payload = String.sub data payload_off payload_len in
           (* MSS option scan *)
           let mss_opt = ref None in
           let o = ref (tcp + 20) in
           (try
              while !o < tcp + doff do
                match Char.code data.[!o] with
                | 0 -> raise Exit
                | 1 -> incr o
                | 2 ->
                    mss_opt := Some (read_u16 Be data (!o + 2));
                    o := !o + 4
                | _ ->
                    let olen = Char.code data.[!o + 1] in
                    if olen < 2 then raise Exit;
                    o := !o + olen
              done
            with Exit -> ());
           let flags =
             Tcp_segment.flags ~fin:(fl land 0x01 <> 0)
               ~syn:(fl land 0x02 <> 0) ~rst:(fl land 0x04 <> 0)
               ~psh:(fl land 0x08 <> 0) ~ack:(fl land 0x10 <> 0) ()
           in
           let seg =
             Tcp_segment.v ~ts
               ~src:(Endpoint.v src_ip src_port)
               ~dst:(Endpoint.v dst_ip dst_port)
               ~seq ~ack ~window ~flags ?mss_opt:!mss_opt ~payload ()
           in
           segs := seg :: !segs
         end
       end
     end);
    pos := frame_off + incl
  done;
  Trace.of_segments (List.rev !segs)

let to_file path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode trace))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))
