(** Connection identity (unordered endpoint pair) and direction tagging.

    Every BGP monitoring trace in the paper has a well-defined data
    direction: operational router ("Sender") to collector ("Receiver").
    A {!t} fixes that orientation so packets can be split into the
    Sender→Receiver data stream and the Receiver→Sender ACK stream. *)

type t = { sender : Endpoint.t; receiver : Endpoint.t }

type direction = To_receiver | To_sender

val v : sender:Endpoint.t -> receiver:Endpoint.t -> t

val key : t -> Endpoint.t * Endpoint.t
(** Canonical unordered key: the lexicographically smaller endpoint
    first.  Two flows over the same connection share a key regardless of
    orientation. *)

val direction_of : t -> Tcp_segment.t -> direction option
(** [None] when the segment does not belong to this connection. *)

val equal_direction : direction -> direction -> bool

val is_to_receiver : t -> Tcp_segment.t -> bool
(** [is_to_receiver flow seg] is true iff the segment travels
    Sender→Receiver on this connection. *)

val is_to_sender : t -> Tcp_segment.t -> bool

val matches : t -> Tcp_segment.t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
