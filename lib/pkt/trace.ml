open Tdat_timerange

type t = { segments : Tcp_segment.t array; voids : Span_set.t }

let of_segments ?(voids = Span_set.empty) segs =
  let a = Array.of_list segs in
  Array.stable_sort Tcp_segment.compare_ts a;
  { segments = a; voids }

let segments t = Array.to_list t.segments
let voids t = t.voids
let length t = Array.length t.segments
let get t i = t.segments.(i)
let iter f t = Array.iter f t.segments

let total_bytes t =
  Array.fold_left (fun acc (s : Tcp_segment.t) -> acc + s.len) 0 t.segments

let window t =
  let n = Array.length t.segments in
  if n = 0 then None
  else begin
    let first = t.segments.(0).Tcp_segment.ts in
    let last = t.segments.(n - 1).Tcp_segment.ts in
    Some (Span.v first (last + 1))
  end

let conn_key (s : Tcp_segment.t) =
  if Endpoint.compare s.src s.dst <= 0 then (s.src, s.dst) else (s.dst, s.src)

let connections t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let visit s =
    let k = conn_key s in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      order := k :: !order
    end
  in
  Array.iter visit t.segments;
  List.rev !order

(* Growable segment buffer for the single-pass partition below. *)
type buf = { mutable arr : Tcp_segment.t array; mutable len : int }

let buf_push b seg =
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * b.len) seg in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- seg;
  b.len <- b.len + 1

let partition_connections t =
  let bufs : (Endpoint.t * Endpoint.t, buf) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let visit seg =
    let k = conn_key seg in
    match Hashtbl.find_opt bufs k with
    | Some b -> buf_push b seg
    | None ->
        Hashtbl.add bufs k { arr = Array.make 16 seg; len = 1 };
        order := k :: !order
  in
  Array.iter visit t.segments;
  (* [order] is in reverse appearance order; rev_map restores it.  The
     per-connection arrays inherit the trace's time order because the
     single pass is order-preserving. *)
  List.rev_map
    (fun k ->
      let b = Hashtbl.find bufs k in
      (k, { segments = Array.sub b.arr 0 b.len; voids = t.voids }))
    !order

let split_connection t ~sender ~receiver =
  (* Thin single-connection wrapper: count, then fill a pre-sized
     array.  Callers wanting every connection should use
     [partition_connections], which does all of them in one pass. *)
  let flow = Flow.v ~sender ~receiver in
  let n = Array.length t.segments in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Flow.matches flow t.segments.(i) then incr count
  done;
  if !count = 0 then { segments = [||]; voids = t.voids }
  else begin
    let out = Array.make !count t.segments.(0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let seg = t.segments.(i) in
      if Flow.matches flow seg then begin
        out.(!k) <- seg;
        incr k
      end
    done;
    { segments = out; voids = t.voids }
  end

let filter f t =
  { t with segments = Array.of_list (List.filter f (segments t)) }

let merge a b =
  of_segments ~voids:(Span_set.union a.voids b.voids)
    (segments a @ segments b)

let append t segs = of_segments ~voids:t.voids (segments t @ segs)

let infer_sender t (a, b) =
  let bytes_from e =
    Array.fold_left
      (fun acc (s : Tcp_segment.t) ->
        if Endpoint.equal s.src e then acc + s.len else acc)
      0 t.segments
  in
  if bytes_from a >= bytes_from b then Flow.v ~sender:a ~receiver:b
  else Flow.v ~sender:b ~receiver:a
