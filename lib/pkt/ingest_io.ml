(* Input plumbing shared by the streaming readers ([Pcap] here, [Mrt]
   in lib/bgp, the serve daemon's live feeds in lib/serve).

   Every input source — in-channel, file descriptor, pipe, socket, or a
   still-growing file being tailed — reduces to one
   [read buf off len -> n] function.  The folds above this layer only
   terminate a capture when [read] returns 0, so this module is where
   the end-of-input question is actually decided, and it guarantees:

   - [EINTR] never ends a capture: an interrupted system call is
     retried, both for [Unix.read] (which raises [Unix_error (EINTR)])
     and for channel [input] (which surfaces the same condition as a
     [Sys_error]).  Without the retry, a SIGTERM-handling daemon whose
     worker is mid-read would truncate the record it was on.
   - A short read never ends a capture: pipes and sockets routinely
     deliver fewer bytes than asked; the record-framing loops above
     keep calling until they have the frame or see a true EOF.
   - A tailed file can defer EOF: with [~follow], a 0-byte read polls
     the source until the follow policy gives up, so a reader can
     consume a capture that is still being written. *)

type read = Bytes.t -> int -> int -> int

type follow = int -> bool

(* [Sys_error] carries [strerror]-formatted text; an interrupted
   channel read is the one transient failure worth recognizing. *)
let sys_error_is_eintr msg =
  let needle = "Interrupted system call" in
  let nlen = String.length needle and mlen = String.length msg in
  let rec scan i =
    i + nlen <= mlen
    && (String.equal (String.sub msg i nlen) needle || scan (i + 1))
  in
  scan 0

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f
  | exception Sys_error msg when sys_error_is_eintr msg -> retry_eintr f

let of_read ?follow ?(poll_interval_s = 0.02) (read : read) : read =
  match follow with
  | None -> fun buf off len -> retry_eintr (fun () -> read buf off len)
  | Some keep_waiting ->
      let total = ref 0 in
      fun buf off len ->
        let rec attempt () =
          let n = retry_eintr (fun () -> read buf off len) in
          if n > 0 then begin
            total := !total + n;
            n
          end
          else if len > 0 && keep_waiting !total then begin
            (* [sleepf] returning early on a signal only tightens the
               poll; correctness never depends on the interval. *)
            Unix.sleepf poll_interval_s;
            attempt ()
          end
          else 0
        in
        attempt ()

let of_fd ?follow ?poll_interval_s fd : read =
  of_read ?follow ?poll_interval_s (fun buf off len ->
      Unix.read fd buf off len)

let of_channel ?follow ?poll_interval_s ic : read =
  of_read ?follow ?poll_interval_s (fun buf off len -> input ic buf off len)

let follow_idle ?(limit_s = infinity) ~idle_s () : follow =
  let start = Unix.gettimeofday () in
  let last_total = ref 0 in
  let last_change = ref start in
  fun total ->
    let now = Unix.gettimeofday () in
    if total <> !last_total then begin
      last_total := total;
      last_change := now
    end;
    now -. !last_change < idle_s && now -. start < limit_s
