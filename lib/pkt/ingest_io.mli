(** Input plumbing shared by the streaming readers.

    The record-framing folds ({!Pcap.fold_channel},
    [Tdat_bgp.Mrt.fold_channel], their [fold_fd] variants) terminate a
    capture only when their [read] function returns [0].  The readers
    built here make that a safe contract over every source:

    - [EINTR] is retried, never surfaced — neither as a truncated
      record nor as an exception — for both [Unix.read]
      ([Unix_error (EINTR, _, _)]) and channel [input] (a [Sys_error]).
    - Short reads are the caller's loop to handle; these readers simply
      never lie about EOF, so pipes and sockets deliver complete
      captures.
    - With [~follow], a 0-byte read polls the source instead of ending
      the capture — the tailing mode the serve daemon uses on
      still-growing pcap/MRT files. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run [f], retrying while it raises [EINTR] (as [Unix_error] or as
    the channel layer's [Sys_error]). *)

type read = Bytes.t -> int -> int -> int
(** [read buf off len] fills at most [len] bytes at [off], returning
    the count actually read; [0] means end of input. *)

type follow = int -> bool
(** A tailing policy: called with the cumulative byte count each time
    the source reports EOF.  Returning [true] keeps polling; [false]
    accepts the EOF. *)

val of_read : ?follow:follow -> ?poll_interval_s:float -> read -> read
(** Wrap a raw read with [EINTR] retry and (optionally) the [follow]
    polling loop ([poll_interval_s] defaults to 0.02 s between
    polls). *)

val of_fd : ?follow:follow -> ?poll_interval_s:float -> Unix.file_descr -> read
(** A reader over [Unix.read] — the right source for pipes, sockets and
    tailed files. *)

val of_channel : ?follow:follow -> ?poll_interval_s:float -> in_channel -> read
(** A reader over channel [input], with the same retry guarantees. *)

val follow_idle : ?limit_s:float -> idle_s:float -> unit -> follow
(** The standard tailing policy: keep waiting while the source has
    produced new bytes within the last [idle_s] seconds, giving up
    unconditionally after [limit_s] (default: never). *)
