type t = { sender : Endpoint.t; receiver : Endpoint.t }
type direction = To_receiver | To_sender

let v ~sender ~receiver = { sender; receiver }

let key t =
  if Endpoint.compare t.sender t.receiver <= 0 then (t.sender, t.receiver)
  else (t.receiver, t.sender)

let direction_of t (seg : Tcp_segment.t) =
  if Endpoint.equal seg.src t.sender && Endpoint.equal seg.dst t.receiver then
    Some To_receiver
  else if Endpoint.equal seg.src t.receiver && Endpoint.equal seg.dst t.sender
  then Some To_sender
  else None

let equal_direction a b =
  match (a, b) with
  | To_receiver, To_receiver | To_sender, To_sender -> true
  | To_receiver, To_sender | To_sender, To_receiver -> false

let is_to_receiver t seg =
  match direction_of t seg with Some To_receiver -> true | _ -> false

let is_to_sender t seg =
  match direction_of t seg with Some To_sender -> true | _ -> false

let matches t seg = direction_of t seg <> None

let compare a b =
  match Endpoint.compare a.sender b.sender with
  | 0 -> Endpoint.compare a.receiver b.receiver
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "%a->%a" Endpoint.pp t.sender Endpoint.pp t.receiver
