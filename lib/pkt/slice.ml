(* A bounds-checked offset/length view over a [Bytes.t] backing buffer
   (DESIGN.md, "Allocation discipline").  The decode hot paths parse
   headers and options directly through a slice instead of materializing
   [String.sub]/[Bytes.sub] copies of every record, so a multi-gigabyte
   capture decodes with per-record allocation proportional to what is
   *kept* (segments, diagnostics), not to what is *read*.

   Contract:

   - A slice BORROWS its backing buffer: it never copies and never
     writes.  The borrow is only valid while the producer (a streaming
     reader's reused record buffer, a reassembled stream) keeps the
     bytes in place — callers must not stash slices past the callback
     that handed them over.
   - Every getter checks bounds against the slice, not the backing
     buffer, so a reused oversized buffer can safely carry a shorter
     record: reads beyond [len] raise [Out_of_bounds] even though the
     backing bytes exist.
   - Getters return immediates (ints); the only allocating operations
     are the explicit [sub_string]/[to_string] escapes.  Everything
     here is in the L009 hot set. *)

type t = { buf : Bytes.t; off : int; len : int }

exception Out_of_bounds of { what : string; pos : int; len : int }

let oob what pos len = raise (Out_of_bounds { what; pos; len })

let of_bytes ?(off = 0) ?len buf =
  let blen = Bytes.length buf in
  let len = match len with Some l -> l | None -> blen - off in
  if off < 0 || len < 0 || off + len > blen then
    (* Cold: only reached on a caller contract violation, right before
       the raise — never on the per-record decode path. *)
    (invalid_arg
       (Printf.sprintf "Slice.of_bytes: off=%d len=%d over %d bytes" off len
          blen) [@tdat.lint.allow "L009"]);
  { buf; off; len }

(* Read-only discipline above makes the copy-free cast safe: no getter
   ever mutates [buf], so the string's immutability is preserved. *)
let of_string ?off ?len s = of_bytes ?off ?len (Bytes.unsafe_of_string s)

let length t = t.len
let is_empty t = t.len = 0

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then oob "sub" off t.len;
  { buf = t.buf; off = t.off + off; len }

(* [check] guards every getter; reads below go through [unsafe_get]
   because the bound was just proven. *)
let[@inline] check t what pos n =
  if pos < 0 || pos + n > t.len then oob what pos t.len

let[@inline] byte t pos = Char.code (Bytes.unsafe_get t.buf (t.off + pos))

let[@inline] u8 t pos =
  check t "u8" pos 1;
  byte t pos

let[@inline] u16be t pos =
  check t "u16be" pos 2;
  (byte t pos lsl 8) lor byte t (pos + 1)

let[@inline] u16le t pos =
  check t "u16le" pos 2;
  byte t pos lor (byte t (pos + 1) lsl 8)

let[@inline] u32be t pos =
  check t "u32be" pos 4;
  (byte t pos lsl 24)
  lor (byte t (pos + 1) lsl 16)
  lor (byte t (pos + 2) lsl 8)
  lor byte t (pos + 3)

let[@inline] u32le t pos =
  check t "u32le" pos 4;
  byte t pos
  lor (byte t (pos + 1) lsl 8)
  lor (byte t (pos + 2) lsl 16)
  lor (byte t (pos + 3) lsl 24)

let[@inline] i32be t pos = Int32.of_int (u32be t pos)

(* Explicit allocating escapes, for the bytes a caller keeps. *)

let sub_string t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then oob "sub_string" off t.len;
  Bytes.sub_string t.buf (t.off + off) len

let to_string t = sub_string t ~off:0 ~len:t.len

let blit t ~off ~len dst ~dst_off =
  if off < 0 || len < 0 || off + len > t.len then oob "blit" off t.len;
  Bytes.blit t.buf (t.off + off) dst dst_off len
