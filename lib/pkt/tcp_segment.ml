type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
}

let flags ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false)
    ?(psh = false) () =
  { syn; ack; fin; rst; psh }

let data_flags = flags ~ack:true ~psh:true ()
let ack_flags = flags ~ack:true ()

type t = {
  ts : Tdat_timerange.Time_us.t;
  src : Endpoint.t;
  dst : Endpoint.t;
  seq : int;
  ack : int;
  len : int;
  window : int;
  flags : flags;
  mss_opt : int option;
  payload : string;
}

let v ~ts ~src ~dst ~seq ~ack ?len ?(window = 65535) ?(flags = ack_flags)
    ?mss_opt ?(payload = "") () =
  let len =
    match len with
    | None -> String.length payload
    | Some l ->
        (* A payload shorter than [len] is legitimate — snaplen-truncated
           captures keep only a prefix of each segment — but one longer
           than [len] would corrupt stream-offset accounting. *)
        if String.length payload > l then
          invalid_arg "Tcp_segment.v: len disagrees with payload";
        l
  in
  if len < 0 then invalid_arg "Tcp_segment.v: negative len";
  { ts; src; dst; seq; ack; len; window; flags; mss_opt; payload }

let seq_end t = t.seq + t.len
let is_data t = t.len > 0

let is_pure_ack t =
  t.len = 0 && t.flags.ack && (not t.flags.syn) && (not t.flags.fin)
  && not t.flags.rst

let compare_ts a b =
  match Int.compare a.ts b.ts with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let pp ppf t =
  let flag b c = if b then c else "" in
  Format.fprintf ppf "%a %a>%a seq=%d ack=%d len=%d win=%d %s%s%s%s%s"
    Tdat_timerange.Time_us.pp t.ts Endpoint.pp t.src Endpoint.pp t.dst t.seq
    t.ack t.len t.window (flag t.flags.syn "S") (flag t.flags.ack "A")
    (flag t.flags.fin "F") (flag t.flags.rst "R") (flag t.flags.psh "P")
