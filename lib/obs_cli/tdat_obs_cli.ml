open Cmdliner

type t = {
  metrics : string option;
  trace : string option;
  log_level : Tdat_obs.Log.level option;
}

let level_conv =
  let parse s =
    match Tdat_obs.Log.level_of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "quiet"
    | Some l -> Format.pp_print_string ppf (Tdat_obs.Log.level_name l)
  in
  Arg.conv (parse, print)

let metrics_arg =
  let doc =
    "Collect runtime metrics (reader, analyzer, pool, simulator \
     counters and histograms) and write a JSON snapshot to $(docv) on \
     exit.  Off by default: the instrumented paths then cost one atomic \
     load per event."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record per-stage spans and write a Chrome trace_event JSON file to \
     $(docv) on exit — load it in chrome://tracing or Perfetto to see \
     the pipeline timeline per worker domain."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc =
    "Structured-log verbosity on stderr: $(b,error), $(b,warn) (default), \
     $(b,info), $(b,debug), or $(b,quiet)."
  in
  Arg.(
    value
    & opt level_conv (Some Tdat_obs.Log.Warn)
    & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let term =
  Term.(
    const (fun metrics trace log_level -> { metrics; trace; log_level })
    $ metrics_arg $ trace_arg $ log_level_arg)

let with_obs t f =
  Tdat_obs.Log.set_level t.log_level;
  if Option.is_some t.metrics then
    Tdat_obs.Metrics.set_enabled Tdat_obs.Metrics.default true;
  if Option.is_some t.trace then Tdat_obs.Tracer.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      (match t.metrics with
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Tdat_obs.Metrics.snapshot_json Tdat_obs.Metrics.default);
          output_char oc '\n';
          close_out oc;
          Tdat_obs.Metrics.set_enabled Tdat_obs.Metrics.default false
      | None -> ());
      (match t.trace with
      | Some path ->
          Tdat_obs.Tracer.write path;
          Tdat_obs.Tracer.set_enabled false;
          Tdat_obs.Tracer.clear ()
      | None -> ());
      Tdat_obs.Log.close ())
    f
