(** The shared observability command-line surface.

    Every T-DAT executable ([tdat], [pcap2bgp], [simgen]) takes the
    same three flags — [--metrics FILE], [--trace FILE],
    [--log-level LEVEL] — and runs its work under {!with_obs}, which
    turns the requested collectors on, guarantees the output files are
    written even when the command fails, and leaves the process-global
    observability state reset afterwards.  With none of the flags
    given, nothing is enabled and the instrumented hot paths stay at
    their disabled near-zero cost. *)

type t = {
  metrics : string option;  (** Write a metrics snapshot (JSON) here. *)
  trace : string option;  (** Write a Chrome trace (JSON) here. *)
  log_level : Tdat_obs.Log.level option;
      (** Stderr log level; [None] = quiet. *)
}

val term : t Cmdliner.Term.t
(** [--metrics FILE], [--trace FILE] (both default off) and
    [--log-level LEVEL] (default [warn]; [quiet] silences). *)

val with_obs : t -> (unit -> 'a) -> 'a
(** [with_obs t f] applies the log level, enables the default metrics
    registry when [t.metrics] is set and the tracer when [t.trace] is,
    runs [f ()], and — whether [f] returns or raises — writes the
    requested snapshot/trace files, disables both collectors, and
    closes any log destination. *)
