module Time_us = Tdat_timerange.Time_us
module Mrt = Tdat_bgp.Mrt
module Msg = Tdat_bgp.Msg

type config = {
  quiet_gap : Time_us.t;
  min_prefixes : int;
}

let default_config = { quiet_gap = 200_000_000; min_prefixes = 32 }

(* An open (not yet closed) candidate transfer for one peer. *)
type candidate = {
  c_start : Time_us.t;  (* anchor time, or first update for unanchored *)
  c_anchored : bool;
  mutable c_first : Time_us.t option;  (* first update *)
  mutable c_last : Time_us.t option;  (* last update *)
  mutable c_prefixes : int;
  mutable c_messages : int;
}

type peer = {
  p_as : int;
  p_ip : int32;
  mutable p_open : candidate option;
}

type t = {
  config : config;
  source : string;
  peers : (int * int32, peer) Hashtbl.t;
  mutable found : Transfer.t list;
  mutable finished : bool;
}

let create ?(config = default_config) ?(source = "") () =
  {
    config;
    source;
    peers = Hashtbl.create 16;
    found = [];
    finished = false;
  }

let peer t ~peer_as ~peer_ip =
  let key = (peer_as, peer_ip) in
  match Hashtbl.find_opt t.peers key with
  | Some p -> p
  | None ->
      let p = { p_as = peer_as; p_ip = peer_ip; p_open = None } in
      Hashtbl.add t.peers key p;
      p

(* Close the peer's open candidate, emitting it when it carried a real
   burst (some updates, enough prefixes). *)
let close t p =
  (match p.p_open with
  | Some c when c.c_messages > 0 && c.c_prefixes >= t.config.min_prefixes ->
      let start_ts =
        if c.c_anchored then c.c_start
        else match c.c_first with Some ts -> ts | None -> c.c_start
      in
      let end_ts = match c.c_last with Some ts -> ts | None -> start_ts in
      t.found <-
        {
          Transfer.source = t.source;
          peer_as = p.p_as;
          peer_ip = p.p_ip;
          start_ts;
          end_ts;
          prefixes = c.c_prefixes;
          messages = c.c_messages;
          anchored = c.c_anchored;
        }
        :: t.found
  | Some _ | None -> ());
  p.p_open <- None

(* A session-establishment event.  First anchor wins while the open
   candidate is still empty, so STATE_CHANGE-to-Established immediately
   followed by the archived OPEN keeps the earlier start. *)
let anchor t p ts =
  (match p.p_open with
  | Some c when c.c_messages = 0 && c.c_anchored -> ()
  | Some _ | None ->
      close t p;
      p.p_open <-
        Some
          {
            c_start = ts;
            c_anchored = true;
            c_first = None;
            c_last = None;
            c_prefixes = 0;
            c_messages = 0;
          })

let update t p ts ~nlri =
  let fresh () =
    {
      c_start = ts;
      c_anchored = false;
      c_first = None;
      c_last = None;
      c_prefixes = 0;
      c_messages = 0;
    }
  in
  let c =
    match p.p_open with
    | None ->
        let c = fresh () in
        p.p_open <- Some c;
        c
    | Some c ->
        let last_activity =
          match c.c_last with Some l -> l | None -> c.c_start
        in
        (* Inclusive boundary: a silence of exactly [quiet_gap] already
           splits — DESIGN.md specifies "gaps of 200 s or more" end a
           transfer. *)
        if Time_us.(ts - last_activity) >= t.config.quiet_gap then begin
          close t p;
          let c = fresh () in
          p.p_open <- Some c;
          c
        end
        else c
  in
  if c.c_first = None then c.c_first <- Some ts;
  c.c_last <- Some ts;
  c.c_prefixes <- c.c_prefixes + nlri;
  c.c_messages <- c.c_messages + 1

let feed t entry =
  if t.finished then invalid_arg "Detect.feed: detector already finished";
  match entry with
  | Mrt.State s ->
      let p = peer t ~peer_as:s.Mrt.sc_peer_as ~peer_ip:s.Mrt.sc_peer_ip in
      if Mrt.equal_fsm_state s.Mrt.new_state Mrt.Established then
        anchor t p s.Mrt.sc_ts
      else close t p
  | Mrt.Message r -> (
      let p = peer t ~peer_as:r.Mrt.peer_as ~peer_ip:r.Mrt.peer_ip in
      match r.Mrt.msg with
      | Msg.Update _ ->
          update t p r.Mrt.ts ~nlri:(Msg.nlri_count r.Mrt.msg)
      | Msg.Open _ -> anchor t p r.Mrt.ts
      | Msg.Notification _ -> close t p
      | Msg.Keepalive -> ())

let finish t =
  if t.finished then invalid_arg "Detect.finish: detector already finished";
  t.finished <- true;
  Hashtbl.iter (fun _ p -> close t p) t.peers;
  List.sort Transfer.compare t.found

let over_entries ?config ?source entries =
  let t = create ?config ?source () in
  List.iter (feed t) entries;
  finish t
