(** Rendering a {!Aggregate.report} for `tdat study`: a human-readable
    text report (with optional ASCII CDF plots, the role BGPlot plays in
    the paper's tool suite) and a machine-readable JSON document.  Both
    renderings are deterministic functions of the report. *)

val to_text : ?plot:bool -> Aggregate.report -> string
(** [plot] (default [true]) appends the duration-CDF curve when there
    are at least two transfers. *)

val to_json : Aggregate.report -> string
(** A single JSON object:
    [{"files": [...], "transfers": [...], "slow_threshold_s": ...,
      "threshold": "auto"|"fixed", "duration_knee_s": ...,
      "slow_transfers": n, "peers": [...],
      "duration_quantiles_s": {...}}].  Timestamps are integer
    microseconds; durations are seconds. *)
