(** One detected table transfer: the unit of the paper's Section-2
    measurement study.  A transfer is a burst of UPDATE messages from one
    peer, bounded by session events and quiet gaps (see {!Detect}). *)

type t = {
  source : string;  (** Archive file the transfer was found in; [""] for in-memory scans. *)
  peer_as : int;
  peer_ip : int32;
  start_ts : Tdat_timerange.Time_us.t;
      (** Session-establishment time when {!anchored}, else the first
          update of the burst. *)
  end_ts : Tdat_timerange.Time_us.t;  (** Last update of the burst. *)
  prefixes : int;  (** Announced prefixes (NLRI entries) in the burst. *)
  messages : int;  (** UPDATE messages in the burst. *)
  anchored : bool;
      (** The start is a real session event (BGP4MP_STATE_CHANGE to
          Established, or a received OPEN), not a gap heuristic. *)
}

val duration : t -> Tdat_timerange.Time_us.t
val duration_s : t -> float

val rate : t -> float
(** Announced prefixes per second; [0.] for zero-duration transfers. *)

val compare : t -> t -> int
(** Total deterministic order: start time, then peer, end, source. *)

val equal : t -> t -> bool

val pp_ip : Format.formatter -> int32 -> unit
(** Dotted-quad rendering of a (possibly negative) int32 address. *)

val pp : Format.formatter -> t -> unit
