(** Ground-truth transfer boundaries for detector validation.

    [simgen --emit-mrt] writes one of these files next to the archives
    it generates: the simulator {e knows} when each session established
    and when the initial table finished transferring, so the detector
    can be scored against it end to end (the acceptance bar is ≥ 95%
    boundary recall).

    The format is one transfer per line, tab-separated:
    [source  peer_as  peer_ip  start_us  end_us  prefixes  messages],
    with [#]-prefixed comment lines ignored. *)

exception Parse_error of string

type t = {
  source : string;  (** Archive file this transfer is recorded in. *)
  peer_as : int;
  peer_ip : int32;
  start_ts : Tdat_timerange.Time_us.t;
  end_ts : Tdat_timerange.Time_us.t;
  prefixes : int;
  messages : int;
}

val to_file : string -> t list -> unit
val of_file : string -> t list
(** @raise Parse_error on malformed lines, [Sys_error] on I/O. *)

val matches : ?tol:Tdat_timerange.Time_us.t -> t -> Transfer.t -> bool
(** Same peer, and both boundaries within [tol] (default 0: exact). *)

val recall :
  ?tol:Tdat_timerange.Time_us.t -> truth:t list -> Transfer.t list -> float
(** Fraction of ground-truth transfers recovered by the detector, in
    [0, 1]; [1.] on empty truth. *)
