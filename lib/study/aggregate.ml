module Descriptive = Tdat_stats.Descriptive
module Knee = Tdat_stats.Knee

(* Study instruments (DESIGN.md, "Observability"): all stable — counts
   of scanned files and detected transfers are pure functions of the
   archive set, whatever [jobs] is. *)
module Obs = Tdat_obs.Metrics

let m_files = Obs.Counter.make "study.files"
let m_transfers = Obs.Counter.make "study.transfers"
let m_anchored = Obs.Counter.make "study.transfers_anchored"

type peer_summary = {
  peer_as : int;
  peer_ip : int32;
  transfers : int;
  anchored : int;
  slow : int;
  prefixes_total : int;
  duration : Descriptive.summary;
}

type report = {
  files : Archive.file_report list;
  transfers : Transfer.t list;
  slow_threshold_s : float;
  threshold_auto : bool;
  slow : Transfer.t list;
  duration_knee_s : float option;
  peers : peer_summary list;
}

let is_slow ~threshold t = Transfer.duration_s t > threshold

let peer_summaries ~threshold transfers =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (t : Transfer.t) ->
      let key = (t.Transfer.peer_as, t.Transfer.peer_ip) in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (t :: prev))
    transfers;
  Hashtbl.fold
    (fun (peer_as, peer_ip) ts acc ->
      let ts = List.rev ts in
      {
        peer_as;
        peer_ip;
        transfers = List.length ts;
        anchored = List.length (List.filter (fun t -> t.Transfer.anchored) ts);
        slow = List.length (List.filter (is_slow ~threshold) ts);
        prefixes_total =
          List.fold_left (fun n t -> n + t.Transfer.prefixes) 0 ts;
        duration = Descriptive.summarize (List.map Transfer.duration_s ts);
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         let c = Int.compare a.peer_as b.peer_as in
         if c <> 0 then c else Int32.compare a.peer_ip b.peer_ip)

let of_reports ?slow_threshold_s files =
  let transfers =
    List.concat_map (fun r -> r.Archive.transfers) files
    |> List.sort Transfer.compare
  in
  let durations = List.map Transfer.duration_s transfers in
  let threshold_auto = Option.is_none slow_threshold_s in
  let slow_threshold_s =
    match slow_threshold_s with
    | Some t -> t
    | None -> (
        match durations with
        | [] -> Float.nan
        | _ -> Descriptive.slow_threshold durations)
  in
  let slow =
    if Float.is_nan slow_threshold_s then []
    else List.filter (is_slow ~threshold:slow_threshold_s) transfers
  in
  {
    files;
    transfers;
    slow_threshold_s;
    threshold_auto;
    slow;
    duration_knee_s = Knee.knee_of_sorted durations;
    peers = peer_summaries ~threshold:slow_threshold_s transfers;
  }

let run ?(jobs = 1) ?strict ?config ?slow_threshold_s paths =
  let jobs = if jobs < 1 then 1 else jobs in
  let scan path =
    Tdat_obs.Span.with_ ~name:"study-scan" (fun () ->
        let r = Archive.scan_file ?strict ?config path in
        Obs.Counter.incr m_files;
        Obs.Counter.add m_transfers (List.length r.Archive.transfers);
        Obs.Counter.add m_anchored
          (List.length
             (List.filter (fun t -> t.Transfer.anchored) r.Archive.transfers));
        r)
  in
  let files =
    Tdat_parallel.Pool.with_pool ~jobs (fun pool ->
        Tdat_parallel.Pool.map pool scan paths)
  in
  of_reports ?slow_threshold_s files
