module Mrt = Tdat_bgp.Mrt

type file_report = {
  path : string;
  transfers : Transfer.t list;
  diags : Mrt.Diag.t list;
  stats : Mrt.stats;
}

let scan_file ?(strict = false) ?config path =
  let detector = Detect.create ?config ~source:path () in
  let diags = ref [] in
  let (), stats =
    Mrt.fold_file ~strict
      ~on_diag:(fun d -> diags := d :: !diags)
      path ~init:()
      (fun () entry -> Detect.feed detector entry)
  in
  {
    path;
    transfers = Detect.finish detector;
    diags = List.rev !diags;
    stats;
  }

let scan_entries ?config ?(source = "") entries =
  let transfers = Detect.over_entries ?config ~source entries in
  let count f = List.length (List.filter f entries) in
  {
    path = source;
    transfers;
    diags = [];
    stats =
      {
        Mrt.records = List.length entries;
        bgp_messages = count (function Mrt.Message _ -> true | Mrt.State _ -> false);
        state_changes = count (function Mrt.State _ -> true | Mrt.Message _ -> false);
        skipped = 0;
      };
  }
