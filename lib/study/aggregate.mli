(** The longitudinal aggregator: fold many archive files — farmed over
    {!Tdat_parallel.Pool} — into the paper's Section-2 deliverables:
    duration/size CDFs, slow-transfer classification, and per-peer
    summaries.  Results are deterministic in the input file order, so
    the rendered report is byte-identical for every [~jobs] value. *)

type peer_summary = {
  peer_as : int;
  peer_ip : int32;
  transfers : int;
  anchored : int;
  slow : int;
  prefixes_total : int;
  duration : Tdat_stats.Descriptive.summary;  (** Seconds. *)
}

type report = {
  files : Archive.file_report list;  (** Input order. *)
  transfers : Transfer.t list;  (** All files, {!Transfer.compare} order. *)
  slow_threshold_s : float;
      (** The classification cut actually used; [nan] with no
          transfers. *)
  threshold_auto : bool;
      (** [true]: mean + 3·stddev (the paper's Section II-B cut);
          [false]: caller-fixed. *)
  slow : Transfer.t list;  (** Transfers with duration above the cut. *)
  duration_knee_s : float option;
      (** L-method knee of the sorted duration curve, when the curve
          has enough points. *)
  peers : peer_summary list;  (** Sorted by (AS, IP). *)
}

val of_reports : ?slow_threshold_s:float -> Archive.file_report list -> report
(** Pure aggregation of already-scanned files. *)

val run :
  ?jobs:int ->
  ?strict:bool ->
  ?config:Detect.config ->
  ?slow_threshold_s:float ->
  string list ->
  report
(** [run paths] scans every archive ([jobs] worker domains; default 1)
    and aggregates.  File order — and therefore the report — is
    independent of [jobs]. *)
