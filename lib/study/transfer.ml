module Time_us = Tdat_timerange.Time_us

type t = {
  source : string;
  peer_as : int;
  peer_ip : int32;
  start_ts : Time_us.t;
  end_ts : Time_us.t;
  prefixes : int;
  messages : int;
  anchored : bool;
}

let duration t = Time_us.(t.end_ts - t.start_ts)
let duration_s t = Time_us.to_s (duration t)

let rate t =
  let d = duration_s t in
  if d > 0. then float_of_int t.prefixes /. d else 0.

let compare a b =
  let c = Time_us.compare a.start_ts b.start_ts in
  if c <> 0 then c
  else
    let c = Int.compare a.peer_as b.peer_as in
    if c <> 0 then c
    else
      let c = Int32.compare a.peer_ip b.peer_ip in
      if c <> 0 then c
      else
        let c = Time_us.compare a.end_ts b.end_ts in
        if c <> 0 then c else String.compare a.source b.source

let equal a b =
  compare a b = 0
  && Int.equal a.prefixes b.prefixes
  && Int.equal a.messages b.messages
  && Bool.equal a.anchored b.anchored

let pp_ip ppf ip =
  let b n = Int32.to_int (Int32.logand (Int32.shift_right_logical ip n) 0xFFl) in
  Format.fprintf ppf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

let pp ppf t =
  Format.fprintf ppf "AS%d %a: %d prefixes in %.3f s (%d msgs, %.0f pfx/s%s)%s"
    t.peer_as pp_ip t.peer_ip t.prefixes (duration_s t) t.messages (rate t)
    (if t.anchored then ", anchored" else "")
    (if String.equal t.source "" then ""
     else Printf.sprintf " [%s]" (Filename.basename t.source))
