module Time_us = Tdat_timerange.Time_us

exception Parse_error of string

type t = {
  source : string;
  peer_as : int;
  peer_ip : int32;
  start_ts : Time_us.t;
  end_ts : Time_us.t;
  prefixes : int;
  messages : int;
}

let to_file path ts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        "# source\tpeer_as\tpeer_ip\tstart_us\tend_us\tprefixes\tmessages\n";
      List.iter
        (fun t ->
          Printf.fprintf oc "%s\t%d\t%ld\t%d\t%d\t%d\t%d\n" t.source t.peer_as
            t.peer_ip t.start_ts t.end_ts t.prefixes t.messages)
        ts)

let parse_line line =
  match String.split_on_char '\t' line with
  | [ source; peer_as; peer_ip; start_ts; end_ts; prefixes; messages ] -> (
      match
        ( int_of_string_opt peer_as,
          Int32.of_string_opt peer_ip,
          int_of_string_opt start_ts,
          int_of_string_opt end_ts,
          int_of_string_opt prefixes,
          int_of_string_opt messages )
      with
      | Some peer_as, Some peer_ip, Some start_ts, Some end_ts, Some prefixes,
        Some messages ->
          { source; peer_as; peer_ip; start_ts; end_ts; prefixes; messages }
      | _ -> raise (Parse_error ("Truth.of_file: bad field in: " ^ line)))
  | _ -> raise (Parse_error ("Truth.of_file: bad line: " ^ line))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line ->
            let acc =
              if String.equal line "" || (String.length line > 0 && line.[0] = '#')
              then acc
              else parse_line line :: acc
            in
            go acc
        | exception End_of_file -> List.rev acc
      in
      go [])

let matches ?(tol = 0) t (d : Transfer.t) =
  Int.equal t.peer_as d.Transfer.peer_as
  && Int32.equal t.peer_ip d.Transfer.peer_ip
  && abs Time_us.(t.start_ts - d.Transfer.start_ts) <= tol
  && abs Time_us.(t.end_ts - d.Transfer.end_ts) <= tol

let recall ?tol ~truth detected =
  match truth with
  | [] -> 1.
  | _ ->
      let hit t = List.exists (fun d -> matches ?tol t d) detected in
      let hits = List.length (List.filter hit truth) in
      float_of_int hits /. float_of_int (List.length truth)
