module Mrt = Tdat_bgp.Mrt
module Cdf = Tdat_stats.Cdf
module Ascii_plot = Tdat_stats.Ascii_plot
module Descriptive = Tdat_stats.Descriptive

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

(* --- text ----------------------------------------------------------------- *)

let to_text ?(plot = true) (r : Aggregate.report) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let n_transfers = List.length r.Aggregate.transfers in
  let n_slow = List.length r.Aggregate.slow in
  pf "measurement study: %d file(s), %d transfer(s) from %d peer(s)\n"
    (List.length r.Aggregate.files)
    n_transfers
    (List.length r.Aggregate.peers);
  List.iter
    (fun (f : Archive.file_report) ->
      let s = f.Archive.stats in
      pf "  %s: %d transfer(s) — %d record(s): %d message(s), %d state \
          change(s), %d skipped%s\n"
        f.Archive.path
        (List.length f.Archive.transfers)
        s.Mrt.records s.Mrt.bgp_messages s.Mrt.state_changes s.Mrt.skipped
        (match List.length f.Archive.diags with
        | 0 -> ""
        | n -> Printf.sprintf ", %d finding(s)" n);
      List.iter
        (fun d -> pf "    %s\n" (Format.asprintf "%a" Mrt.Diag.pp d))
        f.Archive.diags)
    r.Aggregate.files;
  if n_transfers = 0 then pf "no table transfers detected\n"
  else begin
    let durations = List.map Transfer.duration_s r.Aggregate.transfers in
    let summary = Descriptive.summarize durations in
    pf "durations: mean %.3f s, stddev %.3f s, min %.3f s, max %.3f s\n"
      summary.Descriptive.mean summary.Descriptive.stddev
      summary.Descriptive.min summary.Descriptive.max;
    (match r.Aggregate.duration_knee_s with
    | Some k -> pf "duration knee (L-method): %.3f s\n" k
    | None -> ());
    pf "slow threshold: %.3f s (%s)\n" r.Aggregate.slow_threshold_s
      (if r.Aggregate.threshold_auto then "mean + 3*stddev" else "fixed");
    pf "slow transfers: %d of %d (%.1f%%)\n" n_slow n_transfers
      (pct n_slow n_transfers);
    List.iter
      (fun t -> pf "  %s\n" (Format.asprintf "%a" Transfer.pp t))
      r.Aggregate.slow;
    pf "per-peer:\n";
    List.iter
      (fun (p : Aggregate.peer_summary) ->
        pf "  AS%d %s: %d transfer(s) (%d anchored, %d slow), mean %.3f s, \
            max %.3f s, %d prefixes\n"
          p.Aggregate.peer_as
          (Format.asprintf "%a" Transfer.pp_ip p.Aggregate.peer_ip)
          p.Aggregate.transfers p.Aggregate.anchored p.Aggregate.slow
          p.Aggregate.duration.Descriptive.mean
          p.Aggregate.duration.Descriptive.max p.Aggregate.prefixes_total)
      r.Aggregate.peers;
    if plot && n_transfers >= 2 then begin
      let cdf = Cdf.of_samples durations in
      pf "duration CDF:\n%s"
        (Ascii_plot.cdf ~x_label:"transfer duration (s)"
           [ ("duration", Cdf.points cdf) ])
    end
  end;
  Buffer.contents b

(* --- JSON ----------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_nan x || Float.is_integer x && Float.abs x < 1e15 then
    if Float.is_nan x then "null" else Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_of_diag (d : Mrt.Diag.t) =
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"record\":%s,\"message\":\"%s\"}"
    d.Mrt.Diag.code
    (Mrt.Diag.severity_name d.Mrt.Diag.severity)
    (match d.Mrt.Diag.record with Some i -> string_of_int i | None -> "null")
    (json_escape d.Mrt.Diag.message)

let json_of_file (f : Archive.file_report) =
  let s = f.Archive.stats in
  Printf.sprintf
    "{\"path\":\"%s\",\"records\":%d,\"bgp_messages\":%d,\"state_changes\":%d,\
     \"skipped\":%d,\"transfers\":%d,\"diags\":%s}"
    (json_escape f.Archive.path)
    s.Mrt.records s.Mrt.bgp_messages s.Mrt.state_changes s.Mrt.skipped
    (List.length f.Archive.transfers)
    (json_list json_of_diag f.Archive.diags)

let json_of_transfer ~threshold (t : Transfer.t) =
  Printf.sprintf
    "{\"source\":\"%s\",\"peer_as\":%d,\"peer_ip\":\"%s\",\"start_us\":%d,\
     \"end_us\":%d,\"duration_s\":%s,\"prefixes\":%d,\"messages\":%d,\
     \"rate_pfx_s\":%s,\"anchored\":%b,\"slow\":%b}"
    (json_escape t.Transfer.source)
    t.Transfer.peer_as
    (Format.asprintf "%a" Transfer.pp_ip t.Transfer.peer_ip)
    t.Transfer.start_ts t.Transfer.end_ts
    (json_float (Transfer.duration_s t))
    t.Transfer.prefixes t.Transfer.messages
    (json_float (Transfer.rate t))
    t.Transfer.anchored
    ((not (Float.is_nan threshold)) && Transfer.duration_s t > threshold)

let json_of_peer (p : Aggregate.peer_summary) =
  Printf.sprintf
    "{\"peer_as\":%d,\"peer_ip\":\"%s\",\"transfers\":%d,\"anchored\":%d,\
     \"slow\":%d,\"prefixes_total\":%d,\"duration_mean_s\":%s,\
     \"duration_max_s\":%s}"
    p.Aggregate.peer_as
    (Format.asprintf "%a" Transfer.pp_ip p.Aggregate.peer_ip)
    p.Aggregate.transfers p.Aggregate.anchored p.Aggregate.slow
    p.Aggregate.prefixes_total
    (json_float p.Aggregate.duration.Descriptive.mean)
    (json_float p.Aggregate.duration.Descriptive.max)

let to_json (r : Aggregate.report) =
  let threshold = r.Aggregate.slow_threshold_s in
  let durations = List.map Transfer.duration_s r.Aggregate.transfers in
  let quantiles =
    match durations with
    | [] -> "null"
    | _ ->
        let q p = json_float (Descriptive.percentile p durations) in
        Printf.sprintf
          "{\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s}"
          (q 50.) (q 90.) (q 99.) (q 100.)
  in
  Printf.sprintf
    "{\"files\":%s,\"transfers\":%s,\"slow_threshold_s\":%s,\
     \"threshold\":\"%s\",\"duration_knee_s\":%s,\"slow_transfers\":%d,\
     \"peers\":%s,\"duration_quantiles_s\":%s}"
    (json_list json_of_file r.Aggregate.files)
    (json_list (json_of_transfer ~threshold) r.Aggregate.transfers)
    (json_float threshold)
    (if r.Aggregate.threshold_auto then "auto" else "fixed")
    (match r.Aggregate.duration_knee_s with
    | Some k -> json_float k
    | None -> "null")
    (List.length r.Aggregate.slow)
    (json_list json_of_peer r.Aggregate.peers)
    quantiles
