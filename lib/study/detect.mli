(** The table-transfer detector: turns a per-archive stream of MRT
    entries into {!Transfer.t} records, reproducing the paper's
    Section-2 methodology over longitudinal update archives.

    Detection rules, per peer (identified by [(peer AS, peer IP)]):

    - A BGP4MP_STATE_CHANGE entering [Established] — or a received OPEN
      message, for archives without state-change records — {e anchors} a
      transfer: the transfer start is the session-establishment time, as
      in the paper (which uses the TCP connection start).  A second
      anchor while an anchored transfer is still empty is ignored (first
      anchor wins), so STATE_CHANGE followed by the archived OPEN does
      not reset the start.
    - A state change leaving [Established] (session reset), or a
      NOTIFICATION, closes the open transfer at its last update.
    - UPDATE messages accumulate into the open transfer; a quiet gap
      longer than [quiet_gap] closes it and starts a new {e unanchored}
      transfer whose start is its first update.
    - KEEPALIVEs are ignored: they neither extend nor split a transfer.
    - On close, bursts announcing fewer than [min_prefixes] distinct
      NLRI entries are discarded as steady-state churn.

    Feed entries in archive order; the detector assumes per-peer
    timestamps are non-decreasing (MRT archives are written in arrival
    order). *)

type config = {
  quiet_gap : Tdat_timerange.Time_us.t;
      (** Silence that ends a transfer.  The default, 200 s, matches
          {!Tdat_bgp.Mct.default_config} for the same reason: it exceeds
          the usual BGP hold time, so a transfer paused by peer-group
          blocking still counts as one transfer. *)
  min_prefixes : int;
      (** Minimum announced prefixes for a burst to count as a table
          transfer (default 32, mirroring MCT's churn arming
          threshold). *)
}

val default_config : config

type t

val create : ?config:config -> ?source:string -> unit -> t
(** A fresh detector; [source] is stamped into emitted transfers. *)

val feed : t -> Tdat_bgp.Mrt.entry -> unit

val finish : t -> Transfer.t list
(** Closes every open transfer and returns all detected transfers in
    {!Transfer.compare} order.  The detector must not be fed
    afterwards. *)

val over_entries :
  ?config:config -> ?source:string -> Tdat_bgp.Mrt.entry list -> Transfer.t list
(** One-shot convenience: [create]/[feed]/[finish]. *)
