(** Scanning one MRT archive file: stream it through the streaming
    {!Tdat_bgp.Mrt} reader and the {!Detect} state machine in bounded
    memory, collecting transfers, diagnostics and counters. *)

type file_report = {
  path : string;
  transfers : Transfer.t list;  (** In {!Transfer.compare} order. *)
  diags : Tdat_bgp.Mrt.Diag.t list;  (** M0xx findings, in file order. *)
  stats : Tdat_bgp.Mrt.stats;
}

val scan_file :
  ?strict:bool -> ?config:Detect.config -> string -> file_report
(** Salvages by default; [~strict:true] raises
    [Tdat_bgp.Bgp_error.Decode_error] on the first malformed record. *)

val scan_entries :
  ?config:Detect.config -> ?source:string -> Tdat_bgp.Mrt.entry list ->
  file_report
(** In-memory variant for already-decoded entries (no diagnostics). *)
