open Tdat_pkt

let severity_of = function
  | Pcap.Diag.Error -> Diag.Error
  | Pcap.Diag.Warning -> Diag.Warning
  | Pcap.Diag.Info -> Diag.Info

let of_pcap (d : Pcap.Diag.t) =
  let subject =
    match d.Pcap.Diag.record with
    | Some i -> Printf.sprintf "pcap record %d" i
    | None -> "pcap"
  in
  {
    Diag.code = d.Pcap.Diag.code;
    severity = severity_of d.Pcap.Diag.severity;
    subject;
    message = d.Pcap.Diag.message;
    where = None;
  }

let of_result (r : Pcap.result) = List.map of_pcap r.Pcap.diags
