open Tdat_pkt

let severity_of = function
  | Pcap.Diag.Error -> Diag.Error
  | Pcap.Diag.Warning -> Diag.Warning
  | Pcap.Diag.Info -> Diag.Info

let of_pcap (d : Pcap.Diag.t) =
  let subject =
    match d.Pcap.Diag.record with
    | Some i -> Printf.sprintf "pcap record %d" i
    | None -> "pcap"
  in
  {
    Diag.code = d.Pcap.Diag.code;
    severity = severity_of d.Pcap.Diag.severity;
    subject;
    message = d.Pcap.Diag.message;
    where = None;
  }

let of_result (r : Pcap.result) = List.map of_pcap r.Pcap.diags

module Mrt = Tdat_bgp.Mrt

let mrt_severity_of = function
  | Mrt.Diag.Error -> Diag.Error
  | Mrt.Diag.Warning -> Diag.Warning
  | Mrt.Diag.Info -> Diag.Info

let of_mrt ?(file = "mrt") (d : Mrt.Diag.t) =
  let subject =
    match d.Mrt.Diag.record with
    | Some i -> Printf.sprintf "%s record %d" file i
    | None -> file
  in
  {
    Diag.code = d.Mrt.Diag.code;
    severity = mrt_severity_of d.Mrt.Diag.severity;
    subject;
    message = d.Mrt.Diag.message;
    where = None;
  }

let of_mrt_diags ?file ds = List.map (of_mrt ?file) ds
