(** Runtime invariant validators for the T-DAT pipeline.

    Each validator re-derives an invariant the event-series algebra
    assumes and returns structured {!Diag.t} findings (empty list = the
    invariant holds).  The codes:

    - [A001] — span-set canonicality: spans sorted by start, pairwise
      disjoint and non-adjacent (Section III-A's "ordered set of time
      durations" is only well-defined on the canonical form);
    - [A002] — trace timestamp monotonicity: segments in non-decreasing
      time order;
    - [A003] — seq/ack sanity: no negative sequence/ack/length/window
      fields, and the cumulative acknowledgment never regresses within
      one direction;
    - [A004] — ACK-shift conservation: shifting re-times segments but
      must not create, drop, or mutate them, and may only move them
      forward;
    - [A005] — factor accounting: every delay ratio lies in [0, 1] and
      every series size is bounded by the analysis period;
    - [A006] — stage-timing accounting: every recorded pipeline-stage
      duration is finite and non-negative, and the stage durations sum
      to no more than the enclosing analyze span (the stages are
      measured as nested windows of one clock, so an overrun means the
      instrumentation itself is lying);
    - [A007] — cross-[--jobs] determinism: the stable section of a
      metrics snapshot is byte-identical whatever [--jobs] value
      produced it — the runtime backstop for lint rule L007's static
      reachability approximation;
    - [A008] — experiment report self-consistency: the differential
      harness's per-file field/mismatch accounting agrees with its own
      totals and deterministic ordering (see DESIGN.md, "Differential
      analysis").

    [Analyzer.analyze ~audit:true] runs all of them over a full analysis;
    [tdat_cli check] exposes them on the command line
    ([--verify-determinism] adds A007). *)

val canonical_spans :
  ?subject:string -> Tdat_timerange.Span.t list -> Diag.t list
(** [A001] on a raw span list (what {!Tdat_timerange.Span_set.to_list}
    of a well-formed set must look like). *)

val canonical_set :
  ?subject:string -> Tdat_timerange.Span_set.t -> Diag.t list
(** [A001] on a built set: validates the exported list form. *)

val monotone_segments :
  ?subject:string -> Tdat_pkt.Tcp_segment.t list -> Diag.t list
(** [A002]: timestamps non-decreasing. *)

val seq_ack_sane :
  ?subject:string -> Tdat_pkt.Tcp_segment.t list -> Diag.t list
(** [A003]: field sanity on every segment, plus per-direction cumulative
    ACK monotonicity (a regression is a {!Diag.Warning} — packet
    reordering at the sniffer can legitimately produce one). *)

val ack_shift_conserved :
  ?subject:string ->
  before:Tdat_pkt.Tcp_segment.t array ->
  after:Tdat_pkt.Tcp_segment.t array ->
  unit ->
  Diag.t list
(** [A004]: [after] must contain exactly the segments of [before] (same
    src/dst/seq/ack/len/window/flags multiset) with every timestamp
    moved forward or kept — no segment gained, lost, or rewritten. *)

val ratios_in_range : ?subject:string -> (string * float) list -> Diag.t list
(** [A005] on named delay ratios: finite and within [0, 1]. *)

val sizes_bounded :
  ?subject:string ->
  period:Tdat_timerange.Time_us.t ->
  (string * Tdat_timerange.Time_us.t) list ->
  Diag.t list
(** [A005] on named series sizes: non-negative and at most the analysis
    period. *)

val stage_timings :
  ?subject:string -> total_s:float -> (string * float) list -> Diag.t list
(** [A006] on named stage durations (seconds): finite, non-negative,
    and summing to at most [total_s] plus measurement noise.  An empty
    timing list (uninstrumented run) passes vacuously. *)

val stable_snapshots_equal :
  ?subject:string -> reference:string -> candidate:string -> unit -> Diag.t list
(** [A007]: byte-compare two
    [Tdat_obs.Metrics.snapshot_json ~stable_only:true] strings, the
    reference from a [jobs = 1] run and the candidate from a [jobs > 1]
    run of the same input.  A divergence (reported with the offset and
    both excerpts) means a jobs-dependent value leaked into a stable
    instrument or worker-shared mutable state raced — the dynamic
    failure mode lint rule L007 approximates statically. *)

val experiment_consistent :
  ?subject:string ->
  files:(string * int * int) list ->
  total_fields:int ->
  total_mismatches:int ->
  unit ->
  Diag.t list
(** [A008] — differential-experiment report self-consistency: per-file
    [(file, fields_compared, mismatches)] triples must be strictly
    sorted by file (the deterministic report order), non-negative, with
    [mismatches <= fields_compared] (every mismatch is one compared
    field path), and the totals must equal the per-file sums.
    [Tdat_experiment.Engine] runs this over every report it builds;
    [tdat experiment run] fails on any finding. *)
