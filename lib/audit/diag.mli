(** Structured diagnostics emitted by the runtime invariant audits.

    Every audit finding carries a stable code ([A001]...), a severity, a
    human-readable message, and — when the violation is localized in time
    — the offending time range.  DESIGN.md ("Static analysis & auditing")
    documents the invariant behind each code. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** Stable invariant code, e.g. ["A001"]. *)
  severity : severity;
  subject : string;
      (** What was audited: a series name, ["voids"], ["acks"], ... *)
  message : string;
  where : Tdat_timerange.Span.t option;
      (** Offending time range, when the violation is localized. *)
}

val error : ?where:Tdat_timerange.Span.t -> code:string -> subject:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warning : ?where:Tdat_timerange.Span.t -> code:string -> subject:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val info : ?where:Tdat_timerange.Span.t -> code:string -> subject:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val severity_name : severity -> string
val equal_severity : severity -> severity -> bool

val is_error : t -> bool

val errors : t list -> t list
(** Findings with severity {!Error}. *)

val pp : Format.formatter -> t -> unit
(** One line: [A001 error [series] message (at [a, b))]. *)

val pp_report : Format.formatter -> t list -> unit
(** All findings, one per line, followed by a severity tally. *)
