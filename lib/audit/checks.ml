open Tdat_timerange
module Seg = Tdat_pkt.Tcp_segment
module Endpoint = Tdat_pkt.Endpoint

(* --- A001: span-set canonicality ----------------------------------------- *)

let canonical_spans ?(subject = "span set") spans =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let acc =
          if Span.compare a b > 0 then
            Diag.error ~code:"A001" ~subject
              ~where:(Span.hull a b)
              "spans out of order: %a before %a" Span.pp a Span.pp b
            :: acc
          else if Span.overlaps a b then
            Diag.error ~code:"A001" ~subject
              ~where:(Span.hull a b)
              "overlapping spans %a and %a" Span.pp a Span.pp b
            :: acc
          else if Span.touches a b then
            Diag.error ~code:"A001" ~subject
              ~where:(Span.hull a b)
              "adjacent spans %a and %a not coalesced" Span.pp a Span.pp b
            :: acc
          else acc
        in
        go acc rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] spans

let canonical_set ?subject set = canonical_spans ?subject (Span_set.to_list set)

(* --- A002: timestamp monotonicity ----------------------------------------- *)

let monotone_segments ?(subject = "trace") segs =
  let rec go acc = function
    | (a : Seg.t) :: (b :: _ as rest) ->
        let acc =
          if a.ts > b.ts then
            Diag.error ~code:"A002" ~subject
              ~where:(Span.v b.ts (a.ts + 1))
              "timestamps regress: %a after %a" Time_us.pp b.ts Time_us.pp
              a.ts
            :: acc
          else acc
        in
        go acc rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] segs

(* --- A003: seq/ack arithmetic sanity -------------------------------------- *)

let seq_ack_sane ?(subject = "trace") segs =
  let field_diags =
    List.concat_map
      (fun (s : Seg.t) ->
        let bad name v =
          if v < 0 then
            Some
              (Diag.error ~code:"A003" ~subject
                 ~where:(Span.point s.ts)
                 "negative %s (%d) on segment at %a" name v Time_us.pp s.ts)
          else None
        in
        List.filter_map Fun.id
          [
            bad "seq" s.seq;
            bad "ack" s.ack;
            bad "len" s.len;
            bad "window" s.window;
          ])
      segs
  in
  (* Cumulative ACK must not regress within one direction. *)
  let tbl = Hashtbl.create 4 in
  let regressions =
    List.filter_map
      (fun (s : Seg.t) ->
        if not s.flags.Seg.ack then None
        else begin
          let key = (s.src, s.dst) in
          let prev = Hashtbl.find_opt tbl key in
          Hashtbl.replace tbl key s.ack;
          match prev with
          | Some p when s.ack < p ->
              Some
                (Diag.warning ~code:"A003" ~subject
                   ~where:(Span.point s.ts)
                   "cumulative ack regresses from %d to %d at %a" p s.ack
                   Time_us.pp s.ts)
          | _ -> None
        end)
      segs
  in
  field_diags @ regressions

(* --- A004: ACK-shift conservation ------------------------------------------ *)

(* Everything but the timestamp: shifting may re-time a segment, nothing
   else. *)
let shape_compare (a : Seg.t) (b : Seg.t) =
  let flag_bits (f : Seg.flags) =
    (if f.syn then 16 else 0)
    lor (if f.ack then 8 else 0)
    lor (if f.fin then 4 else 0)
    lor (if f.rst then 2 else 0)
    lor if f.psh then 1 else 0
  in
  let cmp =
    [
      (fun () -> Endpoint.compare a.src b.src);
      (fun () -> Endpoint.compare a.dst b.dst);
      (fun () -> Int.compare a.seq b.seq);
      (fun () -> Int.compare a.ack b.ack);
      (fun () -> Int.compare a.len b.len);
      (fun () -> Int.compare a.window b.window);
      (fun () -> Int.compare (flag_bits a.flags) (flag_bits b.flags));
    ]
  in
  List.fold_left (fun acc f -> if acc <> 0 then acc else f ()) 0 cmp

let shape_then_ts a b =
  match shape_compare a b with
  | 0 -> Time_us.compare a.Seg.ts b.Seg.ts
  | c -> c

let ack_shift_conserved ?(subject = "ack shift") ~before ~after () =
  if Array.length before <> Array.length after then
    [
      Diag.error ~code:"A004" ~subject
        "segment count changed across shifting: %d before, %d after"
        (Array.length before) (Array.length after);
    ]
  else begin
    let b = Array.copy before and a = Array.copy after in
    Array.sort shape_then_ts b;
    Array.sort shape_then_ts a;
    let diags = ref [] in
    Array.iteri
      (fun i (bs : Seg.t) ->
        let as_ = a.(i) in
        if shape_compare bs as_ <> 0 then
          diags :=
            Diag.error ~code:"A004" ~subject
              ~where:(Span.point as_.Seg.ts)
              "segment rewritten across shifting: %a became %a" Seg.pp bs
              Seg.pp as_
            :: !diags
        else if as_.Seg.ts < bs.Seg.ts then
          diags :=
            Diag.error ~code:"A004" ~subject
              ~where:(Span.v as_.Seg.ts (bs.Seg.ts + 1))
              "segment moved backward across shifting (%a -> %a)" Time_us.pp
              bs.Seg.ts Time_us.pp as_.Seg.ts
            :: !diags)
      b;
    List.rev !diags
  end

(* --- A005: factor accounting ------------------------------------------------ *)

let ratio_epsilon = 1e-9

let ratios_in_range ?(subject = "factors") ratios =
  List.filter_map
    (fun (name, r) ->
      if not (Float.is_finite r) then
        Some
          (Diag.error ~code:"A005" ~subject "ratio of %s is not finite (%f)"
             name r)
      else if r < -.ratio_epsilon || r > 1. +. ratio_epsilon then
        Some
          (Diag.error ~code:"A005" ~subject
             "ratio of %s out of [0,1]: %.6f" name r)
      else None)
    ratios

let sizes_bounded ?(subject = "series") ~period sizes =
  List.filter_map
    (fun (name, size) ->
      if size < Time_us.zero then
        Some
          (Diag.error ~code:"A005" ~subject "size of %s is negative (%a)"
             name Time_us.pp size)
      else if size > period then
        Some
          (Diag.error ~code:"A005" ~subject
             "size of %s (%a) exceeds the analysis period (%a)" name
             Time_us.pp size Time_us.pp period)
      else None)
    sizes

(* --- A006: stage-timing accounting ----------------------------------------- *)

(* The wall clock granularity plus float rounding: nested stage windows
   measured with the same clock can only exceed their enclosing span by
   measurement noise. *)
let timing_epsilon_s = 1e-4

let stage_timings ?(subject = "stages") ~total_s timings =
  let negative =
    List.filter_map
      (fun (name, d) ->
        if Float.is_finite d && d >= 0. then None
        else
          Some
            (Diag.error ~code:"A006" ~subject
               "stage %s has an invalid duration (%.9f s)" name d))
      timings
  in
  let sum = List.fold_left (fun acc (_, d) -> acc +. d) 0. timings in
  let overrun =
    if timings <> [] && sum > total_s +. timing_epsilon_s then
      [
        Diag.error ~code:"A006" ~subject
          "stage durations sum to %.6f s, exceeding the enclosing span \
           (%.6f s)"
          sum total_s;
      ]
    else []
  in
  negative @ overrun

(* --- A007: cross-jobs determinism of stable metrics ------------------------ *)

(* The runtime counterpart of lint rule L007: stable instruments are
   only fed input-derived values through commutative atomic updates, so
   the stable section of a metrics snapshot must be byte-identical
   whatever --jobs value produced it.  A divergence means either a
   wall-clock/config-dependent value leaked into a stable instrument or
   worker-shared mutable state raced. *)

let first_difference a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && Char.equal a.[i] b.[i] then go (i + 1) else i in
  go 0

let excerpt s i =
  let start = if i < 24 then 0 else i - 24 in
  let len = min 48 (String.length s - start) in
  if len <= 0 then "" else String.sub s start len

let stable_snapshots_equal ?(subject = "metrics") ~reference ~candidate () =
  if String.equal reference candidate then []
  else
    let i = first_difference reference candidate in
    [
      Diag.error ~code:"A007" ~subject
        "stable metric snapshots diverge across --jobs values at byte %d \
         (reference %S vs candidate %S); a jobs-dependent value leaked into \
         a stable instrument, or worker-shared mutable state raced — see \
         lint rule L007"
        i (excerpt reference i) (excerpt candidate i);
    ]

(* --- A008: experiment report self-consistency ------------------------------ *)

(* The differential-analysis engine (Tdat_experiment) publishes per-file
   field/mismatch counts plus totals, and the mismatch corpus mirrors
   the diverging files.  Each quantity is derived independently (the
   totals by the aggregation barrier, the per-file counts by the pool
   workers, the corpus by the writer), so any disagreement means the
   experiment harness itself — the safety rail for every hot-path
   refactor — is lying about what it compared. *)

let experiment_consistent ?(subject = "experiment") ~files ~total_fields
    ~total_mismatches () =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let sum_fields = ref 0 and sum_mismatches = ref 0 in
  let rec walk prev = function
    | [] -> ()
    | (file, fields, mismatches) :: rest ->
        if fields < 0 || mismatches < 0 then
          add
            (Diag.error ~code:"A008" ~subject
               "%s: negative accounting (%d fields, %d mismatches)" file
               fields mismatches);
        if mismatches > fields then
          add
            (Diag.error ~code:"A008" ~subject
               "%s: %d mismatches out of only %d compared fields — every \
                mismatch must correspond to one compared field path"
               file mismatches fields);
        (match prev with
        | Some p when String.compare p file >= 0 ->
            add
              (Diag.error ~code:"A008" ~subject
                 "file order not strictly sorted: %S then %S — the report \
                  would not be byte-identical across --jobs" p file)
        | _ -> ());
        sum_fields := !sum_fields + fields;
        sum_mismatches := !sum_mismatches + mismatches;
        walk (Some file) rest
  in
  walk None files;
  if !sum_fields <> total_fields then
    add
      (Diag.error ~code:"A008" ~subject
         "total_fields = %d but per-file fields sum to %d" total_fields
         !sum_fields);
  if !sum_mismatches <> total_mismatches then
    add
      (Diag.error ~code:"A008" ~subject
         "total_mismatches = %d but per-file mismatches sum to %d"
         total_mismatches !sum_mismatches);
  List.rev !diags
