(** Lifting pcap ingestion diagnostics into the audit report shape.

    The pcap reader emits typed [P0xx] diagnostics ([Tdat_pkt.Pcap.Diag])
    but cannot depend on this library; this module converts them to
    {!Diag.t} so [tdat check] presents one unified finding list covering
    both the capture-parsing boundary and the analysis invariants.
    DESIGN.md ("Ingestion robustness") documents the code table. *)

val of_pcap : Tdat_pkt.Pcap.Diag.t -> Diag.t
(** Severity and code are preserved; the record index becomes the
    subject (["pcap record 12"]). *)

val of_result : Tdat_pkt.Pcap.result -> Diag.t list
