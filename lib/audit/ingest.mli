(** Lifting ingestion diagnostics into the audit report shape.

    The pcap reader emits typed [P0xx] diagnostics ([Tdat_pkt.Pcap.Diag])
    and the MRT archive reader typed [M0xx] diagnostics
    ([Tdat_bgp.Mrt.Diag]), but neither can depend on this library; this
    module converts both to {!Diag.t} so [tdat check] and [tdat study]
    present one unified finding list covering the parsing boundaries and
    the analysis invariants.  DESIGN.md ("Ingestion robustness" and
    "Measurement study") documents the code tables. *)

val of_pcap : Tdat_pkt.Pcap.Diag.t -> Diag.t
(** Severity and code are preserved; the record index becomes the
    subject (["pcap record 12"]). *)

val of_result : Tdat_pkt.Pcap.result -> Diag.t list

val of_mrt : ?file:string -> Tdat_bgp.Mrt.Diag.t -> Diag.t
(** Severity and code are preserved; the record index (and [file], when
    given) becomes the subject (["a.mrt record 12"]). *)

val of_mrt_diags : ?file:string -> Tdat_bgp.Mrt.Diag.t list -> Diag.t list
