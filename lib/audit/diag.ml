type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  where : Tdat_timerange.Span.t option;
}

let make severity ?where ~code ~subject fmt =
  Format.kasprintf
    (fun message -> { code; severity; subject; message; where })
    fmt

let error ?where = make Error ?where
let warning ?where = make Warning ?where
let info ?where = make Info ?where

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let equal_severity a b =
  match (a, b) with
  | Error, Error | Warning, Warning | Info, Info -> true
  | (Error | Warning | Info), _ -> false

let is_error d = equal_severity d.severity Error
let errors ds = List.filter is_error ds

let pp ppf d =
  Format.fprintf ppf "%s %s [%s] %s" d.code (severity_name d.severity)
    d.subject d.message;
  match d.where with
  | Some span -> Format.fprintf ppf " (at %a)" Tdat_timerange.Span.pp span
  | None -> ()

let pp_report ppf ds =
  let count sev =
    List.length (List.filter (fun d -> equal_severity d.severity sev) ds)
  in
  Format.fprintf ppf "@[<v>";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp d) ds;
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@]" (count Error)
    (count Warning) (count Info)
