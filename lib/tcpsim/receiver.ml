module Seg = Tdat_pkt.Tcp_segment
module Engine = Tdat_netsim.Engine

type t = {
  engine : Engine.t;
  config : Tcp_types.config;
  local : Tdat_pkt.Endpoint.t;
  remote : Tdat_pkt.Endpoint.t;
  send : Seg.t -> unit;
  mutable rcv_nxt : int;
  mutable consumed : int;
  stream : Buffer.t; (* all contiguous bytes ever received *)
  mutable ooo : (int * string) list; (* out-of-order (seq, payload), sorted *)
  mutable unacked_segments : int;
  mutable delack_timer : Engine.timer option;
  mutable on_data : unit -> unit;
  mutable killed : bool;
}

let create ~engine ~config ~local ~remote ~send () =
  {
    engine;
    config;
    local;
    remote;
    send;
    rcv_nxt = 0;
    consumed = 0;
    stream = Buffer.create 4096;
    ooo = [];
    unacked_segments = 0;
    delack_timer = None;
    on_data = (fun () -> ());
    killed = false;
  }

let ooo_bytes t =
  List.fold_left (fun acc (_, p) -> acc + String.length p) 0 t.ooo

(* Out-of-order segments occupy the same receive buffer as deliverable
   data: while a sequence hole is open, buffered-but-undeliverable bytes
   close the advertised window just like unconsumed ones. *)
let buffered t = t.rcv_nxt - t.consumed + ooo_bytes t
let raw_window t = max 0 (t.config.Tcp_types.max_adv_window - buffered t)

(* Receiver-side silly-window-syndrome avoidance (RFC 1122): advertise
   zero until at least one MSS of buffer is free, rather than dribbling
   sub-MSS windows.  This is what makes genuine zero-window phases (and
   persist probing) appear on the wire. *)
let advertised_window t =
  let raw = raw_window t in
  if raw < t.config.Tcp_types.mss then 0 else raw

let available t = t.rcv_nxt - t.consumed
let rcv_nxt t = t.rcv_nxt
let set_on_data t f = t.on_data <- f
let kill t = t.killed <- true
let is_killed t = t.killed

let peek t =
  Buffer.sub t.stream t.consumed (t.rcv_nxt - t.consumed)

let send_ack ?(syn = false) t =
  (match t.delack_timer with
  | Some timer -> Engine.cancel timer
  | None -> ());
  t.delack_timer <- None;
  t.unacked_segments <- 0;
  let flags = Seg.flags ~ack:true ~syn () in
  let mss_opt = if syn then Some t.config.Tcp_types.mss else None in
  t.send
    (Seg.v ~ts:(Engine.now t.engine) ~src:t.local ~dst:t.remote ~seq:0
       ~ack:t.rcv_nxt ~window:(advertised_window t) ~flags ?mss_opt ())

let schedule_delack t =
  match t.delack_timer with
  | Some _ -> ()
  | None ->
      if t.config.Tcp_types.delack_time <= 0 then send_ack t
      else
        t.delack_timer <-
          Some
            (Engine.schedule_after t.engine t.config.Tcp_types.delack_time
               (fun () ->
                 t.delack_timer <- None;
                 send_ack t))

(* Insert an out-of-order payload, keeping the list sorted and dropping
   fully-duplicate segments. *)
let rec insert_ooo seq payload = function
  | [] -> [ (seq, payload) ]
  | (s, p) :: rest when seq < s -> (seq, payload) :: (s, p) :: rest
  | (s, p) :: rest when seq = s && String.length payload <= String.length p ->
      (s, p) :: rest
  | (s, p) :: rest -> (s, p) :: insert_ooo seq payload rest

(* Pull contiguous data out of the out-of-order store after rcv_nxt
   advanced. *)
let drain_ooo t =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    match t.ooo with
    | (seq, payload) :: rest when seq <= t.rcv_nxt ->
        let plen = String.length payload in
        if seq + plen > t.rcv_nxt then begin
          let skip = t.rcv_nxt - seq in
          Buffer.add_substring t.stream payload skip (plen - skip);
          t.rcv_nxt <- seq + plen
        end;
        t.ooo <- rest;
        progressed := true
    | _ -> ()
  done

let on_segment t (seg : Seg.t) =
  if not t.killed then begin
    if seg.flags.Seg.syn then begin
      (* Passive open: answer SYN with SYN+ACK advertising our MSS. *)
      send_ack ~syn:true t
    end
    else if Seg.is_data seg then begin
      let before = t.rcv_nxt in
      let seq = seg.seq and plen = seg.len in
      let payload =
        if seg.payload = "" then String.make plen '\000' else seg.payload
      in
      if seq + plen <= t.rcv_nxt then
        (* Entirely duplicate (retransmission): immediate ACK. *)
        send_ack t
      else begin
        (* Flow-control enforcement: accept whatever physically fits the
           buffer (the advertised window may be SWS-rounded to zero). *)
        let room = raw_window t in
        if seq > t.rcv_nxt then begin
          (* Out of order: store (bounded by room heuristically) and send
             an immediate duplicate ACK. *)
          if room > 0 then t.ooo <- insert_ooo seq payload t.ooo;
          send_ack t
        end
        else begin
          let skip = t.rcv_nxt - seq in
          let usable = min (plen - skip) room in
          if usable > 0 then begin
            Buffer.add_substring t.stream payload skip usable;
            t.rcv_nxt <- t.rcv_nxt + usable;
            drain_ooo t
          end;
          if usable < plen - skip then
            (* Buffer full: data beyond the window is dropped; tell the
               sender where we stand right away. *)
            send_ack t
          else begin
            t.unacked_segments <- t.unacked_segments + 1;
            if t.unacked_segments >= t.config.Tcp_types.delack_segments then
              send_ack t
            else schedule_delack t
          end;
          if t.rcv_nxt > before then t.on_data ()
        end
      end
    end
  end

let consume t n =
  if n < 0 || n > available t then
    invalid_arg "Receiver.consume: more than available";
  let was_closed = advertised_window t < t.config.Tcp_types.mss in
  t.consumed <- t.consumed + n;
  (* Window update: if the window was (near) closed and consuming opened
     it, advertise the new window so the sender can resume. *)
  if was_closed && advertised_window t >= t.config.Tcp_types.mss then
    send_ack t
