module Seg = Tdat_pkt.Tcp_segment
module Link = Tdat_netsim.Link
module Sniffer = Tdat_netsim.Sniffer
module Loss = Tdat_netsim.Loss

type path = {
  delay : Tdat_timerange.Time_us.t;
  jitter : Tdat_timerange.Time_us.t;
  bandwidth_bps : int;
  buffer_pkts : int;
  data_loss : Loss.t;
  ack_loss : Loss.t;
}

let path ?(delay = 1_000) ?(jitter = 0) ?(bandwidth_bps = 1_000_000_000)
    ?(buffer_pkts = 128) ?(data_loss = Loss.none) ?(ack_loss = Loss.none) () =
  { delay; jitter; bandwidth_bps; buffer_pkts; data_loss; ack_loss }

(* Routing key: (src, dst) endpoints of the segment. *)
module Route_key = struct
  type t = Tdat_pkt.Endpoint.t * Tdat_pkt.Endpoint.t

  let equal (a1, a2) (b1, b2) =
    Tdat_pkt.Endpoint.equal a1 b1 && Tdat_pkt.Endpoint.equal a2 b2

  let hash (a, b) =
    Hashtbl.hash
      (Int32.to_int a.Tdat_pkt.Endpoint.ip, a.Tdat_pkt.Endpoint.port,
       Int32.to_int b.Tdat_pkt.Endpoint.ip, b.Tdat_pkt.Endpoint.port)
end

module Routes = Hashtbl.Make (Route_key)

module Site = struct
  type t = {
    sniffer : Sniffer.t;
    down_data : Link.t; (* sniffer -> receiver host *)
    down_ack : Link.t;  (* receiver host -> sniffer *)
    to_receiver : (Seg.t -> unit) Routes.t;
    to_sender : (Seg.t -> unit) Routes.t;
  }

  let route table seg =
    match Routes.find_opt table (seg.Seg.src, seg.Seg.dst) with
    | Some handler -> handler seg
    | None -> () (* unknown flow: dropped silently *)

  let create ~engine ?rng ~local () =
    let sniffer = Sniffer.create ~engine () in
    let to_receiver = Routes.create 16 in
    let to_sender = Routes.create 16 in
    let rec site =
      lazy
        {
          sniffer;
          down_data =
            Link.create ~engine ~name:"local-data" ~delay:local.delay
              ~jitter:local.jitter ?jitter_rng:rng
              ~bandwidth_bps:local.bandwidth_bps
              ~buffer_pkts:local.buffer_pkts ~loss:local.data_loss
              ~deliver:(fun seg -> route (Lazy.force site).to_receiver seg)
              ();
          down_ack =
            Link.create ~engine ~name:"local-ack" ~delay:local.delay
              ~jitter:local.jitter ?jitter_rng:rng
              ~bandwidth_bps:local.bandwidth_bps
              ~buffer_pkts:local.buffer_pkts ~loss:local.ack_loss
              ~deliver:(fun seg ->
                let t = Lazy.force site in
                Sniffer.tap t.sniffer ~then_:(route t.to_sender) seg)
              ();
          to_receiver;
          to_sender;
        }
    in
    Lazy.force site

  (* Entry point for packets arriving from the network side (after the
     upstream link): tap, then traverse the local link to the box. *)
  let ingress_from_network t seg =
    Sniffer.tap t.sniffer ~then_:(fun seg -> Link.send t.down_data seg) seg

  (* Entry point for packets the receiver host emits (ACKs). *)
  let egress_from_receiver t seg = Link.send t.down_ack seg

  let register_to_receiver t ~src ~dst handler =
    Routes.replace t.to_receiver (src, dst) handler

  let register_to_sender t ~src ~dst handler =
    Routes.replace t.to_sender (src, dst) handler

  let sniffer t = t.sniffer
  let trace t = Sniffer.trace t.sniffer

  let local_drops t =
    let s = Link.stats t.down_data in
    s.Link.dropped_loss + s.Link.dropped_overflow
end

type t = {
  sender : Sender.t;
  receiver : Receiver.t;
  up_data : Link.t;
  flow : Tdat_pkt.Flow.t;
}

let create ~engine ?(sender_cfg = Tcp_types.default)
    ?(receiver_cfg = Tcp_types.default) ~sender_ep ~receiver_ep ~upstream
    ~site ?rng () =
  let receiver = ref None in
  let sender = ref None in
  (* Upstream data link: sender -> site (drops here are upstream losses,
     invisible to the sniffer). *)
  let up_data =
    Link.create ~engine ~name:"upstream-data" ~delay:upstream.delay
      ~jitter:upstream.jitter ?jitter_rng:rng
      ~bandwidth_bps:upstream.bandwidth_bps ~buffer_pkts:upstream.buffer_pkts
      ~loss:upstream.data_loss
      ~deliver:(fun seg -> Site.ingress_from_network site seg)
      ()
  in
  (* Upstream ACK link: site -> sender. *)
  let up_ack =
    Link.create ~engine ~name:"upstream-ack" ~delay:upstream.delay
      ~jitter:upstream.jitter ?jitter_rng:rng
      ~bandwidth_bps:upstream.bandwidth_bps ~buffer_pkts:upstream.buffer_pkts
      ~loss:upstream.ack_loss
      ~deliver:(fun seg ->
        match !sender with Some s -> Sender.on_segment s seg | None -> ())
      ()
  in
  let snd =
    Sender.create ~engine ~config:sender_cfg ~local:sender_ep
      ~remote:receiver_ep
      ~send:(fun seg -> Link.send up_data seg)
      ?rng ()
  in
  let rcv =
    Receiver.create ~engine ~config:receiver_cfg ~local:receiver_ep
      ~remote:sender_ep
      ~send:(fun seg -> Site.egress_from_receiver site seg)
      ()
  in
  sender := Some snd;
  receiver := Some rcv;
  Site.register_to_receiver site ~src:sender_ep ~dst:receiver_ep (fun seg ->
      Receiver.on_segment rcv seg);
  Site.register_to_sender site ~src:receiver_ep ~dst:sender_ep (fun seg ->
      Link.send up_ack seg);
  {
    sender = snd;
    receiver = rcv;
    up_data;
    flow = Tdat_pkt.Flow.v ~sender:sender_ep ~receiver:receiver_ep;
  }

let sender t = t.sender
let receiver t = t.receiver
let start t = Sender.start t.sender

let upstream_drops t =
  let s = Link.stats t.up_data in
  s.Link.dropped_loss + s.Link.dropped_overflow

let flow t = t.flow
