type segment = Seq of int list | Set of int list
type t = segment list

let of_asns asns = [ Seq asns ]

let hop_count t =
  let seg = function Seq l -> List.length l | Set _ -> 1 in
  List.fold_left (fun acc s -> acc + seg s) 0 t

let encode_segment buf seg =
  let ty, asns = match seg with Set l -> (1, l) | Seq l -> (2, l) in
  Buffer.add_uint8 buf ty;
  Buffer.add_uint8 buf (List.length asns);
  List.iter (fun asn -> Buffer.add_uint16_be buf asn) asns

let encode buf t = List.iter (encode_segment buf) t

module Slice = Tdat_pkt.Slice

let decode_slice s =
  let len = Slice.length s in
  let rec segments off acc =
    if off = len then List.rev acc
    else if off + 2 > len then
      Bgp_error.fail ~context:"As_path.decode" "truncated header"
    else begin
      let ty = Slice.u8 s off in
      let n = Slice.u8 s (off + 1) in
      if off + 2 + (2 * n) > len then
        Bgp_error.fail ~context:"As_path.decode" "truncated";
      let asns = List.init n (fun i -> Slice.u16be s (off + 2 + (2 * i))) in
      let seg =
        match ty with
        | 1 -> Set asns
        | 2 -> Seq asns
        | ty -> Bgp_error.fail ~context:"As_path.decode" "segment type %d" ty
      in
      segments (off + 2 + (2 * n)) (seg :: acc)
    end
  in
  segments 0 []

let decode s = decode_slice (Slice.of_string s)

let compare_segment a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y -> List.compare Int.compare x y
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare = List.compare compare_segment
let equal a b = compare a b = 0

let pp_segment ppf = function
  | Seq l ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
        Format.pp_print_int ppf l
  | Set l ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        l

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp_segment ppf t
