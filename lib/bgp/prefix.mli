(** IPv4 prefixes and their NLRI wire encoding (RFC 4271 §4.3). *)

type t = private { addr : int32; len : int }

val v : int32 -> int -> t
(** [v addr len] masks [addr] to its first [len] bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val of_quad : int -> int -> int -> int -> int -> t
(** [of_quad a b c d len] is [a.b.c.d/len]. *)

val addr : t -> int32
val len : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val encoded_size : t -> int
(** NLRI bytes: 1 length byte + ceil(len/8) address bytes. *)

val encode : Buffer.t -> t -> unit

val decode : string -> int -> t * int
(** [decode s off] returns the prefix and the offset past it.
    @raise Failure on truncated or invalid input. *)

val decode_slice : Tdat_pkt.Slice.t -> int -> t * int
(** As {!decode}, reading through a borrowed slice (no copies). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
