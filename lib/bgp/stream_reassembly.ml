module Scratch = Tdat_parallel.Scratch

type t = {
  mutable data : Bytes.t;
  scratch : Scratch.cell option;
      (* When present, [data] is the cell's buffer and growth goes
         through the arena so the high-water mark is reused across
         connections on the same domain. *)
  mutable received : (int * int) list;
      (* Sorted disjoint [lo, hi) intervals of received stream offsets. *)
  mutable frontier : int; (* First offset not yet contiguous. *)
  mutable deliveries : (int * Tdat_timerange.Time_us.t) list;
      (* Reverse-ordered (new_frontier, time) frontier advances. *)
  mutable duplicate_bytes : int;
}

let create ?scratch () =
  {
    data =
      (match scratch with
      | Some cell -> Scratch.ensure cell 4096
      | None -> Bytes.create 4096);
    scratch;
    received = [];
    frontier = 0;
    deliveries = [];
    duplicate_bytes = 0;
  }

let ensure_capacity t needed =
  let cap = Bytes.length t.data in
  if needed > cap then
    match t.scratch with
    | Some cell -> t.data <- Scratch.ensure_keep cell needed
    | None ->
        let cap' = ref cap in
        while needed > !cap' do
          cap' := !cap' * 2
        done;
        let bigger = Bytes.create !cap' in
        Bytes.blit t.data 0 bigger 0 cap;
        t.data <- bigger

(* Insert [lo, hi) into the sorted disjoint interval list, returning the
   new list and the number of bytes that were already present. *)
let insert_interval intervals lo hi =
  let rec go acc overlap lo hi = function
    | [] -> (List.rev ((lo, hi) :: acc), overlap)
    | (a, b) :: rest when b < lo -> go ((a, b) :: acc) overlap lo hi rest
    | (a, b) :: rest when hi < a ->
        (List.rev_append acc ((lo, hi) :: (a, b) :: rest), overlap)
    | (a, b) :: rest ->
        (* Overlapping or adjacent: merge, accumulating the overlap. *)
        let ov = max 0 (min hi b - max lo a) in
        go acc (overlap + ov) (min lo a) (max hi b) rest
  in
  go [] 0 lo hi intervals

let feed ?(rebase = 0) t (seg : Tdat_pkt.Tcp_segment.t) =
  if seg.len > 0 then begin
    let lo = seg.seq - rebase in
    let hi = lo + seg.len in
    if lo < 0 then invalid_arg "Stream_reassembly.feed: negative offset";
    ensure_capacity t hi;
    let received, overlap = insert_interval t.received lo hi in
    (* Only blit the genuinely new part when the segment is entirely new
       or extends past what we had; overlapping rewrites with identical
       content are harmless, so blit unconditionally for simplicity —
       except where it would overwrite already-delivered bytes with a
       spurious differing retransmission; traces from this repo always
       retransmit identical bytes.  A payload shorter than [len] (not
       materialized, or snaplen-clipped by the sniffer) is zero-filled to
       the declared length so stream offsets stay exact. *)
    let copy = min (String.length seg.payload) seg.len in
    if copy > 0 then Bytes.blit_string seg.payload 0 t.data lo copy;
    if copy < seg.len then Bytes.fill t.data (lo + copy) (seg.len - copy) '\000';
    t.received <- received;
    t.duplicate_bytes <- t.duplicate_bytes + overlap;
    (* Advance the contiguous frontier. *)
    match t.received with
    | (0, hi0) :: _ when hi0 > t.frontier ->
        t.frontier <- hi0;
        t.deliveries <- (hi0, seg.ts) :: t.deliveries
    | _ -> ()
  end

let of_segments segs =
  let t = create () in
  List.iter (feed t) segs;
  t

let contiguous_length t = t.frontier
let contiguous t = Bytes.sub_string t.data 0 t.frontier

(* Borrowed view of the contiguous part: valid only until the next
   [feed] (which may grow/replace [data]).  The copy-free input to the
   streaming message scans. *)
let contiguous_slice t = Tdat_pkt.Slice.of_bytes ~len:t.frontier t.data

let delivery_time t off =
  if off >= t.frontier then
    invalid_arg "Stream_reassembly.delivery_time: offset beyond frontier";
  (* deliveries are reverse-ordered by frontier; find the earliest advance
     covering [off]. *)
  let rec search best = function
    | [] -> best
    | (hi, ts) :: rest -> if hi > off then search ts rest else best
  in
  match t.deliveries with
  | [] -> invalid_arg "Stream_reassembly.delivery_time: no deliveries"
  | (_, latest) :: _ -> search latest t.deliveries

let total_gaps t =
  match t.received with
  | [] -> 0
  | (_, _) :: rest -> List.length rest

let duplicate_bytes t = t.duplicate_bytes
