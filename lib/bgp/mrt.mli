(** Streaming, fault-tolerant MRT codec (RFC 6396) for BGP4MP records —
    the format Quagga collectors archive BGP updates in, the output
    format of [pcap2bgp], and the input format of the measurement-study
    subsystem ([Tdat_study], `tdat study`).

    Records are written as [BGP4MP_ET] (type 17, microsecond timestamps)
    and read back from either BGP4MP (type 16, second resolution) or
    BGP4MP_ET.  Two subtypes are understood: [BGP4MP_MESSAGE] (1), a
    received BGP message, and [BGP4MP_STATE_CHANGE] (0), an FSM
    transition of the monitored session — the event the table-transfer
    detector anchors transfer starts on.  Other record types and
    subtypes are skipped losslessly.

    Reading is {e streaming}: {!fold_file} / {!fold_channel} decode one
    record at a time from a reused buffer, so a year-long archive is
    processed in memory proportional to its largest record.  Malformed
    input degrades gracefully: each problem produces a typed {!Diag.t}
    ([M0xx] codes, see DESIGN.md "Measurement study") and the reader
    salvages every decodable record.  [?strict:true] — and the legacy
    {!decode} / {!of_file} — instead raise
    [Bgp_error.Decode_error] with context ["Mrt.decode"] on the first
    error- or warning-severity diagnostic, message-compatible with the
    historical whole-file decoder. *)

type record = {
  ts : Tdat_timerange.Time_us.t;
  peer_as : int;
  local_as : int;
  peer_ip : int32;
  local_ip : int32;
  msg : Msg.t;
}

(** BGP FSM states as encoded in BGP4MP_STATE_CHANGE records
    (RFC 6396 §4.4.1, codes 1–6). *)
type fsm_state = Idle | Connect | Active | Open_sent | Open_confirm | Established

val fsm_state_code : fsm_state -> int
(** The RFC 6396 wire code, 1–6. *)

val fsm_state_of_code : int -> fsm_state option
val fsm_state_name : fsm_state -> string
val equal_fsm_state : fsm_state -> fsm_state -> bool

type state_change = {
  sc_ts : Tdat_timerange.Time_us.t;
  sc_peer_as : int;
  sc_local_as : int;
  sc_peer_ip : int32;
  sc_local_ip : int32;
  old_state : fsm_state;
  new_state : fsm_state;
}

(** One decoded archive record. *)
type entry = Message of record | State of state_change

val entry_ts : entry -> Tdat_timerange.Time_us.t
val messages : entry list -> record list
(** The [Message] payloads, in order (state changes dropped). *)

(** Typed per-record archive diagnostics, the same code/severity/message
    shape as [Pcap.Diag] ([Tdat_audit.Ingest] lifts both into the audit
    report):

    - [M001] warning: truncated record header — the file ends mid-header;
      salvage stops, earlier records are kept.
    - [M002] warning: truncated record — the declared body length
      overruns the file; salvage stops.
    - [M003] warning: short BGP4MP body; the record is skipped and
      salvage continues (framing is intact).
    - [M004] warning: bad embedded BGP message; skipped, salvage
      continues.
    - [M005] info: record of an unsupported MRT type or subtype,
      skipped losslessly (also what the legacy strict decoder did).
    - [M006] warning: state-change body with an FSM code outside 1–6;
      skipped, salvage continues.
    - [M007] warning: record declaring an implausibly large body
      (> 16 MiB) — framing is no longer trusted; salvage stops. *)
module Diag : sig
  type severity = Error | Warning | Info

  type t = {
    code : string;  (** Stable archive code, e.g. ["M002"]. *)
    severity : severity;
    record : int option;  (** 0-based index of the offending record. *)
    message : string;
  }

  val severity_name : severity -> string
  val is_error : t -> bool
  val pp : Format.formatter -> t -> unit
end

type stats = {
  records : int;  (** Complete records read. *)
  bgp_messages : int;  (** [Message] entries produced. *)
  state_changes : int;  (** [State] entries produced. *)
  skipped : int;  (** Records that produced no entry (unsupported, malformed). *)
}

type result = { entries : entry list; diags : Diag.t list; stats : stats }

val encode : record list -> string
(** Message records only (legacy). *)

val encode_entries : entry list -> string
(** Messages and state changes, as BGP4MP_ET records. *)

val decode : string -> record list
(** Strict whole-buffer parse returning the [Message] records only —
    state-change and unsupported records are skipped, as the historical
    decoder did.
    @raise Bgp_error.Decode_error on malformed input. *)

val decode_result : ?strict:bool -> string -> result
(** Fault-tolerant by default: salvages every decodable record and
    reports problems as diagnostics.  [~strict:true] raises
    [Bgp_error.Decode_error] on the first error/warning diagnostic. *)

val fold_string :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  string ->
  init:'a ->
  ('a -> entry -> 'a) ->
  'a * stats
(** [fold_string data ~init f] decodes [data] one record at a time,
    folding [f] over the entries in archive order.  Diagnostics are
    streamed to [on_diag] instead of being accumulated. *)

val fold_channel :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  ?follow:Tdat_pkt.Ingest_io.follow ->
  in_channel ->
  init:'a ->
  ('a -> entry -> 'a) ->
  'a * stats
(** Streaming fold over a (binary) channel in bounded memory: the
    channel is read record by record into a reused buffer that never
    exceeds the largest record.  Reads are [EINTR]-safe and short reads
    are looped, so pipes and sockets never truncate a record; with
    [~follow] (see {!Tdat_pkt.Ingest_io.follow_idle}) EOF polls the
    source instead of ending the archive — the tailing mode for a
    still-growing file. *)

val fold_fd :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  ?follow:Tdat_pkt.Ingest_io.follow ->
  Unix.file_descr ->
  init:'a ->
  ('a -> entry -> 'a) ->
  'a * stats
(** {!fold_channel} over a raw descriptor ([Unix.read]) — the right
    entry point for pipes, sockets and tailed files. *)

val fold_file :
  ?strict:bool ->
  ?on_diag:(Diag.t -> unit) ->
  ?follow:Tdat_pkt.Ingest_io.follow ->
  string ->
  init:'a ->
  ('a -> entry -> 'a) ->
  'a * stats
(** {!fold_channel} on a freshly opened file, closed on return. *)

val to_file : string -> record list -> unit
val to_file_entries : string -> entry list -> unit

val of_file : string -> record list
(** Strict streaming read (legacy interface).
    @raise Bgp_error.Decode_error on malformed input. *)

val read_file : ?strict:bool -> string -> result
(** Streaming read collecting the salvaged entries, all diagnostics and
    counters.  Fault-tolerant unless [~strict:true]. *)
