(** TCP byte-stream reassembly from a one-directional packet trace — the
    heart of the paper's [pcap2bgp] side tool.

    Segments may arrive out of order, duplicated, retransmitted, or
    overlapping; the reassembler reconstructs the contiguous byte stream
    and records, for every byte, the instant it became deliverable to the
    application (i.e., when the stream first turned contiguous up to and
    including that byte).  Those delivery times are what give extracted
    BGP messages their arrival timestamps. *)

type t

val create : ?scratch:Tdat_parallel.Scratch.cell -> unit -> t
(** [?scratch] backs the stream buffer with a caller-provided per-domain
    arena cell (checked out via {!Tdat_parallel.Scratch.with_bytes}), so
    repeated reassemblies on one domain reuse a single high-water-mark
    buffer instead of allocating 4 KiB + doublings per connection. *)

val feed : ?rebase:int -> t -> Tdat_pkt.Tcp_segment.t -> unit
(** Feed a data segment (non-data segments are ignored).  Stream offsets
    come from [seq] minus [rebase] (default 0); the stream starts at
    offset 0.  A payload shorter than the segment's declared [len]
    (snaplen-truncated capture, or not materialized) is zero-filled to
    [len], keeping offsets exact. *)

val of_segments : Tdat_pkt.Tcp_segment.t list -> t

val contiguous : t -> string
(** The reconstructed stream from offset 0 up to the first gap. *)

val contiguous_slice : t -> Tdat_pkt.Slice.t
(** Borrowed view of {!contiguous} (no copy).  Invalidated by the next
    {!feed}, which may grow or replace the backing buffer. *)

val contiguous_length : t -> int

val delivery_time : t -> int -> Tdat_timerange.Time_us.t
(** [delivery_time t off]: when the byte at [off] became deliverable.
    @raise Invalid_argument if [off >= contiguous_length t]. *)

val total_gaps : t -> int
(** Number of distinct holes still open beyond the contiguous part. *)

val duplicate_bytes : t -> int
(** Bytes received more than once (retransmission overlap). *)
