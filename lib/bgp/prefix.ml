type t = { addr : int32; len : int }

let mask len =
  if len = 0 then 0l
  else Int32.shift_left Int32.minus_one (32 - len)

let v addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.v: bad length %d" len);
  { addr = Int32.logand addr (mask len); len }

let of_quad a b c d len =
  let e = Tdat_pkt.Endpoint.of_quad a b c d 0 in
  v e.Tdat_pkt.Endpoint.ip len

let addr t = t.addr
let len t = t.len

let compare a b =
  match Int32.unsigned_compare a.addr b.addr with
  | 0 -> Int.compare a.len b.len
  | c -> c

let equal a b = compare a b = 0
let byte_len t = (t.len + 7) / 8
let encoded_size t = 1 + byte_len t

let encode buf t =
  Buffer.add_uint8 buf t.len;
  let u = Int32.to_int t.addr land 0xFFFFFFFF in
  for i = 0 to byte_len t - 1 do
    Buffer.add_uint8 buf ((u lsr (24 - (8 * i))) land 0xFF)
  done

module Slice = Tdat_pkt.Slice

let decode_slice s off =
  if off >= Slice.length s then
    Bgp_error.fail ~context:"Prefix.decode" "truncated";
  let plen = Slice.u8 s off in
  if plen > 32 then
    Bgp_error.fail ~context:"Prefix.decode" "invalid prefix length";
  let nbytes = (plen + 7) / 8 in
  if off + 1 + nbytes > Slice.length s then
    Bgp_error.fail ~context:"Prefix.decode" "truncated address";
  let u = ref 0 in
  for i = 0 to nbytes - 1 do
    u := !u lor (Slice.u8 s (off + 1 + i) lsl (24 - (8 * i)))
  done;
  (v (Int32.of_int !u) plen, off + 1 + nbytes)

let decode s off = decode_slice (Slice.of_string s) off

let pp ppf t =
  let u = Int32.to_int t.addr land 0xFFFFFFFF in
  Format.fprintf ppf "%d.%d.%d.%d/%d"
    ((u lsr 24) land 0xFF)
    ((u lsr 16) land 0xFF)
    ((u lsr 8) land 0xFF)
    (u land 0xFF) t.len

let to_string t = Format.asprintf "%a" pp t
