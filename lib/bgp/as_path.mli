(** AS_PATH attribute values (RFC 4271 §4.3, 2-octet AS numbers). *)

type segment =
  | Seq of int list  (** AS_SEQUENCE: ordered. *)
  | Set of int list  (** AS_SET: unordered aggregate. *)

type t = segment list

val of_asns : int list -> t
(** A single AS_SEQUENCE. *)

val hop_count : t -> int
(** Path length as BGP counts it: an AS_SET contributes 1. *)

val encode : Buffer.t -> t -> unit
val decode : string -> t
(** Decodes a whole attribute value. @raise Failure on malformed input. *)

val decode_slice : Tdat_pkt.Slice.t -> t
(** As {!decode}, reading through a borrowed slice (no copies). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
