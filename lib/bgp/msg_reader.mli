(** Incremental extraction of BGP messages from a reassembled byte
    stream.  Combined with {!Stream_reassembly}, this is [pcap2bgp]:
    each extracted message carries the delivery time of its final byte,
    i.e., the instant the receiving BGP process could have read it. *)

type timed_msg = {
  ts : Tdat_timerange.Time_us.t;  (** Delivery time of the last byte. *)
  offset : int;                   (** Stream offset of the first byte. *)
  msg : Msg.t;
}

val extract : Stream_reassembly.t -> timed_msg list
(** All complete messages in the contiguous part of the stream, in order.
    Extraction stops silently at the first protocol violation (bad
    marker / bad length): a monitored link may carry non-BGP TCP
    connections, which simply yield no messages. *)

val extract_from_trace :
  Tdat_pkt.Trace.t -> flow:Tdat_pkt.Flow.t -> timed_msg list
(** Reassembles the sender→receiver direction of [flow] and extracts.
    Stream offsets start at the first data byte observed. *)

val reassemble_from_trace :
  ?scratch:Tdat_parallel.Scratch.cell ->
  Tdat_pkt.Trace.t ->
  flow:Tdat_pkt.Flow.t ->
  Stream_reassembly.t
(** The reassembly half of {!extract_from_trace}: feed every
    sender→receiver data segment, rebased to the first observed data
    byte, without materializing segment lists.  [?scratch] backs the
    stream buffer (see {!Stream_reassembly.create}).  Streaming scans
    ({!Mct.transfer_end_of_reasm}) consume this directly. *)
