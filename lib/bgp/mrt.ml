type record = {
  ts : Tdat_timerange.Time_us.t;
  peer_as : int;
  local_as : int;
  peer_ip : int32;
  local_ip : int32;
  msg : Msg.t;
}

type fsm_state = Idle | Connect | Active | Open_sent | Open_confirm | Established

let fsm_state_code = function
  | Idle -> 1
  | Connect -> 2
  | Active -> 3
  | Open_sent -> 4
  | Open_confirm -> 5
  | Established -> 6

let fsm_state_of_code = function
  | 1 -> Some Idle
  | 2 -> Some Connect
  | 3 -> Some Active
  | 4 -> Some Open_sent
  | 5 -> Some Open_confirm
  | 6 -> Some Established
  | _ -> None

let fsm_state_name = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

let equal_fsm_state a b = Int.equal (fsm_state_code a) (fsm_state_code b)

type state_change = {
  sc_ts : Tdat_timerange.Time_us.t;
  sc_peer_as : int;
  sc_local_as : int;
  sc_peer_ip : int32;
  sc_local_ip : int32;
  old_state : fsm_state;
  new_state : fsm_state;
}

type entry = Message of record | State of state_change

let entry_ts = function Message r -> r.ts | State s -> s.sc_ts

let messages entries =
  List.filter_map (function Message r -> Some r | State _ -> None) entries

module Diag = struct
  type severity = Error | Warning | Info

  type t = {
    code : string;
    severity : severity;
    record : int option;
    message : string;
  }

  let severity_name = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "info"

  let is_error d = match d.severity with Error -> true | Warning | Info -> false

  let pp ppf d =
    Format.fprintf ppf "%s %s" d.code (severity_name d.severity);
    (match d.record with
    | Some i -> Format.fprintf ppf " [record %d]" i
    | None -> ());
    Format.fprintf ppf " %s" d.message
end

type stats = {
  records : int;
  bgp_messages : int;
  state_changes : int;
  skipped : int;
}

type result = { entries : entry list; diags : Diag.t list; stats : stats }

let bgp4mp = 16
let bgp4mp_et = 17
let subtype_state_change = 0
let subtype_message = 1

(* A BGP4MP body is a 16- or 20-byte fixed part plus at most one 4 KiB
   BGP message; anything declaring megabytes is corrupted framing. *)
let max_record_len = 1 lsl 24

(* --- encoding ------------------------------------------------------------- *)

let encode_header buf ~ts ~subtype ~body_len =
  Buffer.add_int32_be buf (Int32.of_int (ts / 1_000_000));
  Buffer.add_uint16_be buf bgp4mp_et;
  Buffer.add_uint16_be buf subtype;
  (* ET records count the 4-byte microsecond field in the length. *)
  Buffer.add_int32_be buf (Int32.of_int (body_len + 4));
  Buffer.add_int32_be buf (Int32.of_int (ts mod 1_000_000))

let encode_record buf r =
  let msg_bytes = Msg.encode r.msg in
  (* BGP4MP_MESSAGE body: peer AS, local AS, ifindex, AFI, peer IP,
     local IP, then the raw BGP message. *)
  let body_len = 2 + 2 + 2 + 2 + 4 + 4 + String.length msg_bytes in
  encode_header buf ~ts:r.ts ~subtype:subtype_message ~body_len;
  Buffer.add_uint16_be buf r.peer_as;
  Buffer.add_uint16_be buf r.local_as;
  Buffer.add_uint16_be buf 0;
  Buffer.add_uint16_be buf 1 (* AFI IPv4 *);
  Buffer.add_int32_be buf r.peer_ip;
  Buffer.add_int32_be buf r.local_ip;
  Buffer.add_string buf msg_bytes

let encode_state_change buf s =
  (* BGP4MP_STATE_CHANGE body: peer AS, local AS, ifindex, AFI, peer IP,
     local IP, old state, new state. *)
  let body_len = 2 + 2 + 2 + 2 + 4 + 4 + 2 + 2 in
  encode_header buf ~ts:s.sc_ts ~subtype:subtype_state_change ~body_len;
  Buffer.add_uint16_be buf s.sc_peer_as;
  Buffer.add_uint16_be buf s.sc_local_as;
  Buffer.add_uint16_be buf 0;
  Buffer.add_uint16_be buf 1 (* AFI IPv4 *);
  Buffer.add_int32_be buf s.sc_peer_ip;
  Buffer.add_int32_be buf s.sc_local_ip;
  Buffer.add_uint16_be buf (fsm_state_code s.old_state);
  Buffer.add_uint16_be buf (fsm_state_code s.new_state)

let encode_entry buf = function
  | Message r -> encode_record buf r
  | State s -> encode_state_change buf s

let encode_entries entries =
  let buf = Buffer.create 4096 in
  List.iter (encode_entry buf) entries;
  Buffer.contents buf

let encode records = encode_entries (List.map (fun r -> Message r) records)

(* --- streaming decode ----------------------------------------------------- *)

module Slice = Tdat_pkt.Slice

(* Cold branch of [parse_body], hoisted out of the hot set so the
   formatting allocation stays off the per-record path (L009). *)
let skipped_note ~idx ~ty ~subtype =
  `Diag
    {
      Diag.code = "M005";
      severity = Diag.Info;
      record = Some idx;
      message = Printf.sprintf "skipped record (type %d, subtype %d)" ty subtype;
    }

(* Parse one complete record body (a borrowed [Slice.t] over the reused
   record buffer) into an entry, or a diagnostic.  The header has
   already framed the record, so every problem here is skippable:
   salvage continues at the next record. *)
let parse_body ~idx ~sec ~ty ~subtype body =
  let len = Slice.length body in
  let warn code message =
    `Diag { Diag.code; severity = Diag.Warning; record = Some idx; message }
  in
  if ty <> bgp4mp && ty <> bgp4mp_et then skipped_note ~idx ~ty ~subtype
  else if subtype <> subtype_message && subtype <> subtype_state_change then
    skipped_note ~idx ~ty ~subtype
  else if ty = bgp4mp_et && len < 4 then warn "M003" "short BGP4MP body"
  else begin
    let usec, p = if ty = bgp4mp_et then (Slice.u32be body 0, 4) else (0, 0) in
    let ts = (sec * 1_000_000) + usec in
    if subtype = subtype_message then begin
      if p + 16 > len then warn "M003" "short BGP4MP body"
      else begin
        let peer_as = Slice.u16be body p in
        let local_as = Slice.u16be body (p + 2) in
        let peer_ip = Slice.i32be body (p + 8) in
        let local_ip = Slice.i32be body (p + 12) in
        match Msg.decode_slice body (p + 16) with
        | Some (msg, _) ->
            `Entry (Message { ts; peer_as; local_as; peer_ip; local_ip; msg })
        | None -> warn "M004" "bad embedded BGP message"
        | exception Bgp_error.Decode_error _ ->
            warn "M004" "bad embedded BGP message"
      end
    end
    else begin
      (* BGP4MP_STATE_CHANGE *)
      if p + 20 > len then warn "M003" "short BGP4MP body"
      else begin
        let old_code = Slice.u16be body (p + 16) in
        let new_code = Slice.u16be body (p + 18) in
        match (fsm_state_of_code old_code, fsm_state_of_code new_code) with
        | Some old_state, Some new_state ->
            `Entry
              (State
                 {
                   sc_ts = ts;
                   sc_peer_as = Slice.u16be body p;
                   sc_local_as = Slice.u16be body (p + 2);
                   sc_peer_ip = Slice.i32be body (p + 8);
                   sc_local_ip = Slice.i32be body (p + 12);
                   old_state;
                   new_state;
                 })
        | _ -> warn "M006" "bad state-change body"
      end
    end
  end

(* Reader throughput instruments (DESIGN.md, "Observability").  The
   counters are stable — derived only from the archive's contents —
   while the records-per-second gauge is wall-clock and volatile. *)

module Obs = Tdat_obs.Metrics

let m_records = Obs.Counter.make "mrt.records"
let m_messages = Obs.Counter.make "mrt.messages"
let m_state_changes = Obs.Counter.make "mrt.state_changes"
let m_skipped = Obs.Counter.make "mrt.skipped"
let m_bytes = Obs.Counter.make "mrt.bytes"
let g_records_per_s = Obs.Gauge.make ~stable:false "mrt.records_per_s"

(* [fill buf n] reads up to [n] bytes into [buf] and returns the count
   actually read — the only primitive the two input sources differ in. *)
let fold_fill ?(strict = false) ?(on_diag = fun _ -> ()) fill ~init f =
  let emit d =
    on_diag d;
    if strict then
      match d.Diag.severity with
      | Diag.Error | Diag.Warning ->
          Bgp_error.fail ~context:"Mrt.decode" "%s" d.Diag.message
      | Diag.Info -> ()
  in
  (* The record-body buffer is a per-domain arena slot: successive
     records (and successive archives on the same worker domain) reuse
     one high-water-mark buffer instead of allocating per record. *)
  Tdat_parallel.Scratch.(with_bytes ~slot:slot_mrt_body 4096) @@ fun bcell ->
  let hdr = Bytes.create 12 in
  let hdr_s = Slice.of_bytes hdr in
  let records = ref 0 in
  let bgp_messages = ref 0 in
  let state_changes = ref 0 in
  let skipped = ref 0 in
  let rec go acc =
    let got = fill hdr 12 in
    if got = 0 then acc
    else if got < 12 then begin
      emit
        {
          Diag.code = "M001";
          severity = Diag.Warning;
          record = Some !records;
          message = "truncated header";
        };
      acc
    end
    else begin
      let sec = Slice.u32be hdr_s 0 in
      let ty = Slice.u16be hdr_s 4 in
      let subtype = Slice.u16be hdr_s 6 in
      let rec_len = Slice.u32be hdr_s 8 in
      if rec_len > max_record_len then begin
        emit
          {
            Diag.code = "M007";
            severity = Diag.Warning;
            record = Some !records;
            message = "oversized record";
          };
        acc
      end
      else begin
        let body = Tdat_parallel.Scratch.ensure bcell rec_len in
        let got = fill body rec_len in
        if got < rec_len then begin
          emit
            {
              Diag.code = "M002";
              severity = Diag.Warning;
              record = Some !records;
              message = "truncated record";
            };
          acc
        end
        else begin
          let idx = !records in
          incr records;
          Obs.Counter.incr m_records;
          (* +12: the MRT common header travels with the body. *)
          Obs.Counter.add m_bytes (rec_len + 12);
          match
            parse_body ~idx ~sec ~ty ~subtype (Slice.of_bytes ~len:rec_len body)
          with
          | `Entry e ->
              (match e with
              | Message _ ->
                  incr bgp_messages;
                  Obs.Counter.incr m_messages
              | State _ ->
                  incr state_changes;
                  Obs.Counter.incr m_state_changes);
              go (f acc e)
          | `Diag d ->
              incr skipped;
              Obs.Counter.incr m_skipped;
              emit d;
              go acc
        end
      end
    end
  in
  let t_read = if Obs.enabled Obs.default then Tdat_obs.Clock.now_s () else 0. in
  let acc = Tdat_obs.Span.with_ ~name:"mrt-read" (fun () -> go init) in
  if Obs.enabled Obs.default then begin
    let dt = Tdat_obs.Clock.now_s () -. t_read in
    if dt > 0. then Obs.Gauge.set g_records_per_s (float_of_int !records /. dt)
  end;
  ( acc,
    {
      records = !records;
      bgp_messages = !bgp_messages;
      state_changes = !state_changes;
      skipped = !skipped;
    } )

let fold_string ?strict ?on_diag s ~init f =
  let pos = ref 0 in
  let len = String.length s in
  let fill buf n =
    let take = Stdlib.min n (len - !pos) in
    Bytes.blit_string s !pos buf 0 take;
    pos := !pos + take;
    take
  in
  fold_fill ?strict ?on_diag fill ~init f

(* Turn an [Ingest_io] reader into the [fill buf n] primitive the fold
   wants: loop short reads until the frame is complete or the reader
   reports a true EOF.  The reader itself retries EINTR and (with
   [~follow]) polls a still-growing source, so a partial [fill] result
   here really is end-of-capture, never a transient condition. *)
let fill_of_read (read : Tdat_pkt.Ingest_io.read) buf n =
  let rec go pos =
    if pos >= n then pos
    else
      let r = read buf pos (n - pos) in
      if r = 0 then pos else go (pos + r)
  in
  go 0

let fold_channel ?strict ?on_diag ?follow ic ~init f =
  fold_fill ?strict ?on_diag
    (fill_of_read (Tdat_pkt.Ingest_io.of_channel ?follow ic))
    ~init f

let fold_fd ?strict ?on_diag ?follow fd ~init f =
  fold_fill ?strict ?on_diag
    (fill_of_read (Tdat_pkt.Ingest_io.of_fd ?follow fd))
    ~init f

let fold_file ?strict ?on_diag ?follow path ~init f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> fold_channel ?strict ?on_diag ?follow ic ~init f)

let result_of_fold fold =
  let diags = ref [] in
  let entries, stats =
    fold ~on_diag:(fun d -> diags := d :: !diags) ~init:[] (fun acc e ->
        e :: acc)
  in
  { entries = List.rev entries; diags = List.rev !diags; stats }

let decode_result ?(strict = false) s =
  result_of_fold (fun ~on_diag ~init f -> fold_string ~strict ~on_diag s ~init f)

let read_file ?(strict = false) path =
  result_of_fold (fun ~on_diag ~init f -> fold_file ~strict ~on_diag path ~init f)

let decode s = messages (decode_result ~strict:true s).entries

let to_file_entries path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode_entries entries))

let to_file path records =
  to_file_entries path (List.map (fun r -> Message r) records)

let of_file path = messages (read_file ~strict:true path).entries
