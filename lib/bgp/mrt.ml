type record = {
  ts : Tdat_timerange.Time_us.t;
  peer_as : int;
  local_as : int;
  peer_ip : int32;
  local_ip : int32;
  msg : Msg.t;
}

let bgp4mp = 16
let bgp4mp_et = 17
let subtype_message = 1

let encode_record buf r =
  let msg_bytes = Msg.encode r.msg in
  (* BGP4MP_MESSAGE body: peer AS, local AS, ifindex, AFI, peer IP,
     local IP, then the raw BGP message. *)
  let body_len = 2 + 2 + 2 + 2 + 4 + 4 + String.length msg_bytes in
  Buffer.add_int32_be buf (Int32.of_int (r.ts / 1_000_000));
  Buffer.add_uint16_be buf bgp4mp_et;
  Buffer.add_uint16_be buf subtype_message;
  (* ET records count the 4-byte microsecond field in the length. *)
  Buffer.add_int32_be buf (Int32.of_int (body_len + 4));
  Buffer.add_int32_be buf (Int32.of_int (r.ts mod 1_000_000));
  Buffer.add_uint16_be buf r.peer_as;
  Buffer.add_uint16_be buf r.local_as;
  Buffer.add_uint16_be buf 0;
  Buffer.add_uint16_be buf 1 (* AFI IPv4 *);
  Buffer.add_int32_be buf r.peer_ip;
  Buffer.add_int32_be buf r.local_ip;
  Buffer.add_string buf msg_bytes

let encode records =
  let buf = Buffer.create 4096 in
  List.iter (encode_record buf) records;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  let u16 off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1] in
  let u32 off =
    (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]
  in
  let i32 off = Int32.of_int (u32 off) in
  let rec go off acc =
    if off = len then List.rev acc
    else if off + 12 > len then
      Bgp_error.fail ~context:"Mrt.decode" "truncated header"
    else begin
      let sec = u32 off in
      let ty = u16 (off + 4) in
      let subtype = u16 (off + 6) in
      let rec_len = u32 (off + 8) in
      let body = off + 12 in
      if body + rec_len > len then
        Bgp_error.fail ~context:"Mrt.decode" "truncated record";
      let next = body + rec_len in
      let acc =
        if (ty = bgp4mp || ty = bgp4mp_et) && subtype = subtype_message then begin
          let usec, p = if ty = bgp4mp_et then (u32 body, body + 4) else (0, body) in
          if p + 16 > next then
            Bgp_error.fail ~context:"Mrt.decode" "short BGP4MP body";
          let peer_as = u16 p in
          let local_as = u16 (p + 2) in
          let peer_ip = i32 (p + 8) in
          let local_ip = i32 (p + 12) in
          let msg_off = p + 16 in
          match Msg.decode s msg_off with
          | Some (msg, fin) when fin <= next ->
              {
                ts = (sec * 1_000_000) + usec;
                peer_as;
                local_as;
                peer_ip;
                local_ip;
                msg;
              }
              :: acc
          | _ -> Bgp_error.fail ~context:"Mrt.decode" "bad embedded BGP message"
        end
        else acc
      in
      go next acc
    end
  in
  go 0 []

let to_file path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode records))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))
