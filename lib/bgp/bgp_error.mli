(** Typed decode errors for the BGP wire codecs.

    Every decoder in this library ({!As_path}, {!Prefix}, {!Attr}, {!Msg},
    {!Mrt}) signals malformed input by raising {!Decode_error} with the
    decoding context (e.g. ["Msg.decode"]) and a human-readable reason.
    Callers that probe possibly-non-BGP byte streams — {!Msg_reader} in
    particular — match on the exception instead of on [Failure], so a
    decoding failure can never be confused with an unrelated [failwith].

    tdat-lint rule L005 enforces this convention: bare [failwith] is
    banned from library code. *)

exception Decode_error of { context : string; message : string }

val fail : context:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail ~context fmt ...] raises {!Decode_error} with the formatted
    message. *)

val message : exn -> string option
(** [message e] renders ["context: message"] when [e] is a
    {!Decode_error}. *)
