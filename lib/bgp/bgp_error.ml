exception Decode_error of { context : string; message : string }

let fail ~context fmt =
  Format.kasprintf
    (fun message -> raise (Decode_error { context; message }))
    fmt

let message = function
  | Decode_error { context; message } -> Some (context ^ ": " ^ message)
  | _ -> None

let () =
  Printexc.register_printer (function
    | Decode_error { context; message } ->
        Some (Printf.sprintf "Bgp_error.Decode_error(%s: %s)" context message)
    | _ -> None)
