type origin = Igp | Egp | Incomplete

type t =
  | Origin of origin
  | As_path of As_path.t
  | Next_hop of int32
  | Med of int32
  | Local_pref of int32
  | Unknown of { code : int; flags : int; data : string }

let type_code = function
  | Origin _ -> 1
  | As_path _ -> 2
  | Next_hop _ -> 3
  | Med _ -> 4
  | Local_pref _ -> 5
  | Unknown { code; _ } -> code

let flag_transitive = 0x40
let flag_optional = 0x80
let flag_extended = 0x10

let value_bytes t =
  let buf = Buffer.create 16 in
  (match t with
  | Origin o ->
      Buffer.add_uint8 buf
        (match o with Igp -> 0 | Egp -> 1 | Incomplete -> 2)
  | As_path p -> As_path.encode buf p
  | Next_hop ip ->
      Buffer.add_int32_be buf ip
  | Med v | Local_pref v -> Buffer.add_int32_be buf v
  | Unknown { data; _ } -> Buffer.add_string buf data);
  Buffer.contents buf

let default_flags = function
  | Origin _ | As_path _ | Next_hop _ | Local_pref _ -> flag_transitive
  | Med _ -> flag_optional
  | Unknown { flags; _ } -> flags

let encode buf t =
  let value = value_bytes t in
  let vlen = String.length value in
  let flags = default_flags t in
  let flags = if vlen > 255 then flags lor flag_extended else flags in
  Buffer.add_uint8 buf flags;
  Buffer.add_uint8 buf (type_code t);
  if flags land flag_extended <> 0 then Buffer.add_uint16_be buf vlen
  else Buffer.add_uint8 buf vlen;
  Buffer.add_string buf value

module Slice = Tdat_pkt.Slice

(* The only copy on this path is the [Unknown] payload, which the
   decoded attribute *keeps*; recognized attributes read their value in
   place through the slice. *)
let decode_all_slice s =
  let len = Slice.length s in
  let rec go off acc =
    if off = len then List.rev acc
    else if off + 3 > len then
      Bgp_error.fail ~context:"Attr.decode_all" "truncated header"
    else begin
      let flags = Slice.u8 s off in
      let code = Slice.u8 s (off + 1) in
      let extended = flags land flag_extended <> 0 in
      let vlen, voff =
        if extended then begin
          if off + 4 > len then
            Bgp_error.fail ~context:"Attr.decode_all" "truncated length";
          (Slice.u16be s (off + 2), off + 4)
        end
        else (Slice.u8 s (off + 2), off + 3)
      in
      if voff + vlen > len then
        Bgp_error.fail ~context:"Attr.decode_all" "truncated value";
      let attr =
        match code with
        | 1 when vlen = 1 ->
            Origin
              (match Slice.u8 s voff with
              | 0 -> Igp
              | 1 -> Egp
              | _ -> Incomplete)
        | 2 -> As_path (As_path.decode_slice (Slice.sub s ~off:voff ~len:vlen))
        | 3 when vlen = 4 -> Next_hop (Slice.i32be s voff)
        | 4 when vlen = 4 -> Med (Slice.i32be s voff)
        | 5 when vlen = 4 -> Local_pref (Slice.i32be s voff)
        | _ ->
            Unknown { code; flags; data = Slice.sub_string s ~off:voff ~len:vlen }
      in
      go (voff + vlen) (attr :: acc)
    end
  in
  go 0 []

let decode_all s = decode_all_slice (Slice.of_string s)

let signature attrs =
  let buf = Buffer.create 64 in
  let sorted =
    List.sort (fun a b -> Int.compare (type_code a) (type_code b)) attrs
  in
  List.iter (encode buf) sorted;
  Buffer.contents buf

let pp ppf = function
  | Origin Igp -> Format.pp_print_string ppf "origin=igp"
  | Origin Egp -> Format.pp_print_string ppf "origin=egp"
  | Origin Incomplete -> Format.pp_print_string ppf "origin=incomplete"
  | As_path p -> Format.fprintf ppf "as-path=[%a]" As_path.pp p
  | Next_hop ip ->
      Format.fprintf ppf "next-hop=%a" Tdat_pkt.Endpoint.pp
        (Tdat_pkt.Endpoint.v ip 0)
  | Med v -> Format.fprintf ppf "med=%ld" v
  | Local_pref v -> Format.fprintf ppf "local-pref=%ld" v
  | Unknown { code; _ } -> Format.fprintf ppf "attr%d" code
