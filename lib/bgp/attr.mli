(** BGP path attributes (RFC 4271 §4.3). *)

type origin = Igp | Egp | Incomplete

type t =
  | Origin of origin
  | As_path of As_path.t
  | Next_hop of int32
  | Med of int32
  | Local_pref of int32
  | Unknown of { code : int; flags : int; data : string }

val type_code : t -> int

val encode : Buffer.t -> t -> unit
(** Encodes with canonical flags (well-known mandatory attributes as
    transitive; [Unknown] with its recorded flags).  Uses extended length
    when the value exceeds 255 bytes. *)

val decode_all : string -> t list
(** Decodes a whole path-attributes block.
    @raise Failure on malformed input. *)

val decode_all_slice : Tdat_pkt.Slice.t -> t list
(** As {!decode_all}, reading through a borrowed slice: only [Unknown]
    payloads (which the result keeps) are copied out. *)

val signature : t list -> string
(** Canonical byte string of an attribute set; updates sharing a
    signature can share one UPDATE message (how routers batch NLRI, and
    how {!Update_gen} groups prefixes). *)

val pp : Format.formatter -> t -> unit
