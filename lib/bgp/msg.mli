(** BGP-4 message wire codec (RFC 4271 §4). *)

type open_msg = {
  version : int;
  my_as : int;
  hold_time : int;  (** Seconds; 0 disables keepalives. *)
  bgp_id : int32;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t list;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

val header_size : int
(** 19 bytes: 16-byte marker + length + type. *)

val max_size : int
(** 4096, RFC 4271's maximum message size. *)

val keepalive : t
val update : ?withdrawn:Prefix.t list -> ?attrs:Attr.t list ->
  ?nlri:Prefix.t list -> unit -> t

val encode : t -> string
(** @raise Invalid_argument if the encoding would exceed {!max_size}. *)

val encoded_size : t -> int

val peek_length : string -> int -> int option
(** [peek_length s off]: total length of the message starting at [off],
    if the 19-byte header is fully available.
    @raise Failure if the marker check fails or the length is invalid. *)

val decode : string -> int -> (t * int) option
(** [decode s off] parses one message; [None] when more bytes are needed.
    @raise Failure on protocol violations. *)

val peek_length_slice : Tdat_pkt.Slice.t -> int -> int option
(** As {!peek_length}, reading through a borrowed slice. *)

val decode_slice : Tdat_pkt.Slice.t -> int -> (t * int) option
(** As {!decode}, reading through a borrowed slice: the only copies made
    are the byte payloads the decoded message keeps ([Unknown] attribute
    data, NOTIFICATION data). *)

val nlri_count : t -> int
(** Announced prefixes in an UPDATE; 0 otherwise. *)

val pp : Format.formatter -> t -> unit
