type timed_msg = {
  ts : Tdat_timerange.Time_us.t;
  offset : int;
  msg : Msg.t;
}

let extract reasm =
  let stream = Stream_reassembly.contiguous reasm in
  let len = String.length stream in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      match Msg.decode stream off with
      | None -> List.rev acc (* trailing partial message *)
      | Some (msg, off') ->
          let ts = Stream_reassembly.delivery_time reasm (off' - 1) in
          go off' ({ ts; offset = off; msg } :: acc)
      | exception Bgp_error.Decode_error _ ->
          (* Not (or no longer) a BGP stream: return what parsed cleanly
             rather than failing the whole connection — monitored links
             carry non-BGP TCP traffic too. *)
          List.rev acc
  in
  go 0 []

let[@inline] is_data_to_receiver flow seg =
  Tdat_pkt.Flow.is_to_receiver flow seg && Tdat_pkt.Tcp_segment.is_data seg

let reassemble_from_trace ?scratch trace ~flow =
  let n = Tdat_pkt.Trace.length trace in
  (* Rebase stream offsets so the first observed data byte is 0. *)
  let base = ref max_int in
  for i = 0 to n - 1 do
    let seg = Tdat_pkt.Trace.get trace i in
    if is_data_to_receiver flow seg && seg.Tdat_pkt.Tcp_segment.seq < !base then
      base := seg.Tdat_pkt.Tcp_segment.seq
  done;
  let reasm = Stream_reassembly.create ?scratch () in
  if !base < max_int then
    for i = 0 to n - 1 do
      let seg = Tdat_pkt.Trace.get trace i in
      if is_data_to_receiver flow seg then
        Stream_reassembly.feed ~rebase:!base reasm seg
    done;
  reasm

let extract_from_trace trace ~flow =
  extract (reassemble_from_trace trace ~flow)
