type timed_msg = {
  ts : Tdat_timerange.Time_us.t;
  offset : int;
  msg : Msg.t;
}

let extract reasm =
  let stream = Stream_reassembly.contiguous reasm in
  let len = String.length stream in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      match Msg.decode stream off with
      | None -> List.rev acc (* trailing partial message *)
      | Some (msg, off') ->
          let ts = Stream_reassembly.delivery_time reasm (off' - 1) in
          go off' ({ ts; offset = off; msg } :: acc)
      | exception Bgp_error.Decode_error _ ->
          (* Not (or no longer) a BGP stream: return what parsed cleanly
             rather than failing the whole connection — monitored links
             carry non-BGP TCP traffic too. *)
          List.rev acc
  in
  go 0 []

let extract_from_trace trace ~flow =
  let data_segments =
    Tdat_pkt.Trace.segments trace
    |> List.filter (fun seg ->
           Tdat_pkt.Flow.is_to_receiver flow seg
           && Tdat_pkt.Tcp_segment.is_data seg)
  in
  match data_segments with
  | [] -> []
  | first :: _ ->
      (* Rebase stream offsets so the first observed data byte is 0. *)
      let base =
        List.fold_left
          (fun acc (s : Tdat_pkt.Tcp_segment.t) -> min acc s.seq)
          first.Tdat_pkt.Tcp_segment.seq data_segments
      in
      let rebased =
        List.map
          (fun (s : Tdat_pkt.Tcp_segment.t) -> { s with seq = s.seq - base })
          data_segments
      in
      extract (Stream_reassembly.of_segments rebased)
