type config = {
  dup_fraction : float;
  min_seen : int;
  quiet_gap : Tdat_timerange.Time_us.t;
}

let default_config =
  { dup_fraction = 0.5; min_seen = 32; quiet_gap = 200_000_000 }

type result = {
  end_ts : Tdat_timerange.Time_us.t;
  prefixes : int;
  updates : int;
}

let transfer_end ?(config = default_config) ~start updates =
  let seen : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let relevant = List.filter (fun (ts, _) -> ts >= start) updates in
  let finish last n_updates =
    match last with
    | None -> None
    | Some ts ->
        Some { end_ts = ts; prefixes = Hashtbl.length seen; updates = n_updates }
  in
  let rec scan last n_updates = function
    | [] -> finish last n_updates
    | (ts, prefixes) :: rest ->
        let quiet =
          match last with
          | Some prev -> ts - prev > config.quiet_gap
          | None -> false
        in
        if quiet then finish last n_updates
        else begin
          let total = List.length prefixes in
          let dups =
            List.length (List.filter (Hashtbl.mem seen) prefixes)
          in
          let churn =
            total > 0
            && Hashtbl.length seen >= config.min_seen
            && float_of_int dups >= config.dup_fraction *. float_of_int total
          in
          if churn then finish last n_updates
          else begin
            List.iter
              (fun p -> if not (Hashtbl.mem seen p) then Hashtbl.add seen p ())
              prefixes;
            scan (Some ts) (n_updates + 1) rest
          end
        end
  in
  scan None 0 relevant

(* --- streaming scan over a reassembled byte stream ------------------- *)

(* [transfer_end_of_reasm] computes the same answer as
   [extract_from_trace] → [of_timed_msgs] → [transfer_end] without
   materializing any of the intermediate structures: no [timed_msg]
   list, no decoded [Msg.t], no [Prefix.t] values, no per-update
   prefix lists.  It walks the contiguous stream once, validating each
   message exactly as [Msg.decode_slice] would (any violation ends the
   scan, like [Msg_reader.extract] stopping at the first decode error)
   and folding announced prefixes as packed ints into an open-addressed
   set.  The equivalence is locked down by the decode-equivalence test
   suite. *)

module Slice = Tdat_pkt.Slice

(* Local validation failure: the stream stops being (or never was) BGP
   at this message, exactly where the legacy path raises
   [Bgp_error.Decode_error]. *)
exception Bad

(* A prefix packed into one immediate: masked 32-bit address in the high
   bits, prefix length in the low 6.  Injective on what [Prefix.compare]
   distinguishes (masked address, length), so set membership and
   cardinality agree with a [(Prefix.t, unit) Hashtbl.t]. *)
let[@inline] pack_prefix s o plen =
  let nbytes = (plen + 7) / 8 in
  let u = ref 0 in
  for i = 0 to nbytes - 1 do
    u := !u lor (Slice.u8 s (o + 1 + i) lsl (24 - (8 * i)))
  done;
  let m = if plen = 0 then 0 else 0xFFFFFFFF lsl (32 - plen) land 0xFFFFFFFF in
  ((!u land m) lsl 6) lor plen

(* Open-addressed int set, linear probing, -1 = empty.  Lives on the
   major heap (the table exceeds [Max_young_wosize]); the per-insert
   path allocates nothing. *)
type pset = { mutable slots : int array; mutable count : int }

let pset_create () = { slots = Array.make 2048 (-1); count = 0 }

let[@inline] pset_slot slots x =
  let mask = Array.length slots - 1 in
  (* Multiplicative hash keeping the HIGH product bits: the low bits of
     [x * c] are periodic in [x] (packed prefixes step by 1 lsl 14 for
     consecutive /24s, collapsing a low-bits hash to one slot), while
     bits 40..62 mix every input bit.  Holds as long as the table stays
     under [2 lsl 23] slots — a full IPv4 table is ~2^20. *)
  let i = ref ((x * 0x2545F4914F6CDD1D) lsr 40 land mask) in
  while slots.(!i) <> -1 && slots.(!i) <> x do
    i := (!i + 1) land mask
  done;
  !i

let[@inline] pset_mem t x = t.slots.(pset_slot t.slots x) = x

let pset_grow t =
  let old = t.slots in
  let slots = Array.make (2 * Array.length old) (-1) in
  Array.iter (fun x -> if x <> -1 then slots.(pset_slot slots x) <- x) old;
  t.slots <- slots

let pset_add t x =
  let i = pset_slot t.slots x in
  if t.slots.(i) <> x then begin
    t.slots.(i) <- x;
    t.count <- t.count + 1;
    if 4 * t.count > 3 * Array.length t.slots then pset_grow t
  end

(* The checkers below mirror the corresponding decoders' validation
   byte for byte (Prefix.decode_slice, As_path.decode_slice,
   Attr.decode_all_slice, Msg.decode_slice) while building nothing. *)

let check_prefixes s ~off ~limit =
  let o = ref off in
  while !o < limit do
    let plen = Slice.u8 s !o in
    if plen > 32 then raise Bad;
    let nbytes = (plen + 7) / 8 in
    if !o + 1 + nbytes > limit then raise Bad;
    o := !o + 1 + nbytes
  done

let check_as_path s ~off ~limit =
  let o = ref off in
  while !o < limit do
    if !o + 2 > limit then raise Bad;
    let ty = Slice.u8 s !o in
    let n = Slice.u8 s (!o + 1) in
    if !o + 2 + (2 * n) > limit then raise Bad;
    if ty <> 1 && ty <> 2 then raise Bad;
    o := !o + 2 + (2 * n)
  done

let check_attrs s ~off ~limit =
  let o = ref off in
  while !o < limit do
    if !o + 3 > limit then raise Bad;
    let flags = Slice.u8 s !o in
    let code = Slice.u8 s (!o + 1) in
    let vlen, voff =
      if flags land 0x10 <> 0 then begin
        if !o + 4 > limit then raise Bad;
        (Slice.u16be s (!o + 2), !o + 4)
      end
      else (Slice.u8 s (!o + 2), !o + 3)
    in
    if voff + vlen > limit then raise Bad;
    if code = 2 then check_as_path s ~off:voff ~limit:(voff + vlen);
    o := voff + vlen
  done

(* Validate one message body; [`Update nlri_off] carries the absolute
   offset of the (possibly empty) NLRI section. *)
let check_message s ~boff ~blen ~ty =
  match ty with
  | 1 ->
      if blen < 10 then raise Bad;
      `Skip
  | 2 ->
      if blen < 4 then raise Bad;
      let wlen = Slice.u16be s boff in
      if 2 + wlen + 2 > blen then raise Bad;
      check_prefixes s ~off:(boff + 2) ~limit:(boff + 2 + wlen);
      let alen = Slice.u16be s (boff + 2 + wlen) in
      if 4 + wlen + alen > blen then raise Bad;
      check_attrs s ~off:(boff + 4 + wlen) ~limit:(boff + 4 + wlen + alen);
      let nlri_off = boff + 4 + wlen + alen in
      check_prefixes s ~off:nlri_off ~limit:(boff + blen);
      `Update nlri_off
  | 3 ->
      if blen < 2 then raise Bad;
      `Skip
  | 4 ->
      if blen <> 0 then raise Bad;
      `Skip
  | _ -> raise Bad

let transfer_end_of_reasm ?(config = default_config) ~start reasm =
  let stream = Stream_reassembly.contiguous_slice reasm in
  let len = Slice.length stream in
  let seen = pset_create () in
  (* [last = min_int] encodes "no update attributed yet". *)
  let finish last n_updates =
    if last = min_int then None
    else Some { end_ts = last; prefixes = seen.count; updates = n_updates }
  in
  let rec scan off last n =
    if off >= len then finish last n
    else
      match Msg.peek_length_slice stream off with
      | None -> finish last n
      | exception Bgp_error.Decode_error _ -> finish last n
      | Some total ->
          if off + total > len then finish last n
          else begin
            let ty = Slice.u8 stream (off + 18) in
            let boff = off + Msg.header_size in
            let blen = total - Msg.header_size in
            match check_message stream ~boff ~blen ~ty with
            | exception Bad -> finish last n
            | `Skip -> scan (off + total) last n
            | `Update nlri_off ->
                let limit = boff + blen in
                if nlri_off = limit then
                  (* Empty NLRI: not an announcement batch. *)
                  scan (off + total) last n
                else begin
                  let ts = Stream_reassembly.delivery_time reasm (off + total - 1) in
                  if ts < start then scan (off + total) last n
                  else if last <> min_int && ts - last > config.quiet_gap then
                    finish last n
                  else begin
                    let total_p = ref 0 in
                    let dups = ref 0 in
                    let o = ref nlri_off in
                    while !o < limit do
                      let plen = Slice.u8 stream !o in
                      incr total_p;
                      if pset_mem seen (pack_prefix stream !o plen) then incr dups;
                      o := !o + 1 + ((plen + 7) / 8)
                    done;
                    let churn =
                      !total_p > 0
                      && seen.count >= config.min_seen
                      && float_of_int !dups
                         >= config.dup_fraction *. float_of_int !total_p
                    in
                    if churn then finish last n
                    else begin
                      let o = ref nlri_off in
                      while !o < limit do
                        let plen = Slice.u8 stream !o in
                        pset_add seen (pack_prefix stream !o plen);
                        o := !o + 1 + ((plen + 7) / 8)
                      done;
                      scan (off + total) ts (n + 1)
                    end
                  end
                end
          end
  in
  scan 0 min_int 0

let of_timed_msgs msgs =
  List.filter_map
    (fun (m : Msg_reader.timed_msg) ->
      match m.msg with
      | Msg.Update u when u.Msg.nlri <> [] -> Some (m.ts, u.Msg.nlri)
      | Msg.Update _ | Msg.Open _ | Msg.Keepalive | Msg.Notification _ -> None)
    msgs
