(** Minimum Collection Time: locating the end of a BGP table transfer in
    an update stream (Zhang et al., MineNet 2005, as adapted in the
    paper's Section II-A).

    The paper uses the TCP connection start as the transfer start and
    runs MCT only to estimate the end.  The key property of a table
    transfer is that each prefix is announced (at most) once; once the
    dump is over, subsequent updates are steady-state churn that
    re-announces already-seen prefixes or follows a long silence. *)

type config = {
  dup_fraction : float;
      (** An update whose announced prefixes are already-seen in at least
          this fraction is treated as post-transfer churn (default 0.5). *)
  min_seen : int;
      (** Churn detection only arms after this many distinct prefixes
          (default 32) so an early duplicate cannot truncate the
          transfer. *)
  quiet_gap : Tdat_timerange.Time_us.t;
      (** Silence longer than this ends the transfer.  The default, 200 s,
          deliberately exceeds the usual BGP hold time so that a transfer
          paused by peer-group blocking (Fig. 9) still counts as one
          transfer, as in the paper's Table V. *)
}

val default_config : config

type result = {
  end_ts : Tdat_timerange.Time_us.t;  (** Timestamp of the last update of the transfer. *)
  prefixes : int;                     (** Distinct prefixes collected. *)
  updates : int;                      (** Updates attributed to the transfer. *)
}

val transfer_end :
  ?config:config ->
  start:Tdat_timerange.Time_us.t ->
  (Tdat_timerange.Time_us.t * Prefix.t list) list ->
  result option
(** [transfer_end ~start updates] scans timestamped announcement batches
    (in time order; entries before [start] are skipped) and returns the
    inferred transfer end, or [None] if no update follows [start]. *)

val of_timed_msgs : Msg_reader.timed_msg list ->
  (Tdat_timerange.Time_us.t * Prefix.t list) list
(** Adapter from extracted messages: UPDATE announcements only. *)

val transfer_end_of_reasm :
  ?config:config ->
  start:Tdat_timerange.Time_us.t ->
  Stream_reassembly.t ->
  result option
(** Streaming equivalent of
    [transfer_end ~start (of_timed_msgs (Msg_reader.extract reasm))]:
    one pass over the contiguous stream, validating messages exactly as
    the decoder would and folding announced prefixes as packed ints —
    no intermediate messages, prefix values, or lists are built.  The
    answer is identical to the three-stage pipeline (checked by the
    decode-equivalence tests). *)
