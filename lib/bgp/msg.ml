type open_msg = {
  version : int;
  my_as : int;
  hold_time : int;
  bgp_id : int32;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t list;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Keepalive
  | Notification of notification

let header_size = 19
let max_size = 4096
let keepalive = Keepalive

let update ?(withdrawn = []) ?(attrs = []) ?(nlri = []) () =
  Update { withdrawn; attrs; nlri }

let type_byte = function
  | Open _ -> 1
  | Update _ -> 2
  | Notification _ -> 3
  | Keepalive -> 4

let body_bytes t =
  let buf = Buffer.create 64 in
  (match t with
  | Open o ->
      Buffer.add_uint8 buf o.version;
      Buffer.add_uint16_be buf o.my_as;
      Buffer.add_uint16_be buf o.hold_time;
      Buffer.add_int32_be buf o.bgp_id;
      Buffer.add_uint8 buf 0 (* no optional parameters *)
  | Update u ->
      let withdrawn = Buffer.create 16 in
      List.iter (Prefix.encode withdrawn) u.withdrawn;
      let attrs = Buffer.create 64 in
      List.iter (Attr.encode attrs) u.attrs;
      Buffer.add_uint16_be buf (Buffer.length withdrawn);
      Buffer.add_buffer buf withdrawn;
      Buffer.add_uint16_be buf (Buffer.length attrs);
      Buffer.add_buffer buf attrs;
      List.iter (Prefix.encode buf) u.nlri
  | Keepalive -> ()
  | Notification n ->
      Buffer.add_uint8 buf n.code;
      Buffer.add_uint8 buf n.subcode;
      Buffer.add_string buf n.data);
  Buffer.contents buf

let encode t =
  let body = body_bytes t in
  let total = header_size + String.length body in
  if total > max_size then
    invalid_arg
      (Printf.sprintf "Msg.encode: message of %d bytes exceeds %d" total
         max_size);
  let buf = Buffer.create total in
  for _ = 1 to 16 do
    Buffer.add_char buf '\xff'
  done;
  Buffer.add_uint16_be buf total;
  Buffer.add_uint8 buf (type_byte t);
  Buffer.add_string buf body;
  Buffer.contents buf

let encoded_size t = header_size + String.length (body_bytes t)

module Slice = Tdat_pkt.Slice

let peek_length_slice s off =
  if off + header_size > Slice.length s then None
  else begin
    for i = 0 to 15 do
      if Slice.u8 s (off + i) <> 0xff then
        Bgp_error.fail ~context:"Msg.peek_length" "bad marker"
    done;
    let len = Slice.u16be s (off + 16) in
    if len < header_size || len > max_size then
      Bgp_error.fail ~context:"Msg.peek_length" "invalid length %d" len;
    Some len
  end

let peek_length s off = peek_length_slice (Slice.of_string s) off

let decode_prefixes_slice s =
  let n = Slice.length s in
  let rec go off acc =
    if off = n then List.rev acc
    else begin
      let p, off' = Prefix.decode_slice s off in
      go off' (p :: acc)
    end
  in
  go 0 []

let decode_slice s off =
  match peek_length_slice s off with
  | None -> None
  | Some total ->
      if off + total > Slice.length s then None
      else begin
        let ty = Slice.u8 s (off + 18) in
        (* A borrowed view of the body: section decoding below reads in
           place instead of materializing per-section copies. *)
        let body =
          Slice.sub s ~off:(off + header_size) ~len:(total - header_size)
        in
        let blen = Slice.length body in
        let msg =
          match ty with
          | 1 ->
              if blen < 10 then Bgp_error.fail ~context:"Msg.decode" "short OPEN";
              Open
                {
                  version = Slice.u8 body 0;
                  my_as = Slice.u16be body 1;
                  hold_time = Slice.u16be body 3;
                  bgp_id = Slice.i32be body 5;
                }
          | 2 ->
              if blen < 4 then Bgp_error.fail ~context:"Msg.decode" "short UPDATE";
              let wlen = Slice.u16be body 0 in
              if 2 + wlen + 2 > blen then
                Bgp_error.fail ~context:"Msg.decode" "bad withdrawn length";
              let withdrawn =
                decode_prefixes_slice (Slice.sub body ~off:2 ~len:wlen)
              in
              let alen = Slice.u16be body (2 + wlen) in
              if 4 + wlen + alen > blen then
                Bgp_error.fail ~context:"Msg.decode" "bad attribute length";
              let attrs =
                Attr.decode_all_slice (Slice.sub body ~off:(4 + wlen) ~len:alen)
              in
              let nlri_off = 4 + wlen + alen in
              let nlri =
                decode_prefixes_slice
                  (Slice.sub body ~off:nlri_off ~len:(blen - nlri_off))
              in
              Update { withdrawn; attrs; nlri }
          | 3 ->
              if blen < 2 then
                Bgp_error.fail ~context:"Msg.decode" "short NOTIFICATION";
              Notification
                {
                  code = Slice.u8 body 0;
                  subcode = Slice.u8 body 1;
                  data = Slice.sub_string body ~off:2 ~len:(blen - 2);
                }
          | 4 ->
              if blen <> 0 then
                Bgp_error.fail ~context:"Msg.decode" "KEEPALIVE with body";
              Keepalive
          | ty -> Bgp_error.fail ~context:"Msg.decode" "unknown type %d" ty
        in
        Some (msg, off + total)
      end

let decode s off = decode_slice (Slice.of_string s) off

let nlri_count = function Update u -> List.length u.nlri | _ -> 0

let pp ppf = function
  | Open o ->
      Format.fprintf ppf "OPEN(as=%d hold=%d)" o.my_as o.hold_time
  | Update u ->
      Format.fprintf ppf "UPDATE(+%d -%d)" (List.length u.nlri)
        (List.length u.withdrawn)
  | Keepalive -> Format.pp_print_string ppf "KEEPALIVE"
  | Notification n -> Format.fprintf ppf "NOTIFICATION(%d/%d)" n.code n.subcode
