(* The variant registry.  Every entry pairs two implementations that the
   codebase claims are equivalent — the claim each past optimization PR
   rested on — and projects both onto a canonical Doc so the Diff kernel
   can adjudicate field by field.

   Variant closures run inside an Engine worker domain, so everything
   here is sequential ([~jobs:1]): the experiment parallelizes across
   corpus files, not within one. *)

module Json = Tdat_serve.Json

type input_kind = Pcap | Mrt

type t = {
  name : string;
  input : input_kind;
  control_name : string;
  candidate_name : string;
  summary : string;
  self_test : bool;
  control : string -> Json.t;
  candidate : string -> Json.t;
}

let kind_name = function Pcap -> "pcap" | Mrt -> "mrt"
let equal_kind a b = match (a, b) with
  | Pcap, Pcap | Mrt, Mrt -> true
  | (Pcap | Mrt), _ -> false

let read_all path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let kind_of_file path =
  let magic =
    try In_channel.with_open_bin path (fun ic -> In_channel.really_input_string ic 4)
    with End_of_file | Sys_error _ -> None
  in
  match magic with
  | Some ("\xa1\xb2\xc3\xd4" | "\xd4\xc3\xb2\xa1" | "\xa1\xb2\x3c\x4d"
         | "\x4d\x3c\xb2\xa1") ->
      Pcap
  | Some _ | None -> Mrt

(* --- shared pipeline pieces ---------------------------------------------- *)

let analyze_trace trace = Tdat.Analyzer.analyze_all ~jobs:1 trace

let analysis_of_result (r : Tdat_pkt.Pcap.result) =
  Doc.analysis_doc (analyze_trace r.Tdat_pkt.Pcap.trace)

(* Orient and anchor one connection exactly as Transfer_id.identify
   does, then hand the sub-trace to a transfer-end estimator. *)
let per_connection_transfers trace estimate =
  List.map
    (fun (key, sub) ->
      let flow = Tdat_pkt.Trace.infer_sender sub key in
      let transfer =
        match Tdat.Transfer_id.connection_start sub ~flow with
        | None -> None
        | Some start_ts -> (
            match estimate sub ~flow ~start_ts with
            | None -> None
            | Some (r : Tdat_bgp.Mct.result) ->
                Some
                  {
                    Tdat.Transfer_id.start_ts;
                    end_ts = r.Tdat_bgp.Mct.end_ts;
                    prefixes = r.Tdat_bgp.Mct.prefixes;
                    updates = r.Tdat_bgp.Mct.updates;
                    source = Tdat.Transfer_id.Reconstructed;
                  })
      in
      (flow, transfer))
    (Tdat_pkt.Trace.partition_connections trace)

let transfer_doc_of_file path estimate =
  let r = Tdat_pkt.Pcap.read_file path in
  Doc.transfer_doc (per_connection_transfers r.Tdat_pkt.Pcap.trace estimate)

(* --- concrete control/candidate pairs ------------------------------------ *)

(* PR-7 replaced the legacy whole-buffer byte-string decode with the
   streaming record-at-a-time reader on the ingestion path. *)
let pcap_ingest =
  {
    name = "pcap-ingest";
    input = Pcap;
    control_name = "whole-buffer-decode";
    candidate_name = "streaming-read";
    summary =
      "legacy strict whole-buffer Pcap.decode vs the streaming \
       record-at-a-time reader, compared on the full analysis document";
    self_test = false;
    control =
      (fun path ->
        Doc.analysis_doc (analyze_trace (Tdat_pkt.Pcap.decode (read_all path))));
    candidate =
      (fun path -> analysis_of_result (Tdat_pkt.Pcap.read_file path));
  }

let strict_pcap =
  {
    name = "strict-pcap";
    input = Pcap;
    control_name = "strict";
    candidate_name = "salvage";
    summary =
      "strict pcap ingestion vs fault-tolerant salvage; clean captures \
       must analyze identically";
    self_test = false;
    control =
      (fun path -> analysis_of_result (Tdat_pkt.Pcap.read_file ~strict:true path));
    candidate =
      (fun path -> analysis_of_result (Tdat_pkt.Pcap.read_file path));
  }

let mrt_ingest =
  {
    name = "mrt-ingest";
    input = Mrt;
    control_name = "whole-buffer-strict";
    candidate_name = "streaming-scan";
    summary =
      "strict whole-buffer MRT decode + in-memory scan vs the \
       bounded-memory streaming archive scan";
    self_test = false;
    control =
      (fun path ->
        let r = Tdat_bgp.Mrt.decode_result ~strict:true (read_all path) in
        let fr =
          Tdat_study.Archive.scan_entries ~source:path r.Tdat_bgp.Mrt.entries
        in
        Doc.study_doc { fr with Tdat_study.Archive.stats = r.Tdat_bgp.Mrt.stats });
    candidate = (fun path -> Doc.study_doc (Tdat_study.Archive.scan_file path));
  }

(* PR-5 replaced the per-connection rescan (O(connections × packets))
   with the single-pass partition. *)
let partition =
  {
    name = "partition";
    input = Pcap;
    control_name = "rescan-split";
    candidate_name = "single-pass-partition";
    summary =
      "per-connection Trace.split_connection rescan vs the single-pass \
       Trace.partition_connections used by analyze_all";
    self_test = false;
    control =
      (fun path ->
        let trace = (Tdat_pkt.Pcap.read_file path).Tdat_pkt.Pcap.trace in
        let results =
          List.map
            (fun ((sender, receiver) as key) ->
              let sub =
                Tdat_pkt.Trace.split_connection trace ~sender ~receiver
              in
              let flow = Tdat_pkt.Trace.infer_sender sub key in
              (flow, Tdat.Analyzer.analyze sub ~flow))
            (Tdat_pkt.Trace.connections trace)
        in
        Doc.analysis_doc results);
    candidate =
      (fun path -> analysis_of_result (Tdat_pkt.Pcap.read_file path));
  }

(* PR-7 replaced list extraction (reassemble → extract messages →
   prefix lists → MCT) with the fused one-pass streaming scan. *)
let transfer_end =
  {
    name = "transfer-end";
    input = Pcap;
    control_name = "extract-lists";
    candidate_name = "streaming-mct";
    summary =
      "three-stage extract/of_timed_msgs/transfer_end pipeline vs the \
       fused Mct.transfer_end_of_reasm streaming scan";
    self_test = false;
    control =
      (fun path ->
        transfer_doc_of_file path (fun sub ~flow ~start_ts ->
            let msgs = Tdat_bgp.Msg_reader.extract_from_trace sub ~flow in
            Tdat_bgp.Mct.transfer_end ~start:start_ts
              (Tdat_bgp.Mct.of_timed_msgs msgs)));
    candidate =
      (fun path ->
        transfer_doc_of_file path (fun sub ~flow ~start_ts ->
            Tdat_parallel.Scratch.(with_bytes ~slot:slot_reassembly 4096)
              (fun cell ->
                let reasm =
                  Tdat_bgp.Msg_reader.reassemble_from_trace ~scratch:cell sub
                    ~flow
                in
                Tdat_bgp.Mct.transfer_end_of_reasm ~start:start_ts reasm)));
  }

(* PR-8 routed reassembly buffers through the per-domain scratch arena. *)
let reasm_scratch =
  {
    name = "reasm-scratch";
    input = Pcap;
    control_name = "fresh-buffer";
    candidate_name = "scratch-arena";
    summary =
      "stream reassembly into a fresh buffer vs the per-domain scratch \
       arena slot used on the production path";
    self_test = false;
    control =
      (fun path ->
        transfer_doc_of_file path (fun sub ~flow ~start_ts ->
            let reasm = Tdat_bgp.Msg_reader.reassemble_from_trace sub ~flow in
            Tdat_bgp.Mct.transfer_end_of_reasm ~start:start_ts reasm));
    candidate =
      (fun path ->
        transfer_doc_of_file path (fun sub ~flow ~start_ts ->
            Tdat_parallel.Scratch.(with_bytes ~slot:slot_reassembly 4096)
              (fun cell ->
                let reasm =
                  Tdat_bgp.Msg_reader.reassemble_from_trace ~scratch:cell sub
                    ~flow
                in
                Tdat_bgp.Mct.transfer_end_of_reasm ~start:start_ts reasm)));
  }

(* --- harness self-test ---------------------------------------------------- *)

(* Nudge connections[0].factors.ratios.<first factor> by +1e-3 so the
   diff must surface exactly that path.  A document with no connection
   (or no ratio) grows a top-level "perturbed" member instead, which
   diffs as Missing_control — the self-test diverges either way. *)
let perturb_doc doc =
  let update_assoc k f ms =
    let hit = ref false in
    let ms =
      List.map
        (fun (k', v) ->
          if (not !hit) && String.equal k' k then
            match f v with
            | Some v' ->
                hit := true;
                (k', v')
            | None -> (k', v)
          else (k', v))
        ms
    in
    if !hit then Some ms else None
  in
  let obj f = function Json.Obj ms -> Option.map (fun ms -> Json.Obj ms) (f ms) | _ -> None in
  let bump_first_ratio =
    obj (fun ms ->
        let hit = ref false in
        let ms =
          List.map
            (fun (k, v) ->
              match v with
              | Json.Num r when not !hit ->
                  hit := true;
                  (k, Json.Num (r +. 1e-3))
              | _ -> (k, v))
            ms
        in
        if !hit then Some ms else None)
  in
  let in_factors = obj (update_assoc "ratios" bump_first_ratio) in
  let in_connection = obj (update_assoc "factors" in_factors) in
  let in_connections = function
    | Json.Arr (c0 :: rest) ->
        Option.map (fun c0 -> Json.Arr (c0 :: rest)) (in_connection c0)
    | _ -> None
  in
  match obj (update_assoc "connections" in_connections) doc with
  | Some doc -> doc
  | None -> (
      match doc with
      | Json.Obj ms -> Json.Obj (ms @ [ ("perturbed", Json.Bool true) ])
      | other -> other)

let perturb =
  {
    name = "perturb";
    input = Pcap;
    control_name = "identity";
    candidate_name = "perturbed-ratios";
    summary =
      "harness self-test: the candidate deliberately nudges one factor \
       ratio by 1e-3, so a healthy harness MUST report a mismatch at \
       connections[0].factors.ratios";
    self_test = true;
    control = (fun path -> analysis_of_result (Tdat_pkt.Pcap.read_file path));
    candidate =
      (fun path ->
        perturb_doc (analysis_of_result (Tdat_pkt.Pcap.read_file path)));
  }

let all =
  [
    pcap_ingest;
    strict_pcap;
    mrt_ingest;
    partition;
    transfer_end;
    reasm_scratch;
    perturb;
  ]

let defaults = List.filter (fun v -> not v.self_test) all

let find name = List.find_opt (fun v -> String.equal v.name name) all
