(** The variant registry: named control/candidate implementation pairs
    already latent in the codebase, each projected to a canonical
    {!Doc} document from one input file.

    The control side is the older / simpler / slower implementation
    whose behavior is trusted; the candidate is the optimized path that
    actually runs in production.  An identity experiment (zero
    mismatches over a corpus) is the evidence that lets the next
    hot-path surgery proceed; the [perturb] self-test variant proves
    the harness can see a divergence at all. *)

type input_kind = Pcap | Mrt

type t = {
  name : string;  (** Registry key, e.g. ["partition"]. *)
  input : input_kind;
  control_name : string;  (** e.g. ["rescan-split"]. *)
  candidate_name : string;  (** e.g. ["single-pass-partition"]. *)
  summary : string;  (** One line for [tdat experiment list]. *)
  self_test : bool;
      (** Deliberately diverging harness self-test; excluded from the
          default variant set. *)
  control : string -> Tdat_serve.Json.t;
  candidate : string -> Tdat_serve.Json.t;
}

val all : t list
(** Every registered variant, [perturb] included, in registry order. *)

val defaults : t list
(** {!all} minus the self-tests — what [tdat experiment run] runs when
    no [--variant] is named. *)

val find : string -> t option

val kind_of_file : string -> input_kind
(** Sniff a corpus file by magic: the four libpcap magics mean
    {!Pcap}, anything else is treated as MRT (MRT has no magic; the
    reader's own diagnostics catch misfiled inputs). *)

val kind_name : input_kind -> string
val equal_kind : input_kind -> input_kind -> bool
