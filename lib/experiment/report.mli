(** Rendering an {!Engine.t} for humans ([to_text]) and machines
    ([to_json]).  Both renderings are pure functions of the report, which
    the engine builds deterministically — so both are byte-for-byte
    identical across [--jobs] values (locked by the experiment tests,
    the same way A007 locks the metrics snapshot). *)

val to_json : Engine.t -> string
(** Canonical JSON document: variant identity, totals, the per-file
    field counts and every mismatch drill-down, plus any A008 audit
    findings. *)

val to_text : Engine.t -> string
(** Multi-line human summary; one [MISMATCH] block per diverging file
    naming every diverging field path. *)
