(* The diff kernel (DESIGN.md, "Differential analysis").

   This is on the experiment hot path — an experiment run diffs every
   field of every report of every corpus file, and the L009 lint keeps
   the walk allocation-frugal: the path is carried as a cons-list of
   segments and only rendered to a string when a divergence is actually
   recorded, entries accumulate by consing, and the agree/count fast
   path allocates nothing. *)

module Json = Tdat_serve.Json

type kind =
  | Value_mismatch
  | Type_mismatch
  | Missing_control
  | Missing_candidate

type entry = { path : string; kind : kind; control : string; candidate : string }

let kind_name = function
  | Value_mismatch -> "value"
  | Type_mismatch -> "type"
  | Missing_control -> "missing-in-control"
  | Missing_candidate -> "missing-in-candidate"

let kind_rank = function
  | Value_mismatch -> 0
  | Type_mismatch -> 1
  | Missing_control -> 2
  | Missing_candidate -> 3

let equal_kind a b = kind_rank a = kind_rank b

let compare_entry a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
    if c <> 0 then c
    else
      let c = String.compare a.control b.control in
      if c <> 0 then c else String.compare a.candidate b.candidate

let equal_entry a b = compare_entry a b = 0

(* --- the walk ----------------------------------------------------------- *)

(* Paths are built root-last ([Index 3] :: [Key "connections"] :: []),
   so rendering walks the list back to front. *)
type seg = Key of string | Index of int

type state = {
  tolerance : float;
  mutable fields : int;
  mutable entries : entry list;  (* reversed; [run] re-reverses *)
}

let render_path revsegs =
  let buf = Buffer.create 48 in
  Buffer.add_string buf "report";
  let rec go = function
    | [] -> ()
    | seg :: outer ->
        go outer;
        (match seg with
        | Key k ->
            Buffer.add_char buf '.';
            Buffer.add_string buf k
        | Index i ->
            Buffer.add_char buf '[';
            Buffer.add_string buf (string_of_int i);
            Buffer.add_char buf ']')
  in
  go revsegs;
  Buffer.contents buf

let absent = "(absent)"

let record st revsegs kind control candidate =
  st.entries <-
    { path = render_path revsegs; kind; control; candidate } :: st.entries

(* Numbers agree when bit-for-bit renderable as the same canonical
   decimal (Float.equal, which also makes NaN agree with NaN) or within
   the relative tolerance.  The [max 1.] floor keeps the tolerance
   absolute near zero — ratios and durations both live there. *)
let nums_agree tol a b =
  Float.equal a b
  || tol > 0.
     && Float.abs (a -. b)
        <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let leaf st = st.fields <- st.fields + 1

let rec value st revsegs (c : Json.t) (d : Json.t) =
  match (c, d) with
  | Json.Null, Json.Null -> leaf st
  | Json.Bool a, Json.Bool b ->
      leaf st;
      if a <> b then
        record st revsegs Value_mismatch (Json.to_string c) (Json.to_string d)
  | Json.Num a, Json.Num b ->
      leaf st;
      if not (nums_agree st.tolerance a b) then
        record st revsegs Value_mismatch (Json.to_string c) (Json.to_string d)
  | Json.Str a, Json.Str b ->
      leaf st;
      if not (String.equal a b) then
        record st revsegs Value_mismatch (Json.to_string c) (Json.to_string d)
  | Json.Arr xs, Json.Arr ys ->
      let rec go i xs ys =
        match (xs, ys) with
        | [], [] -> ()
        | x :: xr, y :: yr ->
            value st (Index i :: revsegs) x y;
            go (i + 1) xr yr
        | x :: xr, [] ->
            leaf st;
            record st (Index i :: revsegs) Missing_candidate (Json.to_string x)
              absent;
            go (i + 1) xr []
        | [], y :: yr ->
            leaf st;
            record st (Index i :: revsegs) Missing_control absent
              (Json.to_string y);
            go (i + 1) [] yr
      in
      go 0 xs ys
  | Json.Obj xs, Json.Obj ys ->
      (* Control members first (in control order), then candidate-only
         members (in candidate order): key-matched, order-insensitive. *)
      let rec ctrl = function
        | [] -> ()
        | (k, cv) :: rest ->
            (match List.assoc_opt k ys with
            | Some dv -> value st (Key k :: revsegs) cv dv
            | None ->
                leaf st;
                record st (Key k :: revsegs) Missing_candidate
                  (Json.to_string cv) absent);
            ctrl rest
      in
      ctrl xs;
      let rec cand = function
        | [] -> ()
        | (k, dv) :: rest ->
            if not (List.mem_assoc k xs) then begin
              leaf st;
              record st (Key k :: revsegs) Missing_control absent
                (Json.to_string dv)
            end;
            cand rest
      in
      cand ys
  | (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Arr _
    | Json.Obj _), _ ->
      leaf st;
      record st revsegs Type_mismatch (Json.to_string c) (Json.to_string d)

let run ?(tolerance = 0.) ~control ~candidate () =
  let st = { tolerance; fields = 0; entries = [] } in
  value st [] control candidate;
  (List.rev st.entries, st.fields)
