(* Canonical documents for the differential harness (DESIGN.md,
   "Differential analysis").

   One rule: every member is emitted unconditionally and in a fixed
   order, optional results as Null, so two docs built from equal
   analyses are structurally identical and a diff path is meaningful
   across files and runs.  Numbers go through Json's canonical float
   rendering; time values are integral microseconds. *)

module Json = Tdat_serve.Json
module Span = Tdat_timerange.Span

let num_int n = Json.Num (float_of_int n)

let num_int_opt = function None -> Json.Null | Some n -> num_int n

let span_obj s =
  Json.Obj
    [ ("start_us", num_int (Span.start s)); ("stop_us", num_int (Span.stop s)) ]

let flow_str flow = Format.asprintf "%a" Tdat_pkt.Flow.pp flow

(* --- analysis ------------------------------------------------------------ *)

let transfer_obj (t : Tdat.Transfer_id.t) =
  Json.Obj
    [
      ("start_us", num_int t.Tdat.Transfer_id.start_ts);
      ("end_us", num_int t.Tdat.Transfer_id.end_ts);
      ("duration_us", num_int (Tdat.Transfer_id.duration t));
      ("prefixes", num_int t.Tdat.Transfer_id.prefixes);
      ("updates", num_int t.Tdat.Transfer_id.updates);
      ( "source",
        Json.Str
          (match t.Tdat.Transfer_id.source with
          | Tdat.Transfer_id.Archive -> "archive"
          | Tdat.Transfer_id.Reconstructed -> "reconstructed") );
    ]

let transfer_opt = function None -> Json.Null | Some t -> transfer_obj t

let profile_obj (p : Tdat.Conn_profile.t) =
  let episodes es =
    Json.Arr
      (List.map
         (fun (e : Tdat.Conn_profile.loss_episode) ->
           Json.Obj
             [
               ("span", span_obj e.Tdat.Conn_profile.span);
               ("packets", num_int e.Tdat.Conn_profile.packets);
               ("bytes", num_int e.Tdat.Conn_profile.bytes);
             ])
         es)
  in
  Json.Obj
    [
      ("start_us", num_int p.Tdat.Conn_profile.start_time);
      ("end_us", num_int p.Tdat.Conn_profile.end_time);
      ("syn_rtt_us", num_int_opt p.Tdat.Conn_profile.syn_rtt);
      ("upstream_rtt_us", num_int_opt p.Tdat.Conn_profile.upstream_rtt);
      ("rtt_us", num_int p.Tdat.Conn_profile.rtt);
      ("mss", num_int p.Tdat.Conn_profile.mss);
      ("max_adv_window", num_int p.Tdat.Conn_profile.max_adv_window);
      ("data_packets", num_int (Array.length p.Tdat.Conn_profile.data));
      ("acks", num_int (Array.length p.Tdat.Conn_profile.acks));
      ("upstream_episodes", episodes p.Tdat.Conn_profile.upstream_episodes);
      ("downstream_episodes", episodes p.Tdat.Conn_profile.downstream_episodes);
    ]

let factors_obj (f : Tdat.Factors.result) =
  let open Tdat.Factors in
  Json.Obj
    [
      ( "ratios",
        Json.Obj
          (List.map (fun (k, r) -> (factor_name k, Json.Num r)) f.ratios) );
      ( "group_ratios",
        Json.Obj
          (List.map (fun (g, r) -> (group_name g, Json.Num r)) f.group_ratios)
      );
      ("major", Json.Arr (List.map (fun g -> Json.Str (group_name g)) f.major));
      ( "major_factors",
        Json.Arr (List.map (fun k -> Json.Str (factor_name k)) f.major_factors)
      );
      ( "dominant",
        match f.dominant with
        | None -> Json.Null
        | Some k -> Json.Str (factor_name k) );
      ( "dominant_group",
        match f.dominant_group with
        | None -> Json.Null
        | Some g -> Json.Str (group_name g) );
      ("analysis_period_us", num_int f.analysis_period);
    ]

let series_obj series =
  Json.Obj
    (List.map
       (fun s ->
         (Tdat.Series_defs.to_string s, num_int (Tdat.Series_gen.size series s)))
       Tdat.Series_defs.all)

let problems_obj (p : Tdat.Analyzer.problems) =
  let timer =
    match p.Tdat.Analyzer.timer with
    | None -> Json.Null
    | Some (t : Tdat.Detect_timer.result) ->
        Json.Obj
          [
            ("timer_us", num_int t.Tdat.Detect_timer.timer);
            ("gaps", num_int t.Tdat.Detect_timer.gaps);
            ("induced_delay_us", num_int t.Tdat.Detect_timer.induced_delay);
          ]
  in
  let losses =
    let r = p.Tdat.Analyzer.consecutive_losses in
    Json.Obj
      [
        ( "episodes",
          Json.Arr
            (List.map
               (fun (e : Tdat.Detect_loss.episode) ->
                 Json.Obj
                   [
                     ("span", span_obj e.Tdat.Detect_loss.span);
                     ("packets", num_int e.Tdat.Detect_loss.packets);
                   ])
               r.Tdat.Detect_loss.episodes) );
        ("induced_delay_us", num_int r.Tdat.Detect_loss.induced_delay);
      ]
  in
  let peer_group =
    Json.Arr
      (List.map
         (fun (s : Tdat.Detect_peer_group.suspect) ->
           Json.Obj
             [
               ("span", span_obj s.Tdat.Detect_peer_group.span);
               ("keepalives", num_int s.Tdat.Detect_peer_group.keepalives);
             ])
         p.Tdat.Analyzer.peer_group_suspects)
  in
  let zero_ack =
    match p.Tdat.Analyzer.zero_ack_bug with
    | None -> Json.Null
    | Some (r : Tdat.Detect_zero_ack.result) ->
        Json.Obj
          [
            ( "spans",
              num_int
                (List.length
                   (Tdat_timerange.Span_set.to_list r.Tdat.Detect_zero_ack.spans))
            );
            ("total_us", num_int r.Tdat.Detect_zero_ack.total);
          ]
  in
  Json.Obj
    [
      ("timer", timer);
      ("consecutive_losses", losses);
      ("peer_group_suspects", peer_group);
      ("zero_ack_bug", zero_ack);
    ]

let connection_obj (flow, (a : Tdat.Analyzer.t)) =
  Json.Obj
    [
      ("flow", Json.Str (flow_str flow));
      ("profile", profile_obj a.Tdat.Analyzer.profile);
      ("shifts", num_int (List.length a.Tdat.Analyzer.shifts));
      ("transfer", transfer_opt a.Tdat.Analyzer.transfer);
      ("factors", factors_obj a.Tdat.Analyzer.factors);
      ("series_sizes_us", series_obj a.Tdat.Analyzer.series);
      ("problems", problems_obj a.Tdat.Analyzer.problems);
    ]

let analysis_doc results =
  Json.Obj
    [
      ("connections", Json.Arr (List.map connection_obj results));
    ]

(* --- transfer identification only ---------------------------------------- *)

let transfer_doc results =
  Json.Obj
    [
      ( "connections",
        Json.Arr
          (List.map
             (fun (flow, t) ->
               Json.Obj
                 [
                   ("flow", Json.Str (flow_str flow));
                   ("transfer", transfer_opt t);
                 ])
             results) );
    ]

(* --- measurement study --------------------------------------------------- *)

let study_doc (fr : Tdat_study.Archive.file_report) =
  let transfer_entry (t : Tdat_study.Transfer.t) =
    Json.Obj
      [
        ("peer_as", num_int t.Tdat_study.Transfer.peer_as);
        ( "peer_ip",
          Json.Str
            (Format.asprintf "%a" Tdat_study.Transfer.pp_ip
               t.Tdat_study.Transfer.peer_ip) );
        ("start_us", num_int t.Tdat_study.Transfer.start_ts);
        ("end_us", num_int t.Tdat_study.Transfer.end_ts);
        ("prefixes", num_int t.Tdat_study.Transfer.prefixes);
        ("messages", num_int t.Tdat_study.Transfer.messages);
        ("anchored", Json.Bool t.Tdat_study.Transfer.anchored);
      ]
  in
  let s = fr.Tdat_study.Archive.stats in
  Json.Obj
    [
      ( "transfers",
        Json.Arr (List.map transfer_entry fr.Tdat_study.Archive.transfers) );
      ( "stats",
        Json.Obj
          [
            ("records", num_int s.Tdat_bgp.Mrt.records);
            ("bgp_messages", num_int s.Tdat_bgp.Mrt.bgp_messages);
            ("state_changes", num_int s.Tdat_bgp.Mrt.state_changes);
            ("skipped", num_int s.Tdat_bgp.Mrt.skipped);
          ] );
    ]

(* --- failure projection --------------------------------------------------- *)

let error_doc e =
  let msg =
    match e with
    | Tdat_pkt.Pcap.Decode_error m -> "pcap: " ^ m
    | Tdat_bgp.Bgp_error.Decode_error { context; message } ->
        context ^ ": " ^ message
    | Sys_error m -> m
    | e -> Printexc.to_string e
  in
  Json.Obj [ ("error", Json.Str msg) ]
