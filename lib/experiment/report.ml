module Json = Tdat_serve.Json

let diag_json (d : Tdat_audit.Diag.t) =
  Json.Obj
    [
      ("code", Json.Str d.Tdat_audit.Diag.code);
      ( "severity",
        Json.Str (Tdat_audit.Diag.severity_name d.Tdat_audit.Diag.severity) );
      ("subject", Json.Str d.Tdat_audit.Diag.subject);
      ("message", Json.Str d.Tdat_audit.Diag.message);
    ]

let file_json (r : Engine.file_result) =
  Json.Obj
    [
      ("file", Json.Str r.Engine.file);
      ("fields_compared", Json.Num (float_of_int r.Engine.fields));
      ("errors", Json.Bool r.Engine.errors);
      ("mismatches", Json.Arr (List.map Corpus.mismatch_json r.Engine.mismatches));
    ]

let to_json (t : Engine.t) =
  let v = t.Engine.variant in
  Json.to_string
    (Json.Obj
       [
         ("variant", Json.Str v.Variant.name);
         ("input", Json.Str (Variant.kind_name v.Variant.input));
         ("control", Json.Str v.Variant.control_name);
         ("candidate", Json.Str v.Variant.candidate_name);
         ("tolerance", Json.Num t.Engine.tolerance);
         ("files_compared", Json.Num (float_of_int (List.length t.Engine.files)));
         ("total_fields", Json.Num (float_of_int t.Engine.total_fields));
         ( "total_mismatches",
           Json.Num (float_of_int t.Engine.total_mismatches) );
         ("files", Json.Arr (List.map file_json t.Engine.files));
         ("audit", Json.Arr (List.map diag_json t.Engine.audit));
       ])

let to_text (t : Engine.t) =
  let v = t.Engine.variant in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s;
                                   Buffer.add_char buf '\n') fmt in
  line "experiment %s (%s): control=%s candidate=%s" v.Variant.name
    (Variant.kind_name v.Variant.input)
    v.Variant.control_name v.Variant.candidate_name;
  line "  files=%d fields=%d mismatches=%d tolerance=%s"
    (List.length t.Engine.files)
    t.Engine.total_fields t.Engine.total_mismatches
    (Tdat_obs.Canon.to_string t.Engine.tolerance);
  List.iter
    (fun (r : Engine.file_result) ->
      if r.Engine.mismatches <> [] then begin
        line "  MISMATCH %s (%d/%d fields%s):" r.Engine.file
          (List.length r.Engine.mismatches)
          r.Engine.fields
          (if r.Engine.errors then ", side error" else "");
        List.iter
          (fun (m : Diff.entry) ->
            line "    %s: %s control=%s candidate=%s" m.Diff.path
              (Diff.kind_name m.Diff.kind)
              m.Diff.control m.Diff.candidate)
          r.Engine.mismatches
      end)
    t.Engine.files;
  List.iter
    (fun (d : Tdat_audit.Diag.t) ->
      line "  AUDIT %s %s: %s" d.Tdat_audit.Diag.code
        d.Tdat_audit.Diag.subject d.Tdat_audit.Diag.message)
    t.Engine.audit;
  line "  verdict: %s"
    (if t.Engine.total_mismatches = 0 && t.Engine.audit = [] then
       "EQUIVALENT"
     else "DIVERGED");
  Buffer.contents buf
