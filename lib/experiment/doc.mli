(** Canonical report documents: project an analysis (or study) result
    onto a deterministic {!Tdat_serve.Json} tree the {!Diff} kernel can
    compare field by field.

    Every field a variant pair is expected to agree on appears here —
    connection profiles, transfer bounds, the 8-factor / 3-group ratio
    vectors, the 34 series sizes, every detector verdict — with fixed
    member order and canonical number rendering, so an identity
    experiment diffs to zero and a real divergence names one concrete
    field. *)

val analysis_doc : (Tdat_pkt.Flow.t * Tdat.Analyzer.t) list -> Tdat_serve.Json.t
(** Full per-connection analysis document (the richest comparison
    surface; used by the decode/partition variants, which must agree on
    everything downstream of ingestion). *)

val transfer_doc :
  (Tdat_pkt.Flow.t * Tdat.Transfer_id.t option) list -> Tdat_serve.Json.t
(** Transfer-identification document only (used by the transfer-end
    estimator variants, whose seam is upstream of series generation). *)

val study_doc : Tdat_study.Archive.file_report -> Tdat_serve.Json.t
(** Per-archive measurement-study document: detected transfers plus
    salvage statistics. *)

val error_doc : exn -> Tdat_serve.Json.t
(** An [{"error": ...}] document: a variant that raises still produces
    a comparable document, so control/candidate disagreement on
    {e whether} the input decodes surfaces as an ordinary field
    mismatch at [report.error]. *)
