(** The experiment engine: farm a corpus of capture/archive files over
    a {!Tdat_parallel.Pool}, run one {!Variant}'s control and candidate
    on every file, and collect the field-by-field divergences.

    Determinism contract: the corpus is sorted (and deduplicated) by
    path before dispatch and {!Tdat_parallel.Pool.map} preserves input
    order, so a report — and its {!Report} renderings — is byte-for-byte
    identical for every [jobs] value. *)

type file_result = {
  file : string;  (** Corpus path, as dispatched (sorted order). *)
  fields : int;  (** Leaf fields compared by the {!Diff} kernel. *)
  mismatches : Diff.entry list;  (** In document order; [[]] = agreement. *)
  errors : bool;
      (** True when either side raised and was projected to
          {!Doc.error_doc} (the sides may still agree — both raising
          the same error is agreement). *)
}

type t = {
  variant : Variant.t;
  tolerance : float;
  files : file_result list;  (** Sorted by {!file_result.file}. *)
  total_fields : int;
  total_mismatches : int;
  audit : Tdat_audit.Diag.t list;
      (** A008 self-consistency findings over this very report; empty on
          a healthy run. *)
}

val mismatching : t -> file_result list
(** The files whose diff is non-empty, in report order. *)

val run :
  ?jobs:int -> ?tolerance:float -> Variant.t -> files:string list -> t
(** [run variant ~files] compares control vs candidate on every file.
    [jobs] defaults to {!Tdat_parallel.Pool.default_jobs}[ ()]; [1] is
    fully sequential.  [tolerance] (default [0.]) is handed to
    {!Diff.run}.  A variant side that raises contributes a
    {!Doc.error_doc} rather than aborting the run, so a decode
    disagreement is an ordinary mismatch at [report.error].

    Observability: bumps the stable [experiment.files_compared],
    [experiment.fields_compared] and [experiment.mismatches] counters,
    and wraps each comparison in an [experiment.compare] span. *)
