type file_result = {
  file : string;
  fields : int;
  mismatches : Diff.entry list;
  errors : bool;
}

type t = {
  variant : Variant.t;
  tolerance : float;
  files : file_result list;
  total_fields : int;
  total_mismatches : int;
  audit : Tdat_audit.Diag.t list;
}

let mismatching t = List.filter (fun f -> f.mismatches <> []) t.files

module M = Tdat_obs.Metrics

(* Stable: the comparison outcome is deterministic across jobs, so these
   belong in the byte-identical (A007) metrics snapshot. *)
let c_files = M.Counter.make ~stable:true "experiment.files_compared"
let c_fields = M.Counter.make ~stable:true "experiment.fields_compared"
let c_mismatches = M.Counter.make ~stable:true "experiment.mismatches"
let c_errors = M.Counter.make "experiment.side_errors"

let is_error_doc = function
  | Tdat_serve.Json.Obj [ ("error", _) ] -> true
  | _ -> false

let side run path =
  match run path with
  | doc -> doc
  | exception e ->
      M.Counter.incr c_errors;
      Doc.error_doc e

let compare_file (v : Variant.t) ~tolerance file =
  Tdat_obs.Span.with_ ~name:"experiment.compare" (fun () ->
      let control = side v.Variant.control file in
      let candidate = side v.Variant.candidate file in
      let mismatches, fields = Diff.run ~tolerance ~control ~candidate () in
      M.Counter.incr c_files;
      M.Counter.add c_fields fields;
      M.Counter.add c_mismatches (List.length mismatches);
      {
        file;
        fields;
        mismatches;
        errors = is_error_doc control || is_error_doc candidate;
      })

let run ?jobs ?(tolerance = 0.) (v : Variant.t) ~files =
  let files = List.sort_uniq String.compare files in
  let results =
    Tdat_parallel.Pool.with_pool ?jobs (fun pool ->
        (* One file per chunk: corpus files dwarf the dequeue cost and
           their sizes are uneven, so balance beats amortization. *)
        Tdat_parallel.Pool.map ~chunk:1 pool
          (compare_file v ~tolerance)
          files)
  in
  let total_fields = List.fold_left (fun a r -> a + r.fields) 0 results in
  let total_mismatches =
    List.fold_left (fun a r -> a + List.length r.mismatches) 0 results
  in
  let audit =
    Tdat_audit.Checks.experiment_consistent ~subject:v.Variant.name
      ~files:
        (List.map (fun r -> (r.file, r.fields, List.length r.mismatches)) results)
      ~total_fields ~total_mismatches ()
  in
  { variant = v; tolerance; files = results; total_fields; total_mismatches;
    audit }
