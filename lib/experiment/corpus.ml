module Json = Tdat_serve.Json

type entry = { input : string; source : string; mismatches : int }

type index = {
  variant : string;
  control_name : string;
  candidate_name : string;
  tolerance : float;
  entries : entry list;
}

let index_file = "index.json"

(* --- writing -------------------------------------------------------------- *)

let copy_file src dst =
  In_channel.with_open_bin src (fun ic ->
      Out_channel.with_open_bin dst (fun oc ->
          let buf = Bytes.create 65536 in
          let rec go () =
            let n = In_channel.input ic buf 0 (Bytes.length buf) in
            if n > 0 then begin
              Out_channel.output oc buf 0 n;
              go ()
            end
          in
          go ()))

let write_string path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let entry_name i source = Printf.sprintf "%03d_%s" i (Filename.basename source)

let mismatch_json (m : Diff.entry) =
  Json.Obj
    [
      ("path", Json.Str m.Diff.path);
      ("kind", Json.Str (Diff.kind_name m.Diff.kind));
      ("control", Json.Str m.Diff.control);
      ("candidate", Json.Str m.Diff.candidate);
    ]

let diff_json (report : Engine.t) (r : Engine.file_result) =
  let v = report.Engine.variant in
  Json.Obj
    [
      ("variant", Json.Str v.Variant.name);
      ("control", Json.Str v.Variant.control_name);
      ("candidate", Json.Str v.Variant.candidate_name);
      ("tolerance", Json.Num report.Engine.tolerance);
      ("source", Json.Str r.Engine.file);
      ("fields_compared", Json.Num (float_of_int r.Engine.fields));
      ("mismatches", Json.Arr (List.map mismatch_json r.Engine.mismatches));
    ]

let index_json (report : Engine.t) entries =
  let v = report.Engine.variant in
  Json.Obj
    [
      ("variant", Json.Str v.Variant.name);
      ("control", Json.Str v.Variant.control_name);
      ("candidate", Json.Str v.Variant.candidate_name);
      ("tolerance", Json.Num report.Engine.tolerance);
      ("total_fields", Json.Num (float_of_int report.Engine.total_fields));
      ( "total_mismatches",
        Json.Num (float_of_int report.Engine.total_mismatches) );
      ( "entries",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("input", Json.Str e.input);
                   ("diff", Json.Str (e.input ^ ".diff.json"));
                   ("source", Json.Str e.source);
                   ("mismatches", Json.Num (float_of_int e.mismatches));
                 ])
             entries) );
    ]

let write ~dir (report : Engine.t) =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let entries =
    List.mapi
      (fun i (r : Engine.file_result) ->
        let name = entry_name i r.Engine.file in
        copy_file r.Engine.file (Filename.concat dir name);
        write_string
          (Filename.concat dir (name ^ ".diff.json"))
          (Json.to_string (diff_json report r));
        {
          input = name;
          source = r.Engine.file;
          mismatches = List.length r.Engine.mismatches;
        })
      (Engine.mismatching report)
  in
  write_string
    (Filename.concat dir index_file)
    (Json.to_string (index_json report entries));
  List.length entries

(* --- reading / replay ------------------------------------------------------ *)

let read_index ~dir =
  let path = Filename.concat dir index_file in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no %s (not a mismatch corpus?)" dir index_file)
  else
    let data = In_channel.with_open_bin path In_channel.input_all in
    match Json.parse data with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok doc -> (
        let str k = Option.bind (Json.member k doc) Json.to_string_opt in
        let entry j =
          match
            ( Option.bind (Json.member "input" j) Json.to_string_opt,
              Option.bind (Json.member "source" j) Json.to_string_opt,
              Option.bind (Json.member "mismatches" j) Json.to_int_opt )
          with
          | Some input, Some source, Some mismatches ->
              Some { input; source; mismatches }
          | _ -> None
        in
        match
          ( str "variant",
            str "control",
            str "candidate",
            Option.bind (Json.member "tolerance" doc) Json.to_float_opt,
            Option.bind (Json.member "entries" doc) Json.to_list_opt )
        with
        | Some variant, Some control_name, Some candidate_name, Some tolerance,
          Some entry_docs -> (
            let entries = List.filter_map entry entry_docs in
            if List.length entries <> List.length entry_docs then
              Error (Printf.sprintf "%s: malformed entry in manifest" path)
            else
              Ok { variant; control_name; candidate_name; tolerance; entries })
        | _ -> Error (Printf.sprintf "%s: missing required index fields" path))

let replay ?jobs ?tolerance ~dir () =
  match read_index ~dir with
  | Error _ as e -> e
  | Ok idx -> (
      match Variant.find idx.variant with
      | None ->
          Error
            (Printf.sprintf
               "corpus was captured by variant %S, which this build does not \
                register"
               idx.variant)
      | Some v ->
          let tolerance =
            match tolerance with Some t -> t | None -> idx.tolerance
          in
          let files =
            List.map (fun e -> Filename.concat dir e.input) idx.entries
          in
          Ok (Engine.run ?jobs ~tolerance v ~files))
