(** The mismatch corpus: every diverging input is copied next to a JSON
    drill-down of exactly which fields disagreed, so a divergence found
    on a thousand-file fleet overnight replays from one small
    self-contained directory.

    Layout under the corpus directory:
    {v
    index.json                   run summary + entry manifest
    000_<basename>               verbatim copy of the diverging input
    000_<basename>.diff.json     field-by-field drill-down for it
    001_<basename> ...
    v} *)

type entry = {
  input : string;  (** Corpus-relative copy name, e.g. ["000_f3.pcap"]. *)
  source : string;  (** Original path at capture time. *)
  mismatches : int;
}

type index = {
  variant : string;
  control_name : string;
  candidate_name : string;
  tolerance : float;
  entries : entry list;
}

val mismatch_json : Diff.entry -> Tdat_serve.Json.t
(** The drill-down rendering of one divergence (shared with {!Report}). *)

val write : dir:string -> Engine.t -> int
(** [write ~dir report] creates [dir] (one level) if needed, copies each
    mismatching input plus its drill-down, writes [index.json], and
    returns the number of entries.  A report with zero mismatches still
    writes [index.json] (with an empty manifest) so replay can tell "no
    corpus was captured" from "the corpus directory is wrong". *)

val read_index : dir:string -> (index, string) result
(** Parse [dir/index.json]; [Error] explains a missing or malformed
    index. *)

val replay :
  ?jobs:int -> ?tolerance:float -> dir:string -> unit ->
  (Engine.t, string) result
(** Re-run the recorded variant over the copied inputs.  [tolerance]
    defaults to the recorded one.  [Error]
    when the index is unreadable or names a variant this build no longer
    registers. *)
