(** Structured field-by-field comparison of two canonical report
    documents (control vs candidate), the diff kernel of the
    differential-analysis harness (DESIGN.md, "Differential analysis").

    Documents are {!Tdat_serve.Json} values built by {!Doc}; the diff
    walks both trees together and addresses every divergence by path —
    [connections[3].factors.ratios.tcp_adv_window] — so a mismatch
    names the exact field, not just the file. *)

type kind =
  | Value_mismatch   (** Same type, different value (beyond tolerance). *)
  | Type_mismatch    (** Different JSON constructors at the same path. *)
  | Missing_control  (** Path present only on the candidate side. *)
  | Missing_candidate  (** Path present only on the control side. *)

type entry = {
  path : string;  (** Dotted/indexed field address, rooted at ["report"]. *)
  kind : kind;
  control : string;  (** Canonical JSON rendering; ["(absent)"] when missing. *)
  candidate : string;
}

val kind_name : kind -> string
val equal_kind : kind -> kind -> bool
val equal_entry : entry -> entry -> bool

val compare_entry : entry -> entry -> int
(** Path, then kind, then rendered values — the deterministic report
    order. *)

val run :
  ?tolerance:float ->
  control:Tdat_serve.Json.t ->
  candidate:Tdat_serve.Json.t ->
  unit ->
  entry list * int
(** [run ~control ~candidate] returns the divergences in document order
    and the number of leaf fields compared (a missing or type-mismatched
    path counts as one compared field).  Two numbers agree when they are
    bit-equal, both NaN, or within [tolerance] relative to
    [max 1. (max |a| |b|)] ([tolerance] defaults to [0.] — the variants
    under experiment are expected to be exactly equivalent; a non-zero
    tolerance is for deliberately approximate candidates).  Object
    members are matched by key (order-insensitively); array elements by
    index. *)
