let glyphs = "*+ox#@%&"

let make_grid width height = Array.make_matrix height width ' '

let render_grid ?(x_label = "") ?(y_label = "") grid ~y_max ~x_min ~x_max =
  let height = Array.length grid in
  let width = if height = 0 then 0 else Array.length grid.(0) in
  let buf = Buffer.create ((width + 12) * (height + 3)) in
  if y_label <> "" then Buffer.add_string buf (Printf.sprintf "  %s\n" y_label);
  for row = 0 to height - 1 do
    let yv = y_max *. float_of_int (height - row) /. float_of_int height in
    Buffer.add_string buf (Printf.sprintf "%8.3g |" yv);
    Array.iter (Buffer.add_char buf) grid.(row);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%8s  %.4g%*s%.4g  %s\n" "" x_min
       (Stdlib.max 1 (width - 12))
       "" x_max x_label);
  Buffer.contents buf

let plot_points grid glyph ~x_min ~x_max ~y_max points =
  let height = Array.length grid in
  let width = if height = 0 then 0 else Array.length grid.(0) in
  let span_x = Stdlib.max (x_max -. x_min) 1e-12 in
  let place (x, y) =
    let col =
      int_of_float ((x -. x_min) /. span_x *. float_of_int (width - 1))
    in
    let row_f = y /. Stdlib.max y_max 1e-12 *. float_of_int height in
    let row = height - int_of_float (ceil row_f) in
    let row = Stdlib.max 0 (Stdlib.min (height - 1) row) in
    let col = Stdlib.max 0 (Stdlib.min (width - 1) col) in
    grid.(row).(col) <- glyph
  in
  List.iter place points

let cdf ?(width = 64) ?(height = 16) ?(x_label = "") series =
  let all_x = List.concat_map (fun (_, pts) -> List.map fst pts) series in
  let x_min = List.fold_left Stdlib.min infinity all_x in
  let x_max = List.fold_left Stdlib.max neg_infinity all_x in
  let x_min = if x_min = infinity then 0. else x_min in
  let x_max = if x_max = neg_infinity then 1. else x_max in
  let grid = make_grid width height in
  List.iteri
    (fun i (_, pts) ->
      let glyph = glyphs.[i mod String.length glyphs] in
      (* Densify the step curve so it reads as a line. *)
      let dense =
        List.concat_map
          (fun (x, y) -> [ (x, y) ])
          pts
      in
      plot_points grid glyph ~x_min ~x_max ~y_max:1.0 dense)
    series;
  let legend =
    series
    |> List.mapi (fun i (name, _) ->
           Printf.sprintf "  %c %s" glyphs.[i mod String.length glyphs] name)
    |> String.concat "\n"
  in
  render_grid ~x_label ~y_label:"CDF" grid ~y_max:1.0 ~x_min ~x_max
  ^ legend ^ "\n"

let scatter ?(width = 64) ?(height = 20) ?(x_label = "") ?(y_label = "")
    ~x_max ~y_max series =
  let grid = make_grid width height in
  List.iter
    (fun (glyph, pts) -> plot_points grid glyph ~x_min:0. ~x_max ~y_max pts)
    series;
  render_grid ~x_label ~y_label grid ~y_max ~x_min:0. ~x_max

let timeline ?(width = 72) ~window rows =
  let t0, t1 = window in
  let span = Stdlib.max (t1 -. t0) 1e-12 in
  let name_w =
    List.fold_left (fun acc (n, _) -> Stdlib.max acc (String.length n)) 0 rows
  in
  let buf = Buffer.create 1024 in
  let render_row (name, intervals) =
    let cells = Bytes.make width '_' in
    let mark (a, b) =
      let c0 = int_of_float ((a -. t0) /. span *. float_of_int width) in
      let c1 = int_of_float ((b -. t0) /. span *. float_of_int width) in
      let c0 = Stdlib.max 0 (Stdlib.min (width - 1) c0) in
      let c1 = Stdlib.max c0 (Stdlib.min (width - 1) c1) in
      for c = c0 to c1 do
        Bytes.set cells c '#'
      done
    in
    List.iter mark intervals;
    Buffer.add_string buf
      (Printf.sprintf "%*s |%s|\n" name_w name (Bytes.to_string cells))
  in
  List.iter render_row rows;
  Buffer.add_string buf
    (Printf.sprintf "%*s  %.4g%*s%.4g\n" name_w "" t0
       (Stdlib.max 1 (width - 10))
       "" t1);
  Buffer.contents buf

let curve ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") points
    =
  let xs = List.map fst points and ys = List.map snd points in
  let x_min = List.fold_left Stdlib.min infinity xs in
  let x_max = List.fold_left Stdlib.max neg_infinity xs in
  let y_max = List.fold_left Stdlib.max neg_infinity ys in
  let x_min = if x_min = infinity then 0. else x_min in
  let x_max = if x_max = neg_infinity then 1. else x_max in
  let y_max = if y_max = neg_infinity then 1. else y_max in
  let grid = make_grid width height in
  plot_points grid '*' ~x_min ~x_max ~y_max points;
  render_grid ~x_label ~y_label grid ~y_max ~x_min ~x_max
