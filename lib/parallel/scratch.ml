(* Per-domain scratch arenas (DESIGN.md, "Allocation discipline").

   A worker that decodes and analyzes thousands of records should not
   pay a fresh buffer per record — nor share one with another domain.
   [Scratch] keeps a small table of reusable buffers in [Domain.DLS],
   so every domain (pool workers and the caller alike) draws from
   private storage that no other domain can reach: cross-domain
   isolation holds by construction, which is exactly the property the
   L007 lint enforces statically and A007 checks at runtime.

   Checkout discipline: each call site owns a slot number (see the
   [slot_*] constants below).  [with_bytes]/[with_ints] mark the slot
   busy for the duration of the callback and fall back to a fresh
   transient buffer when the slot is already checked out — so a
   reentrant use (a fold callback that itself folds another capture)
   degrades to plain allocation instead of aliasing the buffer.

   Buffers only grow; the high-water mark is retained for the domain's
   lifetime.  That is the arena trade: a worker that once saw a 1 MiB
   record keeps 1 MiB parked, and in exchange the steady state
   allocates nothing. *)

(* Reentrant checkouts are correct but costly: the fallback buffer is
   allocated fresh per call.  The volatile counter makes that cost
   visible (`scratch.fallbacks` in a --metrics snapshot) instead of
   silent — a hot loop that keeps hitting it needs its own slot.
   Volatile because the count depends on call nesting and domain
   layout, not on the input alone. *)
module Obs = Tdat_obs.Metrics

let m_fallbacks = Obs.Counter.make ~stable:false "scratch.fallbacks"

type cell = { mutable buf : Bytes.t; mutable busy : bool }
type icell = { mutable arr : int array; mutable ibusy : bool }

type t = { mutable cells : cell array; mutable icells : icell array }

(* Well-known slot owners.  A new call site takes the next number; two
   sites may share a slot only if they can never be live at once. *)
let slot_pcap_frame = 0
let slot_mrt_body = 1
let slot_reassembly = 2
let slot_series_data_ts = 0
let slot_series_ack_ts = 1
let slot_series_all_ts = 2
let slot_series_small_ts = 3

let key =
  Domain.DLS.new_key (fun () -> { cells = [||]; icells = [||] })

let get () = Domain.DLS.get key

let round_up n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let cell_at t slot =
  let n = Array.length t.cells in
  if slot >= n then begin
    let grown =
      Array.init (slot + 1) (fun i ->
          if i < n then t.cells.(i)
          else { buf = Bytes.create 0; busy = false })
    in
    t.cells <- grown
  end;
  t.cells.(slot)

let icell_at t slot =
  let n = Array.length t.icells in
  if slot >= n then begin
    let grown =
      Array.init (slot + 1) (fun i ->
          if i < n then t.icells.(i) else { arr = [||]; ibusy = false })
    in
    t.icells <- grown
  end;
  t.icells.(slot)

(* Grow [cell.buf] to at least [n] bytes (contents not preserved) and
   return it.  Callers that need the old contents blit explicitly. *)
let ensure cell n =
  if Bytes.length cell.buf < n then cell.buf <- Bytes.create (round_up n);
  cell.buf

(* Grow preserving contents — the streaming readers enlarge a frame
   buffer mid-record only before refilling it, so plain [ensure] is the
   common case; [ensure_keep] covers reassembly-style growth.  Growth
   is explicitly geometric (at least double the current capacity), so a
   caller that enlarges its request byte-by-byte — reassembly appending
   one segment at a time — pays O(log n) copies over the buffer's
   lifetime, never one copy per request. *)
let ensure_keep cell n =
  let old = cell.buf in
  if Bytes.length old < n then begin
    let bigger = Bytes.create (max (2 * Bytes.length old) (round_up n)) in
    Bytes.blit old 0 bigger 0 (Bytes.length old);
    cell.buf <- bigger
  end;
  cell.buf

let with_bytes ~slot n f =
  let cell = cell_at (get ()) slot in
  if cell.busy then begin
    Obs.Counter.incr m_fallbacks;
    f { buf = Bytes.create (round_up n); busy = true }
  end
  else begin
    cell.busy <- true;
    ignore (ensure cell n : Bytes.t);
    Fun.protect ~finally:(fun () -> cell.busy <- false) (fun () -> f cell)
  end

let with_ints ~slot n f =
  let cell = icell_at (get ()) slot in
  if cell.ibusy then begin
    Obs.Counter.incr m_fallbacks;
    f (Array.make (max 1 n) 0)
  end
  else begin
    cell.ibusy <- true;
    if Array.length cell.arr < n then cell.arr <- Array.make (round_up n) 0;
    Fun.protect ~finally:(fun () -> cell.ibusy <- false) (fun () -> f cell.arr)
  end

