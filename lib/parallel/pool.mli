(** A fixed-size [Domain]-based worker pool for fleet-level analysis.

    The paper's datasets cover hundreds of BGP sessions; per-connection
    analysis is embarrassingly parallel, and OCaml 5 gives us real
    shared-memory parallelism.  This pool is deliberately tiny — a
    chunked index queue guarded by a [Mutex]/[Condition] pair — so the
    repository keeps its no-external-dependency rule ([domainslib] is
    not available here; the only in-repo dependency is [Tdat_obs] for
    self-measurement).

    Guarantees:

    - {b Deterministic ordering}: [map pool f xs] returns results in the
      order of [xs], regardless of which domain computed which element
      or in what order they finished.  Output is therefore identical to
      [List.map f xs] whenever [f] is pure.
    - {b Exception transparency}: if [f] raises on some element, the
      first exception observed (earliest completion, not necessarily the
      earliest index) is re-raised in the caller with its backtrace once
      the batch has drained.
    - {b Degenerate sequential mode}: [jobs = 1] spawns no domains at
      all; [map] is exactly [List.map].

    One batch runs at a time per pool, and the calling domain itself
    works on the batch, so a pool of [jobs = n] uses [n - 1] spawned
    domains plus the caller.  [map] must not be called from inside a
    task running on the same pool (the nested call would wait for the
    batch it is part of).

    When [Tdat_obs.Metrics] collection is enabled the pool reports
    batch/job counters (stable: identical for every [jobs] value),
    chunk queue-wait and execute-time histograms, and cumulative
    per-executor busy-time gauges ([pool.worker<i>.busy_us], where
    executor [jobs - 1] is the calling domain) — enough to split a
    batch's wall time into synchronization overhead versus compute.
    Disabled, each measurement point is one atomic load. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism the runtime
    believes the hardware supports (1 on a single-core container). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts [jobs - 1] worker domains (default
    {!default_jobs}; values above 126 are clamped so the spawn can never
    exceed the runtime's domain limit).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism this pool was created with (after clamping). *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], on up to
    [jobs pool] domains, and returns the results in input order.

    [chunk] is the number of consecutive elements handed to an executor
    per dequeue (default: enough for four chunks per executor,
    [max 1 (length xs / (jobs * 4))]).  Every dequeue is a mutex
    round-trip, so pick a chunk that covers at least ~10 ms of execute
    time — the [pool.chunk_queue_wait_us] / [pool.chunk_execute_us]
    histograms show the split.  Larger chunks amortize better but
    balance worse when element costs are uneven.
    @raise Invalid_argument if [chunk < 1]. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Using [map] after
    [shutdown] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] is [f (create ~jobs ())] with a guaranteed
    {!shutdown}, whether [f] returns or raises. *)
