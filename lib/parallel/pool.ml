(* A hand-rolled Domain worker pool: a chunked index queue under one
   Mutex/Condition pair.  Results land by input index, so the output
   order never depends on scheduling; the memory model is respected
   because every result write is ordered before the completion-counter
   update under [mutex], which the consumer reads under the same mutex
   before touching the results array.

   The pool is self-measuring (DESIGN.md, "Observability"): batch/job
   counters are stable metrics (identical for every [jobs] value),
   while chunk queue-wait and execute histograms and per-worker busy
   gauges — wall-clock, scheduling-dependent — are volatile.  Together
   they decompose a batch's wall time into synchronization overhead
   and compute, which is exactly the jobs>1-on-few-cores regression
   BENCH_SPEED.json records.  All of it costs one atomic load per
   event while metrics are disabled. *)

module Obs = Tdat_obs.Metrics

let m_batches = Obs.Counter.make "pool.batches"
let m_submitted = Obs.Counter.make "pool.jobs_submitted"
let m_completed = Obs.Counter.make "pool.jobs_completed"

let h_queue_wait =
  Obs.Histogram.make ~stable:false ~buckets:Obs.Histogram.time_us_buckets
    "pool.chunk_queue_wait_us"

let h_execute =
  Obs.Histogram.make ~stable:false ~buckets:Obs.Histogram.time_us_buckets
    "pool.chunk_execute_us"

let rec atomic_float_add a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_float_add a x

(* One in-flight batch.  [run i] executes item [i] and must not raise
   (map wraps the user function; exceptions are captured out of band). *)
type batch = {
  run : int -> unit;
  total : int;
  chunk : int;
  submitted_us : float;  (* wall clock at submission, for queue-wait *)
  mutable next : int;  (* next index to hand out *)
  mutable completed : int;
}

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* a batch arrived, or shutdown *)
  batch_done : Condition.t;      (* the current batch completed *)
  busy_us : float Atomic.t array;  (* cumulative execute time per executor *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Execute one chunk outside the mutex, recording queue-wait and
   execute time for executor [widx] when metrics are on. *)
let exec_chunk t ~widx b lo hi =
  let obs = Obs.enabled Obs.default in
  let t0 = if obs then Tdat_obs.Clock.now_us () else 0. in
  if obs then Obs.Histogram.observe h_queue_wait (t0 -. b.submitted_us);
  Tdat_obs.Span.with_ ~name:"pool-chunk" (fun () ->
      for i = lo to hi - 1 do
        b.run i
      done);
  if obs then begin
    let dt = Tdat_obs.Clock.now_us () -. t0 in
    Obs.Histogram.observe h_execute dt;
    atomic_float_add t.busy_us.(widx) dt
  end

(* Pull chunks of [b] until its queue is empty.  Called (and returns)
   with [t.mutex] held. *)
let drain t ~widx b =
  while b.next < b.total do
    let lo = b.next in
    let hi = min b.total (lo + b.chunk) in
    b.next <- hi;
    Mutex.unlock t.mutex;
    exec_chunk t ~widx b lo hi;
    Mutex.lock t.mutex;
    b.completed <- b.completed + (hi - lo);
    if b.completed >= b.total then begin
      t.batch <- None;
      Condition.broadcast t.batch_done
    end
  done

let worker t ~widx =
  Mutex.lock t.mutex;
  let running = ref true in
  while !running do
    match t.batch with
    | Some b when b.next < b.total -> drain t ~widx b
    | Some _ | None ->
        if t.stop then running := false
        else Condition.wait t.work_available t.mutex
  done;
  Mutex.unlock t.mutex

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs (%d) must be >= 1" jobs);
  (* The runtime supports at most 128 simultaneous domains; leave head
     room for the caller and whatever else the process runs. *)
  let jobs = min jobs 126 in
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      busy_us = Array.init jobs (fun _ -> Atomic.make 0.);
      batch = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t ~widx:i));
  t

let jobs t = t.pool_jobs

(* Publish per-worker busy time (cumulative over the pool's lifetime;
   the caller is the last executor index) as volatile gauges. *)
let publish_busy t =
  if Obs.enabled Obs.default then
    Array.iteri
      (fun i busy ->
        let g =
          (* Templated over the worker index — one gauge per domain. *)
          (Obs.Gauge.make ~stable:false
             (Printf.sprintf "pool.worker%d.busy_us" i)
           [@tdat.lint.allow "L011"])
        in
        Obs.Gauge.set g (Atomic.get busy))
      t.busy_us

let map ?chunk t f xs =
  if t.stop then invalid_arg "Pool.map: pool is shut down";
  (match chunk with
  | Some c when c < 1 ->
      (* Cold: argument-validation failure, once per call at most. *)
      (invalid_arg
         (Printf.sprintf "Pool.map: chunk (%d) must be >= 1" c)
       [@tdat.lint.allow "L009"])
  | _ -> ());
  match xs with
  | [] -> []
  | xs when t.pool_jobs = 1 || List.compare_length_with xs 2 < 0 ->
      let n = List.length xs in
      Obs.Counter.incr m_batches;
      Obs.Counter.add m_submitted n;
      (* The documented degenerate mode IS List.map: the allocation is
         exactly the result list the caller asked for. *)
      let ys = (List.map f xs [@tdat.lint.allow "L009"]) in
      Obs.Counter.add m_completed n;
      ys
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      Obs.Counter.incr m_batches;
      Obs.Counter.add m_submitted n;
      let results = Array.make n None in
      let error = Atomic.make None in
      let run i =
        match f input.(i) with
        | y ->
            results.(i) <- Some y;
            Obs.Counter.incr m_completed
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            (* Keep the first failure; later ones add no information. *)
            ignore (Atomic.compare_and_set error None (Some (e, bt)))
      in
      (* Chunk size trades balance against synchronization: each dequeue
         costs a mutex round-trip, so the queue-wait histogram should
         stay well under the execute histogram.  Four chunks per
         executor keeps heavyweight, unevenly-sized tasks (whole
         connection analyses) balanced while roughly halving the number
         of dequeues the old jobs*8 split paid — with per-connection
         analyses in the 1-10 ms range that keeps each dequeue amortized
         over ~10 ms of execute.  Callers with finer-grained work can
         pass [?chunk] explicitly. *)
      let chunk =
        match chunk with
        | Some c -> c
        | None -> max 1 (n / (t.pool_jobs * 4))
      in
      let b =
        {
          run;
          total = n;
          chunk;
          submitted_us = Tdat_obs.Clock.now_us ();
          next = 0;
          completed = 0;
        }
      in
      Mutex.lock t.mutex;
      while Option.is_some t.batch do
        Condition.wait t.batch_done t.mutex
      done;
      t.batch <- Some b;
      Condition.broadcast t.work_available;
      (* The caller is the jobs-th executor. *)
      drain t ~widx:(t.pool_jobs - 1) b;
      while b.completed < b.total do
        Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex;
      publish_busy t;
      (match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)

let shutdown t =
  Mutex.lock t.mutex;
  if t.stop then Mutex.unlock t.mutex
  else begin
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
