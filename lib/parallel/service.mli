(** A resident job service: a bounded admission queue in front of the
    existing {!Pool}.

    {!Pool} is batch-oriented; a long-running daemon needs to accept
    work continuously and push back when overloaded.  [Service] keeps
    one dispatcher domain that drains a bounded queue in batches
    through [Pool.map] — workers, chunking and instrumentation stay the
    pool's — and rejects submissions once the queue is full, which is
    the admission-control signal the serve daemon turns into a
    429-style busy response.

    Thunks must not rely on raising: a job's exception is swallowed at
    the job boundary (so it cannot poison its batch); encode failures
    into the job's own completion path.

    When {!Tdat_obs.Metrics} collection is enabled the service reports
    volatile [service.submitted] / [service.rejected_full] /
    [service.completed] counters, a [service.queue_depth] gauge and a
    [service.queue_wait_us] histogram. *)

type t

type outcome =
  | Accepted  (** Queued; the job will run exactly once. *)
  | Rejected_full  (** Queue at capacity — shed load and retry later. *)
  | Rejected_draining  (** {!drain} already started; no new work. *)

val create : ?jobs:int -> ?capacity:int -> unit -> t
(** [create ~jobs ~capacity ()] starts the dispatcher domain and a
    {!Pool.create}[ ~jobs] pool.  [capacity] (default 64) bounds the
    number of queued-but-not-yet-running jobs.
    @raise Invalid_argument if [capacity < 1]. *)

val submit : ?trace:string -> t -> (unit -> unit) -> outcome
(** Non-blocking admission.  Safe to call from any domain.

    With [trace], the worker runs the job inside
    {!Tdat_obs.Tracer.with_context}[ (Some trace)], and (when tracing
    is enabled) records the job's queue wait as a [service.queue_wait]
    complete event spanning enqueue to execution start — so the span
    tree a traced job emits is connected to its request. *)

val jobs : t -> int
val capacity : t -> int

val depth : t -> int
(** Jobs currently queued (excluding the batch in flight). *)

val in_flight : t -> int
(** Jobs of the batch currently executing on the pool. *)

val drain : t -> unit
(** Graceful shutdown: stop admitting, run every accepted job to
    completion, then join the dispatcher and shut the pool down.  No
    accepted job is dropped.  Idempotent-after-completion in the sense
    that a second call returns immediately. *)
