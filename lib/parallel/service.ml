(* A resident job service: the bounded admission queue in front of the
   existing {!Pool} (DESIGN.md, "Service architecture").

   [Pool] is batch-oriented — one [map] at a time, caller participates —
   which fits the CLI but not a daemon that accepts work continuously.
   [Service] bridges the two: callers [submit] thunks into a bounded
   queue (admission control: a full queue rejects instead of growing,
   which is the daemon's 429), and a dedicated dispatcher domain drains
   the queue in batches through [Pool.map], so the worker domains, the
   chunking, the queue-wait/execute instrumentation and the determinism
   discipline all stay the pool's.

   Shutdown is graceful by construction: [drain] stops admissions,
   lets every accepted thunk run to completion, then joins the
   dispatcher and the pool.  No accepted job is ever dropped. *)

type outcome = Accepted | Rejected_full | Rejected_draining

(* Service instruments: all volatile — they measure offered load and
   queueing, properties of the request stream, not of any input
   capture. *)
module Obs = Tdat_obs.Metrics

let m_submitted = Obs.Counter.make ~stable:false "service.submitted"
let m_rejected = Obs.Counter.make ~stable:false "service.rejected_full"
let m_completed = Obs.Counter.make ~stable:false "service.completed"
let g_depth = Obs.Gauge.make ~stable:false "service.queue_depth"

let h_queue_wait =
  Obs.Histogram.make ~stable:false
    ~buckets:Obs.Histogram.time_us_buckets "service.queue_wait_us"

type job = { run : unit -> unit; enqueued_us : float; trace : string option }

type t = {
  m : Mutex.t;
  nonempty : Condition.t;  (* signalled on enqueue and on drain *)
  idle : Condition.t;  (* signalled when a batch finishes or loop exits *)
  q : job Queue.t;
  capacity : int;
  mutable draining : bool;
  mutable stopped : bool;  (* dispatcher has exited *)
  mutable in_flight : int;
  pool : Pool.t;
  mutable dispatcher : unit Domain.t option;
}

let jobs t = Pool.jobs t.pool
let capacity t = t.capacity

let depth t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

let in_flight t =
  Mutex.lock t.m;
  let n = t.in_flight in
  Mutex.unlock t.m;
  n

(* One guarded thunk: a raising job must not poison its whole batch
   (Pool.map re-raises), so exceptions stop at the job boundary — the
   submitter is expected to encode failures into its own completion
   path (the serve layer turns them into error responses). *)
let run_body job =
  (* The job's queue wait is only known once it starts, so it records
     retroactively as an "X" complete event — a B event with a past
     timestamp would break the nesting of spans already recorded on
     this worker domain.  Emitted inside the job's trace context so it
     joins the request's span tree. *)
  if Tdat_obs.Tracer.enabled () then
    Tdat_obs.Tracer.complete_span ~name:"service.queue_wait"
      ~begin_us:job.enqueued_us
      ~dur_us:(Tdat_obs.Clock.now_us () -. job.enqueued_us);
  (try job.run () with _ -> ());
  Obs.Counter.incr m_completed

let run_guarded job =
  match job.trace with
  | None -> run_body job
  | Some _ as trace ->
      Tdat_obs.Tracer.with_context trace (fun () -> run_body job)

let dispatcher_loop t =
  let batch = ref [] in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.draining do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.q then begin
      (* draining and nothing left: exit *)
      t.stopped <- true;
      Condition.broadcast t.idle;
      Mutex.unlock t.m;
      running := false
    end
    else begin
      (* Take the whole queue: admission control (the bounded queue)
         already caps the batch, and whole-queue batches make the
         backpressure boundary exact — a job is either running, queued,
         or rejected, never stuck behind an idle dispatcher. *)
      batch := [];
      while not (Queue.is_empty t.q) do
        batch := Queue.pop t.q :: !batch
      done;
      let jobs = List.rev !batch in
      t.in_flight <- List.length jobs;
      if Obs.enabled Obs.default then begin
        Obs.Gauge.set g_depth 0.;
        let now = Tdat_obs.Clock.now_us () in
        List.iter
          (fun j -> Obs.Histogram.observe h_queue_wait (now -. j.enqueued_us))
          jobs
      end;
      Mutex.unlock t.m;
      ignore (Pool.map t.pool run_guarded jobs : unit list);
      Mutex.lock t.m;
      t.in_flight <- 0;
      Condition.broadcast t.idle;
      Mutex.unlock t.m
    end
  done

let create ?jobs ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Service.create: capacity must be >= 1";
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      q = Queue.create ();
      capacity;
      draining = false;
      stopped = false;
      in_flight = 0;
      pool = Pool.create ?jobs ();
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatcher_loop t));
  t

let submit ?trace t run =
  Mutex.lock t.m;
  let outcome =
    if t.draining then Rejected_draining
    else if Queue.length t.q >= t.capacity then begin
      Obs.Counter.incr m_rejected;
      Rejected_full
    end
    else begin
      Queue.push { run; enqueued_us = Tdat_obs.Clock.now_us (); trace } t.q;
      Obs.Counter.incr m_submitted;
      Obs.Gauge.set g_depth (float_of_int (Queue.length t.q));
      Condition.signal t.nonempty;
      Accepted
    end
  in
  Mutex.unlock t.m;
  outcome

let drain t =
  Mutex.lock t.m;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  while not t.stopped do
    Condition.wait t.idle t.m
  done;
  Mutex.unlock t.m;
  (match t.dispatcher with
  | Some d ->
      t.dispatcher <- None;
      Domain.join d
  | None -> ());
  Pool.shutdown t.pool
