(* Engine instruments (DESIGN.md, "Observability"): the dispatched-event
   counter is stable (the event sequence is a pure function of the
   scenario), and so is the heap-depth high-water mark — schedule order
   does not depend on wall clock or jobs. *)
module Obs = Tdat_obs.Metrics

let m_events = Obs.Counter.make "sim.events"
let g_heap_depth_hw = Obs.Gauge.make "sim.heap_depth_hw"

type timer = { mutable cancelled : bool; mutable fired : bool }

type event = { timer : timer; action : unit -> unit }

type t = { mutable clock : Tdat_timerange.Time_us.t; queue : event Heap.t }

let create () = { clock = 0; queue = Heap.create () }
let now t = t.clock

let schedule_at t at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now %d)" at
         t.clock);
  let timer = { cancelled = false; fired = false } in
  Heap.push t.queue at { timer; action };
  Obs.Gauge.set_max g_heap_depth_hw (float_of_int (Heap.size t.queue));
  timer

let schedule_after t d action =
  if d < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock + d) action

let cancel timer = timer.cancelled <- true
let is_pending timer = (not timer.cancelled) && not timer.fired

let run ?until t =
  let stop = ref false in
  while not !stop do
    match Heap.peek_key t.queue with
    | None -> stop := true
    | Some at ->
        (match until with
        | Some limit when at > limit ->
            t.clock <- limit;
            stop := true
        | _ ->
            (match Heap.pop t.queue with
            | None -> stop := true
            | Some (at, ev) ->
                t.clock <- at;
                if not ev.timer.cancelled then begin
                  ev.timer.fired <- true;
                  Obs.Counter.incr m_events;
                  ev.action ()
                end))
  done

let pending_events t = Heap.size t.queue
