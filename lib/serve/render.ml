(* The one place the human-readable analysis text is assembled.  Both
   `tdat analyze` (stdout) and a serve analyze response (the "output"
   member) call this, so the daemon's answer is byte-identical to the
   batch CLI's by construction — the acceptance bar for PR 8. *)

(* --- the `tdat top` dashboard ------------------------------------------- *)

(* One frame of the live dashboard, rendered from a `stats` result.
   Everything is defensive (missing members render as zero): `tdat
   top` must degrade gracefully against an older or newer daemon
   rather than crash the operator's terminal. *)

let mem_float json name =
  match Json.member name json with
  | Some v -> Option.value (Json.to_float_opt v) ~default:0.
  | None -> 0.

let mem_int json name = int_of_float (mem_float json name)

let mem_bool json name =
  match Json.member name json with
  | Some v -> Option.value (Json.to_bool_opt v) ~default:false
  | None -> false

let mem_str json name =
  match Json.member name json with
  | Some v -> Option.value (Json.to_string_opt v) ~default:""
  | None -> ""

let hit_pct cache =
  let hits = mem_float cache "hits" and misses = mem_float cache "misses" in
  if hits +. misses <= 0. then 0. else 100. *. hits /. (hits +. misses)

let cache_cell buf label cache =
  Buffer.add_string buf
    (Printf.sprintf "%s %de %.1f%%h" label (mem_int cache "entries")
       (hit_pct cache))

let truncate_line s limit =
  if String.length s <= limit then s else String.sub s 0 (limit - 3) ^ "..."

let dashboard ?(address = "") stats =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  add "tdat serve%s · up %.0fs · jobs %d · draining %s\n"
    (if String.equal address "" then "" else " @ " ^ address)
    (mem_float stats "uptime_s") (mem_int stats "jobs")
    (if mem_bool stats "draining" then "yes" else "no");
  add "requests %d · errors %d · queue %d/%d · in-flight %d · conns %d\n"
    (mem_int stats "requests") (mem_int stats "errors")
    (mem_int stats "queue_depth")
    (mem_int stats "queue_capacity")
    (mem_int stats "in_flight")
    (mem_int stats "connections");
  (match Json.member "cache" stats with
  | Some cache ->
      Buffer.add_string buf "cache ";
      (match Json.member "pcap" cache with
      | Some c -> cache_cell buf "pcap" c
      | None -> ());
      (match Json.member "mrt" cache with
      | Some c ->
          Buffer.add_string buf " · ";
          cache_cell buf "mrt" c
      | None -> ());
      add " · scratch fallbacks %d\n" (mem_int stats "scratch_fallbacks")
  | None -> add "scratch fallbacks %d\n" (mem_int stats "scratch_fallbacks"));
  (match Json.member "windows" stats with
  | Some (Json.Obj windows) ->
      let window_s =
        match windows with
        | (_, w) :: _ -> mem_float w "window_s"
        | [] -> 0.
      in
      add "\nendpoint     count     rps    p50_us    p95_us    p99_us   (last %.0fs)\n"
        window_s;
      List.iter
        (fun (endpoint, w) ->
          add "%-10s %7d %7.2f %9.0f %9.0f %9.0f\n" endpoint
            (mem_int w "count") (mem_float w "rps") (mem_float w "p50_us")
            (mem_float w "p95_us") (mem_float w "p99_us"))
        windows
  | Some _ | None -> ());
  (match Json.member "exemplars" stats with
  | Some (Json.Arr (_ :: _ as exemplars)) ->
      Buffer.add_string buf "\nworst requests\n";
      List.iteri
        (fun i e ->
          let queue_wait =
            match Json.member "stages" e with
            | Some stages -> mem_float stages "queue_wait"
            | None -> 0.
          in
          add "%3d. %9.1f ms  %-8s trace=%s  queue_wait %.1f ms\n" (i + 1)
            (mem_float e "duration_us" /. 1e3)
            (mem_str e "endpoint") (mem_str e "trace") (queue_wait /. 1e3);
          let req = mem_str e "request" in
          if not (String.equal req "") then
            add "     %s\n" (truncate_line req 120))
        exemplars
  | Some _ | None -> ());
  Buffer.contents buf

let analysis ?(series = false) results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (_flow, (a : Tdat.Analyzer.t)) ->
      Buffer.add_string buf (Tdat.Report.to_string a);
      Buffer.add_char buf '\n';
      if series then begin
        Buffer.add_string buf "-- event series --\n";
        Buffer.add_string buf
          (Tdat.Report.series_timeline a.Tdat.Analyzer.series)
      end;
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf
