(* The one place the human-readable analysis text is assembled.  Both
   `tdat analyze` (stdout) and a serve analyze response (the "output"
   member) call this, so the daemon's answer is byte-identical to the
   batch CLI's by construction — the acceptance bar for PR 8. *)

let analysis ?(series = false) results =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (_flow, (a : Tdat.Analyzer.t)) ->
      Buffer.add_string buf (Tdat.Report.to_string a);
      Buffer.add_char buf '\n';
      if series then begin
        Buffer.add_string buf "-- event series --\n";
        Buffer.add_string buf
          (Tdat.Report.series_timeline a.Tdat.Analyzer.series)
      end;
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf
