(** The [tdat serve] daemon: a line-delimited JSON protocol (see
    {!Protocol}) over a Unix-domain or TCP socket, analysis verbs
    executed on a {!Tdat_parallel.Service} worker pool behind a bounded
    admission queue, decoded inputs cached per {!Cache}.  See
    DESIGN.md, "Service architecture". *)

type address = [ `Unix of string | `Tcp of string * int ]
(** [`Tcp (host, 0)] binds an ephemeral port; {!address} reports the
    one actually bound. *)

type config = {
  address : address;
  jobs : int;  (** Worker domains in the pool. *)
  queue_capacity : int;  (** Admission-queue bound (429 beyond it). *)
  cache_capacity : int;  (** Decoded captures/archives kept per kind. *)
  max_line_bytes : int;  (** Requests longer than this close the conn. *)
  window_slots : int;  (** Ring slots per rolling latency window. *)
  window_slot_s : float;  (** Seconds of wall time per slot. *)
  exemplar_capacity : int;  (** Worst requests kept for post-mortems. *)
}

val default_config : config
(** Loopback TCP on an ephemeral port, [Pool.default_jobs] workers,
    queue of 64, 16 cached inputs per kind, 1 MiB line limit, a
    12-slot × 5 s rolling window per endpoint, 8 exemplars. *)

type t

val start : config -> t
(** Bind, spawn the event-loop domain, return immediately.
    @raise Invalid_argument on [jobs < 1] or an unresolvable host;
    @raise Unix.Unix_error when the address cannot be bound. *)

val address : t -> address
(** The address actually bound (resolves an ephemeral TCP port). *)

val stop : t -> unit
(** Begin the graceful drain: stop accepting connections and jobs
    (new jobs answer 503), run every accepted job to completion, flush
    every response, then shut the pool down.  Returns immediately;
    {!wait} observes completion.  Safe from any domain and from a
    signal handler; idempotent. *)

val wait : t -> unit
(** Join the event loop (blocks until a drain completes). *)

val run : config -> unit
(** [start], install SIGTERM/SIGINT handlers that {!stop}, and
    {!wait} — the CLI entry point. *)
