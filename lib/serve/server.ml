(* The `tdat serve` daemon (DESIGN.md, "Service architecture").

   One event-loop domain owns every socket: it accepts connections,
   frames line-delimited JSON requests, answers control verbs (ping /
   stats / shutdown) inline, and submits analysis verbs to a
   {!Tdat_parallel.Service} — the bounded admission queue in front of
   the worker pool.  Workers never touch a socket: a finished job
   pushes its response line into a mutex-guarded outbox and pokes the
   loop through a self-pipe; the loop routes it to the connection's
   output buffer and writes when the socket is writable.  Admission
   control is visible on the wire: a full queue answers 429 [busy], a
   draining server 503 [draining].

   Graceful drain (SIGTERM or the shutdown verb): stop accepting
   connections and jobs, run every accepted job to completion, flush
   every response, then close.  The invariant is [pending] — accepted
   jobs whose response has not yet reached the outbox — so the loop
   only exits once [pending = 0] and all output buffers are empty: no
   accepted job is ever dropped.

   Each request runs its analysis at [jobs:1]: the request already
   occupies a pool worker, and cross-request parallelism is the
   service's job.  Results are identical either way (the analyzer is
   deterministic in [jobs]). *)

module Log = Tdat_obs.Log
module Obs = Tdat_obs.Metrics
module Window = Tdat_obs.Window
module Exemplar = Tdat_obs.Exemplar
module Prometheus = Tdat_obs.Prometheus
module Service = Tdat_parallel.Service

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  jobs : int;  (** Worker domains in the pool. *)
  queue_capacity : int;  (** Admission-queue bound (429 beyond it). *)
  cache_capacity : int;  (** Decoded captures/archives kept per kind. *)
  max_line_bytes : int;  (** Requests longer than this close the conn. *)
  window_slots : int;  (** Ring slots per rolling latency window. *)
  window_slot_s : float;  (** Seconds of wall time per slot. *)
  exemplar_capacity : int;  (** Worst requests kept for post-mortems. *)
}

let default_config =
  {
    address = `Tcp ("127.0.0.1", 0);
    jobs = Tdat_parallel.Pool.default_jobs ();
    queue_capacity = 64;
    cache_capacity = 16;
    max_line_bytes = 1 lsl 20;
    window_slots = 12;
    window_slot_s = 5.;
    exemplar_capacity = 8;
  }

(* The job verbs, each with its own rolling latency window.  Literal
   list — window identity is part of the wire surface (stats/metrics
   label values), not derived from request traffic. *)
let job_endpoints = [ "sleep"; "analyze"; "check"; "study" ]

let m_requests = Obs.Counter.make ~stable:false "serve.requests"
let m_errors = Obs.Counter.make ~stable:false "serve.errors"

let m_request_us =
  Obs.Histogram.make ~stable:false ~buckets:Obs.Histogram.time_us_buckets
    "serve.request_us"

type caches = {
  pcap : Tdat_pkt.Pcap.result Cache.t;
  mrt : Tdat_bgp.Mrt.result Cache.t;
}

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  inbuf : Buffer.t;  (* bytes received, not yet framed into lines *)
  out : Buffer.t;  (* response bytes not yet written *)
  mutable out_off : int;  (* prefix of [out] already written *)
  mutable closing : bool;  (* close once [out] is flushed *)
  mutable dead : bool;  (* peer gone; remove at end of iteration *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound : address;
  service : Service.t;
  caches : caches;
  outbox_m : Mutex.t;
  outbox : (int * string) Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  draining : bool Atomic.t;
  pending : int Atomic.t;
  started_s : float;
  (* Request-scoped telemetry.  Always on (request-rate, not
     packet-rate): [stats], [metrics] and `tdat top` must answer on a
     daemon started without --metrics.  The registry instruments above
     stay gated as before. *)
  req_total : int Atomic.t;
  err_total : int Atomic.t;
  trace_seq : int Atomic.t;  (* server-generated trace ids *)
  windows : (string * Window.t) list;  (* endpoint -> rolling window *)
  exemplars : Exemplar.t;
  mutable loop : unit Domain.t option;
}

let address t = t.bound

(* Wake the event loop out of [select].  Safe from any domain and from
   a signal handler; a full pipe already means a wake-up is pending. *)
let wake t =
  let b = Bytes.make 1 'w' in
  match Unix.write t.wake_w b 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _)
    ->
      ()

let stop t =
  Atomic.set t.draining true;
  wake t

(* --- job execution (pool workers) -------------------------------------- *)

(* A typed mid-job failure: carries the protocol error for the
   response instead of a 500. *)
exception Fail of Protocol.error

let error_of_exn = function
  | Fail e -> e
  | Unix.Unix_error (Unix.ENOENT, _, path) ->
      Protocol.err_not_found (path ^ ": no such file")
  | Unix.Unix_error (e, fn, arg) ->
      Protocol.err_internal (fn ^ "(" ^ arg ^ "): " ^ Unix.error_message e)
  | Sys_error msg -> Protocol.err_not_found msg
  | Tdat_pkt.Pcap.Decode_error msg -> Protocol.err_bad_request msg
  | Tdat_bgp.Bgp_error.Decode_error { context; message } ->
      Protocol.err_bad_request (context ^ ": " ^ message)
  | e -> Protocol.err_internal (Printexc.to_string e)

let ingest_follow (f : Protocol.follow) =
  Tdat_pkt.Ingest_io.follow_idle ~limit_s:f.limit_s ~idle_s:f.idle_s ()

(* Cached when the file is at rest; a tailed ([follow]) read bypasses
   the cache — the file is growing under us, so the snapshot is
   one-shot by definition. *)
let load_pcap t ~follow path =
  match follow with
  | None ->
      Cache.find_or_load t.caches.pcap path ~load:(fun p ->
          Tdat_pkt.Pcap.read_file p)
  | Some f ->
      let diags = ref [] in
      let segs, stats =
        Tdat_pkt.Pcap.fold_file
          ~on_diag:(fun d -> diags := d :: !diags)
          ~follow:(ingest_follow f) path ~init:[]
          (fun acc s -> s :: acc)
      in
      ( {
          Tdat_pkt.Pcap.trace = Tdat_pkt.Trace.of_segments (List.rev segs);
          diags = List.rev !diags;
          stats;
        },
        false )

let load_mrt t ~follow path =
  match follow with
  | None ->
      Cache.find_or_load t.caches.mrt path ~load:(fun p ->
          Tdat_bgp.Mrt.read_file p)
  | Some f ->
      let diags = ref [] in
      let entries, stats =
        Tdat_bgp.Mrt.fold_file
          ~on_diag:(fun d -> diags := d :: !diags)
          ~follow:(ingest_follow f) path ~init:[]
          (fun acc e -> e :: acc)
      in
      ( {
          Tdat_bgp.Mrt.entries = List.rev entries;
          diags = List.rev !diags;
          stats;
        },
        false )

let fail_on_pcap_errors (r : Tdat_pkt.Pcap.result) =
  match List.find_opt Tdat_pkt.Pcap.Diag.is_error r.diags with
  | Some d -> raise (Fail (Protocol.err_bad_request d.Tdat_pkt.Pcap.Diag.message))
  | None -> ()

let num_int n = Json.Num (float_of_int n)

let pcap_salvage (s : Tdat_pkt.Pcap.stats) =
  Json.Obj
    [
      ("records", num_int s.records);
      ("decoded", num_int s.decoded);
      ("skipped", num_int s.skipped);
      ("clipped", num_int s.clipped);
    ]

let series_config ~sender_side =
  if sender_side then
    { Tdat.Series_gen.default_config with sniffer_location = `Near_sender }
  else Tdat.Series_gen.default_config

(* Per-request stage instrumentation: every job runs its decode /
   analyze / render phases through [stage], which both emits a span
   (joining the request's trace via the worker's trace context) and
   accumulates the wall-clock breakdown echoed by ["timings": true]
   and kept by the exemplar buffer.  The polymorphic field lets one
   stager thread through differently-typed stages. *)
type stager = { stage : 'a. string -> (unit -> 'a) -> 'a }

let execute_analyze t st ~path ~series ~sender_side ~follow =
  let r, cache_hit =
    st.stage "serve.decode" (fun () ->
        let r, hit = load_pcap t ~follow path in
        fail_on_pcap_errors r;
        (r, hit))
  in
  let results =
    st.stage "serve.analyze" (fun () ->
        Tdat.Analyzer.analyze_all ~config:(series_config ~sender_side) ~jobs:1
          r.Tdat_pkt.Pcap.trace)
  in
  let output = st.stage "serve.render" (fun () -> Render.analysis ~series results) in
  Json.Obj
    [
      ("output", Json.Str output);
      ("connections", num_int (List.length results));
      ("cache_hit", Json.Bool cache_hit);
      ("salvage", pcap_salvage r.Tdat_pkt.Pcap.stats);
    ]

let execute_check t st ~path =
  let r, cache_hit, ingest =
    st.stage "serve.decode" (fun () ->
        let r, hit = load_pcap t ~follow:None path in
        (r, hit, Tdat_audit.Ingest.of_result r))
  in
  let results =
    st.stage "serve.analyze" (fun () ->
        Tdat.Analyzer.analyze_all
          ~config:(series_config ~sender_side:false)
          ~audit:true ~jobs:1 r.Tdat_pkt.Pcap.trace)
  in
  let render =
    st.stage "serve.render" (fun () ->
        let conn_findings =
          List.fold_left
            (fun n (_, a) -> n + List.length a.Tdat.Analyzer.audit)
            0 results
        in
        let failed =
          Tdat_audit.Diag.errors ingest <> []
          || List.exists
               (fun (_, a) ->
                 Tdat_audit.Diag.errors a.Tdat.Analyzer.audit <> [])
               results
        in
        Json.Obj
          [
            ("ok", Json.Bool (not failed));
            ("capture_findings", num_int (List.length ingest));
            ("connection_findings", num_int conn_findings);
            ("connections", num_int (List.length results));
            ("cache_hit", Json.Bool cache_hit);
          ])
  in
  render

let execute_study t st ~paths ~gap_s ~min_prefixes ~slow_threshold_s ~follow =
  let config =
    {
      Tdat_study.Detect.quiet_gap = Tdat_timerange.Time_us.of_s gap_s;
      min_prefixes;
    }
  in
  let hits = ref 0 and misses = ref 0 in
  let loaded =
    st.stage "serve.decode" (fun () ->
        List.map
          (fun path ->
            let mr, hit = load_mrt t ~follow path in
            if hit then incr hits else incr misses;
            (path, mr))
          paths)
  in
  let report =
    st.stage "serve.analyze" (fun () ->
        let reports =
          List.map
            (fun (path, mr) ->
              let fr =
                Tdat_study.Archive.scan_entries ~config ~source:path
                  mr.Tdat_bgp.Mrt.entries
              in
              {
                fr with
                Tdat_study.Archive.diags = mr.Tdat_bgp.Mrt.diags;
                stats = mr.Tdat_bgp.Mrt.stats;
              })
            loaded
        in
        Tdat_study.Aggregate.of_reports ?slow_threshold_s reports)
  in
  let report_json =
    st.stage "serve.render" (fun () ->
        match Json.parse (Tdat_study.Report.to_json report) with
        | Ok j -> j
        | Error msg ->
            raise (Fail (Protocol.err_internal ("report json: " ^ msg))))
  in
  Json.Obj
    [
      ("report", report_json);
      ("cache_hits", num_int !hits);
      ("cache_misses", num_int !misses);
    ]

let execute t st (req : Protocol.request) =
  match req with
  | Protocol.Sleep { ms } ->
      st.stage "serve.sleep" (fun () -> Unix.sleepf (ms /. 1000.));
      Json.Obj [ ("slept_ms", Json.Num ms) ]
  | Protocol.Analyze { path; series; sender_side; follow } ->
      execute_analyze t st ~path ~series ~sender_side ~follow
  | Protocol.Check { path } -> execute_check t st ~path
  | Protocol.Study { paths; gap_s; min_prefixes; slow_threshold_s; follow } ->
      execute_study t st ~paths ~gap_s ~min_prefixes ~slow_threshold_s ~follow
  | Protocol.Ping | Protocol.Stats | Protocol.Metrics _ | Protocol.Shutdown ->
      (* Control verbs never reach the queue ([Protocol.is_job]). *)
      raise (Fail (Protocol.err_internal "control verb submitted as job"))

let push_outbox t conn_id line =
  Mutex.lock t.outbox_m;
  Queue.push (conn_id, line) t.outbox;
  Mutex.unlock t.outbox_m

(* "serve.decode" -> "decode_us": the stage's timings-object key. *)
let stage_key name =
  let short =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  short ^ "_us"

let timings_json ~queue_wait_us ~total_us stages =
  Json.Obj
    (("queue_wait_us", Json.Num queue_wait_us)
     :: List.map (fun (n, us) -> (stage_key n, Json.Num us)) stages
    @ [ ("total_us", Json.Num total_us) ])

let with_timings result timings =
  match result with
  | Json.Obj fields -> Json.Obj (fields @ [ ("timings", timings) ])
  | other -> Json.Obj [ ("value", other); ("timings", timings) ]

(* Runs on a pool worker, inside the request's trace context (the
   service sets it from [submit ~trace] before the job body runs).
   The response must reach the outbox BEFORE [pending] is decremented:
   the drain check exits only at
   [pending = 0 && outbox empty && output buffers flushed], so this
   order guarantees no accepted job's response is dropped. *)
let run_job t conn_id id ~trace ~timings ~raw ~enqueued_us req =
  Atomic.incr t.req_total;
  Obs.Counter.incr m_requests;
  let started_us = Tdat_obs.Clock.now_us () in
  let stages = ref [] in
  let st =
    {
      stage =
        (fun name f ->
          let t0 = Tdat_obs.Clock.now_us () in
          (* Forwards the literal serve.* stage names from execute_*. *)
          let r = (Tdat_obs.Span.with_ ~name f [@tdat.lint.allow "L011"]) in
          stages := (name, Tdat_obs.Clock.now_us () -. t0) :: !stages;
          r);
    }
  in
  let outcome =
    match
      Tdat_obs.Span.with_ ~name:"serve.request" (fun () -> execute t st req)
    with
    | result -> Ok result
    | exception e -> Error (error_of_exn e)
  in
  let finished_us = Tdat_obs.Clock.now_us () in
  let queue_wait_us = started_us -. enqueued_us in
  let total_us = finished_us -. enqueued_us in
  let endpoint = Protocol.cmd_name req in
  let stage_list = List.rev !stages in
  (match List.assoc_opt endpoint t.windows with
  | Some w -> Window.observe w total_us
  | None -> ());
  Exemplar.note t.exemplars
    {
      Exemplar.endpoint;
      trace;
      duration_us = total_us;
      at_s = finished_us /. 1e6;
      stages = ("queue_wait", queue_wait_us) :: stage_list;
      request = raw;
    };
  Obs.Histogram.observe m_request_us (finished_us -. started_us);
  let line =
    match outcome with
    | Ok result ->
        let result =
          if timings then
            with_timings result
              (timings_json ~queue_wait_us ~total_us stage_list)
          else result
        in
        Protocol.response_ok ~id ~cmd:endpoint ~trace result
    | Error err ->
        Atomic.incr t.err_total;
        Obs.Counter.incr m_errors;
        Protocol.response_error ~id err
  in
  push_outbox t conn_id line;
  Atomic.decr t.pending;
  wake t

(* --- the event loop ----------------------------------------------------- *)

let enqueue_conn conn line =
  Buffer.add_string conn.out line;
  Buffer.add_char conn.out '\n'

let cache_stats_json (s : Cache.stats) =
  Json.Obj
    [
      ("entries", num_int s.entries);
      ("hits", num_int s.hits);
      ("misses", num_int s.misses);
      ("evictions", num_int s.evictions);
    ]

(* The scratch arena's spill counter (lib/parallel) is registered in
   the default registry; surfacing it here makes allocator saturation
   visible from a running daemon without a restart. *)
let scratch_fallbacks () =
  match Obs.find_counter Obs.default "scratch.fallbacks" with
  | Some c -> Obs.Counter.value c
  | None -> 0

let window_json w =
  Json.Obj
    [
      ("window_s", Json.Num (Window.window_s w));
      ("count", num_int (Window.count w));
      ("rps", Json.Num (Window.rate w));
      ("p50_us", Json.Num (Window.percentile w 0.5));
      ("p95_us", Json.Num (Window.percentile w 0.95));
      ("p99_us", Json.Num (Window.percentile w 0.99));
    ]

let exemplar_json (e : Exemplar.entry) =
  Json.Obj
    [
      ("endpoint", Json.Str e.Exemplar.endpoint);
      ("trace", Json.Str e.Exemplar.trace);
      ("duration_us", Json.Num e.Exemplar.duration_us);
      ("at_s", Json.Num e.Exemplar.at_s);
      ( "stages",
        Json.Obj
          (List.map (fun (n, us) -> (n, Json.Num us)) e.Exemplar.stages) );
      ("request", Json.Str e.Exemplar.request);
    ]

let stats_json t conns =
  Json.Obj
    [
      ("uptime_s", Json.Num (Unix.gettimeofday () -. t.started_s));
      ("jobs", num_int (Service.jobs t.service));
      ("queue_capacity", num_int (Service.capacity t.service));
      ("queue_depth", num_int (Service.depth t.service));
      ("in_flight", num_int (Service.in_flight t.service));
      ("pending", num_int (Atomic.get t.pending));
      ("connections", num_int (Hashtbl.length conns));
      ("draining", Json.Bool (Atomic.get t.draining));
      ("requests", num_int (Atomic.get t.req_total));
      ("errors", num_int (Atomic.get t.err_total));
      ("scratch_fallbacks", num_int (scratch_fallbacks ()));
      ( "cache",
        Json.Obj
          [
            ("pcap", cache_stats_json (Cache.stats t.caches.pcap));
            ("mrt", cache_stats_json (Cache.stats t.caches.mrt));
          ] );
      ( "windows",
        Json.Obj (List.map (fun (ep, w) -> (ep, window_json w)) t.windows) );
      ( "exemplars",
        Json.Arr (List.map exemplar_json (Exemplar.worst t.exemplars)) );
    ]

(* The `metrics` verb: Prometheus exposition text.  The registry part
   is deterministic ([Prometheus.of_registry]); with [stable_only] it
   is exactly the cross-[--jobs] byte-identical series and nothing
   else.  Otherwise the serve layer appends its own volatile series:
   rolling-window percentiles per endpoint, live queue depth, and the
   scratch spill counter. *)
let metrics_text t ~stable_only =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Prometheus.of_registry ~stable_only Obs.default);
  if not stable_only then begin
    let windowed name value =
      Prometheus.add_header buf ~name ~kind:"gauge";
      List.iter
        (fun (ep, w) ->
          Prometheus.add_gauge buf ~name ~labels:[ ("endpoint", ep) ]
            (value w))
        t.windows
    in
    windowed "serve.window.count" (fun w -> float_of_int (Window.count w));
    windowed "serve.window.rps" Window.rate;
    windowed "serve.window.p50_us" (fun w -> Window.percentile w 0.5);
    windowed "serve.window.p95_us" (fun w -> Window.percentile w 0.95);
    windowed "serve.window.p99_us" (fun w -> Window.percentile w 0.99);
    Prometheus.add_header buf ~name:"serve.queue_depth" ~kind:"gauge";
    Prometheus.add_gauge buf ~name:"serve.queue_depth"
      (float_of_int (Service.depth t.service));
    Prometheus.add_header buf ~name:"serve.scratch_fallbacks" ~kind:"gauge";
    Prometheus.add_gauge buf ~name:"serve.scratch_fallbacks"
      (float_of_int (scratch_fallbacks ()));
    Prometheus.add_header buf ~name:"serve.exemplars" ~kind:"gauge";
    Prometheus.add_gauge buf ~name:"serve.exemplars"
      (float_of_int (Exemplar.count t.exemplars))
  end;
  Buffer.contents buf

let metrics_json t ~stable_only =
  Json.Obj
    [
      ("content_type", Json.Str "text/plain; version=0.0.4");
      ("stable_only", Json.Bool stable_only);
      ("body", Json.Str (metrics_text t ~stable_only));
    ]

let gen_trace t =
  Printf.sprintf "req-%d" (1 + Atomic.fetch_and_add t.trace_seq 1)

let handle_line t conns conn line =
  let { Protocol.id; trace; timings; request } = Protocol.parse_line line in
  match request with
  | Error e -> enqueue_conn conn (Protocol.response_error ~id e)
  | Ok Protocol.Ping ->
      enqueue_conn conn
        (Protocol.response_ok ~id ~cmd:"ping"
           (Json.Obj [ ("pong", Json.Bool true) ]))
  | Ok Protocol.Stats ->
      enqueue_conn conn
        (Protocol.response_ok ~id ~cmd:"stats" (stats_json t conns))
  | Ok (Protocol.Metrics { stable_only }) ->
      enqueue_conn conn
        (Protocol.response_ok ~id ~cmd:"metrics"
           (metrics_json t ~stable_only))
  | Ok Protocol.Shutdown ->
      enqueue_conn conn
        (Protocol.response_ok ~id ~cmd:"shutdown"
           (Json.Obj [ ("draining", Json.Bool true) ]));
      Atomic.set t.draining true
  | Ok req ->
      if Atomic.get t.draining then
        enqueue_conn conn (Protocol.response_error ~id Protocol.err_draining)
      else begin
        let trace =
          match trace with Some tr -> tr | None -> gen_trace t
        in
        let enqueued_us = Tdat_obs.Clock.now_us () in
        Atomic.incr t.pending;
        match
          Service.submit ~trace t.service (fun () ->
              run_job t conn.conn_id id ~trace ~timings ~raw:line ~enqueued_us
                req)
        with
        | Service.Accepted -> ()
        | Service.Rejected_full ->
            Atomic.decr t.pending;
            enqueue_conn conn (Protocol.response_error ~id Protocol.err_busy)
        | Service.Rejected_draining ->
            Atomic.decr t.pending;
            enqueue_conn conn
              (Protocol.response_error ~id Protocol.err_draining)
      end

(* Frame [conn.inbuf] into complete lines and handle each.  The
   leftover partial line stays buffered; a partial line longer than
   [max_line_bytes] is answered with a 400 and the connection is
   closed (a stuck client must not grow the buffer forever). *)
let conn_lines t conns conn =
  let data = Buffer.contents conn.inbuf in
  let len = String.length data in
  let start = ref 0 in
  (try
     while !start < len do
       let nl = String.index_from data !start '\n' in
       let stop =
         if nl > !start && data.[nl - 1] = '\r' then nl - 1 else nl
       in
       if stop > !start then
         handle_line t conns conn (String.sub data !start (stop - !start));
       start := nl + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear conn.inbuf;
    Buffer.add_substring conn.inbuf data !start (len - !start)
  end;
  if Buffer.length conn.inbuf > t.config.max_line_bytes then begin
    enqueue_conn conn
      (Protocol.response_error ~id:Json.Null
         (Protocol.err_bad_request "request line too long"));
    conn.closing <- true
  end

let handle_readable t conns conn chunk =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.dead <- true
  | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      conn_lines t conns conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      conn.dead <- true

let flush_conn conn =
  let total = Buffer.length conn.out in
  if total > conn.out_off then begin
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_off
        (total - conn.out_off)
    with
    | n ->
        conn.out_off <- conn.out_off + n;
        if conn.out_off >= Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        conn.dead <- true
  end

(* Route finished jobs' responses to their connections.  A response for
   a connection that hung up is dropped — the work still counted. *)
let drain_outbox t conns =
  Mutex.lock t.outbox_m;
  while not (Queue.is_empty t.outbox) do
    let conn_id, line = Queue.pop t.outbox in
    match Hashtbl.find_opt conns conn_id with
    | Some conn when not conn.dead -> enqueue_conn conn line
    | Some _ | None -> ()
  done;
  Mutex.unlock t.outbox_m

let accept_loop t conns next_id =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let conn_id = !next_id in
        incr next_id;
        Hashtbl.replace conns conn_id
          {
            fd;
            conn_id;
            inbuf = Buffer.create 256;
            out = Buffer.create 256;
            out_off = 0;
            closing = false;
            dead = false;
          }
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let close_quietly fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let reap conns =
  let victims =
    Hashtbl.fold
      (fun conn_id conn acc ->
        if
          conn.dead
          || (conn.closing && Buffer.length conn.out = conn.out_off)
        then (conn_id, conn) :: acc
        else acc)
      conns []
  in
  List.iter
    (fun (conn_id, conn) ->
      close_quietly conn.fd;
      Hashtbl.remove conns conn_id)
    victims

let event_loop t =
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_id = ref 1 in
  let chunk = Bytes.create 65536 in
  let wake_buf = Bytes.create 256 in
  let running = ref true in
  while !running do
    drain_outbox t conns;
    reap conns;
    let draining = Atomic.get t.draining in
    if
      draining
      && Atomic.get t.pending = 0
      && Queue.is_empty t.outbox
      && Hashtbl.fold
           (fun _ c acc -> acc && Buffer.length c.out = c.out_off)
           conns true
    then running := false
    else begin
      let readfds =
        Hashtbl.fold
          (fun _ c acc -> c.fd :: acc)
          conns
          (if draining then [ t.wake_r ] else [ t.wake_r; t.listen_fd ])
      in
      let writefds =
        Hashtbl.fold
          (fun _ c acc ->
            if Buffer.length c.out > c.out_off then c.fd :: acc else acc)
          conns []
      in
      match Unix.select readfds writefds [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.memq t.wake_r readable then begin
            match Unix.read t.wake_r wake_buf 0 (Bytes.length wake_buf) with
            | _ -> ()
            | exception Unix.Unix_error (_, _, _) -> ()
          end;
          if (not draining) && List.memq t.listen_fd readable then
            accept_loop t conns next_id;
          Hashtbl.iter
            (fun _ conn ->
              if (not conn.dead) && List.memq conn.fd readable then
                handle_readable t conns conn chunk)
            conns;
          Hashtbl.iter
            (fun _ conn ->
              if (not conn.dead) && List.memq conn.fd writable then
                flush_conn conn)
            conns
    end
  done;
  (* Drain complete: every accepted job answered and flushed.  The
     service drain (workers joined, their span buffers final) runs
     inside its own span, so a trace written after [wait] returns —
     the SIGTERM path — provably contains every in-flight request's
     spans followed by the drain itself. *)
  Tdat_obs.Span.with_ ~name:"serve.drain" (fun () -> Service.drain t.service);
  Hashtbl.iter (fun _ conn -> close_quietly conn.fd) conns;
  close_quietly t.listen_fd;
  close_quietly t.wake_r;
  close_quietly t.wake_w;
  (match t.bound with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | `Tcp _ -> ());
  Log.info (fun m -> m "serve: drained and stopped")

(* --- lifecycle ---------------------------------------------------------- *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
          addrs.(0)
      | _ | (exception Not_found) ->
          invalid_arg ("serve: cannot resolve host " ^ host))

let bind_listener = function
  | `Unix path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         if Sys.file_exists path then Unix.unlink path;
         Unix.bind fd (Unix.ADDR_UNIX path)
       with e ->
         close_quietly fd;
         raise e);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, `Unix path)
  | `Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (resolve_host host, port))
       with e ->
         close_quietly fd;
         raise e);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      (fd, `Tcp (host, bound_port))

let start config =
  if config.jobs < 1 then invalid_arg "Server.start: jobs must be >= 1";
  let listen_fd, bound = bind_listener config.address in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      config;
      listen_fd;
      bound;
      service =
        Service.create ~jobs:config.jobs ~capacity:config.queue_capacity ();
      caches =
        {
          pcap = Cache.create ~capacity:config.cache_capacity;
          mrt = Cache.create ~capacity:config.cache_capacity;
        };
      outbox_m = Mutex.create ();
      outbox = Queue.create ();
      wake_r;
      wake_w;
      draining = Atomic.make false;
      pending = Atomic.make 0;
      started_s = Unix.gettimeofday ();
      req_total = Atomic.make 0;
      err_total = Atomic.make 0;
      trace_seq = Atomic.make 0;
      windows =
        List.map
          (fun ep ->
            ( ep,
              Window.create ~slots:config.window_slots
                ~slot_s:config.window_slot_s () ))
          job_endpoints;
      exemplars = Exemplar.create ~capacity:config.exemplar_capacity;
      loop = None;
    }
  in
  t.loop <- Some (Domain.spawn (fun () -> event_loop t));
  (match bound with
  | `Unix path -> Log.info (fun m -> m "serve: listening on %s" path)
  | `Tcp (host, port) ->
      Log.info (fun m -> m "serve: listening on %s:%d" host port));
  t

let wait t =
  match t.loop with
  | Some d ->
      t.loop <- None;
      Domain.join d
  | None -> ()

let run config =
  let t = start config in
  let drain_signal = Sys.Signal_handle (fun _ -> stop t) in
  let prev_term = Sys.signal Sys.sigterm drain_signal in
  let prev_int = Sys.signal Sys.sigint drain_signal in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () -> wait t)
