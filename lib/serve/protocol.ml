(* The serve wire protocol: one JSON object per line, both directions
   (DESIGN.md, "Service architecture").

   Requests name a verb in ["cmd"] and carry an optional ["id"] the
   response echoes verbatim, so clients may pipeline.  Responses are
   [{"id":.., "ok":true, "cmd":.., "result":{..}}] or
   [{"id":.., "ok":false, "error":{"code":.., "status":.., "message":..}}]
   with HTTP-flavoured status numbers: 400 malformed, 404 unreadable
   path, 429 admission queue full, 503 draining, 500 internal. *)

type error = { code : string; status : int; message : string }

let err_bad_json message = { code = "bad_json"; status = 400; message }
let err_bad_request message = { code = "bad_request"; status = 400; message }
let err_not_found message = { code = "not_found"; status = 404; message }

let err_busy =
  {
    code = "busy";
    status = 429;
    message = "admission queue full; retry later";
  }

let err_draining =
  { code = "draining"; status = 503; message = "server is draining" }

let err_internal message = { code = "internal"; status = 500; message }

type follow = { idle_s : float; limit_s : float }

type request =
  | Ping
  | Stats
  | Metrics of { stable_only : bool }
  | Shutdown
  | Sleep of { ms : float }
  | Analyze of {
      path : string;
      series : bool;
      sender_side : bool;
      follow : follow option;
    }
  | Check of { path : string }
  | Study of {
      paths : string list;
      gap_s : float;
      min_prefixes : int;
      slow_threshold_s : float option;
      follow : follow option;
    }

let cmd_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics _ -> "metrics"
  | Shutdown -> "shutdown"
  | Sleep _ -> "sleep"
  | Analyze _ -> "analyze"
  | Check _ -> "check"
  | Study _ -> "study"

(* A request admitted to the worker queue; the rest answer inline on
   the event loop. *)
let is_job = function
  | Sleep _ | Analyze _ | Check _ | Study _ -> true
  | Ping | Stats | Metrics _ | Shutdown -> false

type parsed = {
  id : Json.t;
  trace : string option;  (* client-supplied trace id, job verbs only *)
  timings : bool;  (* echo the stage breakdown in the response *)
  request : (request, error) result;
}

(* --- request parsing --------------------------------------------------- *)

let field_string json name =
  match Json.member name json with
  | Some v -> (
      match Json.to_string_opt v with
      | Some s -> Ok (Some s)
      | None -> Error (err_bad_request (name ^ " must be a string")))
  | None -> Ok None

let field_float json name =
  match Json.member name json with
  | Some Json.Null | None -> Ok None
  | Some v -> (
      match Json.to_float_opt v with
      | Some f -> Ok (Some f)
      | None -> Error (err_bad_request (name ^ " must be a number")))

let field_int json name =
  match Json.member name json with
  | Some Json.Null | None -> Ok None
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Ok (Some i)
      | None -> Error (err_bad_request (name ^ " must be an integer")))

let field_bool json name =
  match Json.member name json with
  | Some v -> (
      match Json.to_bool_opt v with
      | Some b -> Ok (Some b)
      | None -> Error (err_bad_request (name ^ " must be a boolean")))
  | None -> Ok None

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let required name = function
  | Some v -> Ok v
  | None -> Error (err_bad_request ("missing required field " ^ name))

(* Tailing options shared by analyze/study: [follow_idle_s] opts in,
   [follow_limit_s] bounds the whole wait (default 60 s — a daemon
   must not hold a worker forever on a file that stopped growing). *)
let parse_follow json =
  let* idle = field_float json "follow_idle_s" in
  match idle with
  | None -> Ok None
  | Some idle_s when idle_s > 0. ->
      let* limit = field_float json "follow_limit_s" in
      let limit_s = Option.value limit ~default:60. in
      if limit_s > 0. then Ok (Some { idle_s; limit_s })
      else Error (err_bad_request "follow_limit_s must be positive")
  | Some _ -> Error (err_bad_request "follow_idle_s must be positive")

let parse_request json =
  let* cmd = field_string json "cmd" in
  let* cmd = required "cmd" cmd in
  match cmd with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "metrics" ->
      let* stable_only = field_bool json "stable_only" in
      Ok (Metrics { stable_only = Option.value stable_only ~default:false })
  | "shutdown" -> Ok Shutdown
  | "sleep" ->
      let* ms = field_float json "ms" in
      let ms = Option.value ms ~default:0. in
      if ms < 0. || ms > 60_000. then
        Error (err_bad_request "ms must be in [0, 60000]")
      else Ok (Sleep { ms })
  | "analyze" ->
      let* path = field_string json "path" in
      let* path = required "path" path in
      let* series = field_bool json "series" in
      let* sender_side = field_bool json "sender_side" in
      let* follow = parse_follow json in
      Ok
        (Analyze
           {
             path;
             series = Option.value series ~default:false;
             sender_side = Option.value sender_side ~default:false;
             follow;
           })
  | "check" ->
      let* path = field_string json "path" in
      let* path = required "path" path in
      Ok (Check { path })
  | "study" ->
      let* paths =
        match Json.member "paths" json with
        | None -> Error (err_bad_request "missing required field paths")
        | Some v -> (
            match Json.to_list_opt v with
            | None -> Error (err_bad_request "paths must be an array")
            | Some xs ->
                let rec strings acc = function
                  | [] -> Ok (List.rev acc)
                  | x :: rest -> (
                      match Json.to_string_opt x with
                      | Some s -> strings (s :: acc) rest
                      | None ->
                          Error
                            (err_bad_request "paths must be an array of strings"))
                in
                strings [] xs)
      in
      if paths = [] then Error (err_bad_request "paths must be non-empty")
      else
        let* gap_s = field_float json "gap_s" in
        let* min_prefixes = field_int json "min_prefixes" in
        let* slow_threshold_s = field_float json "slow_threshold_s" in
        let* follow = parse_follow json in
        if follow <> None && List.length paths > 1 then
          Error (err_bad_request "follow_idle_s requires a single path")
        else
          Ok
            (Study
               {
                 paths;
                 gap_s = Option.value gap_s ~default:200.;
                 min_prefixes = Option.value min_prefixes ~default:32;
                 slow_threshold_s;
                 follow;
               })
  | other -> Error (err_bad_request ("unknown cmd " ^ other))

(* The tracing envelope shared by every verb: an optional
   client-supplied ["trace"] id (bounded so it stays printable in
   dashboards) and a ["timings"] opt-in echoing the stage breakdown in
   the response. *)
let parse_envelope json =
  let* trace = field_string json "trace" in
  let* trace =
    match trace with
    | None -> Ok None
    | Some "" -> Error (err_bad_request "trace must be non-empty")
    | Some t when String.length t > 128 ->
        Error (err_bad_request "trace must be at most 128 bytes")
    | Some _ as t -> Ok t
  in
  let* timings = field_bool json "timings" in
  Ok (trace, Option.value timings ~default:false)

let parse_line line =
  match Json.parse line with
  | Error msg ->
      { id = Json.Null; trace = None; timings = false;
        request = Error (err_bad_json msg) }
  | Ok json -> (
      let id = Option.value (Json.member "id" json) ~default:Json.Null in
      match json with
      | Json.Obj _ -> (
          match parse_envelope json with
          | Error e -> { id; trace = None; timings = false; request = Error e }
          | Ok (trace, timings) ->
              { id; trace; timings; request = parse_request json })
      | _ ->
          { id; trace = None; timings = false;
            request = Error (err_bad_request "request must be a JSON object") })

(* --- response rendering ------------------------------------------------ *)

let response_ok ~id ~cmd ?trace result =
  let trace_field =
    match trace with Some tr -> [ ("trace", Json.Str tr) ] | None -> []
  in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool true); ("cmd", Json.Str cmd) ]
       @ trace_field
       @ [ ("result", result) ]))

let response_error ~id err =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str err.code);
               ("status", Json.Num (float_of_int err.status));
               ("message", Json.Str err.message);
             ] );
       ])
