(** LRU cache of decoded inputs, keyed by [(path, mtime, size)].

    A hit requires the file's current [stat] to match the cached
    entry's — a rewritten or appended file re-decodes, so tailed and
    regenerated captures are never served stale.  Lookups are safe
    from any domain; the [load] callback runs outside the lock (two
    concurrent misses may both load; the later store wins). *)

type 'v t

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;  (** Entries displaced by capacity pressure (not
                        mtime/size invalidation, which counts as a
                        miss that overwrites in place). *)
}

val create : capacity:int -> 'v t
(** @raise Invalid_argument if [capacity < 1]. *)

val find_or_load : 'v t -> string -> load:(string -> 'v) -> 'v * bool
(** [find_or_load t path ~load] returns the cached (or freshly loaded
    and inserted) value and whether it was a hit.  Raises whatever
    [Unix.stat path] or [load path] raises — an unreadable path is the
    caller's typed error, never a cache entry. *)

val stats : 'v t -> stats
