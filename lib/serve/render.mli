val dashboard : ?address:string -> Json.t -> string
(** One frame of the [tdat top] dashboard, rendered from a [stats]
    result object: request/error/queue/connection totals, cache hit
    ratios, the per-endpoint rolling-window percentile table, and the
    worst-request exemplars.  Missing members render as zeros — the
    frame must survive version skew between client and daemon. *)

val analysis :
  ?series:bool -> (Tdat_pkt.Flow.t * Tdat.Analyzer.t) list -> string
(** Exactly what [tdat analyze] prints to stdout for these results
    (one report per connection, a blank line after each, the
    ["-- event series --"] timeline when [series]).  [tdat serve]
    returns this same string, so daemon and batch output are
    byte-identical by construction. *)
