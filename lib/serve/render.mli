val analysis :
  ?series:bool -> (Tdat_pkt.Flow.t * Tdat.Analyzer.t) list -> string
(** Exactly what [tdat analyze] prints to stdout for these results
    (one report per connection, a blank line after each, the
    ["-- event series --"] timeline when [series]).  [tdat serve]
    returns this same string, so daemon and batch output are
    byte-identical by construction. *)
