(** The serve wire protocol: one JSON object per line in both
    directions.  See DESIGN.md, "Service architecture". *)

type error = { code : string; status : int; message : string }

val err_bad_json : string -> error
val err_bad_request : string -> error
val err_not_found : string -> error

(** 429: admission queue full. *)
val err_busy : error

(** 503: server shutting down. *)
val err_draining : error
val err_internal : string -> error

type follow = { idle_s : float; limit_s : float }
(** Tailing policy for a still-growing input file: keep reading while
    the file grew within the last [idle_s] seconds, hard-capped at
    [limit_s] total. *)

type request =
  | Ping
  | Stats
  | Metrics of { stable_only : bool }
      (** Prometheus text exposition; [stable_only] restricts to the
          deterministic (cross-[--jobs] byte-identical) series. *)
  | Shutdown
  | Sleep of { ms : float }  (** Load-test / drain-test verb. *)
  | Analyze of {
      path : string;
      series : bool;
      sender_side : bool;
      follow : follow option;
    }
  | Check of { path : string }
  | Study of {
      paths : string list;
      gap_s : float;
      min_prefixes : int;
      slow_threshold_s : float option;
      follow : follow option;
    }

val cmd_name : request -> string

val is_job : request -> bool
(** [true] for verbs that go through the admission queue; control
    verbs (ping/stats/shutdown) answer inline on the event loop. *)

type parsed = {
  id : Json.t;
  trace : string option;
      (** Client-supplied trace id (["trace"]), validated non-empty and
          at most 128 bytes.  The server generates one when absent. *)
  timings : bool;
      (** ["timings": true] opts the response into a per-stage timing
          breakdown (job verbs only). *)
  request : (request, error) result;
}

val parse_line : string -> parsed
(** Never raises: malformed JSON or a malformed request map to a typed
    [error] (the connection survives).  [id] is echoed when the line
    carried one, [Null] otherwise. *)

val response_ok : id:Json.t -> cmd:string -> ?trace:string -> Json.t -> string
(** [trace] (job verbs) echoes the request's trace id — client-supplied
    or server-generated — as a top-level ["trace"] member. *)

val response_error : id:Json.t -> error -> string
