(** A blocking client for the serve protocol (tests, the load bench,
    interactive poking).  Not domain-safe: one client per domain. *)

type t

val connect : [ `Unix of string | `Tcp of string * int ] -> t
(** @raise Unix.Unix_error when the server cannot be reached. *)

val close : t -> unit

val rpc : t -> Json.t -> (Json.t, string) result
(** One request, one response.  [Error] means transport or framing
    broke — protocol-level failures come back as [Ok] responses with
    [ok:false]. *)

val send_line : t -> string -> unit
(** Raw line send, for pipelining and malformed-input tests. *)

val recv_line : t -> string option
(** Next response line; [None] on orderly EOF. *)
