(** A minimal, dependency-free JSON codec for the serve protocol.

    Strict parser (complete escapes including surrogate pairs, no
    trailing garbage) and deterministic emitter (member order
    preserved, fixed number formatting).  Numbers are floats — protocol
    numbers are ids, counts and seconds, all far inside 2^53. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** [Error msg] carries the offset of the first problem. *)

val to_string : t -> string
(** Single-line (no newlines anywhere), suitable for the
    line-delimited protocol. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** [Some] only for numbers with zero fractional part. *)

val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
