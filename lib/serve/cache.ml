(* The decoded-input LRU cache (DESIGN.md, "Service architecture").

   Decoding dominates a small analysis request, and a daemon sees the
   same captures again and again (monitoring replays, dashboards,
   repeated studies over a growing archive set).  Entries are keyed by
   path and validated against [(mtime, size)] at every lookup, so a
   rewritten or appended file is never served stale — it simply misses
   and re-decodes, which also makes tailed files safe: their stat
   changes with every append.

   Concurrency: lookups come from worker-pool domains.  The table is
   mutex-guarded, but the [load] callback runs outside the lock (it is
   the expensive part); two concurrent misses on the same path may both
   decode, and the later store wins — wasted work, never wrong results,
   and the steady state is hits. *)

type 'v entry = {
  mtime : float;
  size : int;
  value : 'v;
  mutable stamp : int;  (* LRU clock; larger = more recently used *)
}

type 'v t = {
  m : Mutex.t;
  tbl : (string, 'v entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { entries : int; hits : int; misses : int; evictions : int }

module Obs = Tdat_obs.Metrics

let m_hits = Obs.Counter.make ~stable:false "serve.cache.hits"
let m_misses = Obs.Counter.make ~stable:false "serve.cache.misses"
let m_evictions = Obs.Counter.make ~stable:false "serve.cache.evictions"

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 16;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let stats t =
  Mutex.lock t.m;
  let s =
    {
      entries = Hashtbl.length t.tbl;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
    }
  in
  Mutex.unlock t.m;
  s

(* Evict the least-recently-used entry.  O(entries) scan — capacities
   are tens of decoded captures, far below where a heap would pay. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr m_evictions
  | None -> ()

let find_or_load t path ~load =
  let st = Unix.stat path in
  let mtime = st.Unix.st_mtime and size = st.Unix.st_size in
  Mutex.lock t.m;
  t.tick <- t.tick + 1;
  let tick = t.tick in
  let cached =
    match Hashtbl.find_opt t.tbl path with
    | Some e when Float.equal e.mtime mtime && e.size = size ->
        e.stamp <- tick;
        t.hits <- t.hits + 1;
        Some e.value
    | Some _ | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.m;
  match cached with
  | Some v ->
      Obs.Counter.incr m_hits;
      (v, true)
  | None ->
      Obs.Counter.incr m_misses;
      let v = load path in
      Mutex.lock t.m;
      if
        Hashtbl.length t.tbl >= t.capacity
        && not (Hashtbl.mem t.tbl path)
      then evict_lru t;
      Hashtbl.replace t.tbl path { mtime; size; value = v; stamp = tick };
      Mutex.unlock t.m;
      (v, false)
