(* A small blocking client for the serve protocol — what the tests and
   the load bench speak; also handy from utop against a live daemon.
   One request at a time per connection is the simple mode; the
   line-level [send_line]/[recv_line] pair supports pipelining. *)

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* received bytes not yet returned as lines *)
  chunk : Bytes.t;
}

let connect (address : [ `Unix of string | `Tcp of string * int ]) =
  match address with
  | `Unix path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
         raise e);
      { fd; inbuf = Buffer.create 256; chunk = Bytes.create 65536 }
  | `Tcp (host, port) ->
      let addr =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
                addrs.(0)
            | _ | (exception Not_found) ->
                invalid_arg ("Client.connect: cannot resolve " ^ host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
         raise e);
      { fd; inbuf = Buffer.create 256; chunk = Bytes.create 65536 }

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let send_line t line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let off = ref 0 in
  while !off < len do
    let n =
      Tdat_pkt.Ingest_io.retry_eintr (fun () ->
          Unix.write_substring t.fd payload !off (len - !off))
    in
    if n = 0 then raise End_of_file;
    off := !off + n
  done

(* Pop one complete line out of the buffer, reading more as needed.
   [None] on orderly EOF with an empty buffer. *)
let recv_line t =
  let rec take () =
    let data = Buffer.contents t.inbuf in
    match String.index_opt data '\n' with
    | Some nl ->
        let stop = if nl > 0 && data.[nl - 1] = '\r' then nl - 1 else nl in
        let line = String.sub data 0 stop in
        Buffer.clear t.inbuf;
        Buffer.add_substring t.inbuf data (nl + 1)
          (String.length data - nl - 1);
        Some line
    | None -> (
        match
          Tdat_pkt.Ingest_io.retry_eintr (fun () ->
              Unix.read t.fd t.chunk 0 (Bytes.length t.chunk))
        with
        | 0 -> if String.length data = 0 then None else Some data
        | n ->
            Buffer.add_subbytes t.inbuf t.chunk 0 n;
            take ())
  in
  take ()

let rpc t request =
  send_line t (Json.to_string request);
  match recv_line t with
  | None -> Error "connection closed before response"
  | Some line -> (
      match Json.parse line with
      | Ok json -> Ok json
      | Error msg -> Error ("malformed response: " ^ msg))
