(* A minimal JSON codec for the serve protocol (DESIGN.md, "Service
   architecture").

   The repository ships no external JSON dependency, and the protocol
   needs both directions: parsing client request lines and emitting
   response lines.  This is a complete, strict JSON value codec —
   objects, arrays, strings with escapes (including \uXXXX, encoded
   back to UTF-8), numbers, booleans, null — with two deliberate
   simplifications: numbers are floats (protocol numbers are ids,
   counts and seconds; 2^53 integer fidelity is far beyond any of
   them), and object member order is preserved as parsed/built, so
   emitted responses are deterministic. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- accessors --------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num n -> Some n | _ -> None

let to_int_opt = function
  | Num n when Float.is_integer n -> Some (int_of_float n)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function Arr xs -> Some xs | _ -> None

(* --- emitting ---------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Non-integers print in the canonical shortest round-trip form
   (Tdat_obs.Canon), so two emissions of the same value are always the
   same bytes and never longer than the value warrants. *)
let add_num buf n =
  if Float.is_integer n && Float.abs n < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" n)
  else if Float.is_nan n then Buffer.add_string buf "null"
  else if n = Float.infinity then Buffer.add_string buf "1e999"
  else if n = Float.neg_infinity then Buffer.add_string buf "-1e999"
  else Buffer.add_string buf (Tdat_obs.Canon.to_string n)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num n -> add_num buf n
  | Str s -> add_escaped buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let fail_at p msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some got when Char.equal got c -> advance p
  | Some got -> fail_at p (Printf.sprintf "expected %c, got %c" c got)
  | None -> fail_at p (Printf.sprintf "expected %c, got end of input" c)

let literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.s
    && String.equal (String.sub p.s p.pos n) word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else fail_at p (Printf.sprintf "invalid literal (expected %s)" word)

let hex_digit p c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail_at p "bad \\u escape"

let parse_u16 p =
  if p.pos + 4 > String.length p.s then fail_at p "truncated \\u escape";
  let v =
    (hex_digit p p.s.[p.pos] lsl 12)
    lor (hex_digit p p.s.[p.pos + 1] lsl 8)
    lor (hex_digit p p.s.[p.pos + 2] lsl 4)
    lor hex_digit p p.s.[p.pos + 3]
  in
  p.pos <- p.pos + 4;
  v

(* Encode a Unicode scalar value as UTF-8 (surrogate pairs are combined
   by the caller). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail_at p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | None -> fail_at p "unterminated escape"
        | Some c ->
            advance p;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let hi = parse_u16 p in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* high surrogate: require the paired low surrogate *)
                  expect p '\\';
                  expect p 'u';
                  let lo = parse_u16 p in
                  if lo < 0xDC00 || lo > 0xDFFF then
                    fail_at p "unpaired surrogate";
                  add_utf8 buf
                    (0x10000
                    + ((hi - 0xD800) lsl 10)
                    + (lo - 0xDC00))
                end
                else if hi >= 0xDC00 && hi <= 0xDFFF then
                  fail_at p "unpaired surrogate"
                else add_utf8 buf hi
            | _ -> fail_at p "bad escape");
            go ())
    | Some c when Char.code c < 0x20 -> fail_at p "control byte in string"
    | Some c ->
        advance p;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let consume cond =
    let rec go () =
      match peek p with
      | Some c when cond c ->
          advance p;
          go ()
      | _ -> ()
    in
    go ()
  in
  (match peek p with Some '-' -> advance p | _ -> ());
  let is_digit c = c >= '0' && c <= '9' in
  (* RFC 8259 integer part: a single 0, or a nonzero digit followed by
     more digits — "01" is malformed, not a sloppy 1. *)
  (match peek p with
  | Some '0' -> advance p
  | Some c when is_digit c -> consume is_digit
  | _ -> fail_at p "expected a value");
  let consume1 what cond =
    match peek p with
    | Some c when cond c -> consume cond
    | _ -> fail_at p what
  in
  (match peek p with
  | Some '.' ->
      advance p;
      consume1 "digit expected after decimal point" is_digit
  | _ -> ());
  (match peek p with
  | Some ('e' | 'E') ->
      advance p;
      (match peek p with Some ('+' | '-') -> advance p | _ -> ());
      consume1 "digit expected in exponent" is_digit
  | _ -> ());
  match float_of_string_opt (String.sub p.s start (p.pos - start)) with
  | Some n -> Num n
  | None -> fail_at p "bad number"

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail_at p "unexpected end of input"
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              members ((k, v) :: acc)
          | Some '}' ->
              advance p;
              List.rev ((k, v) :: acc)
          | _ -> fail_at p "expected , or } in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              elements (v :: acc)
          | Some ']' ->
              advance p;
              List.rev (v :: acc)
          | _ -> fail_at p "expected , or ] in array"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> parse_number p

let parse s =
  let p = { s; pos = 0 } in
  match
    let v = parse_value p in
    skip_ws p;
    if p.pos <> String.length s then fail_at p "trailing bytes";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
