module Seg = Tdat_pkt.Tcp_segment
module Mct = Tdat_bgp.Mct

type source = Archive | Reconstructed

type t = {
  start_ts : Tdat_timerange.Time_us.t;
  end_ts : Tdat_timerange.Time_us.t;
  prefixes : int;
  updates : int;
  source : source;
}

let duration t = max 0 (t.end_ts - t.start_ts)

let span t =
  Tdat_timerange.Span.v t.start_ts (max (t.start_ts + 1) (t.end_ts + 1))

let connection_start trace ~flow =
  let segs = Tdat_pkt.Trace.segments trace in
  let syn =
    List.find_opt
      (fun (s : Seg.t) ->
        s.flags.Seg.syn && Tdat_pkt.Flow.is_to_receiver flow s)
      segs
  in
  match (syn, segs) with
  | Some s, _ -> Some s.Seg.ts
  | None, first :: _ -> Some first.Seg.ts
  | None, [] -> None

let identify ?mct ?mrt trace ~flow =
  match connection_start trace ~flow with
  | None -> None
  | Some start_ts -> (
      let result, source =
        match mrt with
        | Some (_ :: _ as records) ->
            let updates =
              List.filter_map
                (fun (r : Tdat_bgp.Mrt.record) ->
                  match r.Tdat_bgp.Mrt.msg with
                  | Tdat_bgp.Msg.Update u when u.Tdat_bgp.Msg.nlri <> [] ->
                      Some (r.Tdat_bgp.Mrt.ts, u.Tdat_bgp.Msg.nlri)
                  | _ -> None)
                records
            in
            (Mct.transfer_end ?config:mct ~start:start_ts updates, Archive)
        | Some [] | None ->
            (* Streaming scan: reassemble into a per-domain scratch
               buffer and fold the update stream directly — no decoded
               message or prefix list ever materializes. *)
            ( Tdat_parallel.Scratch.(with_bytes ~slot:slot_reassembly 4096)
                (fun cell ->
                  let reasm =
                    Tdat_bgp.Msg_reader.reassemble_from_trace ~scratch:cell
                      trace ~flow
                  in
                  Mct.transfer_end_of_reasm ?config:mct ~start:start_ts reasm),
              Reconstructed )
      in
      match result with
      | None -> None
      | Some r ->
          Some
            {
              start_ts;
              end_ts = r.Mct.end_ts;
              prefixes = r.Mct.prefixes;
              updates = r.Mct.updates;
              source;
            })
