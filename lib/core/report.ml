open Tdat_timerange
module D = Series_defs

let fig11_series =
  [
    D.Transmission;
    D.Outstanding;
    D.Send_app_limited;
    D.Adv_bnd_out;
    D.Cwnd_bnd_out;
    D.Upstream_loss;
    D.Downstream_loss;
    D.Zero_adv_window;
  ]

let series_timeline ?(width = 72) ?(names = fig11_series) gen =
  let win = Series_gen.window gen in
  let to_intervals name =
    Series_gen.spans gen name |> Span_set.clip win |> Span_set.to_list
    |> List.map (fun sp ->
           (Time_us.to_s (Span.start sp), Time_us.to_s (Span.stop sp)))
  in
  let rows =
    List.map (fun n -> (D.to_string n, to_intervals n)) names
  in
  Tdat_stats.Ascii_plot.timeline ~width
    ~window:(Time_us.to_s (Span.start win), Time_us.to_s (Span.stop win))
    rows

let pp_analysis ppf (a : Analyzer.t) =
  let open Format in
  fprintf ppf "@[<v>== connection %a ==@," Tdat_pkt.Flow.pp
    a.Analyzer.profile.Conn_profile.flow;
  fprintf ppf "%a@," Conn_profile.pp_summary a.Analyzer.profile;
  (match a.Analyzer.transfer with
  | Some tr ->
      fprintf ppf
        "table transfer: start=%a duration=%a prefixes=%d updates=%d (%s)@,"
        Time_us.pp tr.Transfer_id.start_ts Time_us.pp
        (Transfer_id.duration tr) tr.Transfer_id.prefixes
        tr.Transfer_id.updates
        (match tr.Transfer_id.source with
        | Transfer_id.Archive -> "MRT archive"
        | Transfer_id.Reconstructed -> "reconstructed from trace")
  | None -> fprintf ppf "table transfer: not identified@,");
  fprintf ppf "-- delay factors --@,%a@," Factors.pp a.Analyzer.factors;
  let p = a.Analyzer.problems in
  fprintf ppf "-- problems --@,";
  (match p.Analyzer.timer with
  | Some t ->
      fprintf ppf "timer gaps: %a timer, %d gaps, %a induced@," Time_us.pp
        t.Detect_timer.timer t.Detect_timer.gaps Time_us.pp
        t.Detect_timer.induced_delay
  | None -> fprintf ppf "timer gaps: none detected@,");
  let cl = p.Analyzer.consecutive_losses in
  if cl.Detect_loss.episodes <> [] then
    fprintf ppf "consecutive losses: %d episodes, %a in loss recovery@,"
      (List.length cl.Detect_loss.episodes)
      Time_us.pp cl.Detect_loss.induced_delay
  else fprintf ppf "consecutive losses: none@,";
  (match p.Analyzer.peer_group_suspects with
  | [] -> fprintf ppf "peer-group blocking: no suspect idle periods@,"
  | suspects ->
      fprintf ppf "peer-group blocking: %d suspect period(s), %a blocked@,"
        (List.length suspects) Time_us.pp
        (Detect_peer_group.blocked_delay suspects));
  (match p.Analyzer.zero_ack_bug with
  | Some z ->
      fprintf ppf "zero-window ack bug: %a of conflicting behaviour@,"
        Time_us.pp z.Detect_zero_ack.total
  | None -> fprintf ppf "zero-window ack bug: none@,");
  fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp_analysis a

let stage_timing_table (a : Analyzer.t) =
  match a.Analyzer.timings with
  | [] -> ""
  | timings ->
      let buf = Buffer.create 256 in
      let width =
        List.fold_left (fun w (n, _) -> max w (String.length n)) 5 timings
      in
      Buffer.add_string buf "-- stage timings --\n";
      let accounted =
        List.fold_left
          (fun acc (name, dt) ->
            Buffer.add_string buf
              (Printf.sprintf "%-*s %10.3f ms %5.1f%%\n" width name (dt *. 1e3)
                 (if a.Analyzer.total_s > 0. then
                    dt /. a.Analyzer.total_s *. 100.
                  else 0.));
            acc +. dt)
          0. timings
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %10.3f ms (%0.3f ms unattributed)\n" width
           "total"
           (a.Analyzer.total_s *. 1e3)
           (Float.max 0. (a.Analyzer.total_s -. accounted) *. 1e3));
      Buffer.contents buf
