open Tdat_timerange
module Seg = Tdat_pkt.Tcp_segment
module Flow = Tdat_pkt.Flow

type label =
  | In_order
  | Above_hole
  | Fill_reorder
  | Fill_retransmission
  | Redelivery

type data_packet = { seg : Seg.t; label : label }

type loss_episode = { span : Span.t; packets : int; bytes : int }

type t = {
  flow : Flow.t;
  start_time : Time_us.t;
  end_time : Time_us.t;
  syn_rtt : Time_us.t option;
  upstream_rtt : Time_us.t option;
  rtt : Time_us.t;
  mss : int;
  max_adv_window : int;
  data : data_packet array;
  acks : Seg.t array;
  upstream_episodes : loss_episode list;
  downstream_episodes : loss_episode list;
  voids : Span_set.t;
}

(* A raw recovery event before merging into episodes. *)
type recovery = { r_span : Span.t; r_bytes : int }

let merge_episodes recoveries =
  let spans = List.map (fun r -> (r.r_span, r)) recoveries in
  let sorted =
    List.sort (fun (a, _) (b, _) -> Span.compare a b) spans
  in
  let rec go acc current = function
    | [] -> List.rev (match current with None -> acc | Some e -> e :: acc)
    | (span, r) :: rest -> (
        match current with
        | None ->
            go acc (Some { span; packets = 1; bytes = r.r_bytes }) rest
        | Some e when Span.touches e.span span ->
            go acc
              (Some
                 {
                   span = Span.hull e.span span;
                   packets = e.packets + 1;
                   bytes = e.bytes + r.r_bytes;
                 })
              rest
        | Some e ->
            go (e :: acc) (Some { span; packets = 1; bytes = r.r_bytes }) rest)
  in
  go [] None sorted

(* Holes: open sequence gaps [lo, hi) with creation time. *)
type hole = { h_lo : int; h_hi : int; created : Time_us.t }

let of_trace ?(reorder_factor = 0.25) trace ~flow =
  let module T = Tdat_pkt.Trace in
  let n = T.length trace in
  (* Direction predicates.  [is_to_sender] additionally excludes
     receiver-bound segments, mirroring the partition-then-filter the
     list pipeline used to do. *)
  let to_receiver (s : Seg.t) = Flow.is_to_receiver flow s in
  let to_sender (s : Seg.t) =
    (not (Flow.is_to_receiver flow s)) && Flow.is_to_sender flow s
  in
  let is_data_seg (s : Seg.t) = to_receiver s && Seg.is_data s in
  let is_ack_seg (s : Seg.t) = to_sender s && s.flags.Seg.ack in
  (* Count-then-fill the two per-direction arrays straight from the
     trace — no segment lists. *)
  let n_data = ref 0 and n_acks = ref 0 in
  for i = 0 to n - 1 do
    let s = T.get trace i in
    if is_data_seg s then incr n_data;
    if is_ack_seg s then incr n_acks
  done;
  let fill count pred =
    if count = 0 then [||]
    else begin
      let out = ref [||] in
      let k = ref 0 in
      for i = 0 to n - 1 do
        let s = T.get trace i in
        if pred s then begin
          if !k = 0 then out := Array.make count s;
          !out.(!k) <- s;
          incr k
        end
      done;
      !out
    end
  in
  let data_segs = fill !n_data is_data_seg in
  let acks = fill !n_acks is_ack_seg in
  let find_seg pred =
    let found = ref None in
    (try
       for i = 0 to n - 1 do
         let s = T.get trace i in
         if pred s then begin
           found := Some s;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  in
  (* Handshake-based RTT: SYN seen at the sniffer to the sender's first
     post-SYN+ACK packet covers the full round trip regardless of the
     sniffer position. *)
  let syn = find_seg (fun s -> to_receiver s && s.Seg.flags.Seg.syn) in
  let synack =
    find_seg (fun s -> to_sender s && s.Seg.flags.Seg.syn && s.Seg.flags.Seg.ack)
  in
  let syn_rtt, upstream_rtt =
    match (syn, synack) with
    | Some syn, Some sa -> (
        match
          find_seg (fun s -> to_receiver s && s.Seg.ts > sa.Seg.ts)
        with
        | Some reply ->
            ( Some (reply.Seg.ts - syn.Seg.ts),
              Some (reply.Seg.ts - sa.Seg.ts) )
        | None -> (None, None))
    | _ -> (None, None)
  in
  let start_time =
    match syn with
    | Some s -> s.Seg.ts
    | None -> if n > 0 then (T.get trace 0).Seg.ts else 0
  in
  let end_time =
    if n > 0 then (T.get trace (n - 1)).Seg.ts else start_time
  in
  let mss =
    match syn with
    | Some { Seg.mss_opt = Some m; _ } -> m
    | _ ->
        Array.fold_left (fun acc (s : Seg.t) -> max acc s.len) 536 data_segs
  in
  let max_adv_window =
    Array.fold_left (fun acc (s : Seg.t) -> max acc s.window) 0 acks
  in
  let rtt = max 1_000 (Option.value ~default:1_000 syn_rtt) in
  let reorder_threshold =
    max 1_000 (int_of_float (reorder_factor *. float_of_int rtt))
  in
  (* --- labeling pass ------------------------------------------------ *)
  let expected = ref 0 in
  let holes = ref ([] : hole list) in
  let first_seen : (int, Time_us.t) Hashtbl.t = Hashtbl.create 1024 in
  let upstream = ref [] and downstream = ref [] in
  let label_packet (s : Seg.t) =
    let lo = s.seq and hi = Seg.seq_end s in
    let label =
      if lo >= !expected then begin
        (* In order (possibly above an open hole). *)
        if lo > !expected then
          holes := !holes @ [ { h_lo = !expected; h_hi = lo; created = s.ts } ];
        expected := hi;
        if !holes = [] then In_order else Above_hole
      end
      else begin
        (* Below the frontier: hole fill or redelivery. *)
        let overlapping, rest =
          List.partition (fun h -> lo < h.h_hi && hi > h.h_lo) !holes
        in
        match overlapping with
        | [] ->
            (* All bytes seen before: downstream-loss recovery. *)
            let orig =
              match Hashtbl.find_opt first_seen lo with
              | Some ts -> ts
              | None -> max start_time (s.ts - rtt)
            in
            let span =
              if s.ts > orig then Span.v orig (s.ts + 1) else Span.point s.ts
            in
            downstream := { r_span = span; r_bytes = s.len } :: !downstream;
            (if hi > !expected then expected := hi);
            Redelivery
        | _ ->
            (* Fills at least one hole. *)
            let created =
              List.fold_left (fun acc h -> min acc h.created) max_int
                overlapping
            in
            let remaining =
              List.concat_map
                (fun h ->
                  let left =
                    if h.h_lo < lo then
                      [ { h with h_hi = min h.h_hi lo } ]
                    else []
                  in
                  let right =
                    if h.h_hi > hi then
                      [ { h with h_lo = max h.h_lo hi } ]
                    else []
                  in
                  left @ right)
                overlapping
            in
            holes := rest @ remaining;
            if hi > !expected then expected := hi;
            if s.ts - created <= reorder_threshold then Fill_reorder
            else begin
              let span =
                if s.ts > created then Span.v created (s.ts + 1)
                else Span.point s.ts
              in
              upstream := { r_span = span; r_bytes = s.len } :: !upstream;
              Fill_retransmission
            end
      end
    in
    if not (Hashtbl.mem first_seen lo) then Hashtbl.add first_seen lo s.ts;
    { seg = s; label }
  in
  (* Labeling is stateful (hole tracking): fill the pre-sized array with
     an explicit in-order loop. *)
  let ndata = Array.length data_segs in
  let data =
    if ndata = 0 then [||]
    else begin
      let first = label_packet data_segs.(0) in
      let out = Array.make ndata first in
      for i = 1 to ndata - 1 do
        out.(i) <- label_packet data_segs.(i)
      done;
      out
    end
  in
  {
    flow;
    start_time;
    end_time;
    syn_rtt;
    upstream_rtt;
    rtt;
    mss;
    max_adv_window;
    data;
    acks;
    upstream_episodes = merge_episodes !upstream;
    downstream_episodes = merge_episodes !downstream;
    voids = Tdat_pkt.Trace.voids trace;
  }

let retransmissions t =
  Array.fold_left
    (fun acc p ->
      match p.label with
      | Fill_retransmission | Redelivery -> acc + 1
      | In_order | Above_hole | Fill_reorder -> acc)
    0 t.data

let duration t = t.end_time - t.start_time
let analysis_window t = Span.v t.start_time (t.end_time + 1)

let pp_summary ppf t =
  Format.fprintf ppf
    "%a: %d data pkts, %d acks, rtt=%a mss=%d maxwin=%d retx=%d (up %d ep, \
     down %d ep)"
    Flow.pp t.flow (Array.length t.data) (Array.length t.acks) Time_us.pp
    t.rtt t.mss t.max_adv_window (retransmissions t)
    (List.length t.upstream_episodes)
    (List.length t.downstream_episodes)
