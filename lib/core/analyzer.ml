type problems = {
  timer : Detect_timer.result option;
  consecutive_losses : Detect_loss.result;
  peer_group_suspects : Detect_peer_group.suspect list;
  zero_ack_bug : Detect_zero_ack.result option;
}

type t = {
  profile : Conn_profile.t;
  shifted : Conn_profile.t;
  shifts : Ack_shift.flight_shift list;
  transfer : Transfer_id.t option;
  series : Series_gen.t;
  factors : Factors.result;
  problems : problems;
  audit : Tdat_audit.Diag.t list;
}

(* Re-derive the invariants the pipeline's algebra assumes (DESIGN.md,
   "Static analysis & auditing"): canonical span sets for every series,
   monotone and sane input segments, conservation across ACK shifting,
   and in-range factor accounting. *)
let run_audit ~profile ~shifted ~skip_shift ~series ~(factors : Factors.result)
    () =
  let open Tdat_audit in
  let data_segs (p : Conn_profile.t) =
    Array.to_list p.Conn_profile.data
    |> List.map (fun d -> d.Conn_profile.seg)
  in
  let series_sets =
    List.concat_map
      (fun s ->
        Checks.canonical_set
          ~subject:(Series_defs.to_string s)
          (Series_gen.spans series s))
      Series_defs.all
  in
  let custom_sets =
    List.concat_map
      (fun name ->
        match Series_gen.custom series name with
        | Some set -> Checks.canonical_set ~subject:name set
        | None -> [])
      (Series_gen.custom_names series)
  in
  let input_checks =
    Checks.canonical_set ~subject:"voids" profile.Conn_profile.voids
    @ Checks.monotone_segments ~subject:"data" (data_segs profile)
    @ Checks.monotone_segments ~subject:"acks"
        (Array.to_list profile.Conn_profile.acks)
    @ Checks.seq_ack_sane ~subject:"data" (data_segs profile)
    @ Checks.seq_ack_sane ~subject:"acks"
        (Array.to_list profile.Conn_profile.acks)
  in
  let shift_checks =
    if skip_shift then []
    else
      Checks.ack_shift_conserved ~subject:"ack shift"
        ~before:profile.Conn_profile.acks ~after:shifted.Conn_profile.acks ()
      @ Checks.monotone_segments ~subject:"shifted acks"
          (Array.to_list shifted.Conn_profile.acks)
  in
  let period = factors.Factors.analysis_period in
  let accounting =
    Checks.ratios_in_range ~subject:"factors"
      (List.map
         (fun (f, r) -> (Factors.factor_name f, r))
         factors.Factors.ratios)
    @ Checks.ratios_in_range ~subject:"groups"
        (List.map
           (fun (g, r) -> (Factors.group_name g, r))
           factors.Factors.group_ratios)
    @ Checks.sizes_bounded ~subject:"series" ~period
        (List.map
           (fun s -> (Series_defs.to_string s, Series_gen.size series s))
           Series_defs.all)
  in
  input_checks @ shift_checks @ series_sets @ custom_sets @ accounting

let analyze ?config ?major_threshold ?mct ?mrt ?(skip_shift = false)
    ?(audit = false) trace ~flow =
  let profile = Conn_profile.of_trace trace ~flow in
  let shifted, shifts =
    if skip_shift then (profile, []) else Ack_shift.shift profile
  in
  let transfer = Transfer_id.identify ?mct ?mrt trace ~flow in
  let window = Option.map Transfer_id.span transfer in
  let series = Series_gen.generate ?config ?window shifted in
  let factors = Factors.compute ?major_threshold series in
  let problems =
    {
      timer = Detect_timer.detect series;
      consecutive_losses = Detect_loss.detect series;
      peer_group_suspects = Detect_peer_group.suspects series;
      zero_ack_bug = Detect_zero_ack.detect series;
    }
  in
  let audit =
    if audit then run_audit ~profile ~shifted ~skip_shift ~series ~factors ()
    else []
  in
  { profile; shifted; shifts; transfer; series; factors; problems; audit }

let analyze_all ?config ?major_threshold ?mct ?mrt ?audit ?jobs trace =
  (* One pass buckets the whole trace; each bucket is then an
     independent, pure analysis task, farmed to the domain pool.
     Results come back in input order, so the output is identical to the
     sequential path whatever [jobs] is.  Sender inference runs on the
     per-connection sub-trace: byte counts from other connections
     sharing an endpoint (every session shares the collector's) cannot
     leak into the orientation. *)
  let parts = Tdat_pkt.Trace.partition_connections trace in
  let analyze_one (key, sub) =
    let flow = Tdat_pkt.Trace.infer_sender sub key in
    (flow, analyze ?config ?major_threshold ?mct ?mrt ?audit sub ~flow)
  in
  Tdat_parallel.Pool.with_pool ?jobs (fun pool ->
      Tdat_parallel.Pool.map pool analyze_one parts)
