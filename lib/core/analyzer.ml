type problems = {
  timer : Detect_timer.result option;
  consecutive_losses : Detect_loss.result;
  peer_group_suspects : Detect_peer_group.suspect list;
  zero_ack_bug : Detect_zero_ack.result option;
}

type t = {
  profile : Conn_profile.t;
  shifted : Conn_profile.t;
  shifts : Ack_shift.flight_shift list;
  transfer : Transfer_id.t option;
  series : Series_gen.t;
  factors : Factors.result;
  problems : problems;
  audit : Tdat_audit.Diag.t list;
  timings : (string * float) list;
  total_s : float;
}

(* --- observability ----------------------------------------------------

   The pipeline's own stages are first-class measurement points
   (DESIGN.md, "Observability"): each stage runs under a named
   [Tdat_obs.Span], its duration feeds a volatile per-stage histogram,
   and the per-run timing list backs both the `tdat check` stage table
   and the A006 accounting audit.  All of it is skipped — closures
   aside, not even a clock read — unless auditing, tracing, or metrics
   collection is on. *)

module Obs = Tdat_obs.Metrics

let stage_names =
  [
    "conn-profile"; "ack-shift"; "transfer-id"; "series-gen"; "factors";
    "detect-timer"; "detect-loss"; "detect-peer-group"; "detect-zero-ack";
  ]

let stage_hists =
  List.map
    (fun n ->
      ( n,
        (Obs.Histogram.make ~stable:false
           ~buckets:Obs.Histogram.time_us_buckets
           (Printf.sprintf "analyzer.stage.%s.us" n)
         (* Templated over the literal stage_names list above. *)
         [@tdat.lint.allow "L011"]) ))
    stage_names

let m_analyses = Obs.Counter.make "analyzer.analyses"
let m_transfers = Obs.Counter.make "analyzer.transfers_identified"
let m_connections = Obs.Counter.make "analyzer.connections"

let h_connection_packets =
  Obs.Histogram.make ~buckets:Obs.Histogram.size_buckets
    "analyzer.connection_packets"

(* Re-derive the invariants the pipeline's algebra assumes (DESIGN.md,
   "Static analysis & auditing"): canonical span sets for every series,
   monotone and sane input segments, conservation across ACK shifting,
   in-range factor accounting, and self-consistent stage timings. *)
let run_audit ~profile ~shifted ~skip_shift ~series ~(factors : Factors.result)
    ~timings ~total_s () =
  let open Tdat_audit in
  let data_segs (p : Conn_profile.t) =
    Array.to_list p.Conn_profile.data
    |> List.map (fun d -> d.Conn_profile.seg)
  in
  let series_sets =
    List.concat_map
      (fun s ->
        Checks.canonical_set
          ~subject:(Series_defs.to_string s)
          (Series_gen.spans series s))
      Series_defs.all
  in
  let custom_sets =
    List.concat_map
      (fun name ->
        match Series_gen.custom series name with
        | Some set -> Checks.canonical_set ~subject:name set
        | None -> [])
      (Series_gen.custom_names series)
  in
  let input_checks =
    Checks.canonical_set ~subject:"voids" profile.Conn_profile.voids
    @ Checks.monotone_segments ~subject:"data" (data_segs profile)
    @ Checks.monotone_segments ~subject:"acks"
        (Array.to_list profile.Conn_profile.acks)
    @ Checks.seq_ack_sane ~subject:"data" (data_segs profile)
    @ Checks.seq_ack_sane ~subject:"acks"
        (Array.to_list profile.Conn_profile.acks)
  in
  let shift_checks =
    if skip_shift then []
    else
      Checks.ack_shift_conserved ~subject:"ack shift"
        ~before:profile.Conn_profile.acks ~after:shifted.Conn_profile.acks ()
      @ Checks.monotone_segments ~subject:"shifted acks"
          (Array.to_list shifted.Conn_profile.acks)
  in
  let period = factors.Factors.analysis_period in
  let accounting =
    Checks.ratios_in_range ~subject:"factors"
      (List.map
         (fun (f, r) -> (Factors.factor_name f, r))
         factors.Factors.ratios)
    @ Checks.ratios_in_range ~subject:"groups"
        (List.map
           (fun (g, r) -> (Factors.group_name g, r))
           factors.Factors.group_ratios)
    @ Checks.sizes_bounded ~subject:"series" ~period
        (List.map
           (fun s -> (Series_defs.to_string s, Series_gen.size series s))
           Series_defs.all)
  in
  let timing_checks = Checks.stage_timings ~subject:"stages" ~total_s timings in
  input_checks @ shift_checks @ series_sets @ custom_sets @ accounting
  @ timing_checks

let analyze ?config ?major_threshold ?mct ?mrt ?(skip_shift = false)
    ?(audit = false) trace ~flow =
  let instrumented =
    audit || Tdat_obs.Tracer.enabled () || Obs.enabled Obs.default
  in
  Obs.Counter.incr m_analyses;
  let timings = ref [] in
  let stage name f =
    if not instrumented then f ()
    else
      (* The stage wrapper forwards literal names from the call sites
         below; the forwarding itself is what L011 cannot see through. *)
      let r, dt = (Tdat_obs.Span.timed ~name f [@tdat.lint.allow "L011"]) in
      timings := (name, dt) :: !timings;
      (match List.assoc_opt name stage_hists with
      | Some h -> Obs.Histogram.observe h (dt *. 1e6)
      | None -> ());
      r
  in
  let t_start = if instrumented then Tdat_obs.Clock.now_us () else 0. in
  let profile = stage "conn-profile" (fun () -> Conn_profile.of_trace trace ~flow) in
  let shifted, shifts =
    stage "ack-shift" (fun () ->
        if skip_shift then (profile, []) else Ack_shift.shift profile)
  in
  let transfer =
    stage "transfer-id" (fun () -> Transfer_id.identify ?mct ?mrt trace ~flow)
  in
  let window = Option.map Transfer_id.span transfer in
  let series =
    stage "series-gen" (fun () -> Series_gen.generate ?config ?window shifted)
  in
  let factors =
    stage "factors" (fun () -> Factors.compute ?major_threshold series)
  in
  let problems =
    {
      timer = stage "detect-timer" (fun () -> Detect_timer.detect series);
      consecutive_losses =
        stage "detect-loss" (fun () -> Detect_loss.detect series);
      peer_group_suspects =
        stage "detect-peer-group" (fun () -> Detect_peer_group.suspects series);
      zero_ack_bug =
        stage "detect-zero-ack" (fun () -> Detect_zero_ack.detect series);
    }
  in
  let total_s =
    if instrumented then (Tdat_obs.Clock.now_us () -. t_start) /. 1e6 else 0.
  in
  let timings = List.rev !timings in
  if Option.is_some transfer then Obs.Counter.incr m_transfers;
  let audit =
    if audit then
      Tdat_obs.Span.with_ ~name:"audit" (fun () ->
          run_audit ~profile ~shifted ~skip_shift ~series ~factors ~timings
            ~total_s ())
    else []
  in
  {
    profile;
    shifted;
    shifts;
    transfer;
    series;
    factors;
    problems;
    audit;
    timings;
    total_s;
  }

let analyze_all ?config ?major_threshold ?mct ?mrt ?audit ?jobs trace =
  (* One pass buckets the whole trace; each bucket is then an
     independent, pure analysis task, farmed to the domain pool.
     Results come back in input order, so the output is identical to the
     sequential path whatever [jobs] is.  Sender inference runs on the
     per-connection sub-trace: byte counts from other connections
     sharing an endpoint (every session shares the collector's) cannot
     leak into the orientation. *)
  let parts =
    Tdat_obs.Span.with_ ~name:"partition" (fun () ->
        Tdat_pkt.Trace.partition_connections trace)
  in
  Obs.Counter.add m_connections (List.length parts);
  let analyze_one (key, sub) =
    Obs.Histogram.observe h_connection_packets
      (float_of_int (Tdat_pkt.Trace.length sub));
    let flow = Tdat_pkt.Trace.infer_sender sub key in
    (flow, Tdat_obs.Span.with_ ~name:"analyze" (fun () ->
        analyze ?config ?major_threshold ?mct ?mrt ?audit sub ~flow))
  in
  Tdat_parallel.Pool.with_pool ?jobs (fun pool ->
      Tdat_parallel.Pool.map pool analyze_one parts)
