(** Human-readable rendering of analysis results: the per-connection
    report the T-DAT command-line tool prints, and the square-wave series
    view of Fig. 11 (the BGPlot role). *)

val pp_analysis : Format.formatter -> Analyzer.t -> unit
(** Connection profile, transfer bounds, the 8-factor / 3-group ratio
    vectors, and any detected problems. *)

val to_string : Analyzer.t -> string

val stage_timing_table : Analyzer.t -> string
(** A per-stage wall-clock table (duration and share of the analyze
    span, plus the unattributed remainder) for an instrumented
    analysis; [""] when the analysis ran uninstrumented and recorded no
    timings.  [tdat check] appends it to each connection's audit
    report. *)

val series_timeline :
  ?width:int ->
  ?names:Series_defs.t list ->
  Series_gen.t ->
  string
(** ASCII square waves of the chosen series (default: the Fig. 11 set)
    over the analysis window. *)
