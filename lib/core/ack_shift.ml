open Tdat_timerange
module Seg = Tdat_pkt.Tcp_segment

type flight_shift = {
  span : Span.t;
  n_acks : int;
  estimates : int;
  applied : Time_us.t;
}

(* d2 estimate for one ACK: the delay until the first data packet that
   this ACK's window-edge advance released.  [allowed_before] is the
   right window edge (ack + win) in force before this ACK. *)
let estimate_d2 (profile : Conn_profile.t) ~allowed_before
    ~(ack : Seg.t) ~max_wait =
  let edge = ack.Seg.ack + ack.Seg.window in
  if edge <= allowed_before then None
  else begin
    let data = profile.Conn_profile.data in
    let n = Array.length data in
    (* Binary search for the first data packet after the ACK, then scan
       forward within the bounded wait window. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if data.(mid).Conn_profile.seg.Seg.ts <= ack.Seg.ts then lo := mid + 1
      else hi := mid
    done;
    let rec search i =
      if i >= n then None
      else begin
        let s = data.(i).Conn_profile.seg in
        if s.Seg.ts - ack.Seg.ts > max_wait then None
        else begin
          let seq_end = Seg.seq_end s in
          if seq_end > allowed_before && seq_end <= edge then
            Some (s.Seg.ts - ack.Seg.ts)
          else search (i + 1)
        end
      end
    in
    search !lo
  end

let shift ?flight_gap (profile : Conn_profile.t) =
  let rtt = profile.Conn_profile.rtt in
  let gap =
    match flight_gap with Some g -> g | None -> max 1_000 (rtt / 4)
  in
  let acks = profile.Conn_profile.acks in
  let baseline =
    Option.value ~default:0 profile.Conn_profile.upstream_rtt
  in
  let n = Array.length acks in
  let max_wait = 2 * max rtt 1_000 in
  (* Track the pre-ACK window edge as we walk the ACK stream.  Flights
     are contiguous index ranges [lo, hi] split where the inter-arrival
     gap exceeds [gap] — walked in place, no index lists. *)
  let allowed = ref 0 in
  let shifted = Array.copy acks in
  let infos = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && acks.(!j + 1).Seg.ts - acks.(!j).Seg.ts <= gap
    do
      incr j
    done;
    let lo = !i and hi = !j in
    let best = ref max_int and estimates = ref 0 in
    for k = lo to hi do
      let ack = acks.(k) in
      (match
         estimate_d2 profile ~allowed_before:!allowed ~ack ~max_wait
       with
      | Some d2 when d2 >= 0 ->
          incr estimates;
          if d2 < !best then best := d2
      | _ -> ());
      allowed := max !allowed (ack.Seg.ack + ack.Seg.window)
    done;
    let applied = if !estimates = 0 then baseline else !best in
    for k = lo to hi do
      shifted.(k) <-
        { acks.(k) with Seg.ts = acks.(k).Seg.ts + applied }
    done;
    infos :=
      {
        span = Span.v acks.(lo).Seg.ts (acks.(hi).Seg.ts + 1);
        n_acks = hi - lo + 1;
        estimates = !estimates;
        applied;
      }
      :: !infos;
    i := hi + 1
  done;
  Array.sort Seg.compare_ts shifted;
  ( { profile with Conn_profile.acks = shifted },
    List.rev !infos )
