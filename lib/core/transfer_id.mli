(** Locating BGP table transfers in a monitored session (Section II-A).

    The TCP connection start marks the transfer start (a table transfer
    begins right after session establishment, RFC 4271); the end comes
    from the MCT algorithm run over the BGP message stream — taken from
    the collector's MRT archive when one exists (Quagga), or recovered
    from the packet trace itself via stream reassembly (the [pcap2bgp]
    path, used for Vendor collectors). *)

type source = Archive | Reconstructed

type t = {
  start_ts : Tdat_timerange.Time_us.t;  (** TCP connection start. *)
  end_ts : Tdat_timerange.Time_us.t;    (** MCT-estimated end. *)
  prefixes : int;   (** Distinct prefixes collected. *)
  updates : int;    (** Updates attributed to the transfer. *)
  source : source;
}

val duration : t -> Tdat_timerange.Time_us.t
val span : t -> Tdat_timerange.Span.t

val connection_start :
  Tdat_pkt.Trace.t -> flow:Tdat_pkt.Flow.t -> Tdat_timerange.Time_us.t option
(** The transfer-start anchor {!identify} uses: the first
    sender→receiver SYN, else the first segment; [None] on an empty
    trace.  Exposed so alternative transfer-end estimators (the
    [Tdat_experiment] control/candidate variants) anchor on the exact
    same instant. *)

val identify :
  ?mct:Tdat_bgp.Mct.config ->
  ?mrt:Tdat_bgp.Mrt.record list ->
  Tdat_pkt.Trace.t ->
  flow:Tdat_pkt.Flow.t ->
  t option
(** [identify trace ~flow] locates the transfer on this connection.
    When [mrt] is given (and non-empty) the archive drives MCT; otherwise
    the data stream is reassembled from the trace.  [None] when no
    update follows the connection start. *)
