module D = Series_defs

type factor =
  | Bgp_sender_app
  | Tcp_cwnd
  | Send_local_loss
  | Bgp_receiver_app
  | Tcp_adv_window
  | Recv_local_loss
  | Bandwidth
  | Network_loss

type group = Sender | Receiver | Network

let group_of = function
  | Bgp_sender_app | Tcp_cwnd | Send_local_loss -> Sender
  | Bgp_receiver_app | Tcp_adv_window | Recv_local_loss -> Receiver
  | Bandwidth | Network_loss -> Network

let all_factors =
  [
    Bgp_sender_app;
    Tcp_cwnd;
    Send_local_loss;
    Bgp_receiver_app;
    Tcp_adv_window;
    Recv_local_loss;
    Bandwidth;
    Network_loss;
  ]

let factor_name = function
  | Bgp_sender_app -> "BGP sender app"
  | Tcp_cwnd -> "TCP congestion window"
  | Send_local_loss -> "Local packet loss (sender)"
  | Bgp_receiver_app -> "BGP receiver app"
  | Tcp_adv_window -> "TCP advertised window"
  | Recv_local_loss -> "Local packet loss (receiver)"
  | Bandwidth -> "Bandwidth limited"
  | Network_loss -> "Network packet loss"

let group_name = function
  | Sender -> "Sender-side limited"
  | Receiver -> "Receiver-side limited"
  | Network -> "Network limited"

let series_of = function
  | Bgp_sender_app -> [ D.Send_app_limited ]
  | Tcp_cwnd -> [ D.Cwnd_bnd_out ]
  | Send_local_loss -> [ D.Send_local_loss ]
  | Bgp_receiver_app -> [ D.Recv_app_limited ]
  | Tcp_adv_window -> [ D.Adv_bnd_out ]
  | Recv_local_loss -> [ D.Recv_local_loss ]
  | Bandwidth -> [ D.Bandwidth_bound ]
  | Network_loss -> [ D.Network_loss ]

let equal_factor a b =
  match (a, b) with
  | Bgp_sender_app, Bgp_sender_app
  | Tcp_cwnd, Tcp_cwnd
  | Send_local_loss, Send_local_loss
  | Bgp_receiver_app, Bgp_receiver_app
  | Tcp_adv_window, Tcp_adv_window
  | Recv_local_loss, Recv_local_loss
  | Bandwidth, Bandwidth
  | Network_loss, Network_loss ->
      true
  | ( ( Bgp_sender_app | Tcp_cwnd | Send_local_loss | Bgp_receiver_app
      | Tcp_adv_window | Recv_local_loss | Bandwidth | Network_loss ),
      _ ) ->
      false

let equal_group a b =
  match (a, b) with
  | Sender, Sender | Receiver, Receiver | Network, Network -> true
  | (Sender | Receiver | Network), _ -> false

type result = {
  ratios : (factor * float) list;
  group_ratios : (group * float) list;
  major : group list;
  major_factors : factor list;
  dominant : factor option;
  dominant_group : group option;
  analysis_period : Tdat_timerange.Time_us.t;
}

(* Loss factors take precedence over window/app attribution for the same
   instants: subtract loss spans from the non-loss factor spans so a
   retransmission timeout is counted as loss, not as congestion-window
   wait.  Likewise, advertised-window-bounded periods caused by a small or
   zero window belong to the receiving application, not to the TCP-level
   window factor. *)
let factor_spans gen factor =
  let open Tdat_timerange in
  let raw = Series_gen.union_spans gen (series_of factor) in
  match factor with
  | Send_local_loss | Recv_local_loss | Network_loss | Bandwidth -> raw
  | Tcp_adv_window ->
      Span_set.diff raw
        (Span_set.union
           (Series_gen.spans gen D.Recv_app_limited)
           (Series_gen.spans gen D.All_loss))
  | Bgp_sender_app | Tcp_cwnd | Bgp_receiver_app ->
      Span_set.diff raw (Series_gen.spans gen D.All_loss)

let compute ?(major_threshold = 0.3) gen =
  let open Tdat_timerange in
  let spans_by_factor =
    List.map (fun f -> (f, factor_spans gen f)) all_factors
  in
  let ratios =
    List.map
      (fun (f, s) -> (f, Series_gen.ratio_of_spans gen s))
      spans_by_factor
  in
  let group_spans g =
    List.fold_left
      (fun acc (f, s) -> if group_of f = g then Span_set.union acc s else acc)
      Span_set.empty spans_by_factor
  in
  let group_ratios =
    List.map
      (fun g -> (g, Series_gen.ratio_of_spans gen (group_spans g)))
      [ Sender; Receiver; Network ]
  in
  let major =
    List.filter_map
      (fun (g, r) -> if r > major_threshold then Some g else None)
      group_ratios
  in
  let major_factors =
    List.filter_map
      (fun (f, r) -> if r > major_threshold then Some f else None)
      ratios
  in
  let dominant =
    List.fold_left
      (fun acc (f, r) ->
        match acc with
        | Some (_, best) when best >= r -> acc
        | _ when r > 0. -> Some (f, r)
        | _ -> acc)
      None ratios
    |> Option.map fst
  in
  {
    ratios;
    group_ratios;
    major;
    major_factors;
    dominant;
    dominant_group = Option.map group_of dominant;
    analysis_period = Span.length (Series_gen.window gen);
  }

let pp ppf r =
  let open Format in
  fprintf ppf "@[<v>period=%a@," Tdat_timerange.Time_us.pp r.analysis_period;
  List.iter
    (fun (g, ratio) -> fprintf ppf "%-22s %.3f@," (group_name g) ratio)
    r.group_ratios;
  List.iter
    (fun (f, ratio) ->
      if ratio > 0.005 then fprintf ppf "  %-28s %.3f@," (factor_name f) ratio)
    r.ratios;
  fprintf ppf "@]"
