open Tdat_timerange
module Seg = Tdat_pkt.Tcp_segment
module D = Series_defs

type config = {
  sniffer_location : [ `Near_sender | `Near_receiver ];
  small_window_mss : int;
  bound_gap_mss : int;
  app_limit_epsilon : Time_us.t;
  keepalive_max_size : int;
  keepalive_min_idle : Time_us.t;
  idle_gap_min : Time_us.t;
  bandwidth_run : int;
}

let default_config =
  {
    sniffer_location = `Near_receiver;
    small_window_mss = 3;
    bound_gap_mss = 3;
    app_limit_epsilon = 2_000;
    keepalive_max_size = 100;
    keepalive_min_idle = 25_000_000;
    idle_gap_min = 1_000_000;
    bandwidth_run = 20;
  }

module Tbl = Hashtbl

type t = {
  config : config;
  profile : Conn_profile.t;
  window : Span.t;
  events : (D.t, int Series.t) Tbl.t;
  span_cache : (D.t, Span_set.t) Tbl.t;
  customs : (string, Span_set.t) Tbl.t;
}

let events t name =
  match Tbl.find_opt t.events name with
  | Some s -> s
  | None -> Series.empty

let spans t name =
  match Tbl.find_opt t.span_cache name with
  | Some s -> s
  | None ->
      let s = Series.to_span_set (events t name) in
      Tbl.add t.span_cache name s;
      s

let size t name = Span_set.size (spans t name)

let ratio_of_spans t set =
  let total = Span.length t.window in
  if total <= 0 then 0.
  else
    float_of_int (Span_set.size (Span_set.clip t.window set))
    /. float_of_int total

let ratio t name = ratio_of_spans t (spans t name)
let window t = t.window
let profile t = t.profile
let config t = t.config

let union_spans t names =
  List.fold_left (fun acc n -> Span_set.union acc (spans t n)) Span_set.empty
    names

let inter_spans t = function
  | [] -> Span_set.empty
  | first :: rest ->
      List.fold_left (fun acc n -> Span_set.inter acc (spans t n))
        (spans t first) rest

let define t ~name set = Tbl.replace t.customs name (Span_set.clip t.window set)
let define_inter t ~name names = define t ~name (inter_spans t names)
let define_union t ~name names = define t ~name (union_spans t names)
let custom t name = Tbl.find_opt t.customs name

let custom_ratio t name =
  Option.map (ratio_of_spans t) (custom t name)

let custom_names t =
  Tbl.fold (fun name _ acc -> name :: acc) t.customs [] |> List.sort String.compare

(* ---- helpers --------------------------------------------------------- *)

let clip_series window s = Series.clip window s

let series_of_spans set =
  let b = Series.builder () in
  Span_set.iter (fun sp -> Series.add b sp 0) set;
  Series.build b

(* Estimated serialization time of an MSS packet: the smallest positive
   inter-arrival between consecutive near-MSS data packets, capped at
   10 ms — when a trace never shows back-to-back packets the minimum gap
   says nothing about the wire rate. *)
let estimate_tx_mss (data : Conn_profile.data_packet array) mss =
  let best = ref max_int in
  for i = 1 to Array.length data - 1 do
    let a = data.(i - 1).Conn_profile.seg and b = data.(i).Conn_profile.seg in
    if a.Seg.len >= mss * 9 / 10 && b.Seg.ts > a.Seg.ts then
      best := min !best (b.Seg.ts - a.Seg.ts)
  done;
  if !best = max_int then 10 else max 1 (min !best 10_000)

let tx_time tx_mss mss len = max 1 (tx_mss * len / max 1 mss)

(* Group the first [n] timestamps of [ts] into flights: a gap larger
   than [gap] starts a new flight.  Emits one event per flight
   ([first, last+1], count) straight into a series. *)
let flight_series ts n gap =
  let b = Series.builder () in
  if n > 0 then begin
    let first = ref ts.(0) and last = ref ts.(0) and count = ref 1 in
    for i = 1 to n - 1 do
      let t = ts.(i) in
      if t - !last <= gap then begin
        last := t;
        incr count
      end
      else begin
        Series.add b (Span.v !first (!last + 1)) !count;
        first := t;
        last := t;
        count := 1
      end
    done;
    Series.add b (Span.v !first (!last + 1)) !count
  end;
  Series.build b

(* ---- generation ------------------------------------------------------ *)

let generate ?(config = default_config) ?window (p : Conn_profile.t) =
  let win =
    match window with Some w -> w | None -> Conn_profile.analysis_window p
  in
  let ev : (D.t, int Series.t) Tbl.t = Tbl.create 64 in
  let put name series = Tbl.replace ev name (clip_series win series) in
  let put_raw name series = Tbl.replace ev name series in
  let mss = p.Conn_profile.mss in
  let rtt = p.Conn_profile.rtt in
  let data = p.Conn_profile.data in
  let acks = p.Conn_profile.acks in
  let ndata = Array.length data in
  let tx_mss = estimate_tx_mss data mss in

  (* -- extraction: packets ------------------------------------------- *)
  let b = Series.builder () in
  Array.iter
    (fun (d : Conn_profile.data_packet) ->
      Series.add b (Span.point d.Conn_profile.seg.Seg.ts)
        d.Conn_profile.seg.Seg.len)
    data;
  put D.Data_pkt (Series.build b);
  let b = Series.builder () in
  Array.iter (fun (a : Seg.t) -> Series.add b (Span.point a.Seg.ts) a.Seg.window) acks;
  put D.Ack_pkt (Series.build b);

  (* -- transmission --------------------------------------------------- *)
  let b = Series.builder () in
  Array.iter
    (fun (d : Conn_profile.data_packet) ->
      let s = d.Conn_profile.seg in
      Series.add b
        (Span.of_duration s.Seg.ts (tx_time tx_mss mss s.Seg.len))
        s.Seg.len)
    data;
  put D.Transmission (Series.build b);

  (* -- labeling-derived point series ---------------------------------- *)
  let b_retx = Series.builder () and b_oos = Series.builder () in
  Array.iter
    (fun (d : Conn_profile.data_packet) ->
      let s = d.Conn_profile.seg in
      match d.Conn_profile.label with
      | Conn_profile.Redelivery | Conn_profile.Fill_retransmission ->
          Series.add b_retx (Span.point s.Seg.ts) s.Seg.len;
          Series.add b_oos (Span.point s.Seg.ts) s.Seg.len
      | Conn_profile.Fill_reorder ->
          Series.add b_oos (Span.point s.Seg.ts) s.Seg.len
      | Conn_profile.In_order | Conn_profile.Above_hole -> ())
    data;
  put D.Retransmission (Series.build b_retx);
  put D.Out_of_sequence (Series.build b_oos);

  (* -- dup acks -------------------------------------------------------- *)
  let b = Series.builder () in
  let prev_ack = ref (-1) and prev_win = ref (-1) in
  Array.iter
    (fun (a : Seg.t) ->
      if
        a.Seg.len = 0 && a.Seg.ack = !prev_ack && a.Seg.window = !prev_win
        && not a.Seg.flags.Seg.syn
      then Series.add b (Span.point a.Seg.ts) a.Seg.ack;
      prev_ack := a.Seg.ack;
      prev_win := a.Seg.window)
    acks;
  put D.Dup_ack (Series.build b);

  (* -- loss episodes ---------------------------------------------------- *)
  let episode_series eps =
    let b = Series.builder () in
    List.iter
      (fun (e : Conn_profile.loss_episode) ->
        Series.add b e.Conn_profile.span e.Conn_profile.packets)
      eps;
    Series.build b
  in
  put D.Upstream_loss (episode_series p.Conn_profile.upstream_episodes);
  put D.Downstream_loss (episode_series p.Conn_profile.downstream_episodes);

  (* -- advertised window ------------------------------------------------ *)
  let b_win = Series.builder () in
  let n_acks = Array.length acks in
  for i = 0 to n_acks - 1 do
    let a = acks.(i) in
    let stop =
      if i + 1 < n_acks then acks.(i + 1).Seg.ts else Span.stop win
    in
    if stop > a.Seg.ts then
      Series.add b_win (Span.v a.Seg.ts stop) a.Seg.window
  done;
  let adv_window = Series.build b_win in
  put D.Adv_window adv_window;
  let small_thresh = config.small_window_mss * mss in
  let max_adv = p.Conn_profile.max_adv_window in
  let filter_window f =
    Series.filter (fun _ w -> f w) adv_window
  in
  put D.Zero_adv_window (filter_window (fun w -> w = 0));
  put D.Small_adv_window (filter_window (fun w -> w > 0 && w < small_thresh));
  put D.Large_adv_window (filter_window (fun w -> w >= max_adv - small_thresh));

  (* -- flights / idle gaps ----------------------------------------------
     Timestamp working sets live in per-domain scratch int arrays; the
     combined timeline is a two-pointer merge of the two (already
     time-sorted) directions, not a sort of a concatenated list. *)
  let flight_gap = max 1_000 (rtt / 4) in
  let module Scratch = Tdat_parallel.Scratch in
  Scratch.with_ints ~slot:Scratch.slot_series_data_ts ndata (fun data_ts ->
      Scratch.with_ints ~slot:Scratch.slot_series_ack_ts n_acks (fun ack_ts ->
          Scratch.with_ints ~slot:Scratch.slot_series_all_ts (ndata + n_acks)
            (fun all_ts ->
              for i = 0 to ndata - 1 do
                data_ts.(i) <- data.(i).Conn_profile.seg.Seg.ts
              done;
              for i = 0 to n_acks - 1 do
                ack_ts.(i) <- acks.(i).Seg.ts
              done;
              put D.Data_flight (flight_series data_ts ndata flight_gap);
              put D.Ack_flight (flight_series ack_ts n_acks flight_gap);
              let i = ref 0 and j = ref 0 and k = ref 0 in
              while !i < ndata || !j < n_acks do
                let take_data =
                  !j >= n_acks || (!i < ndata && data_ts.(!i) <= ack_ts.(!j))
                in
                if take_data then begin
                  all_ts.(!k) <- data_ts.(!i);
                  incr i
                end
                else begin
                  all_ts.(!k) <- ack_ts.(!j);
                  incr j
                end;
                incr k
              done;
              let b = Series.builder () in
              for i = 0 to !k - 2 do
                if all_ts.(i + 1) - all_ts.(i) > config.idle_gap_min then
                  Series.add b (Span.v all_ts.(i) all_ts.(i + 1)) 0
              done;
              put D.Idle_gap (Series.build b))));

  (* -- keepalive-only periods --------------------------------------------
     Boundaries are the large-packet timestamps framed by the window
     edges; small-packet timestamps are kept sorted in scratch and each
     candidate interval counts its interior by binary search. *)
  let b = Series.builder () in
  Scratch.with_ints ~slot:Scratch.slot_series_small_ts ndata (fun small_ts ->
      let n_small_total = ref 0 in
      for i = 0 to ndata - 1 do
        let s = data.(i).Conn_profile.seg in
        if s.Seg.len <= config.keepalive_max_size then begin
          small_ts.(!n_small_total) <- s.Seg.ts;
          incr n_small_total
        end
      done;
      (* Number of small-packet timestamps strictly inside (a, b'). *)
      let count_small a b' =
        let lo = ref 0 and hi = ref !n_small_total in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if small_ts.(mid) <= a then lo := mid + 1 else hi := mid
        done;
        let first = !lo in
        let lo = ref first and hi = ref !n_small_total in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if small_ts.(mid) < b' then lo := mid + 1 else hi := mid
        done;
        !lo - first
      in
      let ka_interval a b' =
        if b' - a >= config.keepalive_min_idle then begin
          let n_small = count_small a b' in
          if n_small > 0 then Series.add b (Span.v a b') n_small
        end
      in
      let prev = ref (Span.start win) in
      for i = 0 to ndata - 1 do
        let s = data.(i).Conn_profile.seg in
        if s.Seg.len > config.keepalive_max_size then begin
          ka_interval !prev s.Seg.ts;
          prev := s.Seg.ts
        end
      done;
      ka_interval !prev (Span.stop win));
  put D.Keepalive_only (Series.build b);

  (* -- handshake / teardown ----------------------------------------------- *)
  (match (p.Conn_profile.syn_rtt, ndata) with
  | Some srtt, _ ->
      put D.Syn_period
        (Series.of_list
           [ (Span.of_duration p.Conn_profile.start_time (max 1 srtt), 0) ])
  | None, _ -> put_raw D.Syn_period Series.empty);
  put_raw D.Fin_period Series.empty;
  put D.Void_period (series_of_spans p.Conn_profile.voids);

  (* -- the attribution walk ----------------------------------------------
     Explain each inter-transmission gap: window-bounded wait (adv/cwnd),
     then application-limited tail once the pipe drains. *)
  let b_out = Series.builder () in
  let b_adv = Series.builder () in
  let b_zero_adv = Series.builder () in
  let b_cwnd = Series.builder () in
  let b_app = Series.builder () in
  let b_recv_extra = Series.builder () in
  (* Window value in force at a given time (last ack at or before t). *)
  let window_at =
    let arr = acks in
    fun ts ->
      let lo = ref 0 and hi = ref (Array.length arr) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if arr.(mid).Seg.ts <= ts then lo := mid + 1 else hi := mid
      done;
      if !lo = 0 then max_adv else arr.(!lo - 1).Seg.window
  in
  (* First ack index with ts > t. *)
  let ack_after =
    let arr = acks in
    fun ts ->
      let lo = ref 0 and hi = ref (Array.length arr) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if arr.(mid).Seg.ts <= ts then lo := mid + 1 else hi := mid
      done;
      !lo
  in
  let max_sent = ref 0 in
  let classify_wait ~t0 ~t1 ~out ~w =
    if t1 > t0 && out > 0 then begin
      let span = Span.v t0 t1 in
      if w = 0 then begin
        Series.add b_adv span out;
        Series.add b_zero_adv span out
      end
      else if w - out < config.bound_gap_mss * mss then
        Series.add b_adv span out
      else Series.add b_cwnd span out
    end
  in
  (* Track the running cumulative ack as we walk data packets. *)
  let ack_idx = ref 0 and cum_ack = ref 0 in
  let advance_acks_upto ts =
    while
      !ack_idx < Array.length acks && acks.(!ack_idx).Seg.ts <= ts
    do
      cum_ack := max !cum_ack acks.(!ack_idx).Seg.ack;
      incr ack_idx
    done
  in
  let first_data_ts = if ndata > 0 then Some data.(0).Conn_profile.seg.Seg.ts else None in
  (* Pre-transfer application silence: from handshake completion to the
     first data packet. *)
  (match (p.Conn_profile.syn_rtt, first_data_ts) with
  | Some srtt, Some fd ->
      let established = p.Conn_profile.start_time + srtt in
      if fd - established > config.app_limit_epsilon then
        Series.add b_app (Span.v established fd) 0
  | _ -> ());
  for i = 0 to ndata - 1 do
    let s = data.(i).Conn_profile.seg in
    advance_acks_upto s.Seg.ts;
    max_sent := max !max_sent (Seg.seq_end s);
    let sent_i = !max_sent in
    let out_i = max 0 (sent_i - !cum_ack) in
    let t_i = s.Seg.ts + tx_time tx_mss mss s.Seg.len in
    let t_next =
      if i + 1 < ndata then data.(i + 1).Conn_profile.seg.Seg.ts
      else Span.stop win
    in
    let is_last = i = ndata - 1 in
    (* After the final data packet the sender's silence explains nothing:
       the transfer is over on the wire.  Any remaining analysis window
       (an MCT end lagging behind, e.g. a collector draining its backlog)
       is attributed to the receiving application exactly where the
       advertised window shows unconsumed buffer, and left unattributed
       elsewhere. *)
    let attribute_tail_after_wire_end tc =
      let j = ref (ack_after tc) in
      let prev_ts = ref tc and prev_w = ref (window_at tc) in
      while !j < Array.length acks && acks.(!j).Seg.ts < t_next do
        let a = acks.(!j) in
        if a.Seg.ts > !prev_ts && !prev_w < max_adv then
          Series.add b_recv_extra (Span.v !prev_ts a.Seg.ts) !prev_w;
        prev_ts := a.Seg.ts;
        prev_w := a.Seg.window;
        incr j
      done;
      if t_next > !prev_ts && !prev_w < max_adv then
        Series.add b_recv_extra (Span.v !prev_ts t_next) !prev_w
    in
    if t_next > t_i then begin
      (* Outstanding span and clearing time within (t_i, t_next). *)
      let j = ref (ack_after s.Seg.ts) in
      let t_clear = ref None in
      let running = ref !cum_ack in
      while
        !t_clear = None
        && !j < Array.length acks
        && acks.(!j).Seg.ts < t_next
      do
        running := max !running acks.(!j).Seg.ack;
        if !running >= sent_i then t_clear := Some acks.(!j).Seg.ts;
        incr j
      done;
      (match !t_clear with
      | Some tc ->
          let tc = max tc t_i in
          Series.add b_out (Span.v s.Seg.ts (max (s.Seg.ts + 1) tc)) out_i;
          if is_last then begin
            classify_wait ~t0:t_i ~t1:tc ~out:out_i ~w:(window_at t_i);
            attribute_tail_after_wire_end tc
          end
          else if t_next - tc > config.app_limit_epsilon then begin
            let w_tail = window_at tc in
            if w_tail < mss then begin
              (* Closed-window stall: both the wait and the silence are
                 flow-control bound. *)
              classify_wait ~t0:t_i ~t1:tc ~out:out_i ~w:(window_at t_i);
              let span = Span.v tc t_next in
              Series.add b_adv span 0;
              if w_tail = 0 then Series.add b_zero_adv span 0
            end
            else
              (* The sender stayed silent after the pipe drained with the
                 window open: nothing but the application limited this
                 whole gap (the ACK wait was not on the critical path). *)
              Series.add b_app (Span.v t_i t_next) 0
          end
          else classify_wait ~t0:t_i ~t1:tc ~out:out_i ~w:(window_at t_i)
      | None ->
          (* Pipe never drained before the next transmission (or before
             the window ends: data still in flight, possibly forever —
             loss episodes cover the pathological cases). *)
          Series.add b_out (Span.v s.Seg.ts t_next) out_i;
          classify_wait ~t0:t_i ~t1:t_next ~out:out_i ~w:(window_at t_i))
    end
    else
      Series.add b_out (Span.point s.Seg.ts) out_i
  done;
  put D.Outstanding (Series.build b_out);
  put D.Send_app_limited (Series.build b_app);
  put D.Adv_bnd_out (Series.build b_adv);
  put D.Zero_adv_bnd_out (Series.build b_zero_adv);
  put D.Cwnd_bnd_out (Series.build b_cwnd);

  (* -- bandwidth-bound runs ----------------------------------------------- *)
  let b = Series.builder () in
  let run_start = ref None and run_len = ref 0 in
  let flush_run last_ts last_len =
    (match (!run_start, !run_len) with
    | Some start, n when n >= config.bandwidth_run ->
        Series.add b
          (Span.v start (last_ts + tx_time tx_mss mss last_len))
          n
    | _ -> ());
    run_start := None;
    run_len := 0
  in
  for i = 0 to ndata - 1 do
    let s = data.(i).Conn_profile.seg in
    (match !run_start with
    | None ->
        run_start := Some s.Seg.ts;
        run_len := 1
    | Some _ ->
        let prev = data.(i - 1).Conn_profile.seg in
        let expected = 2 * tx_time tx_mss mss prev.Seg.len in
        if s.Seg.ts - prev.Seg.ts <= expected then incr run_len
        else begin
          flush_run prev.Seg.ts prev.Seg.len;
          run_start := Some s.Seg.ts;
          run_len := 1
        end);
    if i = ndata - 1 then flush_run s.Seg.ts s.Seg.len
  done;
  put D.Bandwidth_bound (Series.build b);

  (* -- interpretation (sniffer location) ----------------------------------- *)
  let upstream = Tbl.find ev D.Upstream_loss in
  let downstream = Tbl.find ev D.Downstream_loss in
  (match config.sniffer_location with
  | `Near_receiver ->
      put_raw D.Send_local_loss Series.empty;
      put_raw D.Recv_local_loss downstream;
      put_raw D.Network_loss upstream
  | `Near_sender ->
      put_raw D.Send_local_loss upstream;
      put_raw D.Recv_local_loss Series.empty;
      put_raw D.Network_loss downstream);

  (* -- retransmission periods & algebra ------------------------------------ *)
  put_raw D.Retrans_period (Series.merge upstream downstream);
  let t =
    {
      config;
      profile = p;
      window = win;
      events = ev;
      span_cache = Tbl.create 16;
      customs = Tbl.create 4;
    }
  in
  let inter a b' = Span_set.inter (spans t a) (spans t b') in
  put_raw D.Small_adv_bnd_out
    (series_of_spans (inter D.Adv_bnd_out D.Small_adv_window));
  put_raw D.Large_adv_bnd_out
    (series_of_spans (inter D.Adv_bnd_out D.Large_adv_window));
  put_raw D.All_loss
    (series_of_spans
       (union_spans t [ D.Send_local_loss; D.Recv_local_loss; D.Network_loss ]));
  (* The conflict signature: loss-recovery activity while the receiver
     window is shut — "packets get constantly dropped even under low
     transmission rate".  The paper writes ZeroAdvBndOut ∩ UpstreamLoss;
     the window-bound refinement is subsumed by loss periods in this
     implementation (loss overrides window attribution), so the raw
     zero-window series is intersected with the whole retransmission
     period instead — same conflict, same drill-down value. *)
  put_raw D.Zero_ack_bug
    (series_of_spans
       (Span_set.union
          (inter D.Zero_adv_window D.Retrans_period)
          (inter D.Zero_adv_bnd_out D.Retrans_period)));
  (* Receiver-app limited: bounded by a small or zero advertised window,
     plus any post-wire drain periods with unconsumed receive buffer. *)
  let recv_app =
    Span_set.union
      (Span_set.clip win (Series.to_span_set (Series.build b_recv_extra)))
      (Span_set.inter (spans t D.Adv_bnd_out)
         (Span_set.union (spans t D.Small_adv_window)
            (spans t D.Zero_adv_window)))
  in
  put_raw D.Recv_app_limited (series_of_spans recv_app);
  (* Invalidate cached span sets for names added after [t] was built. *)
  Tbl.reset t.span_cache;
  t
