(** The conclusive output of T-DAT (Section III-D): eight delay factors
    mapped onto three top-level groups, each quantified by its delay
    ratio over the analysis period. *)

type factor =
  | Bgp_sender_app      (** Sender group: the sending BGP process. *)
  | Tcp_cwnd            (** Sender group: congestion window. *)
  | Send_local_loss     (** Sender group: sender-local packet loss. *)
  | Bgp_receiver_app    (** Receiver group: the receiving BGP process. *)
  | Tcp_adv_window      (** Receiver group: advertised-window limit. *)
  | Recv_local_loss     (** Receiver group: receiver-local packet loss. *)
  | Bandwidth           (** Network group: path bandwidth. *)
  | Network_loss        (** Network group: in-network packet loss. *)

type group = Sender | Receiver | Network

val group_of : factor -> group
val equal_factor : factor -> factor -> bool
val equal_group : group -> group -> bool
val all_factors : factor list
val factor_name : factor -> string
val group_name : group -> string

val series_of : factor -> Series_defs.t list
(** The series whose union defines the factor. *)

type result = {
  ratios : (factor * float) list;  (** The raw 8-vector [V]. *)
  group_ratios : (group * float) list;  (** The compact 3-vector [G]. *)
  major : group list;  (** Groups above the majority threshold. *)
  major_factors : factor list;  (** Factors above the threshold. *)
  dominant : factor option;  (** Highest-ratio factor, if any ratio > 0. *)
  dominant_group : group option;
  analysis_period : Tdat_timerange.Time_us.t;
}

val compute : ?major_threshold:float -> Series_gen.t -> result
(** [major_threshold] defaults to 0.3, the paper's engineering choice
    (robust between 0.3 and 0.5). *)

val pp : Format.formatter -> result -> unit
