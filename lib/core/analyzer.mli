(** The full T-DAT pipeline (Fig. 10): pre-process → ACK-shift → series
    generation → delay factors → problem detectors.

    This is the main entry point of the library: give it a bidirectional
    packet trace of one BGP session and it explains where the table
    transfer's time went. *)

type problems = {
  timer : Detect_timer.result option;
  consecutive_losses : Detect_loss.result;
  peer_group_suspects : Detect_peer_group.suspect list;
  zero_ack_bug : Detect_zero_ack.result option;
}

type t = {
  profile : Conn_profile.t;    (** Pre-shift profile. *)
  shifted : Conn_profile.t;    (** After sniffer-location accommodation. *)
  shifts : Ack_shift.flight_shift list;
  transfer : Transfer_id.t option;
  series : Series_gen.t;       (** Generated over the transfer window. *)
  factors : Factors.result;
  problems : problems;
  audit : Tdat_audit.Diag.t list;
      (** Invariant-audit findings; empty unless [analyze ~audit:true]
          was requested (and empty then too on a healthy analysis). *)
  timings : (string * float) list;
      (** Wall-clock seconds per pipeline stage, in execution order
          (conn-profile, ack-shift, transfer-id, series-gen, factors,
          the four detectors).  Collected when the run is {e
          instrumented} — auditing, or the [Tdat_obs] tracer/metrics
          enabled — and empty otherwise, so an uninstrumented analysis
          never reads the clock. *)
  total_s : float;
      (** Wall-clock seconds for the whole stage pipeline (the span the
          stage durations must sum within — audit rule A006); [0.] when
          uninstrumented. *)
}

val analyze :
  ?config:Series_gen.config ->
  ?major_threshold:float ->
  ?mct:Tdat_bgp.Mct.config ->
  ?mrt:Tdat_bgp.Mrt.record list ->
  ?skip_shift:bool ->
  ?audit:bool ->
  Tdat_pkt.Trace.t ->
  flow:Tdat_pkt.Flow.t ->
  t
(** [analyze trace ~flow] runs the pipeline.  The analysis window is the
    identified table transfer when one is found, else the whole
    connection.  [skip_shift] (default false) bypasses ACK shifting — the
    right setting for sender-side traces, and a no-op there anyway.
    [audit] (default false) additionally runs every {!Tdat_audit.Checks}
    validator over the pipeline's intermediate state — span-set
    canonicality, input monotonicity and seq/ack sanity, ACK-shift
    conservation, factor accounting, stage-timing accounting (A006) —
    and records the findings in the [audit] field.

    Every stage runs under a [Tdat_obs.Span] (emitted to the Chrome
    tracer when enabled) and feeds per-stage duration histograms into
    the [Tdat_obs.Metrics] default registry when metrics collection is
    on. *)

val analyze_all :
  ?config:Series_gen.config ->
  ?major_threshold:float ->
  ?mct:Tdat_bgp.Mct.config ->
  ?mrt:Tdat_bgp.Mrt.record list ->
  ?audit:bool ->
  ?jobs:int ->
  Tdat_pkt.Trace.t ->
  (Tdat_pkt.Flow.t * t) list
(** Extract every connection in the trace in one pass
    ({!Tdat_pkt.Trace.partition_connections}), orient each by byte
    volume over its own packets, and analyze it.  Connections are
    analyzed on [jobs] domains (default
    [Domain.recommended_domain_count ()]; [1] = fully sequential, no
    domains spawned).  The result is deterministic and identical for
    every [jobs] value: connections stay in first-appearance order and
    each analysis is a pure function of its sub-trace. *)
