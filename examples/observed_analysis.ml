(* Observability walkthrough: run the analyzer with every collector on —
   structured logs, the metrics registry, and the Chrome tracer — and
   show what each one captured.

     dune exec examples/observed_analysis.exe

   The same data is available from the command line without writing any
   code:

     tdat analyze TRACE.pcap --metrics metrics.json --trace trace.json \
       --log-level info

   and trace.json loads directly in chrome://tracing or
   https://ui.perfetto.dev. *)

module Obs = Tdat_obs.Metrics

let () =
  (* 1. Logs: per-level filtering with structured key=value context.
     The closure only runs when the level is enabled, so debug calls on
     hot paths cost nothing in production. *)
  Tdat_obs.Log.set_level (Some Tdat_obs.Log.Info);
  Tdat_obs.Log.info (fun m ->
      m ~kv:[ ("routers", "3"); ("prefixes", "2000") ] "simulating fleet");

  (* 2. A three-router fleet merged into one capture, like a monitoring
     session at a route collector. *)
  let outcomes =
    List.init 3 (fun i ->
        let router =
          Tdat_bgpsim.Scenario.router ~table_prefixes:2000
            ~timer_interval:200_000 ~quota:8 (i + 1)
        in
        let result = Tdat_bgpsim.Scenario.run ~seed:(7 + i) [ router ] in
        List.hd result.Tdat_bgpsim.Scenario.outcomes)
  in
  let trace =
    Tdat_pkt.Trace.of_segments
      (List.concat_map
         (fun o -> Tdat_pkt.Trace.segments o.Tdat_bgpsim.Scenario.trace)
         outcomes)
  in

  (* 3. Turn both collectors on.  Until this point (and for any run that
     never does this) every instrument in the analyzer, readers, pool
     and simulator was a single atomic load per event. *)
  Obs.set_enabled Obs.default true;
  Tdat_obs.Tracer.set_enabled true;

  let results = Tdat.Analyzer.analyze_all ~jobs:2 trace in

  Obs.set_enabled Obs.default false;
  Tdat_obs.Tracer.set_enabled false;

  (* 4. Per-stage wall-clock accounting, straight off the analysis
     record (`tdat check` prints the same table). *)
  (match results with
  | (flow, a) :: _ ->
      Format.printf "first connection %a:@." Tdat_pkt.Flow.pp flow;
      print_string (Tdat.Report.stage_timing_table a)
  | [] -> print_endline "no connections found");

  (* 5. The metrics snapshot: a "stable" section that is byte-identical
     whatever --jobs value produced it, and a "volatile" one with the
     wall-clock data (per-stage histograms, pool utilization). *)
  let snapshot = Obs.snapshot_json Obs.default in
  Printf.printf "\nmetrics snapshot: %d bytes of JSON\n"
    (String.length snapshot);
  (match Obs.find_counter Obs.default "analyzer.connections" with
  | Some c ->
      Printf.printf "analyzer.connections = %d\n" (Obs.Counter.value c)
  | None -> ());
  (match Obs.find_counter Obs.default "pool.jobs_completed" with
  | Some c ->
      Printf.printf "pool.jobs_completed  = %d\n" (Obs.Counter.value c)
  | None -> ());

  (* 6. The Chrome trace: one begin/end pair per pipeline stage per
     connection, tagged with the worker domain that ran it. *)
  let out = Filename.temp_file "tdat_demo" ".trace.json" in
  Tdat_obs.Tracer.write out;
  Printf.printf
    "\nwrote %s (%d span events, balanced: %b)\n\
     load it in chrome://tracing or https://ui.perfetto.dev\n"
    out
    (List.length (Tdat_obs.Tracer.events ()))
    (Tdat_obs.Tracer.balanced ());
  Tdat_obs.Tracer.clear ()
