(* tdat-lint: repo-specific static analysis for the T-DAT code base.

   Parses every [.ml] under the given files/directories with compiler-libs
   and reports typed diagnostics for anti-patterns that have historically
   corrupted event-series bookkeeping (see DESIGN.md, "Static analysis &
   auditing"):

     L001  polymorphic [compare] (bare or [Stdlib.compare]) — order must
           come from the value's own module ([Int.compare],
           [Time_us.compare], [Span.compare], ...);
     L002  polymorphic [=] / [<>] where an operand is an abstract
           timestamp/ID/flow value (a constant or constructor qualified
           with a fenced module such as [Time_us] or [Factors]) — use the
           module's [equal];
     L003  [=] / [<>] against a float literal — float equality is almost
           never what a delay-ratio computation wants; compare with a
           tolerance or [Float.equal] deliberately;
     L004  a catch-all [_] branch in a [match] over the 8-factor delay
           taxonomy ([Factors.factor] / [Factors.group]) — the taxonomy
           must stay exhaustive so a new factor cannot be silently
           mis-attributed;
     L005  bare [failwith] in library code ([lib/]) — raise a typed
           exception ([Bgp_error.Decode_error], [Invalid_argument], ...)
           so callers can match on it;
     L006  direct stderr printing ([Printf.eprintf], [Format.eprintf],
           [prerr_endline], ...) in library code ([lib/]) — route
           diagnostics through [Tdat_obs.Log] so [--log-level] filters
           them uniformly and every line carries structured key=value
           pairs ([Tdat_obs] itself emits via [output_string] and stays
           clean by construction).

   The lint is purely syntactic (untyped parsetree): it fences on literal
   module names, so a module alias can evade L002 — the audit layer
   ([Tdat_audit]) backstops what escapes here at run time.  Exit status is
   the number of files with findings capped at 1, i.e. non-zero iff any
   diagnostic was produced. *)

(* The measurement-study layer (lib/study) adds [Transfer] (detected
   table transfers, ordered by [Transfer.compare]) and [Mrt] (archive
   records and FSM states, [Mrt.equal_fsm_state]) to the fence. *)
let fenced_modules =
  [
    "Time_us"; "Span"; "Span_set"; "Series"; "Transfer_id"; "Flow";
    "Endpoint"; "Prefix"; "As_path"; "Attr"; "Factors"; "Series_defs";
    "Transfer"; "Mrt";
  ]

(* Factor-taxonomy constructors counted as evidence that a [match] scrutinizes
   [Factors.factor].  The three [*_local_loss] / [Network_loss] names are
   shared with [Series_defs.t], where a catch-all over the 34 series is
   legitimate, so only the unambiguous five count when unqualified; any
   constructor qualified with [Factors] counts. *)
let factor_constructors_unambiguous =
  [ "Bgp_sender_app"; "Tcp_cwnd"; "Bgp_receiver_app"; "Tcp_adv_window";
    "Bandwidth" ]

type finding = {
  file : string;
  line : int;
  col : int;
  code : string;
  message : string;
}

let findings : finding list ref = ref []

let report ~loc ~code message =
  let p = loc.Location.loc_start in
  findings :=
    {
      file = p.Lexing.pos_fname;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      code;
      message;
    }
    :: !findings

(* --- Longident helpers ---------------------------------------------------- *)

let rec last_module = function
  | Longident.Lident _ -> None
  | Longident.Ldot (Longident.Lident m, _) -> Some m
  | Longident.Ldot (p, _) -> (
      match p with
      | Longident.Ldot (_, m) -> Some m
      | _ -> last_module p)
  | Longident.Lapply (_, p) -> last_module p

let qualified_with_fenced lid =
  match last_module lid with
  | Some m -> List.mem m fenced_modules
  | None -> false

let ident_name = function
  | Longident.Lident n | Longident.Ldot (_, n) -> Some n
  | Longident.Lapply _ -> None

(* --- Rule L001: polymorphic compare -------------------------------------- *)

let is_poly_compare local_compare lid =
  match lid with
  | Longident.Lident "compare" -> not local_compare
  | Longident.Ldot (Longident.Lident "Stdlib", "compare") -> true
  | _ -> false

(* --- Rule L006: direct stderr printing in library code -------------------- *)

let is_stderr_print lid =
  match lid with
  | Longident.Lident ("prerr_endline" | "prerr_string" | "prerr_newline")
  | Longident.Ldot
      ( Longident.Lident "Stdlib",
        ("prerr_endline" | "prerr_string" | "prerr_newline") ) ->
      true
  | _ -> (
      match (last_module lid, ident_name lid) with
      | Some ("Printf" | "Format"), Some "eprintf" -> true
      | _ -> false)

(* --- Rule L002: polymorphic equality on fenced abstract values ------------ *)

(* An operand counts as "abstract" when it is, or directly wraps, a value or
   constructor qualified with a fenced module: [Time_us.zero],
   [Factors.Tcp_cwnd], [Some Factors.Sender]. *)
let rec fenced_operand (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> qualified_with_fenced txt
  | Pexp_construct ({ txt; _ }, arg) ->
      qualified_with_fenced txt
      || (match arg with Some a -> fenced_operand a | None -> false)
  | _ -> false

let rec fenced_operand_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } when qualified_with_fenced txt ->
      Option.value (last_module txt) ~default:"the module"
  | Pexp_construct ({ txt; _ }, arg) -> (
      if qualified_with_fenced txt then
        Option.value (last_module txt) ~default:"the module"
      else
        match arg with
        | Some a -> fenced_operand_name a
        | None -> "the module")
  | _ -> "the module"

(* --- Rule L003: float-literal equality ------------------------------------ *)

let is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* --- Rule L004: catch-all over the factor taxonomy ------------------------ *)

let rec pattern_constructors (p : Parsetree.pattern) acc =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      let acc =
        match ident_name txt with
        | Some n ->
            let qualified_factors =
              match last_module txt with Some "Factors" -> true | _ -> false
            in
            if qualified_factors || List.mem n factor_constructors_unambiguous
            then n :: acc
            else acc
        | None -> acc
      in
      (match arg with Some (_, a) -> pattern_constructors a acc | None -> acc)
  | Ppat_or (a, b) -> pattern_constructors a (pattern_constructors b acc)
  | Ppat_alias (a, _) -> pattern_constructors a acc
  | Ppat_tuple ps -> List.fold_left (fun acc p -> pattern_constructors p acc) acc ps
  | Ppat_constraint (a, _) -> pattern_constructors a acc
  | _ -> acc

let rec is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (a, _) | Ppat_constraint (a, _) -> is_catch_all a
  | _ -> false

let check_factor_match cases =
  let evidence =
    List.concat_map
      (fun (c : Parsetree.case) -> pattern_constructors c.pc_lhs [])
      cases
  in
  if evidence <> [] then
    List.iter
      (fun (c : Parsetree.case) ->
        if is_catch_all c.pc_lhs then
          report ~loc:c.pc_lhs.ppat_loc ~code:"L004"
            (Printf.sprintf
               "catch-all branch in a match over the delay-factor taxonomy \
                (saw %s); enumerate every Factors constructor so new \
                factors cannot be silently mis-attributed"
               (String.concat ", " (List.sort_uniq String.compare evidence))))
      cases

(* --- File scan ------------------------------------------------------------ *)

let toplevel_value_names (str : Parsetree.structure) =
  let names = ref [] in
  let rec pat_names (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> names := txt :: !names
    | Ppat_alias (a, { txt; _ }) ->
        names := txt :: !names;
        pat_names a
    | Ppat_tuple ps -> List.iter pat_names ps
    | Ppat_constraint (a, _) -> pat_names a
    | _ -> ()
  in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter (fun (vb : Parsetree.value_binding) -> pat_names vb.pvb_pat) vbs
      | _ -> ())
    str;
  !names

let check_structure ~in_lib str =
  let local_compare = List.mem "compare" (toplevel_value_names str) in
  let super = Ast_iterator.default_iterator in
  let expr iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } when is_poly_compare local_compare txt ->
        report ~loc ~code:"L001"
          "polymorphic compare; use the value's own ordering \
           (Int.compare, Time_us.compare, Span.compare, ...)"
    | Pexp_ident { txt = Longident.Lident "failwith"; loc } when in_lib ->
        report ~loc ~code:"L005"
          "bare failwith in library code; raise a typed exception \
           (e.g. Bgp_error.Decode_error) so callers can match on it"
    | Pexp_ident
        { txt = Longident.Ldot (Longident.Lident "Stdlib", "failwith"); loc }
      when in_lib ->
        report ~loc ~code:"L005"
          "bare failwith in library code; raise a typed exception \
           (e.g. Bgp_error.Decode_error) so callers can match on it"
    | Pexp_ident { txt; loc } when in_lib && is_stderr_print txt ->
        report ~loc ~code:"L006"
          "direct stderr printing in library code; route diagnostics \
           through Tdat_obs.Log (warn/info/debug) so --log-level \
           filters them uniformly"
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ };
            pexp_loc = oploc;
            _ },
          [ (_, lhs); (_, rhs) ] ) ->
        if is_float_literal lhs || is_float_literal rhs then
          report ~loc:oploc ~code:"L003"
            (Printf.sprintf
               "float (%s) against a literal; compare with a tolerance or \
                use Float.equal deliberately"
               op)
        else if fenced_operand lhs || fenced_operand rhs then
          let m =
            if fenced_operand lhs then fenced_operand_name lhs
            else fenced_operand_name rhs
          in
          report ~loc:oploc ~code:"L002"
            (Printf.sprintf
               "polymorphic (%s) on an abstract %s value; use %s.equal (or \
                a dedicated equal_* function)"
               op m m)
    | Pexp_match (_, cases) -> check_factor_match cases
    | Pexp_function cases -> check_factor_match cases
    | _ -> ());
    super.expr iter e
  in
  let iter = { super with expr } in
  iter.structure iter str

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let lint_file ~treat_as_lib path =
  let in_lib =
    treat_as_lib
    || String.length path >= 4
       && (String.sub path 0 4 = "lib/" || String.length path > 5
           && String.sub path 0 5 = "./lib")
  in
  match parse_file path with
  | str -> check_structure ~in_lib str
  | exception exn ->
      let message =
        match exn with
        | Syntaxerr.Error _ -> "syntax error: file does not parse"
        | e -> Printexc.to_string e
      in
      findings :=
        { file = path; line = 1; col = 0; code = "L000"; message } :: !findings

(* --- Directory walk ------------------------------------------------------- *)

let rec ml_files_under path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else ml_files_under (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let treat_as_lib = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--treat-as-lib",
        Arg.Set treat_as_lib,
        " apply library-only rules (L005) to every given file" );
    ]
  in
  let usage = "tdat_lint [--treat-as-lib] FILE_OR_DIR..." in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let roots = if !roots = [] then [ "lib"; "bin"; "bench"; "examples" ] else List.rev !roots in
  let files =
    List.concat_map
      (fun r -> if Sys.file_exists r then List.rev (ml_files_under r []) else [])
      roots
  in
  List.iter (lint_file ~treat_as_lib:!treat_as_lib) files;
  let all =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !findings
  in
  List.iter
    (fun f ->
      Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.code f.message)
    all;
  if all = [] then (
    Printf.eprintf "tdat-lint: %d files clean\n%!" (List.length files);
    exit 0)
  else (
    Printf.eprintf "tdat-lint: %d finding(s) in %d file(s)\n%!"
      (List.length all)
      (List.length (List.sort_uniq String.compare (List.map (fun f -> f.file) all)));
    exit 1)
