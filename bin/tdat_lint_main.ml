(* tdat-lint: the thin CLI over Tdat_lint.Engine.  All rule logic lives
   in lib/lint; this shell only parses flags, picks an emitter and maps
   the outcome to an exit code (0 clean, 1 findings, 2 usage error). *)

open Cmdliner
module L = Tdat_lint

let treat_as_lib_arg =
  let doc =
    "Apply the library-only rules (L005-L007) to every given file, not just \
     those under a lib/ directory.  Used by the test fixtures."
  in
  Arg.(value & flag & info [ "treat-as-lib" ] ~doc)

let format_arg =
  let doc = "Output format: $(b,text), $(b,json) or $(b,sarif) (2.1.0)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let rules_arg =
  let doc =
    "Adjust the enabled rule set with comma-separated clauses applied left \
     to right: $(b,+L007) enables, $(b,-L003) disables, a bare id enables.  \
     Starts from the default set (every rule)."
  in
  Arg.(value & opt string "" & info [ "rules" ] ~docv:"SPEC" ~doc)

let jobs_arg =
  let doc =
    "Scan files on $(docv) domains (default: the runtime's recommended \
     domain count).  Output is byte-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let hot_arg =
  let doc =
    "Add a hot path for L009: $(b,MOD) makes every top-level binding of \
     module MOD hot, $(b,MOD.FN) just the named binding.  Repeatable; \
     extends the built-in pcap/MRT/Span_set/Trace set."
  in
  Arg.(value & opt_all string [] & info [ "hot" ] ~docv:"MOD[.FN]" ~doc)

let paths_arg =
  let doc = "Files or directories to lint (default: lib bin bench examples)." in
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)

(* Merge repeated --hot values: a bare module wins over any of its
   function entries; function entries for one module accumulate. *)
let parse_hots specs =
  List.fold_left
    (fun acc spec ->
      let modname, scope =
        match String.index_opt spec '.' with
        | None -> (spec, L.Rules_file.All)
        | Some i ->
            ( String.sub spec 0 i,
              L.Rules_file.Funcs
                [ String.sub spec (i + 1) (String.length spec - i - 1) ] )
      in
      let modname = String.capitalize_ascii modname in
      match (List.assoc_opt modname acc, scope) with
      | None, s -> acc @ [ (modname, s) ]
      | Some L.Rules_file.All, _ -> acc
      | Some (L.Rules_file.Funcs _), L.Rules_file.All ->
          (modname, L.Rules_file.All) :: List.remove_assoc modname acc
      | Some (L.Rules_file.Funcs old), L.Rules_file.Funcs add ->
          (modname, L.Rules_file.Funcs (old @ add))
          :: List.remove_assoc modname acc)
    [] specs

let main treat_as_lib format rules jobs hots paths =
  match L.Registry.apply_spec rules with
  | Error msg ->
      Printf.eprintf "tdat-lint: %s\n%!" msg;
      2
  | Ok selection ->
      let roots =
        match paths with [] -> L.Engine.default_config.roots | ps -> ps
      in
      let cfg =
        {
          L.Engine.roots;
          treat_as_lib;
          jobs;
          selection;
          extra_hot = parse_hots hots;
        }
      in
      let { L.Engine.findings; files_scanned } = L.Engine.run cfg in
      print_string
        (match format with
        | `Text -> L.Emit.text findings
        | `Json -> L.Emit.json ~files_scanned findings
        | `Sarif -> L.Emit.sarif findings);
      if findings = [] then (
        Printf.eprintf "tdat-lint: %d files clean\n%!" files_scanned;
        0)
      else (
        Printf.eprintf "tdat-lint: %d finding(s) in %d file(s)\n%!"
          (List.length findings)
          (List.length
             (List.sort_uniq String.compare
                (List.map (fun (f : L.Finding.t) -> f.file) findings)));
        1)

let cmd =
  let doc = "static analysis for the tdat repository" in
  let info = Cmd.info "tdat-lint" ~doc in
  Cmd.v info
    Term.(
      const main $ treat_as_lib_arg $ format_arg $ rules_arg $ jobs_arg
      $ hot_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
