(* pcap2bgp: reconstruct the TCP byte stream from a packet trace, extract
   the BGP messages, and archive them as MRT records — the side tool of
   Section II-A, used for Vendor collectors that keep no archive. *)

open Cmdliner

(* Report the fault-tolerant reader's findings; [false] when the file is
   not a usable pcap at all (error-severity diagnostics). *)
let report_capture (r : Tdat_pkt.Pcap.result) =
  let open Tdat_pkt.Pcap in
  List.iter
    (fun (d : Diag.t) ->
      match d.Diag.severity with
      | Diag.Error | Diag.Warning ->
          Format.eprintf "pcap2bgp: pcap: %a@." Diag.pp d
      | Diag.Info -> ())
    r.diags;
  if r.diags <> [] then
    Format.eprintf
      "pcap2bgp: pcap: salvaged %d segment(s) from %d record(s) (%d skipped, \
       %d snaplen-clipped)@."
      r.stats.decoded r.stats.records r.stats.skipped r.stats.clipped;
  not (List.exists Diag.is_error r.diags)

let extract trace (stats : Tdat_pkt.Pcap.stats) connections out_path peer_as
    local_as =
  let per_conn =
    List.map
      (fun key ->
        let flow = Tdat_pkt.Trace.infer_sender trace key in
        let sub =
          Tdat_pkt.Trace.split_connection trace
            ~sender:flow.Tdat_pkt.Flow.sender
            ~receiver:flow.Tdat_pkt.Flow.receiver
        in
        let msgs =
          Tdat_bgp.Msg_reader.extract_from_trace sub ~flow
          |> List.map (fun (m : Tdat_bgp.Msg_reader.timed_msg) ->
                 {
                   Tdat_bgp.Mrt.ts = m.Tdat_bgp.Msg_reader.ts;
                   peer_as;
                   local_as;
                   peer_ip = flow.Tdat_pkt.Flow.sender.Tdat_pkt.Endpoint.ip;
                   local_ip = flow.Tdat_pkt.Flow.receiver.Tdat_pkt.Endpoint.ip;
                   msg = m.Tdat_bgp.Msg_reader.msg;
                 })
        in
        (flow, msgs))
      connections
  in
  (* A connection that yields no messages on a salvaged capture is worth
     flagging: snaplen clipping zero-fills payload tails, and extraction
     stops at the first byte that no longer parses as BGP. *)
  List.iter
    (fun (flow, msgs) ->
      Format.printf "%a: %d message(s)%s@." Tdat_pkt.Flow.pp flow
        (List.length msgs)
        (if msgs = [] && stats.Tdat_pkt.Pcap.clipped > 0 then
           " (none decodable; capture was snaplen-clipped)"
         else ""))
    per_conn;
  let records =
    List.sort (fun a b ->
        Tdat_timerange.Time_us.compare a.Tdat_bgp.Mrt.ts b.Tdat_bgp.Mrt.ts)
      (List.concat_map snd per_conn)
  in
  Tdat_bgp.Mrt.to_file out_path records;
  Printf.printf
    "%d BGP messages from %d connection(s) -> %s (salvaged %d/%d pcap \
     record(s): %d skipped, %d snaplen-clipped)\n"
    (List.length records) (List.length connections) out_path
    stats.Tdat_pkt.Pcap.decoded stats.Tdat_pkt.Pcap.records
    stats.Tdat_pkt.Pcap.skipped stats.Tdat_pkt.Pcap.clipped;
  0

let convert obs pcap_path out_path peer_as local_as strict =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  match Tdat_pkt.Pcap.read_file ~strict pcap_path with
  | exception Tdat_pkt.Pcap.Decode_error msg ->
      Printf.eprintf "pcap2bgp: %s\n" msg;
      2
  | r ->
      if not (report_capture r) then 2
      else begin
        let trace = r.Tdat_pkt.Pcap.trace in
        let connections = Tdat_pkt.Trace.connections trace in
        if connections = [] then begin
          prerr_endline "no TCP connections found";
          1
        end
        else
          extract trace r.Tdat_pkt.Pcap.stats connections out_path peer_as
            local_as
      end

let pcap_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"TRACE.pcap" ~doc:"Input packet trace.")

let out_arg =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"OUT.mrt" ~doc:"Output MRT archive.")

let peer_as_arg =
  Arg.(value & opt int 64500
       & info [ "peer-as" ] ~doc:"Peer AS recorded in the MRT headers.")

let local_as_arg =
  Arg.(value & opt int 65000
       & info [ "local-as" ] ~doc:"Local AS recorded in the MRT headers.")

let strict_arg =
  let doc =
    "Fail (exit 2) on the first malformed pcap structure instead of \
     salvaging the decodable records with $(b,P0xx) warnings."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let cmd =
  let doc = "extract BGP messages from a TCP packet trace into MRT" in
  Cmd.v
    (Cmd.info "pcap2bgp" ~version:"1.0.0" ~doc)
    Term.(
      const convert $ Tdat_obs_cli.term $ pcap_arg $ out_arg $ peer_as_arg
      $ local_as_arg $ strict_arg)

let () = exit (Cmd.eval' cmd)
