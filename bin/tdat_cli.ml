(* The T-DAT command line: analyze the BGP sessions in a pcap file and
   explain where each table transfer's time went, audit the pipeline's
   own invariants over a trace (`tdat check`), or mine longitudinal MRT
   archives for table transfers (`tdat study`, the paper's Section-2
   measurement study). *)

open Cmdliner

(* Report what the fault-tolerant reader had to do: warnings and errors
   individually, plus a one-line salvage summary.  Errors (the file is
   not a usable pcap at all) abort with a user-error exit. *)
let report_capture r =
  let open Tdat_pkt.Pcap in
  let problems =
    List.filter
      (fun (d : Diag.t) ->
        match d.Diag.severity with
        | Diag.Error | Diag.Warning -> true
        | Diag.Info -> false)
      r.diags
  in
  List.iter (fun d -> Format.eprintf "tdat: pcap: %a@." Diag.pp d) problems;
  if r.diags <> [] then
    Format.eprintf
      "tdat: pcap: salvaged %d segment(s) from %d record(s) (%d skipped, %d \
       snaplen-clipped)@."
      r.stats.decoded r.stats.records r.stats.skipped r.stats.clipped;
  not (List.exists Diag.is_error r.diags)

(* MRT archive problems mirror the pcap ones: warnings individually,
   then a one-line salvage summary. *)
let report_archive path (r : Tdat_bgp.Mrt.result) =
  let open Tdat_bgp.Mrt in
  List.iter
    (fun (d : Diag.t) ->
      match d.Diag.severity with
      | Diag.Error | Diag.Warning ->
          Format.eprintf "tdat: mrt: %a@." Diag.pp d
      | Diag.Info -> ())
    r.diags;
  if r.diags <> [] then
    Format.eprintf
      "tdat: mrt: %s: salvaged %d record(s) (%d messages, %d state changes, \
       %d skipped)@."
      path r.stats.records r.stats.bgp_messages r.stats.state_changes
      r.stats.skipped

let load ~strict pcap_path mrt_path sender_side =
  let r = Tdat_pkt.Pcap.read_file ~strict pcap_path in
  if not (report_capture r) then None
  else begin
    let mrt_result =
      Option.map
        (fun path ->
          let mr = Tdat_bgp.Mrt.read_file ~strict path in
          report_archive path mr;
          (path, mr))
        mrt_path
    in
    let config =
      if sender_side then
        { Tdat.Series_gen.default_config with sniffer_location = `Near_sender }
      else Tdat.Series_gen.default_config
    in
    Some (r, mrt_result, config)
  end

let mrt_records mrt_result =
  Option.map
    (fun (_, (mr : Tdat_bgp.Mrt.result)) ->
      Tdat_bgp.Mrt.messages mr.Tdat_bgp.Mrt.entries)
    mrt_result

(* Malformed input is a user error (exit 2), not an internal error. *)
let with_decode_errors f =
  match f () with
  | status -> status
  | exception Tdat_pkt.Pcap.Decode_error msg ->
      Printf.eprintf "tdat: %s\n" msg;
      2
  | exception Tdat_bgp.Bgp_error.Decode_error { context; message } ->
      Printf.eprintf "tdat: %s: %s\n" context message;
      2

let analyze_file obs pcap_path mrt_path show_series sender_side jobs strict =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  with_decode_errors @@ fun () ->
  match load ~strict pcap_path mrt_path sender_side with
  | None -> 2
  | Some (r, mrt_result, config) ->
      let results =
        Tdat.Analyzer.analyze_all ~config
          ?mrt:(mrt_records mrt_result)
          ~jobs r.Tdat_pkt.Pcap.trace
      in
      if results = [] then prerr_endline "no TCP connections found in trace";
      (* The same renderer a serve daemon answers with, so `tdat
         analyze` and a serve analyze response are byte-identical. *)
      print_string (Tdat_serve.Render.analysis ~series:show_series results);
      0

(* A007: analyze the same trace at jobs=1 (reference) and jobs>1
   (candidate) with metrics on, and byte-compare the stable snapshot
   sections — the runtime backstop for lint rule L007. *)
let verify_determinism_diags ~config ~mrt ~jobs trace =
  let reg = Tdat_obs.Metrics.default in
  let was_enabled = Tdat_obs.Metrics.enabled reg in
  Tdat_obs.Metrics.set_enabled reg true;
  let snapshot jobs =
    Tdat_obs.Metrics.reset reg;
    ignore (Tdat.Analyzer.analyze_all ~config ?mrt ~audit:false ~jobs trace);
    Tdat_obs.Metrics.snapshot_json ~stable_only:true reg
  in
  let reference = snapshot 1 in
  let candidate = snapshot (if jobs > 1 then jobs else 2) in
  Tdat_obs.Metrics.set_enabled reg was_enabled;
  Tdat_audit.Checks.stable_snapshots_equal ~reference ~candidate ()

let check_file obs pcap_path mrt_path sender_side jobs strict verify_det =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  with_decode_errors @@ fun () ->
  match load ~strict pcap_path mrt_path sender_side with
  | None -> 2
  | Some (r, mrt_result, config) ->
      let ingest =
        Tdat_audit.Ingest.of_result r
        @ (match mrt_result with
          | Some (path, mr) ->
              Tdat_audit.Ingest.of_mrt_diags ~file:path mr.Tdat_bgp.Mrt.diags
          | None -> [])
      in
      Format.printf "capture: %s@."
        (if ingest = [] then "ok"
         else Printf.sprintf "%d finding(s)" (List.length ingest));
      if ingest <> [] then
        Format.printf "%a@." Tdat_audit.Diag.pp_report ingest;
      let results =
        Tdat.Analyzer.analyze_all ~config
          ?mrt:(mrt_records mrt_result)
          ~audit:true ~jobs r.Tdat_pkt.Pcap.trace
      in
      if results = [] then prerr_endline "no TCP connections found in trace";
      let failed =
        List.fold_left
          (fun failed (flow, a) ->
            let diags = a.Tdat.Analyzer.audit in
            Format.printf "%a: %s@." Tdat_pkt.Flow.pp flow
              (if diags = [] then "ok"
               else
                 Printf.sprintf "%d finding(s)" (List.length diags));
            if diags <> [] then
              Format.printf "%a@." Tdat_audit.Diag.pp_report diags;
            print_string (Tdat.Report.stage_timing_table a);
            failed || Tdat_audit.Diag.errors diags <> [])
          (Tdat_audit.Diag.errors ingest <> [])
          results
      in
      (* The tracer's own invariant: every span opened by the analysis
         must have closed (the A006 counterpart for the trace stream). *)
      let failed =
        if Tdat_obs.Tracer.enabled () && not (Tdat_obs.Tracer.balanced ())
        then begin
          Format.printf "trace: unbalanced span events@.";
          true
        end
        else failed
      in
      let failed =
        if not verify_det then failed
        else begin
          let diags =
            verify_determinism_diags ~config
              ~mrt:(mrt_records mrt_result)
              ~jobs r.Tdat_pkt.Pcap.trace
          in
          Format.printf "determinism: %s@."
            (if diags = [] then
               "ok (stable metric snapshots identical across --jobs)"
             else Printf.sprintf "%d finding(s)" (List.length diags));
          if diags <> [] then
            Format.printf "%a@." Tdat_audit.Diag.pp_report diags;
          failed || Tdat_audit.Diag.errors diags <> []
        end
      in
      if failed then 1 else 0

let study_files obs paths jobs strict gap_s min_prefixes slow_threshold_s json
    no_plot =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  with_decode_errors @@ fun () ->
  let config =
    {
      Tdat_study.Detect.quiet_gap = Tdat_timerange.Time_us.of_s gap_s;
      min_prefixes;
    }
  in
  let report =
    Tdat_study.Aggregate.run ~jobs ~strict ~config ?slow_threshold_s paths
  in
  if json then print_endline (Tdat_study.Report.to_json report)
  else print_string (Tdat_study.Report.to_text ~plot:(not no_plot) report);
  0

let pcap_arg =
  let doc = "Packet trace to analyze (libpcap format, Ethernet/IPv4/TCP)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.pcap" ~doc)

let mrt_arg =
  let doc =
    "Optional MRT archive (BGP4MP) from the collector; when present it \
     drives the MCT transfer-end estimation instead of in-trace \
     reconstruction."
  in
  Arg.(value & opt (some file) None & info [ "mrt" ] ~docv:"ARCHIVE.mrt" ~doc)

let series_arg =
  let doc = "Also print the square-wave event-series timeline (Fig. 11)." in
  Arg.(value & flag & info [ "series" ] ~doc)

let sender_side_arg =
  let doc =
    "The sniffer was located at the sender side (loss locality is \
     interpreted accordingly and ACK shifting becomes a no-op)."
  in
  Arg.(value & flag & info [ "sender-side" ] ~doc)

let jobs_arg =
  let doc =
    "Analyze connections on $(docv) worker domains (default: the \
     core count the runtime recommends; 1 = fully sequential).  The \
     output is identical for every value."
  in
  Arg.(
    value
    & opt int (Tdat_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let strict_arg =
  let doc =
    "Fail (exit 2) on the first malformed pcap structure instead of \
     salvaging the decodable records with $(b,P0xx) warnings.  See \
     DESIGN.md, \"Ingestion robustness\"."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let clamp_jobs n = if n < 1 then 1 else n

let analyze_term =
  Term.(
    const (fun obs p m s side j strict ->
        analyze_file obs p m s side (clamp_jobs j) strict)
    $ Tdat_obs_cli.term $ pcap_arg $ mrt_arg $ series_arg $ sender_side_arg
    $ jobs_arg $ strict_arg)

let analyze_cmd =
  let doc = "Explain where each table transfer's time went (default)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads a bidirectional packet trace, identifies the BGP table \
         transfer on every TCP connection, rewrites the trace to \
         approximate the sender-side view, generates the 34 event series, \
         and attributes the transfer delay to sender / receiver / network \
         factors.  Known transport problems (timer gaps, consecutive \
         losses, peer-group blocking, the zero-window ACK bug) are \
         reported when detected.";
    ]
  in
  Cmd.v (Cmd.info "analyze" ~doc ~man) analyze_term

let check_cmd =
  let doc = "Audit the pipeline's invariants over a trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the full analysis with the Tdat_audit validators enabled \
         and reports every invariant violation: non-canonical span sets \
         (A001), non-monotone traces (A002), seq/ack insanity (A003), \
         ACK-shift conservation failures (A004), out-of-range factor \
         accounting (A005) and inconsistent stage-timing accounting \
         (A006), preceded by the capture-ingestion findings (P0xx: \
         malformed records, truncation, snaplen clipping).  Each \
         connection's report ends with the per-stage wall-clock table \
         the instrumented pipeline recorded.  Exits non-zero when any \
         error-severity finding is produced.  See DESIGN.md, \"Static \
         analysis & auditing\", \"Ingestion robustness\" and \
         \"Observability\".";
    ]
  in
  let verify_determinism_arg =
    let doc =
      "Additionally run the A007 determinism audit: analyze the trace \
       once at --jobs 1 and once at max(--jobs, 2) with metrics \
       enabled, and fail unless the stable metric snapshots are \
       byte-identical — the runtime backstop for lint rule L007."
    in
    Arg.(value & flag & info [ "verify-determinism" ] ~doc)
  in
  Cmd.v
    (Cmd.info "check" ~doc ~man)
    Term.(
      const (fun obs p m side j strict vd ->
          check_file obs p m side (clamp_jobs j) strict vd)
      $ Tdat_obs_cli.term $ pcap_arg $ mrt_arg $ sender_side_arg $ jobs_arg
      $ strict_arg $ verify_determinism_arg)

let study_cmd =
  let archives_arg =
    let doc = "MRT update archives to mine (BGP4MP / BGP4MP_ET)." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"ARCHIVE.mrt" ~doc)
  in
  let gap_arg =
    let doc =
      "Quiet gap, in seconds, that ends a transfer.  The default, 200 s, \
       exceeds the usual BGP hold time so a transfer paused by peer-group \
       blocking still counts as one transfer."
    in
    Arg.(value & opt float 200. & info [ "gap" ] ~docv:"SECONDS" ~doc)
  in
  let min_prefixes_arg =
    let doc =
      "Minimum announced prefixes for a burst to count as a table transfer \
       (smaller bursts are steady-state churn)."
    in
    Arg.(value & opt int 32 & info [ "min-prefixes" ] ~docv:"N" ~doc)
  in
  let slow_arg =
    let doc =
      "Fixed slow-transfer threshold in seconds.  Default: the paper's \
       Section II-B cut, mean + 3*stddev of the observed durations."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-threshold" ] ~docv:"SECONDS" ~doc)
  in
  let json_arg =
    let doc = "Emit the report as a single JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let no_plot_arg =
    let doc = "Omit the ASCII duration-CDF plot from the text report." in
    Arg.(value & flag & info [ "no-plot" ] ~doc)
  in
  let study_strict_arg =
    let doc =
      "Fail (exit 2) on the first malformed MRT record instead of salvaging \
       the decodable records with $(b,M0xx) warnings.  See DESIGN.md, \
       \"Measurement study\"."
    in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let doc = "Mine MRT update archives for table transfers (Section 2)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Streams one or more MRT update archives (in bounded memory), \
         detects the table transfer bursts of every peer — anchored on \
         BGP4MP_STATE_CHANGE session events when the archive has them, on \
         quiet gaps otherwise — and aggregates the fleet longitudinally: \
         duration statistics and CDF, slow-transfer classification \
         (mean + 3*stddev by default), and per-peer summaries.  Files are \
         scanned on $(b,--jobs) worker domains; the report is \
         byte-identical for every value.";
    ]
  in
  Cmd.v
    (Cmd.info "study" ~doc ~man)
    Term.(
      const (fun obs paths j strict gap minp slow json no_plot ->
          study_files obs paths (clamp_jobs j) strict gap minp slow json
            no_plot)
      $ Tdat_obs_cli.term $ archives_arg $ jobs_arg $ study_strict_arg
      $ gap_arg $ min_prefixes_arg $ slow_arg $ json_arg $ no_plot_arg)

let serve_daemon obs socket host port jobs queue cache =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  let address =
    match socket with
    | Some path -> `Unix path
    | None -> `Tcp (host, port)
  in
  let config =
    {
      Tdat_serve.Server.default_config with
      address;
      jobs;
      queue_capacity = queue;
      cache_capacity = cache;
    }
  in
  let t = Tdat_serve.Server.start config in
  (match Tdat_serve.Server.address t with
  | `Unix path -> Printf.printf "tdat: serve: listening on %s\n%!" path
  | `Tcp (h, p) -> Printf.printf "tdat: serve: listening on %s:%d\n%!" h p);
  let drain = Sys.Signal_handle (fun _ -> Tdat_serve.Server.stop t) in
  let prev_term = Sys.signal Sys.sigterm drain in
  let prev_int = Sys.signal Sys.sigint drain in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () -> Tdat_serve.Server.wait t);
  0

let serve_cmd =
  let socket_arg =
    let doc =
      "Listen on a Unix-domain socket at $(docv) (removed on exit) \
       instead of TCP."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let host_arg =
    let doc = "TCP listen address (ignored with $(b,--socket))." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc =
      "TCP listen port (0 picks an ephemeral port, printed on start; \
       ignored with $(b,--socket))."
    in
    Arg.(value & opt int 4774 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission-queue capacity: jobs beyond $(docv) queued-but-unstarted \
       are rejected with a 429-style $(b,busy) error."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc =
      "Decoded captures/archives kept in the LRU cache, per input kind \
       (entries are invalidated when the file's mtime or size changes)."
    in
    Arg.(value & opt int 16 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let doc = "Run the long-lived analysis daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Listens on a Unix-domain or TCP socket and answers \
         line-delimited JSON requests: one object per line carrying a \
         $(b,cmd) of $(b,analyze), $(b,check), $(b,study), $(b,ping), \
         $(b,stats) or $(b,shutdown).  Analysis jobs run on a bounded \
         admission queue in front of $(b,--jobs) worker domains; decoded \
         inputs are cached and revalidated by file mtime+size; a full \
         queue answers $(b,busy) (429) instead of stalling the socket.  \
         SIGTERM (or the $(b,shutdown) verb) drains gracefully: accepted \
         jobs finish and their responses flush before the process exits.  \
         The $(b,analyze) response's $(b,output) member is byte-identical \
         to $(b,tdat analyze) stdout for the same file.  See DESIGN.md, \
         \"Service architecture\".";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const (fun obs socket host port j queue cache ->
          serve_daemon obs socket host port (clamp_jobs j) (max 1 queue)
            (max 1 cache))
      $ Tdat_obs_cli.term $ socket_arg $ host_arg $ port_arg $ jobs_arg
      $ queue_arg $ cache_arg)

(* --- tdat top ------------------------------------------------------------ *)

(* Live terminal dashboard over a running daemon: poll `stats` every
   --interval seconds and render one frame per poll.  --once prints a
   single frame without touching the terminal (scripts, tests). *)
let top_loop socket host port interval once =
  let address =
    match socket with
    | Some path -> `Unix path
    | None -> `Tcp (host, port)
  in
  let addr_label =
    match address with
    | `Unix path -> path
    | `Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  in
  let module Json = Tdat_serve.Json in
  let poll_stats () =
    let client = Tdat_serve.Client.connect address in
    Fun.protect
      ~finally:(fun () -> Tdat_serve.Client.close client)
      (fun () ->
        Tdat_serve.Client.rpc client
          (Json.Obj [ ("id", Json.Num 1.); ("cmd", Json.Str "stats") ]))
  in
  let rec loop () =
    match poll_stats () with
    | Error msg ->
        Printf.eprintf "tdat: top: %s\n" msg;
        1
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "tdat: top: %s: %s\n" addr_label (Unix.error_message e);
        1
    | Ok response -> (
        match Json.member "result" response with
        | Some result ->
            if not once then print_string "\x1b[2J\x1b[H";
            print_string (Tdat_serve.Render.dashboard ~address:addr_label result);
            flush stdout;
            if once then 0
            else begin
              Unix.sleepf interval;
              loop ()
            end
        | None ->
            Printf.eprintf "tdat: top: daemon answered without a result\n";
            1)
  in
  loop ()

let top_cmd =
  let socket_arg =
    let doc = "Poll the daemon on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let host_arg =
    let doc = "Daemon TCP address (ignored with $(b,--socket))." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc = "Daemon TCP port (ignored with $(b,--socket))." in
    Arg.(value & opt int 4774 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 2. & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let once_arg =
    let doc =
      "Print a single frame and exit, without clearing the terminal \
       (scripting / tests)."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let doc = "Live dashboard over a running serve daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Polls a running $(b,tdat serve) daemon's $(b,stats) verb and \
         renders a terminal dashboard: request and error totals, \
         admission-queue depth, cache hit ratios, per-endpoint rolling \
         p50/p95/p99 latency over the last minute, and the worst-request \
         exemplars with their trace ids.  The same numbers are available \
         machine-readably through the $(b,stats) and $(b,metrics) \
         protocol verbs.";
    ]
  in
  Cmd.v
    (Cmd.info "top" ~doc ~man)
    Term.(
      const (fun socket host port interval once ->
          top_loop socket host port (Float.max 0.1 interval) once)
      $ socket_arg $ host_arg $ port_arg $ interval_arg $ once_arg)

(* --- tdat experiment ----------------------------------------------------- *)

let experiment_exit (reports : Tdat_experiment.Engine.t list) =
  if
    List.for_all
      (fun (r : Tdat_experiment.Engine.t) ->
        r.Tdat_experiment.Engine.total_mismatches = 0
        && r.Tdat_experiment.Engine.audit = [])
      reports
  then 0
  else 1

let print_report json (r : Tdat_experiment.Engine.t) =
  if json then print_endline (Tdat_experiment.Report.to_json r)
  else print_string (Tdat_experiment.Report.to_text r)

let experiment_list () =
  List.iter
    (fun (v : Tdat_experiment.Variant.t) ->
      Printf.printf "%-14s %-4s %s vs %s%s\n    %s\n" v.name
        (Tdat_experiment.Variant.kind_name v.input)
        v.control_name v.candidate_name
        (if v.self_test then "  [self-test]" else "")
        v.summary)
    Tdat_experiment.Variant.all;
  0

let experiment_run obs names files jobs tolerance json corpus_dir =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  let variants =
    match names with
    | [] -> Ok Tdat_experiment.Variant.defaults
    | names ->
        List.fold_left
          (fun acc name ->
            match (acc, Tdat_experiment.Variant.find name) with
            | (Error _ as e), _ -> e
            | Ok _, None -> Error name
            | Ok vs, Some v -> Ok (vs @ [ v ]))
          (Ok []) names
  in
  match variants with
  | Error name ->
      Printf.eprintf
        "tdat: experiment: unknown variant %S (see `tdat experiment list`)\n"
        name;
      2
  | Ok variants ->
      let kinds =
        List.map (fun f -> (f, Tdat_experiment.Variant.kind_of_file f)) files
      in
      let reports =
        List.filter_map
          (fun (v : Tdat_experiment.Variant.t) ->
            let matching =
              List.filter_map
                (fun (f, k) ->
                  if Tdat_experiment.Variant.equal_kind k v.input then Some f
                  else None)
                kinds
            in
            if matching = [] then begin
              Printf.eprintf
                "tdat: experiment: %s: no %s input in the corpus, skipped\n"
                v.name
                (Tdat_experiment.Variant.kind_name v.input);
              None
            end
            else
              Some
                (Tdat_experiment.Engine.run ~jobs ~tolerance v ~files:matching))
          variants
      in
      List.iter (print_report json) reports;
      Option.iter
        (fun dir ->
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
          List.iter
            (fun (r : Tdat_experiment.Engine.t) ->
              let sub =
                Filename.concat dir
                  r.Tdat_experiment.Engine.variant.Tdat_experiment.Variant.name
              in
              let n = Tdat_experiment.Corpus.write ~dir:sub r in
              if n > 0 then
                Printf.eprintf "tdat: experiment: %d mismatch entr%s under %s\n"
                  n
                  (if n = 1 then "y" else "ies")
                  sub)
            reports)
        corpus_dir;
      experiment_exit reports

let experiment_replay obs dir jobs tolerance json =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  match Tdat_experiment.Corpus.replay ~jobs ?tolerance ~dir () with
  | Error msg ->
      Printf.eprintf "tdat: experiment: %s\n" msg;
      2
  | Ok report ->
      print_report json report;
      experiment_exit [ report ]

let experiment_cmd =
  let tolerance_arg =
    let doc =
      "Relative tolerance for numeric field comparison (relative to \
       $(i,max(1, |a|, |b|))).  The default, 0, demands bit-exact \
       agreement — the variants under experiment are exact equivalences."
    in
    Arg.(value & opt float 0. & info [ "tolerance" ] ~docv:"T" ~doc)
  in
  let json_arg =
    let doc = "Emit one JSON report object per variant, one per line." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let list_cmd =
    let doc = "List the registered control/candidate variants" in
    Cmd.v (Cmd.info "list" ~doc) Term.(const experiment_list $ const ())
  in
  let run_cmd =
    let files_arg =
      let doc =
        "Corpus inputs: pcap captures and/or MRT archives.  Each variant \
         runs over the inputs matching its kind (sniffed by magic)."
      in
      Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
    in
    let variant_arg =
      let doc =
        "Variant(s) to run (repeatable; see $(b,tdat experiment list)).  \
         Default: every registered variant except the self-tests."
      in
      Arg.(
        value & opt_all string [] & info [ "variant" ] ~docv:"NAME" ~doc)
    in
    let corpus_arg =
      let doc =
        "Capture diverging inputs as a replayable mismatch corpus under \
         $(docv)/$(i,variant)/ (input copy + field-by-field drill-down + \
         manifest)."
      in
      Arg.(
        value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
    in
    let doc = "Run control vs candidate over a corpus and diff every field" in
    let man =
      [
        `S Manpage.s_description;
        `P
          "For each selected variant, runs the trusted control \
           implementation and the optimized candidate on every matching \
           corpus file (farmed over $(b,--jobs) worker domains, one file \
           per task) and compares the resulting canonical report \
           documents field by field.  Every divergence is addressed by \
           path — e.g. \
           $(i,report.connections[3].factors.ratios.tcp_adv_window) — \
           and with $(b,--corpus) the diverging input is copied next to \
           a JSON drill-down for $(b,tdat experiment replay).  The \
           report is byte-identical for every $(b,--jobs) value.  Exits \
           non-zero when any variant diverges.  See DESIGN.md, \
           \"Differential analysis\".";
      ]
    in
    Cmd.v
      (Cmd.info "run" ~doc ~man)
      Term.(
        const (fun obs names files j tol json corpus ->
            experiment_run obs names files (clamp_jobs j) tol json corpus)
        $ Tdat_obs_cli.term $ variant_arg $ files_arg $ jobs_arg
        $ tolerance_arg $ json_arg $ corpus_arg)
  in
  let replay_cmd =
    let dir_arg =
      let doc = "Mismatch corpus directory written by $(b,--corpus)." in
      Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR" ~doc)
    in
    let replay_tolerance_arg =
      let doc =
        "Override the recorded comparison tolerance (default: replay \
         with the tolerance the corpus was captured with)."
      in
      Arg.(
        value
        & opt (some float) None
        & info [ "tolerance" ] ~docv:"T" ~doc)
    in
    let doc = "Re-run a variant over a captured mismatch corpus" in
    Cmd.v
      (Cmd.info "replay" ~doc)
      Term.(
        const (fun obs dir j tol json ->
            experiment_replay obs dir (clamp_jobs j) tol json)
        $ Tdat_obs_cli.term $ dir_arg $ jobs_arg $ replay_tolerance_arg
        $ json_arg)
  in
  let doc = "Differential analysis: control vs candidate over a corpus" in
  Cmd.group (Cmd.info "experiment" ~doc) [ list_cmd; run_cmd; replay_cmd ]

let cmd =
  let doc = "TCP delay analysis for BGP table transfers (T-DAT)" in
  Cmd.group
    (Cmd.info "tdat" ~version:"1.0.0" ~doc)
    ~default:analyze_term
    [ analyze_cmd; check_cmd; study_cmd; serve_cmd; top_cmd; experiment_cmd ]

(* Backward compatibility: `tdat TRACE.pcap ...` (the pre-subcommand
   spelling, still what README documents first) means `tdat analyze
   TRACE.pcap ...`. *)
let argv =
  let argv = Sys.argv in
  if
    Array.length argv > 1
    && (not (String.equal argv.(1) "analyze"))
    && (not (String.equal argv.(1) "check"))
    && (not (String.equal argv.(1) "study"))
    && (not (String.equal argv.(1) "serve"))
    && (not (String.equal argv.(1) "top"))
    && (not (String.equal argv.(1) "experiment"))
    && String.length argv.(1) > 0
    && argv.(1).[0] <> '-'
  then
    Array.append [| argv.(0); "analyze" |] (Array.sub argv 1 (Array.length argv - 1))
  else argv

let () = exit (Cmd.eval' ~argv cmd)
