(* simgen: synthesize a monitored BGP table transfer and write the
   sniffer's view as a pcap file (plus the collector's MRT archive), so
   the T-DAT CLI can be exercised end to end without operational data. *)

open Cmdliner

(* One independent monitored session: router [id] (1-based) transfers its
   table toward its own collector instance.  Sessions are distinguished by
   the router endpoint (derived from the id), so merged traces carry one
   TCP connection per session — exactly the multi-session capture shape
   the analyzer's fleet path consumes. *)
let session prefixes timer_ms quota seed rtt_ms loss id =
  let upstream =
    Tdat_tcpsim.Connection.path
      ~delay:(int_of_float (rtt_ms *. 500.))
      ~data_loss:
        (if loss > 0. then
           Tdat_netsim.Loss.bernoulli (Tdat_rng.Rng.create (seed + id)) loss
         else Tdat_netsim.Loss.none)
      ()
  in
  let router =
    Tdat_bgpsim.Scenario.router ~table_prefixes:prefixes
      ?timer_interval:
        (if timer_ms > 0 then Some (timer_ms * 1000) else None)
      ~quota ~upstream id
  in
  let result = Tdat_bgpsim.Scenario.run ~seed:(seed + id - 1) [ router ] in
  List.hd result.Tdat_bgpsim.Scenario.outcomes

(* Ground-truth MRT emission (`--emit-mrt DIR`): one archive per session,
   each opened by a synthesized BGP4MP_STATE_CHANGE to Established at the
   session's TCP open — the event the study detector anchors transfer
   starts on — plus a ground_truth.tsv of the known transfer boundaries,
   so the detector can be validated end to end against archives whose
   true boundaries the simulator knows. *)
let emit_mrt_archives dir outcomes =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let module Mrt = Tdat_bgp.Mrt in
  let truths =
    List.filter_map
      (fun (i, (o : Tdat_bgpsim.Scenario.outcome)) ->
        let path = Filename.concat dir (Printf.sprintf "session_%03d.mrt" i) in
        match o.Tdat_bgpsim.Scenario.mrt with
        | [] -> None (* nothing archived: no session to record *)
        | first :: _ as records ->
            let establish =
              Mrt.State
                {
                  Mrt.sc_ts = o.Tdat_bgpsim.Scenario.tcp_start;
                  sc_peer_as = first.Mrt.peer_as;
                  sc_local_as = first.Mrt.local_as;
                  sc_peer_ip = first.Mrt.peer_ip;
                  sc_local_ip = first.Mrt.local_ip;
                  old_state = Mrt.Open_confirm;
                  new_state = Mrt.Established;
                }
            in
            Mrt.to_file_entries path
              (establish :: List.map (fun r -> Mrt.Message r) records);
            let updates =
              List.filter
                (fun (r : Mrt.record) ->
                  match r.Mrt.msg with
                  | Tdat_bgp.Msg.Update _ -> true
                  | _ -> false)
                records
            in
            (match updates with
            | [] -> None
            | _ ->
                let last = List.nth updates (List.length updates - 1) in
                Some
                  {
                    Tdat_study.Truth.source = path;
                    peer_as = first.Mrt.peer_as;
                    peer_ip = first.Mrt.peer_ip;
                    start_ts = o.Tdat_bgpsim.Scenario.tcp_start;
                    end_ts = last.Mrt.ts;
                    prefixes =
                      List.fold_left
                        (fun n (r : Mrt.record) ->
                          n + Tdat_bgp.Msg.nlri_count r.Mrt.msg)
                        0 updates;
                    messages = List.length updates;
                  }))
      (List.mapi (fun i o -> (i + 1, o)) outcomes)
  in
  let truth_path = Filename.concat dir "ground_truth.tsv" in
  Tdat_study.Truth.to_file truth_path truths;
  Printf.printf "wrote %d session archive(s) + %s (%d ground-truth transfer(s))\n"
    (List.length outcomes) truth_path (List.length truths)

let generate obs out_pcap out_mrt emit_mrt prefixes timer_ms quota seed rtt_ms
    loss routers jobs =
  Tdat_obs_cli.with_obs obs @@ fun () ->
  let jobs = if jobs < 1 then 1 else jobs in
  let outcomes =
    Tdat_parallel.Pool.with_pool ~jobs (fun pool ->
        Tdat_parallel.Pool.map pool
          (session prefixes timer_ms quota seed rtt_ms loss)
          (List.init routers (fun i -> i + 1)))
  in
  let trace =
    match outcomes with
    | [ o ] -> o.Tdat_bgpsim.Scenario.trace
    | os ->
        Tdat_pkt.Trace.of_segments
          (List.concat_map
             (fun o -> Tdat_pkt.Trace.segments o.Tdat_bgpsim.Scenario.trace)
             os)
  in
  let mrt =
    List.concat_map (fun o -> o.Tdat_bgpsim.Scenario.mrt) outcomes
  in
  Tdat_pkt.Pcap.to_file out_pcap trace;
  Printf.printf "wrote %s (%d sessions, %d packets, %d bytes of BGP)\n"
    out_pcap routers
    (Tdat_pkt.Trace.length trace)
    (Tdat_pkt.Trace.total_bytes trace);
  (match out_mrt with
  | Some path ->
      Tdat_bgp.Mrt.to_file path mrt;
      Printf.printf "wrote %s (%d MRT records)\n" path (List.length mrt)
  | None -> ());
  (match emit_mrt with
  | Some dir -> emit_mrt_archives dir outcomes
  | None -> ());
  0

let out_pcap_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"OUT.pcap" ~doc:"Output packet trace.")

let out_mrt_arg =
  Arg.(value & opt (some string) None
       & info [ "mrt" ] ~docv:"OUT.mrt"
           ~doc:"Also write the collector's MRT archive.")

let emit_mrt_arg =
  Arg.(value & opt (some string) None
       & info [ "emit-mrt" ] ~docv:"DIR"
           ~doc:"Write one MRT archive per session into $(docv) — each \
                 anchored by a BGP4MP_STATE_CHANGE record at session \
                 establishment — plus a ground_truth.tsv of the known \
                 transfer boundaries, for validating `tdat study` end to \
                 end.")

let prefixes_arg =
  Arg.(value & opt int 4000
       & info [ "prefixes" ] ~doc:"Table size in prefixes.")

let timer_arg =
  Arg.(value & opt int 200
       & info [ "timer-ms" ]
           ~doc:"Sender pacing timer in milliseconds (0 = greedy sender).")

let quota_arg =
  Arg.(value & opt int 10
       & info [ "quota" ] ~doc:"Messages released per timer tick.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let rtt_arg =
  Arg.(value & opt float 4.0
       & info [ "rtt-ms" ] ~doc:"Round-trip time between router and collector.")

let loss_arg =
  Arg.(value & opt float 0.0
       & info [ "loss" ] ~doc:"Upstream random loss probability.")

let routers_arg =
  Arg.(value & opt int 1
       & info [ "routers" ]
           ~doc:"Number of independent monitored sessions to synthesize \
                 and merge into the trace (one TCP connection each).")

let jobs_arg =
  Arg.(value & opt int (Tdat_parallel.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Simulate sessions on $(docv) worker domains (default: \
                 the recommended core count).  Output is identical for \
                 every value.")

let cmd =
  let doc = "synthesize monitored BGP table transfers as pcap (+ MRT)" in
  Cmd.v
    (Cmd.info "simgen" ~version:"1.0.0" ~doc)
    Term.(const generate $ Tdat_obs_cli.term $ out_pcap_arg $ out_mrt_arg
          $ emit_mrt_arg $ prefixes_arg $ timer_arg $ quota_arg $ seed_arg
          $ rtt_arg $ loss_arg $ routers_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
