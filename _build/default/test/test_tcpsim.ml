(* End-to-end behaviour of the TCP simulator: transfers complete, losses
   recover, flow control throttles, probing survives zero windows. *)

open Tdat_tcpsim
module Engine = Tdat_netsim.Engine
module Loss = Tdat_netsim.Loss
module Seg = Tdat_pkt.Tcp_segment
module Endpoint = Tdat_pkt.Endpoint

let sender_ep = Endpoint.of_quad 10 0 0 1 33000
let receiver_ep = Endpoint.of_quad 10 0 0 2 179

type harness = {
  engine : Engine.t;
  conn : Connection.t;
  site : Connection.Site.t;
}

let make_harness ?(sender_cfg = Tcp_types.default)
    ?(receiver_cfg = Tcp_types.default) ?(upstream = Connection.path ())
    ?(local = Connection.path ~delay:50 ()) ?rng ?(auto_drain = true) () =
  let engine = Engine.create () in
  let site = Connection.Site.create ~engine ?rng ~local () in
  let conn =
    Connection.create ~engine ~sender_cfg ~receiver_cfg ~sender_ep
      ~receiver_ep ~upstream ~site ?rng ()
  in
  if auto_drain then begin
    let rcv = Connection.receiver conn in
    Receiver.set_on_data rcv (fun () ->
        Receiver.consume rcv (Receiver.available rcv))
  end;
  { engine; conn; site }

let run h = Engine.run h.engine

let payload n = String.init n (fun i -> Char.chr (i mod 256))

let test_handshake () =
  let h = make_harness () in
  Connection.start h.conn;
  run h;
  Alcotest.(check bool) "established" true
    (Sender.established (Connection.sender h.conn))

let test_small_transfer () =
  let h = make_harness () in
  Connection.start h.conn;
  let data = payload 10_000 in
  Sender.write (Connection.sender h.conn) data;
  run h;
  let rcv = Connection.receiver h.conn in
  Alcotest.(check int) "all bytes delivered" 10_000 (Receiver.rcv_nxt rcv);
  Alcotest.(check bool) "all acked" true
    (Sender.all_acked (Connection.sender h.conn))

let test_payload_integrity () =
  let h = make_harness ~auto_drain:false () in
  Connection.start h.conn;
  let data = payload 30_000 in
  let received = Buffer.create 30_000 in
  let rcv = Connection.receiver h.conn in
  Receiver.set_on_data rcv (fun () ->
      Buffer.add_string received (Receiver.peek rcv);
      Receiver.consume rcv (Receiver.available rcv));
  Sender.write (Connection.sender h.conn) data;
  run h;
  Alcotest.(check string) "stream intact" data (Buffer.contents received)

let test_transfer_with_loss () =
  let rng = Tdat_rng.Rng.create 42 in
  let upstream =
    Connection.path ~data_loss:(Loss.bernoulli (Tdat_rng.Rng.split rng) 0.02)
      ()
  in
  let h = make_harness ~upstream ~rng () in
  Connection.start h.conn;
  let data = payload 200_000 in
  Sender.write (Connection.sender h.conn) data;
  run h;
  Alcotest.(check int) "all bytes delivered despite loss" 200_000
    (Receiver.rcv_nxt (Connection.receiver h.conn));
  let c = Sender.counters (Connection.sender h.conn) in
  Alcotest.(check bool) "retransmissions happened" true
    (c.Sender.retransmissions > 0)

let test_heavy_loss_recovery () =
  let rng = Tdat_rng.Rng.create 7 in
  let upstream =
    Connection.path
      ~data_loss:
        (Loss.gilbert (Tdat_rng.Rng.split rng) ~p_enter:0.01 ~p_exit:0.2
           ~p_loss_bad:0.8)
      ()
  in
  let h = make_harness ~upstream ~rng () in
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 150_000);
  run h;
  Alcotest.(check int) "delivered through bursty loss" 150_000
    (Receiver.rcv_nxt (Connection.receiver h.conn))

let test_ack_loss_recovery () =
  let rng = Tdat_rng.Rng.create 11 in
  let upstream =
    Connection.path ~ack_loss:(Loss.bernoulli (Tdat_rng.Rng.split rng) 0.05)
      ()
  in
  let h = make_harness ~upstream ~rng () in
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 100_000);
  run h;
  Alcotest.(check int) "delivered through ACK loss" 100_000
    (Receiver.rcv_nxt (Connection.receiver h.conn))

let test_flow_control_limits_flight () =
  (* A receiver that never drains: the sender must stop at the advertised
     window, not flood. *)
  let receiver_cfg = { Tcp_types.default with max_adv_window = 8_000 } in
  let h = make_harness ~receiver_cfg ~auto_drain:false () in
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 100_000);
  Engine.run ~until:5_000_000 h.engine;
  let rcvd = Receiver.rcv_nxt (Connection.receiver h.conn) in
  Alcotest.(check bool) "window respected"
    true
    (rcvd <= 8_000 + Tcp_types.default.Tcp_types.mss)

let test_slow_drain_completes () =
  (* Application drains 2 KB every 50 ms: transfer completes, throttled by
     flow control. *)
  let receiver_cfg = { Tcp_types.default with max_adv_window = 8_000 } in
  let h = make_harness ~receiver_cfg ~auto_drain:false () in
  let rcv = Connection.receiver h.conn in
  let rec drain () =
    let n = min 2_000 (Receiver.available rcv) in
    if n > 0 then Receiver.consume rcv n;
    ignore (Engine.schedule_after h.engine 50_000 drain)
  in
  ignore (Engine.schedule_after h.engine 50_000 drain);
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 60_000);
  Engine.run ~until:60_000_000 h.engine;
  Alcotest.(check int) "all delivered under slow drain" 60_000
    (Receiver.rcv_nxt rcv)

let test_zero_window_probe () =
  (* Application stalls for 2 s with a tiny buffer; probing must resume the
     transfer once it drains. *)
  let receiver_cfg = { Tcp_types.default with max_adv_window = 4_000 } in
  let h = make_harness ~receiver_cfg ~auto_drain:false () in
  let rcv = Connection.receiver h.conn in
  ignore
    (Engine.schedule_after h.engine 2_000_000 (fun () ->
         let rec drain () =
           let n = Receiver.available rcv in
           if n > 0 then Receiver.consume rcv n;
           ignore (Engine.schedule_after h.engine 10_000 drain)
         in
         drain ()));
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 50_000);
  Engine.run ~until:120_000_000 h.engine;
  Alcotest.(check int) "completed after zero-window stall" 50_000
    (Receiver.rcv_nxt rcv)

let test_rto_backoff () =
  let rto = Rto.create ~min_rto:200_000 ~max_rto:60_000_000 ~backoff_factor:2. in
  Rto.sample rto 10_000;
  let r0 = Rto.current rto in
  Rto.backoff rto;
  let r1 = Rto.current rto in
  Rto.backoff rto;
  let r2 = Rto.current rto in
  Alcotest.(check bool) "monotone backoff" true (r0 <= r1 && r1 <= r2);
  Alcotest.(check bool) "doubling" true (r2 >= 2 * r0);
  Rto.sample rto 10_000;
  Alcotest.(check int) "sample resets backoff" r0 (Rto.current rto)

let test_rto_clamping () =
  let rto = Rto.create ~min_rto:200_000 ~max_rto:1_000_000 ~backoff_factor:2. in
  Rto.sample rto 1_000;
  Alcotest.(check int) "clamped to min" 200_000 (Rto.current rto);
  for _ = 1 to 20 do
    Rto.backoff rto
  done;
  Alcotest.(check int) "clamped to max" 1_000_000 (Rto.current rto)

let test_dead_receiver_retransmits () =
  let h = make_harness () in
  Connection.start h.conn;
  Engine.run ~until:100_000 h.engine;
  Receiver.kill (Connection.receiver h.conn);
  Sender.write (Connection.sender h.conn) (payload 20_000);
  Engine.run ~until:30_000_000 h.engine;
  let c = Sender.counters (Connection.sender h.conn) in
  Alcotest.(check bool) "timeouts accumulated" true (c.Sender.timeouts >= 3);
  Alcotest.(check bool) "not acked" false
    (Sender.all_acked (Connection.sender h.conn))

let test_tahoe_and_reno_complete () =
  List.iter
    (fun flavor ->
      let rng = Tdat_rng.Rng.create 19 in
      let sender_cfg = { Tcp_types.default with flavor } in
      let upstream =
        Connection.path
          ~data_loss:(Loss.bernoulli (Tdat_rng.Rng.split rng) 0.02)
          ()
      in
      let h = make_harness ~sender_cfg ~upstream ~rng () in
      Connection.start h.conn;
      Sender.write (Connection.sender h.conn) (payload 120_000);
      run h;
      Alcotest.(check int) "delivered" 120_000
        (Receiver.rcv_nxt (Connection.receiver h.conn)))
    [ Tcp_types.Tahoe; Tcp_types.Reno; Tcp_types.New_reno ]

let test_sniffer_sees_both_directions () =
  let h = make_harness () in
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 20_000);
  run h;
  let trace = Connection.Site.trace h.site in
  let segs = Tdat_pkt.Trace.segments trace in
  let data = List.exists (fun s -> Seg.is_data s) segs in
  let acks =
    List.exists (fun (s : Seg.t) -> Endpoint.equal s.src receiver_ep) segs
  in
  Alcotest.(check bool) "data packets captured" true data;
  Alcotest.(check bool) "ack packets captured" true acks

let test_local_overflow_drops () =
  (* 30 KB burst into a 5-packet local buffer on a slow local link: the
     local link must drop (receiver-local loss) and TCP must recover. *)
  let local = Connection.path ~delay:50 ~bandwidth_bps:10_000_000 ~buffer_pkts:5 () in
  let h = make_harness ~local () in
  Connection.start h.conn;
  Sender.write (Connection.sender h.conn) (payload 120_000);
  Engine.run ~until:120_000_000 h.engine;
  Alcotest.(check bool) "local drops happened" true
    (Connection.Site.local_drops h.site > 0);
  Alcotest.(check int) "recovered regardless" 120_000
    (Receiver.rcv_nxt (Connection.receiver h.conn))

let suite =
  [
    Alcotest.test_case "handshake" `Quick test_handshake;
    Alcotest.test_case "small transfer" `Quick test_small_transfer;
    Alcotest.test_case "payload integrity" `Quick test_payload_integrity;
    Alcotest.test_case "transfer with loss" `Quick test_transfer_with_loss;
    Alcotest.test_case "heavy bursty loss" `Quick test_heavy_loss_recovery;
    Alcotest.test_case "ack loss" `Quick test_ack_loss_recovery;
    Alcotest.test_case "flow control" `Quick test_flow_control_limits_flight;
    Alcotest.test_case "slow drain completes" `Quick test_slow_drain_completes;
    Alcotest.test_case "zero-window probe" `Quick test_zero_window_probe;
    Alcotest.test_case "rto backoff" `Quick test_rto_backoff;
    Alcotest.test_case "rto clamping" `Quick test_rto_clamping;
    Alcotest.test_case "dead receiver" `Quick test_dead_receiver_retransmits;
    Alcotest.test_case "all flavors" `Quick test_tahoe_and_reno_complete;
    Alcotest.test_case "sniffer taps both ways" `Quick
      test_sniffer_sees_both_directions;
    Alcotest.test_case "local overflow" `Quick test_local_overflow_drops;
  ]
