(* Scenario-level behaviour: table transfers complete, archives match
   ground truth, timer-driven senders leave gaps, peer groups block. *)

open Tdat_bgpsim
module Msg = Tdat_bgp.Msg
module Trace = Tdat_pkt.Trace
module Seg = Tdat_pkt.Tcp_segment

let run_one ?timer_interval ?(quota = max_int) ?(prefixes = 400) () =
  let r = Scenario.router ?timer_interval ~quota ~table_prefixes:prefixes 1 in
  let result = Scenario.run ~seed:5 [ r ] in
  match result.Scenario.outcomes with
  | [ o ] -> (result, o)
  | _ -> Alcotest.fail "expected one outcome"

let test_transfer_completes () =
  let _, o = run_one () in
  Alcotest.(check bool) "speaker finished" true o.Scenario.speaker_finished;
  Alcotest.(check bool) "trace non-empty" true (Trace.length o.Scenario.trace > 0)

let test_mrt_matches_table () =
  let _, o = run_one () in
  let announced =
    o.Scenario.mrt
    |> List.concat_map (fun (r : Tdat_bgp.Mrt.record) ->
           match r.Tdat_bgp.Mrt.msg with
           | Msg.Update u -> u.Msg.nlri
           | _ -> [])
    |> List.sort_uniq Tdat_bgp.Prefix.compare
  in
  let truth =
    Tdat_bgp.Table.prefixes o.Scenario.table
    |> List.sort_uniq Tdat_bgp.Prefix.compare
  in
  Alcotest.(check int) "archive holds the whole table" (List.length truth)
    (List.length announced);
  Alcotest.(check bool) "same prefixes" true (announced = truth)

let data_gaps trace =
  (* Inter-arrival gaps between consecutive data packets, µs. *)
  let data =
    Trace.segments trace |> List.filter Seg.is_data
    |> List.map (fun (s : Seg.t) -> s.ts)
  in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  gaps data

let test_timer_gaps_visible () =
  let _, o = run_one ~timer_interval:200_000 ~quota:5 ~prefixes:600 () in
  let gaps = data_gaps o.Scenario.trace in
  let long = List.filter (fun g -> g > 150_000) gaps in
  Alcotest.(check bool) "many ~200ms gaps" true (List.length long > 10);
  Alcotest.(check bool) "speaker finished" true o.Scenario.speaker_finished

let test_greedy_sender_fast () =
  let _, o_greedy = run_one ~prefixes:600 () in
  let _, o_paced = run_one ~timer_interval:200_000 ~quota:5 ~prefixes:600 () in
  let duration o =
    match Trace.window o.Scenario.trace with
    | Some w -> Tdat_timerange.Span.length w
    | None -> 0
  in
  Alcotest.(check bool) "paced transfer is much slower" true
    (duration o_paced > 3 * duration o_greedy)

let test_concurrent_transfers () =
  let routers = List.init 8 (fun i -> Scenario.router ~table_prefixes:300 (i + 1)) in
  let result = Scenario.run ~seed:9 ~collector_proc_time:400 routers in
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "router %d finished" o.Scenario.spec.Scenario.router_id)
        true o.Scenario.speaker_finished)
    result.Scenario.outcomes;
  (* Per-connection traces partition the site trace's data packets. *)
  let total =
    List.fold_left
      (fun acc o -> acc + Trace.length o.Scenario.trace)
      0 result.Scenario.outcomes
  in
  Alcotest.(check int) "connection traces partition the site trace"
    (Trace.length result.Scenario.site_trace) total

let test_vendor_collector_has_no_mrt () =
  let r = Scenario.router ~table_prefixes:200 1 in
  let result = Scenario.run ~seed:3 ~collector_kind:Collector.Vendor [ r ] in
  let o = List.hd result.Scenario.outcomes in
  Alcotest.(check int) "no archive" 0 (List.length o.Scenario.mrt);
  Alcotest.(check bool) "still finished" true o.Scenario.speaker_finished

let test_peer_group_lockstep () =
  (* Without failures both members finish. *)
  let r = Scenario.router ~table_prefixes:400 1 in
  let pg = Scenario.run_peer_group ~seed:11 r in
  Alcotest.(check bool) "quagga finished" true
    pg.Scenario.quagga_outcome.Scenario.speaker_finished;
  Alcotest.(check bool) "vendor finished" true
    pg.Scenario.vendor_outcome.Scenario.speaker_finished

let test_peer_group_blocking () =
  (* Vendor collector dies mid-transfer: the quagga member must stall for
     the hold time (180 s) and then complete. *)
  let r =
    Scenario.router ~table_prefixes:800 ~timer_interval:200_000 ~quota:5
      ~group_window:32 1
  in
  let pg =
    Scenario.run_peer_group ~seed:13 ~vendor_fail_at:500_000
      ~deadline:1_800_000_000 r
  in
  Alcotest.(check bool) "vendor member failed" true
    pg.Scenario.vendor_outcome.Scenario.speaker_failed;
  (match pg.Scenario.vendor_removed_at with
  | None -> Alcotest.fail "vendor member never removed"
  | Some at ->
      Alcotest.(check bool) "removed after ~hold time" true
        (at >= 170_000_000));
  Alcotest.(check bool) "quagga eventually finished" true
    pg.Scenario.quagga_outcome.Scenario.speaker_finished;
  (* The quagga transfer must contain a long update-free period — only
     keepalives flow while the group is blocked. *)
  let update_ts =
    Trace.segments pg.Scenario.quagga_outcome.Scenario.trace
    |> List.filter (fun (s : Seg.t) -> s.len > 2 * Msg.header_size)
    |> List.map (fun (s : Seg.t) -> s.ts)
  in
  let rec max_gap acc = function
    | a :: (b :: _ as rest) -> max_gap (max acc (b - a)) rest
    | _ -> acc
  in
  Alcotest.(check bool) "blocking gap > 100s" true
    (max_gap 0 update_ts > 100_000_000)

let test_collector_failure_stalls_transfer () =
  let r = Scenario.router ~table_prefixes:2000 1 in
  let result =
    Scenario.run ~seed:17 ~collector_fail_at:15_000
      ~deadline:600_000_000 [ r ]
  in
  let o = List.hd result.Scenario.outcomes in
  Alcotest.(check bool) "transfer did not finish" false
    o.Scenario.speaker_finished

let suite =
  [
    Alcotest.test_case "transfer completes" `Quick test_transfer_completes;
    Alcotest.test_case "mrt matches table" `Quick test_mrt_matches_table;
    Alcotest.test_case "timer gaps visible" `Quick test_timer_gaps_visible;
    Alcotest.test_case "greedy vs paced" `Quick test_greedy_sender_fast;
    Alcotest.test_case "concurrent transfers" `Quick test_concurrent_transfers;
    Alcotest.test_case "vendor has no mrt" `Quick
      test_vendor_collector_has_no_mrt;
    Alcotest.test_case "peer group lockstep" `Quick test_peer_group_lockstep;
    Alcotest.test_case "peer group blocking" `Slow test_peer_group_blocking;
    Alcotest.test_case "collector failure" `Quick
      test_collector_failure_stalls_transfer;
  ]
