(* Fleet dataset synthesis: structure, determinism, and end-to-end
   compatibility with the analyzer at a reduced scale. *)

open Tdat_bgpsim
module C = Fleet

let collect ?(scale = 0.05) ?(seed = 9001) dataset =
  let records = ref [] in
  let summary = C.run ~seed ~scale dataset ~f:(fun r -> records := r :: !records) in
  (summary, List.rev !records)

let test_counts_and_structure () =
  List.iter
    (fun dataset ->
      let summary, records = collect dataset in
      Alcotest.(check int)
        (C.name dataset ^ " transfer count")
        summary.C.transfers (List.length records);
      Alcotest.(check bool) "scaled transfers >= blocking+bug sessions" true
        (summary.C.transfers >= 2);
      Alcotest.(check bool) "packets flowed" true (summary.C.packets > 0);
      List.iter
        (fun (r : C.record) ->
          Alcotest.(check bool) "router id in population" true
            (r.C.meta.C.router_id >= 1
            && r.C.meta.C.router_id <= C.routers_in dataset);
          Alcotest.(check bool) "trace non-empty" true
            (Tdat_pkt.Trace.length r.C.outcome.Scenario.trace > 0))
        records)
    C.all

let test_determinism () =
  let digest records =
    List.map
      (fun (r : C.record) ->
        ( r.C.meta.C.router_id,
          Tdat_pkt.Trace.length r.C.outcome.Scenario.trace,
          Tdat_pkt.Trace.total_bytes r.C.outcome.Scenario.trace ))
      records
  in
  let _, a = collect ~seed:5 C.Routeviews in
  let _, b = collect ~seed:5 C.Routeviews in
  let _, c = collect ~seed:6 C.Routeviews in
  Alcotest.(check bool) "same seed, same dataset" true (digest a = digest b);
  Alcotest.(check bool) "different seed differs" true (digest a <> digest c)

let test_mrt_presence_by_collector_kind () =
  let has_mrt records =
    List.exists (fun (r : C.record) -> r.C.outcome.Scenario.mrt <> []) records
  in
  let _, quagga = collect C.Isp_quagga in
  let _, vendor = collect C.Isp_vendor in
  Alcotest.(check bool) "quagga archives" true (has_mrt quagga);
  Alcotest.(check bool) "vendor does not" false (has_mrt vendor)

let test_blocking_incident_included () =
  let _, records = collect ~scale:0.05 C.Routeviews in
  Alcotest.(check bool) "has a blocking incident" true
    (List.exists (fun r -> r.C.meta.C.blocking_incident) records)

let test_analyzable_end_to_end () =
  let _, records = collect ~scale:0.05 C.Isp_quagga in
  List.iter
    (fun (r : C.record) ->
      let o = r.C.outcome in
      let a =
        Tdat.Analyzer.analyze o.Scenario.trace ~flow:o.Scenario.flow
          ~mrt:o.Scenario.mrt
      in
      (* Non-blocked transfers must have an identified table transfer. *)
      if not r.C.meta.C.blocking_incident then
        Alcotest.(check bool) "transfer identified" true
          (a.Tdat.Analyzer.transfer <> None))
    records

let suite =
  [
    Alcotest.test_case "counts and structure" `Quick test_counts_and_structure;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "mrt by collector kind" `Quick
      test_mrt_presence_by_collector_kind;
    Alcotest.test_case "blocking incident present" `Slow
      test_blocking_incident_included;
    Alcotest.test_case "analyzable end to end" `Quick
      test_analyzable_end_to_end;
  ]
