(* Cross-cutting property tests: codec round-trips under random inputs,
   reassembly invariance under segment reordering, and analyzer
   invariants on randomly parameterized simulated transfers. *)

open Tdat_bgp
module Seg = Tdat_pkt.Tcp_segment

let prop ?(count = 60) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* --- BGP message codec under random updates ----------------------------- *)

let gen_prefix =
  QCheck.Gen.(
    let* a = int_range 1 223 in
    let* b = int_bound 255 in
    let* c = int_bound 255 in
    let* d = int_bound 255 in
    let* len = int_bound 32 in
    return (Prefix.of_quad a b c d len))

let gen_update =
  QCheck.Gen.(
    let* nlri = list_size (int_range 0 40) gen_prefix in
    let* withdrawn = list_size (int_range 0 10) gen_prefix in
    let* hops = int_range 1 8 in
    let* asns = list_repeat hops (int_range 1 65535) in
    let* med = int_bound 1000 in
    return
      (Msg.update ~withdrawn
         ~attrs:
           [
             Attr.Origin Attr.Igp;
             Attr.As_path (As_path.of_asns asns);
             Attr.Next_hop 0x0A000001l;
             Attr.Med (Int32.of_int med);
           ]
         ~nlri ()))

let arb_update = QCheck.make gen_update

let codec_props =
  [
    prop ~count:200 "msg codec roundtrip (random updates)" arb_update
      (fun m ->
        match Msg.decode (Msg.encode m) 0 with
        | Some (m', _) -> m = m'
        | None -> false);
    prop ~count:200 "encoded size is consistent" arb_update (fun m ->
        String.length (Msg.encode m) = Msg.encoded_size m);
  ]

(* --- stream reassembly invariance under reordering ----------------------- *)

let ep1 = Tdat_pkt.Endpoint.of_quad 10 0 0 1 20000
let ep2 = Tdat_pkt.Endpoint.of_quad 10 0 0 2 179

let gen_segmented_stream =
  (* A byte stream cut into random segments, delivered in a random order
     with random duplicates. *)
  QCheck.Gen.(
    let* n = int_range 1 40 in
    let stream = String.init (n * 37) (fun i -> Char.chr (i mod 251)) in
    let* cuts = list_size (int_range 0 10) (int_bound (String.length stream - 1)) in
    let cuts = List.sort_uniq compare (0 :: cuts @ [ String.length stream ]) in
    let rec pieces = function
      | a :: (b :: _ as rest) when b > a ->
          (a, String.sub stream a (b - a)) :: pieces rest
      | _ :: rest -> pieces rest
      | [] -> []
    in
    let segs = pieces cuts in
    let* dups = list_size (int_range 0 5) (int_bound (max 0 (List.length segs - 1))) in
    let all = segs @ List.map (List.nth segs) dups in
    let* order = shuffle_l all in
    return (stream, order))

let arb_stream =
  QCheck.make
    ~print:(fun (s, order) ->
      Printf.sprintf "stream %d bytes, %d segments" (String.length s)
        (List.length order))
    gen_segmented_stream

let reassembly_props =
  [
    prop ~count:300 "reassembly is order- and duplication-insensitive"
      arb_stream
      (fun (stream, order) ->
        let segs =
          List.mapi
            (fun i (off, payload) ->
              Seg.v ~ts:(i + 1) ~src:ep1 ~dst:ep2 ~seq:off ~ack:0
                ~flags:Seg.data_flags ~payload ())
            order
        in
        let r = Stream_reassembly.of_segments segs in
        Stream_reassembly.contiguous r = stream);
    prop ~count:300 "delivery times are monotone in offset" arb_stream
      (fun (stream, order) ->
        let segs =
          List.mapi
            (fun i (off, payload) ->
              Seg.v ~ts:(i + 1) ~src:ep1 ~dst:ep2 ~seq:off ~ack:0
                ~flags:Seg.data_flags ~payload ())
            order
        in
        let r = Stream_reassembly.of_segments segs in
        let n = Stream_reassembly.contiguous_length r in
        QCheck.assume (n = String.length stream);
        let ok = ref true in
        for off = 1 to n - 1 do
          if
            Stream_reassembly.delivery_time r off
            < Stream_reassembly.delivery_time r (off - 1)
          then ok := false
        done;
        !ok);
  ]

(* --- analyzer invariants on random scenarios ------------------------------ *)

let arb_scenario_seed = QCheck.int_range 1 10_000

let run_random_scenario seed =
  let rng = Tdat_rng.Rng.create seed in
  let module R = Tdat_rng.Rng in
  let timer =
    if R.bool rng then Some (R.choose rng [| 100_000; 200_000; 400_000 |])
    else None
  in
  let loss =
    if R.bernoulli rng 0.4 then
      Tdat_netsim.Loss.bernoulli (R.split rng) (R.float rng 0.03)
    else Tdat_netsim.Loss.none
  in
  let router =
    Tdat_bgpsim.Scenario.router
      ~table_prefixes:(R.int_in rng 500 4_000)
      ?timer_interval:timer
      ~quota:(R.int_in rng 5 200)
      ~upstream:
        (Tdat_tcpsim.Connection.path ~delay:(R.int_in rng 500 50_000)
           ~data_loss:loss ())
      1
  in
  let result = Tdat_bgpsim.Scenario.run ~seed [ router ] in
  let o = List.hd result.Tdat_bgpsim.Scenario.outcomes in
  Tdat.Analyzer.analyze o.Tdat_bgpsim.Scenario.trace
    ~flow:o.Tdat_bgpsim.Scenario.flow ~mrt:o.Tdat_bgpsim.Scenario.mrt

let analyzer_props =
  [
    prop ~count:25 "factor ratios lie in [0, 1.02]" arb_scenario_seed
      (fun seed ->
        let a = run_random_scenario seed in
        List.for_all
          (fun (_, r) -> r >= 0. && r <= 1.02)
          a.Tdat.Analyzer.factors.Tdat.Factors.ratios
        && List.for_all
             (fun (_, r) -> r >= 0. && r <= 1.02)
             a.Tdat.Analyzer.factors.Tdat.Factors.group_ratios);
    prop ~count:25 "group ratio bounded by member factors' sum"
      arb_scenario_seed (fun seed ->
        let a = run_random_scenario seed in
        let f = a.Tdat.Analyzer.factors in
        List.for_all
          (fun (g, gr) ->
            let members =
              List.filter
                (fun (fac, _) -> Tdat.Factors.group_of fac = g)
                f.Tdat.Factors.ratios
            in
            let s = List.fold_left (fun acc (_, r) -> acc +. r) 0. members in
            gr <= s +. 0.02)
          f.Tdat.Factors.group_ratios);
    prop ~count:25 "series stay inside the analysis window" arb_scenario_seed
      (fun seed ->
        let a = run_random_scenario seed in
        let gen = a.Tdat.Analyzer.series in
        let win = Tdat.Series_gen.window gen in
        List.for_all
          (fun name -> Tdat.Series_gen.ratio gen name <= 1.001)
          Tdat.Series_defs.all
        && Tdat_timerange.Span.length win > 0);
    prop ~count:25 "transfer identified and complete" arb_scenario_seed
      (fun seed ->
        let a = run_random_scenario seed in
        match a.Tdat.Analyzer.transfer with
        | Some tr -> tr.Tdat.Transfer_id.prefixes > 0
        | None -> false);
  ]

let suite = codec_props @ reassembly_props @ analyzer_props
