(* Odds and ends: behaviours not covered by the per-library suites —
   void periods, sniffer-location interpretation, packing order, MCT
   configuration knobs, big-endian pcap, speaker keepalives. *)

open Tdat
module Seg = Tdat_pkt.Tcp_segment
module Span = Tdat_timerange.Span

let sender_ep = Tdat_pkt.Endpoint.of_quad 10 1 0 1 20001
let receiver_ep = Tdat_pkt.Endpoint.of_quad 10 0 0 2 179
let flow = Tdat_pkt.Flow.v ~sender:sender_ep ~receiver:receiver_ep

let data ~ts ~seq len =
  Seg.v ~ts ~src:sender_ep ~dst:receiver_ep ~seq ~ack:0 ~len
    ~payload:(String.make len 'd') ~flags:Seg.data_flags ()

let ack ~ts ~ack:a ?(window = 65535) () =
  Seg.v ~ts ~src:receiver_ep ~dst:sender_ep ~seq:0 ~ack:a ~window
    ~flags:Seg.ack_flags ()

(* --- void periods flow from trace to series ------------------------------- *)

let test_void_periods () =
  let voids =
    Tdat_timerange.Span_set.of_span (Span.v 100_000 200_000)
  in
  let trace =
    Tdat_pkt.Trace.of_segments ~voids
      [ data ~ts:0 ~seq:0 1_000; ack ~ts:1_000 ~ack:1_000 ();
        data ~ts:300_000 ~seq:1_000 1_000; ack ~ts:301_000 ~ack:2_000 () ]
  in
  let p = Conn_profile.of_trace trace ~flow in
  let gen = Series_gen.generate p in
  Alcotest.(check int) "void series carries the period" 100_000
    (Series_gen.size gen Series_defs.Void_period)

(* --- sniffer-location interpretation -------------------------------------- *)

let loss_trace =
  [
    data ~ts:10 ~seq:0 100;
    data ~ts:20 ~seq:200 100 (* hole: upstream loss *);
    data ~ts:400_000 ~seq:100 100 (* late fill *);
    ack ~ts:401_000 ~ack:300 ();
  ]

let test_interpretation_near_receiver () =
  let p = Conn_profile.of_trace (Tdat_pkt.Trace.of_segments loss_trace) ~flow in
  let gen = Series_gen.generate p in
  Alcotest.(check bool) "upstream -> network loss" true
    (Series_gen.size gen Series_defs.Network_loss > 0);
  Alcotest.(check int) "no sender-local attribution" 0
    (Series_gen.size gen Series_defs.Send_local_loss)

let test_interpretation_near_sender () =
  let p = Conn_profile.of_trace (Tdat_pkt.Trace.of_segments loss_trace) ~flow in
  let config =
    { Series_gen.default_config with sniffer_location = `Near_sender }
  in
  let gen = Series_gen.generate ~config p in
  Alcotest.(check bool) "upstream -> sender-local loss" true
    (Series_gen.size gen Series_defs.Send_local_loss > 0);
  Alcotest.(check int) "no network attribution" 0
    (Series_gen.size gen Series_defs.Network_loss)

(* --- packing preserves attribute-group order ------------------------------- *)

let test_pack_order () =
  let open Tdat_bgp in
  let attrs_a = [ Attr.Origin Attr.Igp; Attr.Next_hop 1l ] in
  let attrs_b = [ Attr.Origin Attr.Igp; Attr.Next_hop 2l ] in
  let table =
    [
      { Table.prefix = Prefix.of_quad 10 0 0 0 24; attrs = attrs_a };
      { Table.prefix = Prefix.of_quad 10 0 1 0 24; attrs = attrs_b };
      { Table.prefix = Prefix.of_quad 10 0 2 0 24; attrs = attrs_a };
    ]
  in
  match Update_gen.pack table with
  | [ Msg.Update u1; Msg.Update u2 ] ->
      Alcotest.(check int) "group A batched" 2 (List.length u1.Msg.nlri);
      Alcotest.(check int) "group B second" 1 (List.length u2.Msg.nlri)
  | msgs ->
      Alcotest.failf "expected 2 updates, got %d" (List.length msgs)

let test_pack_empty_table () =
  Alcotest.(check int) "empty table packs to nothing" 0
    (List.length (Tdat_bgp.Update_gen.pack []))

(* --- MCT configuration knobs ----------------------------------------------- *)

let test_mct_dup_fraction () =
  let open Tdat_bgp in
  let fresh lo n =
    List.init n (fun i -> Prefix.of_quad 10 ((lo + i) / 256) ((lo + i) mod 256) 0 24)
  in
  (* An update that re-announces half its prefixes: churn at
     dup_fraction 0.4, still-transfer at 0.6. *)
  let updates =
    [
      (1_000, fresh 0 100);
      (2_000, fresh 50 100) (* 50% duplicates *);
      (3_000, fresh 150 100);
    ]
  in
  let end_at frac =
    let config = { Mct.default_config with Mct.dup_fraction = frac } in
    (Option.get (Mct.transfer_end ~config ~start:0 updates)).Mct.end_ts
  in
  Alcotest.(check int) "strict cuts at the dup update" 1_000 (end_at 0.4);
  Alcotest.(check int) "lenient keeps going" 3_000 (end_at 0.6)

(* --- big-endian pcap -------------------------------------------------------- *)

let test_pcap_big_endian () =
  (* Byte-swap the little-endian global+record headers of a valid file
     and check the reader still accepts it. *)
  let trace =
    Tdat_pkt.Trace.of_segments [ data ~ts:1_000_000 ~seq:0 100 ]
  in
  let le = Bytes.of_string (Tdat_pkt.Pcap.encode trace) in
  let swap32 off =
    let a = Bytes.get le off and b = Bytes.get le (off + 1) in
    let c = Bytes.get le (off + 2) and d = Bytes.get le (off + 3) in
    Bytes.set le off d; Bytes.set le (off + 1) c;
    Bytes.set le (off + 2) b; Bytes.set le (off + 3) a
  in
  let swap16 off =
    let a = Bytes.get le off and b = Bytes.get le (off + 1) in
    Bytes.set le off b; Bytes.set le (off + 1) a
  in
  swap32 0; swap16 4; swap16 6; swap32 8; swap32 12; swap32 16; swap32 20;
  swap32 24; swap32 28; swap32 32; swap32 36;
  let decoded = Tdat_pkt.Pcap.decode (Bytes.to_string le) in
  Alcotest.(check int) "big-endian file read" 1 (Tdat_pkt.Trace.length decoded);
  Alcotest.(check int) "timestamp preserved" 1_000_000
    (List.hd (Tdat_pkt.Trace.segments decoded)).Seg.ts

(* --- speaker keepalives ------------------------------------------------------ *)

let test_speaker_keepalives_when_blocked () =
  (* A group member held back by a sibling that never acknowledges must
     emit periodic keepalives through the stall (Section II-B3: "only
     the keep-alive messages are periodically exchanged"). *)
  let engine = Tdat_netsim.Engine.create () in
  let module Connection = Tdat_tcpsim.Connection in
  let site =
    Connection.Site.create ~engine ~local:(Connection.path ~delay:50 ()) ()
  in
  let sender2_ep = Tdat_pkt.Endpoint.of_quad 10 1 0 1 20002 in
  let conn =
    Connection.create ~engine ~sender_ep ~receiver_ep
      ~upstream:(Connection.path ()) ~site ()
  in
  let conn2 =
    Connection.create ~engine ~sender_ep:sender2_ep ~receiver_ep
      ~upstream:(Connection.path ()) ~site ()
  in
  let rcv = Connection.receiver conn in
  Tdat_tcpsim.Receiver.set_on_data rcv (fun () ->
      Tdat_tcpsim.Receiver.consume rcv (Tdat_tcpsim.Receiver.available rcv));
  (* The sibling's receiver is dead from the start: it never establishes,
     so its group progress stays at zero and blocks the healthy member. *)
  Tdat_tcpsim.Receiver.kill (Connection.receiver conn2);
  let table =
    Tdat_bgp.Table.generate ~rng:(Tdat_rng.Rng.create 3) ~n_prefixes:600 ()
  in
  let speaker =
    Tdat_bgpsim.Speaker.create ~engine
      ~msgs:(Tdat_bgp.Update_gen.pack table)
      ~timer_interval:200_000 ~group_window:4
      ~keepalive_interval:5_000_000 ()
  in
  ignore
    (Tdat_bgpsim.Speaker.add_member speaker ~name:"healthy"
       (Connection.sender conn));
  ignore
    (Tdat_bgpsim.Speaker.add_member speaker ~name:"dead"
       (Connection.sender conn2));
  Connection.start conn;
  Connection.start conn2;
  Tdat_bgpsim.Speaker.start speaker;
  Tdat_netsim.Engine.run ~until:31_000_000 engine;
  let keepalives =
    Tdat_pkt.Trace.segments (Connection.Site.trace site)
    |> List.filter (fun (s : Seg.t) ->
           s.Seg.len = 19 && Tdat_pkt.Endpoint.equal s.Seg.src sender_ep)
  in
  Alcotest.(check bool)
    (Printf.sprintf "periodic keepalives (%d seen)" (List.length keepalives))
    true
    (List.length keepalives >= 4)

let suite =
  [
    Alcotest.test_case "void periods" `Quick test_void_periods;
    Alcotest.test_case "interp near receiver" `Quick
      test_interpretation_near_receiver;
    Alcotest.test_case "interp near sender" `Quick
      test_interpretation_near_sender;
    Alcotest.test_case "pack order" `Quick test_pack_order;
    Alcotest.test_case "pack empty" `Quick test_pack_empty_table;
    Alcotest.test_case "mct dup fraction" `Quick test_mct_dup_fraction;
    Alcotest.test_case "pcap big endian" `Quick test_pcap_big_endian;
    Alcotest.test_case "speaker keepalives" `Quick
      test_speaker_keepalives_when_blocked;
  ]
