(* Discrete-event engine, heap, links, loss models, RNG determinism. *)

open Tdat_netsim
module Seg = Tdat_pkt.Tcp_segment

let ep1 = Tdat_pkt.Endpoint.of_quad 10 0 0 1 1
let ep2 = Tdat_pkt.Endpoint.of_quad 10 0 0 2 2

let mk_seg ?(len = 1000) () =
  Seg.v ~ts:0 ~src:ep1 ~dst:ep2 ~seq:0 ~ack:0 ~len
    ~payload:(String.make len 'x') ~flags:Seg.data_flags ()

(* --- Heap --------------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5; 1; 9; 3; 7; 1; 0 ];
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 5; 7; 9 ]
    (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1 "a";
  Heap.push h 1 "b";
  Heap.push h 1 "c";
  let order =
    List.init 3 (fun _ -> snd (Option.get (Heap.pop h)))
  in
  Alcotest.(check (list string)) "fifo among equal keys" [ "a"; "b"; "c" ] order

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 arb f)

let heap_qcheck =
  prop "heap pops sorted" QCheck.(list small_nat) (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* --- Engine --------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e 30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule_at e 10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule_at e 20 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule_at e 10 (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.is_pending timer);
  Engine.cancel timer;
  Engine.run e;
  Alcotest.(check bool) "cancelled did not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule_at e 10 (fun () -> incr fired));
  ignore (Engine.schedule_at e 100 (fun () -> incr fired));
  Engine.run ~until:50 e;
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check int) "clock clamped" 50 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "resumes" 2 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e 10 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule_after e 5 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.check_raises "no scheduling in the past"
    (Invalid_argument "Engine.schedule_at: 5 is in the past (now 15)")
    (fun () -> ignore (Engine.schedule_at e 5 (fun () -> ())))

(* --- Link ------------------------------------------------------------------ *)

let test_link_delay_and_serialization () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create ~engine:e ~delay:1_000 ~bandwidth_bps:8_000_000
      ~deliver:(fun s -> arrivals := s.Seg.ts :: !arrivals)
      ()
  in
  (* 1000B + 54B overhead at 1 MB/s = 1054 µs serialization + 1000 µs prop. *)
  Link.send link (mk_seg ());
  Engine.run e;
  Alcotest.(check (list int)) "arrival time" [ 2054 ] !arrivals

let test_link_queueing () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create ~engine:e ~delay:0 ~bandwidth_bps:8_000_000
      ~deliver:(fun s -> arrivals := s.Seg.ts :: !arrivals)
      ()
  in
  Link.send link (mk_seg ());
  Link.send link (mk_seg ());
  Engine.run e;
  (* Second packet waits for the first to serialize. *)
  Alcotest.(check (list int)) "back to back" [ 1054; 2108 ] (List.rev !arrivals)

let test_link_drop_tail () =
  let e = Engine.create () in
  let delivered = ref 0 and dropped = ref 0 in
  let link =
    Link.create ~engine:e ~delay:0 ~bandwidth_bps:1_000_000 ~buffer_pkts:3
      ~on_drop:(fun _ -> incr dropped)
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 10 do
    Link.send link (mk_seg ())
  done;
  Engine.run e;
  Alcotest.(check int) "buffer bound" 3 !delivered;
  Alcotest.(check int) "rest dropped" 7 !dropped;
  let s = Link.stats link in
  Alcotest.(check int) "stats overflow" 7 s.Link.dropped_overflow

let test_link_loss_model () =
  let e = Engine.create () in
  let delivered = ref 0 in
  let spans =
    Tdat_timerange.Span_set.of_span (Tdat_timerange.Span.v 0 1)
  in
  let link =
    Link.create ~engine:e ~delay:0 ~bandwidth_bps:1_000_000_000
      ~loss:(Loss.during spans)
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  Link.send link (mk_seg ()) (* at t=0: dropped *);
  ignore (Engine.schedule_at e 10 (fun () -> Link.send link (mk_seg ())));
  Engine.run e;
  Alcotest.(check int) "only post-window delivered" 1 !delivered;
  Alcotest.(check int) "loss recorded" 1 (Link.stats link).Link.dropped_loss

(* --- Loss models -------------------------------------------------------------- *)

let test_gilbert_bursts () =
  let rng = Tdat_rng.Rng.create 3 in
  let m = Loss.gilbert rng ~p_enter:0.05 ~p_exit:0.3 ~p_loss_bad:1.0 in
  let drops = List.init 10_000 (fun i -> Loss.drop m i) in
  let total = List.length (List.filter Fun.id drops) in
  Alcotest.(check bool) "some loss" true (total > 0);
  (* burstiness: at least one run of 2+ consecutive drops *)
  let rec has_run = function
    | true :: true :: _ -> true
    | _ :: rest -> has_run rest
    | [] -> false
  in
  Alcotest.(check bool) "bursty" true (has_run drops)

let test_bernoulli_rate () =
  let rng = Tdat_rng.Rng.create 4 in
  let m = Loss.bernoulli rng 0.1 in
  let n = 20_000 in
  let drops = ref 0 in
  for i = 1 to n do
    if Loss.drop m i then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "rate near 0.1" true (rate > 0.07 && rate < 0.13)

(* --- Rng ------------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Tdat_rng.Rng.create 42 and b = Tdat_rng.Rng.create 42 in
  let seq r = List.init 50 (fun _ -> Tdat_rng.Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Tdat_rng.Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (seq a <> seq c)

let test_rng_ranges () =
  let r = Tdat_rng.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Tdat_rng.Rng.int_in r 5 10 in
    if v < 5 || v > 10 then Alcotest.fail "int_in out of range"
  done;
  for _ = 1 to 1000 do
    let v = Tdat_rng.Rng.float r 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.fail "float out of range"
  done

let test_rng_weighted () =
  let r = Tdat_rng.Rng.create 8 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Tdat_rng.Rng.weighted r [ (9.0, "a"); (1.0, "b") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Hashtbl.find counts "a" and b = Hashtbl.find counts "b" in
  Alcotest.(check bool) "weights respected" true (a > 5 * b)

let test_sniffer () =
  let e = Engine.create () in
  let sniffer = Sniffer.create ~engine:e () in
  ignore
    (Engine.schedule_at e 500 (fun () ->
         Sniffer.tap sniffer ~then_:(fun _ -> ()) (mk_seg ())));
  Engine.run e;
  let trace = Sniffer.trace sniffer in
  Alcotest.(check int) "captured" 1 (Tdat_pkt.Trace.length trace);
  Alcotest.(check int) "restamped" 500
    (List.hd (Tdat_pkt.Trace.segments trace)).Seg.ts

let suite =
  [
    Alcotest.test_case "heap order" `Quick test_heap_order;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    heap_qcheck;
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine nested" `Quick test_engine_nested_schedule;
    Alcotest.test_case "link delay" `Quick test_link_delay_and_serialization;
    Alcotest.test_case "link queueing" `Quick test_link_queueing;
    Alcotest.test_case "link drop tail" `Quick test_link_drop_tail;
    Alcotest.test_case "link loss model" `Quick test_link_loss_model;
    Alcotest.test_case "gilbert bursts" `Quick test_gilbert_bursts;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
    Alcotest.test_case "sniffer" `Quick test_sniffer;
  ]

(* Scheduling under churn: cancelled timers never fire, survivors fire in
   order, regardless of the interleaving. *)
let engine_churn_prop =
  prop "engine honors cancellation under churn"
    QCheck.(list (pair small_nat bool))
    (fun plan ->
      let e = Engine.create () in
      let fired = ref [] in
      let timers =
        List.map
          (fun (delay, cancel) ->
            let timer =
              Engine.schedule_at e (delay + 1) (fun () ->
                  fired := (delay + 1) :: !fired)
            in
            (timer, cancel))
          plan
      in
      List.iter (fun (t, c) -> if c then Engine.cancel t) timers;
      Engine.run e;
      let expected =
        List.filter_map
          (fun (delay, cancel) -> if cancel then None else Some (delay + 1))
          plan
        |> List.sort compare
      in
      List.rev !fired = expected)

let suite = suite @ [ engine_churn_prop ]
