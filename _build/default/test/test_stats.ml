(* Statistics substrate: descriptive stats, CDFs, histograms, and the
   L-method knee detector used for BGP timer inference. *)

open Tdat_stats

let test_summarize () =
  let s = Descriptive.summarize [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check int) "n" 8 s.Descriptive.n;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Descriptive.mean;
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 s.Descriptive.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Descriptive.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Descriptive.max

let test_summarize_edge () =
  let s = Descriptive.summarize [ 42. ] in
  Alcotest.(check (float 1e-9)) "single mean" 42. s.Descriptive.mean;
  Alcotest.(check (float 1e-9)) "single stddev" 0. s.Descriptive.stddev;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Descriptive.summarize: empty sample") (fun () ->
      ignore (Descriptive.summarize []))

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Descriptive.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1. (Descriptive.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p100" 5. (Descriptive.percentile 100. xs);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.
    (Descriptive.percentile 25. xs)

let test_slow_threshold () =
  (* mean 10, sd 0 -> threshold = 10 *)
  Alcotest.(check (float 1e-9)) "degenerate" 10.
    (Descriptive.slow_threshold [ 10.; 10.; 10. ])

let test_cdf () =
  let c = Cdf.of_samples [ 1.; 1.; 2.; 3. ] in
  Alcotest.(check (float 1e-9)) "eval below" 0. (Cdf.eval c 0.5);
  Alcotest.(check (float 1e-9)) "eval at dup" 0.5 (Cdf.eval c 1.);
  Alcotest.(check (float 1e-9)) "eval top" 1. (Cdf.eval c 3.);
  Alcotest.(check (float 1e-9)) "quantile 0.5" 1. (Cdf.quantile c 0.5);
  Alcotest.(check (float 1e-9)) "quantile 1.0" 3. (Cdf.quantile c 1.0);
  Alcotest.(check int) "points dedup" 3 (List.length (Cdf.points c));
  let lo, hi = Cdf.support c in
  Alcotest.(check (float 1e-9)) "support lo" 1. lo;
  Alcotest.(check (float 1e-9)) "support hi" 3. hi

let test_histogram () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add_list h [ 0.5; 1.5; 1.6; 9.5; 11. (* clamped *) ];
  Alcotest.(check int) "total" 5 (Histogram.total h);
  Alcotest.(check (float 1e-9)) "mode" 1.
    (Option.get (Histogram.mode_center h));
  Alcotest.(check int) "nonempty bins" 2
    (List.length (Histogram.nonempty_bins h))

let test_linear_fit () =
  let points = Array.init 10 (fun i -> (float_of_int i, (2. *. float_of_int i) +. 1.)) in
  let f = Knee.linear_fit points in
  Alcotest.(check (float 1e-6)) "slope" 2. f.Knee.slope;
  Alcotest.(check (float 1e-6)) "intercept" 1. f.Knee.intercept;
  Alcotest.(check (float 1e-6)) "rmse" 0. f.Knee.rmse

let test_knee_detection () =
  (* A flat region at 200 then a steep rise: knee near the transition. *)
  let flat = List.init 60 (fun _ -> 200.) in
  let rise = List.init 15 (fun i -> 300. +. (float_of_int i *. 150.)) in
  match Knee.knee_of_sorted (flat @ rise) with
  | None -> Alcotest.fail "no knee found"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "knee %.0f near flat value" v)
        true
        (v >= 150. && v <= 450.)

let test_knee_too_few () =
  Alcotest.(check (option (float 1e-9))) "tiny input" None
    (Knee.knee_of_sorted [ 1.; 2.; 3. ])

let test_ascii_plots_render () =
  (* Smoke: plots produce non-empty multi-line output and don't raise. *)
  let cdf = Ascii_plot.cdf [ ("a", [ (0., 0.1); (1., 0.5); (2., 1.0) ]) ] in
  Alcotest.(check bool) "cdf renders" true (String.length cdf > 100);
  let sc =
    Ascii_plot.scatter ~x_max:1. ~y_max:1.
      [ ('x', [ (0.2, 0.3); (0.9, 0.9) ]) ]
  in
  Alcotest.(check bool) "scatter renders" true (String.length sc > 100);
  let tl =
    Ascii_plot.timeline ~window:(0., 10.)
      [ ("row", [ (1., 2.); (5., 7.) ]) ]
  in
  Alcotest.(check bool) "timeline has waves" true (String.contains tl '#')

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:200 arb f)

let arb_samples =
  QCheck.list_of_size (QCheck.Gen.int_range 1 50) (QCheck.float_range 0. 1000.)

let qcheck_suite =
  [
    prop "percentile within support" arb_samples (fun xs ->
        QCheck.assume (xs <> []);
        let p = Descriptive.percentile 37. xs in
        let s = Descriptive.summarize xs in
        p >= s.Descriptive.min && p <= s.Descriptive.max);
    prop "cdf eval monotone" arb_samples (fun xs ->
        QCheck.assume (xs <> []);
        let c = Cdf.of_samples xs in
        Cdf.eval c 100. <= Cdf.eval c 500.);
    prop "welford mean matches naive" arb_samples (fun xs ->
        QCheck.assume (xs <> []);
        let naive =
          List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
        in
        abs_float (Descriptive.mean xs -. naive) < 1e-6);
  ]

let suite =
  [
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize edge" `Quick test_summarize_edge;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "slow threshold" `Quick test_slow_threshold;
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "knee detection" `Quick test_knee_detection;
    Alcotest.test_case "knee too few" `Quick test_knee_too_few;
    Alcotest.test_case "ascii plots" `Quick test_ascii_plots_render;
  ]
  @ qcheck_suite
