(* Unit-level exercises of the problem detectors on hand-crafted traces:
   each detector must fire on its textbook signature and stay silent on
   clean transfers. *)

open Tdat
module Seg = Tdat_pkt.Tcp_segment
module Span = Tdat_timerange.Span

let sender_ep = Tdat_pkt.Endpoint.of_quad 10 1 0 1 20001
let receiver_ep = Tdat_pkt.Endpoint.of_quad 10 0 0 2 179
let flow = Tdat_pkt.Flow.v ~sender:sender_ep ~receiver:receiver_ep

let data ~ts ~seq len =
  Seg.v ~ts ~src:sender_ep ~dst:receiver_ep ~seq ~ack:0 ~len
    ~payload:(String.make len 'd') ~flags:Seg.data_flags ()

let ack ~ts ~ack:a ?(window = 65535) () =
  Seg.v ~ts ~src:receiver_ep ~dst:sender_ep ~seq:0 ~ack:a ~window
    ~flags:Seg.ack_flags ()

let gen_of segs =
  let p = Conn_profile.of_trace (Tdat_pkt.Trace.of_segments segs) ~flow in
  Series_gen.generate p

(* A paced transfer: burst of data every [period], acked quickly. *)
let paced_transfer ~period ~jitter ~bursts =
  let rng = Tdat_rng.Rng.create 33 in
  let segs = ref [] in
  let seq = ref 0 in
  for i = 0 to bursts - 1 do
    let t = (i * period) + Tdat_rng.Rng.int rng (jitter + 1) in
    segs := data ~ts:t ~seq:!seq 1000 :: !segs;
    segs := ack ~ts:(t + 1_000) ~ack:(!seq + 1000) () :: !segs;
    seq := !seq + 1000
  done;
  List.rev !segs

let test_timer_fires_on_regular_gaps () =
  let gen = gen_of (paced_transfer ~period:200_000 ~jitter:2_000 ~bursts:40) in
  match Detect_timer.detect gen with
  | None -> Alcotest.fail "regular 200ms gaps not detected"
  | Some t ->
      Alcotest.(check bool) "timer near 200ms" true
        (t.Detect_timer.timer > 190_000 && t.Detect_timer.timer < 215_000);
      Alcotest.(check bool) "most gaps counted" true (t.Detect_timer.gaps >= 30)

let test_timer_silent_on_irregular_gaps () =
  (* Same mean but huge jitter: no pronounced timer. *)
  let gen =
    gen_of (paced_transfer ~period:200_000 ~jitter:350_000 ~bursts:40)
  in
  Alcotest.(check bool) "irregular gaps not a timer" true
    (Detect_timer.detect gen = None)

let test_timer_silent_on_few_gaps () =
  let gen = gen_of (paced_transfer ~period:200_000 ~jitter:0 ~bursts:5) in
  Alcotest.(check bool) "below min_count" true (Detect_timer.detect gen = None)

let test_loss_detector_counts_episode_packets () =
  (* 10 redeliveries clustered within a second: one episode >= 8. *)
  let segs = ref [ data ~ts:0 ~seq:0 14_000 ] in
  for i = 0 to 9 do
    (* Same bytes again: redeliveries, 100 ms apart. *)
    segs := data ~ts:(500_000 + (i * 100_000)) ~seq:(i * 1_000) 1_000 :: !segs
  done;
  segs := data ~ts:2_000_000 ~seq:14_000 1_000 :: !segs;
  segs := ack ~ts:2_001_000 ~ack:15_000 () :: !segs;
  let gen = gen_of (List.rev !segs) in
  let r = Detect_loss.detect gen in
  Alcotest.(check int) "one episode at threshold 8" 1
    (List.length r.Detect_loss.episodes);
  Alcotest.(check bool) "episode counts all packets" true
    ((List.hd r.Detect_loss.episodes).Detect_loss.packets >= 10)

let test_loss_detector_merge_gap () =
  (* Two clusters of 5 separated by 1 s merge below the default 1.5 s
     merge gap, but split with merge_gap = 0.5 s. *)
  let segs = ref [ data ~ts:0 ~seq:0 12_000 ] in
  for i = 0 to 4 do
    segs := data ~ts:(500_000 + (i * 50_000)) ~seq:(i * 1_000) 1_000 :: !segs
  done;
  for i = 0 to 4 do
    segs := data ~ts:(1_750_000 + (i * 50_000)) ~seq:(5_000 + (i * 1_000)) 1_000 :: !segs
  done;
  let gen = gen_of (List.rev !segs) in
  Alcotest.(check int) "merged across the gap" 1
    (List.length (Detect_loss.detect gen).Detect_loss.episodes);
  Alcotest.(check int) "split with a tight merge gap" 0
    (List.length
       (Detect_loss.detect ~merge_gap:100_000 gen).Detect_loss.episodes)

let test_loss_detector_silent_when_clean () =
  let gen = gen_of (paced_transfer ~period:50_000 ~jitter:0 ~bursts:30) in
  Alcotest.(check bool) "clean transfer" true
    ((Detect_loss.detect gen).Detect_loss.episodes = [])

let test_peer_group_suspect_requires_keepalives () =
  (* 100 s of pure silence is NOT a suspect (could be anything)... *)
  let silent =
    [
      data ~ts:0 ~seq:0 1_000;
      ack ~ts:1_000 ~ack:1_000 ();
      data ~ts:100_000_000 ~seq:1_000 1_000;
      ack ~ts:100_001_000 ~ack:2_000 ();
    ]
  in
  Alcotest.(check int) "silence alone is not blocking" 0
    (List.length (Detect_peer_group.suspects (gen_of silent)));
  (* ...but the same idle period carrying periodic keepalives is. *)
  let keepalives =
    List.init 3 (fun i ->
        data ~ts:(30_000_000 * (i + 1)) ~seq:(1_000 + (i * 19)) 19)
  in
  let blocked =
    [
      data ~ts:0 ~seq:0 1_000;
      ack ~ts:1_000 ~ack:1_000 ();
      data ~ts:100_000_000 ~seq:1_057 1_000;
      ack ~ts:100_001_000 ~ack:2_057 ();
    ]
    @ keepalives
  in
  let suspects = Detect_peer_group.suspects (gen_of blocked) in
  Alcotest.(check int) "keepalive-only idle detected" 1 (List.length suspects);
  Alcotest.(check int) "keepalives counted" 3
    (List.hd suspects).Detect_peer_group.keepalives

let test_zero_ack_bug_conflict () =
  (* Zero-window periods overlapping a retransmission recovery. *)
  let segs =
    [
      data ~ts:0 ~seq:0 1_000;
      ack ~ts:1_000 ~ack:1_000 ~window:0 ();
      (* Redelivery of the same bytes during the zero-window phase. *)
      data ~ts:300_000 ~seq:0 1_000;
      ack ~ts:301_000 ~ack:1_000 ~window:0 ();
      data ~ts:700_000 ~seq:0 1_000;
      ack ~ts:900_000 ~ack:1_000 ~window:8_000 ();
      data ~ts:901_000 ~seq:1_000 1_000;
      ack ~ts:902_000 ~ack:2_000 ~window:8_000 ();
    ]
  in
  let gen = gen_of segs in
  match Detect_zero_ack.detect gen with
  | None -> Alcotest.fail "conflict not detected"
  | Some r ->
      Alcotest.(check bool) "substantial conflict" true
        (r.Detect_zero_ack.total > 100_000)

let test_zero_ack_bug_silent_without_zero_window () =
  let segs =
    [
      data ~ts:0 ~seq:0 1_000;
      data ~ts:300_000 ~seq:0 1_000 (* redelivery, but window open *);
      ack ~ts:301_000 ~ack:1_000 ~window:8_000 ();
    ]
  in
  Alcotest.(check bool) "no zero window, no conflict" true
    (Detect_zero_ack.detect (gen_of segs) = None)

let test_report_renders () =
  let segs = paced_transfer ~period:200_000 ~jitter:0 ~bursts:20 in
  let a =
    Analyzer.analyze (Tdat_pkt.Trace.of_segments segs) ~flow
  in
  let text = Report.to_string a in
  Alcotest.(check bool) "mentions factors" true
    (String.length text > 100);
  let timeline = Report.series_timeline a.Analyzer.series in
  Alcotest.(check bool) "timeline has rows" true
    (String.contains timeline '|')

let suite =
  [
    Alcotest.test_case "timer: regular gaps" `Quick
      test_timer_fires_on_regular_gaps;
    Alcotest.test_case "timer: irregular gaps" `Quick
      test_timer_silent_on_irregular_gaps;
    Alcotest.test_case "timer: few gaps" `Quick test_timer_silent_on_few_gaps;
    Alcotest.test_case "loss: episode packets" `Quick
      test_loss_detector_counts_episode_packets;
    Alcotest.test_case "loss: merge gap" `Quick test_loss_detector_merge_gap;
    Alcotest.test_case "loss: clean transfer" `Quick
      test_loss_detector_silent_when_clean;
    Alcotest.test_case "peer group: keepalives required" `Quick
      test_peer_group_suspect_requires_keepalives;
    Alcotest.test_case "zero-ack: conflict" `Quick test_zero_ack_bug_conflict;
    Alcotest.test_case "zero-ack: silent" `Quick
      test_zero_ack_bug_silent_without_zero_window;
    Alcotest.test_case "report renders" `Quick test_report_renders;
  ]

let test_custom_series () =
  (* The user-extensibility hook of Section III-C: define derived series
     with set algebra and quantify them like built-ins. *)
  let segs = paced_transfer ~period:200_000 ~jitter:0 ~bursts:20 in
  let gen = gen_of segs in
  Series_gen.define_union gen ~name:"activity"
    [ Series_defs.Transmission; Series_defs.Outstanding ];
  Series_gen.define_inter gen ~name:"app-during-loss"
    [ Series_defs.Send_app_limited; Series_defs.All_loss ];
  Alcotest.(check (list string)) "registered" [ "activity"; "app-during-loss" ]
    (Series_gen.custom_names gen);
  (match Series_gen.custom_ratio gen "activity" with
  | Some r -> Alcotest.(check bool) "activity ratio positive" true (r > 0.)
  | None -> Alcotest.fail "activity missing");
  Alcotest.(check (option (float 1e-9))) "empty intersection" (Some 0.)
    (Series_gen.custom_ratio gen "app-during-loss");
  Alcotest.(check bool) "unknown name" true (Series_gen.custom gen "nope" = None)

let suite =
  suite @ [ Alcotest.test_case "custom series" `Quick test_custom_series ]
