test/test_pkt.ml: Alcotest Endpoint Filename Flow Format Fun List Pcap QCheck QCheck_alcotest String Sys Tcp_segment Tdat_pkt Trace
