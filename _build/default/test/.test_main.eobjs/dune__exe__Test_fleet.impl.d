test/test_fleet.ml: Alcotest Fleet List Scenario Tdat Tdat_bgpsim Tdat_pkt
