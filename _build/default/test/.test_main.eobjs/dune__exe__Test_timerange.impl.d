test/test_timerange.ml: Alcotest Format List QCheck QCheck_alcotest Series Span Span_set Tdat_timerange Time_us
