test/test_tcpsim.ml: Alcotest Buffer Char Connection List Receiver Rto Sender String Tcp_types Tdat_netsim Tdat_pkt Tdat_rng Tdat_tcpsim
