test/test_bgpsim.ml: Alcotest Collector List Printf Scenario Tdat_bgp Tdat_bgpsim Tdat_pkt Tdat_timerange
