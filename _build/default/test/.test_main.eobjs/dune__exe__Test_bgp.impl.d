test/test_bgp.ml: Alcotest As_path Attr Buffer Bytes List Mct Mrt Msg Msg_reader Prefix Stream_reassembly String Table Tdat_bgp Tdat_pkt Tdat_rng Update_gen
