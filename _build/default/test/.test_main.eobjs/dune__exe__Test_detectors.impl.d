test/test_detectors.ml: Alcotest Analyzer Conn_profile Detect_loss Detect_peer_group Detect_timer Detect_zero_ack List Report Series_defs Series_gen String Tdat Tdat_pkt Tdat_rng Tdat_timerange
