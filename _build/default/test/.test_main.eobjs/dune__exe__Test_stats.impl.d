test/test_stats.ml: Alcotest Array Ascii_plot Cdf Descriptive Histogram Knee List Option Printf QCheck QCheck_alcotest String Tdat_stats
