test/test_netsim.ml: Alcotest Engine Fun Hashtbl Heap Link List Loss Option QCheck QCheck_alcotest Sniffer String Tdat_netsim Tdat_pkt Tdat_rng Tdat_timerange
