type t = float array (* sorted samples *)

let of_samples xs =
  if xs = [] then invalid_arg "Cdf.of_samples: empty sample";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let n = Array.length

(* Number of samples <= x, via binary search for the upper bound. *)
let count_le a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let eval a x = float_of_int (count_le a x) /. float_of_int (Array.length a)

let quantile a q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile: q not in [0,1]";
  let len = Array.length a in
  let k = int_of_float (ceil (q *. float_of_int len)) in
  a.(Stdlib.max 0 (Stdlib.min (len - 1) (k - 1)))

let points a =
  let len = Array.length a in
  let rec collect i acc =
    if i >= len then List.rev acc
    else begin
      (* Skip to the last occurrence of this value to get the step top. *)
      let v = a.(i) in
      let j = ref i in
      while !j + 1 < len && a.(!j + 1) = v do
        incr j
      done;
      let f = float_of_int (!j + 1) /. float_of_int len in
      collect (!j + 1) ((v, f) :: acc)
    end
  in
  collect 0 []

let support a = (a.(0), a.(Array.length a - 1))
