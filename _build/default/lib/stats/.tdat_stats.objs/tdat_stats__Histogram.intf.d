lib/stats/histogram.mli:
