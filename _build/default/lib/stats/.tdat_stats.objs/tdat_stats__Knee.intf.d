lib/stats/knee.mli:
