lib/stats/cdf.mli:
