lib/stats/histogram.ml: Array List Stdlib
