lib/stats/ascii_plot.ml: Array Buffer Bytes List Printf Stdlib String
