lib/stats/knee.ml: Array Float
