lib/stats/descriptive.ml: Array Float Format List Stdlib
