type t = { lo : float; width : float; counts : int array }

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  { lo; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0 }

let bin_index h x =
  let i = int_of_float ((x -. h.lo) /. h.width) in
  Stdlib.max 0 (Stdlib.min (Array.length h.counts - 1) i)

let add h x =
  let i = bin_index h x in
  h.counts.(i) <- h.counts.(i) + 1

let add_list h xs = List.iter (add h) xs
let counts h = Array.copy h.counts
let total h = Array.fold_left ( + ) 0 h.counts
let bin_center h i = h.lo +. ((float_of_int i +. 0.5) *. h.width)

let mode_center h =
  if total h = 0 then None
  else begin
    let best = ref 0 in
    Array.iteri (fun i c -> if c > h.counts.(!best) then best := i) h.counts;
    Some (bin_center h !best)
  end

let nonempty_bins h =
  let out = ref [] in
  Array.iteri
    (fun i c -> if c > 0 then out := (bin_center h i, c) :: !out)
    h.counts;
  List.rev !out
