type fit = { slope : float; intercept : float; rmse : float }

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Knee.linear_fit: need at least 2 points";
  let fn = float_of_int n in
  let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  let slope =
    if abs_float denom < 1e-12 then 0.
    else ((fn *. !sxy) -. (!sx *. !sy)) /. denom
  in
  let intercept = (!sy -. (slope *. !sx)) /. fn in
  let se = ref 0. in
  Array.iter
    (fun (x, y) ->
      let e = y -. ((slope *. x) +. intercept) in
      se := !se +. (e *. e))
    points;
  { slope; intercept; rmse = sqrt (!se /. fn) }

let l_method points =
  let n = Array.length points in
  if n < 4 then None
  else begin
    let fn = float_of_int n in
    let best = ref None in
    (* Split c (1-based count of left points) from 2 to n-2 so both sides
       hold at least two points. *)
    for c = 2 to n - 2 do
      let left = Array.sub points 0 c in
      let right = Array.sub points c (n - c) in
      let fl = linear_fit left and fr = linear_fit right in
      let cost =
        (float_of_int c /. fn *. fl.rmse)
        +. (float_of_int (n - c) /. fn *. fr.rmse)
      in
      match !best with
      | Some (_, best_cost) when best_cost <= cost -> ()
      | _ -> best := Some (c, cost)
    done;
    match !best with
    | None -> None
    | Some (c, _) ->
        let x, _ = points.(c - 1) in
        Some (c - 1, x)
  end

let knee_of_sorted values =
  match values with
  | [] | [ _ ] | [ _; _ ] | [ _; _; _ ] -> None
  | _ ->
      let a = Array.of_list values in
      Array.sort Float.compare a;
      let points = Array.mapi (fun i v -> (float_of_int i, v)) a in
      (match l_method points with
      | None -> None
      | Some (i, _) -> Some a.(i))
