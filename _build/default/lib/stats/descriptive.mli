(** Descriptive statistics over float samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator); 0 for n < 2. *)
  min : float;
  max : float;
  total : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float
val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0, 100], linear interpolation between
    order statistics.  @raise Invalid_argument on empty input or [p]
    outside [0, 100]. *)

val median : float list -> float

val slow_threshold : float list -> float
(** [mean + 3 * stddev] — the paper's cut for selecting "slow" table
    transfers (Section II-B). *)

val pp_summary : Format.formatter -> summary -> unit
