(** Knee-point detection with the L-method (Salvador & Chan, ICTAI 2004),
    the technique the paper uses to automatically locate the knee in the
    gap-length distribution and hence infer BGP sender timers (Fig. 17). *)

type fit = { slope : float; intercept : float; rmse : float }

val linear_fit : (float * float) array -> fit
(** Least-squares line through the points.
    @raise Invalid_argument on fewer than 2 points. *)

val l_method : (float * float) array -> (int * float) option
(** [l_method points] fits every split of the curve into a left and right
    straight line and returns [(index, x)] of the split minimizing the
    length-weighted RMSE — the knee.  [None] when the curve has fewer than
    4 points (no non-trivial split exists). *)

val knee_of_sorted : float list -> float option
(** Convenience for the paper's use: given raw gap lengths, build the
    sorted-value curve (rank on x, value on y) and return the value at the
    detected knee. *)
