(** Fixed-width histograms over float samples. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins < 1]. *)

val add : t -> float -> unit
(** Samples outside [lo, hi) are clamped into the first/last bin. *)

val add_list : t -> float list -> unit
val counts : t -> int array
val total : t -> int

val bin_center : t -> int -> float

val mode_center : t -> float option
(** Center of the most populated bin; [None] if empty. *)

val nonempty_bins : t -> (float * int) list
(** [(center, count)] for bins with count > 0, in order. *)
