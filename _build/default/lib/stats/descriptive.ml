type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

(* Welford's online algorithm: numerically stable single pass. *)
let summarize xs =
  match xs with
  | [] -> invalid_arg "Descriptive.summarize: empty sample"
  | first :: _ ->
      let n = ref 0 in
      let mean = ref 0. in
      let m2 = ref 0. in
      let mn = ref first and mx = ref first and total = ref 0. in
      let step x =
        incr n;
        let delta = x -. !mean in
        mean := !mean +. (delta /. float_of_int !n);
        m2 := !m2 +. (delta *. (x -. !mean));
        if x < !mn then mn := x;
        if x > !mx then mx := x;
        total := !total +. x
      in
      List.iter step xs;
      let stddev =
        if !n < 2 then 0. else sqrt (!m2 /. float_of_int (!n - 1))
      in
      { n = !n; mean = !mean; stddev; min = !mn; max = !mx; total = !total }

let mean xs = (summarize xs).mean
let stddev xs = (summarize xs).stddev

let percentile p xs =
  if xs = [] then invalid_arg "Descriptive.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p not in [0,100]";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median xs = percentile 50. xs

let slow_threshold xs =
  let s = summarize xs in
  s.mean +. (3. *. s.stddev)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" s.n s.mean
    s.stddev s.min s.max
