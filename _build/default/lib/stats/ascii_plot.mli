(** Plain-text renderings of the paper's figures: CDF curves, scatter
    plots, and square-wave event-series timelines (the role BGPlot plays in
    the paper's tool suite, Table VI). *)

val cdf :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  (string * (float * float) list) list ->
  string
(** [cdf series] renders one or more CDF step curves on a shared grid.
    Each series is [(name, points)] with points as produced by
    {!Cdf.points}.  Distinct series use distinct glyphs. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  x_max:float ->
  y_max:float ->
  (char * (float * float) list) list ->
  string
(** [scatter ~x_max ~y_max series] plots point clouds; each series supplies
    its own marker glyph (Fig. 14). *)

val timeline :
  ?width:int ->
  window:float * float ->
  (string * (float * float) list) list ->
  string
(** [timeline ~window rows] renders each row as a square wave: `▇` where
    some interval covers the column, `_` elsewhere.  Intervals are
    [(start, stop)] in the same unit as [window] (Figs. 5, 9, 11). *)

val curve :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) list ->
  string
(** Single line plot for monotone curves such as the sorted gap-length
    curve of Fig. 17. *)
