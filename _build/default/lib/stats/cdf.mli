(** Empirical cumulative distribution functions, used for every CDF figure
    in the paper (Figs. 3, 4, 16). *)

type t

val of_samples : float list -> t
(** @raise Invalid_argument on the empty list. *)

val n : t -> int

val eval : t -> float -> float
(** [eval cdf x] is the fraction of samples [<= x], in [0, 1]. *)

val quantile : t -> float -> float
(** [quantile cdf q] for [q] in [0, 1]: smallest sample [x] with
    [eval cdf x >= q]. *)

val points : t -> (float * float) list
(** The step points [(x_i, F(x_i))] at each distinct sample value, in
    increasing order — ready to plot or print. *)

val support : t -> float * float
(** Minimum and maximum sample. *)
