type t =
  | Data_pkt
  | Ack_pkt
  | Transmission
  | Outstanding
  | Adv_window
  | Retransmission
  | Out_of_sequence
  | Dup_ack
  | Upstream_loss
  | Downstream_loss
  | Zero_adv_window
  | Keepalive_only
  | Syn_period
  | Fin_period
  | Void_period
  | Send_local_loss
  | Recv_local_loss
  | Network_loss
  | Ack_flight
  | Data_flight
  | Send_app_limited
  | Recv_app_limited
  | Small_adv_window
  | Large_adv_window
  | Adv_bnd_out
  | Cwnd_bnd_out
  | Zero_adv_bnd_out
  | Bandwidth_bound
  | Idle_gap
  | Retrans_period
  | Small_adv_bnd_out
  | Large_adv_bnd_out
  | All_loss
  | Zero_ack_bug

let all =
  [
    Data_pkt;
    Ack_pkt;
    Transmission;
    Outstanding;
    Adv_window;
    Retransmission;
    Out_of_sequence;
    Dup_ack;
    Upstream_loss;
    Downstream_loss;
    Zero_adv_window;
    Keepalive_only;
    Syn_period;
    Fin_period;
    Void_period;
    Send_local_loss;
    Recv_local_loss;
    Network_loss;
    Ack_flight;
    Data_flight;
    Send_app_limited;
    Recv_app_limited;
    Small_adv_window;
    Large_adv_window;
    Adv_bnd_out;
    Cwnd_bnd_out;
    Zero_adv_bnd_out;
    Bandwidth_bound;
    Idle_gap;
    Retrans_period;
    Small_adv_bnd_out;
    Large_adv_bnd_out;
    All_loss;
    Zero_ack_bug;
  ]

let to_string = function
  | Data_pkt -> "DataPkt"
  | Ack_pkt -> "AckPkt"
  | Transmission -> "Transmission"
  | Outstanding -> "Outstanding"
  | Adv_window -> "AdvWindow"
  | Retransmission -> "Retransmission"
  | Out_of_sequence -> "OutOfSequence"
  | Dup_ack -> "DupAck"
  | Upstream_loss -> "UpstreamLoss"
  | Downstream_loss -> "DownstreamLoss"
  | Zero_adv_window -> "ZeroAdvWindow"
  | Keepalive_only -> "KeepaliveOnly"
  | Syn_period -> "SynPeriod"
  | Fin_period -> "FinPeriod"
  | Void_period -> "VoidPeriod"
  | Send_local_loss -> "SendLocalLoss"
  | Recv_local_loss -> "RecvLocalLoss"
  | Network_loss -> "NetworkLoss"
  | Ack_flight -> "AckFlight"
  | Data_flight -> "DataFlight"
  | Send_app_limited -> "SendAppLimited"
  | Recv_app_limited -> "RecvAppLimited"
  | Small_adv_window -> "SmallAdvWindow"
  | Large_adv_window -> "LargeAdvWindow"
  | Adv_bnd_out -> "AdvBndOut"
  | Cwnd_bnd_out -> "CwndBndOut"
  | Zero_adv_bnd_out -> "ZeroAdvBndOut"
  | Bandwidth_bound -> "BandwidthBound"
  | Idle_gap -> "IdleGap"
  | Retrans_period -> "RetransPeriod"
  | Small_adv_bnd_out -> "SmallAdvBndOut"
  | Large_adv_bnd_out -> "LargeAdvBndOut"
  | All_loss -> "AllLoss"
  | Zero_ack_bug -> "ZeroAckBug"

let stage = function
  | Data_pkt | Ack_pkt | Transmission | Outstanding | Adv_window
  | Retransmission | Out_of_sequence | Dup_ack | Upstream_loss
  | Downstream_loss | Zero_adv_window | Keepalive_only | Syn_period
  | Fin_period | Void_period ->
      `Extraction
  | Send_local_loss | Recv_local_loss | Network_loss -> `Interpretation
  | Ack_flight | Data_flight | Send_app_limited | Recv_app_limited
  | Small_adv_window | Large_adv_window | Adv_bnd_out | Cwnd_bnd_out
  | Zero_adv_bnd_out | Bandwidth_bound | Idle_gap | Retrans_period ->
      `Operation
  | Small_adv_bnd_out | Large_adv_bnd_out | All_loss | Zero_ack_bug ->
      `Algebra

let pp ppf t = Format.pp_print_string ppf (to_string t)
