(** BGP timer-gap detection (Section IV-B, Fig. 17).

    Takes the SendAppLimited series — the periods the sending BGP process
    stayed idle — and looks for a knee in the gap-length distribution: a
    repetitive implementation timer shows up as a cluster of nearly-equal
    gaps, and the knee of the sorted-gap curve sits at the timer value. *)

type result = {
  timer : Tdat_timerange.Time_us.t;  (** Inferred timer period. *)
  gaps : int;                        (** Gaps attributed to the timer. *)
  induced_delay : Tdat_timerange.Time_us.t;
      (** Total idle time those gaps inject into the transfer. *)
}

val detect :
  ?min_gap:Tdat_timerange.Time_us.t ->
  ?max_gap:Tdat_timerange.Time_us.t ->
  ?min_count:int ->
  ?cluster_fraction:float ->
  Series_gen.t ->
  result option
(** [detect gen] returns the pronounced timer, if any.  A timer is
    pronounced when at least [min_count] (default 10) gaps fall in
    [\[min_gap, max_gap\]] (defaults 20 ms and 2 s) and at least
    [cluster_fraction] (default 0.5) of them lie within ±15% of the
    knee value. *)

val gap_distribution : Series_gen.t -> float list
(** Sorted gap lengths (seconds) — the curve of Fig. 17. *)
