type problems = {
  timer : Detect_timer.result option;
  consecutive_losses : Detect_loss.result;
  peer_group_suspects : Detect_peer_group.suspect list;
  zero_ack_bug : Detect_zero_ack.result option;
}

type t = {
  profile : Conn_profile.t;
  shifted : Conn_profile.t;
  shifts : Ack_shift.flight_shift list;
  transfer : Transfer_id.t option;
  series : Series_gen.t;
  factors : Factors.result;
  problems : problems;
}

let analyze ?config ?major_threshold ?mct ?mrt ?(skip_shift = false) trace
    ~flow =
  let profile = Conn_profile.of_trace trace ~flow in
  let shifted, shifts =
    if skip_shift then (profile, []) else Ack_shift.shift profile
  in
  let transfer = Transfer_id.identify ?mct ?mrt trace ~flow in
  let window = Option.map Transfer_id.span transfer in
  let series = Series_gen.generate ?config ?window shifted in
  let factors = Factors.compute ?major_threshold series in
  let problems =
    {
      timer = Detect_timer.detect series;
      consecutive_losses = Detect_loss.detect series;
      peer_group_suspects = Detect_peer_group.suspects series;
      zero_ack_bug = Detect_zero_ack.detect series;
    }
  in
  { profile; shifted; shifts; transfer; series; factors; problems }

let analyze_all ?config ?major_threshold ?mct ?mrt trace =
  Tdat_pkt.Trace.connections trace
  |> List.map (fun key ->
         let flow = Tdat_pkt.Trace.infer_sender trace key in
         let sub =
           Tdat_pkt.Trace.split_connection trace
             ~sender:flow.Tdat_pkt.Flow.sender
             ~receiver:flow.Tdat_pkt.Flow.receiver
         in
         (flow, analyze ?config ?major_threshold ?mct ?mrt sub ~flow))
