open Tdat_timerange
module Seg = Tdat_pkt.Tcp_segment

type flight_shift = {
  span : Span.t;
  n_acks : int;
  estimates : int;
  applied : Time_us.t;
}

(* Group indices [0..n) into flights by inter-arrival gap. *)
let group_flights acks gap =
  let n = Array.length acks in
  let flights = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then flights := List.rev !current :: !flights;
    current := []
  in
  for i = 0 to n - 1 do
    (match !current with
    | last :: _
      when acks.(i).Seg.ts - acks.(last).Seg.ts > gap ->
        flush ()
    | _ -> ());
    current := i :: !current
  done;
  flush ();
  List.rev !flights

(* d2 estimate for one ACK: the delay until the first data packet that
   this ACK's window-edge advance released.  [allowed_before] is the
   right window edge (ack + win) in force before this ACK. *)
let estimate_d2 (profile : Conn_profile.t) ~allowed_before
    ~(ack : Seg.t) ~max_wait =
  let edge = ack.Seg.ack + ack.Seg.window in
  if edge <= allowed_before then None
  else begin
    let data = profile.Conn_profile.data in
    let n = Array.length data in
    (* Binary search for the first data packet after the ACK, then scan
       forward within the bounded wait window. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if data.(mid).Conn_profile.seg.Seg.ts <= ack.Seg.ts then lo := mid + 1
      else hi := mid
    done;
    let rec search i =
      if i >= n then None
      else begin
        let s = data.(i).Conn_profile.seg in
        if s.Seg.ts - ack.Seg.ts > max_wait then None
        else begin
          let seq_end = Seg.seq_end s in
          if seq_end > allowed_before && seq_end <= edge then
            Some (s.Seg.ts - ack.Seg.ts)
          else search (i + 1)
        end
      end
    in
    search !lo
  end

let shift ?flight_gap (profile : Conn_profile.t) =
  let rtt = profile.Conn_profile.rtt in
  let gap =
    match flight_gap with Some g -> g | None -> max 1_000 (rtt / 4)
  in
  let acks = profile.Conn_profile.acks in
  let baseline =
    Option.value ~default:0 profile.Conn_profile.upstream_rtt
  in
  let flights = group_flights acks gap in
  let max_wait = 2 * max rtt 1_000 in
  (* Track the pre-ACK window edge as we walk the ACK stream. *)
  let allowed = ref 0 in
  let shifted = Array.copy acks in
  let infos = ref [] in
  let process flight =
    let members = List.map (fun i -> acks.(i)) flight in
    let first = List.hd members in
    let last = List.nth members (List.length members - 1) in
    let d2s = ref [] in
    List.iter
      (fun (ack : Seg.t) ->
        (match
           estimate_d2 profile ~allowed_before:!allowed ~ack ~max_wait
         with
        | Some d2 when d2 >= 0 -> d2s := d2 :: !d2s
        | _ -> ());
        allowed := max !allowed (ack.Seg.ack + ack.Seg.window))
      members;
    let applied =
      match !d2s with
      | [] -> baseline
      | ds -> List.fold_left min max_int ds
    in
    List.iter
      (fun i -> shifted.(i) <- { acks.(i) with Seg.ts = acks.(i).Seg.ts + applied })
      flight;
    infos :=
      {
        span = Span.v first.Seg.ts (last.Seg.ts + 1);
        n_acks = List.length members;
        estimates = List.length !d2s;
        applied;
      }
      :: !infos
  in
  List.iter process flights;
  Array.sort Seg.compare_ts shifted;
  ( { profile with Conn_profile.acks = shifted },
    List.rev !infos )
