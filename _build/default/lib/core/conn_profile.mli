(** Connection-level pre-processing (Section III-B): the role the paper's
    patched tcptrace plays.

    From a bidirectional trace of one connection this extracts the
    connection profile (start/end, RTT, MSS, maximum advertised window)
    and labels every data packet — retransmission, out-of-sequence,
    in-network reordering — using the sniffer-position reasoning of
    Section II-B2 / Jaiswal et al.:

    - a data packet re-delivering bytes the sniffer has already seen is a
      retransmission caused {e downstream} of the sniffer (the receiver
      never got, or never acknowledged, the first copy);
    - a sequence hole at the sniffer means the missing bytes were lost
      {e upstream}; the packet that later fills the hole is the recovery
      of an upstream loss — unless it fills it so quickly that the hole
      was mere in-network reordering. *)

type label =
  | In_order  (** Advances the highest sequence seen. *)
  | Above_hole  (** In order but while a sequence hole is open. *)
  | Fill_reorder  (** Filled a hole quickly: in-network reordering. *)
  | Fill_retransmission  (** Filled a hole late: upstream-loss recovery. *)
  | Redelivery  (** Bytes seen before: downstream-loss recovery. *)

type data_packet = {
  seg : Tdat_pkt.Tcp_segment.t;
  label : label;
}

type loss_episode = {
  span : Tdat_timerange.Span.t;
      (** From first evidence of the loss to the arrival of the recovery. *)
  packets : int;  (** Retransmitted packets in the episode. *)
  bytes : int;
}

type t = {
  flow : Tdat_pkt.Flow.t;
  start_time : Tdat_timerange.Time_us.t;  (** SYN if seen, else first packet. *)
  end_time : Tdat_timerange.Time_us.t;
  syn_rtt : Tdat_timerange.Time_us.t option;  (** SYN→SYN+ACK round trip. *)
  upstream_rtt : Tdat_timerange.Time_us.t option;
      (** Sniffer→sender→sniffer round trip (the d2 of Fig. 12), measured
          on the handshake: SYN+ACK at the sniffer to the sender's
          replying ACK at the sniffer. *)
  rtt : Tdat_timerange.Time_us.t;  (** Best available estimate (≥ 1 ms floor). *)
  mss : int;  (** From the SYN option, else the largest payload seen. *)
  max_adv_window : int;  (** Largest window the receiver ever advertised. *)
  data : data_packet array;  (** Sender→receiver data packets, time order. *)
  acks : Tdat_pkt.Tcp_segment.t array;  (** Receiver→sender ACKs, time order. *)
  upstream_episodes : loss_episode list;
  downstream_episodes : loss_episode list;
  voids : Tdat_timerange.Span_set.t;
}

val of_trace : ?reorder_factor:float -> Tdat_pkt.Trace.t ->
  flow:Tdat_pkt.Flow.t -> t
(** [reorder_factor] (default 0.25): a hole filled within
    [reorder_factor * rtt] counts as reordering, not loss. *)

val retransmissions : t -> int
val duration : t -> Tdat_timerange.Time_us.t
val analysis_window : t -> Tdat_timerange.Span.t
(** [start_time, end_time + 1). *)

val pp_summary : Format.formatter -> t -> unit
