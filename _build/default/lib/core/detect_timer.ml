type result = {
  timer : Tdat_timerange.Time_us.t;
  gaps : int;
  induced_delay : Tdat_timerange.Time_us.t;
}

let raw_gaps gen =
  Tdat_timerange.Series.durations (Series_gen.events gen Series_defs.Send_app_limited)

let gap_distribution gen =
  raw_gaps gen
  |> List.map (fun d -> Tdat_timerange.Time_us.to_s d)
  |> List.sort Float.compare

let detect ?(min_gap = 20_000) ?(max_gap = 2_000_000) ?(min_count = 10)
    ?(cluster_fraction = 0.5) gen =
  let gaps =
    raw_gaps gen |> List.filter (fun d -> d >= min_gap && d <= max_gap)
  in
  if List.length gaps < min_count then None
  else begin
    let as_floats = List.map float_of_int gaps in
    match Tdat_stats.Knee.knee_of_sorted as_floats with
    | None -> None
    | Some knee ->
        (* Validate: a real timer clusters gaps tightly around the knee;
           a wandering inter-burst rhythm spreads too wide to pass. *)
        let lo = 0.85 *. knee and hi = 1.15 *. knee in
        let clustered =
          List.filter (fun g -> g >= lo && g <= hi) as_floats
        in
        let n_clustered = List.length clustered in
        if
          float_of_int n_clustered
          < cluster_fraction *. float_of_int (List.length gaps)
        then None
        else begin
          (* Report the cluster's median as the timer value: robust to
             the knee landing on the cluster's edge. *)
          let timer =
            int_of_float (Tdat_stats.Descriptive.median clustered)
          in
          let induced =
            List.fold_left ( + ) 0 (List.map int_of_float clustered)
          in
          Some { timer; gaps = n_clustered; induced_delay = induced }
        end
  end
