(** The zero-window ACK bug (Section IV-B): connections that exhibit a
    closed receiver window and persistent upstream packet losses at the
    same time — "packets get constantly dropped even under low
    transmission rate", the signature of the probe-discard implementation
    bug the paper found had lived in operational routers for years.

    {v ZeroAckBug := (ZeroAdvWindow ∪ ZeroAdvBndOut) ∩ RetransPeriod v}

    (the paper's [ZeroAdvBndOut ∩ UpstreamLoss], widened because loss
    periods override window attribution here — see DESIGN.md). *)

type result = {
  spans : Tdat_timerange.Span_set.t;  (** The conflicting periods. *)
  total : Tdat_timerange.Time_us.t;
}

val detect : ?min_total:Tdat_timerange.Time_us.t -> Series_gen.t -> result option
(** [None] unless the conflict series covers at least [min_total]
    (default 100 ms). *)
