open Tdat_timerange

type result = { spans : Span_set.t; total : Time_us.t }

let detect ?(min_total = 100_000) gen =
  let conflict = Series_gen.spans gen Series_defs.Zero_ack_bug in
  let total = Span_set.size conflict in
  if total >= min_total then Some { spans = conflict; total } else None
