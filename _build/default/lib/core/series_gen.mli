(** Generation of the 34 event series from a (shifted) connection profile
    — the analytical core of T-DAT (Section III-C).

    The driving idea: the {e Transmission} series occupies an
    insignificant part of the transfer; the job is to explain the
    inter-transmission gaps.  Each gap between consecutive data packets
    is split and attributed by what the sender was provably waiting for:

    - outstanding data pending and the advertised window nearly full →
      bounded by the receiver window ({e AdvBndOut}, refined into
      small / large / zero window);
    - outstanding data pending with window room to spare, and
      transmission resuming as acknowledgments arrive → bounded by the
      congestion window ({e CwndBndOut});
    - nothing outstanding, window open, yet the sender stays silent →
      the sending application has nothing to send ({e SendAppLimited} —
      in BGP, the sending router's BGP process);
    - loss-recovery episodes (from the labeling pass) override the
      above for their duration ({e Upstream}/{e DownstreamLoss}).

    All series are clipped to the analysis window. *)

type config = {
  sniffer_location : [ `Near_sender | `Near_receiver ];
      (** Interpretation of loss locality (Section III-C2).  The paper's
          datasets are all [`Near_receiver]. *)
  small_window_mss : int;  (** "Small" window threshold, in MSS (3). *)
  bound_gap_mss : int;
      (** Outstanding counts as window-bounded when the window exceeds it
          by less than this many MSS (3). *)
  app_limit_epsilon : Tdat_timerange.Time_us.t;
      (** Sender silences shorter than this are not counted as
          application-limited (2 ms). *)
  keepalive_max_size : int;
      (** Data packets up to this payload are keepalive-sized (100 B). *)
  keepalive_min_idle : Tdat_timerange.Time_us.t;
      (** Minimum update-free period for a KeepaliveOnly event (25 s). *)
  idle_gap_min : Tdat_timerange.Time_us.t;  (** IdleGap threshold (1 s). *)
  bandwidth_run : int;
      (** Minimum back-to-back packets for a BandwidthBound run (20). *)
}

val default_config : config

type t

val generate :
  ?config:config ->
  ?window:Tdat_timerange.Span.t ->
  Conn_profile.t ->
  t
(** [generate profile] builds the full registry.  [window] defaults to
    the profile's own analysis window (pass the MCT-derived table
    transfer span to restrict the analysis period).  The profile should
    already be ACK-shifted when the sniffer is not at the sender. *)

val events : t -> Series_defs.t -> int Tdat_timerange.Series.t
(** The series' events; payloads are bytes (loss, data), window sizes
    (window series) or packet counts, depending on the series. *)

val spans : t -> Series_defs.t -> Tdat_timerange.Span_set.t
(** Canonical span-set of the series (cached). *)

val size : t -> Series_defs.t -> Tdat_timerange.Time_us.t
val ratio : t -> Series_defs.t -> float
(** [size series / analysis period] — the delay ratio. *)

val window : t -> Tdat_timerange.Span.t
val profile : t -> Conn_profile.t
val config : t -> config

val union_spans : t -> Series_defs.t list -> Tdat_timerange.Span_set.t
val ratio_of_spans : t -> Tdat_timerange.Span_set.t -> float

(** {2 User-defined series}

    "T-DAT allows users to construct additional series for their
    specific needs" (Section III-C): named derived series built with the
    same set algebra as the built-in stage-4 series, stored in the same
    registry, quantified with the same delay-ratio measure.  The
    cross-connection queries of Section IV-B
    ([Quagga.SendAppLimited ∩ Vendor.Loss]) are one [define] away. *)

val define : t -> name:string -> Tdat_timerange.Span_set.t -> unit
(** Register a custom series under [name] (clipped to the analysis
    window).  Redefinition replaces. *)

val define_inter : t -> name:string -> Series_defs.t list -> unit
(** [define_inter t ~name series] registers the intersection of built-in
    series. *)

val define_union : t -> name:string -> Series_defs.t list -> unit

val custom : t -> string -> Tdat_timerange.Span_set.t option
val custom_ratio : t -> string -> float option
val custom_names : t -> string list
