(** Names of the 34 internal event series (Section III-C).

    Stage 1 ({e extraction}) series come straight from the packet trace;
    stage 2 ({e interpretation}) series are location-dependent renamings
    of loss series; stage 3 ({e operation}) series apply heuristics over
    other series; stage 4 ({e algebra}) series are set expressions. *)

type t =
  (* extraction *)
  | Data_pkt
  | Ack_pkt
  | Transmission
  | Outstanding
  | Adv_window
  | Retransmission
  | Out_of_sequence
  | Dup_ack
  | Upstream_loss
  | Downstream_loss
  | Zero_adv_window
  | Keepalive_only
  | Syn_period
  | Fin_period
  | Void_period
  (* interpretation *)
  | Send_local_loss
  | Recv_local_loss
  | Network_loss
  (* operation *)
  | Ack_flight
  | Data_flight
  | Send_app_limited
  | Recv_app_limited
  | Small_adv_window
  | Large_adv_window
  | Adv_bnd_out
  | Cwnd_bnd_out
  | Zero_adv_bnd_out
  | Bandwidth_bound
  | Idle_gap
  | Retrans_period
  (* algebra *)
  | Small_adv_bnd_out
  | Large_adv_bnd_out
  | All_loss
  | Zero_ack_bug

val all : t list
(** All 34, in the order above. *)

val to_string : t -> string
val stage : t -> [ `Extraction | `Interpretation | `Operation | `Algebra ]
val pp : Format.formatter -> t -> unit
