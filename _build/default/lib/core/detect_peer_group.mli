(** Pathological peer-group blocking detection (Sections II-B3 and IV-B).

    A blocked member shows a long send-application-limited gap during
    which only keepalive-sized messages flow.  When the trace of the
    {e other} member of the group is also available, the suspicion is
    confirmed by intersecting this member's idle period with the other
    member's loss/retransmission period:

    {v Quagga.SendAppLimited ∩ Vendor.Loss v} *)

type suspect = {
  span : Tdat_timerange.Span.t;  (** The blocked period. *)
  keepalives : int;  (** Keepalive messages seen inside it. *)
}

val suspects :
  ?min_blocked:Tdat_timerange.Time_us.t -> Series_gen.t -> suspect list
(** Idle periods of at least [min_blocked] (default 60 s) in which only
    keepalives were exchanged. *)

val confirm :
  Series_gen.t -> other:Series_gen.t -> suspect list
(** Suspects of the first connection whose span overlaps the other
    connection's retransmission periods — the group really was dragged
    down by the other member. *)

val blocked_delay : suspect list -> Tdat_timerange.Time_us.t
