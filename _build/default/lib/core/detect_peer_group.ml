open Tdat_timerange
module D = Series_defs

type suspect = { span : Span.t; keepalives : int }

let suspects ?(min_blocked = 60_000_000) gen =
  let keepalive_only = Series_gen.events gen D.Keepalive_only in
  Series.fold
    (fun span keepalives acc ->
      if Span.length span >= min_blocked then { span; keepalives } :: acc
      else acc)
    keepalive_only []
  |> List.rev

let confirm gen ~other =
  (* Use the other member's whole-connection loss episodes, not its
     clipped analysis window: a dead member's transfer window collapses
     to the pre-failure seconds, while its retransmissions stretch over
     the entire blocked period. *)
  let p = Series_gen.profile other in
  let episode_spans eps =
    List.map (fun (e : Conn_profile.loss_episode) -> e.Conn_profile.span) eps
  in
  let other_loss =
    Span_set.of_spans
      (episode_spans p.Conn_profile.upstream_episodes
      @ episode_spans p.Conn_profile.downstream_episodes)
  in
  suspects gen
  |> List.filter (fun s ->
         not
           (Span_set.is_empty
              (Span_set.inter (Span_set.of_span s.span) other_loss)))

let blocked_delay suspects =
  List.fold_left (fun acc s -> acc + Span.length s.span) 0 suspects
