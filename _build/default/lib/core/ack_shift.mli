(** Accommodating the sniffer location (Section III-B1).

    With the sniffer near the receiver, an ACK is observed long before
    its effect (the data it releases) comes back past the sniffer; the
    offset is d2, the sniffer→sender→sniffer round trip of Fig. 12.
    T-DAT shifts ACKs {e forward} in time so that the rewritten trace
    approximates the sender-side arrival order [m1-m2'-m3].

    Per the paper, the shift is computed per {e flight} of ACKs, not per
    ACK: ACKs sent back-to-back are grouped by inter-arrival time; each
    ACK in the flight gets a d2 estimate from the first data packet whose
    transmission it enabled (window bookkeeping); the whole flight then
    shifts by the {e smallest} — most precise — estimate in the flight.
    Flights with no usable estimate fall back to the handshake-measured
    d2 baseline. *)

type flight_shift = {
  span : Tdat_timerange.Span.t;  (** The flight's extent before shifting. *)
  n_acks : int;
  estimates : int;  (** How many ACKs in the flight had a d2 estimate. *)
  applied : Tdat_timerange.Time_us.t;  (** The shift applied, µs. *)
}

val shift :
  ?flight_gap:Tdat_timerange.Time_us.t ->
  Conn_profile.t ->
  Conn_profile.t * flight_shift list
(** Returns the profile with shifted ACK timestamps (re-sorted) and the
    per-flight diagnostics.  [flight_gap] defaults to [max(rtt/4, 1 ms)].
    If the trace was taken at the sender (d2 baseline ≈ 0), the shift is
    a no-op, as Section III-B promises. *)
