open Tdat_timerange
module D = Series_defs

type episode = { span : Span.t; packets : int }

type result = {
  episodes : episode list;
  induced_delay : Time_us.t;
}

let detect ?(threshold = 8) ?(merge_gap = 1_500_000) gen =
  (* Merge the loss events from every location series, then coalesce
     episodes separated by less than [merge_gap] into one "episode of
     consecutive retransmissions" (Fig. 6 shows such episodes spanning
     several seconds of chained timeouts), summing their packet counts. *)
  let all =
    Series.merge
      (Series_gen.events gen D.Send_local_loss)
      (Series.merge
         (Series_gen.events gen D.Recv_local_loss)
         (Series_gen.events gen D.Network_loss))
  in
  let close a b = Span.start b - Span.stop a <= merge_gap in
  let merged =
    Series.fold
      (fun span packets acc ->
        match acc with
        | (prev_span, prev_packets) :: rest
          when Span.touches prev_span span || close prev_span span ->
            (Span.hull prev_span span, prev_packets + packets) :: rest
        | _ -> (span, packets) :: acc)
      all []
    |> List.rev
  in
  let episodes =
    List.filter_map
      (fun (span, packets) ->
        if packets >= threshold then Some { span; packets } else None)
      merged
  in
  { episodes; induced_delay = Series.size all }

let has_consecutive_losses ?threshold ?merge_gap gen =
  (detect ?threshold ?merge_gap gen).episodes <> []
