(** Consecutive-packet-loss detection (Section IV-B).

    Unions every loss series (sender-local, receiver-local, network) and
    reports episodes retransmitting at least [threshold] packets — 8 by
    default, the paper's conservative bound, "sufficiently large to
    reduce the TCP congestion window and the slow start threshold to the
    minimum 1 or 2 MSS". *)

type episode = {
  span : Tdat_timerange.Span.t;
  packets : int;
}

type result = {
  episodes : episode list;  (** Episodes at/above the threshold. *)
  induced_delay : Tdat_timerange.Time_us.t;
      (** Total time inside all loss episodes of the transfer. *)
}

val detect :
  ?threshold:int -> ?merge_gap:Tdat_timerange.Time_us.t -> Series_gen.t ->
  result
(** [result.episodes = []] means no consecutive-loss event.  Recovery
    events separated by less than [merge_gap] (default 1.5 s) belong to
    the same episode — chained timeouts recovering one congestion event
    count together, as in Fig. 6. *)

val has_consecutive_losses :
  ?threshold:int -> ?merge_gap:Tdat_timerange.Time_us.t -> Series_gen.t ->
  bool
