lib/core/series_gen.mli: Conn_profile Series_defs Tdat_timerange
