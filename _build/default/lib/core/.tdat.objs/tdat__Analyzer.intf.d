lib/core/analyzer.mli: Ack_shift Conn_profile Detect_loss Detect_peer_group Detect_timer Detect_zero_ack Factors Series_gen Tdat_bgp Tdat_pkt Transfer_id
