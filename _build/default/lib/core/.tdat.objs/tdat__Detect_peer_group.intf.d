lib/core/detect_peer_group.mli: Series_gen Tdat_timerange
