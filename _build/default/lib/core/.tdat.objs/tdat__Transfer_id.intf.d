lib/core/transfer_id.mli: Tdat_bgp Tdat_pkt Tdat_timerange
