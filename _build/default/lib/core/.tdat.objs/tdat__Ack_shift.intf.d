lib/core/ack_shift.mli: Conn_profile Tdat_timerange
