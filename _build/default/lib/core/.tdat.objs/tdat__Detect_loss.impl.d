lib/core/detect_loss.ml: List Series Series_defs Series_gen Span Tdat_timerange Time_us
