lib/core/series_defs.mli: Format
