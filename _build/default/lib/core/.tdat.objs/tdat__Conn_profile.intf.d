lib/core/conn_profile.mli: Format Tdat_pkt Tdat_timerange
