lib/core/detect_timer.ml: Float List Series_defs Series_gen Tdat_stats Tdat_timerange
