lib/core/analyzer.ml: Ack_shift Conn_profile Detect_loss Detect_peer_group Detect_timer Detect_zero_ack Factors List Option Series_gen Tdat_pkt Transfer_id
