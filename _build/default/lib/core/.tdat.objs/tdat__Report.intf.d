lib/core/report.mli: Analyzer Format Series_defs Series_gen
