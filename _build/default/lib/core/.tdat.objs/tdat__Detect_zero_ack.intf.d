lib/core/detect_zero_ack.mli: Series_gen Tdat_timerange
