lib/core/factors.ml: Format List Option Series_defs Series_gen Span Span_set Tdat_timerange
