lib/core/conn_profile.ml: Array Format Hashtbl List Option Span Span_set Tdat_pkt Tdat_timerange Time_us
