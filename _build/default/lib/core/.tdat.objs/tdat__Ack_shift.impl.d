lib/core/ack_shift.ml: Array Conn_profile List Option Span Tdat_pkt Tdat_timerange Time_us
