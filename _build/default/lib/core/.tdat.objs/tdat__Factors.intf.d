lib/core/factors.mli: Format Series_defs Series_gen Tdat_timerange
