lib/core/series_gen.ml: Array Conn_profile Hashtbl List Option Series Series_defs Span Span_set Tdat_pkt Tdat_timerange Time_us
