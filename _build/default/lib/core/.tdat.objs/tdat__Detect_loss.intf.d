lib/core/detect_loss.mli: Series_gen Tdat_timerange
