lib/core/detect_timer.mli: Series_gen Tdat_timerange
