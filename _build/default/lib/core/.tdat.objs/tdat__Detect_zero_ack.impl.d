lib/core/detect_zero_ack.ml: Series_defs Series_gen Span_set Tdat_timerange Time_us
