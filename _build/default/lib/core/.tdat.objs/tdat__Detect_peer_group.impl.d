lib/core/detect_peer_group.ml: Conn_profile List Series Series_defs Series_gen Span Span_set Tdat_timerange
