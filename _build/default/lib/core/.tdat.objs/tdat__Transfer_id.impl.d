lib/core/transfer_id.ml: List Tdat_bgp Tdat_pkt Tdat_timerange
