lib/core/series_defs.ml: Format
