type route = { prefix : Prefix.t; attrs : Attr.t list }
type t = route list

(* Prefix-length mixture loosely matching the global table circa 2010:
   /24 dominates (~55%), then /16..../23, a few shorter. *)
let prefix_length_dist =
  [
    (2.0, 8);
    (1.0, 12);
    (3.0, 14);
    (8.0, 16);
    (4.0, 18);
    (6.0, 19);
    (8.0, 20);
    (7.0, 21);
    (9.0, 22);
    (7.0, 23);
    (55.0, 24);
  ]

let path_length_dist =
  [ (5.0, 2); (20.0, 3); (35.0, 4); (25.0, 5); (10.0, 6); (5.0, 7) ]

let gen_prefix rng seen =
  let module R = Tdat_rng.Rng in
  let rec fresh () =
    let len = R.weighted rng prefix_length_dist in
    (* Draw in 1.0.0.0 .. 223.255.255.255 to stay in unicast space. *)
    let a = R.int_in rng 1 223 in
    let b = R.int rng 256 in
    let c = R.int rng 256 in
    let d = R.int rng 256 in
    let p = Prefix.of_quad a b c d len in
    if Hashtbl.mem seen p then fresh ()
    else begin
      Hashtbl.add seen p ();
      p
    end
  in
  fresh ()

let gen_attrs rng ~as_pool ~next_hop =
  let module R = Tdat_rng.Rng in
  let hops = R.weighted rng path_length_dist in
  let path = List.init hops (fun _ -> 1 + R.int rng as_pool) in
  [
    Attr.Origin Attr.Igp;
    Attr.As_path (As_path.of_asns path);
    Attr.Next_hop next_hop;
  ]

let generate ~rng ~n_prefixes ?(as_pool = 2000) ?path_pool ?next_hop () =
  let module R = Tdat_rng.Rng in
  let next_hop =
    match next_hop with
    | Some ip -> ip
    | None -> (Tdat_pkt.Endpoint.of_quad 10 0 0 1 0).Tdat_pkt.Endpoint.ip
  in
  (* Real tables share AS paths heavily (one origin AS announces many
     prefixes): draw attribute sets from a bounded pool so UPDATE packing
     batches prefixes as routers do. *)
  let pool_size =
    match path_pool with
    | Some n -> max 1 n
    | None -> max 1 (n_prefixes / 6)
  in
  let pool =
    Array.init pool_size (fun _ -> gen_attrs rng ~as_pool ~next_hop)
  in
  let seen = Hashtbl.create (2 * n_prefixes) in
  List.init n_prefixes (fun _ ->
      { prefix = gen_prefix rng seen; attrs = R.choose rng pool })

let prefixes t = List.map (fun r -> r.prefix) t
