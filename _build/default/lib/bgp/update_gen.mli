(** Packing a routing table into UPDATE messages.

    Real routers batch prefixes sharing identical path attributes into a
    single UPDATE up to the 4096-byte message limit; this is the encoding
    a table transfer puts on the wire. *)

val pack : Table.t -> Msg.t list
(** Groups routes by {!Attr.signature}, preserving the first-appearance
    order of attribute groups, and splits each group into UPDATEs that
    respect {!Msg.max_size}. *)

val packed_size : Table.t -> int
(** Total encoded bytes of [pack t] — the scaled counterpart of the
    paper's "5–8 MB for the full BGP table". *)

val unpack : Msg.t list -> Table.t
(** Inverse of {!pack} up to grouping: flattens UPDATEs back into
    (prefix, attrs) routes, ignoring non-UPDATE messages and withdrawals. *)
