type config = {
  dup_fraction : float;
  min_seen : int;
  quiet_gap : Tdat_timerange.Time_us.t;
}

let default_config =
  { dup_fraction = 0.5; min_seen = 32; quiet_gap = 200_000_000 }

type result = {
  end_ts : Tdat_timerange.Time_us.t;
  prefixes : int;
  updates : int;
}

let transfer_end ?(config = default_config) ~start updates =
  let seen : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let relevant = List.filter (fun (ts, _) -> ts >= start) updates in
  let finish last n_updates =
    match last with
    | None -> None
    | Some ts ->
        Some { end_ts = ts; prefixes = Hashtbl.length seen; updates = n_updates }
  in
  let rec scan last n_updates = function
    | [] -> finish last n_updates
    | (ts, prefixes) :: rest ->
        let quiet =
          match last with
          | Some prev -> ts - prev > config.quiet_gap
          | None -> false
        in
        if quiet then finish last n_updates
        else begin
          let total = List.length prefixes in
          let dups =
            List.length (List.filter (Hashtbl.mem seen) prefixes)
          in
          let churn =
            total > 0
            && Hashtbl.length seen >= config.min_seen
            && float_of_int dups >= config.dup_fraction *. float_of_int total
          in
          if churn then finish last n_updates
          else begin
            List.iter
              (fun p -> if not (Hashtbl.mem seen p) then Hashtbl.add seen p ())
              prefixes;
            scan (Some ts) (n_updates + 1) rest
          end
        end
  in
  scan None 0 relevant

let of_timed_msgs msgs =
  List.filter_map
    (fun (m : Msg_reader.timed_msg) ->
      match m.msg with
      | Msg.Update u when u.Msg.nlri <> [] -> Some (m.ts, u.Msg.nlri)
      | Msg.Update _ | Msg.Open _ | Msg.Keepalive | Msg.Notification _ -> None)
    msgs
