(** MRT export format (RFC 6396) for BGP4MP message records — the format
    Quagga collectors archive BGP updates in, and the output format of
    [pcap2bgp].

    Records are written as [BGP4MP_ET] (type 17, microsecond timestamps)
    and read back from either BGP4MP (type 16, second resolution) or
    BGP4MP_ET. *)

type record = {
  ts : Tdat_timerange.Time_us.t;
  peer_as : int;
  local_as : int;
  peer_ip : int32;
  local_ip : int32;
  msg : Msg.t;
}

val encode : record list -> string
val decode : string -> record list
(** @raise Failure on malformed input; unsupported MRT record types are
    skipped. *)

val to_file : string -> record list -> unit
val of_file : string -> record list
