lib/bgp/mct.mli: Msg_reader Prefix Tdat_timerange
