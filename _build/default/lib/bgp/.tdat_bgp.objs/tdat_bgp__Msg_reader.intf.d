lib/bgp/msg_reader.mli: Msg Stream_reassembly Tdat_pkt Tdat_timerange
