lib/bgp/attr.mli: As_path Buffer Format
