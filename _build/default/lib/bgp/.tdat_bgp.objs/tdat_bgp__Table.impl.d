lib/bgp/table.ml: Array As_path Attr Hashtbl List Prefix Tdat_pkt Tdat_rng
