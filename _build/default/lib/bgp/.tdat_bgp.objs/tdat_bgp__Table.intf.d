lib/bgp/table.mli: Attr Prefix Tdat_rng
