lib/bgp/msg.mli: Attr Format Prefix
