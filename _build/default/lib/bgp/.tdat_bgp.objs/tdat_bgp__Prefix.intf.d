lib/bgp/prefix.mli: Buffer Format
