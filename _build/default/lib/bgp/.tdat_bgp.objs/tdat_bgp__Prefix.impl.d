lib/bgp/prefix.ml: Buffer Char Format Int Int32 Printf String Tdat_pkt
