lib/bgp/stream_reassembly.ml: Bytes List String Tdat_pkt Tdat_timerange
