lib/bgp/update_gen.ml: Attr Buffer Hashtbl List Msg Prefix Table
