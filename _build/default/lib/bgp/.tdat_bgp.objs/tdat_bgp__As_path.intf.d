lib/bgp/as_path.mli: Buffer Format
