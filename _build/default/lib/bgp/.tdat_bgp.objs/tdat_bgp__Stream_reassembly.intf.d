lib/bgp/stream_reassembly.mli: Tdat_pkt Tdat_timerange
