lib/bgp/mrt.mli: Msg Tdat_timerange
