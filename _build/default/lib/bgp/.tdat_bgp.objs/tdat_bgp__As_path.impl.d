lib/bgp/as_path.ml: Buffer Char Format List Printf Stdlib String
