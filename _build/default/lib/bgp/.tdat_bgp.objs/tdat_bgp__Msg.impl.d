lib/bgp/msg.ml: Attr Buffer Char Format Int32 List Prefix Printf String
