lib/bgp/update_gen.mli: Msg Table
