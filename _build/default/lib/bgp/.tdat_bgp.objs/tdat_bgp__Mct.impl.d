lib/bgp/mct.ml: Hashtbl List Msg Msg_reader Prefix Tdat_timerange
