lib/bgp/msg_reader.ml: List Msg Stream_reassembly String Tdat_pkt Tdat_timerange
