lib/bgp/mrt.ml: Buffer Char Fun Int32 List Msg String Tdat_timerange
