lib/bgp/attr.ml: As_path Buffer Char Format Int Int32 List String Tdat_pkt
