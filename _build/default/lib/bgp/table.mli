(** Synthetic BGP routing tables.

    A table is the Adj-RIB-Out a router sends during an initial table
    transfer: a list of (prefix, path attributes) routes.  The generator
    draws prefix lengths and AS-path lengths from distributions matching
    published RouteViews statistics of the paper's era (mostly /24s and
    /16–/22s; path lengths centered on 3–5 hops), so message packing and
    transfer sizes are realistic. *)

type route = { prefix : Prefix.t; attrs : Attr.t list }
type t = route list

val generate :
  rng:Tdat_rng.Rng.t ->
  n_prefixes:int ->
  ?as_pool:int ->
  ?path_pool:int ->
  ?next_hop:int32 ->
  unit ->
  t
(** [generate ~rng ~n_prefixes ()] builds a table of distinct prefixes.
    [as_pool] (default 2000) bounds the universe of AS numbers;
    [path_pool] (default [n_prefixes/6]) bounds the number of distinct
    attribute sets, mirroring the heavy path sharing of real tables;
    [next_hop] defaults to 10.0.0.1. *)

val prefixes : t -> Prefix.t list
