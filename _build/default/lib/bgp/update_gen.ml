let group_routes (table : Table.t) =
  (* Group by attribute signature, preserving first-appearance order. *)
  let groups : (string, Attr.t list * Prefix.t list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  let visit (r : Table.route) =
    let key = Attr.signature r.attrs in
    match Hashtbl.find_opt groups key with
    | Some (_, prefixes) -> prefixes := r.prefix :: !prefixes
    | None ->
        Hashtbl.add groups key (r.attrs, ref [ r.prefix ]);
        order := key :: !order
  in
  List.iter visit table;
  (* [order] accumulated in reverse; rev_map restores first-appearance
     order in one pass. *)
  List.rev_map
    (fun key ->
      let attrs, prefixes = Hashtbl.find groups key in
      (attrs, List.rev !prefixes))
    !order

let pack table =
  let messages = ref [] in
  let emit_group (attrs, prefixes) =
    (* Fixed overhead: header + withdrawn length + attr length + attrs. *)
    let attr_bytes =
      let buf = Buffer.create 64 in
      List.iter (Attr.encode buf) attrs;
      Buffer.length buf
    in
    let overhead = Msg.header_size + 2 + 2 + attr_bytes in
    let flush nlri =
      if nlri <> [] then
        messages := Msg.update ~attrs ~nlri:(List.rev nlri) () :: !messages
    in
    let rec fill nlri used = function
      | [] -> flush nlri
      | p :: rest ->
          let sz = Prefix.encoded_size p in
          if used + sz > Msg.max_size then begin
            flush nlri;
            fill [ p ] (overhead + sz) rest
          end
          else fill (p :: nlri) (used + sz) rest
    in
    fill [] overhead prefixes
  in
  List.iter emit_group (group_routes table);
  List.rev !messages

let packed_size table =
  List.fold_left (fun acc m -> acc + Msg.encoded_size m) 0 (pack table)

let unpack msgs =
  List.concat_map
    (function
      | Msg.Update u ->
          List.map
            (fun prefix -> { Table.prefix; attrs = u.Msg.attrs })
            u.Msg.nlri
      | Msg.Open _ | Msg.Keepalive | Msg.Notification _ -> [])
    msgs
