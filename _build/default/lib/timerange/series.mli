(** Event series: an ordered set of time durations, each carrying a
    reference to the underlying trace data (the paper's
    [(event_duration, event_data)] 2-tuples, Section III-A).

    Unlike {!Span_set}, events are {e not} coalesced — each event keeps its
    own payload and exact boundaries, so the series "faithfully preserves
    the exact packet timing information" for drill-down.  Quantification
    (delay ratios) goes through {!to_span_set}/{!size}, which is where
    overlap is collapsed. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val of_list : (Span.t * 'a) list -> 'a t
(** Sorts events by span (start, then stop).  Overlapping events are
    allowed and preserved. *)

val to_list : 'a t -> (Span.t * 'a) list
val cardinal : 'a t -> int

val to_span_set : 'a t -> Span_set.t
(** Collapses the events into a canonical span set. *)

val size : 'a t -> Time_us.t
(** [size s] is [Span_set.size (to_span_set s)] — overlapping events are
    not double-counted, matching the paper's set-size measure. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val map_spans : (Span.t -> Span.t) -> 'a t -> 'a t

val filter : (Span.t -> 'a -> bool) -> 'a t -> 'a t
val fold : (Span.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val iter : (Span.t -> 'a -> unit) -> 'a t -> unit

val merge : 'a t -> 'a t -> 'a t
(** Union of the two event lists (payloads kept), re-sorted. *)

val clip : Span.t -> 'a t -> 'a t
(** Keeps the events intersecting the window, with their spans trimmed to
    it (payloads untouched). *)

val durations : 'a t -> Time_us.t list
(** Lengths of the individual events in order — the input to gap-length
    distribution analysis (Fig. 17). *)

val events_in : Span.t -> 'a t -> (Span.t * 'a) list
(** Drill-down: the events overlapping a window of interest. *)

type 'a builder

val builder : unit -> 'a builder
val add : 'a builder -> Span.t -> 'a -> unit
val build : 'a builder -> 'a t
(** Builders accept events in any order; [build] sorts once. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
