(** A continuous time range [\[start, stop)] in microseconds.

    Spans are half-open: a span covers every instant [t] with
    [start <= t < stop].  The empty span is not representable; construction
    enforces [start < stop] except for {!point}, which produces a span of
    length 1 µs (the smallest representable event, used for instantaneous
    packet events). *)

type t = private { start : Time_us.t; stop : Time_us.t }

val v : Time_us.t -> Time_us.t -> t
(** [v start stop] builds the span [\[start, stop)].
    @raise Invalid_argument if [stop <= start]. *)

val point : Time_us.t -> t
(** [point t] is the 1 µs span [\[t, t+1)]. *)

val of_duration : Time_us.t -> Time_us.t -> t
(** [of_duration start len] is [v start (start + len)].
    @raise Invalid_argument if [len <= 0]. *)

val start : t -> Time_us.t
val stop : t -> Time_us.t

val length : t -> Time_us.t
(** [length s] is [stop s - start s], always positive. *)

val shift : Time_us.t -> t -> t
(** [shift d s] translates [s] by [d] (which may be negative). *)

val contains : t -> Time_us.t -> bool
(** [contains s t] tests [start s <= t < stop s]. *)

val overlaps : t -> t -> bool
(** Whether the two spans share at least one instant. *)

val touches : t -> t -> bool
(** Whether the spans overlap or are exactly adjacent (can coalesce). *)

val inter : t -> t -> t option
(** Intersection, if non-empty. *)

val hull : t -> t -> t
(** Smallest span covering both arguments. *)

val compare : t -> t -> int
(** Orders by start, then by stop. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
